#ifndef BASM_METRICS_METRICS_H_
#define BASM_METRICS_METRICS_H_

#include <cstdint>
#include <map>
#include <vector>

namespace basm::metrics {

/// Area under the ROC curve via the rank-sum (Mann-Whitney) estimator with
/// midrank tie handling. Returns 0.5 when one class is absent.
double Auc(const std::vector<float>& scores, const std::vector<float>& labels);

/// Impression-weighted grouped AUC (Eq. 20/21 of the paper):
///   GAUC = sum_g |g| * AUC_g / sum_g |g|
/// over groups with both classes present. With `group = time_period` this is
/// TAUC; with `group = city` it is CAUC.
double GroupedAuc(const std::vector<float>& scores,
                  const std::vector<float>& labels,
                  const std::vector<int32_t>& groups);

/// Mean NDCG@k over requests: items sharing a request_id form one ranked
/// list; gains are the binary click labels. Requests with no positive item
/// are skipped (their DCG is undefined), matching common practice.
double NdcgAtK(const std::vector<float>& scores,
               const std::vector<float>& labels,
               const std::vector<int32_t>& request_ids, int k);

/// Mean binary cross-entropy of probability predictions (clamped away from
/// 0/1 for stability).
double LogLoss(const std::vector<float>& probs,
               const std::vector<float>& labels);

/// Observed CTR (mean label).
double Ctr(const std::vector<float>& labels);

/// Per-group impression counts and CTRs, used by the distribution figures.
struct GroupStats {
  int64_t impressions = 0;
  int64_t clicks = 0;
  double ctr() const {
    return impressions == 0 ? 0.0
                            : static_cast<double>(clicks) / impressions;
  }
};
std::map<int32_t, GroupStats> GroupCtr(const std::vector<float>& labels,
                                       const std::vector<int32_t>& groups);

/// One probability bucket of a calibration table.
struct CalibrationBucket {
  double mean_predicted = 0.0;
  double observed_ctr = 0.0;
  int64_t count = 0;
};

/// Equal-width calibration buckets over [0, 1]; empty buckets are omitted.
/// CTR models serve their scores as probabilities downstream (ad pricing,
/// ranking blends), so calibration matters alongside ranking quality.
std::vector<CalibrationBucket> CalibrationTable(
    const std::vector<float>& probs, const std::vector<float>& labels,
    int num_buckets = 10);

/// Expected calibration error: count-weighted mean |predicted - observed|.
double ExpectedCalibrationError(const std::vector<float>& probs,
                                const std::vector<float>& labels,
                                int num_buckets = 10);

/// Bundle of every offline metric in Table IV.
struct EvalSummary {
  double auc = 0.0;
  double tauc = 0.0;
  double cauc = 0.0;
  double ndcg3 = 0.0;
  double ndcg10 = 0.0;
  double logloss = 0.0;
};

/// Computes the full Table IV metric set in one pass.
EvalSummary Evaluate(const std::vector<float>& probs,
                     const std::vector<float>& labels,
                     const std::vector<int32_t>& time_periods,
                     const std::vector<int32_t>& cities,
                     const std::vector<int32_t>& request_ids);

}  // namespace basm::metrics

#endif  // BASM_METRICS_METRICS_H_
