#include "nn/mlp.h"

namespace basm::nn {

namespace ag = ::basm::autograd;

Mlp::Mlp(std::vector<int64_t> dims, Activation act, Rng& rng, bool batch_norm)
    : act_(act), batch_norm_(batch_norm) {
  BASM_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.push_back(std::make_unique<Linear>(dims[i], dims[i + 1], rng));
    RegisterModule("fc" + std::to_string(i), layers_.back().get());
    bool is_last = (i + 2 == dims.size());
    if (batch_norm_ && !is_last) {
      norms_.push_back(std::make_unique<BatchNorm1d>(dims[i + 1]));
      RegisterModule("bn" + std::to_string(i), norms_.back().get());
    }
  }
}

ag::Variable Mlp::Forward(const ag::Variable& x) {
  ag::Variable h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    h = layers_[i]->Forward(h);
    bool is_last = (i + 1 == layers_.size());
    if (!is_last) {
      if (batch_norm_) h = norms_[i]->Forward(h);
      h = Apply(act_, h);
    }
  }
  return h;
}

}  // namespace basm::nn
