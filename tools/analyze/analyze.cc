#include "tools/analyze/analyze.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "tools/analyze/blocking_calls.h"
#include "tools/analyze/hot_path.h"
#include "tools/analyze/include_graph.h"
#include "tools/analyze/io_loop.h"
#include "tools/analyze/lock_order.h"
#include "tools/analyze/model.h"
#include "tools/analyze/scanner.h"

namespace basm::analyze {
namespace {

bool IsSourceFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cc" || ext == ".cpp";
}

bool SkipDirectory(const std::string& name) {
  return name == ".git" || name.rfind("build", 0) == 0 ||
         name == "lint_fixtures" || name == "third_party";
}

std::vector<std::string> CollectFiles(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  for (const std::string& root : paths) {
    fs::path p(root);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p, ec), end;
      while (it != end) {
        if (it->is_directory() &&
            SkipDirectory(it->path().filename().string())) {
          it.disable_recursion_pending();
        } else if (it->is_regular_file() && IsSourceFile(it->path())) {
          files.push_back(it->path().generic_string());
        }
        it.increment(ec);
        if (ec) break;
      }
    } else {
      // Explicit file arguments are always scanned, even fixtures.
      files.push_back(p.generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

bool PassSelected(const AnalyzeOptions& options, const std::string& id) {
  if (options.passes.empty()) return true;
  return std::find(options.passes.begin(), options.passes.end(), id) !=
         options.passes.end();
}

void JsonEscape(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::vector<PassInfo> Passes() {
  return {
      {"include-layering",
       "every cross-module #include must follow the authoritative module "
       "DAG (DESIGN §15); upward edges and cycles rot the build into a "
       "monolith"},
      {"lock-order",
       "the cross-class lock acquisition graph must stay acyclic and inside "
       "the documented hierarchy (DESIGN §10); an undocumented edge is a "
       "latent deadlock"},
      {"blocking-under-lock",
       "syscalls, sleeps, joins and queue waits made under a basm::Mutex "
       "stall every waiter of that lock; blocking sections must drop the "
       "lock (snapshot + revalidate)"},
      {"blocking-in-event-loop",
       "IO loop threads serve every connection of their shard, so event-loop "
       "scope (EventLoop, EpollRpcServer handlers) must never park: no "
       "blocking syscalls, CondVar waits, or poll-and-continue wrappers "
       "(ReadAll/WriteAll/Accept/Submit) — only Chunk/Try/Async variants"},
      {"hot-path-alloc",
       "per-request scoring and wire-decode paths must not hit the "
       "allocator; memory comes from the TensorArena or pre-reserved "
       "containers"},
  };
}

std::vector<lint::SuppressEntry> DefaultBaseline() {
  std::vector<lint::SuppressEntry> entries;
  if (const char* env = std::getenv("BASM_ANALYZE_BASELINE")) {
    if (lint::LoadSuppressionsFile(env, &entries)) return entries;
  }
#ifdef BASM_SOURCE_DIR
  if (lint::LoadSuppressionsFile(
          std::string(BASM_SOURCE_DIR) + "/tools/analyze_baseline.conf",
          &entries)) {
    return entries;
  }
#endif
  (void)lint::LoadSuppressionsFile("tools/analyze_baseline.conf", &entries);
  return entries;
}

AnalyzeReport Analyze(const std::vector<std::string>& paths,
                      const AnalyzeOptions& options) {
  AnalyzeReport report;

  std::vector<FileScan> scans;
  for (const std::string& file : CollectFiles(paths)) {
    FileScan scan = ScanFile(file);
    if (!scan.ok) {
      report.findings.push_back(
          lint::Finding{file, 0, "io-error", "cannot open file"});
      continue;
    }
    scans.push_back(std::move(scan));
  }
  report.files_scanned = static_cast<int>(scans.size());

  ProgramModel model(scans);
  std::vector<lint::Finding> raw;
  auto append = [&raw](std::vector<lint::Finding> f) {
    raw.insert(raw.end(), std::make_move_iterator(f.begin()),
               std::make_move_iterator(f.end()));
  };
  if (PassSelected(options, "include-layering")) {
    append(RunIncludeGraph(scans));
  }
  if (PassSelected(options, "lock-order")) {
    append(RunLockOrder(scans, model));
  }
  if (PassSelected(options, "blocking-under-lock")) {
    append(RunBlockingCalls(scans, model));
  }
  if (PassSelected(options, "blocking-in-event-loop")) {
    append(RunIoLoop(scans));
  }
  if (PassSelected(options, "hot-path-alloc")) {
    append(RunHotPath(scans));
  }

  // Suppression: an inline `// basm-analyze: allow(pass-id)` on the finding
  // line, then the checked-in baseline table.
  std::map<std::string, const FileScan*> by_path;
  for (const FileScan& scan : scans) by_path[scan.path] = &scan;
  for (lint::Finding& finding : raw) {
    auto scan = by_path.find(finding.file);
    if (scan != by_path.end() && finding.line >= 1 &&
        finding.line <= static_cast<int>(scan->second->raw_lines.size()) &&
        lint::MarkerAllows(scan->second->raw_lines[finding.line - 1],
                           "basm-analyze: allow(", finding.rule)) {
      ++report.suppressed_inline;
      continue;
    }
    if (lint::SuppressionsMatch(options.baseline, finding.rule,
                                finding.file)) {
      ++report.suppressed_baseline;
      continue;
    }
    report.findings.push_back(std::move(finding));
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const lint::Finding& a, const lint::Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const lint::Finding& finding : report.findings) {
    ++report.per_pass[finding.rule];
  }
  return report;
}

std::string ReportJson(const AnalyzeReport& report) {
  std::string out = "{\n";
  out += "  \"files_scanned\": " + std::to_string(report.files_scanned) +
         ",\n";
  out += "  \"suppressed\": {\"inline\": " +
         std::to_string(report.suppressed_inline) +
         ", \"baseline\": " + std::to_string(report.suppressed_baseline) +
         "},\n";
  out += "  \"counts\": {";
  bool first = true;
  for (const auto& [pass, count] : report.per_pass) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    JsonEscape(pass, &out);
    out += "\": " + std::to_string(count);
  }
  out += "},\n  \"findings\": [";
  first = true;
  for (const lint::Finding& f : report.findings) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"file\": \"";
    JsonEscape(f.file, &out);
    out += "\", \"line\": " + std::to_string(f.line) + ", \"pass\": \"";
    JsonEscape(f.rule, &out);
    out += "\", \"message\": \"";
    JsonEscape(f.message, &out);
    out += "\"}";
  }
  out += report.findings.empty() ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

}  // namespace basm::analyze
