# Empty dependencies file for spatiotemporal_analysis.
# This may be replaced when dependencies are built.
