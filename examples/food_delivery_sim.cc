// End-to-end food-delivery serving simulation: builds the full online stack
// of the paper's Fig 13 (feature server -> location-based recall -> model
// scoring -> top-k exposure -> click feedback) and runs a live A/B test
// between the production base model (DIN variant) and BASM.
//
// This is the "online" counterpart of the quickstart: the same World that
// generated the offline training data serves the traffic, so offline gains
// translate into online CTR lift like they do in the paper's Table VII.

#include <cstdio>

#include "common/env.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "feature_store/feature_store.h"
#include "serving/ab_stats.h"
#include "serving/simulator.h"
#include "train/trainer.h"

int main() {
  using namespace basm;
  bool fast = basm::FastMode();

  // A compact world so the example finishes in ~a minute.
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 1200;
  config.num_items = 700;
  config.num_cities = 6;
  config.requests_per_day = fast ? 60 : 300;
  config.days = 5;
  config.test_day = 4;
  data::World world(config);
  data::Dataset dataset = data::GenerateDataset(config);
  std::printf("world: %lld users, %lld items, %lld cities\n",
              static_cast<long long>(config.num_users),
              static_cast<long long>(config.num_items),
              static_cast<long long>(config.num_cities));

  // Offline training of both arms on logged impressions.
  train::TrainConfig tc;
  tc.epochs = fast ? 1 : 2;
  std::printf("training Base (DIN variant) offline...\n");
  auto base =
      core::CreateModel(core::ModelKind::kBaseDin, dataset.schema, 7);
  train::Fit(*base, dataset, tc);
  std::printf("training BASM offline...\n");
  auto basm_model =
      core::CreateModel(core::ModelKind::kBasm, dataset.schema, 7);
  train::Fit(*basm_model, dataset, tc);

  // One serve-path walkthrough for a single request.
  feature_store::FeatureServer features(world, config.seq_len, /*seed=*/3);
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);
  serving::Pipeline pipeline(world, &store, &recall, basm_model.get(),
                             /*recall_size=*/20, /*expose_k=*/5);
  serving::Request req;
  req.user_id = 42;
  req.hour = 12;
  req.weekday = 2;
  req.city = world.user(42).city;
  Rng rng(11);
  auto slate = pipeline.Serve(req, rng);
  std::printf("\nsample request: user 42 at hour 12 in city %d -> slate:\n",
              req.city);
  for (const auto& item : slate) {
    std::printf("  pos %d: item %5d (category %2d, score %.3f)\n",
                item.position, item.item_id,
                world.item(item.item_id).category, item.score);
  }

  // The 7-day A/B experiment.
  serving::AbTestConfig ab;
  ab.days = 7;
  ab.requests_per_day = fast ? 50 : 250;
  std::printf("\nrunning 7-day A/B (%lld requests/day/arm)...\n",
              static_cast<long long>(ab.requests_per_day));
  serving::OnlineSimulator simulator(world, ab);
  serving::AbTestResult result = simulator.Run(*base, *basm_model);
  for (int day = 0; day < ab.days; ++day) {
    std::printf("  day %d: base CTR %.2f%%  BASM CTR %.2f%%  (%+.2f%%)\n",
                day + 1, 100 * result.base.daily[day].ctr(),
                100 * result.treatment.daily[day].ctr(),
                100 * result.daily_improvement[day]);
  }
  std::printf("average relative CTR improvement: %+.2f%% (paper: +6.51%%)\n",
              100 * result.average_improvement);

  // Is the lift real? The readout a launch review would ask for.
  serving::SignificanceResult sig = serving::Significance(result);
  std::printf("two-proportion z-test: z=%.2f, p=%.4f -> %s at alpha=0.05\n",
              sig.z, sig.p_value,
              sig.significant_at_05 ? "SIGNIFICANT" : "not significant");
  return 0;
}
