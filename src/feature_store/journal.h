#ifndef BASM_FEATURE_STORE_JOURNAL_H_
#define BASM_FEATURE_STORE_JOURNAL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "data/schema.h"

namespace basm::feature_store {

/// Fault site name evaluated before every journal append (see
/// FaultInjector). Like the pipeline's recall site this defaults to
/// FromEnv(), so BASM_FAULT_RATE injects append/fsync failures with no
/// code changes. An injected failure drops the click from the journal
/// (counted in write_failures) and never fails the request — durability
/// degrades, serving does not.
inline constexpr char kJournalFaultSite[] = "feature_store.journal";

/// Record header layout (16 bytes, little-endian, mirroring the wire
/// protocol's discipline in src/net/wire.h):
///
///   offset  size  field
///   0       4     magic 0x4C4A5342 ("BSJL")
///   4       1     format version (kJournalVersion)
///   5       1     record type (kJournalClickRecord)
///   6       2     flags, must be zero
///   8       4     payload size in bytes (<= kJournalMaxPayloadBytes)
///   12      4     FNV-1a checksum of the payload
///
/// followed by the payload. A click payload is 8 little-endian int32s:
/// user_id then the seven BehaviorEvent fields.
inline constexpr uint32_t kJournalMagic = 0x4C4A5342u;
inline constexpr uint8_t kJournalVersion = 1;
inline constexpr uint8_t kJournalClickRecord = 1;
inline constexpr size_t kJournalHeaderBytes = 16;
inline constexpr uint32_t kJournalMaxPayloadBytes = 4096;
inline constexpr size_t kJournalClickPayloadBytes = 32;

struct JournalConfig {
  /// Segment directory. Empty disables journaling entirely (the store
  /// then behaves exactly as before this subsystem existed).
  std::string dir;
  /// Group commit: fsync once per this many appends...
  int64_t group_commit_appends = 32;
  /// ...or when this much time passed since the last fsync, whichever
  /// comes first. <= 0 fsyncs on every append.
  int64_t flush_interval_micros = 2000;
  /// Active segment is sealed (atomic rename) and a new one opened once it
  /// grows past this.
  int64_t max_segment_bytes = 1 << 20;
};

/// Lifetime counters of one journal (folded into FeatureStoreStats).
struct JournalStats {
  int64_t appends = 0;         ///< records durably written to the segment
  int64_t fsyncs = 0;          ///< group-commit fsync calls issued
  int64_t write_failures = 0;  ///< appends dropped (injected or real IO)
  int64_t rotations = 0;       ///< segments sealed at max_segment_bytes
  int64_t bytes_written = 0;   ///< total record bytes appended
  int64_t recovered = 0;       ///< records replayed by ReplayInto
  int64_t truncated_tail_bytes = 0;  ///< torn-tail bytes cut at replay
};

/// One recovered click.
struct ClickRecord {
  int32_t user_id = 0;
  data::BehaviorEvent event;
};

/// What one ReplayInto pass did.
struct ReplayReport {
  int64_t recovered = 0;             ///< intact records replayed
  int64_t truncated_tail_bytes = 0;  ///< bytes cut at the first bad record
  int64_t segments = 0;              ///< sealed segments scanned
};

/// Append-only, checksummed write-ahead click journal — the durability
/// floor under FeatureStore::RecordClick. Records are length-prefixed and
/// individually checksummed (FNV-1a, the same discipline as the wire
/// protocol and checkpoint v3); appends are write()n immediately and
/// fsync'd in batches (group commit); full segments are sealed via an
/// atomic rename (the tmp+rename publish of ModelRegistry::SaveHead:
/// `seg-N.bjl.open` becomes `seg-N.bjl` only once complete). Replay walks
/// the sealed segments in order and, at the first bad checksum, truncates
/// the torn tail in place instead of failing — a crashed process restarts
/// with every intact click and never a failed startup.
///
/// Thread-safe: appends serialize on one internal mutex (the group-commit
/// fsync batches them). ReplayInto is meant for startup, before appends
/// begin; it only touches segments sealed before this journal opened its
/// active segment, so recovered clicks are never double-replayed.
class ClickJournal {
 public:
  /// Opens (creating the directory if needed) and starts a fresh active
  /// segment. Any `.open` segment left by a crashed predecessor is sealed
  /// first, so ReplayInto sees it. An unusable directory never throws: the
  /// journal marks itself broken and every append fails softly into
  /// write_failures.
  explicit ClickJournal(JournalConfig config);
  ~ClickJournal();

  ClickJournal(const ClickJournal&) = delete;
  ClickJournal& operator=(const ClickJournal&) = delete;

  /// Write-ahead append of one click. Evaluates kJournalFaultSite first
  /// (injected delay sleeps, injected error drops the record and counts a
  /// write failure). On success the record bytes are in the kernel page
  /// cache (they survive a SIGKILL); group commit decides when fsync makes
  /// them survive power loss too.
  [[nodiscard]] Status AppendRecord(int32_t user_id,
                                    const data::BehaviorEvent& event)
      BASM_EXCLUDES(mu_);

  /// Flushes + fsyncs whatever appends are pending (the tail of the last
  /// group-commit window). The destructor calls it.
  [[nodiscard]] Status Sync() BASM_EXCLUDES(mu_);

  /// Replays every intact record of every sealed segment, oldest first,
  /// into `apply`. At the first corrupt record the segment is truncated at
  /// that offset (the torn-tail rule) and replay stops; this is an OK
  /// outcome, reported via `report->truncated_tail_bytes`. Only real IO
  /// errors (unreadable directory) return non-OK. `report` may be null.
  [[nodiscard]] Status ReplayInto(
      const std::function<void(const ClickRecord&)>& apply,
      ReplayReport* report = nullptr) BASM_EXCLUDES(mu_);

  /// Routes appends through `injector` (borrowed; nullptr restores the
  /// clean path). Defaults to FaultInjector::FromEnv().
  void SetFaultInjector(FaultInjector* injector) { injector_ = injector; }

  JournalStats stats() const BASM_EXCLUDES(mu_);
  const JournalConfig& config() const { return config_; }
  /// False when the directory could not be opened (appends fail softly).
  bool healthy() const BASM_EXCLUDES(mu_);

  /// Codec, exposed for the corruption-corpus tests. EncodeRecord appends
  /// header + payload to `out`; DecodeRecord validates one record at
  /// `data` (magic, version, type, zero flags, payload cap, checksum,
  /// exact click payload size) without ever reading past `size`, and
  /// reports the bytes consumed.
  static void EncodeRecord(const ClickRecord& record,
                           std::vector<uint8_t>* out);
  [[nodiscard]] static Status DecodeRecord(const uint8_t* data, size_t size,
                                           ClickRecord* out,
                                           size_t* consumed);

 private:
  using Clock = std::chrono::steady_clock;

  /// Opens a fresh `seg-<next_index_>.bjl.open` for appending.
  void OpenActiveLocked() BASM_REQUIRES(mu_);
  /// fsync + close + atomic-rename the active segment to its sealed name.
  void SealActiveLocked() BASM_REQUIRES(mu_);
  [[nodiscard]] Status SyncLocked() BASM_REQUIRES(mu_);

  JournalConfig config_;
  FaultInjector* injector_;

  mutable Mutex mu_;
  int fd_ BASM_GUARDED_BY(mu_) = -1;
  std::string active_path_ BASM_GUARDED_BY(mu_);
  int64_t next_index_ BASM_GUARDED_BY(mu_) = 0;
  int64_t segment_bytes_ BASM_GUARDED_BY(mu_) = 0;
  int64_t pending_appends_ BASM_GUARDED_BY(mu_) = 0;
  Clock::time_point last_sync_ BASM_GUARDED_BY(mu_);
  bool broken_ BASM_GUARDED_BY(mu_) = false;
  JournalStats stats_ BASM_GUARDED_BY(mu_);
};

}  // namespace basm::feature_store

#endif  // BASM_FEATURE_STORE_JOURNAL_H_
