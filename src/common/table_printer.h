#ifndef BASM_COMMON_TABLE_PRINTER_H_
#define BASM_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace basm {

/// Renders aligned ASCII tables for the bench harness, matching the row /
/// column layout of the paper's tables so outputs are directly comparable.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimals.
  static std::string Num(double v, int precision = 4);

  /// Renders the table with a separator under the header.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace basm

#endif  // BASM_COMMON_TABLE_PRINTER_H_
