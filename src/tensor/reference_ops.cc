#include "tensor/reference_ops.h"

namespace basm::ops::reference {

void GemmAccumulate(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t p = 0; p < k; ++p) {
      float av = a_row[p];
      if (av == 0.0f) continue;
      const float* b_row = b + p * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

void GemmTransAAccumulate(const float* a, const float* b, float* c, int64_t m,
                          int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      float av = a_row[p];
      if (av == 0.0f) continue;
      float* c_row = c + p * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

void GemmTransB(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] = acc;
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  BASM_CHECK_EQ(b.rank(), 2);
  BASM_CHECK_EQ(a.cols(), b.rows())
      << ShapeToString(a.shape()) << " x " << ShapeToString(b.shape());
  Tensor c({a.rows(), b.cols()});
  GemmAccumulate(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  BASM_CHECK_EQ(b.rank(), 2);
  BASM_CHECK_EQ(a.rows(), b.rows());
  Tensor c({a.cols(), b.cols()});
  GemmTransAAccumulate(a.data(), b.data(), c.data(), a.rows(), a.cols(),
                       b.cols());
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  BASM_CHECK_EQ(b.rank(), 2);
  BASM_CHECK_EQ(a.cols(), b.cols());
  Tensor c({a.rows(), b.rows()});
  GemmTransB(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.rows());
  return c;
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 3);
  BASM_CHECK_EQ(b.rank(), 3);
  BASM_CHECK_EQ(a.dim(0), b.dim(0));
  BASM_CHECK_EQ(a.dim(2), b.dim(1));
  int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  Tensor c({bs, m, n});
  for (int64_t i = 0; i < bs; ++i) {
    GemmAccumulate(a.data() + i * m * k, b.data() + i * k * n,
                   c.data() + i * m * n, m, k, n);
  }
  return c;
}

Tensor BatchedMatMulTransA(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 3);
  BASM_CHECK_EQ(b.rank(), 3);
  BASM_CHECK_EQ(a.dim(0), b.dim(0));
  BASM_CHECK_EQ(a.dim(1), b.dim(1));
  int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  Tensor c({bs, k, n});
  for (int64_t bi = 0; bi < bs; ++bi) {
    GemmTransAAccumulate(a.data() + bi * m * k, b.data() + bi * m * n,
                         c.data() + bi * k * n, m, k, n);
  }
  return c;
}

Tensor BatchedMatMulTransB(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 3);
  BASM_CHECK_EQ(b.rank(), 3);
  BASM_CHECK_EQ(a.dim(0), b.dim(0));
  BASM_CHECK_EQ(a.dim(2), b.dim(2));
  int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(1);
  Tensor c({bs, m, n});
  for (int64_t bi = 0; bi < bs; ++bi) {
    GemmTransB(a.data() + bi * m * k, b.data() + bi * n * k,
               c.data() + bi * m * n, m, k, n);
  }
  return c;
}

}  // namespace basm::ops::reference
