# Empty dependencies file for fig6_spatiotemporal_bias.
# This may be replaced when dependencies are built.
