#include "tensor/arena.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace basm {
namespace {

constexpr int64_t kAlignment = 64;
// Per-thread cap on parked bytes. Serving forwards recycle a few MB of
// recurring shapes; the cap only matters if something pathological (one huge
// tensor per request, never the same size twice) flows through a scope.
constexpr int64_t kMaxHeldBytes = 64ll << 20;

std::atomic<int64_t> g_total_fresh_allocs{0};
std::atomic<int64_t> g_total_reuses{0};

int64_t AlignedBytes(int64_t numel) {
  const int64_t bytes = numel * static_cast<int64_t>(sizeof(float));
  return (bytes + kAlignment - 1) / kAlignment * kAlignment;
}

thread_local int g_arena_scope_depth = 0;

}  // namespace

float* AlignedAllocFloats(int64_t numel) {
  if (numel <= 0) return nullptr;
  void* ptr = std::aligned_alloc(kAlignment,
                                 static_cast<size_t>(AlignedBytes(numel)));
  BASM_CHECK(ptr != nullptr) << "aligned_alloc of " << numel << " floats";
  g_total_fresh_allocs.fetch_add(1, std::memory_order_relaxed);
  return static_cast<float*>(ptr);
}

void AlignedFreeFloats(float* ptr) { std::free(ptr); }

TensorArena& TensorArena::ThreadLocal() {
  thread_local TensorArena arena;
  return arena;
}

TensorArena* TensorArena::Active() {
  return g_arena_scope_depth > 0 ? &ThreadLocal() : nullptr;
}

float* TensorArena::Allocate(int64_t numel) {
  if (numel <= 0) return nullptr;
  auto it = free_lists_.find(numel);
  if (it != free_lists_.end() && !it->second.empty()) {
    float* ptr = it->second.back();
    it->second.pop_back();
    stats_.reuses += 1;
    stats_.held_blocks -= 1;
    stats_.held_bytes -= AlignedBytes(numel);
    g_total_reuses.fetch_add(1, std::memory_order_relaxed);
    return ptr;
  }
  stats_.fresh_allocs += 1;
  return AlignedAllocFloats(numel);
}

bool TensorArena::Recycle(float* ptr, int64_t numel) {
  if (ptr == nullptr || numel <= 0) return false;
  const int64_t bytes = AlignedBytes(numel);
  if (stats_.held_bytes + bytes > kMaxHeldBytes) return false;
  free_lists_[numel].push_back(ptr);
  stats_.recycles += 1;
  stats_.held_blocks += 1;
  stats_.held_bytes += bytes;
  return true;
}

void TensorArena::Trim() {
  for (auto& [numel, blocks] : free_lists_) {
    (void)numel;
    for (float* ptr : blocks) AlignedFreeFloats(ptr);
    blocks.clear();
  }
  free_lists_.clear();
  stats_.held_blocks = 0;
  stats_.held_bytes = 0;
}

TensorArena::~TensorArena() { Trim(); }

int64_t TensorArena::TotalFreshAllocs() {
  return g_total_fresh_allocs.load(std::memory_order_relaxed);
}

int64_t TensorArena::TotalReuses() {
  return g_total_reuses.load(std::memory_order_relaxed);
}

ArenaScope::ArenaScope() { ++g_arena_scope_depth; }

ArenaScope::~ArenaScope() { --g_arena_scope_depth; }

AlignedBuffer::AlignedBuffer(int64_t n) {
  Acquire(n);
  if (data_ != nullptr) {
    std::memset(data_, 0, static_cast<size_t>(n) * sizeof(float));
  }
}

AlignedBuffer::AlignedBuffer(int64_t n, Uninit) { Acquire(n); }

AlignedBuffer::AlignedBuffer(const AlignedBuffer& other) {
  Acquire(other.size_);
  if (data_ != nullptr) {
    std::memcpy(data_, other.data_,
                static_cast<size_t>(size_) * sizeof(float));
  }
}

AlignedBuffer& AlignedBuffer::operator=(const AlignedBuffer& other) {
  if (this == &other) return *this;
  // Reuse in-place only on exact size match; otherwise release and reacquire
  // (possibly from the arena freelist).
  if (size_ != other.size_) {
    ReleaseStorage();
    Acquire(other.size_);
  }
  if (data_ != nullptr) {
    std::memcpy(data_, other.data_,
                static_cast<size_t>(size_) * sizeof(float));
  }
  return *this;
}

AlignedBuffer::AlignedBuffer(AlignedBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_) {
  other.data_ = nullptr;
  other.size_ = 0;
}

AlignedBuffer& AlignedBuffer::operator=(AlignedBuffer&& other) noexcept {
  if (this == &other) return *this;
  ReleaseStorage();
  data_ = other.data_;
  size_ = other.size_;
  other.data_ = nullptr;
  other.size_ = 0;
  return *this;
}

AlignedBuffer::~AlignedBuffer() { ReleaseStorage(); }

void AlignedBuffer::Acquire(int64_t n) {
  size_ = n > 0 ? n : 0;
  if (size_ == 0) {
    data_ = nullptr;
    return;
  }
  TensorArena* arena = TensorArena::Active();
  data_ = arena != nullptr ? arena->Allocate(size_) : AlignedAllocFloats(size_);
}

void AlignedBuffer::ReleaseStorage() {
  if (data_ == nullptr) return;
  TensorArena* arena = TensorArena::Active();
  if (arena == nullptr || !arena->Recycle(data_, size_)) {
    AlignedFreeFloats(data_);
  }
  data_ = nullptr;
  size_ = 0;
}

}  // namespace basm
