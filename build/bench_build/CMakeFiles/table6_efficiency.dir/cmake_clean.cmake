file(REMOVE_RECURSE
  "../bench/table6_efficiency"
  "../bench/table6_efficiency.pdb"
  "CMakeFiles/table6_efficiency.dir/table6_efficiency.cc.o"
  "CMakeFiles/table6_efficiency.dir/table6_efficiency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
