// Feature-store bench: the stale-cache and prefetch-overlap cells behind
// src/feature_store/. Two experiments feed the "feature_store" section of
// BENCH_serving.json:
//
//   "stale"    — capacity sweep of the last-known-features hit rate under a
//                total ABFS outage, Zipf-skewed users: how much of the
//                degraded traffic serves a real (stale) behavior window
//                instead of an empty one, per LRU budget.
//   "prefetch" — engine-level qps with async prefetch off vs on, under an
//                injected per-fetch RPC latency standing in for a remote
//                ABFS round-trip, plus the overlap counters (issued / hits /
//                discarded) that say how much fetch cost scoring hid.
//   "journal"  — serving qps (rank + click per request) with the write-ahead
//                click journal off vs on: the append overhead the durability
//                guarantee costs on the hot path (< 5% is the budget).
//   "staleness"— served-staleness percentiles under a TTL budget: windows
//                inside the budget serve (p50/p99 exported), windows beyond
//                it expire to empty and are counted, never served.
//
// Intentionally a plain main() (not google-benchmark): each cell is one
// closed-loop run whose counters are the result.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "common/env.h"
#include "common/fault.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "core/model_zoo.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace {

using namespace basm;

void AppendJsonNumber(std::ostringstream& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out << buf;
}

}  // namespace

int main() {
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 2000;
  config.num_items = 1500;
  config.num_cities = 8;
  data::World world(config);

  const int64_t warm_requests =
      basm::EnvInt("BASM_FS_WARM_REQUESTS", basm::FastMode() ? 600 : 4000);
  const int64_t outage_requests = warm_requests / 2;

  std::printf("feature store bench: %lld warm + %lld outage requests, "
              "%lld users, hardware threads %u\n\n",
              static_cast<long long>(warm_requests),
              static_cast<long long>(outage_requests),
              static_cast<long long>(config.num_users),
              std::thread::hardware_concurrency());

  // --- stale hit-rate vs LRU budget under a total outage ------------------
  // Zipf-skewed traffic (head users dominate, like the fleet client): warm
  // the cache through the facade, then kill the dependency outright and
  // count how many degraded requests still find a last-known window.
  ZipfTable zipf(config.num_users, 1.1);
  std::ostringstream stale_json;
  stale_json << "[";
  std::printf("%-18s %-12s %-12s %-12s %-10s %s\n", "capacity/shard",
              "stale_hits", "stale_miss", "hit_rate", "evictions",
              "cache_entries");
  bool first = true;
  for (int64_t capacity : {16, 64, 256}) {
    feature_store::FeatureServer server(world, world.config().seq_len, 3);
    FaultInjector storm(7);
    server.SetFaultInjector(&storm);
    feature_store::FeatureStoreConfig cache_config;
    cache_config.num_shards = 8;
    cache_config.capacity_per_shard = capacity;
    feature_store::FeatureStore store(&server, cache_config);

    Rng rng(0xFEED);  // same user sequence for every capacity
    for (int64_t i = 0; i < warm_requests; ++i) {
      const int32_t user = static_cast<int32_t>(zipf.Sample(rng));
      StatusOr<feature_store::FeatureServer::UserFeatures> fetched =
          store.FetchFeatures(user);
      if (!fetched.ok()) std::printf("unexpected warm failure\n");
    }

    FaultSiteConfig outage;
    outage.error_probability = 1.0;
    outage.error_message = "abfs down";
    storm.Configure(feature_store::kFeatureFetchFaultSite, outage);
    for (int64_t i = 0; i < outage_requests; ++i) {
      const int32_t user = static_cast<int32_t>(zipf.Sample(rng));
      StatusOr<feature_store::FeatureServer::UserFeatures> fetched =
          store.FetchFeatures(user);
      if (!fetched.ok()) (void)store.LastKnownFeatures(user);
    }

    const feature_store::FeatureStoreStats stats = store.stats();
    const double hit_rate =
        static_cast<double>(stats.stale_hits) /
        static_cast<double>(stats.stale_hits + stats.stale_misses);
    std::printf("%-18lld %-12lld %-12lld %-12.3f %-10lld %lld\n",
                static_cast<long long>(capacity),
                static_cast<long long>(stats.stale_hits),
                static_cast<long long>(stats.stale_misses), hit_rate,
                static_cast<long long>(stats.evictions),
                static_cast<long long>(stats.cache_entries));

    if (!first) stale_json << ",";
    first = false;
    stale_json << "\n      {\"capacity_per_shard\": " << capacity
               << ", \"warm_requests\": " << warm_requests
               << ", \"outage_requests\": " << outage_requests
               << ", \"stale_hits\": " << stats.stale_hits
               << ", \"stale_misses\": " << stats.stale_misses
               << ", \"evictions\": " << stats.evictions
               << ", \"stale_hit_rate\": ";
    AppendJsonNumber(stale_json, hit_rate);
    stale_json << "}";
  }
  stale_json << "\n    ]";

  // --- prefetch overlap: engine qps with prefetch off vs on ---------------
  // Every fetch pays an injected latency spike (a remote ABFS round-trip);
  // the fault-tolerant pipeline routes the foreground fetch through the
  // same fallible path, so the off-cell pays the RPC inline while the
  // on-cells overlap it with the previous batch's scoring.
  feature_store::FeatureServer rpc_server(world, world.config().seq_len, 3);
  FaultInjector rpc(11);
  FaultSiteConfig latency;
  latency.spike_probability = 1.0;
  latency.spike_micros = 150;
  rpc.Configure(feature_store::kFeatureFetchFaultSite, latency);
  rpc_server.SetFaultInjector(&rpc);
  feature_store::FeatureStore store(&rpc_server);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 42);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/24, /*expose_k=*/8);
  pipeline.EnableFaultTolerance(serving::FeatureFaultPolicy{});

  runtime::LoadConfig load;
  load.num_requests =
      basm::EnvInt("BASM_FS_REQUESTS", basm::FastMode() ? 200 : 1200);
  load.concurrency = 32;

  std::printf("\nprefetch sweep: %lld requests/cell, injected fetch "
              "latency %lldus\n",
              static_cast<long long>(load.num_requests),
              static_cast<long long>(latency.spike_micros));
  std::printf("%-10s %-8s %-9s %-10s %-8s %-8s %-10s %s\n", "threads",
              "window", "qps", "delta_pct", "issued", "hits", "discarded",
              "hit_rate");

  struct PrefetchCell {
    int32_t threads;
    int64_t window;
  };
  std::ostringstream prefetch_json;
  prefetch_json << "[";
  first = true;
  double baseline_qps = 0.0;
  for (const PrefetchCell& cell :
       {PrefetchCell{0, 8}, PrefetchCell{1, 4}, PrefetchCell{2, 8}}) {
    runtime::EngineConfig ec;
    ec.num_workers = 2;
    ec.max_batch_requests = 4;
    ec.max_wait_micros = 200;
    ec.prefetch_threads = cell.threads;
    ec.prefetch_window = cell.window;
    runtime::ServingEngine engine(&pipeline, ec);

    const feature_store::FeatureStoreStats before = store.stats();
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    const feature_store::FeatureStoreStats after = store.stats();

    if (cell.threads == 0) baseline_qps = report.qps;
    const double delta_pct =
        baseline_qps > 0 ? 100.0 * (report.qps - baseline_qps) / baseline_qps
                         : 0.0;
    const int64_t issued = after.prefetch_issued - before.prefetch_issued;
    const int64_t hits = after.prefetch_hits - before.prefetch_hits;
    const int64_t discarded =
        after.prefetch_discarded - before.prefetch_discarded;
    const double hit_rate =
        static_cast<double>(hits) / static_cast<double>(load.num_requests);
    std::printf("%-10d %-8lld %-9.1f %-10.1f %-8lld %-8lld %-10lld %.3f\n",
                cell.threads, static_cast<long long>(cell.window), report.qps,
                delta_pct, static_cast<long long>(issued),
                static_cast<long long>(hits),
                static_cast<long long>(discarded), hit_rate);

    if (!first) prefetch_json << ",";
    first = false;
    prefetch_json << "\n      {\"prefetch_threads\": " << cell.threads
                  << ", \"prefetch_window\": " << cell.window
                  << ", \"requests\": " << load.num_requests
                  << ", \"fetch_latency_micros\": " << latency.spike_micros
                  << ", \"qps\": ";
    AppendJsonNumber(prefetch_json, report.qps);
    prefetch_json << ", \"qps_delta_pct\": ";
    AppendJsonNumber(prefetch_json, delta_pct);
    prefetch_json << ", \"prefetch_issued\": " << issued
                  << ", \"prefetch_hits\": " << hits
                  << ", \"prefetch_discarded\": " << discarded
                  << ", \"prefetch_hit_rate\": ";
    AppendJsonNumber(prefetch_json, hit_rate);
    prefetch_json << "}";
  }
  prefetch_json << "\n    ]";

  // --- journal append overhead on the serving path ------------------------
  // Each request ranks a slate and records one click; the journaled arm
  // additionally write-aheads every click. The qps delta is the price of
  // durability on the hot path — the budget is < 5%.
  struct ClickTraffic {
    serving::Request request;
    std::vector<int32_t> candidates;
    data::BehaviorEvent click;
  };
  const int64_t journal_requests =
      basm::EnvInt("BASM_FS_JOURNAL_REQUESTS", basm::FastMode() ? 300 : 1500);
  std::vector<ClickTraffic> traffic;
  traffic.reserve(journal_requests);
  Rng journal_rng(0xC11C);
  for (int64_t r = 0; r < journal_requests; ++r) {
    ClickTraffic t;
    t.request.user_id = static_cast<int32_t>(zipf.Sample(journal_rng));
    t.request.hour = world.SampleHour(journal_rng);
    t.request.weekday = static_cast<int32_t>(r % 7);
    t.request.city = world.user(t.request.user_id).city;
    t.request.request_id = static_cast<int32_t>(r);
    t.candidates = recall.RecallByCity(t.request.city, 24, journal_rng);
    t.click = world.SampleHistory(t.request.user_id, 1, journal_rng)[0];
    traffic.push_back(std::move(t));
  }

  const std::filesystem::path journal_dir =
      std::filesystem::temp_directory_path() / "basm_bench_journal";
  struct ClickArm {
    std::unique_ptr<feature_store::FeatureServer> server;
    std::unique_ptr<feature_store::FeatureStore> store;
    std::unique_ptr<serving::Pipeline> pipeline;
    std::vector<double> chunk_seconds_per_request;
  };
  auto make_click_arm = [&](bool journaled) {
    ClickArm arm;
    arm.server = std::make_unique<feature_store::FeatureServer>(
        world, world.config().seq_len, 3);
    feature_store::FeatureStoreConfig click_config;
    if (journaled) {
      std::filesystem::remove_all(journal_dir);
      click_config.journal.dir = journal_dir.string();
      // Production group-commit cadence: the SIGKILL guarantee comes from
      // the per-append write(), so the fsync batch can be generous — one
      // disk flush per ~100ms of traffic instead of one per handful of
      // clicks. The tight test-suite defaults would put the fsync (and its
      // device-latency jitter), not the append, on the scale.
      click_config.journal.group_commit_appends = 256;
      click_config.journal.flush_interval_micros = 100 * 1000;
    }
    arm.store = std::make_unique<feature_store::FeatureStore>(
        arm.server.get(), click_config);
    if (journaled) arm.store->journal()->SetFaultInjector(nullptr);
    arm.pipeline = std::make_unique<serving::Pipeline>(
        world, arm.store.get(), &recall, model.get(), 24, 8);
    return arm;
  };
  auto run_click_chunk = [&](ClickArm& arm, size_t begin, size_t end) {
    WallTimer timer;
    for (size_t i = begin; i < end; ++i) {
      const ClickTraffic& t = traffic[i];
      (void)arm.pipeline->RankCandidates(t.request, t.candidates);
      arm.store->RecordClick(t.request.user_id, t.click);
    }
    arm.chunk_seconds_per_request.push_back(
        timer.ElapsedSeconds() / static_cast<double>(end - begin));
  };
  auto median_seconds_per_request = [](ClickArm& arm) {
    std::vector<double>& samples = arm.chunk_seconds_per_request;
    std::nth_element(samples.begin(), samples.begin() + samples.size() / 2,
                     samples.end());
    return samples[samples.size() / 2];
  };

  // The two arms alternate every `kChunk` requests, and each arm's
  // steady-state cost is the *median* per-request chunk time. Two noise
  // sources would otherwise swamp a few-percent delta on a busy one-core
  // box: machine drift between the arms (killed by the fine-grained
  // interleave, which marches both arms through the same drift) and
  // device-latency jitter on the occasional inline group-commit fsync
  // (killed by the median — the fsync cadence is ~one chunk in ten, so the
  // median chunk prices exactly what the cell claims: the per-click append).
  // The fsync count itself is still reported alongside.
  constexpr size_t kChunk = 64;
  ClickArm arm_off = make_click_arm(false);
  ClickArm arm_on = make_click_arm(true);
  // Warmup pass: fault the caches, open the first journal segment.
  run_click_chunk(arm_off, 0, traffic.size());
  run_click_chunk(arm_on, 0, traffic.size());
  arm_off.chunk_seconds_per_request.clear();
  arm_on.chunk_seconds_per_request.clear();
  const int journal_rounds = basm::FastMode() ? 4 : 5;
  for (int round = 0; round < journal_rounds; ++round) {
    for (size_t begin = 0; begin < traffic.size(); begin += kChunk) {
      const size_t end = std::min(begin + kChunk, traffic.size());
      run_click_chunk(arm_off, begin, end);
      run_click_chunk(arm_on, begin, end);
    }
  }
  const int64_t timed_requests = journal_rounds * journal_requests;
  const double qps_off = 1.0 / median_seconds_per_request(arm_off);
  const double qps_on = 1.0 / median_seconds_per_request(arm_on);
  const feature_store::FeatureStoreStats stats_on = arm_on.store->stats();
  const double overhead_pct =
      qps_off > 0 ? 100.0 * (qps_off - qps_on) / qps_off : 0.0;
  std::printf("\njournal overhead: %lld rank+click requests/arm "
              "(%d interleaved rounds)\n",
              static_cast<long long>(timed_requests), journal_rounds);
  std::printf("%-10s %-10s %-14s %-10s %s\n", "arm", "qps", "overhead_pct",
              "appends", "fsyncs");
  std::printf("%-10s %-10.1f %-14s %-10s %s\n", "off", qps_off, "-", "-",
              "-");
  std::printf("%-10s %-10.1f %-14.2f %-10lld %lld\n", "on", qps_on,
              overhead_pct, static_cast<long long>(stats_on.journal_appends),
              static_cast<long long>(stats_on.journal_fsyncs));
  std::filesystem::remove_all(journal_dir);

  std::ostringstream journal_json;
  journal_json << "{\"requests\": " << timed_requests << ", \"qps_off\": ";
  AppendJsonNumber(journal_json, qps_off);
  journal_json << ", \"qps_on\": ";
  AppendJsonNumber(journal_json, qps_on);
  journal_json << ", \"append_overhead_pct\": ";
  AppendJsonNumber(journal_json, overhead_pct);
  journal_json << ", \"journal_appends\": " << stats_on.journal_appends
               << ", \"journal_fsyncs\": " << stats_on.journal_fsyncs
               << ", \"journal_write_failures\": "
               << stats_on.journal_write_failures << "}";

  // --- served staleness under a TTL budget --------------------------------
  // Warm a user population, cut the dependency, and serve stale windows for
  // a few aging rounds inside the budget; then outlive the budget and show
  // every further fallback expiring to empty instead of serving.
  const int64_t budget_micros = 250 * 1000;
  feature_store::FeatureServer ttl_server(world, world.config().seq_len, 3);
  feature_store::FeatureStoreConfig ttl_config;
  ttl_config.max_stale_age_micros = budget_micros;
  feature_store::FeatureStore ttl_store(&ttl_server, ttl_config);
  const int32_t ttl_users = basm::FastMode() ? 128 : 512;
  for (int32_t u = 0; u < ttl_users; ++u) (void)ttl_store.GetFeatures(u);
  for (int round = 0; round < 3; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    for (int32_t u = 0; u < ttl_users; ++u) {
      (void)ttl_store.LastKnownFeatures(u);
    }
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (int32_t u = 0; u < ttl_users; ++u) {
    (void)ttl_store.LastKnownFeatures(u);  // beyond budget: all expire
  }
  const feature_store::FeatureStoreStats ttl_stats = ttl_store.stats();
  std::printf("\nttl staleness: budget %lldus, served p50 %lldus p99 %lldus, "
              "expired %lld\n",
              static_cast<long long>(budget_micros),
              static_cast<long long>(ttl_stats.served_staleness_p50_micros),
              static_cast<long long>(ttl_stats.served_staleness_p99_micros),
              static_cast<long long>(ttl_stats.stale_expired));
  std::ostringstream staleness_json;
  staleness_json << "{\"budget_micros\": " << budget_micros
                 << ", \"served_staleness_p50\": "
                 << ttl_stats.served_staleness_p50_micros
                 << ", \"served_staleness_p99\": "
                 << ttl_stats.served_staleness_p99_micros
                 << ", \"stale_expired\": " << ttl_stats.stale_expired
                 << "}";

  std::ostringstream section;
  section << "{\n    \"stale\": " << stale_json.str()
          << ",\n    \"prefetch\": " << prefetch_json.str()
          << ",\n    \"journal\": " << journal_json.str()
          << ",\n    \"staleness\": " << staleness_json.str() << "\n  }";
  const std::string json_path =
      basm::EnvString("BASM_BENCH_JSON", "BENCH_serving.json");
  if (basm::bench::UpdateBenchJsonSection(json_path, "feature_store",
                                          section.str())) {
    std::printf("\nwrote \"feature_store\" section of %s\n",
                json_path.c_str());
  } else {
    std::printf("\nFAILED to write %s\n", json_path.c_str());
  }
  return 0;
}
