#include "serving/recall.h"

#include <unordered_set>

#include "common/logging.h"

namespace basm::serving {

RecallIndex::RecallIndex(const data::World& world) : world_(world) {
  int64_t num_cities = world.config().num_cities;
  by_city_.resize(num_cities);
  city_weights_.resize(num_cities);
  for (int64_t c = 0; c < num_cities; ++c) {
    for (int32_t item : world.CityItems(static_cast<int32_t>(c))) {
      by_city_[c].push_back(item);
      city_weights_[c].push_back(0.2 + world.item(item).popularity);
      int64_t key = c * (1LL << 32) + world.item(item).geohash;
      by_cell_[key].push_back(item);
    }
  }
}

std::vector<int32_t> RecallIndex::RecallByCity(int32_t city, int32_t k,
                                               Rng& rng) const {
  BASM_CHECK_GE(city, 0);
  BASM_CHECK_LT(city, static_cast<int64_t>(by_city_.size()));
  const auto& pool = by_city_[city];
  const auto& weights = city_weights_[city];
  std::vector<int32_t> out;
  std::unordered_set<int32_t> seen;
  int64_t guard = 0;
  while (static_cast<int32_t>(out.size()) < k &&
         guard < 50LL * k) {
    ++guard;
    int32_t cand = pool[rng.Categorical(weights)];
    if (seen.insert(cand).second) out.push_back(cand);
  }
  // Small pools: allow duplicates-free exhaustion to fall short gracefully.
  if (static_cast<int32_t>(out.size()) < k &&
      static_cast<int32_t>(pool.size()) <= k) {
    out.assign(pool.begin(), pool.end());
  }
  return out;
}

std::vector<int32_t> RecallIndex::RecallByGeohash(int32_t city,
                                                  int32_t geohash, int32_t k,
                                                  Rng& rng) const {
  int64_t key = static_cast<int64_t>(city) * (1LL << 32) + geohash;
  auto it = by_cell_.find(key);
  if (it == by_cell_.end() ||
      static_cast<int32_t>(it->second.size()) < k / 2) {
    return RecallByCity(city, k, rng);
  }
  const auto& pool = it->second;
  std::vector<int32_t> out;
  std::unordered_set<int32_t> seen;
  int64_t guard = 0;
  while (static_cast<int32_t>(out.size()) < k && guard < 50LL * k) {
    ++guard;
    int32_t cand = pool[rng.NextUint64(pool.size())];
    if (seen.insert(cand).second) out.push_back(cand);
  }
  if (static_cast<int32_t>(out.size()) < k) {
    auto extra = RecallByCity(city, k, rng);
    for (int32_t cand : extra) {
      if (static_cast<int32_t>(out.size()) >= k) break;
      if (seen.insert(cand).second) out.push_back(cand);
    }
  }
  return out;
}

}  // namespace basm::serving
