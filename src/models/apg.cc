#include "models/apg.h"

namespace basm::models {

namespace ag = ::basm::autograd;

Apg::Apg(const data::Schema& schema, int64_t embed_dim,
         std::vector<int64_t> hidden, int64_t rank, Rng& rng) {
  encoder_ = std::make_unique<FeatureEncoder>(schema, embed_dim, rng);
  RegisterModule("encoder", encoder_.get());
  attention_ = std::make_unique<nn::TargetAttention>(encoder_->seq_dim(),
                                                     /*hidden=*/32, rng);
  RegisterModule("attention", attention_.get());

  const int64_t cond_dim = 16;
  condition_ =
      std::make_unique<nn::Linear>(encoder_->concat_dim(), cond_dim, rng);
  RegisterModule("condition", condition_.get());

  std::vector<int64_t> dims = {encoder_->concat_dim()};
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  BASM_CHECK_GE(dims.size(), 2u);
  first_layer_ =
      std::make_unique<nn::MetaLinear>(cond_dim, dims[0], dims[1], rng);
  RegisterModule("apg_fc0_full", first_layer_.get());
  for (size_t l = 1; l + 1 < dims.size(); ++l) {
    layers_.push_back(std::make_unique<nn::LowRankMetaLinear>(
        cond_dim, dims[l], dims[l + 1], rank, rng));
    RegisterModule("apg_fc" + std::to_string(l), layers_.back().get());
  }
  out_ = std::make_unique<nn::Linear>(dims.back(), 1, rng);
  RegisterModule("out", out_.get());
}

ag::Variable Apg::Hidden(const data::Batch& batch) {
  FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  ag::Variable interest = attention_->Forward(f.query, f.seq, batch.seq_mask);
  ag::Variable x =
      ag::ConcatCols({f.user, interest, f.item, f.context, f.combine});
  ag::Variable z =
      nn::Apply(nn::Activation::kLeakyRelu, condition_->Forward(x));
  ag::Variable h =
      nn::Apply(nn::Activation::kLeakyRelu, first_layer_->Forward(x, z));
  for (auto& layer : layers_) {
    h = nn::Apply(nn::Activation::kLeakyRelu, layer->Forward(h, z));
  }
  return h;
}

ag::Variable Apg::ForwardLogits(const data::Batch& batch) {
  return ag::Reshape(out_->Forward(Hidden(batch)), {batch.size});
}

ag::Variable Apg::FinalRepresentation(const data::Batch& batch) {
  return Hidden(batch);
}

}  // namespace basm::models
