#include "feature_store/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "common/logging.h"

namespace basm::feature_store {

namespace {

namespace fs = std::filesystem;

/// FNV-1a over the payload — the same checksum the wire protocol and
/// checkpoint codec use, re-rolled here so the feature store does not
/// depend upward on src/net.
uint32_t JournalChecksum(const uint8_t* data, size_t size) {
  uint32_t hash = 2166136261u;
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 16777619u;
  }
  return hash;
}

/// Byte-by-byte little-endian stores/loads: no struct punning, no
/// host-endianness assumptions (mirrors net/wire.cc).
void StoreU32(uint32_t value, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(value & 0xFF));
  out->push_back(static_cast<uint8_t>((value >> 8) & 0xFF));
  out->push_back(static_cast<uint8_t>((value >> 16) & 0xFF));
  out->push_back(static_cast<uint8_t>((value >> 24) & 0xFF));
}

uint32_t LoadU32(const uint8_t* data) {
  return static_cast<uint32_t>(data[0]) |
         (static_cast<uint32_t>(data[1]) << 8) |
         (static_cast<uint32_t>(data[2]) << 16) |
         (static_cast<uint32_t>(data[3]) << 24);
}

void StoreI32(int32_t value, std::vector<uint8_t>* out) {
  StoreU32(static_cast<uint32_t>(value), out);
}

int32_t LoadI32(const uint8_t* data) {
  return static_cast<int32_t>(LoadU32(data));
}

constexpr char kSealedSuffix[] = ".bjl";
constexpr char kOpenSuffix[] = ".bjl.open";

std::string SegmentName(int64_t index, bool open) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "seg-%08lld%s",
                static_cast<long long>(index),
                open ? kOpenSuffix : kSealedSuffix);
  return buf;
}

/// Parses "seg-NNNNNNNN.bjl" into its index; -1 for anything else.
int64_t SealedIndexOf(const std::string& name) {
  if (!name.starts_with("seg-") || !name.ends_with(kSealedSuffix)) return -1;
  const size_t digits_at = 4;
  const size_t digits_len = name.size() - digits_at - 4;  // strlen(".bjl")
  if (digits_len == 0 || digits_len > 18) return -1;
  int64_t index = 0;
  for (size_t i = 0; i < digits_len; ++i) {
    char c = name[digits_at + i];
    if (c < '0' || c > '9') return -1;
    index = index * 10 + (c - '0');
  }
  return index;
}

/// write() until done, retrying EINTR. False on any hard failure; a
/// partial write followed by failure leaves a torn record that replay's
/// checksum walk truncates.
bool WriteAll(int fd, const uint8_t* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

void ClickJournal::EncodeRecord(const ClickRecord& record,
                                std::vector<uint8_t>* out) {
  std::vector<uint8_t> payload;
  payload.reserve(kJournalClickPayloadBytes);
  StoreI32(record.user_id, &payload);
  StoreI32(record.event.item_id, &payload);
  StoreI32(record.event.category, &payload);
  StoreI32(record.event.brand, &payload);
  StoreI32(record.event.hour, &payload);
  StoreI32(record.event.time_period, &payload);
  StoreI32(record.event.city, &payload);
  StoreI32(record.event.geohash, &payload);

  out->reserve(out->size() + kJournalHeaderBytes + payload.size());
  StoreU32(kJournalMagic, out);
  out->push_back(kJournalVersion);
  out->push_back(kJournalClickRecord);
  out->push_back(0);  // flags
  out->push_back(0);
  StoreU32(static_cast<uint32_t>(payload.size()), out);
  StoreU32(JournalChecksum(payload.data(), payload.size()), out);
  out->insert(out->end(), payload.begin(), payload.end());
}

Status ClickJournal::DecodeRecord(const uint8_t* data, size_t size,
                                  ClickRecord* out, size_t* consumed) {
  *consumed = 0;
  if (size < kJournalHeaderBytes) {
    return Status::InvalidArgument("journal record truncated in header");
  }
  if (LoadU32(data) != kJournalMagic) {
    return Status::InvalidArgument("bad journal record magic");
  }
  if (data[4] != kJournalVersion) {
    return Status::InvalidArgument("unsupported journal record version");
  }
  if (data[5] != kJournalClickRecord) {
    return Status::InvalidArgument("unknown journal record type");
  }
  if (data[6] != 0 || data[7] != 0) {
    return Status::InvalidArgument("nonzero journal record flags");
  }
  const uint32_t payload_size = LoadU32(data + 8);
  // The cap check comes before any arithmetic with payload_size so a
  // hostile length field can neither overflow nor trigger a huge read.
  if (payload_size > kJournalMaxPayloadBytes) {
    return Status::InvalidArgument("journal record payload exceeds cap");
  }
  if (payload_size != kJournalClickPayloadBytes) {
    return Status::InvalidArgument("journal click record has wrong payload size");
  }
  if (size - kJournalHeaderBytes < payload_size) {
    return Status::InvalidArgument("journal record truncated in payload");
  }
  const uint8_t* payload = data + kJournalHeaderBytes;
  if (JournalChecksum(payload, payload_size) != LoadU32(data + 12)) {
    return Status::InvalidArgument("journal record checksum mismatch");
  }
  out->user_id = LoadI32(payload);
  out->event.item_id = LoadI32(payload + 4);
  out->event.category = LoadI32(payload + 8);
  out->event.brand = LoadI32(payload + 12);
  out->event.hour = LoadI32(payload + 16);
  out->event.time_period = LoadI32(payload + 20);
  out->event.city = LoadI32(payload + 24);
  out->event.geohash = LoadI32(payload + 28);
  *consumed = kJournalHeaderBytes + payload_size;
  return Status::Ok();
}

ClickJournal::ClickJournal(JournalConfig config)
    : config_(std::move(config)), injector_(FaultInjector::FromEnv()) {
  MutexLock lock(&mu_);
  last_sync_ = Clock::now();
  if (config_.dir.empty()) {
    broken_ = true;
    return;
  }
  std::error_code ec;
  fs::create_directories(config_.dir, ec);
  if (ec) {
    BASM_LOG(Warning) << "click journal: cannot create " << config_.dir
                      << ": " << ec.message() << " — appends will be dropped";
    broken_ = true;
    return;
  }
  // Namespace recovery: a crashed predecessor leaves its active segment
  // with the `.open` suffix. Seal it (atomic rename) so ReplayInto — which
  // only reads sealed segments — replays its intact records; its possibly
  // torn tail is handled by the checksum walk, not here.
  int64_t max_index = -1;
  for (const fs::directory_entry& entry : fs::directory_iterator(config_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.ends_with(kOpenSuffix)) {
      fs::path sealed = entry.path().parent_path() /
                        name.substr(0, name.size() - 5);  // strip ".open"
      fs::rename(entry.path(), sealed, ec);
      max_index = std::max(
          max_index, SealedIndexOf(sealed.filename().string()));
    } else {
      max_index = std::max(max_index, SealedIndexOf(name));
    }
  }
  next_index_ = max_index + 1;
  OpenActiveLocked();
}

ClickJournal::~ClickJournal() {
  // mu_ is the journal's IO-ordering lock: fsync/write run under it BY
  // DESIGN (group commit serializes appends against segment rotation); it
  // is a leaf in the DESIGN §10 hierarchy, so nothing can deadlock behind
  // it, and callers never hold it across request work.
  MutexLock lock(&mu_);
  if (fd_ >= 0) {
    (void)SyncLocked();  // basm-analyze: allow(blocking-under-lock)
    ::close(fd_);
    fd_ = -1;
  }
}

void ClickJournal::OpenActiveLocked() {
  active_path_ =
      (fs::path(config_.dir) / SegmentName(next_index_, /*open=*/true))
          .string();
  ++next_index_;
  segment_bytes_ = 0;
  fd_ = ::open(active_path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    BASM_LOG(Warning) << "click journal: cannot open " << active_path_
                      << " — appends will be dropped";
    broken_ = true;
  }
}

Status ClickJournal::SyncLocked() {
  if (fd_ < 0) return Status::Internal("journal segment is not open");
  if (pending_appends_ == 0) return Status::Ok();
  if (::fsync(fd_) != 0) {
    ++stats_.write_failures;
    return Status::Internal("journal fsync failed");
  }
  ++stats_.fsyncs;
  pending_appends_ = 0;
  last_sync_ = Clock::now();
  return Status::Ok();
}

void ClickJournal::SealActiveLocked() {
  if (fd_ < 0) return;
  (void)SyncLocked();
  ::close(fd_);
  fd_ = -1;
  // Atomic publish of the completed segment: readers (and the next boot's
  // replay) see either the fully-written sealed file or no sealed file,
  // never a half-sealed name — the SaveHead tmp+rename discipline.
  const std::string sealed =
      active_path_.substr(0, active_path_.size() - 5);  // strip ".open"
  std::error_code ec;
  fs::rename(active_path_, sealed, ec);
  if (ec) {
    BASM_LOG(Warning) << "click journal: seal rename failed for "
                      << active_path_ << ": " << ec.message();
  }
  ++stats_.rotations;
}

Status ClickJournal::AppendRecord(int32_t user_id,
                                  const data::BehaviorEvent& event) {
  if (injector_ != nullptr) {
    FaultDecision decision = injector_->Evaluate(kJournalFaultSite);
    if (decision.delay_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(decision.delay_micros));
    }
    if (!decision.status.ok()) {
      MutexLock lock(&mu_);
      ++stats_.write_failures;
      return decision.status;
    }
  }

  std::vector<uint8_t> record;
  EncodeRecord(ClickRecord{user_id, event}, &record);

  MutexLock lock(&mu_);
  if (broken_ || fd_ < 0) {
    ++stats_.write_failures;
    return Status::Internal("journal is not writable");
  }
  if (!WriteAll(fd_, record.data(), record.size())) {
    // A partial write is a torn tail the next replay truncates; either way
    // this record is not durable, so it is dropped, not retried.
    ++stats_.write_failures;
    return Status::Internal("journal append failed");
  }
  ++stats_.appends;
  stats_.bytes_written += static_cast<int64_t>(record.size());
  segment_bytes_ += static_cast<int64_t>(record.size());
  ++pending_appends_;

  // Group commit: one fsync covers a batch of appends, bounded by count
  // and by wall time since the last sync.
  const bool count_due = pending_appends_ >= config_.group_commit_appends;
  const bool time_due =
      config_.flush_interval_micros <= 0 ||
      Clock::now() - last_sync_ >=
          std::chrono::microseconds(config_.flush_interval_micros);
  Status sync_status = Status::Ok();
  // Group commit IS the design: the fsync runs under mu_ (the journal's
  // leaf IO-ordering lock) so appends admitted during the sync cannot
  // reorder across it. See DESIGN §10/§15.
  if (count_due || time_due) sync_status = SyncLocked();  // basm-analyze: allow(blocking-under-lock)

  if (segment_bytes_ >= config_.max_segment_bytes) {
    SealActiveLocked();  // basm-analyze: allow(blocking-under-lock)
    OpenActiveLocked();
  }
  return sync_status;
}

Status ClickJournal::Sync() {
  MutexLock lock(&mu_);
  if (broken_) return Status::Internal("journal is not writable");
  // Explicit sync takes the same leaf IO-ordering lock as group commit.
  return SyncLocked();  // basm-analyze: allow(blocking-under-lock)
}

Status ClickJournal::ReplayInto(
    const std::function<void(const ClickRecord&)>& apply,
    ReplayReport* report) {
  ReplayReport local;
  if (config_.dir.empty()) {
    if (report != nullptr) *report = local;
    return Status::Ok();
  }
  std::error_code ec;
  std::vector<std::pair<int64_t, fs::path>> segments;
  for (const fs::directory_entry& entry : fs::directory_iterator(config_.dir, ec)) {
    int64_t index = SealedIndexOf(entry.path().filename().string());
    if (index >= 0) segments.emplace_back(index, entry.path());
  }
  if (ec) return Status::Internal("cannot list journal dir " + config_.dir);
  std::sort(segments.begin(), segments.end());

  bool truncated = false;
  for (const auto& [index, path] : segments) {
    ++local.segments;
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::Internal("cannot read segment " + path.string());
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    size_t offset = 0;
    while (offset < bytes.size()) {
      ClickRecord record;
      size_t consumed = 0;
      Status decoded = DecodeRecord(bytes.data() + offset,
                                    bytes.size() - offset, &record, &consumed);
      if (!decoded.ok()) {
        // The torn-tail rule: everything from the first bad record on is
        // assumed to be a crash-torn suffix. Cut it in place so the next
        // replay of this segment is clean, and stop — corruption is never
        // an error, only lost tail records.
        local.truncated_tail_bytes +=
            static_cast<int64_t>(bytes.size() - offset);
        fs::resize_file(path, offset, ec);
        truncated = true;
        break;
      }
      apply(record);
      ++local.recovered;
      offset += consumed;
    }
    if (truncated) break;
  }

  {
    MutexLock lock(&mu_);
    stats_.recovered += local.recovered;
    stats_.truncated_tail_bytes += local.truncated_tail_bytes;
  }
  if (report != nullptr) *report = local;
  return Status::Ok();
}

JournalStats ClickJournal::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

bool ClickJournal::healthy() const {
  MutexLock lock(&mu_);
  return !broken_ && fd_ >= 0;
}

}  // namespace basm::feature_store
