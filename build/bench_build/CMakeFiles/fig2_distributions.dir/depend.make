# Empty dependencies file for fig2_distributions.
# This may be replaced when dependencies are built.
