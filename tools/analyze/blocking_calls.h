#ifndef BASM_TOOLS_ANALYZE_BLOCKING_CALLS_H_
#define BASM_TOOLS_ANALYZE_BLOCKING_CALLS_H_

#include <vector>

#include "tools/analyze/model.h"
#include "tools/analyze/scanner.h"
#include "tools/lint.h"

namespace basm::analyze {

/// Pass `blocking-under-lock`: flags calls that can block the thread —
/// file/socket syscalls, sleeps, joins, blocking-queue waits, server
/// round-trips — made while a basm::Mutex is held. Blockingness propagates
/// through the scanned call graph (a method that fsyncs is blocking, and so
/// is everything that calls it). `CondVar::Wait(mu)` on the sole held lock
/// is exempt by contract (Wait releases the mutex while parked).
std::vector<lint::Finding> RunBlockingCalls(const std::vector<FileScan>& files,
                                            const ProgramModel& model);

}  // namespace basm::analyze

#endif  // BASM_TOOLS_ANALYZE_BLOCKING_CALLS_H_
