// Fixture: zero findings expected. Exercises every rule's near-misses:
// annotated declarations, qualified calls, callable types, comments,
// string literals, and an inline suppression.
#ifndef FIXTURE_CLEAN_H_
#define FIXTURE_CLEAN_H_

#include <functional>
#include <ostream>
#include <string>

#include "common/status.h"
#include "common/synchronization.h"

// std::mutex mentioned in a comment is not a finding.
/* neither is rand() or .detach() inside a block comment */

[[nodiscard]] basm::Status Annotated(const std::string& path);

[[nodiscard]]
basm::StatusOr<int> AnnotatedOnPreviousLine(const std::string& path);

struct CleanFixture {
  // Callable types and factory calls are not declarations.
  std::function<basm::Status(int)> callback;
  std::string banner = "calls std::rand() and time(nullptr) in a string";

  [[nodiscard]] basm::Status Run() {
    basm::MutexLock lock(&mu_);
    return basm::Status::Ok();
  }

  mutable basm::Mutex mu_;
  int guarded_value BASM_GUARDED_BY(mu_) = 0;
};

inline void Suppressed() {
  std::random_device rd;  // basm-lint: allow(nondeterminism)
  (void)rd;
}

#endif  // FIXTURE_CLEAN_H_
