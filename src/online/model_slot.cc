#include "online/model_slot.h"

#include <utility>

#include "common/logging.h"

namespace basm::online {

std::shared_ptr<const ServableModel> MakeServable(
    uint64_t version, std::unique_ptr<models::CtrModel> model) {
  BASM_CHECK(model != nullptr);
  BASM_CHECK(!model->training()) << "servable models must be in eval mode";
  auto servable = std::make_shared<ServableModel>();
  servable->version = version;
  servable->owned = std::move(model);
  servable->model = servable->owned.get();
  return servable;
}

std::shared_ptr<const ServableModel> BorrowServable(models::CtrModel* model) {
  BASM_CHECK(model != nullptr);
  BASM_CHECK(!model->training()) << "servable models must be in eval mode";
  auto servable = std::make_shared<ServableModel>();
  servable->version = 0;
  servable->model = model;
  return servable;
}

ModelSlot::ModelSlot(std::shared_ptr<const ServableModel> initial) {
  if (initial != nullptr) Install(std::move(initial));
}

std::shared_ptr<const ServableModel> ModelSlot::Acquire() const {
  MutexLock lock(&mu_);
  return current_;
}

void ModelSlot::Install(std::shared_ptr<const ServableModel> next) {
  BASM_CHECK(next != nullptr);
  BASM_CHECK(next->model != nullptr);
  BASM_CHECK(!next->model->training())
      << "cannot install a training-mode model into a serving slot";
  std::shared_ptr<const ServableModel> previous;
  {
    MutexLock lock(&mu_);
    previous = std::move(current_);
    current_ = std::move(next);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  // `previous` destroyed outside the lock (possibly the model's last ref):
  // tearing down a large model must not stall concurrent Acquire calls.
}

uint64_t ModelSlot::current_version() const {
  MutexLock lock(&mu_);
  return current_ == nullptr ? 0 : current_->version;
}

}  // namespace basm::online
