#include "autograd/ops.h"

#include <cmath>

#include "autograd/variable.h"
#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"
#include "tests/test_util.h"

namespace basm::autograd {
namespace {

using ::basm::testing::CheckGradients;

Variable RandLeaf(std::vector<int64_t> shape, Rng& rng, float scale = 1.0f) {
  return Variable::Leaf(Tensor::Normal(std::move(shape), 0.0f, scale, rng),
                        /*requires_grad=*/true);
}

TEST(VariableTest, LeafBasics) {
  Variable v = Variable::Leaf(Tensor({2}, {1, 2}), true);
  EXPECT_TRUE(v.requires_grad());
  EXPECT_EQ(v.numel(), 2);
  v.grad()[0] = 5.0f;
  v.ZeroGrad();
  EXPECT_EQ(v.grad()[0], 0.0f);
}

TEST(VariableTest, ConstantHasNoGradPath) {
  Variable c = Variable::Constant(Tensor({2}, {1, 2}));
  EXPECT_FALSE(c.requires_grad());
  Variable s = SumAll(c);
  EXPECT_FALSE(s.requires_grad());
}

TEST(BackwardTest, SimpleChain) {
  // loss = sum(2 * x) => dloss/dx = 2.
  Variable x = Variable::Leaf(Tensor({3}, {1, 2, 3}), true);
  Variable loss = SumAll(Scale(x, 2.0f));
  Backward(loss);
  for (int i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(x.grad()[i], 2.0f);
}

TEST(BackwardTest, SharedSubexpressionAccumulates) {
  // loss = sum(x + x) => dloss/dx = 2.
  Variable x = Variable::Leaf(Tensor({2}, {1, 1}), true);
  Variable loss = SumAll(Add(x, x));
  Backward(loss);
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 2.0f);
}

TEST(BackwardTest, GradAccumulatesAcrossCalls) {
  Variable x = Variable::Leaf(Tensor({1}, {3}), true);
  Backward(SumAll(x));
  Backward(SumAll(x));
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(GradCheck, MatMul) {
  Rng rng(1);
  std::vector<Variable> leaves = {RandLeaf({3, 4}, rng), RandLeaf({4, 2}, rng)};
  CheckGradients(leaves,
                 [&] { return SumAll(MatMul(leaves[0], leaves[1])); });
}

TEST(GradCheck, MatMulNonUniformSeed) {
  // Weighted sum gives a non-constant upstream gradient through MatMul.
  Rng rng(2);
  std::vector<Variable> leaves = {RandLeaf({2, 3}, rng), RandLeaf({3, 3}, rng)};
  Variable w = Variable::Constant(Tensor::Normal({2, 3}, 0.0f, 1.0f, rng));
  CheckGradients(
      leaves, [&] { return SumAll(Mul(MatMul(leaves[0], leaves[1]), w)); });
}

TEST(GradCheck, BatchedMatMul) {
  Rng rng(3);
  std::vector<Variable> leaves = {RandLeaf({2, 3, 4}, rng),
                                  RandLeaf({2, 4, 2}, rng)};
  CheckGradients(leaves,
                 [&] { return SumAll(BatchedMatMul(leaves[0], leaves[1])); });
}

TEST(GradCheck, ElementwiseOps) {
  Rng rng(4);
  std::vector<Variable> leaves = {RandLeaf({2, 3}, rng), RandLeaf({2, 3}, rng)};
  CheckGradients(leaves, [&] {
    Variable prod = Mul(leaves[0], leaves[1]);
    Variable diff = Sub(leaves[0], leaves[1]);
    return SumAll(Add(prod, diff));
  });
}

TEST(GradCheck, Div) {
  Rng rng(5);
  Variable a = RandLeaf({2, 2}, rng);
  // Keep denominator away from zero.
  Variable b = Variable::Leaf(
      Tensor({2, 2}, {1.5f, 2.0f, -1.8f, 2.5f}), true);
  std::vector<Variable> leaves = {a, b};
  CheckGradients(leaves, [&] { return SumAll(Div(leaves[0], leaves[1])); });
}

TEST(GradCheck, RowBroadcasts) {
  Rng rng(6);
  std::vector<Variable> leaves = {RandLeaf({3, 4}, rng), RandLeaf({1, 4}, rng)};
  CheckGradients(leaves, [&] {
    return SumAll(Mul(AddRowBroadcast(leaves[0], leaves[1]),
                      MulRowBroadcast(leaves[0], leaves[1])));
  });
}

TEST(GradCheck, ColBroadcasts) {
  Rng rng(7);
  std::vector<Variable> leaves = {RandLeaf({3, 4}, rng), RandLeaf({3, 1}, rng)};
  CheckGradients(leaves, [&] {
    return SumAll(Mul(AddColBroadcast(leaves[0], leaves[1]),
                      MulColBroadcast(leaves[0], leaves[1])));
  });
}

TEST(GradCheck, Activations) {
  Rng rng(8);
  std::vector<Variable> leaves = {RandLeaf({2, 5}, rng)};
  CheckGradients(leaves, [&] { return SumAll(Sigmoid(leaves[0])); });
  CheckGradients(leaves, [&] { return SumAll(Tanh(leaves[0])); });
  CheckGradients(leaves, [&] { return SumAll(Exp(leaves[0])); });
}

TEST(GradCheck, LeakyReluAwayFromKink) {
  // Values chosen away from 0 so finite differences are valid.
  Variable x =
      Variable::Leaf(Tensor({4}, {-2.0f, -0.7f, 0.9f, 1.8f}), true);
  std::vector<Variable> leaves = {x};
  CheckGradients(leaves,
                 [&] { return SumAll(LeakyRelu(leaves[0], 0.1f)); });
  CheckGradients(leaves, [&] { return SumAll(Relu(leaves[0])); });
}

TEST(GradCheck, LogPositiveInputs) {
  Variable x = Variable::Leaf(Tensor({3}, {0.5f, 1.0f, 2.0f}), true);
  std::vector<Variable> leaves = {x};
  CheckGradients(leaves, [&] { return SumAll(Log(leaves[0])); });
}

TEST(GradCheck, RsqrtPositiveInputs) {
  Variable x = Variable::Leaf(Tensor({3}, {0.5f, 1.0f, 2.0f}), true);
  std::vector<Variable> leaves = {x};
  CheckGradients(leaves, [&] { return SumAll(Rsqrt(leaves[0], 1e-5f)); });
}

TEST(GradCheck, Reductions) {
  Rng rng(9);
  std::vector<Variable> leaves = {RandLeaf({3, 4}, rng)};
  Variable w = Variable::Constant(Tensor::Normal({3, 1}, 0.0f, 1.0f, rng));
  CheckGradients(leaves,
                 [&] { return SumAll(Mul(RowSum(leaves[0]), w)); });
  Variable w2 = Variable::Constant(Tensor::Normal({1, 4}, 0.0f, 1.0f, rng));
  CheckGradients(leaves,
                 [&] { return SumAll(Mul(ColMean(leaves[0]), w2)); });
  CheckGradients(leaves, [&] { return MeanAll(leaves[0]); });
}

TEST(GradCheck, ConcatSliceReshape) {
  Rng rng(10);
  std::vector<Variable> leaves = {RandLeaf({2, 3}, rng), RandLeaf({2, 2}, rng)};
  CheckGradients(leaves, [&] {
    Variable cat = ConcatCols({leaves[0], leaves[1]});
    Variable mid = SliceCols(cat, 1, 3);
    Variable flat = Reshape(mid, {6});
    return SumAll(Mul(flat, flat));
  });
}

TEST(GradCheck, RowSoftmax) {
  Rng rng(11);
  std::vector<Variable> leaves = {RandLeaf({3, 4}, rng)};
  Variable w = Variable::Constant(Tensor::Normal({3, 4}, 0.0f, 1.0f, rng));
  CheckGradients(leaves,
                 [&] { return SumAll(Mul(RowSoftmax(leaves[0]), w)); });
}

TEST(GradCheck, EmbeddingLookup) {
  Rng rng(12);
  std::vector<Variable> leaves = {RandLeaf({5, 3}, rng)};
  std::vector<int32_t> indices = {0, 2, 2, 4};
  Variable w = Variable::Constant(Tensor::Normal({4, 3}, 0.0f, 1.0f, rng));
  CheckGradients(leaves, [&] {
    return SumAll(Mul(EmbeddingLookup(leaves[0], indices), w));
  });
}

TEST(EmbeddingLookupTest, RepeatedIndexAccumulates) {
  Variable table = Variable::Leaf(Tensor({2, 1}, {1.0f, 2.0f}), true);
  std::vector<int32_t> indices = {1, 1, 1};
  Variable out = EmbeddingLookup(table, indices);
  Backward(SumAll(out));
  EXPECT_FLOAT_EQ(table.grad()[0], 0.0f);
  EXPECT_FLOAT_EQ(table.grad()[1], 3.0f);
}

TEST(GradCheck, BceWithLogits) {
  Rng rng(13);
  std::vector<Variable> leaves = {RandLeaf({6}, rng, 2.0f)};
  Tensor labels({6}, {1, 0, 1, 1, 0, 0});
  CheckGradients(leaves,
                 [&] { return BceWithLogits(leaves[0], labels); });
}

TEST(BceWithLogitsTest, MatchesNaiveFormula) {
  Variable z = Variable::Leaf(Tensor({2}, {0.3f, -1.2f}), true);
  Tensor y({2}, {1.0f, 0.0f});
  float loss = BceWithLogits(z, y).value()[0];
  auto naive = [](float zi, float yi) {
    float p = 1.0f / (1.0f + std::exp(-zi));
    return -yi * std::log(p) - (1 - yi) * std::log(1 - p);
  };
  EXPECT_NEAR(loss, (naive(0.3f, 1.0f) + naive(-1.2f, 0.0f)) / 2.0f, 1e-5f);
}

TEST(BceWithLogitsTest, ExtremeLogitsStayFinite) {
  Variable z = Variable::Leaf(Tensor({2}, {80.0f, -80.0f}), true);
  Tensor y({2}, {0.0f, 1.0f});
  Variable loss = BceWithLogits(z, y);
  EXPECT_FALSE(loss.value().HasNonFinite());
  Backward(loss);
  EXPECT_FALSE(z.grad().HasNonFinite());
}

TEST(GradCheck, MseLoss) {
  Rng rng(14);
  std::vector<Variable> leaves = {RandLeaf({4}, rng)};
  Tensor target({4}, {0.5f, -0.5f, 1.0f, 0.0f});
  CheckGradients(leaves, [&] { return MseLoss(leaves[0], target); });
}

TEST(GradCheck, ComposedMlpLikeGraph) {
  // End-to-end: two linear layers with activations, like a tiny MLP.
  Rng rng(15);
  std::vector<Variable> leaves = {
      RandLeaf({4, 3}, rng, 0.5f),   // x
      RandLeaf({3, 5}, rng, 0.5f),   // W1
      RandLeaf({1, 5}, rng, 0.5f),   // b1
      RandLeaf({5, 1}, rng, 0.5f),   // W2
  };
  Tensor labels({4}, {1, 0, 0, 1});
  CheckGradients(leaves, [&] {
    Variable h = Tanh(AddRowBroadcast(MatMul(leaves[0], leaves[1]), leaves[2]));
    Variable logits = Reshape(MatMul(h, leaves[3]), {4});
    return BceWithLogits(logits, labels);
  });
}

TEST(GradCheck, InstanceLinearViaBatchedMatMul) {
  // Per-sample dynamic linear: y[b] = W[b] x[b], with W generated per-sample.
  Rng rng(16);
  const int64_t kBatch = 3, kIn = 4, kOut = 2;
  std::vector<Variable> leaves = {
      RandLeaf({kBatch, kOut * kIn}, rng, 0.5f),  // per-sample weights (flat)
      RandLeaf({kBatch, kIn}, rng, 0.5f),         // inputs
  };
  CheckGradients(leaves, [&] {
    Variable w3 = Reshape(leaves[0], {kBatch, kOut, kIn});
    Variable x3 = Reshape(leaves[1], {kBatch, kIn, 1});
    Variable y = Reshape(BatchedMatMul(w3, x3), {kBatch, kOut});
    return SumAll(Mul(y, y));
  });
}

TEST(BackwardTest, SeededBackwardMatchesScaledLoss) {
  Variable x = Variable::Leaf(Tensor({2}, {1.0f, 2.0f}), true);
  Variable y = Mul(x, x);
  Backward(y, Tensor({2}, {2.0f, 2.0f}));
  // d(sum 2*x^2)/dx = 4x
  EXPECT_FLOAT_EQ(x.grad()[0], 4.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 8.0f);
}

}  // namespace
}  // namespace basm::autograd
