#include <cstdlib>
#include <memory>
#include <string>

#include "common/circuit_breaker.h"
#include "common/fault.h"
#include "data/synth.h"
#include "gtest/gtest.h"
#include "models/model_zoo.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "serving/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace basm::runtime {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoll(value, nullptr, 10);
}

data::SynthConfig ChaosWorldConfig() {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 120;
  c.num_items = 100;
  c.num_cities = 3;
  c.seq_len = 6;
  return c;
}

/// The headline robustness acceptance test: a closed-loop load with 5%
/// injected feature errors + latency spikes, plus one sustained feature
/// outage mid-run. The engine must keep serving — every completed request
/// is OK (some degraded), the breaker is observed opening — and after the
/// fault clears, the breaker closes again and serving fully recovers.
/// The chaos CI job re-runs this under BASM_FAULT_SEED / BASM_FAULT_RATE
/// for different fault processes; the assertions hold for any seed.
TEST(ChaosTest, ServingSurvivesFaultsAndRecovers) {
  const uint64_t seed =
      static_cast<uint64_t>(EnvInt("BASM_FAULT_SEED", 42));
  const double rate = EnvInt("BASM_FAULT_RATE", 5) / 100.0;

  data::World world(ChaosWorldConfig());
  serving::FeatureServer features(world, world.config().seq_len, 3);
  serving::RecallIndex recall(world);
  auto model =
      models::CreateModel(models::ModelKind::kBasm, world.schema(), 13);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &features, &recall, model.get(),
                             /*recall_size=*/12, /*expose_k=*/5);

  // Fault process: `rate` random errors + spikes, and a sustained outage
  // starting at fetch call 150 that only a config change (the "dependency
  // came back" event below) clears.
  FaultInjector injector(seed);
  FaultSiteConfig faults;
  faults.error_probability = rate;
  faults.spike_probability = rate;
  faults.spike_micros = 500;
  faults.outage_start_call = 150;
  faults.outage_calls = 1 << 20;
  injector.Configure(serving::kFeatureFetchFaultSite, faults);
  features.SetFaultInjector(&injector);
  // The pipeline's recall site rides the same injector (unconfigured →
  // clean), not the env default — this test owns its fault process.
  pipeline.SetFaultInjector(&injector);

  CircuitBreakerConfig breaker_config;
  breaker_config.failure_threshold = 5;
  breaker_config.open_micros = 5000;
  breaker_config.close_after_successes = 2;
  CircuitBreaker breaker(breaker_config);

  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 3;
  policy.retry.initial_backoff_micros = 100;
  policy.retry.max_backoff_micros = 1000;
  policy.breaker = &breaker;
  pipeline.EnableFaultTolerance(policy);

  EngineConfig engine_config;
  engine_config.num_workers = 4;
  engine_config.queue_capacity = 256;
  ServingEngine engine(&pipeline, engine_config);

  LoadConfig load;
  load.num_requests = 600;
  load.concurrency = 8;
  load.deadline_micros = 1000000;
  load.seed = seed;
  LoadGenerator generator(world, load);
  LoadReport report = generator.Run(engine);

  // >= 99% of traffic must complete OK-or-degraded under the fault storm.
  EXPECT_GE(report.ok, (99 * load.num_requests) / 100)
      << report.ToString();
  EXPECT_EQ(report.ok + report.rejected + report.timed_out +
                report.cancelled,
            load.num_requests);
  EXPECT_GT(report.degraded, 0) << "outage produced no degraded slates";

  LatencySnapshot storm = engine.IntervalStats();
  EXPECT_GT(storm.degraded, 0);
  EXPECT_GT(storm.retries, 0) << "random errors produced no retries";
  EXPECT_GE(storm.breaker_opens, 1)
      << "sustained outage never tripped the breaker";
  CircuitBreaker::Stats tripped = breaker.stats();
  EXPECT_GE(tripped.opens, 1);
  EXPECT_GT(tripped.short_circuits, 0)
      << "open breaker never shed a fetch";

  // The dependency comes back: clear every fault and drive fresh traffic.
  // Half-open probes now succeed, the breaker closes, and serving returns
  // to the healthy path (no new degraded slates).
  injector.Configure(serving::kFeatureFetchFaultSite, FaultSiteConfig{});
  LoadConfig recovery_load = load;
  recovery_load.num_requests = 150;
  recovery_load.seed = seed + 1;
  LoadGenerator recovery(world, recovery_load);
  LoadReport recovered = recovery.Run(engine);

  EXPECT_EQ(recovered.ok, recovery_load.num_requests)
      << recovered.ToString();
  CircuitBreaker::Stats healed = breaker.stats();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed)
      << CircuitBreaker::StateName(breaker.state());
  EXPECT_GE(healed.half_opens, 1);
  EXPECT_GE(healed.closes, 1);

  LatencySnapshot after = engine.IntervalStats();
  // The tail of the recovery window is fault-free; at most the first few
  // requests (breaker probes racing the config change) may degrade.
  EXPECT_LT(after.degraded, recovery_load.num_requests / 2);

  engine.Shutdown();
  LatencySnapshot total = engine.Stats();
  EXPECT_EQ(total.count + total.shed,
            load.num_requests + recovery_load.num_requests);
}

/// With fault tolerance armed but a zero-fault process, the engine must
/// behave exactly like the plain engine: no degraded slates, no retries,
/// no breaker activity — the happy path stays the happy path.
TEST(ChaosTest, ArmedButFaultFreeServesClean) {
  data::World world(ChaosWorldConfig());
  serving::FeatureServer features(world, world.config().seq_len, 3);
  serving::RecallIndex recall(world);
  auto model =
      models::CreateModel(models::ModelKind::kDin, world.schema(), 17);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &features, &recall, model.get(), 12, 5);

  FaultInjector injector(1);  // configured with no faults anywhere
  features.SetFaultInjector(&injector);
  pipeline.SetFaultInjector(&injector);
  CircuitBreaker breaker;
  serving::FeatureFaultPolicy policy;
  policy.breaker = &breaker;
  pipeline.EnableFaultTolerance(policy);

  ServingEngine engine(&pipeline, EngineConfig{});
  LoadConfig load;
  load.num_requests = 200;
  load.concurrency = 8;
  LoadGenerator generator(world, load);
  LoadReport report = generator.Run(engine);

  EXPECT_EQ(report.ok, load.num_requests);
  EXPECT_EQ(report.degraded, 0);
  LatencySnapshot snapshot = engine.Stats();
  EXPECT_EQ(snapshot.degraded, 0);
  EXPECT_EQ(snapshot.retries, 0);
  EXPECT_EQ(snapshot.breaker_opens, 0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().opens, 0);

  // With a breaker armed, its live state rides along in every snapshot —
  // the periodic metrics export shows breaker health without a side call.
  EXPECT_TRUE(snapshot.has_breaker);
  EXPECT_EQ(snapshot.breaker_state, "closed");
  EXPECT_EQ(snapshot.breaker_open_count, 0);
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"breaker_state\":\"closed\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"breaker_open_count\":0"), std::string::npos) << json;
}

TEST(ChaosTest, BreakerTransitionsAppearInSnapshotExport) {
  data::World world(ChaosWorldConfig());
  serving::FeatureServer features(world, world.config().seq_len, 3);
  serving::RecallIndex recall(world);
  auto model =
      models::CreateModel(models::ModelKind::kDin, world.schema(), 17);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &features, &recall, model.get(), 12, 5);

  FaultInjector injector(9);
  FaultSiteConfig kill;
  kill.error_probability = 1.0;
  injector.Configure(serving::kFeatureFetchFaultSite, kill);
  features.SetFaultInjector(&injector);
  pipeline.SetFaultInjector(&injector);

  CircuitBreakerConfig breaker_config;
  breaker_config.failure_threshold = 2;
  breaker_config.open_micros = 60 * 1000 * 1000;  // stays open for the test
  CircuitBreaker breaker(breaker_config);
  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 2;
  policy.retry.initial_backoff_micros = 10;
  policy.breaker = &breaker;
  pipeline.EnableFaultTolerance(policy);

  ServingEngine engine(&pipeline, EngineConfig{});
  LoadConfig load;
  load.num_requests = 50;
  load.concurrency = 4;
  LoadGenerator generator(world, load);
  LoadReport report = generator.Run(engine);
  EXPECT_EQ(report.ok, load.num_requests);  // degraded, never failed

  LatencySnapshot snapshot = engine.Stats();
  ASSERT_TRUE(snapshot.has_breaker);
  EXPECT_EQ(snapshot.breaker_state, "open");
  EXPECT_GE(snapshot.breaker_open_count, 1);
  EXPECT_GT(snapshot.breaker_short_circuits, 0);
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"breaker_state\":\"open\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"breaker_short_circuits\":"), std::string::npos)
      << json;
  // The human-readable view carries the same line.
  EXPECT_NE(snapshot.ToString().find("breaker: state open"),
            std::string::npos);
}

}  // namespace
}  // namespace basm::runtime
