#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/arena.h"
#include "tensor/kernels.h"
#include "tensor/reference_ops.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace basm {
namespace {

namespace kernels = ::basm::ops::kernels;
namespace reference = ::basm::ops::reference;

// ------------------------------------------------------------- equivalence --

struct GemmShape {
  int64_t m, k, n;
};

/// Odd shapes on purpose: single rows/cols/depth, dims off every SIMD
/// multiple (7, 9, 17, 33, 511...), serving-relevant rectangles, and empties.
const GemmShape kShapes[] = {
    {1, 1, 1},    {1, 7, 3},      {3, 1, 5},     {5, 9, 1},
    {4, 8, 16},   {17, 33, 65},   {32, 176, 64}, {1, 256, 128},
    {64, 511, 48}, {2, 3, 1000},  {0, 4, 5},     {4, 0, 5},
    {4, 5, 0},
};

/// Tolerance scaled to the accumulation depth: blocked/AVX2 kernels
/// reassociate the k-sum, so error grows (slowly) with k.
float TolForK(int64_t k) { return k >= 128 ? 1e-4f : 1e-5f; }

std::vector<kernels::Backend> OptimizedBackends() {
  std::vector<kernels::Backend> backends = {kernels::Backend::kBlocked};
  if (kernels::Avx2Available()) backends.push_back(kernels::Backend::kAvx2);
  return backends;
}

void ExpectNear(const Tensor& got, const Tensor& want, float tol,
                const char* what, const GemmShape& s) {
  ASSERT_TRUE(got.SameShape(want))
      << what << " " << s.m << "x" << s.k << "x" << s.n;
  EXPECT_LE(ops::MaxAbsDiff(got, want), tol)
      << what << " " << s.m << "x" << s.k << "x" << s.n;
}

TEST(KernelTest, GemmMatchesReferenceAcrossBackends) {
  Rng rng(42);
  for (kernels::Backend backend : OptimizedBackends()) {
    kernels::ScopedBackend scoped(backend);
    for (const GemmShape& s : kShapes) {
      Tensor a = Tensor::Uniform({s.m, s.k}, -1.0f, 1.0f, rng);
      Tensor b = Tensor::Uniform({s.k, s.n}, -1.0f, 1.0f, rng);
      ExpectNear(ops::MatMul(a, b), reference::MatMul(a, b), TolForK(s.k),
                 kernels::BackendName(backend), s);
    }
  }
}

TEST(KernelTest, GemmTransAMatchesReferenceAcrossBackends) {
  Rng rng(43);
  for (kernels::Backend backend : OptimizedBackends()) {
    kernels::ScopedBackend scoped(backend);
    for (const GemmShape& s : kShapes) {
      // a is [m,k] (transposed in the product), b is [m,n].
      Tensor a = Tensor::Uniform({s.m, s.k}, -1.0f, 1.0f, rng);
      Tensor b = Tensor::Uniform({s.m, s.n}, -1.0f, 1.0f, rng);
      ExpectNear(ops::MatMulTransA(a, b), reference::MatMulTransA(a, b),
                 TolForK(s.m), kernels::BackendName(backend), s);
    }
  }
}

TEST(KernelTest, GemmTransBMatchesReferenceAcrossBackends) {
  Rng rng(44);
  for (kernels::Backend backend : OptimizedBackends()) {
    kernels::ScopedBackend scoped(backend);
    for (const GemmShape& s : kShapes) {
      Tensor a = Tensor::Uniform({s.m, s.k}, -1.0f, 1.0f, rng);
      Tensor b = Tensor::Uniform({s.n, s.k}, -1.0f, 1.0f, rng);
      ExpectNear(ops::MatMulTransB(a, b), reference::MatMulTransB(a, b),
                 TolForK(s.k), kernels::BackendName(backend), s);
    }
  }
}

TEST(KernelTest, BatchedMatMulsMatchReferenceAcrossBackends) {
  Rng rng(45);
  const GemmShape batched[] = {{1, 1, 1}, {3, 7, 5}, {8, 16, 4}, {5, 33, 9}};
  for (kernels::Backend backend : OptimizedBackends()) {
    kernels::ScopedBackend scoped(backend);
    for (const GemmShape& s : batched) {
      for (int64_t bs : {1, 3}) {
        Tensor a = Tensor::Uniform({bs, s.m, s.k}, -1.0f, 1.0f, rng);
        Tensor b = Tensor::Uniform({bs, s.k, s.n}, -1.0f, 1.0f, rng);
        ExpectNear(ops::BatchedMatMul(a, b), reference::BatchedMatMul(a, b),
                   TolForK(s.k), kernels::BackendName(backend), s);

        Tensor bt = Tensor::Uniform({bs, s.n, s.k}, -1.0f, 1.0f, rng);
        ExpectNear(ops::BatchedMatMulTransB(a, bt),
                   reference::BatchedMatMulTransB(a, bt), TolForK(s.k),
                   kernels::BackendName(backend), s);

        Tensor bn = Tensor::Uniform({bs, s.m, s.n}, -1.0f, 1.0f, rng);
        ExpectNear(ops::BatchedMatMulTransA(a, bn),
                   reference::BatchedMatMulTransA(a, bn), TolForK(s.m),
                   kernels::BackendName(backend), s);
      }
    }
  }
}

TEST(KernelTest, ZeroHeavyInputsStayExact) {
  // The optimized kernels dropped the reference's zero-skip branch; results
  // on sparse (ReLU-like) inputs must still agree.
  Rng rng(46);
  for (kernels::Backend backend : OptimizedBackends()) {
    kernels::ScopedBackend scoped(backend);
    Tensor a = Tensor::Uniform({17, 64}, -1.0f, 1.0f, rng);
    for (int64_t i = 0; i < a.numel(); ++i) {
      if (a[i] < 0.3f) a[i] = 0.0f;  // ~65% zeros
    }
    Tensor b = Tensor::Uniform({64, 33}, -1.0f, 1.0f, rng);
    GemmShape s{17, 64, 33};
    ExpectNear(ops::MatMul(a, b), reference::MatMul(a, b), TolForK(64),
               kernels::BackendName(backend), s);
  }
}

// ---------------------------------------------------------------- fused ops --

TEST(KernelTest, MatMulBiasBitIdenticalToOpChain) {
  Rng rng(47);
  Tensor a = Tensor::Uniform({9, 33}, -1.0f, 1.0f, rng);
  Tensor w = Tensor::Uniform({33, 17}, -1.0f, 1.0f, rng);
  Tensor bias = Tensor::Uniform({1, 17}, -0.5f, 0.5f, rng);

  Tensor chained = ops::AddRowBroadcast(ops::MatMul(a, w), bias);
  Tensor fused = ops::MatMulBias(a, w, &bias);
  // Same kernel, same bias-add order: bitwise equal, not just close.
  ASSERT_TRUE(fused.SameShape(chained));
  for (int64_t i = 0; i < fused.numel(); ++i) {
    EXPECT_EQ(fused[i], chained[i]) << "element " << i;
  }

  Tensor no_bias = ops::MatMulBias(a, w, nullptr);
  Tensor plain = ops::MatMul(a, w);
  for (int64_t i = 0; i < no_bias.numel(); ++i) {
    EXPECT_EQ(no_bias[i], plain[i]);
  }
}

TEST(KernelTest, MatMulBiasActMatchesChain) {
  Rng rng(48);
  Tensor a = Tensor::Uniform({5, 12}, -1.0f, 1.0f, rng);
  Tensor w = Tensor::Uniform({12, 7}, -1.0f, 1.0f, rng);
  Tensor bias = Tensor::Uniform({1, 7}, -0.5f, 0.5f, rng);

  Tensor pre = ops::AddRowBroadcast(ops::MatMul(a, w), bias);
  struct Case {
    ops::Act act;
    Tensor want;
  };
  const Case cases[] = {
      {ops::Act::kNone, pre},
      {ops::Act::kRelu, ops::Relu(pre)},
      {ops::Act::kLeakyRelu, ops::LeakyRelu(pre, 0.01f)},
      {ops::Act::kSigmoid, ops::Sigmoid(pre)},
      {ops::Act::kTanh, ops::Tanh(pre)},
  };
  for (const Case& c : cases) {
    Tensor got = ops::MatMulBiasAct(a, w, &bias, c.act);
    for (int64_t i = 0; i < got.numel(); ++i) {
      EXPECT_EQ(got[i], c.want[i]);
    }
  }
}

TEST(KernelTest, BatchNormInferenceBitIdenticalToOpChain) {
  Rng rng(49);
  const int64_t rows = 11, cols = 19;
  Tensor x = Tensor::Uniform({rows, cols}, -2.0f, 2.0f, rng);
  Tensor mean = Tensor::Uniform({1, cols}, -1.0f, 1.0f, rng);
  Tensor var = Tensor::Uniform({1, cols}, 0.1f, 2.0f, rng);
  Tensor gamma = Tensor::Uniform({1, cols}, 0.5f, 1.5f, rng);
  Tensor beta = Tensor::Uniform({1, cols}, -0.5f, 0.5f, rng);

  const float eps = 1e-5f;
  Tensor inv = ops::Map(var, [eps](float v) {
    return 1.0f / std::sqrt(v + eps);
  });
  Tensor neg_mean = ops::Scale(mean, -1.0f);

  // The eval-mode BatchNorm chain, op by op.
  Tensor centered = ops::AddRowBroadcast(x, neg_mean);
  Tensor normalized = ops::MulRowBroadcast(centered, inv);
  Tensor chained =
      ops::AddRowBroadcast(ops::MulRowBroadcast(normalized, gamma), beta);

  Tensor fused_norm = ops::CenterScaleRows(x, neg_mean, inv);
  Tensor fused = ops::BatchNormInference(x, neg_mean, inv, gamma, beta);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(fused_norm[i], normalized[i]) << "CenterScaleRows @" << i;
    EXPECT_EQ(fused[i], chained[i]) << "BatchNormInference @" << i;
  }
}

TEST(KernelTest, InPlaceBroadcastsMatchCopies) {
  Rng rng(50);
  Tensor a = Tensor::Uniform({6, 13}, -1.0f, 1.0f, rng);
  Tensor row = Tensor::Uniform({13}, -1.0f, 1.0f, rng);

  Tensor add_copy = ops::AddRowBroadcast(a, row);
  Tensor add_inplace = a;
  ops::AddRowBroadcastInPlace(add_inplace, row);

  Tensor mul_copy = ops::MulRowBroadcast(a, row);
  Tensor mul_inplace = a;
  ops::MulRowBroadcastInPlace(mul_inplace, row);

  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(add_inplace[i], add_copy[i]);
    EXPECT_EQ(mul_inplace[i], mul_copy[i]);
  }
}

TEST(KernelTest, BackendIntrospection) {
  EXPECT_STREQ(kernels::BackendName(kernels::Backend::kReference),
               "reference");
  EXPECT_STREQ(kernels::BackendName(kernels::Backend::kBlocked), "blocked");
  EXPECT_STREQ(kernels::BackendName(kernels::Backend::kAvx2), "avx2");
  // Whatever the default resolution picked, a scoped override must restore.
  const kernels::Backend before = kernels::ActiveBackend();
  {
    kernels::ScopedBackend scoped(kernels::Backend::kReference);
    EXPECT_EQ(kernels::ActiveBackend(), kernels::Backend::kReference);
  }
  EXPECT_EQ(kernels::ActiveBackend(), before);
  if (!kernels::Avx2Compiled()) {
    EXPECT_FALSE(kernels::Avx2Available());
  }
}

// -------------------------------------------------------------------- arena --

TEST(ArenaTest, NoRecyclingWithoutScope) {
  const int64_t fresh_before = TensorArena::TotalFreshAllocs();
  { Tensor t = Tensor::Zeros({64, 64}); }
  { Tensor t = Tensor::Zeros({64, 64}); }
  // Without a scope both allocations hit the heap.
  EXPECT_EQ(TensorArena::TotalFreshAllocs() - fresh_before, 2);
}

TEST(ArenaTest, ScopeRecyclesExactSizes) {
  ArenaScope scope;
  TensorArena& arena = TensorArena::ThreadLocal();
  arena.Trim();
  const ArenaStats before = arena.stats();

  { Tensor t = Tensor::Zeros({32, 8}); }  // fresh, then recycled on destroy
  EXPECT_EQ(arena.stats().recycles, before.recycles + 1);
  EXPECT_EQ(arena.stats().held_blocks, 1);

  { Tensor t = Tensor::Zeros({32, 8}); }  // same numel: served from freelist
  EXPECT_EQ(arena.stats().reuses, before.reuses + 1);
  EXPECT_EQ(arena.stats().held_blocks, 1);

  { Tensor t = Tensor::Zeros({16, 16}); }  // same numel, different shape
  EXPECT_EQ(arena.stats().reuses, before.reuses + 2);

  { Tensor t = Tensor::Zeros({7, 3}); }  // different numel: fresh block
  EXPECT_EQ(arena.stats().held_blocks, 2);

  arena.Trim();
  EXPECT_EQ(arena.stats().held_blocks, 0);
  EXPECT_EQ(arena.stats().held_bytes, 0);
}

TEST(ArenaTest, BlocksSurviveAcrossScopes) {
  TensorArena& arena = TensorArena::ThreadLocal();
  {
    ArenaScope scope;
    arena.Trim();
    Tensor t = Tensor::Zeros({24, 24});
  }  // destroyed inside the scope: parked in the freelist
  EXPECT_EQ(arena.stats().held_blocks, 1);

  const int64_t reuses_before = arena.stats().reuses;
  {
    ArenaScope scope;
    Tensor t = Tensor::Zeros({24, 24});  // served from the parked block
    EXPECT_EQ(arena.stats().reuses, reuses_before + 1);
  }
  arena.Trim();
}

TEST(ArenaTest, TensorOutlivingScopeFreesCleanly) {
  Tensor escaped;
  {
    ArenaScope scope;
    TensorArena::ThreadLocal().Trim();
    escaped = Tensor::Full({5, 5}, 3.0f);
  }
  // The tensor left the scope alive; destroying it now (no active arena)
  // must plain-free, and its contents must be intact.
  EXPECT_EQ(escaped[0], 3.0f);
  EXPECT_EQ(escaped[24], 3.0f);
}

TEST(ArenaTest, ArenaBlocksAreAligned) {
  ArenaScope scope;
  TensorArena::ThreadLocal().Trim();
  for (int round = 0; round < 2; ++round) {  // fresh, then recycled
    Tensor t = Tensor::Zeros({13, 7});
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % 64, 0u)
        << "round " << round;
  }
  TensorArena::ThreadLocal().Trim();
}

}  // namespace
}  // namespace basm
