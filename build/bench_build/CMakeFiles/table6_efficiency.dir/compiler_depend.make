# Empty compiler generated dependencies file for table6_efficiency.
# This may be replaced when dependencies are built.
