#include "core/ststl.h"

namespace basm::core {

namespace ag = ::basm::autograd;

StSTL::StSTL(int64_t input_dim, int64_t ctx_dim, int64_t behavior_dim,
             int64_t out_dim, int64_t rank, Rng& rng)
    : out_dim_(out_dim) {
  base_ = std::make_unique<nn::Linear>(input_dim, out_dim, rng);
  RegisterModule("base", base_.get());
  dynamic_ = std::make_unique<nn::LowRankMetaLinear>(
      ctx_dim + behavior_dim, input_dim, out_dim, rank, rng);
  RegisterModule("dynamic", dynamic_.get());
}

ag::Variable StSTL::Forward(const ag::Variable& h_hat,
                            const ag::Variable& h_c,
                            const ag::Variable& h_ui) const {
  ag::Variable cond = ag::ConcatCols({h_c, h_ui});
  return ag::Add(base_->Forward(h_hat), dynamic_->Forward(h_hat, cond));
}

}  // namespace basm::core
