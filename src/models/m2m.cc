#include "models/m2m.h"

namespace basm::models {

namespace ag = ::basm::autograd;

M2m::M2m(const data::Schema& schema, int64_t embed_dim,
         std::vector<int64_t> hidden, Rng& rng) {
  encoder_ = std::make_unique<FeatureEncoder>(schema, embed_dim, rng);
  RegisterModule("encoder", encoder_.get());
  attention_ = std::make_unique<nn::TargetAttention>(encoder_->seq_dim(),
                                                     /*hidden=*/32, rng);
  RegisterModule("attention", attention_.get());

  std::vector<int64_t> dims = {encoder_->concat_dim()};
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  backbone_ =
      std::make_unique<nn::Mlp>(dims, nn::Activation::kLeakyRelu, rng);
  RegisterModule("backbone", backbone_.get());
  hidden_dim_ = dims.back();

  meta_tower_ = std::make_unique<nn::MetaLinear>(
      encoder_->context_dim(), hidden_dim_, hidden_dim_, rng);
  RegisterModule("meta_tower", meta_tower_.get());
  meta_out_ = std::make_unique<nn::MetaLinear>(encoder_->context_dim(),
                                               hidden_dim_, 1, rng);
  RegisterModule("meta_out", meta_out_.get());
}

ag::Variable M2m::Hidden(const data::Batch& batch) {
  FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  ag::Variable interest = attention_->Forward(f.query, f.seq, batch.seq_mask);
  ag::Variable x =
      ag::ConcatCols({f.user, interest, f.item, f.context, f.combine});
  ag::Variable expert =
      nn::Apply(nn::Activation::kLeakyRelu, backbone_->Forward(x));
  // Meta tower with residual: h = LeakyReLU(MetaFC(h|scenario)) + h.
  ag::Variable adapted = nn::Apply(nn::Activation::kLeakyRelu,
                                   meta_tower_->Forward(expert, f.context));
  return ag::Add(adapted, expert);
}

ag::Variable M2m::ForwardLogits(const data::Batch& batch) {
  FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  ag::Variable h = Hidden(batch);
  return ag::Reshape(meta_out_->Forward(h, f.context), {batch.size});
}

ag::Variable M2m::FinalRepresentation(const data::Batch& batch) {
  return Hidden(batch);
}

}  // namespace basm::models
