// AVX2+FMA GEMM microkernels. This translation unit — and only this one — is
// compiled with -mavx2 -mfma when the BASM_SIMD CMake option is ON on an
// x86-64 target; everywhere else the entry points are traps and
// Avx2Compiled() reports false, so the dispatcher never routes here. The
// caller (kernels.cc) additionally checks the CPU at runtime, so building
// with the flags on a non-AVX2 machine is still safe.

#include "tensor/kernels.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace basm::ops::kernels {
namespace {

constexpr int64_t kPanelK = 256;

/// Horizontal sum of an 8-lane float vector.
float Sum8(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));
  sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x55));
  return _mm_cvtss_f32(sum);
}

}  // namespace

bool Avx2Compiled() { return true; }

void GemmAvx2(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n) {
  if (m * n == 0) return;
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  if (k == 0) return;
  // 4x16 register tile: 4 A-row broadcasts against two 8-wide B vectors,
  // eight ymm accumulators live across the k panel. C is loaded/stored once
  // per panel, B rows stream through L1.
  for (int64_t p0 = 0; p0 < k; p0 += kPanelK) {
    const int64_t p1 = std::min(k, p0 + kPanelK);
    int64_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a + (i + 0) * k;
      const float* a1 = a + (i + 1) * k;
      const float* a2 = a + (i + 2) * k;
      const float* a3 = a + (i + 3) * k;
      float* c0 = c + (i + 0) * n;
      float* c1 = c + (i + 1) * n;
      float* c2 = c + (i + 2) * n;
      float* c3 = c + (i + 3) * n;
      int64_t j = 0;
      for (; j + 16 <= n; j += 16) {
        __m256 acc00 = _mm256_loadu_ps(c0 + j);
        __m256 acc01 = _mm256_loadu_ps(c0 + j + 8);
        __m256 acc10 = _mm256_loadu_ps(c1 + j);
        __m256 acc11 = _mm256_loadu_ps(c1 + j + 8);
        __m256 acc20 = _mm256_loadu_ps(c2 + j);
        __m256 acc21 = _mm256_loadu_ps(c2 + j + 8);
        __m256 acc30 = _mm256_loadu_ps(c3 + j);
        __m256 acc31 = _mm256_loadu_ps(c3 + j + 8);
        for (int64_t p = p0; p < p1; ++p) {
          const __m256 vb0 = _mm256_loadu_ps(b + p * n + j);
          const __m256 vb1 = _mm256_loadu_ps(b + p * n + j + 8);
          __m256 va = _mm256_broadcast_ss(a0 + p);
          acc00 = _mm256_fmadd_ps(va, vb0, acc00);
          acc01 = _mm256_fmadd_ps(va, vb1, acc01);
          va = _mm256_broadcast_ss(a1 + p);
          acc10 = _mm256_fmadd_ps(va, vb0, acc10);
          acc11 = _mm256_fmadd_ps(va, vb1, acc11);
          va = _mm256_broadcast_ss(a2 + p);
          acc20 = _mm256_fmadd_ps(va, vb0, acc20);
          acc21 = _mm256_fmadd_ps(va, vb1, acc21);
          va = _mm256_broadcast_ss(a3 + p);
          acc30 = _mm256_fmadd_ps(va, vb0, acc30);
          acc31 = _mm256_fmadd_ps(va, vb1, acc31);
        }
        _mm256_storeu_ps(c0 + j, acc00);
        _mm256_storeu_ps(c0 + j + 8, acc01);
        _mm256_storeu_ps(c1 + j, acc10);
        _mm256_storeu_ps(c1 + j + 8, acc11);
        _mm256_storeu_ps(c2 + j, acc20);
        _mm256_storeu_ps(c2 + j + 8, acc21);
        _mm256_storeu_ps(c3 + j, acc30);
        _mm256_storeu_ps(c3 + j + 8, acc31);
      }
      for (; j + 8 <= n; j += 8) {
        __m256 acc0 = _mm256_loadu_ps(c0 + j);
        __m256 acc1 = _mm256_loadu_ps(c1 + j);
        __m256 acc2 = _mm256_loadu_ps(c2 + j);
        __m256 acc3 = _mm256_loadu_ps(c3 + j);
        for (int64_t p = p0; p < p1; ++p) {
          const __m256 vb = _mm256_loadu_ps(b + p * n + j);
          acc0 = _mm256_fmadd_ps(_mm256_broadcast_ss(a0 + p), vb, acc0);
          acc1 = _mm256_fmadd_ps(_mm256_broadcast_ss(a1 + p), vb, acc1);
          acc2 = _mm256_fmadd_ps(_mm256_broadcast_ss(a2 + p), vb, acc2);
          acc3 = _mm256_fmadd_ps(_mm256_broadcast_ss(a3 + p), vb, acc3);
        }
        _mm256_storeu_ps(c0 + j, acc0);
        _mm256_storeu_ps(c1 + j, acc1);
        _mm256_storeu_ps(c2 + j, acc2);
        _mm256_storeu_ps(c3 + j, acc3);
      }
      for (; j < n; ++j) {
        float s0 = c0[j], s1 = c1[j], s2 = c2[j], s3 = c3[j];
        for (int64_t p = p0; p < p1; ++p) {
          const float bv = b[p * n + j];
          s0 += a0[p] * bv;
          s1 += a1[p] * bv;
          s2 += a2[p] * bv;
          s3 += a3[p] * bv;
        }
        c0[j] = s0;
        c1[j] = s1;
        c2[j] = s2;
        c3[j] = s3;
      }
    }
    for (; i < m; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        __m256 acc = _mm256_loadu_ps(c_row + j);
        for (int64_t p = p0; p < p1; ++p) {
          acc = _mm256_fmadd_ps(_mm256_broadcast_ss(a_row + p),
                                _mm256_loadu_ps(b + p * n + j), acc);
        }
        _mm256_storeu_ps(c_row + j, acc);
      }
      for (; j < n; ++j) {
        float s = c_row[j];
        for (int64_t p = p0; p < p1; ++p) s += a_row[p] * b[p * n + j];
        c_row[j] = s;
      }
    }
  }
}

void GemmTransAAvx2(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  if (k * n == 0) return;
  std::memset(c, 0, static_cast<size_t>(k * n) * sizeof(float));
  if (m == 0) return;
  // C(k,n) += A^T B: for each sample row i, rank-1 update of C. Four sample
  // rows per pass so each C row is touched once per four updates.
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    const float* b0 = b + (i + 0) * n;
    const float* b1 = b + (i + 1) * n;
    const float* b2 = b + (i + 2) * n;
    const float* b3 = b + (i + 3) * n;
    for (int64_t p = 0; p < k; ++p) {
      const __m256 va0 = _mm256_broadcast_ss(a0 + p);
      const __m256 va1 = _mm256_broadcast_ss(a1 + p);
      const __m256 va2 = _mm256_broadcast_ss(a2 + p);
      const __m256 va3 = _mm256_broadcast_ss(a3 + p);
      float* c_row = c + p * n;
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        __m256 acc = _mm256_loadu_ps(c_row + j);
        acc = _mm256_fmadd_ps(va0, _mm256_loadu_ps(b0 + j), acc);
        acc = _mm256_fmadd_ps(va1, _mm256_loadu_ps(b1 + j), acc);
        acc = _mm256_fmadd_ps(va2, _mm256_loadu_ps(b2 + j), acc);
        acc = _mm256_fmadd_ps(va3, _mm256_loadu_ps(b3 + j), acc);
        _mm256_storeu_ps(c_row + j, acc);
      }
      const float s0 = a0[p], s1 = a1[p], s2 = a2[p], s3 = a3[p];
      for (; j < n; ++j) {
        c_row[j] += s0 * b0[j] + s1 * b1[j] + s2 * b2[j] + s3 * b3[j];
      }
    }
  }
  for (; i < m; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const __m256 va = _mm256_broadcast_ss(a_row + p);
      float* c_row = c + p * n;
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        __m256 acc = _mm256_loadu_ps(c_row + j);
        acc = _mm256_fmadd_ps(va, _mm256_loadu_ps(b_row + j), acc);
        _mm256_storeu_ps(c_row + j, acc);
      }
      const float av = a_row[p];
      for (; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

void GemmTransBAvx2(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n) {
  if (m * n == 0) return;
  if (k == 0) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
    return;
  }
  // Dot-product form: both operands are row-major over k, so each output is
  // one contiguous dot. Four B rows share each A-row load.
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + (j + 0) * k;
      const float* b1 = b + (j + 1) * k;
      const float* b2 = b + (j + 2) * k;
      const float* b3 = b + (j + 3) * k;
      __m256 v0 = _mm256_setzero_ps();
      __m256 v1 = _mm256_setzero_ps();
      __m256 v2 = _mm256_setzero_ps();
      __m256 v3 = _mm256_setzero_ps();
      int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        const __m256 va = _mm256_loadu_ps(a_row + p);
        v0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b0 + p), v0);
        v1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b1 + p), v1);
        v2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b2 + p), v2);
        v3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(b3 + p), v3);
      }
      float s0 = Sum8(v0), s1 = Sum8(v1), s2 = Sum8(v2), s3 = Sum8(v3);
      for (; p < k; ++p) {
        const float av = a_row[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      c_row[j + 0] = s0;
      c_row[j + 1] = s1;
      c_row[j + 2] = s2;
      c_row[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const float* b_row = b + j * k;
      __m256 v = _mm256_setzero_ps();
      int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        v = _mm256_fmadd_ps(_mm256_loadu_ps(a_row + p),
                            _mm256_loadu_ps(b_row + p), v);
      }
      float s = Sum8(v);
      for (; p < k; ++p) s += a_row[p] * b_row[p];
      c_row[j] = s;
    }
  }
}

}  // namespace basm::ops::kernels

#else  // !(__AVX2__ && __FMA__)

namespace basm::ops::kernels {

bool Avx2Compiled() { return false; }

void GemmAvx2(const float*, const float*, float*, int64_t, int64_t, int64_t) {
  BASM_CHECK(false) << "AVX2 kernels were not compiled into this binary";
}

void GemmTransAAvx2(const float*, const float*, float*, int64_t, int64_t,
                    int64_t) {
  BASM_CHECK(false) << "AVX2 kernels were not compiled into this binary";
}

void GemmTransBAvx2(const float*, const float*, float*, int64_t, int64_t,
                    int64_t) {
  BASM_CHECK(false) << "AVX2 kernels were not compiled into this binary";
}

}  // namespace basm::ops::kernels

#endif  // __AVX2__ && __FMA__
