#ifndef BASM_BENCH_BENCH_UTIL_H_
#define BASM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "analysis/ascii_chart.h"
#include "analysis/tsne.h"
#include "common/env.h"
#include "core/basm_model.h"
#include "data/batch.h"
#include "data/synth.h"
#include "train/trainer.h"

namespace basm::bench {

/// Trains a full BASM on the Ele.me-like dataset (shared recipe of the
/// alpha-heatmap and t-SNE figure benches).
struct TrainedBasm {
  data::Dataset dataset;
  std::unique_ptr<core::Basm> model;
};

inline TrainedBasm TrainBasmOnEleme(uint64_t seed) {
  data::SynthConfig config = data::SynthConfig::Eleme();
  if (basm::FastMode()) config = config.Fast();
  TrainedBasm out;
  out.dataset = data::GenerateDataset(config);
  Rng rng(seed);
  out.model = std::make_unique<core::Basm>(out.dataset.schema,
                                           core::BasmConfig::Full(), rng);
  train::TrainConfig tc;
  tc.epochs = basm::FastMode() ? 1 : 2;
  std::printf("  training BASM (%zu impressions)...\n",
              out.dataset.examples.size());
  train::Fit(*out.model, out.dataset, tc);
  return out;
}

/// Runs the model over the test split in eval mode and accumulates the mean
/// StAEL alpha per (group, field), where `group_of` maps an example to its
/// group id (time-period or city).
template <typename GroupFn>
std::map<int32_t, std::vector<double>> CollectAlphaByGroup(
    core::Basm& model, const data::Dataset& dataset, GroupFn group_of,
    int64_t batch_size = 512) {
  model.SetTraining(false);
  auto test = dataset.TestExamples();
  std::map<int32_t, std::vector<double>> sums;
  std::map<int32_t, int64_t> counts;
  const int64_t num_fields = 5;
  for (size_t start = 0; start < test.size();
       start += static_cast<size_t>(batch_size)) {
    size_t end =
        std::min(test.size(), start + static_cast<size_t>(batch_size));
    std::vector<const data::Example*> slice(test.begin() + start,
                                            test.begin() + end);
    data::Batch batch = data::MakeBatch(slice, dataset.schema);
    model.ForwardLogits(batch);
    const Tensor& alphas = model.last_alphas();
    for (size_t i = 0; i < slice.size(); ++i) {
      int32_t g = group_of(*slice[i]);
      auto& sum = sums[g];
      if (sum.empty()) sum.assign(num_fields, 0.0);
      for (int64_t j = 0; j < num_fields; ++j) {
        sum[j] += alphas.at(static_cast<int64_t>(i), j);
      }
      counts[g]++;
    }
  }
  for (auto& [g, sum] : sums) {
    for (double& v : sum) v /= static_cast<double>(counts[g]);
  }
  return sums;
}

/// t-SNE embedding of a model's final representations over the first
/// `max_points` test examples, grouped by time-period or city.
struct EmbeddedReps {
  Tensor points;                // [n, 2]
  std::vector<int32_t> groups;  // group id per point
};

inline EmbeddedReps EmbedRepresentations(models::CtrModel& model,
                                         const data::Dataset& dataset,
                                         int64_t max_points, bool by_city) {
  model.SetTraining(false);
  auto test = dataset.TestExamples();
  int64_t n =
      std::min<int64_t>(max_points, static_cast<int64_t>(test.size()));
  std::vector<const data::Example*> slice(test.begin(), test.begin() + n);

  std::vector<Tensor> chunks;
  std::vector<int32_t> groups;
  const int64_t kChunk = 256;
  int64_t rep_dim = 0;
  for (int64_t start = 0; start < n; start += kChunk) {
    int64_t end = std::min(n, start + kChunk);
    std::vector<const data::Example*> part(slice.begin() + start,
                                           slice.begin() + end);
    data::Batch batch = data::MakeBatch(part, dataset.schema);
    Tensor rep = model.FinalRepresentation(batch).value();
    rep_dim = rep.cols();
    chunks.push_back(rep);
    for (const auto* e : part) {
      groups.push_back(by_city ? e->city : e->time_period);
    }
  }
  Tensor all({n, rep_dim});
  int64_t row = 0;
  for (const Tensor& c : chunks) {
    std::copy(c.data(), c.data() + c.numel(), all.data() + row * rep_dim);
    row += c.rows();
  }

  analysis::TsneConfig config;
  config.iterations = basm::FastMode() ? 150 : 350;
  config.perplexity = 30.0;
  EmbeddedReps out;
  out.points = analysis::Tsne(config).Embed(all);
  out.groups = std::move(groups);
  return out;
}

/// Prints the scatter plot + separation metrics of one embedding.
inline void ReportEmbedding(const char* title, const EmbeddedReps& e) {
  std::vector<double> xs, ys;
  std::vector<int> labels;
  for (int64_t i = 0; i < e.points.dim(0); ++i) {
    xs.push_back(e.points.at(i, 0));
    ys.push_back(e.points.at(i, 1));
    labels.push_back(e.groups[i]);
  }
  std::printf("\n%s\n%s", title,
              analysis::ScatterPlot(xs, ys, labels).c_str());
  std::printf("separation ratio %.3f, silhouette %.3f\n",
              analysis::SeparationRatio(e.points, e.groups),
              analysis::Silhouette(e.points, e.groups));
}

}  // namespace basm::bench

#endif  // BASM_BENCH_BENCH_UTIL_H_
