#ifndef BASM_SERVING_PIPELINE_H_
#define BASM_SERVING_PIPELINE_H_

#include <memory>
#include <vector>

#include "data/batch.h"
#include "models/ctr_model.h"
#include "online/model_slot.h"
#include "serving/feature_server.h"
#include "serving/recall.h"

namespace basm::serving {

/// One ranking request flowing through the TPP pipeline.
struct Request {
  int32_t user_id = 0;
  int32_t hour = 0;
  int32_t weekday = 0;
  int32_t city = 0;
  int32_t day = 0;
  int32_t request_id = 0;
};

/// One exposed slate entry.
struct RankedItem {
  int32_t item_id = 0;
  float score = 0.0f;
  int32_t position = 0;
};

/// Analogue of the Personalization Platform (TPP) orchestration in Fig 13:
/// fetch user features (ABFS), recall candidates by location (LBS), score
/// with the model (RTP), and return the top-k slate for exposure.
///
/// Every serve-path method is const and re-entrant: concurrent calls through
/// one Pipeline from runtime::ServingEngine workers are safe as long as the
/// model is in eval mode and no one mutates the FeatureServer concurrently.
class Pipeline {
 public:
  /// All dependencies are borrowed; the model must outlive the pipeline.
  /// The model is wrapped in a static (version-0, never swapped) servable.
  Pipeline(const data::World& world, FeatureServer* feature_server,
           const RecallIndex* recall, models::CtrModel* model,
           int32_t recall_size, int32_t expose_k);

  /// Hot-swap form: the scoring model is whatever ServableModel the slot
  /// currently holds, so an online::OnlineTrainer can publish new versions
  /// while this pipeline serves. The slot is borrowed and must outlive the
  /// pipeline; it must hold a model before the first scoring call.
  Pipeline(const data::World& world, FeatureServer* feature_server,
           const RecallIndex* recall, const online::ModelSlot* slot,
           int32_t recall_size, int32_t expose_k);

  /// Runs the full serve path; `rng` drives the recall sampling.
  std::vector<RankedItem> Serve(const Request& request, Rng& rng) const;

  /// Scores a given candidate list without recall (used by the simulator to
  /// feed both A/B arms identical candidates).
  std::vector<RankedItem> RankCandidates(
      const Request& request, const std::vector<int32_t>& candidates) const;

  /// The recall stage alone; `rng` drives the popularity-weighted sampling.
  std::vector<int32_t> Recall(const Request& request, Rng& rng) const;

  /// Builds the scoring examples for one request's candidate list. Exposed
  /// so the serving engine can coalesce several requests into one model
  /// batch; scores are independent of batch composition, so engine slates
  /// stay bit-identical to RankCandidates.
  std::vector<data::Example> BuildExamples(
      const Request& request, const std::vector<int32_t>& candidates) const;

  /// Orders candidates by score (stable, descending) and cuts the top-k
  /// slate. Shared between the serial path and the micro-batched engine so
  /// tie-breaking is identical in both.
  static std::vector<RankedItem> MakeSlate(
      const std::vector<int32_t>& candidates, const std::vector<float>& scores,
      int32_t expose_k);

  /// Snapshot of the model to score with: the slot's current servable when
  /// slot-backed, else the static wrap of the constructor model. Callers
  /// (RankCandidates, the engine's ProcessBatch) acquire once per batch and
  /// hold the shared_ptr across the forward, so a concurrent hot-swap can
  /// never free a model mid-score. CHECK-fails if no model is installed.
  std::shared_ptr<const online::ServableModel> AcquireServable() const;

  /// The static constructor model; null when the pipeline is slot-backed.
  models::CtrModel* model() const { return model_; }
  /// The hot-swap slot; null when the pipeline serves a static model.
  const online::ModelSlot* slot() const { return slot_; }
  const data::Schema& schema() const { return world_.schema(); }
  int32_t recall_size() const { return recall_size_; }
  int32_t expose_k() const { return expose_k_; }

 private:
  const data::World& world_;
  FeatureServer* feature_server_;
  const RecallIndex* recall_;
  models::CtrModel* model_;
  const online::ModelSlot* slot_;
  /// Version-0 wrap of `model_` handed out by AcquireServable.
  std::shared_ptr<const online::ServableModel> static_servable_;
  int32_t recall_size_;
  int32_t expose_k_;
};

}  // namespace basm::serving

#endif  // BASM_SERVING_PIPELINE_H_
