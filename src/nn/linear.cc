#include "nn/linear.h"

#include "nn/init.h"
#include "tensor/tensor_ops.h"

namespace basm::nn {

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng,
               bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      use_bias_(use_bias) {
  weight_ =
      RegisterParameter("weight", XavierUniform(in_features, out_features, rng));
  if (use_bias_) {
    bias_ = RegisterParameter("bias", Tensor({1, out_features}));
  }
}

autograd::Variable Linear::Forward(const autograd::Variable& x) const {
  if (!autograd::GradEnabled()) {
    // Inference: fused matmul+bias skips the intermediate tensor (and its
    // allocation) while keeping the exact arithmetic order of the graph
    // path, so guarded scores stay bit-identical to unguarded ones.
    return autograd::Variable::Constant(ops::MatMulBias(
        x.value(), weight_.value(), use_bias_ ? &bias_.value() : nullptr));
  }
  autograd::Variable out = autograd::MatMul(x, weight_);
  if (use_bias_) {
    out = autograd::AddRowBroadcast(out, bias_);
  }
  return out;
}

}  // namespace basm::nn
