// Serving-engine throughput bench: the threads x batch-policy sweep behind
// the runtime/ subsystem. A closed-loop load generator drives the
// ServingEngine over the Ele.me-like world and reports qps, speedup over the
// single-threaded serial pipeline, tail latency, and the realized
// micro-batch distribution, then demonstrates reject-on-full backpressure
// with an undersized queue.
//
// Intentionally a plain main() (not google-benchmark): each cell of the
// sweep is one long closed-loop run with its own latency recorder, which
// benchmark's stat framework would only obscure.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "common/env.h"
#include "data/synth.h"
#include "models/model_zoo.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "serving/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace {

using namespace basm;

struct Cell {
  int32_t workers;
  int64_t max_batch;
  int64_t wait_micros;
};

}  // namespace

int main() {
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 2000;
  config.num_items = 1500;
  config.num_cities = 8;
  data::World world(config);

  serving::FeatureServer features(world, world.config().seq_len, 3);
  serving::RecallIndex recall(world);
  auto model =
      models::CreateModel(models::ModelKind::kBasm, world.schema(), 42);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &features, &recall, model.get(),
                             /*recall_size=*/24, /*expose_k=*/8);

  runtime::LoadConfig load;
  load.num_requests = basm::EnvInt("BASM_ENGINE_REQUESTS",
                                   basm::FastMode() ? 200 : 1500);
  load.concurrency = 32;

  std::printf("serving engine sweep: %lld requests/run, recall 24, "
              "model %s, hardware threads %u\n",
              static_cast<long long>(load.num_requests),
              model->name().c_str(), std::thread::hardware_concurrency());

  runtime::LoadGenerator serial_gen(world, load);
  runtime::LoadReport serial = serial_gen.RunSerial(pipeline);
  std::printf("\nserial pipeline baseline: %.1f qps (%.2fs)\n", serial.qps,
              serial.wall_seconds);

  const std::vector<Cell> cells = {
      {1, 1, 0},   {1, 4, 200}, {1, 8, 300},
      {2, 1, 0},   {2, 4, 200}, {2, 8, 300},
      {4, 1, 0},   {4, 4, 200}, {4, 8, 300},
  };

  std::printf("\n%-8s %-10s %-10s %-9s %-8s %-9s %-9s %-9s %-9s %s\n",
              "workers", "max_batch", "wait_us", "qps", "speedup", "p50_us",
              "p95_us", "p99_us", "avg_batch", "rej/to");
  for (const Cell& cell : cells) {
    runtime::EngineConfig ec;
    ec.num_workers = cell.workers;
    ec.max_batch_requests = cell.max_batch;
    ec.max_wait_micros = cell.wait_micros;
    ec.queue_capacity = 256;
    runtime::ServingEngine engine(&pipeline, ec);

    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    runtime::LatencySnapshot snap = engine.Stats();
    std::printf("%-8d %-10lld %-10lld %-9.1f %-8.2f %-9.0f %-9.0f %-9.0f "
                "%-9.2f %lld/%lld\n",
                cell.workers, static_cast<long long>(cell.max_batch),
                static_cast<long long>(cell.wait_micros), report.qps,
                report.qps / serial.qps, snap.p50_micros, snap.p95_micros,
                snap.p99_micros, snap.mean_batch_size,
                static_cast<long long>(snap.rejects),
                static_cast<long long>(snap.timeouts));
  }

  // Full detail for the headline configuration, with per-window JSON
  // stats sampled from the interval recorder while the load runs — the
  // shape of a production node's periodic metrics export.
  {
    runtime::EngineConfig ec;
    ec.num_workers = 4;
    ec.max_batch_requests = 4;
    ec.max_wait_micros = 200;
    runtime::ServingEngine engine(&pipeline, ec);
    runtime::LoadGenerator generator(world, load);
    std::printf("\nheadline config (4 workers, batch<=4, wait 200us)\n");
    runtime::LoadReport report;
    std::thread driver([&] { report = generator.Run(engine); });
    std::atomic<bool> done{false};
    std::thread sampler([&] {
      while (!done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        runtime::LatencySnapshot window = engine.IntervalStats();
        if (window.count > 0) {
          std::printf("window %s\n", window.ToJson().c_str());
        }
      }
    });
    driver.join();
    done.store(true, std::memory_order_relaxed);
    sampler.join();
    std::printf("%s\n%s", report.ToString().c_str(),
                engine.Stats().ToString().c_str());
  }

  // Backpressure demo: a queue sized far below the offered burst sheds load
  // as immediate UNAVAILABLE rejects instead of queueing without bound.
  {
    runtime::EngineConfig ec;
    ec.num_workers = 2;
    ec.queue_capacity = 8;
    ec.max_batch_requests = 4;
    ec.max_wait_micros = 100;
    runtime::ServingEngine engine(&pipeline, ec);
    runtime::LoadConfig burst = load;
    burst.num_requests = std::min<int64_t>(load.num_requests, 400);
    burst.concurrency = 128;  // >> queue capacity: overload by construction
    runtime::LoadGenerator generator(world, burst);
    runtime::LoadReport report = generator.Run(engine);
    std::printf("\noverload demo (queue 8, concurrency 128)\n%s\n",
                report.ToString().c_str());
  }
  return 0;
}
