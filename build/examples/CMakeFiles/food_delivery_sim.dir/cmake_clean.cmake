file(REMOVE_RECURSE
  "CMakeFiles/food_delivery_sim.dir/food_delivery_sim.cc.o"
  "CMakeFiles/food_delivery_sim.dir/food_delivery_sim.cc.o.d"
  "food_delivery_sim"
  "food_delivery_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/food_delivery_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
