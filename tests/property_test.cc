// Property-based sweeps: algebraic identities of the tensor kernels,
// gradient checks across randomized graph shapes, generator invariants
// across seeds, and metric laws. Parameterized over seeds so each property
// is exercised on several independent random instances.

#include <cmath>

#include "autograd/ops.h"
#include "common/rng.h"
#include "data/synth.h"
#include "gtest/gtest.h"
#include "metrics/metrics.h"
#include "tensor/tensor_ops.h"
#include "tests/test_util.h"

namespace basm {
namespace {

namespace ag = ::basm::autograd;

class SeededProperty : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99991u));

TEST_P(SeededProperty, MatMulAssociativity) {
  Rng rng(GetParam());
  Tensor a = Tensor::Normal({4, 5}, 0, 1, rng);
  Tensor b = Tensor::Normal({5, 6}, 0, 1, rng);
  Tensor c = Tensor::Normal({6, 3}, 0, 1, rng);
  Tensor left = ops::MatMul(ops::MatMul(a, b), c);
  Tensor right = ops::MatMul(a, ops::MatMul(b, c));
  EXPECT_TRUE(ops::AllClose(left, right, 1e-4f, 1e-5f));
}

TEST_P(SeededProperty, MatMulDistributesOverAdd) {
  Rng rng(GetParam());
  Tensor a = Tensor::Normal({3, 4}, 0, 1, rng);
  Tensor b = Tensor::Normal({4, 5}, 0, 1, rng);
  Tensor c = Tensor::Normal({4, 5}, 0, 1, rng);
  Tensor left = ops::MatMul(a, ops::Add(b, c));
  Tensor right = ops::Add(ops::MatMul(a, b), ops::MatMul(a, c));
  EXPECT_TRUE(ops::AllClose(left, right, 1e-4f, 1e-5f));
}

TEST_P(SeededProperty, TransposeReversesMatMul) {
  Rng rng(GetParam());
  Tensor a = Tensor::Normal({4, 6}, 0, 1, rng);
  Tensor b = Tensor::Normal({6, 3}, 0, 1, rng);
  Tensor left = ops::Transpose(ops::MatMul(a, b));
  Tensor right = ops::MatMul(ops::Transpose(b), ops::Transpose(a));
  EXPECT_TRUE(ops::AllClose(left, right, 1e-4f, 1e-5f));
}

TEST_P(SeededProperty, SoftmaxShiftInvariance) {
  Rng rng(GetParam());
  Tensor a = Tensor::Normal({5, 7}, 0, 2, rng);
  Tensor shifted = ops::AddScalar(a, 123.0f);
  EXPECT_TRUE(ops::AllClose(ops::RowSoftmax(a), ops::RowSoftmax(shifted),
                            1e-4f, 1e-6f));
}

TEST_P(SeededProperty, ReductionConsistency) {
  Rng rng(GetParam());
  Tensor a = Tensor::Normal({6, 9}, 0, 1, rng);
  // Summing row sums == summing column sums == summing everything.
  EXPECT_NEAR(ops::RowSum(a).Sum(), a.Sum(), 1e-3f);
  EXPECT_NEAR(ops::ColSum(a).Sum(), a.Sum(), 1e-3f);
  EXPECT_NEAR(ops::SumAll(a)[0], a.Sum(), 1e-3f);
}

TEST_P(SeededProperty, GradCheckRandomizedComposite) {
  // Randomly-shaped composite graph hitting matmul, broadcast, activation,
  // softmax and reduction in one pass.
  Rng rng(GetParam());
  int64_t m = 2 + static_cast<int64_t>(rng.NextUint64(3));
  int64_t k = 2 + static_cast<int64_t>(rng.NextUint64(3));
  int64_t n = 2 + static_cast<int64_t>(rng.NextUint64(3));
  std::vector<ag::Variable> leaves = {
      ag::Variable::Leaf(Tensor::Normal({m, k}, 0, 0.5f, rng), true),
      ag::Variable::Leaf(Tensor::Normal({k, n}, 0, 0.5f, rng), true),
      ag::Variable::Leaf(Tensor::Normal({1, n}, 0, 0.5f, rng), true),
  };
  basm::testing::CheckGradients(leaves, [&] {
    ag::Variable h = ag::Tanh(
        ag::AddRowBroadcast(ag::MatMul(leaves[0], leaves[1]), leaves[2]));
    ag::Variable attn = ag::RowSoftmax(h);
    return ag::SumAll(ag::Mul(attn, h));
  });
}

TEST_P(SeededProperty, GradCheckGatedBroadcastComposite) {
  // The StAEL-style pattern: per-row scalar gates scaling a field.
  Rng rng(GetParam());
  std::vector<ag::Variable> leaves = {
      ag::Variable::Leaf(Tensor::Normal({4, 6}, 0, 0.5f, rng), true),
      ag::Variable::Leaf(Tensor::Normal({6, 1}, 0, 0.5f, rng), true),
  };
  basm::testing::CheckGradients(leaves, [&] {
    ag::Variable gate =
        ag::Scale(ag::Sigmoid(ag::MatMul(leaves[0], leaves[1])), 2.0f);
    ag::Variable gated = ag::MulColBroadcast(leaves[0], gate);
    return ag::SumAll(ag::Mul(gated, gated));
  });
}

TEST_P(SeededProperty, BackwardMatchesSplitGraphs) {
  // Gradient of f+g equals grad f + grad g computed separately.
  Rng rng(GetParam());
  Tensor init = Tensor::Normal({3, 3}, 0, 1, rng);
  ag::Variable joint = ag::Variable::Leaf(init, true);
  ag::Backward(ag::Add(ag::SumAll(ag::Mul(joint, joint)),
                       ag::SumAll(ag::Sigmoid(joint))));

  ag::Variable split = ag::Variable::Leaf(init, true);
  ag::Backward(ag::SumAll(ag::Mul(split, split)));
  ag::Backward(ag::SumAll(ag::Sigmoid(split)));

  EXPECT_TRUE(ops::AllClose(joint.grad(), split.grad(), 1e-4f, 1e-5f));
}

TEST_P(SeededProperty, GroupedAucSingleGroupEqualsAuc) {
  Rng rng(GetParam());
  std::vector<float> scores, labels;
  std::vector<int32_t> groups;
  for (int i = 0; i < 400; ++i) {
    scores.push_back(static_cast<float>(rng.Normal()));
    labels.push_back(rng.Bernoulli(0.3) ? 1.0f : 0.0f);
    groups.push_back(0);
  }
  EXPECT_NEAR(metrics::GroupedAuc(scores, labels, groups),
              metrics::Auc(scores, labels), 1e-12);
}

TEST_P(SeededProperty, DatasetInvariantsAcrossSeeds) {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.seed = GetParam() * 7919 + 13;
  c.num_users = 250;
  c.num_items = 150;
  c.num_cities = 4;
  c.requests_per_day = 40;
  c.days = 2;
  c.test_day = 1;
  c.seq_len = 5;
  data::Dataset ds = data::GenerateDataset(c);
  ASSERT_EQ(static_cast<int64_t>(ds.examples.size()),
            c.days * c.requests_per_day * c.candidates_per_request);
  double ctr = 0.0;
  for (const auto& e : ds.examples) {
    ASSERT_GE(e.gt_prob, 0.0f);
    ASSERT_LE(e.gt_prob, 1.0f);
    ASSERT_EQ(e.time_period,
              static_cast<int32_t>(data::TimePeriodOfHour(e.hour)));
    ctr += e.label;
  }
  ctr /= static_cast<double>(ds.examples.size());
  // Click rate stays in a sane band for every seed.
  EXPECT_GT(ctr, 0.02);
  EXPECT_LT(ctr, 0.45);
}

TEST_P(SeededProperty, ZipfMonotoneForAnyExponent) {
  Rng rng(GetParam());
  double s = rng.Uniform(0.2, 2.0);
  ZipfTable table(64, s);
  for (int64_t i = 1; i < table.size(); ++i) {
    EXPECT_GE(table.Probability(i - 1), table.Probability(i));
  }
}

}  // namespace
}  // namespace basm
