#ifndef BASM_NET_CLIENT_H_
#define BASM_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "data/synth.h"
#include "net/socket.h"
#include "net/wire.h"
#include "runtime/latency_recorder.h"

namespace basm::net {

/// Blocking RPC client over one TCP connection. Two usage modes, one
/// connection object: the classic lock-step Call() (send, block for the
/// matching response), and the pipelined Send()/Receive() pair — keep a
/// window of requests in flight and demux responses by the sequence number
/// they echo, in whatever order the server completes them (the epoll
/// frontend finishes out of order). Move-only (owns the connection).
class RpcClient {
 public:
  [[nodiscard]] static StatusOr<RpcClient> Connect(const std::string& host,
                                                   uint16_t port);

  /// Disconnected client (StatusOr default-constructibility); every use
  /// goes through Connect().
  RpcClient() = default;

  RpcClient(RpcClient&&) = default;
  RpcClient& operator=(RpcClient&&) = default;

  /// Sends the request and blocks for the matching response. The returned
  /// Status covers transport and framing only — an application-level error
  /// (shed, unroutable, deadline) comes back as an OK Call whose
  /// RpcResponse::code is not kOk, exactly as it crossed the wire.
  [[nodiscard]] StatusOr<RpcResponse> Call(const RpcRequest& request);

  /// Pipelined send: assigns the next sequence number, writes the frame,
  /// and returns the sequence without waiting for the response. The caller
  /// pairs it with a later Receive() by that sequence.
  [[nodiscard]] StatusOr<uint64_t> Send(const RpcRequest& request);

  /// Reads the next response frame off the wire, whichever in-flight
  /// request it answers — the caller demuxes on RpcResponse::sequence.
  /// `timeout_ms` bounds the wait for the first byte (DEADLINE_EXCEEDED on
  /// expiry; a starved connection gives up instead of parking forever);
  /// negative blocks indefinitely.
  [[nodiscard]] StatusOr<RpcResponse> Receive(int timeout_ms);

 private:
  explicit RpcClient(TcpConnection connection)
      : connection_(std::move(connection)) {}

  TcpConnection connection_;
  uint64_t next_sequence_ = 1;
};

/// The closed-loop client fleet driving the networked tier: `num_clients`
/// connections, each submitting its next request the moment the previous
/// one completes. Traffic follows the paper's serving context — users drawn
/// Zipf-distributed (a head of heavy orderers, a long tail), request hours
/// drawn from the World's meal-time diurnal exposure curve, the context
/// city the user's home city — so the loopback benchmark exercises the
/// same skew the router's consistent hashing has to absorb.
struct FleetConfig {
  int32_t num_clients = 8;
  /// Total requests across the fleet.
  int64_t num_requests = 2000;
  /// Zipf exponent of the user draw (0 = uniform users).
  double zipf_exponent = 1.1;
  int64_t deadline_micros = 1000000;
  /// Per-request explicit candidate count; 0 lets the replica run recall.
  int32_t explicit_candidates = 0;
  /// Consecutive transport failures after which a client gives up (the
  /// server is gone, not a replica).
  int32_t max_transport_failures = 3;
  /// Requests each client keeps in flight on its connection. 1 is the
  /// classic closed loop; >1 sends a window and demuxes responses by
  /// sequence number (out-of-order completion from the epoll frontend).
  int32_t pipeline_window = 1;
  /// Patience for the next response: no bytes for this long counts as a
  /// transport failure (a starved connection on an overloaded frontend
  /// abandons instead of blocking forever). Negative blocks indefinitely.
  int32_t receive_timeout_ms = 10000;
  uint64_t seed = 0xF1EE7ULL;
};

/// Aggregate outcome of one fleet run.
struct FleetReport {
  int64_t sent = 0;
  int64_t ok = 0;
  /// Subset of `ok` served with a degraded behavior window.
  int64_t degraded = 0;
  /// UNAVAILABLE responses: admission-shed, queue-full, or unroutable.
  int64_t shed = 0;
  /// Other non-OK responses (deadline exceeded, cancelled, ...).
  int64_t failed = 0;
  /// Broken connections / framing errors seen by clients.
  int64_t transport_errors = 0;
  /// Users whose answering replica changed mid-run — zero under stable
  /// replicas (the consistent-hash pin), positive only across a failover.
  int64_t rehomed_users = 0;
  /// Clients that completed their whole assigned range (no abandonment) —
  /// the connection-scaling metric: how many concurrent connections the
  /// frontend actually sustained to completion.
  int64_t clients_served = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  double p50_micros = 0.0;
  double p99_micros = 0.0;
  /// OK responses answered by each replica id (kNoReplica excluded).
  std::vector<int64_t> per_replica_ok;

  std::string ToString() const;
};

class ClientFleet {
 public:
  ClientFleet(const data::World& world, FleetConfig config);

  ClientFleet(const ClientFleet&) = delete;
  ClientFleet& operator=(const ClientFleet&) = delete;

  /// Runs the whole fleet against host:port and blocks until every client
  /// finishes. May be called repeatedly (phases of one scenario: baseline,
  /// kill, recovery); counters accumulate per call, not across calls.
  [[nodiscard]] StatusOr<FleetReport> Run(const std::string& host,
                                          uint16_t port);

 private:
  /// One client's loop (requests [begin, end) of the run): a window of
  /// `pipeline_window` requests kept in flight, responses demuxed by
  /// sequence (window 1 degenerates to the classic closed loop).
  void ClientLoop(const std::string& host, uint16_t port, int32_t client_id,
                  int64_t begin, int64_t end, FleetReport* report,
                  runtime::LatencyRecorder* recorder);

  /// Draws one request with the fleet's traffic shape (Zipf user, diurnal
  /// hour, home city, optional explicit candidates).
  RpcRequest MakeRequest(Rng& rng, int64_t i) const;

  const data::World& world_;
  const FleetConfig config_;
  const ZipfTable user_zipf_;
  /// Last replica observed answering each user, across Run() calls; -1
  /// until first observed. Guarded by rehome_mu_ (cold path: one update
  /// per response).
  Mutex rehome_mu_;
  std::vector<int32_t> user_replica_ BASM_GUARDED_BY(rehome_mu_);
};

}  // namespace basm::net

#endif  // BASM_NET_CLIENT_H_
