#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace basm::net {

namespace {

std::string ErrnoMessage(const std::string& what, int err) {
  return what + ": " + std::strerror(err);
}

Status SetNoDelay(int fd) {
  int one = 1;
  if (setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Status::Internal(ErrnoMessage("setsockopt(TCP_NODELAY)", errno));
  }
  return Status::Ok();
}

/// Polls `fd` for `events` up to `timeout_ms`; true when ready.
StatusOr<bool> PollFd(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  while (true) {
    int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno == EINTR) continue;
    return Status::Internal(ErrnoMessage("poll", errno));
  }
}

}  // namespace

Status Socket::SetNonBlocking(bool nonblocking) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return Status::Internal(ErrnoMessage("fcntl(F_GETFL)", errno));
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd_, F_SETFL, flags) != 0) {
    return Status::Internal(ErrnoMessage("fcntl(F_SETFL)", errno));
  }
  return Status::Ok();
}

Status Socket::SetSendBufferBytes(int32_t bytes) {
  if (setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) != 0) {
    return Status::Internal(ErrnoMessage("setsockopt(SO_SNDBUF)", errno));
  }
  return Status::Ok();
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

StatusOr<TcpConnection> TcpConnection::Connect(const std::string& host,
                                               uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("socket", errno));
  Socket socket(fd);

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad address: " + host);
  }
  while (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    return Status::Unavailable(
        ErrnoMessage("connect " + host + ":" + std::to_string(port), errno));
  }
  BASM_RETURN_IF_ERROR(SetNoDelay(fd));
  return TcpConnection(std::move(socket));
}

Status TcpConnection::WriteAll(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  size_t written = 0;
  while (written < size) {
    // MSG_NOSIGNAL: a peer reset reports EPIPE instead of raising SIGPIPE.
    ssize_t n = ::send(socket_.fd(), p + written, size - written,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Slow peer (full send buffer) on a non-blocking descriptor: a
        // frame half-written here would desynchronize the stream for every
        // later frame, so park on writability and finish the buffer.
        StatusOr<bool> writable = PollFd(socket_.fd(), POLLOUT, -1);
        if (!writable.ok()) return writable.status();
        continue;
      }
      return Status::Unavailable(ErrnoMessage("send", errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status TcpConnection::ReadAll(void* data, size_t size) {
  uint8_t* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(socket_.fd(), p + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking descriptor used through the blocking wrapper: wait
        // for readability and continue accumulating the buffer.
        StatusOr<bool> readable = PollFd(socket_.fd(), POLLIN, -1);
        if (!readable.ok()) return readable.status();
        continue;
      }
      return Status::Unavailable(ErrnoMessage("recv", errno));
    }
    if (n == 0) {
      if (got == 0) return Status::Cancelled("connection closed by peer");
      return Status::Unavailable("stream truncated mid-frame: got " +
                                 std::to_string(got) + " of " +
                                 std::to_string(size) + " bytes");
    }
    got += static_cast<size_t>(n);
  }
  return Status::Ok();
}

StatusOr<IoChunk> TcpConnection::WriteChunk(const void* data, size_t size) {
  IoChunk chunk;
  while (true) {
    ssize_t n = ::send(socket_.fd(), data, size, MSG_NOSIGNAL);
    if (n >= 0) {
      chunk.bytes = static_cast<size_t>(n);
      return chunk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      chunk.would_block = true;
      return chunk;
    }
    return Status::Unavailable(ErrnoMessage("send", errno));
  }
}

StatusOr<IoChunk> TcpConnection::ReadChunk(void* data, size_t size) {
  IoChunk chunk;
  while (true) {
    ssize_t n = ::recv(socket_.fd(), data, size, 0);
    if (n > 0) {
      chunk.bytes = static_cast<size_t>(n);
      return chunk;
    }
    if (n == 0) {
      chunk.eof = true;
      return chunk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      chunk.would_block = true;
      return chunk;
    }
    return Status::Unavailable(ErrnoMessage("recv", errno));
  }
}

StatusOr<bool> TcpConnection::WaitReadable(int timeout_ms) {
  return PollFd(socket_.fd(), POLLIN, timeout_ms);
}

StatusOr<TcpListener> TcpListener::Bind(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal(ErrnoMessage("socket", errno));
  Socket socket(fd);

  int one = 1;
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return Status::Internal(ErrnoMessage("setsockopt(SO_REUSEADDR)", errno));
  }
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable(
        ErrnoMessage("bind port " + std::to_string(port), errno));
  }
  if (::listen(fd, backlog) != 0) {
    return Status::Internal(ErrnoMessage("listen", errno));
  }
  // Recover the ephemeral port when 0 was requested.
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
    return Status::Internal(ErrnoMessage("getsockname", errno));
  }
  return TcpListener(std::move(socket), ntohs(addr.sin_port));
}

StatusOr<bool> TcpListener::WaitAcceptable(int timeout_ms) {
  return PollFd(socket_.fd(), POLLIN, timeout_ms);
}

StatusOr<TcpConnection> TcpListener::Accept() {
  while (true) {
    int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      BASM_RETURN_IF_ERROR(SetNoDelay(fd));
      return TcpConnection(std::move(conn));
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(ErrnoMessage("accept", errno));
  }
}

StatusOr<bool> TcpListener::TryAccept(TcpConnection* out) {
  while (true) {
    int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      BASM_RETURN_IF_ERROR(SetNoDelay(fd));
      BASM_RETURN_IF_ERROR(conn.SetNonBlocking(true));
      *out = TcpConnection(std::move(conn));
      return true;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    return Status::Unavailable(ErrnoMessage("accept", errno));
  }
}

}  // namespace basm::net
