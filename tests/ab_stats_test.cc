#include "serving/ab_stats.h"

#include <cmath>

#include "gtest/gtest.h"

namespace basm::serving {
namespace {

TEST(TwoProportionZTest, ClearLiftIsSignificant) {
  // 4.0% -> 5.0% CTR on 100k exposures each: overwhelmingly significant.
  auto r = TwoProportionZTest(4000, 100000, 5000, 100000);
  EXPECT_GT(r.z, 5.0);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_TRUE(r.significant_at_05);
  EXPECT_NEAR(r.lift, 0.25, 1e-9);
}

TEST(TwoProportionZTest, TinySampleNotSignificant) {
  // Same rates on 100 exposures: cannot distinguish.
  auto r = TwoProportionZTest(4, 100, 5, 100);
  EXPECT_FALSE(r.significant_at_05);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(TwoProportionZTest, IdenticalArmsZeroZ) {
  auto r = TwoProportionZTest(500, 10000, 500, 10000);
  EXPECT_NEAR(r.z, 0.0, 1e-12);
  EXPECT_NEAR(r.p_value, 1.0, 1e-9);
  EXPECT_FALSE(r.significant_at_05);
}

TEST(TwoProportionZTest, SignMatchesDirection) {
  auto up = TwoProportionZTest(400, 10000, 500, 10000);
  auto down = TwoProportionZTest(500, 10000, 400, 10000);
  EXPECT_GT(up.z, 0.0);
  EXPECT_LT(down.z, 0.0);
  EXPECT_NEAR(up.z, -down.z, 1e-9);
}

TEST(TwoProportionZTest, KnownValue) {
  // p1 = 0.10 (100/1000), p2 = 0.13 (130/1000); pooled = 0.115.
  // se = sqrt(0.115*0.885*(2/1000)) = 0.014273..., z = 0.03/se = 2.1018...
  auto r = TwoProportionZTest(100, 1000, 130, 1000);
  EXPECT_NEAR(r.z, 2.1018, 1e-3);
  EXPECT_TRUE(r.significant_at_05);
}

TEST(TwoProportionZTest, EmptyArmsHandled) {
  auto r = TwoProportionZTest(0, 0, 0, 0);
  EXPECT_EQ(r.z, 0.0);
  EXPECT_FALSE(r.significant_at_05);
}

TEST(SignificanceTest, WrapsAbTestResult) {
  AbTestResult result;
  result.base.total.clicks = 461;
  result.base.total.exposures = 10000;
  result.treatment.total.clicks = 491;
  result.treatment.total.exposures = 10000;
  auto r = Significance(result);
  EXPECT_GT(r.z, 0.0);
  EXPECT_NEAR(r.lift, (0.0491 - 0.0461) / 0.0461, 1e-6);
}

}  // namespace
}  // namespace basm::serving
