#ifndef BASM_SERVING_PIPELINE_H_
#define BASM_SERVING_PIPELINE_H_

#include <chrono>
#include <memory>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "data/batch.h"
#include "feature_store/feature_store.h"
#include "models/ctr_model.h"
#include "online/model_slot.h"
#include "feature_store/feature_server.h"
#include "serving/recall.h"

namespace basm::serving {

/// Fault site name the fallible recall stage evaluates (see FaultInjector):
/// the LBS candidate-recall dependency of Fig 13, which can fail or spike
/// independently of the feature store.
inline constexpr char kRecallFaultSite[] = "pipeline.recall";

/// One ranking request flowing through the TPP pipeline.
struct Request {
  int32_t user_id = 0;
  int32_t hour = 0;
  int32_t weekday = 0;
  int32_t city = 0;
  int32_t day = 0;
  int32_t request_id = 0;
};

/// One exposed slate entry.
struct RankedItem {
  int32_t item_id = 0;
  float score = 0.0f;
  int32_t position = 0;
};

/// Fault-handling policy of the pipeline's feature-fetch stage.
struct FeatureFaultPolicy {
  /// Bounded retries with backoff around FeatureServer::FetchUserFeatures.
  RetryPolicy retry;
  /// Optional breaker guarding the fetch (borrowed; must outlive the
  /// pipeline). When open, fetches are skipped entirely and the request
  /// degrades immediately instead of burning its deadline on retries.
  CircuitBreaker* breaker = nullptr;
  /// Base seed of the per-request jitter streams.
  uint64_t jitter_seed = 0xFA117;
};

/// What happened on one request's feature-fetch stage (feeds the engine's
/// LatencyRecorder counters and SlateResult::degraded).
struct FeatureFetchOutcome {
  /// True when the request is served without a fresh behavior window
  /// because the fetch failed, timed out, or was short-circuited.
  bool degraded = false;
  /// Degraded refinement: the feature store had a last-known window, so
  /// the request serves *stale* features (real but old behavior) instead
  /// of an empty window. Only meaningful when `degraded` is true.
  bool stale = false;
  /// Age of the stale window served (0 unless `stale`).
  int64_t stale_age_micros = 0;
  /// The store *had* a last-known window but refused it: older than the
  /// TTL budget (FeatureStoreConfig::max_stale_age_micros), so the request
  /// degraded all the way to empty. Only meaningful when `degraded`.
  bool stale_expired = false;
  /// Fetch attempts beyond the first.
  int32_t retries = 0;
  /// This request's failure tripped the breaker open.
  bool breaker_opened = false;
  /// The breaker was open: the fetch was skipped without any attempt.
  bool short_circuited = false;
  /// Last fetch error (OK when the fetch succeeded or was skipped).
  Status last_error;
};

/// Analogue of the Personalization Platform (TPP) orchestration in Fig 13:
/// fetch user features (ABFS, through the sharded FeatureStore), recall
/// candidates by location (LBS), score with the model (RTP), and return the
/// top-k slate for exposure.
///
/// Every serve-path method is const and re-entrant: concurrent calls through
/// one Pipeline from runtime::ServingEngine workers are safe — the model is
/// in eval mode and the FeatureStore synchronizes all feature access behind
/// per-shard locks.
class Pipeline {
 public:
  /// All dependencies are borrowed; the model must outlive the pipeline.
  /// The model is wrapped in a static (version-0, never swapped) servable.
  Pipeline(const data::World& world, feature_store::FeatureStore* features,
           const RecallIndex* recall, models::CtrModel* model,
           int32_t recall_size, int32_t expose_k);

  /// Hot-swap form: the scoring model is whatever ServableModel the slot
  /// currently holds, so an online::OnlineTrainer can publish new versions
  /// while this pipeline serves. The slot is borrowed and must outlive the
  /// pipeline; it must hold a model before the first scoring call.
  Pipeline(const data::World& world, feature_store::FeatureStore* features,
           const RecallIndex* recall, const online::ModelSlot* slot,
           int32_t recall_size, int32_t expose_k);

  /// Runs the full serve path; `rng` drives the recall sampling.
  std::vector<RankedItem> Serve(const Request& request, Rng& rng) const;

  /// Scores a given candidate list without recall (used by the simulator to
  /// feed both A/B arms identical candidates).
  std::vector<RankedItem> RankCandidates(
      const Request& request, const std::vector<int32_t>& candidates) const;

  /// The recall stage alone; `rng` drives the popularity-weighted sampling.
  std::vector<int32_t> Recall(const Request& request, Rng& rng) const;

  /// Fault-tolerant recall — evaluates kRecallFaultSite through the
  /// injector (sleeping injected latency) and, on an injected error, falls
  /// back to the head of the city's item list instead of failing: an
  /// unpersonalized, popularity-free slate still renders (same contract as
  /// the degraded feature path). Sets *degraded on fallback. With no
  /// injector this is Recall plus one pointer test.
  std::vector<int32_t> RecallFallible(const Request& request, Rng& rng,
                                      bool* degraded) const;

  /// Routes RecallFallible through `injector` (borrowed; nullptr restores
  /// the clean path). Defaults to FaultInjector::FromEnv(), so setting
  /// BASM_FAULT_RATE injects recall faults with no code changes.
  void SetFaultInjector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

  /// Builds the scoring examples for one request's candidate list. Exposed
  /// so the serving engine can coalesce several requests into one model
  /// batch; scores are independent of batch composition, so engine slates
  /// stay bit-identical to RankCandidates.
  std::vector<data::Example> BuildExamples(
      const Request& request, const std::vector<int32_t>& candidates) const;

  /// Arms the fault-tolerant feature path: BuildExamplesFallible (and the
  /// engine through it) retries fetches under `policy`, consults the
  /// breaker, and degrades instead of failing. Call before serving starts;
  /// serve-path methods stay const and re-entrant afterwards (the breaker
  /// is internally synchronized, the policy immutable).
  void EnableFaultTolerance(FeatureFaultPolicy policy);
  bool fault_tolerant() const { return fault_tolerant_; }
  CircuitBreaker* feature_breaker() const { return fault_policy_.breaker; }

  /// Arms intra-batch parallel scoring: RankCandidates splits slates of at
  /// least 2*min_rows_per_shard candidates into contiguous shards scored on
  /// `pool` (borrowed; must outlive the pipeline) plus the calling thread.
  /// Scores and slates stay bit-identical to serial scoring — eval-mode
  /// forwards are row-independent, and shard results land at fixed offsets.
  /// Call before serving starts; serve-path methods stay const and
  /// re-entrant afterwards.
  void EnableParallelScoring(ThreadPool* pool, int64_t min_rows_per_shard = 64);

  /// Fault-tolerant example construction — the graceful-degradation stage.
  /// Fetches the user's behavior window through the breaker + retry loop,
  /// never exceeding `deadline`; on failure it falls back to the feature
  /// store's *last-known* window for the user (stale degradation — real
  /// but old behavior beats no behavior) and only serves an empty window
  /// when the user was never cached. Either way the request renders (the
  /// paper's slate must survive ABFS being down). Reports what happened —
  /// including stale vs empty and the staleness age — through `outcome`.
  /// On the happy path the examples are bit-identical to BuildExamples.
  std::vector<data::Example> BuildExamplesFallible(
      const Request& request, const std::vector<int32_t>& candidates,
      std::chrono::steady_clock::time_point deadline,
      FeatureFetchOutcome* outcome) const;

  /// Orders candidates by score (stable, descending) and cuts the top-k
  /// slate. Shared between the serial path and the micro-batched engine so
  /// tie-breaking is identical in both.
  static std::vector<RankedItem> MakeSlate(
      const std::vector<int32_t>& candidates, const std::vector<float>& scores,
      int32_t expose_k);

  /// Snapshot of the model to score with: the slot's current servable when
  /// slot-backed, else the static wrap of the constructor model. Callers
  /// (RankCandidates, the engine's ProcessBatch) acquire once per batch and
  /// hold the shared_ptr across the forward, so a concurrent hot-swap can
  /// never free a model mid-score. CHECK-fails if no model is installed.
  std::shared_ptr<const online::ServableModel> AcquireServable() const;

  /// The feature store this pipeline fetches through (never null) — the
  /// engine reads it for prefetch and for folding cache/prefetch counters
  /// into snapshot exports.
  feature_store::FeatureStore* feature_store() const { return features_; }

  /// The static constructor model; null when the pipeline is slot-backed.
  models::CtrModel* model() const { return model_; }
  /// The hot-swap slot; null when the pipeline serves a static model.
  const online::ModelSlot* slot() const { return slot_; }
  const data::Schema& schema() const { return world_.schema(); }
  int32_t recall_size() const { return recall_size_; }
  int32_t expose_k() const { return expose_k_; }

 private:
  const data::World& world_;
  feature_store::FeatureStore* features_;
  const RecallIndex* recall_;
  models::CtrModel* model_;
  const online::ModelSlot* slot_;
  /// Version-0 wrap of `model_` handed out by AcquireServable.
  std::shared_ptr<const online::ServableModel> static_servable_;
  int32_t recall_size_;
  int32_t expose_k_;
  /// Drives kRecallFaultSite in RecallFallible; seeded from FromEnv().
  FaultInjector* fault_injector_;
  bool fault_tolerant_ = false;
  FeatureFaultPolicy fault_policy_;
  /// Armed by EnableParallelScoring; null keeps RankCandidates serial.
  ThreadPool* scoring_pool_ = nullptr;
  int64_t min_rows_per_shard_ = 64;

  /// Shared example-construction tail of BuildExamples and its fallible
  /// twin: one Example per candidate from the given behavior window.
  std::vector<data::Example> BuildExamplesWithBehaviors(
      const Request& request, const std::vector<int32_t>& candidates,
      const std::vector<data::BehaviorEvent>& behaviors) const;
};

}  // namespace basm::serving

#endif  // BASM_SERVING_PIPELINE_H_
