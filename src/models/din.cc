#include "models/din.h"

namespace basm::models {

namespace ag = ::basm::autograd;

Din::Din(const data::Schema& schema, int64_t embed_dim,
         std::vector<int64_t> hidden, Rng& rng) {
  encoder_ = std::make_unique<FeatureEncoder>(schema, embed_dim, rng);
  RegisterModule("encoder", encoder_.get());
  attention_ = std::make_unique<nn::TargetAttention>(encoder_->seq_dim(),
                                                     /*hidden=*/32, rng);
  RegisterModule("attention", attention_.get());
  std::vector<int64_t> dims = {encoder_->concat_dim()};
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  tower_ = std::make_unique<nn::Mlp>(dims, nn::Activation::kLeakyRelu, rng);
  RegisterModule("tower", tower_.get());
  out_ = std::make_unique<nn::Linear>(dims.back(), 1, rng);
  RegisterModule("out", out_.get());
}

ag::Variable Din::Hidden(const data::Batch& batch) {
  FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  ag::Variable interest = attention_->Forward(f.query, f.seq, batch.seq_mask);
  ag::Variable x =
      ag::ConcatCols({f.user, interest, f.item, f.context, f.combine});
  return nn::Apply(nn::Activation::kLeakyRelu, tower_->Forward(x));
}

ag::Variable Din::ForwardLogits(const data::Batch& batch) {
  return ag::Reshape(out_->Forward(Hidden(batch)), {batch.size});
}

ag::Variable Din::FinalRepresentation(const data::Batch& batch) {
  return Hidden(batch);
}

}  // namespace basm::models
