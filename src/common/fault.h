#ifndef BASM_COMMON_FAULT_H_
#define BASM_COMMON_FAULT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "common/synchronization.h"

namespace basm {

/// Per-site fault process: probabilistic errors and latency spikes drawn
/// from a deterministic per-site RNG stream, plus an optional sustained
/// outage window addressed by call index (calls
/// [outage_start_call, outage_start_call + outage_calls) all fail). Call
/// indexing makes the outage reproducible regardless of thread timing.
struct FaultSiteConfig {
  /// Probability a call fails with `error_code`/`error_message`.
  double error_probability = 0.0;
  /// Probability a (non-failing) call is delayed by `spike_micros`.
  double spike_probability = 0.0;
  int64_t spike_micros = 2000;
  /// Delay applied to every call inside the outage window (a stalled
  /// dependency: slow *and* failing). 0 makes the outage fail fast.
  int64_t outage_stall_micros = 0;
  StatusCode error_code = StatusCode::kUnavailable;
  std::string error_message = "injected fault";
  /// First call index of the sustained outage; -1 disables the window.
  int64_t outage_start_call = -1;
  int64_t outage_calls = 0;
};

/// What the injector decided for one call: an optional delay (latency
/// spike / stall) followed by an optional error. The caller is responsible
/// for sleeping `delay_micros` — the injector itself never blocks, so it
/// can be evaluated under locks.
struct FaultDecision {
  Status status;  ///< OK, or the injected error
  int64_t delay_micros = 0;
};

/// Counters of one fault site since configuration.
struct FaultSiteStats {
  int64_t calls = 0;
  int64_t errors = 0;   ///< injected errors (probabilistic + outage)
  int64_t spikes = 0;   ///< injected latency spikes
  int64_t outages = 0;  ///< calls that fell inside the outage window
};

/// Deterministic, seedable fault-injection harness for chaos testing: each
/// named site gets an independent RNG stream forked from the injector seed,
/// so a given (seed, config, call sequence) always injects the same faults.
/// Thread-safe; Configure may be called mid-run to start or clear faults
/// (the example uses this to kill and revive the feature path under load).
///
/// Site registry (each constant lives next to the code it guards; all of
/// them honor the env-driven default config via FromEnv):
///   feature_server.fetch   (serving/feature_server.h)  feature "RPC" fetch
///   pipeline.recall        (serving/pipeline.h)        LBS candidate recall
///   model_slot.install     (online/online_trainer.h)   hot-swap install
///   feature_store.journal  (feature_store/journal.h)   WAL click append
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs (or replaces) a site's fault process. Replacing resets the
  /// site's call counter and re-forks its RNG stream, so reconfiguration
  /// is itself deterministic.
  void Configure(const std::string& site, FaultSiteConfig config)
      BASM_EXCLUDES(mu_);

  /// Advances the site's fault process by one call and returns what to
  /// inject. Unconfigured sites return a clean decision, unless a default
  /// config is set (see SetDefaultConfig) — then they are configured from
  /// it on first evaluation.
  FaultDecision Evaluate(const std::string& site) BASM_EXCLUDES(mu_);

  /// Fault process applied to any site evaluated before being configured
  /// explicitly — how the env-driven injector reaches every fault point
  /// without knowing their names.
  void SetDefaultConfig(FaultSiteConfig config) BASM_EXCLUDES(mu_);

  FaultSiteStats SiteStats(const std::string& site) const BASM_EXCLUDES(mu_);

  uint64_t seed() const { return seed_; }

  /// Process-wide injector configured from the environment, or nullptr
  /// when BASM_FAULT_RATE is unset/zero: BASM_FAULT_RATE is an error and
  /// spike percentage applied to every site evaluated through it, and
  /// BASM_FAULT_SEED (default 42) seeds the streams. This is the hook the
  /// CI chaos job uses to run the ordinary suites under injected faults.
  static FaultInjector* FromEnv();

 private:
  struct Site {
    FaultSiteConfig config;
    Rng rng{0};
    FaultSiteStats stats;
  };

  const uint64_t seed_;
  mutable Mutex mu_;
  std::map<std::string, Site> sites_ BASM_GUARDED_BY(mu_);
  uint64_t next_site_tag_ BASM_GUARDED_BY(mu_) = 1;
  bool has_default_ BASM_GUARDED_BY(mu_) = false;
  FaultSiteConfig default_config_ BASM_GUARDED_BY(mu_);
};

}  // namespace basm

#endif  // BASM_COMMON_FAULT_H_
