#include "runtime/serving_engine.h"

#include <algorithm>
#include <utility>

#include "autograd/variable.h"
#include "common/logging.h"
#include "data/batch.h"
#include "serving/parallel_score.h"
#include "tensor/arena.h"

namespace basm::runtime {

using Clock = std::chrono::steady_clock;

ServingEngine::ServingEngine(const serving::Pipeline* pipeline,
                             EngineConfig config)
    : pipeline_(pipeline),
      config_(config),
      queue_(config.queue_capacity),
      batcher_(&queue_,
               BatchPolicy{config.max_batch_requests, config.max_wait_micros,
                           config.adaptive_pressure_depth,
                           config.adaptive_wait_micros}),
      recall_rng_root_(config.seed),
      workers_(config.num_workers,
               /*queue_capacity=*/static_cast<size_t>(config.num_workers)) {
  BASM_CHECK(pipeline_ != nullptr);
  BASM_CHECK_GT(config_.num_workers, 0);
  BASM_CHECK_GE(config_.scoring_threads, 0);
  BASM_CHECK(!pipeline_->AcquireServable()->model->training())
      << "ServingEngine requires the model in eval mode";
  BASM_CHECK_GE(config_.prefetch_threads, 0);
  BASM_CHECK_GT(config_.prefetch_window, 0);
  if (config_.scoring_threads > 0) {
    scoring_pool_ = std::make_unique<ThreadPool>(config_.scoring_threads);
  }
  if (config_.prefetch_threads > 0 &&
      pipeline_->feature_store()->cache_enabled()) {
    prefetch_pool_ = std::make_unique<ThreadPool>(config_.prefetch_threads);
  }
  for (int32_t i = 0; i < config_.num_workers; ++i) {
    workers_.Submit([this] { WorkerLoop(); });
  }
}

ServingEngine::~ServingEngine() { Shutdown(); }

void ServingEngine::Shutdown() {
  // Held across the drain: a concurrent caller (e.g. the destructor) blocks
  // until the workers are actually joined instead of returning early.
  MutexLock lock(&shutdown_mu_);
  if (shut_down_) return;
  queue_.Shutdown();   // workers drain the backlog, then NextBatch empties
  workers_.Shutdown();  // basm-analyze: allow(blocking-under-lock)
  // After the workers: no one submits shards or prefetches once every
  // batch has drained. The joins are bounded drains per DESIGN §10.
  if (prefetch_pool_ != nullptr) prefetch_pool_->Shutdown();  // basm-analyze: allow(blocking-under-lock)
  if (scoring_pool_ != nullptr) scoring_pool_->Shutdown();  // basm-analyze: allow(blocking-under-lock)
  shut_down_ = true;
}

std::future<SlateResult> ServingEngine::Submit(
    const serving::Request& request) {
  return Submit(request, {}, config_.default_deadline_micros);
}

std::future<SlateResult> ServingEngine::Submit(
    const serving::Request& request, std::vector<int32_t> candidates) {
  return Submit(request, std::move(candidates),
                config_.default_deadline_micros);
}

std::future<SlateResult> ServingEngine::Submit(
    const serving::Request& request, std::vector<int32_t> candidates,
    int64_t deadline_micros) {
  auto job = std::make_unique<Job>();
  job->request = request;
  job->candidates = std::move(candidates);
  job->enqueue_time = Clock::now();
  job->deadline =
      job->enqueue_time + std::chrono::microseconds(deadline_micros);
  std::future<SlateResult> future = job->promise.get_future();
  Enqueue(std::move(job));
  return future;
}

void ServingEngine::SubmitWithCallback(const serving::Request& request,
                                       std::vector<int32_t> candidates,
                                       int64_t deadline_micros,
                                       SlateCallback done) {
  BASM_CHECK(done != nullptr);
  auto job = std::make_unique<Job>();
  job->request = request;
  job->candidates = std::move(candidates);
  job->enqueue_time = Clock::now();
  job->deadline = job->enqueue_time +
                  std::chrono::microseconds(deadline_micros > 0
                                                ? deadline_micros
                                                : config_.default_deadline_micros);
  job->callback = std::move(done);
  Enqueue(std::move(job));
}

void ServingEngine::Resolve(Job* job, SlateResult result) {
  if (job->callback) {
    job->callback(std::move(result));
  } else {
    job->promise.set_value(std::move(result));
  }
}

void ServingEngine::Enqueue(std::unique_ptr<Job> job) {
  if (!queue_.TryPush(std::move(job))) {
    // A rejected push leaves the job with us (TryPush takes an rvalue
    // reference and only moves on success), so the promise/callback is
    // still live and resolves inline on the submitting thread.
    SlateResult result;
    if (queue_.shut_down()) {
      result.status = Status::Cancelled("serving engine is shut down");
    } else {
      recorder_.RecordReject();
      result.status = Status::Unavailable("request queue full");
    }
    Resolve(job.get(), std::move(result));
  }
}

void ServingEngine::AttachBreakerStats(LatencySnapshot* snap) const {
  const CircuitBreaker* breaker = pipeline_->feature_breaker();
  if (breaker == nullptr) return;
  CircuitBreaker::Stats stats = breaker->stats();
  snap->has_breaker = true;
  snap->breaker_state = CircuitBreaker::StateName(stats.state);
  snap->breaker_open_count = stats.opens;
  snap->breaker_close_count = stats.closes;
  snap->breaker_short_circuits = stats.short_circuits;
}

void ServingEngine::AttachFeatureStoreStats(LatencySnapshot* snap) const {
  const feature_store::FeatureStore* store = pipeline_->feature_store();
  // Journal telemetry must surface even with the LRU cache off (a
  // journaled thin facade is a supported configuration).
  if (!store->cache_enabled() && !store->journal_enabled()) return;
  feature_store::FeatureStoreStats stats = store->stats();
  snap->has_feature_store = store->cache_enabled();
  snap->fs_fresh_fetches = stats.fresh_fetches;
  snap->fs_fetch_failures = stats.fetch_failures;
  snap->fs_cache_entries = stats.cache_entries;
  snap->fs_stale_hits = stats.stale_hits;
  snap->fs_stale_misses = stats.stale_misses;
  snap->fs_insertions = stats.insertions;
  snap->fs_evictions = stats.evictions;
  snap->fs_prefetch_issued = stats.prefetch_issued;
  snap->fs_prefetch_hits = stats.prefetch_hits;
  snap->fs_prefetch_discarded = stats.prefetch_discarded;
  snap->fs_prefetch_cancelled = stats.prefetch_cancelled;
  snap->fs_stale_expired = stats.stale_expired;
  snap->fs_served_staleness_p50 = stats.served_staleness_p50_micros;
  snap->fs_served_staleness_p99 = stats.served_staleness_p99_micros;
  snap->fs_journal_enabled = stats.journal_enabled;
  snap->fs_journal_appends = stats.journal_appends;
  snap->fs_journal_fsyncs = stats.journal_fsyncs;
  snap->fs_journal_write_failures = stats.journal_write_failures;
  snap->fs_journal_recovered = stats.journal_recovered;
  snap->fs_journal_truncated_tail_bytes = stats.journal_truncated_tail_bytes;
}

void ServingEngine::IssuePrefetches() {
  // Budget = window minus what is already scheduled/running; the fetches
  // themselves run on the prefetch pool, overlapping the caller's forward
  // pass. Peeking is read-only, so a prefetched request may also be popped
  // by another worker meanwhile — its fetch then consumes the parked
  // window (or, version-invalidated, falls through to the server).
  int64_t budget = config_.prefetch_window -
                   prefetch_in_flight_.load(std::memory_order_relaxed);
  if (budget <= 0) return;
  feature_store::FeatureStore* store = pipeline_->feature_store();
  struct Want {
    int32_t user_id;
    Clock::time_point deadline;
  };
  std::vector<Want> wants;
  wants.reserve(static_cast<size_t>(budget));
  queue_.PeekFront(static_cast<size_t>(budget),
                   [&wants](const std::unique_ptr<Job>& job) {
                     wants.push_back(
                         Want{job->request.user_id, job->deadline});
                   });
  for (const Want& want : wants) {
    prefetch_in_flight_.fetch_add(1, std::memory_order_relaxed);
    bool submitted = prefetch_pool_->Submit(
        [this, store, user = want.user_id, deadline = want.deadline] {
          store->Prefetch(user, deadline);
          prefetch_in_flight_.fetch_sub(1, std::memory_order_relaxed);
        });
    if (!submitted) {
      prefetch_in_flight_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void ServingEngine::WorkerLoop() {
  while (true) {
    std::vector<std::unique_ptr<Job>> jobs = batcher_.NextBatch();
    if (jobs.empty()) return;  // shutdown and drained
    ProcessBatch(std::move(jobs));
  }
}

void ServingEngine::ProcessBatch(std::vector<std::unique_ptr<Job>> jobs) {
  Clock::time_point now = Clock::now();

  // Shed doomed work before paying for the forward pass.
  std::vector<std::unique_ptr<Job>> live;
  live.reserve(jobs.size());
  for (auto& job : jobs) {
    if (job->deadline <= now) {
      recorder_.RecordTimeout();
      SlateResult result;
      result.status =
          Status::DeadlineExceeded("deadline passed before scoring");
      Resolve(job.get(), std::move(result));
    } else {
      live.push_back(std::move(job));
    }
  }
  if (live.empty()) return;
  recorder_.RecordBatchSize(static_cast<int64_t>(live.size()));

  // Inference mode for the whole scoring section: detached autograd nodes
  // (cache-sized working set) and no introspection-cache writes, which is
  // what makes the shared model safe across workers. The arena scope makes
  // this worker's per-op scratch tensors reuse the freelist built up by its
  // earlier batches, so steady-state scoring stops hitting the allocator.
  autograd::NoGradGuard no_grad;
  ArenaScope arena_scope;

  // Per-request recall where needed; each request gets an independent
  // deterministic RNG stream, so results do not depend on which worker or
  // batch the request landed in. On the fault-tolerant path recall runs
  // through the injector and a failed recall degrades the request (city-
  // head fallback candidates) instead of failing it.
  const bool fault_tolerant = pipeline_->fault_tolerant();
  std::vector<bool> degraded(live.size(), false);
  std::vector<SlateResult::DegradedMode> modes(
      live.size(), SlateResult::DegradedMode::kNone);
  std::vector<int64_t> stale_ages(live.size(), 0);
  for (size_t j = 0; j < live.size(); ++j) {
    auto& job = live[j];
    if (job->candidates.empty()) {
      Rng rng = recall_rng_root_.Fork(
          static_cast<uint64_t>(job->request.request_id));
      if (fault_tolerant) {
        bool recall_degraded = false;
        job->candidates =
            pipeline_->RecallFallible(job->request, rng, &recall_degraded);
        if (recall_degraded) degraded[j] = true;
      } else {
        job->candidates = pipeline_->Recall(job->request, rng);
      }
    }
  }

  // One servable snapshot for the whole micro-batch: every request in it
  // scores on the same model version, and the shared_ptr keeps that
  // version alive even if the online trainer swaps in a newer one
  // mid-forward.
  std::shared_ptr<const online::ServableModel> servable =
      pipeline_->AcquireServable();

  // One model forward over the concatenated candidate lists. Example
  // features and eval-mode scores are row-independent, so each request's
  // scores are bit-identical to a serial RankCandidates call. On the
  // fault-tolerant path the feature fetch runs under the pipeline's retry
  // + breaker policy with the request's own deadline as the budget; a
  // failed fetch degrades the request (empty behavior window) instead of
  // failing it.
  std::vector<data::Example> examples;
  std::vector<size_t> offsets;  // per-job start index into `examples`
  offsets.reserve(live.size() + 1);
  // One example per candidate: reserving up front keeps the concatenation
  // below from reallocating (and copying Examples) as jobs append.
  size_t candidate_total = 0;
  for (const auto& job : live) candidate_total += job->candidates.size();
  examples.reserve(candidate_total);
  for (size_t j = 0; j < live.size(); ++j) {
    auto& job = live[j];
    offsets.push_back(examples.size());
    std::vector<data::Example> ex;
    if (fault_tolerant) {
      serving::FeatureFetchOutcome outcome;
      ex = pipeline_->BuildExamplesFallible(job->request, job->candidates,
                                            job->deadline, &outcome);
      if (outcome.degraded) {
        degraded[j] = true;
        // stale vs empty is a *feature-window* distinction; recall-only
        // degradation (outcome.degraded false) stays kNone.
        modes[j] = outcome.stale ? SlateResult::DegradedMode::kStale
                                 : SlateResult::DegradedMode::kEmpty;
        stale_ages[j] = outcome.stale_age_micros;
      }
      recorder_.RecordRetries(outcome.retries);
      if (outcome.breaker_opened) recorder_.RecordBreakerOpen();
    } else {
      ex = pipeline_->BuildExamples(job->request, job->candidates);
    }
    std::move(ex.begin(), ex.end(), std::back_inserter(examples));
  }
  offsets.push_back(examples.size());

  // Overlap: before this worker disappears into the forward pass, schedule
  // feature prefetches for the requests still queued behind this batch, so
  // their ABFS round-trips run concurrently with the scoring below.
  if (prefetch_pool_ != nullptr) IssuePrefetches();

  // Scores come back in example order whether the batch was scored whole on
  // this worker or sharded across the scoring pool (large slates only).
  std::vector<float> scores = serving::ScoreExamples(
      servable->model, pipeline_->schema(), examples, scoring_pool_.get(),
      config_.min_rows_per_shard);

  Clock::time_point done = Clock::now();
  for (size_t j = 0; j < live.size(); ++j) {
    std::vector<float> slice(scores.begin() + offsets[j],
                             scores.begin() + offsets[j + 1]);
    SlateResult result;
    result.model_version = servable->version;
    result.degraded = degraded[j];
    result.degraded_mode = modes[j];
    result.stale_age_micros = stale_ages[j];
    if (degraded[j]) {
      recorder_.RecordDegraded();
      if (modes[j] == SlateResult::DegradedMode::kStale) {
        recorder_.RecordDegradedStale();
      } else if (modes[j] == SlateResult::DegradedMode::kEmpty) {
        recorder_.RecordDegradedEmpty();
      }
    }
    result.slate = serving::Pipeline::MakeSlate(live[j]->candidates, slice,
                                                pipeline_->expose_k());
    // Record before resolving the future so a caller that joins on the
    // result immediately sees this request in Stats().
    recorder_.RecordLatency(std::chrono::duration_cast<std::chrono::microseconds>(
                                done - live[j]->enqueue_time)
                                .count());
    Resolve(live[j].get(), std::move(result));
  }
}

}  // namespace basm::runtime
