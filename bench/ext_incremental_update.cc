// Extension bench: incremental (online-learning) model updates, the
// deployment mode of the paper's AOP platform. A model trained once on the
// first days is compared against a copy that additionally receives a
// warm-start update on each newly-logged day; both are evaluated on the
// following day.
//
// Expected shape: the incrementally-updated model matches or beats the
// frozen one on every subsequent day, since daily updates track the
// spatiotemporal traffic mix.

#include <cstdio>

#include "common/env.h"
#include "common/table_printer.h"
#include "data/synth.h"
#include "metrics/metrics.h"
#include "core/model_zoo.h"
#include "train/trainer.h"

namespace {

using namespace basm;

std::vector<const data::Example*> DayExamples(const data::Dataset& ds,
                                              int32_t day) {
  std::vector<const data::Example*> out;
  for (const auto& e : ds.examples) {
    if (e.day == day) out.push_back(&e);
  }
  return out;
}

double DayAuc(models::CtrModel& model, const data::Dataset& ds, int32_t day) {
  auto examples = DayExamples(ds, day);
  model.SetTraining(false);
  std::vector<float> probs, labels;
  for (size_t start = 0; start < examples.size(); start += 512) {
    size_t end = std::min(examples.size(), start + 512);
    std::vector<const data::Example*> slice(examples.begin() + start,
                                            examples.begin() + end);
    data::Batch batch = data::MakeBatch(slice, ds.schema);
    auto p = model.PredictProbs(batch);
    probs.insert(probs.end(), p.begin(), p.end());
    for (const auto* e : slice) labels.push_back(e->label);
  }
  model.SetTraining(true);
  return metrics::Auc(probs, labels);
}

}  // namespace

int main() {
  using namespace basm;
  uint64_t seed = static_cast<uint64_t>(basm::EnvInt("BASM_SEED", 42));
  data::SynthConfig config = data::SynthConfig::Eleme();
  if (basm::FastMode()) config = config.Fast();
  config.days = 10;  // 4 warmup days + 6 streaming days
  config.test_day = 10;
  data::Dataset ds = data::GenerateDataset(config);
  std::printf("[ext] incremental daily updates vs frozen model\n\n");

  const int32_t kWarmupDays = 4;
  std::vector<const data::Example*> warmup;
  for (int32_t day = 0; day < kWarmupDays; ++day) {
    auto de = DayExamples(ds, day);
    warmup.insert(warmup.end(), de.begin(), de.end());
  }

  train::TrainConfig tc;
  tc.epochs = basm::FastMode() ? 1 : 2;
  std::printf("  warmup-training both arms on days 0-%d...\n",
              kWarmupDays - 1);
  auto frozen = core::CreateModel(core::ModelKind::kBasm, ds.schema, seed);
  train::FitExamples(*frozen, warmup, ds.schema, tc);
  auto updated = core::CreateModel(core::ModelKind::kBasm, ds.schema, seed);
  train::FitExamples(*updated, warmup, ds.schema, tc);

  train::TrainConfig daily = tc;
  daily.epochs = 1;
  daily.lr_peak = 0.02f;  // gentler fine-tuning steps
  daily.warmup_steps = 1;

  TablePrinter table({"EvalDay", "Frozen AUC", "Updated AUC", "Delta"});
  double frozen_sum = 0.0, updated_sum = 0.0;
  int64_t days_counted = 0;
  for (int32_t day = kWarmupDays; day + 1 < config.days; ++day) {
    // The updated arm fine-tunes on today's log, then both predict tomorrow.
    train::FitExamples(*updated, DayExamples(ds, day), ds.schema, daily);
    double f = DayAuc(*frozen, ds, day + 1);
    double u = DayAuc(*updated, ds, day + 1);
    table.AddRow({std::to_string(day + 1), TablePrinter::Num(f),
                  TablePrinter::Num(u), TablePrinter::Num(u - f)});
    frozen_sum += f;
    updated_sum += u;
    ++days_counted;
  }
  table.Print();
  std::printf("\nmean next-day AUC: frozen %.4f vs updated %.4f\n",
              frozen_sum / days_counted, updated_sum / days_counted);
  return 0;
}
