#include "data/schema.h"

#include "common/logging.h"

namespace basm::data {

TimePeriod TimePeriodOfHour(int32_t hour) {
  BASM_CHECK_GE(hour, 0);
  BASM_CHECK_LT(hour, 24);
  if (hour >= 5 && hour <= 9) return TimePeriod::kBreakfast;
  if (hour >= 10 && hour <= 13) return TimePeriod::kLunch;
  if (hour >= 14 && hour <= 16) return TimePeriod::kAfternoonTea;
  if (hour >= 17 && hour <= 20) return TimePeriod::kDinner;
  return TimePeriod::kNight;
}

const char* TimePeriodName(TimePeriod tp) {
  switch (tp) {
    case TimePeriod::kBreakfast:
      return "breakfast";
    case TimePeriod::kLunch:
      return "lunch";
    case TimePeriod::kAfternoonTea:
      return "afternoon_tea";
    case TimePeriod::kDinner:
      return "dinner";
    case TimePeriod::kNight:
      return "night";
  }
  return "unknown";
}

std::vector<const Example*> Dataset::TrainExamples() const {
  std::vector<const Example*> out;
  for (const Example& e : examples) {
    if (e.day < test_day) out.push_back(&e);
  }
  return out;
}

std::vector<const Example*> Dataset::TestExamples() const {
  std::vector<const Example*> out;
  for (const Example& e : examples) {
    if (e.day >= test_day) out.push_back(&e);
  }
  return out;
}

}  // namespace basm::data
