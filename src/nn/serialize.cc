#include "nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace basm::nn {

namespace {

constexpr char kMagic[8] = {'B', 'A', 'S', 'M', 'C', 'K', 'P', 'T'};
// v2 appends non-trainable buffers (batch-norm running statistics) after
// the parameter section.
constexpr uint32_t kVersion = 2;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteBytes(std::FILE* f, const void* data, size_t n) {
  return std::fwrite(data, 1, n, f) == n;
}

bool ReadBytes(std::FILE* f, void* data, size_t n) {
  return std::fread(data, 1, n, f) == n;
}

Status WriteNamedTensor(std::FILE* f, const std::string& name,
                        const Tensor& t) {
  uint32_t name_len = static_cast<uint32_t>(name.size());
  uint32_t rank = static_cast<uint32_t>(t.rank());
  if (!WriteBytes(f, &name_len, sizeof(name_len)) ||
      !WriteBytes(f, name.data(), name_len) ||
      !WriteBytes(f, &rank, sizeof(rank))) {
    return Status::Internal("write failed on tensor header: " + name);
  }
  for (int i = 0; i < t.rank(); ++i) {
    int64_t d = t.dim(i);
    if (!WriteBytes(f, &d, sizeof(d))) {
      return Status::Internal("write failed on shape: " + name);
    }
  }
  if (!WriteBytes(f, t.data(),
                  static_cast<size_t>(t.numel()) * sizeof(float))) {
    return Status::Internal("write failed on payload: " + name);
  }
  return Status::Ok();
}

Status ReadNamedTensor(std::FILE* f, const std::string& expected_name,
                       Tensor* t) {
  uint32_t name_len = 0;
  if (!ReadBytes(f, &name_len, sizeof(name_len)) || name_len > 4096) {
    return Status::Internal("corrupt tensor name length");
  }
  std::string name(name_len, '\0');
  uint32_t rank = 0;
  if (!ReadBytes(f, name.data(), name_len) ||
      !ReadBytes(f, &rank, sizeof(rank)) || rank > 8) {
    return Status::Internal("corrupt tensor header");
  }
  if (name != expected_name) {
    return Status::InvalidArgument("tensor order mismatch: expected " +
                                   expected_name + ", found " + name);
  }
  std::vector<int64_t> shape(rank);
  for (uint32_t i = 0; i < rank; ++i) {
    if (!ReadBytes(f, &shape[i], sizeof(int64_t)) || shape[i] < 0) {
      return Status::Internal("corrupt shape for " + name);
    }
  }
  if (shape != t->shape()) {
    return Status::InvalidArgument("shape mismatch for " + name + ": " +
                                   ShapeToString(shape) + " vs " +
                                   ShapeToString(t->shape()));
  }
  if (!ReadBytes(f, t->data(),
                 static_cast<size_t>(t->numel()) * sizeof(float))) {
    return Status::Internal("truncated payload for " + name);
  }
  return Status::Ok();
}

}  // namespace

Status SaveParameters(const Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  auto named = module.NamedParameters();
  uint64_t count = named.size();
  if (!WriteBytes(f.get(), kMagic, sizeof(kMagic)) ||
      !WriteBytes(f.get(), &kVersion, sizeof(kVersion)) ||
      !WriteBytes(f.get(), &count, sizeof(count))) {
    return Status::Internal("write failed on header");
  }
  for (const auto& [name, param] : named) {
    BASM_RETURN_IF_ERROR(WriteNamedTensor(f.get(), name, param.value()));
  }
  auto buffers = module.NamedBuffers();
  uint64_t buffer_count = buffers.size();
  if (!WriteBytes(f.get(), &buffer_count, sizeof(buffer_count))) {
    return Status::Internal("write failed on buffer count");
  }
  for (const auto& [name, buffer] : buffers) {
    BASM_RETURN_IF_ERROR(WriteNamedTensor(f.get(), name, *buffer));
  }
  return Status::Ok();
}

Status LoadParameters(Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("checkpoint not found: " + path);
  }
  char magic[8];
  uint32_t version = 0;
  uint64_t count = 0;
  if (!ReadBytes(f.get(), magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a BASM checkpoint: " + path);
  }
  if (!ReadBytes(f.get(), &version, sizeof(version)) || version != kVersion) {
    return Status::InvalidArgument("unsupported checkpoint version");
  }
  if (!ReadBytes(f.get(), &count, sizeof(count))) {
    return Status::Internal("truncated checkpoint header");
  }

  auto named = module.NamedParameters();
  if (count != named.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: checkpoint has " + std::to_string(count) +
        ", module has " + std::to_string(named.size()));
  }
  for (auto& [expected_name, param] : named) {
    autograd::Variable var = param;
    BASM_RETURN_IF_ERROR(
        ReadNamedTensor(f.get(), expected_name, &var.mutable_value()));
  }

  auto buffers = module.NamedBuffers();
  uint64_t buffer_count = 0;
  if (!ReadBytes(f.get(), &buffer_count, sizeof(buffer_count))) {
    return Status::Internal("truncated buffer section");
  }
  if (buffer_count != buffers.size()) {
    return Status::InvalidArgument(
        "buffer count mismatch: checkpoint has " +
        std::to_string(buffer_count) + ", module has " +
        std::to_string(buffers.size()));
  }
  for (auto& [expected_name, buffer] : buffers) {
    BASM_RETURN_IF_ERROR(ReadNamedTensor(f.get(), expected_name, buffer));
  }
  return Status::Ok();
}

}  // namespace basm::nn
