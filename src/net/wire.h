#ifndef BASM_NET_WIRE_H_
#define BASM_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/status.h"
#include "serving/pipeline.h"

namespace basm::net {

/// Length-prefixed binary wire protocol of the serving tier. Every frame is
/// a fixed 16-byte header followed by `payload_size` payload bytes:
///
///   offset  size  field
///   0       4     magic (0x4D534142; the bytes read "BASM" on the wire)
///   4       1     protocol version (kWireVersion)
///   5       1     frame type (FrameType)
///   6       2     flags (reserved; must be zero in version 1)
///   8       4     payload size in bytes (<= kMaxPayloadBytes)
///   12      4     FNV-1a checksum of the payload bytes
///
/// All integers are little-endian and encoded byte-by-byte (no struct
/// punning), so the codec is alignment- and endianness-portable. Decoding is
/// strict by contract: a truncated buffer, an oversized length, a corrupt
/// checksum, an unknown version/type, nonzero reserved flags, or trailing
/// payload bytes each yield a Status error — never a crash or an over-read
/// (tests/net_test.cc holds a malformed-frame corpus to that bar).
inline constexpr uint32_t kWireMagic = 0x4D534142u;
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Hard payload cap: bounds per-connection buffering no matter what the
/// peer claims in the length field.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;
/// Element-count caps inside payloads, so a hostile count field cannot
/// drive a huge allocation before the truncation check catches it.
inline constexpr uint32_t kMaxWireCandidates = 4096;
inline constexpr uint32_t kMaxWireSlate = 1024;
inline constexpr uint32_t kMaxWireMessageBytes = 1024;

enum class FrameType : uint8_t {
  kRequest = 1,
  kResponse = 2,
};

struct FrameHeader {
  uint8_t version = kWireVersion;
  FrameType type = FrameType::kRequest;
  uint32_t payload_size = 0;
  uint32_t checksum = 0;
};

/// FNV-1a over the payload — cheap, dependency-free end-to-end integrity
/// check (the same family the model registry uses for checkpoints).
uint32_t WireChecksum(const uint8_t* data, size_t size);

/// Serializes `header` into exactly kFrameHeaderBytes at `out`.
void EncodeFrameHeader(const FrameHeader& header, uint8_t* out);

/// Validates and decodes a frame header. `size` may exceed
/// kFrameHeaderBytes; only the first 16 bytes are read.
[[nodiscard]] Status DecodeFrameHeader(const uint8_t* data, size_t size,
                                       FrameHeader* out);

/// Verifies a received payload against its header (size + checksum).
[[nodiscard]] Status VerifyPayload(const FrameHeader& header,
                                   const uint8_t* payload, size_t size);

/// One routed scoring call: the serving::Request plus the transport-level
/// fields (client correlation id, deadline budget, optional explicit
/// candidates — empty means the replica runs recall itself).
struct RpcRequest {
  uint64_t sequence = 0;
  serving::Request request;
  int64_t deadline_micros = 0;
  std::vector<int32_t> candidates;
};

/// The reply: a wire Status, the ranked slate, and the serving metadata the
/// client fleet and the routing tests key on (which replica answered, which
/// model version scored, whether the slate was served degraded).
struct RpcResponse {
  uint64_t sequence = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  uint32_t replica = 0;
  uint64_t model_version = 0;
  bool degraded = false;
  std::vector<serving::RankedItem> slate;
};

/// Encodes a complete frame (header + payload) ready to write to a socket.
std::vector<uint8_t> EncodeRequestFrame(const RpcRequest& request);
std::vector<uint8_t> EncodeResponseFrame(const RpcResponse& response);

/// Decodes a payload previously verified by VerifyPayload. Strict: every
/// field bounds-checked, counts capped, and the payload must be consumed
/// exactly (trailing bytes are an error).
[[nodiscard]] Status DecodeRequestPayload(const uint8_t* payload, size_t size,
                                          RpcRequest* out);
[[nodiscard]] Status DecodeResponsePayload(const uint8_t* payload, size_t size,
                                           RpcResponse* out);

/// Bounds-checked little-endian cursor over a received payload. Every read
/// fails with OUT_OF_RANGE instead of walking past `size`.
class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  [[nodiscard]] Status ReadU8(uint8_t* out);
  [[nodiscard]] Status ReadU16(uint16_t* out);
  [[nodiscard]] Status ReadU32(uint32_t* out);
  [[nodiscard]] Status ReadU64(uint64_t* out);
  [[nodiscard]] Status ReadI32(int32_t* out);
  [[nodiscard]] Status ReadI64(int64_t* out);
  [[nodiscard]] Status ReadF32(float* out);
  [[nodiscard]] Status ReadBytes(size_t n, std::string* out);

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  [[nodiscard]] Status Take(size_t n, const uint8_t** out);

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Append-only little-endian builder for payloads.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF32(float v);
  void PutBytes(const void* data, size_t n);

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

}  // namespace basm::net

#endif  // BASM_NET_WIRE_H_
