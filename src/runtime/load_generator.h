#ifndef BASM_RUNTIME_LOAD_GENERATOR_H_
#define BASM_RUNTIME_LOAD_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "data/synth.h"
#include "runtime/serving_engine.h"
#include "serving/pipeline.h"

namespace basm::runtime {

struct LoadConfig {
  int64_t num_requests = 1000;
  /// Outstanding requests kept in flight (closed loop): each completion
  /// immediately triggers the next submission.
  int32_t concurrency = 16;
  /// Per-request deadline passed to the engine.
  int64_t deadline_micros = 1000000;
  uint64_t seed = 17;
};

/// Outcome counts of one load run.
struct LoadReport {
  int64_t ok = 0;
  /// Subset of `ok` served degraded — the graceful-degradation path under
  /// feature faults — split by feature-window mode (stale = last-known
  /// window from the feature store, empty = no window; recall-only
  /// degradation counts in `degraded` only).
  int64_t degraded = 0;
  int64_t degraded_stale = 0;
  int64_t degraded_empty = 0;
  int64_t rejected = 0;
  int64_t timed_out = 0;
  int64_t cancelled = 0;
  double wall_seconds = 0.0;
  double qps = 0.0;
  /// Exact served-staleness quantiles over the degraded_stale slates of
  /// this run (ages straight from SlateResult::stale_age_micros, so the
  /// TTL drill can assert the max against the budget). 0 when no stale
  /// slate was served.
  int64_t stale_age_p50_micros = 0;
  int64_t stale_age_p99_micros = 0;
  int64_t stale_age_max_micros = 0;

  std::string ToString() const;
};

/// Deterministic closed-loop traffic driver over a World's request
/// distribution (activity-weighted users, the paper's hour-of-day exposure
/// curve). Shared by the engine tests, the throughput bench, and the
/// example, so all three exercise the same traffic shape.
class LoadGenerator {
 public:
  LoadGenerator(const data::World& world, LoadConfig config);

  /// The i-th request of the deterministic traffic stream.
  serving::Request MakeRequest(int64_t i);

  /// Drives the engine closed-loop until num_requests complete.
  LoadReport Run(ServingEngine& engine);

  /// Single-thread baseline: the same traffic served by blocking
  /// Pipeline::Serve calls. Returns the report for speedup comparisons.
  LoadReport RunSerial(const serving::Pipeline& pipeline);

 private:
  const data::World& world_;
  LoadConfig config_;
  Rng traffic_rng_;
};

}  // namespace basm::runtime

#endif  // BASM_RUNTIME_LOAD_GENERATOR_H_
