#include "common/logging.h"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace basm {

LogSeverity MinLogSeverity() {
  static const LogSeverity severity = [] {
    const char* env = std::getenv("BASM_LOG_LEVEL");
    if (env == nullptr) return LogSeverity::kInfo;
    int v = std::atoi(env);
    if (v < 0) v = 0;
    if (v > 3) v = 3;
    return static_cast<LogSeverity>(v);
  }();
  return severity;
}

namespace internal {

namespace {
const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line,
                       bool fatal)
    : severity_(severity), fatal_(fatal) {
  stream_ << "[" << SeverityTag(severity) << " " << Basename(file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (fatal_) {
    std::cerr.flush();
    std::abort();
  }
  (void)severity_;
}

}  // namespace internal
}  // namespace basm
