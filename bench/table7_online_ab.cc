// Reproduces Table VII: the 7-day online A/B experiment. Both arms are
// trained offline on the same dataset, then serve identical live traffic
// through the full pipeline (feature server -> LBS recall -> ranking ->
// exposure -> click feedback); daily CTR and relative improvement are
// reported.
//
// Expected shape (paper): BASM beats the Base model (DIN variant) on every
// day, with an average relative CTR improvement in the mid single digits
// (paper: +6.51%).

#include <cstdio>

#include "common/env.h"
#include "common/table_printer.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "serving/simulator.h"
#include "train/trainer.h"

int main() {
  using namespace basm;
  uint64_t seed = static_cast<uint64_t>(basm::EnvInt("BASM_SEED", 42));
  data::SynthConfig config = data::SynthConfig::Eleme();
  if (basm::FastMode()) config = config.Fast();
  data::World world(config);
  data::Dataset ds = data::GenerateDataset(config);
  std::printf("[table7] online A/B: Base vs BASM over 7 days\n");

  std::printf("  training Base (DIN variant)...\n");
  auto base =
      core::CreateModel(core::ModelKind::kBaseDin, ds.schema, seed);
  train::TrainConfig tc;
  tc.epochs = basm::FastMode() ? 1 : 2;
  train::Fit(*base, ds, tc);

  std::printf("  training BASM...\n");
  auto basm_model =
      core::CreateModel(core::ModelKind::kBasm, ds.schema, seed);
  train::Fit(*basm_model, ds, tc);

  serving::AbTestConfig ab;
  ab.days = 7;
  ab.requests_per_day = basm::FastMode() ? 80 : 600;
  std::printf("  serving %lld requests/day x %d days in both arms...\n",
              static_cast<long long>(ab.requests_per_day), ab.days);
  serving::OnlineSimulator simulator(world, ab);
  serving::AbTestResult result = simulator.Run(*base, *basm_model);

  TablePrinter table({"Day", "Base CTR(%)", "BASM CTR(%)", "Rel.Improve"});
  for (int32_t day = 0; day < ab.days; ++day) {
    table.AddRow({std::to_string(day + 1),
                  TablePrinter::Num(result.base.daily[day].ctr() * 100, 2),
                  TablePrinter::Num(
                      result.treatment.daily[day].ctr() * 100, 2),
                  TablePrinter::Num(result.daily_improvement[day] * 100, 2) +
                      "%"});
  }
  table.AddRow({"Avg", TablePrinter::Num(result.base.total.ctr() * 100, 2),
                TablePrinter::Num(result.treatment.total.ctr() * 100, 2),
                TablePrinter::Num(result.average_improvement * 100, 2) + "%"});
  table.Print();
  std::printf("\n(paper: base 4.61%%, BASM 4.91%%, avg +6.51%%)\n");
  return 0;
}
