# Empty dependencies file for basm.
# This may be replaced when dependencies are built.
