#include "serving/ab_stats.h"

#include <cmath>

#include "common/logging.h"

namespace basm::serving {

namespace {

/// Standard normal CDF via erfc.
double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

SignificanceResult TwoProportionZTest(int64_t base_clicks,
                                      int64_t base_exposures,
                                      int64_t treatment_clicks,
                                      int64_t treatment_exposures) {
  BASM_CHECK_GE(base_clicks, 0);
  BASM_CHECK_GE(treatment_clicks, 0);
  BASM_CHECK_LE(base_clicks, base_exposures);
  BASM_CHECK_LE(treatment_clicks, treatment_exposures);

  SignificanceResult out;
  if (base_exposures == 0 || treatment_exposures == 0) return out;

  double p1 = static_cast<double>(base_clicks) / base_exposures;
  double p2 = static_cast<double>(treatment_clicks) / treatment_exposures;
  double pooled =
      static_cast<double>(base_clicks + treatment_clicks) /
      static_cast<double>(base_exposures + treatment_exposures);
  double se = std::sqrt(pooled * (1.0 - pooled) *
                        (1.0 / base_exposures + 1.0 / treatment_exposures));
  if (se <= 0.0) return out;

  out.z = (p2 - p1) / se;
  out.p_value = 2.0 * (1.0 - NormalCdf(std::abs(out.z)));
  out.significant_at_05 = out.p_value < 0.05;
  out.lift = p1 > 0.0 ? (p2 - p1) / p1 : 0.0;
  return out;
}

SignificanceResult Significance(const AbTestResult& result) {
  return TwoProportionZTest(
      result.base.total.clicks, result.base.total.exposures,
      result.treatment.total.clicks, result.treatment.total.exposures);
}

}  // namespace basm::serving
