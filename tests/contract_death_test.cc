// API-contract death tests: programmer errors (shape mismatches, invalid
// indices, malformed calls) must fail fast through BASM_CHECK rather than
// corrupt memory or produce silent garbage.

#include "autograd/ops.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "metrics/metrics.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace basm {
namespace {

namespace ag = ::basm::autograd;

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, MatMulShapeMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({4, 2});
  EXPECT_DEATH(ops::MatMul(a, b), "Check failed");
}

TEST(ContractDeathTest, AddShapeMismatchAborts) {
  Tensor a({2, 3});
  Tensor b({3, 2});
  EXPECT_DEATH(ops::Add(a, b), "Add");
}

TEST(ContractDeathTest, TensorValuesShapeMismatchAborts) {
  EXPECT_DEATH(Tensor({2, 2}, {1.0f, 2.0f, 3.0f}), "Check failed");
}

TEST(ContractDeathTest, ReshapeNumelMismatchAborts) {
  Tensor a({2, 3});
  EXPECT_DEATH(a.Reshape({4, 2}), "Check failed");
}

TEST(ContractDeathTest, OutOfRangeAccessAborts) {
  Tensor a({2, 2});
  EXPECT_DEATH(a.at(2, 0), "Check failed");
  EXPECT_DEATH(a.at(0, -1), "Check failed");
}

TEST(ContractDeathTest, SliceOutOfBoundsAborts) {
  Tensor a({2, 4});
  EXPECT_DEATH(ops::SliceCols(a, 3, 2), "Check failed");
}

TEST(ContractDeathTest, EmbeddingLookupBadIndexAborts) {
  Rng rng(1);
  ag::Variable table =
      ag::Variable::Leaf(Tensor::Normal({4, 2}, 0, 1, rng), true);
  EXPECT_DEATH(ag::EmbeddingLookup(table, {5}), "Check failed");
  EXPECT_DEATH(ag::EmbeddingLookup(table, {-1}), "Check failed");
}

TEST(ContractDeathTest, BackwardOnNonScalarWithoutSeedAborts) {
  ag::Variable v = ag::Variable::Leaf(Tensor({3}, {1, 2, 3}), true);
  EXPECT_DEATH(ag::Backward(ag::Mul(v, v)), "scalar");
}

TEST(ContractDeathTest, BceLabelSizeMismatchAborts) {
  ag::Variable logits = ag::Variable::Leaf(Tensor({3}, {0, 0, 0}), true);
  Tensor labels({2}, {1.0f, 0.0f});
  EXPECT_DEATH(ag::BceWithLogits(logits, labels), "Check failed");
}

TEST(ContractDeathTest, MetricSizeMismatchAborts) {
  EXPECT_DEATH(metrics::Auc({0.5f}, {1.0f, 0.0f}), "Check failed");
  EXPECT_DEATH(metrics::GroupedAuc({0.5f}, {1.0f}, {0, 1}), "Check failed");
}

TEST(ContractDeathTest, RngInvalidRangeAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.NextUint64(0), "Check failed");
  EXPECT_DEATH(rng.UniformInt(3, 2), "Check failed");
  EXPECT_DEATH(rng.Categorical({}), "Check failed");
}

}  // namespace
}  // namespace basm
