#ifndef BASM_MODELS_WIDE_DEEP_H_
#define BASM_MODELS_WIDE_DEEP_H_

#include <memory>

#include "models/ctr_model.h"
#include "models/feature_encoder.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace basm::models {

/// Wide&Deep (Cheng et al. 2016): a wide linear memorization path over the
/// concatenated embeddings (including the hand-crossed combine field) plus a
/// deep MLP generalization path; logit = wide + deep.
class WideDeep : public CtrModel {
 public:
  WideDeep(const data::Schema& schema, int64_t embed_dim,
           std::vector<int64_t> hidden, Rng& rng);

  autograd::Variable ForwardLogits(const data::Batch& batch) override;
  autograd::Variable FinalRepresentation(const data::Batch& batch) override;
  std::string name() const override { return "Wide&Deep"; }

 private:
  autograd::Variable ConcatInput(const data::Batch& batch);

  std::unique_ptr<FeatureEncoder> encoder_;
  std::unique_ptr<nn::Linear> wide_;
  std::unique_ptr<nn::Mlp> deep_hidden_;  // concat -> last hidden
  std::unique_ptr<nn::Linear> deep_out_;  // last hidden -> 1
};

}  // namespace basm::models

#endif  // BASM_MODELS_WIDE_DEEP_H_
