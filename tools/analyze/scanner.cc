#include "tools/analyze/scanner.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

#include "tools/lint.h"

namespace basm::analyze {
namespace {

// ---------------------------------------------------------------------------
// The scanner is a line-oriented tokenizer with a brace-depth scope tracker:
// no preprocessor, no type checker, no libclang. It understands exactly as
// much C++ as the four passes need — include edges, class bodies + member
// declarations, function bodies, MutexLock acquisition regions, and call
// sites — and is deliberately conservative everywhere else (an unparsed
// construct degrades to "plain block", never to a wrong edge).
// ---------------------------------------------------------------------------

const std::regex kIncludeRe(R"re(^\s*#\s*include\s*"([^"]+)")re");
const std::regex kMutexLockRe(
    R"((?:basm\s*::\s*)?MutexLock\s+[A-Za-z_]\w*\s*\(\s*&\s*([^)]+?)\s*\))");
const std::regex kCallRe(R"(([A-Za-z_]\w*)\s*\()");
const std::regex kClassRe(R"((?:^|[^\w])(?:class|struct)\s+([A-Za-z_]\w*))");
const std::regex kFunctionNameRe(
    R"(((?:[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*\()");
const std::regex kMemberRe(
    R"(^\s*(?:mutable\s+)?(?:static\s+)?(?:const\s+)?([A-Za-z_][\w:<>,\s*&()]*[\w>*&)])\s+([A-Za-z_]\w*)\s*((?:BASM_[A-Z_]+\s*\([^)]*\)\s*)*)(=\s*.*|\{.*\})?\s*$)");
const std::regex kMutexTypeRe(R"((^|[^\w])(basm\s*::\s*)?Mutex($|[^\w]))");

bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",      "while",   "switch",   "return", "sizeof",
      "alignof", "decltype", "catch",   "new",      "delete", "throw",
      "static_assert", "noexcept", "co_await", "co_return", "assert",
      "defined", "typeid"};
  return kKeywords.count(s) > 0;
}

/// Macro invocations (BASM_CHECK, EXPECT_EQ, ...) are not calls the passes
/// care about: all-caps-with-underscores names are filtered out.
bool IsMacroName(const std::string& s) {
  if (s.size() < 2) return false;
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool ContainsWord(const std::string& text, const std::string& word) {
  size_t at = 0;
  while ((at = text.find(word, at)) != std::string::npos) {
    bool left_ok =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(text[at - 1])) &&
                    text[at - 1] != '_');
    size_t end = at + word.size();
    bool right_ok = end >= text.size() ||
                    (!std::isalnum(static_cast<unsigned char>(text[end])) &&
                     text[end] != '_');
    if (left_ok && right_ok) return true;
    at = end;
  }
  return false;
}

/// Splits `A::B::C` into components.
std::vector<std::string> SplitQualified(const std::string& name) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t at = name.find("::", start);
    if (at == std::string::npos) {
      parts.push_back(Trim(name.substr(start)));
      return parts;
    }
    parts.push_back(Trim(name.substr(start, at - start)));
    start = at + 2;
  }
}

/// What an accumulated signature in front of `{` introduces.
struct SigKind {
  enum Kind { kBlock, kClass, kFunction } kind = kBlock;
  std::string cls;   // for kFunction: explicit A::B qualifier (may be empty)
  std::string name;  // class name or unqualified function name
};

SigKind ClassifySig(const std::string& raw_sig) {
  SigKind out;
  std::string sig = Trim(raw_sig);
  if (sig.empty()) return out;
  if (ContainsWord(sig, "namespace") || ContainsWord(sig, "enum")) return out;
  std::smatch m;
  if (!ContainsWord(sig, "union") && std::regex_search(sig, m, kClassRe)) {
    out.kind = SigKind::kClass;
    out.name = m[1].str();
    return out;
  }
  // Function definition: the first `name(` whose name is neither a keyword
  // nor a macro, with no `=` in front of it (rejects initializers like
  // `auto f = [] {` and `int k[] = {`).
  auto begin = std::sregex_iterator(sig.begin(), sig.end(), kFunctionNameRe);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    std::string qualified = (*it)[1].str();
    std::vector<std::string> parts = SplitQualified(qualified);
    std::string last = parts.back();
    if (last.size() > 1 && last[0] == '~') last = last.substr(1);
    if (IsKeyword(last) || IsMacroName(last)) continue;
    size_t pos = static_cast<size_t>(it->position(0));
    if (sig.find('=') < pos) break;
    out.kind = SigKind::kFunction;
    out.name = parts.back();
    parts.pop_back();
    std::string cls;
    for (const std::string& p : parts) {
      if (!cls.empty()) cls += "::";
      cls += p;
    }
    out.cls = cls;
    return out;
  }
  return out;
}

/// Scans backwards from `pos` (the first char of a matched callee name) for
/// a `.` / `->` / `::` receiver expression; returns the last identifier of
/// that expression (empty when the call is free / same-object).
std::string ReceiverBefore(const std::string& line, size_t pos) {
  auto skip_ws = [&](size_t i) {
    while (i > 0 && (line[i - 1] == ' ' || line[i - 1] == '\t')) --i;
    return i;
  };
  size_t i = skip_ws(pos);
  bool via_member = false;
  if (i >= 2 && line.compare(i - 2, 2, "->") == 0) {
    via_member = true;
    i = skip_ws(i - 2);
  } else if (i >= 1 && line[i - 1] == '.' &&
             (i < 2 || !std::isdigit(static_cast<unsigned char>(line[i - 2])))) {
    via_member = true;
    i = skip_ws(i - 1);
  } else if (i >= 2 && line.compare(i - 2, 2, "::") == 0) {
    via_member = true;
    i = skip_ws(i - 2);
  }
  if (!via_member) return "";
  // Walk back over the object expression until we can name its last
  // identifier: `)` balances back over a call, `]` over an index.
  while (i > 0) {
    char c = line[i - 1];
    if (c == ')' || c == ']') {
      char open = c == ')' ? '(' : '[';
      int balance = 1;
      --i;
      while (i > 0 && balance > 0) {
        if (line[i - 1] == c) ++balance;
        if (line[i - 1] == open) --balance;
        --i;
      }
      i = skip_ws(i);
      continue;
    }
    break;
  }
  size_t end = i;
  while (i > 0 && (std::isalnum(static_cast<unsigned char>(line[i - 1])) ||
                   line[i - 1] == '_')) {
    --i;
  }
  return line.substr(i, end - i);
}

std::string ArgHead(const std::string& line, size_t open_paren) {
  size_t start = open_paren + 1;
  size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != ')' &&
         end - start < 48) {
    ++end;
  }
  return Trim(line.substr(start, end - start));
}

struct LockFrame {
  std::string expr;
  int depth;
};

/// True when `sig` ends in a lambda introducer (`[caps]`, optional
/// parameter list / mutable / trailing return) — the `{` that follows
/// opens a deferred body, which does NOT run under the enclosing locks.
const std::regex kLambdaTailRe(
    R"(\[[^\[\]]*\]\s*(\([^()]*\))?\s*(mutable\b\s*)?(noexcept\b\s*)?(->\s*[\w:<>&*\s]+)?\s*$)");

bool EndsWithLambdaIntroducer(const std::string& sig) {
  return std::regex_search(sig, kLambdaTailRe);
}

struct ClassFrame {
  ClassScan scan;
  int depth;
};

}  // namespace

std::string ModuleOf(const std::string& path) {
  size_t at = path.rfind("src/");
  if (at == std::string::npos) return "";
  // Only a path *component* `src` counts (not e.g. `foosrc/`).
  if (at != 0 && path[at - 1] != '/') return "";
  size_t start = at + 4;
  size_t end = path.find('/', start);
  if (end == std::string::npos) return "";
  return path.substr(start, end - start);
}

std::string LockLeaf(const std::string& expr) {
  std::string e = expr;
  e.erase(std::remove_if(e.begin(), e.end(),
                         [](char c) { return c == ' ' || c == '\t'; }),
          e.end());
  size_t dot = e.find_last_of('.');
  size_t arrow = e.rfind("->");
  size_t cut = std::string::npos;
  if (dot != std::string::npos) cut = dot + 1;
  if (arrow != std::string::npos && (cut == std::string::npos || arrow + 2 > cut))
    cut = arrow + 2;
  return cut == std::string::npos ? e : e.substr(cut);
}

FileScan ScanContent(const std::string& path, const std::string& content) {
  FileScan file;
  file.path = path;
  file.module = ModuleOf(path);
  file.ok = true;

  std::istringstream in(content);
  std::string raw;
  bool in_block_comment = false;
  bool in_preprocessor = false;

  int depth = 0;
  std::vector<ClassFrame> class_stack;
  std::vector<LockFrame> lock_stack;
  // Lambda literals inside a function: their bodies are deferred, so the
  // enclosing locks are NOT held when they run; each frame parks the outer
  // lock stack until the lambda's closing brace.
  struct LambdaFrame {
    std::vector<LockFrame> saved_locks;
    int depth;
  };
  std::vector<LambdaFrame> lambda_stack;
  FunctionScan fn;
  bool fn_active = false;
  int fn_depth = 0;
  std::string sig;

  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    if (!raw.empty() && raw.back() == '\r') raw.pop_back();
    file.raw_lines.push_back(raw);
    std::string line = lint::StripLine(raw, &in_block_comment);
    file.stripped_lines.push_back(line);

    std::smatch im;
    if (std::regex_search(raw, im, kIncludeRe)) {
      file.includes.push_back(Include{im[1].str(), line_no});
    }
    // Preprocessor lines (and their backslash continuations) carry braces
    // from both sides of #if alternatives; skipping them keeps the depth
    // tracker honest.
    std::string trimmed = Trim(line);
    bool is_pp = in_preprocessor || (!trimmed.empty() && trimmed[0] == '#');
    in_preprocessor = is_pp && !raw.empty() && raw.back() == '\\';
    if (is_pp) continue;

    // Events on this line, in character order.
    struct Event {
      size_t pos;
      enum { kOpen, kClose, kSemi, kLock, kCall } type;
      std::string a, b, c;  // lock expr / receiver,name,arg_head
    };
    std::vector<Event> events;
    std::vector<std::pair<size_t, size_t>> lock_ranges;
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kMutexLockRe);
         it != std::sregex_iterator(); ++it) {
      Event e;
      e.pos = static_cast<size_t>(it->position(0));
      e.type = Event::kLock;
      e.a = Trim((*it)[1].str());
      events.push_back(e);
      lock_ranges.emplace_back(e.pos, e.pos + it->length(0));
    }
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kCallRe);
         it != std::sregex_iterator(); ++it) {
      size_t pos = static_cast<size_t>(it->position(1));
      bool inside_lock_decl = false;
      for (const auto& range : lock_ranges) {
        if (pos >= range.first && pos < range.second) inside_lock_decl = true;
      }
      if (inside_lock_decl) continue;
      std::string name = (*it)[1].str();
      if (IsKeyword(name) || IsMacroName(name)) continue;
      Event e;
      e.pos = pos;
      e.type = Event::kCall;
      e.a = ReceiverBefore(line, pos);
      e.b = name;
      e.c = ArgHead(line, line.find('(', pos + name.size()));
      events.push_back(e);
    }
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] == '{' || line[i] == '}' || line[i] == ';') {
        Event e;
        e.pos = i;
        e.type = line[i] == '{'   ? Event::kOpen
                 : line[i] == '}' ? Event::kClose
                                  : Event::kSemi;
        events.push_back(e);
      }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& x, const Event& y) { return x.pos < y.pos; });

    auto held_exprs = [&] {
      std::vector<std::string> held;
      held.reserve(lock_stack.size());
      for (const LockFrame& f : lock_stack) held.push_back(f.expr);
      return held;
    };

    size_t consumed = 0;
    for (const Event& e : events) {
      switch (e.type) {
        case Event::kOpen: {
          sig += line.substr(consumed, e.pos - consumed);
          consumed = e.pos + 1;
          ++depth;
          if (fn_active && EndsWithLambdaIntroducer(sig)) {
            lambda_stack.push_back(LambdaFrame{lock_stack, depth});
            lock_stack.clear();
          } else if (!fn_active) {
            SigKind k = ClassifySig(sig);
            if (k.kind == SigKind::kClass) {
              ClassFrame frame;
              frame.scan.name =
                  class_stack.empty()
                      ? k.name
                      : class_stack.back().scan.name + "::" + k.name;
              frame.depth = depth;
              class_stack.push_back(std::move(frame));
            } else if (k.kind == SigKind::kFunction) {
              fn = FunctionScan{};
              fn.cls = !k.cls.empty()
                           ? k.cls
                           : (class_stack.empty()
                                  ? ""
                                  : class_stack.back().scan.name);
              fn.name = k.name;
              fn.start_line = line_no;
              fn_active = true;
              fn_depth = depth;
            }
          }
          sig.clear();
          break;
        }
        case Event::kClose: {
          consumed = e.pos + 1;
          --depth;
          while (!lock_stack.empty() && lock_stack.back().depth > depth) {
            lock_stack.pop_back();
          }
          while (!lambda_stack.empty() && depth < lambda_stack.back().depth) {
            lock_stack = std::move(lambda_stack.back().saved_locks);
            lambda_stack.pop_back();
          }
          if (fn_active && depth < fn_depth) {
            fn.end_line = line_no;
            file.functions.push_back(std::move(fn));
            fn_active = false;
            lock_stack.clear();
            lambda_stack.clear();
          }
          while (!class_stack.empty() && depth < class_stack.back().depth) {
            file.classes.push_back(std::move(class_stack.back().scan));
            class_stack.pop_back();
          }
          sig.clear();
          break;
        }
        case Event::kSemi: {
          sig += line.substr(consumed, e.pos - consumed);
          consumed = e.pos + 1;
          if (!fn_active && !class_stack.empty()) {
            std::string decl = std::regex_replace(
                Trim(sig),
                std::regex(R"(^(public|private|protected)\s*:\s*)"), "");
            std::smatch dm;
            if (std::regex_match(decl, dm, kMemberRe)) {
              ClassScan& cls = class_stack.back().scan;
              Member member{Trim(dm[1].str()), dm[2].str()};
              if (std::regex_search(member.type_text, kMutexTypeRe) &&
                  member.type_text.find("MutexLock") == std::string::npos) {
                cls.lock_members.push_back(member.name);
              }
              cls.members.push_back(std::move(member));
            }
          }
          sig.clear();
          break;
        }
        case Event::kLock: {
          if (fn_active) {
            fn.locks.push_back(LockAcq{e.a, line_no, held_exprs()});
            lock_stack.push_back(LockFrame{e.a, depth});
          }
          break;
        }
        case Event::kCall: {
          if (fn_active) {
            fn.calls.push_back(Call{e.a, e.b, e.c, line_no, held_exprs()});
          }
          break;
        }
      }
    }
    sig += line.substr(consumed);
    sig += ' ';
  }
  // Unterminated trailing function (malformed input): keep what we saw.
  if (fn_active) {
    fn.end_line = line_no;
    file.functions.push_back(std::move(fn));
  }
  while (!class_stack.empty()) {
    file.classes.push_back(std::move(class_stack.back().scan));
    class_stack.pop_back();
  }
  return file;
}

FileScan ScanFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    FileScan file;
    file.path = path;
    file.module = ModuleOf(path);
    file.ok = false;
    return file;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ScanContent(path, buffer.str());
}

}  // namespace basm::analyze
