// Graceful-degradation walk-through: the serving stack under a feature-
// dependency outage, now with the sharded feature store's stale fallback.
// A fault-tolerant pipeline (retry + backoff, circuit breaker) serves
// three phases of closed-loop traffic: healthy (the store caches every
// user's last-known behavior window), with the feature dependency killed
// mid-load (slates keep rendering from *stale* windows — real but old
// behavior instead of the empty window a cacheless stack would serve),
// and after the dependency recovers (the breaker closes, fetches go
// fresh again, and staleness disappears).

#include <chrono>
#include <cstdio>

#include "common/circuit_breaker.h"
#include "common/fault.h"
#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "models/model_zoo.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "serving/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

using namespace basm;

namespace {

void PrintPhase(const char* name, const runtime::LoadReport& report,
                const runtime::LatencySnapshot& window,
                const CircuitBreaker& breaker) {
  std::printf("\n== %s ==\n%s\n", name, report.ToString().c_str());
  std::printf("window: retries %lld, degraded %lld (stale %lld, empty "
              "%lld), breaker opens %lld\n",
              static_cast<long long>(window.retries),
              static_cast<long long>(window.degraded),
              static_cast<long long>(window.degraded_stale),
              static_cast<long long>(window.degraded_empty),
              static_cast<long long>(window.breaker_opens));
  CircuitBreaker::Stats stats = breaker.stats();
  std::printf("breaker: %s (opens %lld, short-circuits %lld, closes %lld)\n",
              CircuitBreaker::StateName(breaker.state()),
              static_cast<long long>(stats.opens),
              static_cast<long long>(stats.short_circuits),
              static_cast<long long>(stats.closes));
}

void PrintStoreCounters(const feature_store::FeatureStore& store) {
  feature_store::FeatureStoreStats s = store.stats();
  std::printf("store: %lld windows cached, %lld fresh fetches, %lld "
              "failures, stale hits %lld / misses %lld, evictions %lld\n",
              static_cast<long long>(s.cache_entries),
              static_cast<long long>(s.fresh_fetches),
              static_cast<long long>(s.fetch_failures),
              static_cast<long long>(s.stale_hits),
              static_cast<long long>(s.stale_misses),
              static_cast<long long>(s.evictions));
}

}  // namespace

int main() {
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 500;
  config.num_items = 400;
  config.num_cities = 4;
  data::World world(config);

  serving::FeatureServer features(world, world.config().seq_len, 7);
  // The sharded store in front of the raw server: every healthy fetch
  // refreshes the user's last-known window, which becomes the degraded
  // path's fallback when the server goes dark.
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);
  auto model =
      models::CreateModel(models::ModelKind::kBasm, world.schema(), 21);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/20, /*expose_k=*/5);

  // Arm the fault path: retries with backoff around the feature fetch, a
  // breaker that opens after 4 consecutive failures and probes every 10ms.
  FaultInjector injector(/*seed=*/42);
  features.SetFaultInjector(&injector);
  CircuitBreakerConfig breaker_config;
  breaker_config.failure_threshold = 4;
  breaker_config.open_micros = 10000;
  CircuitBreaker breaker(breaker_config);
  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 3;
  policy.retry.initial_backoff_micros = 100;
  policy.breaker = &breaker;
  pipeline.EnableFaultTolerance(policy);

  runtime::EngineConfig ec;
  ec.num_workers = 4;
  ec.max_batch_requests = 4;
  ec.max_wait_micros = 200;
  runtime::ServingEngine engine(&pipeline, ec);

  runtime::LoadConfig load;
  load.num_requests = 200;
  load.concurrency = 16;

  // Phase 1: the dependency is healthy — no retries, no degradation, and
  // every served user leaves a last-known window in the store's cache.
  {
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    PrintPhase("healthy", report, engine.IntervalStats(), breaker);
    PrintStoreCounters(store);
  }

  // Phase 2: kill the feature path entirely (every fetch fails). Users
  // seen in phase 1 are served their cached window — degraded *stale*,
  // with a real staleness age — and only never-seen users fall all the
  // way to an empty window. The breaker still opens and sheds the doomed
  // fetches outright.
  {
    FaultSiteConfig outage;
    outage.error_probability = 1.0;
    outage.error_message = "feature store unreachable";
    injector.Configure(serving::kFeatureFetchFaultSite, outage);
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    PrintPhase("feature dependency down", report, engine.IntervalStats(),
               breaker);
    PrintStoreCounters(store);

    // One request inspected by hand: the store still has user 7's window.
    auto stale = store.LastKnownFeatures(7);
    if (stale.has_value()) {
      std::printf("user 7 last-known window: %zu behaviors, %.1f ms old\n",
                  stale->behaviors.size(),
                  static_cast<double>(stale->age_micros) / 1000.0);
    }
  }

  // Phase 3: the dependency comes back. Half-open probes succeed, the
  // breaker closes, and serving returns to the full-feature (fresh) path.
  {
    injector.Configure(serving::kFeatureFetchFaultSite, FaultSiteConfig{});
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    PrintPhase("recovered", report, engine.IntervalStats(), breaker);
    PrintStoreCounters(store);
  }

  std::printf("\n== totals ==\n%s", engine.Stats().ToString().c_str());
  return 0;
}
