#ifndef BASM_NN_ACTIVATION_H_
#define BASM_NN_ACTIVATION_H_

#include "autograd/ops.h"

namespace basm::nn {

/// Activation choice shared by MLP-style layers. The paper uses LeakyReLU
/// throughout its towers; Sigmoid appears in gates and the output unit.
enum class Activation {
  kNone,
  kRelu,
  kLeakyRelu,
  kSigmoid,
  kTanh,
};

/// Applies the chosen nonlinearity (kLeakyRelu uses slope 0.01 like the
/// TensorFlow default the paper relies on).
inline autograd::Variable Apply(Activation act, const autograd::Variable& x) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return autograd::Relu(x);
    case Activation::kLeakyRelu:
      return autograd::LeakyRelu(x, 0.01f);
    case Activation::kSigmoid:
      return autograd::Sigmoid(x);
    case Activation::kTanh:
      return autograd::Tanh(x);
  }
  return x;
}

}  // namespace basm::nn

#endif  // BASM_NN_ACTIVATION_H_
