# Empty dependencies file for table5_ablation.
# This may be replaced when dependencies are built.
