# Empty dependencies file for custom_model.
# This may be replaced when dependencies are built.
