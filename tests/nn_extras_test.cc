#include <cmath>
#include <memory>
#include <set>

#include "gtest/gtest.h"
#include "nn/dropout.h"
#include "nn/hashed_embedding.h"
#include "nn/layernorm.h"
#include "tensor/tensor_ops.h"
#include "tests/test_util.h"

namespace basm::nn {
namespace {

namespace ag = ::basm::autograd;

TEST(LayerNormTest, NormalizesEachRow) {
  Rng rng(1);
  LayerNorm ln(6);
  ag::Variable x =
      ag::Variable::Constant(Tensor::Normal({4, 6}, 5.0f, 3.0f, rng));
  Tensor y = ln.Forward(x).value();
  for (int64_t i = 0; i < 4; ++i) {
    double mean = 0.0, sq = 0.0;
    for (int64_t j = 0; j < 6; ++j) mean += y.at(i, j);
    mean /= 6.0;
    for (int64_t j = 0; j < 6; ++j) {
      sq += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    }
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / 6.0, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, IdenticalInTrainAndEval) {
  Rng rng(2);
  LayerNorm ln(4);
  ag::Variable x =
      ag::Variable::Constant(Tensor::Normal({3, 4}, 0, 1, rng));
  ln.SetTraining(true);
  Tensor train_out = ln.Forward(x).value();
  ln.SetTraining(false);
  Tensor eval_out = ln.Forward(x).value();
  EXPECT_TRUE(ops::AllClose(train_out, eval_out, 0.0f, 0.0f));
}

TEST(LayerNormTest, GradCheck) {
  Rng rng(3);
  auto ln = std::make_shared<LayerNorm>(5);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Leaf(Tensor::Normal({3, 5}, 0, 1, rng), true)};
  Tensor w = Tensor::Normal({3, 5}, 0, 1, rng);
  basm::testing::CheckGradients(leaves, [&] {
    return ag::SumAll(
        ag::Mul(ln->Forward(leaves[0]), ag::Variable::Constant(w)));
  });
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Rng rng(4);
  Dropout drop(0.5f);
  drop.SetTraining(false);
  ag::Variable x =
      ag::Variable::Constant(Tensor::Normal({4, 4}, 0, 1, rng));
  EXPECT_TRUE(ops::AllClose(drop.Forward(x).value(), x.value(), 0.0f, 0.0f));
}

TEST(DropoutTest, TrainModeZeroesApproximatelyRateFraction) {
  Dropout drop(0.3f);
  drop.SetTraining(true);
  ag::Variable x = ag::Variable::Constant(Tensor::Ones({100, 100}));
  Tensor y = drop.Forward(x).value();
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 1.0f / 0.7f, 1e-5f);  // inverted scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.3, 0.02);
}

TEST(DropoutTest, ExpectationPreserved) {
  Dropout drop(0.4f);
  drop.SetTraining(true);
  ag::Variable x = ag::Variable::Constant(Tensor::Ones({200, 200}));
  Tensor y = drop.Forward(x).value();
  EXPECT_NEAR(y.Mean(), 1.0f, 0.02f);
}

TEST(DropoutTest, ZeroRateIsIdentityEvenInTraining) {
  Rng rng(5);
  Dropout drop(0.0f);
  drop.SetTraining(true);
  ag::Variable x =
      ag::Variable::Constant(Tensor::Normal({4, 4}, 0, 1, rng));
  EXPECT_TRUE(ops::AllClose(drop.Forward(x).value(), x.value(), 0.0f, 0.0f));
}

TEST(HashedEmbeddingTest, AcceptsArbitraryIds) {
  Rng rng(6);
  HashedEmbedding emb(64, 8, rng);
  Tensor out =
      emb.Forward({-5, 0, 1'000'000'000'000LL, 42}).value();
  EXPECT_EQ(out.rows(), 4);
  EXPECT_EQ(out.cols(), 8);
  EXPECT_FALSE(out.HasNonFinite());
}

TEST(HashedEmbeddingTest, DeterministicBuckets) {
  Rng rng(7);
  HashedEmbedding emb(128, 4, rng);
  for (int64_t id : {0LL, 17LL, -3LL, 999999LL}) {
    EXPECT_EQ(emb.Bucket(id), emb.Bucket(id));
    EXPECT_GE(emb.Bucket(id), 0);
    EXPECT_LT(emb.Bucket(id), 128);
  }
}

TEST(HashedEmbeddingTest, SequentialIdsSpreadAcrossBuckets) {
  Rng rng(8);
  HashedEmbedding emb(1024, 4, rng);
  std::set<int64_t> buckets;
  for (int64_t id = 0; id < 256; ++id) buckets.insert(emb.Bucket(id));
  // With 1024 buckets and 256 sequential ids, expect >200 distinct buckets
  // (heavy clustering would indicate a broken hash).
  EXPECT_GT(buckets.size(), 200u);
}

TEST(HashedEmbeddingTest, SaltDecorrelatesFeatures) {
  Rng rng(9);
  HashedEmbedding a(256, 4, rng, /*salt=*/1);
  HashedEmbedding b(256, 4, rng, /*salt=*/2);
  int same = 0;
  for (int64_t id = 0; id < 100; ++id) {
    if (a.Bucket(id) == b.Bucket(id)) ++same;
  }
  EXPECT_LT(same, 10);  // ~100/256 expected by chance
}

TEST(HashedEmbeddingTest, TrainableThroughLookup) {
  Rng rng(10);
  HashedEmbedding emb(32, 4, rng);
  ag::Backward(ag::SumAll(emb.Forward({7, 7, 9})));
  auto params = emb.Parameters();
  ASSERT_EQ(params.size(), 1u);
  float bucket7_grad = params[0].grad()[emb.Bucket(7) * 4];
  float bucket9_grad = params[0].grad()[emb.Bucket(9) * 4];
  EXPECT_FLOAT_EQ(bucket7_grad, 2.0f);  // id 7 looked up twice
  EXPECT_FLOAT_EQ(bucket9_grad, 1.0f);
}

}  // namespace
}  // namespace basm::nn
