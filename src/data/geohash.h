#ifndef BASM_DATA_GEOHASH_H_
#define BASM_DATA_GEOHASH_H_

#include <cstdint>
#include <string>

namespace basm::data {

/// Integer geohash: interleaves quantized latitude/longitude bits into a
/// single cell id, the standard Z-order construction behind textual
/// geohashes. The paper uses geohash cells both as a context feature and to
/// filter user behaviors by location (StSTL); the serving recall index uses
/// cell prefixes for location-based candidate retrieval.
class Geohash {
 public:
  /// Encodes to a cell id with `bits` total bits (even split between lat and
  /// lon; `bits` must be even and <= 60). Larger `bits` = finer cells.
  static uint64_t Encode(double lat, double lon, int bits);

  /// Decodes a cell id back to its center point.
  static void DecodeCenter(uint64_t cell, int bits, double* lat, double* lon);

  /// Parent cell at a coarser precision (drops trailing bits).
  static uint64_t Parent(uint64_t cell, int bits, int parent_bits);

  /// Base32 text form (standard geohash alphabet), for logs/debugging.
  static std::string ToString(uint64_t cell, int bits);

  /// Great-circle-free approximate distance in degrees between cell centers;
  /// adequate for same-city comparisons in the simulator.
  static double CenterDistance(uint64_t a, uint64_t b, int bits);
};

}  // namespace basm::data

#endif  // BASM_DATA_GEOHASH_H_
