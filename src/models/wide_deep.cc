#include "models/wide_deep.h"

namespace basm::models {

namespace ag = ::basm::autograd;

WideDeep::WideDeep(const data::Schema& schema, int64_t embed_dim,
                   std::vector<int64_t> hidden, Rng& rng) {
  encoder_ = std::make_unique<FeatureEncoder>(schema, embed_dim, rng);
  RegisterModule("encoder", encoder_.get());
  wide_ = std::make_unique<nn::Linear>(encoder_->concat_dim(), 1, rng);
  RegisterModule("wide", wide_.get());
  std::vector<int64_t> dims = {encoder_->concat_dim()};
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  deep_hidden_ =
      std::make_unique<nn::Mlp>(dims, nn::Activation::kLeakyRelu, rng);
  RegisterModule("deep_hidden", deep_hidden_.get());
  deep_out_ = std::make_unique<nn::Linear>(dims.back(), 1, rng);
  RegisterModule("deep_out", deep_out_.get());
}

ag::Variable WideDeep::ConcatInput(const data::Batch& batch) {
  FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  return ag::ConcatCols({f.user, f.seq_pooled, f.item, f.context, f.combine});
}

ag::Variable WideDeep::ForwardLogits(const data::Batch& batch) {
  ag::Variable x = ConcatInput(batch);
  ag::Variable wide = wide_->Forward(x);
  ag::Variable hidden =
      nn::Apply(nn::Activation::kLeakyRelu, deep_hidden_->Forward(x));
  ag::Variable deep = deep_out_->Forward(hidden);
  return ag::Reshape(ag::Add(wide, deep), {batch.size});
}

ag::Variable WideDeep::FinalRepresentation(const data::Batch& batch) {
  return nn::Apply(nn::Activation::kLeakyRelu,
                   deep_hidden_->Forward(ConcatInput(batch)));
}

}  // namespace basm::models
