# Empty compiler generated dependencies file for ablation_ststl_rank.
# This may be replaced when dependencies are built.
