#include "net/epoll_server.h"

#include <sys/epoll.h>

#include <cstdio>
#include <deque>
#include <map>
#include <utility>

#include "common/logging.h"

namespace basm::net {

namespace {

/// Read granularity of the input state machine. Also the fairness unit: one
/// readiness event reads at most kReadBurst of these before yielding the
/// loop to other connections (level-triggered epoll re-reports the rest).
constexpr size_t kReadChunkBytes = 16 * 1024;
constexpr int kReadBurst = 4;

}  // namespace

/// Per-connection state machine. Owned by exactly one LoopShard and only
/// ever touched from that shard's loop thread — no locks anywhere in here.
struct EpollRpcServer::Connection {
  TcpConnection conn;
  /// Cached: survives conn being closed, for the shard-map erase.
  int fd = -1;

  /// Read side: accumulated unparsed bytes (at most one partial frame plus
  /// whatever arrived in the last chunk; bounded by kMaxPayloadBytes).
  std::vector<uint8_t> inbuf;

  /// Write side: encoded response frames not yet fully accepted by the
  /// kernel. `out_offset` is the written prefix of the front frame.
  std::deque<std::vector<uint8_t>> outq;
  size_t out_offset = 0;
  size_t outbuf_bytes = 0;

  /// Decoded frames submitted to the core whose response has not yet been
  /// queued — the pipelining depth of this connection.
  int32_t in_flight = 0;

  bool reads_paused = false;      // output backlog above the cap
  bool want_write = false;        // EPOLLOUT armed (unflushed output)
  bool close_after_flush = false; // corrupt frame: close once the error is out
  bool peer_eof = false;          // peer closed its write side
  bool closed = false;
};

/// One IO loop plus the connections it owns. The map is loop-thread-only.
struct EpollRpcServer::LoopShard {
  EventLoop loop;
  std::map<int, std::shared_ptr<Connection>> connections;
};

EpollRpcServer::EpollRpcServer(std::vector<runtime::ServingEngine*> replicas,
                               Router* router, EpollServerConfig config)
    : core_(std::move(replicas), router,
            FrontendConfig{config.shed_queue_fraction, config.max_failovers}),
      config_(config) {
  BASM_CHECK_GT(config_.num_loops, 0);
  BASM_CHECK_GT(config_.max_in_flight_per_connection, 0);
  BASM_CHECK_GT(config_.max_output_backlog_bytes, 0u);
}

EpollRpcServer::~EpollRpcServer() { Stop(); }

Status EpollRpcServer::Start() {
  MutexLock lock(&lifecycle_mu_);
  BASM_CHECK(!started_) << "EpollRpcServer started twice";
  StatusOr<TcpListener> listener = TcpListener::Bind(config_.port);
  if (!listener.ok()) return listener.status();
  listener_ = std::move(listener).value();
  BASM_RETURN_IF_ERROR(listener_.SetNonBlocking(true));
  port_ = listener_.port();

  shards_.reserve(config_.num_loops);
  for (int32_t i = 0; i < config_.num_loops; ++i) {
    shards_.push_back(std::make_unique<LoopShard>());
    // Loop startup/teardown under the lifecycle lock: the same poll-bounded
    // join hierarchy as RpcServer::Stop (DESIGN §10), held so concurrent
    // Start/Stop stay idempotent.
    Status started = shards_.back()->loop.Start();  // basm-analyze: allow(blocking-under-lock)
    if (!started.ok()) {
      for (auto& shard : shards_) {
        shard->loop.Stop();  // basm-analyze: allow(blocking-under-lock)
      }
      shards_.clear();
      return started;
    }
  }
  // Registration is loop-thread-only; hand the listener to loop 0.
  LoopShard* shard0 = shards_[0].get();
  shard0->loop.PostTask([this, shard0] {  // basm-analyze: allow(blocking-under-lock)
    Status added = shard0->loop.AddFd(listener_.fd(), EPOLLIN,
                                      [this](uint32_t) { AcceptReady(); });
    if (!added.ok()) {
      BASM_LOG(Warning) << "listener registration failed: "
                        << added.ToString();
    }
  });
  started_ = true;
  return Status::Ok();
}

void EpollRpcServer::Stop() {
  MutexLock lock(&lifecycle_mu_);
  if (!started_ || stopped_) return;
  stop_.store(true, std::memory_order_relaxed);
  // Every submitted request resolves (the engines answer, shed, or reject
  // on shutdown — all deadline-bounded), and with stop_ set no new ones
  // are submitted, so pending_ can only fall. Waiting here guarantees no
  // engine completion callback can touch the server after this point.
  {
    MutexLock pending_lock(&pending_mu_);
    while (pending_ > 0) {
      pending_zero_.Wait(pending_mu_);  // basm-analyze: allow(blocking-under-lock)
    }
  }
  // Each loop drains its posted completions before exiting, then the
  // connection maps (and their sockets) are torn down loop-free.
  for (auto& shard : shards_) {
    shard->loop.Stop();  // basm-analyze: allow(blocking-under-lock)
  }
  for (auto& shard : shards_) shard->connections.clear();
  stopped_ = true;
}

void EpollRpcServer::AcceptReady() {
  while (!stop_.load(std::memory_order_relaxed)) {
    TcpConnection accepted;
    StatusOr<bool> got = listener_.TryAccept(&accepted);
    if (!got.ok()) {
      BASM_LOG(Warning) << "accept failed: " << got.status().ToString();
      return;
    }
    if (!got.value()) return;  // backlog drained
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    LoopShard* shard = shards_[next_shard_ % shards_.size()].get();
    ++next_shard_;
    // shared_ptr because std::function requires a copyable closure.
    auto holder = std::make_shared<TcpConnection>(std::move(accepted));
    if (shard->loop.InLoopThread()) {
      RegisterConnection(shard, std::move(holder));
    } else {
      shard->loop.PostTask(
          [this, shard, holder] { RegisterConnection(shard, holder); });
    }
  }
}

void EpollRpcServer::RegisterConnection(
    LoopShard* shard, std::shared_ptr<TcpConnection> accepted) {
  auto c = std::make_shared<Connection>();
  c->conn = std::move(*accepted);
  c->fd = c->conn.fd();
  if (config_.send_buffer_bytes > 0) {
    (void)c->conn.SetSendBufferBytes(config_.send_buffer_bytes);
  }
  shard->connections[c->fd] = c;
  Status added = shard->loop.AddFd(
      c->fd, EPOLLIN,
      [this, shard, c](uint32_t events) { HandleEvents(shard, c, events); });
  if (!added.ok()) {
    BASM_LOG(Warning) << "connection registration failed: "
                      << added.ToString();
    shard->connections.erase(c->fd);  // destructor closes the socket
  }
}

void EpollRpcServer::HandleEvents(LoopShard* shard,
                                  const std::shared_ptr<Connection>& c,
                                  uint32_t events) {
  if (c->closed) return;
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConnection(shard, c.get());
    return;
  }
  if (events & EPOLLOUT) {
    TryFlush(shard, c.get());
    if (c->closed) return;
  }
  if ((events & EPOLLIN) && !c->reads_paused && !c->close_after_flush &&
      !c->peer_eof) {
    HandleReadable(shard, c);
  }
}

void EpollRpcServer::HandleReadable(LoopShard* shard,
                                    const std::shared_ptr<Connection>& c) {
  uint8_t buf[kReadChunkBytes];
  for (int i = 0; i < kReadBurst; ++i) {
    StatusOr<IoChunk> got = c->conn.ReadChunk(buf, sizeof(buf));
    if (!got.ok()) {
      CloseConnection(shard, c.get());
      return;
    }
    const IoChunk chunk = got.value();
    if (chunk.bytes > 0) {
      c->inbuf.insert(c->inbuf.end(), buf, buf + chunk.bytes);
    }
    if (chunk.eof) {
      c->peer_eof = true;
      break;
    }
    if (chunk.would_block || chunk.bytes < sizeof(buf)) break;
  }
  DrainFrames(shard, c);
  if (c->closed) return;
  if (c->peer_eof) {
    if (c->in_flight == 0 && c->outq.empty()) {
      CloseConnection(shard, c.get());
      return;
    }
    // Still flushing / still scoring: stop watching reads, close when the
    // last response drains (TryFlush / OnComplete check peer_eof).
    UpdateInterest(shard, c.get());
  }
}

void EpollRpcServer::DrainFrames(LoopShard* shard,
                                 const std::shared_ptr<Connection>& c) {
  size_t pos = 0;
  while (!c->closed) {
    const size_t avail = c->inbuf.size() - pos;
    if (avail < kFrameHeaderBytes) break;

    FrameHeader header;
    Status frame_ok = DecodeFrameHeader(c->inbuf.data() + pos, avail, &header);
    RpcRequest request;
    if (frame_ok.ok() && header.type != FrameType::kRequest) {
      frame_ok = Status::InvalidArgument("expected a request frame");
    }
    if (frame_ok.ok()) {
      // Partial frame: wait for more bytes. DecodeFrameHeader already
      // rejected payload sizes above kMaxPayloadBytes, so this bounds the
      // buffer no matter what the length field claims.
      if (avail < kFrameHeaderBytes + header.payload_size) break;
      const uint8_t* payload = c->inbuf.data() + pos + kFrameHeaderBytes;
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      frame_ok = VerifyPayload(header, payload, header.payload_size);
      if (frame_ok.ok()) {
        frame_ok = DecodeRequestPayload(payload, header.payload_size,
                                        &request);
      }
    }

    if (!frame_ok.ok()) {
      // Malformed frame: best-effort error response (the peer may be a
      // buggy client rather than garbage traffic), then close once it
      // flushes — the byte stream can no longer be trusted to be
      // frame-aligned. Same semantics as the blocking frontend.
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      RpcResponse error;
      error.sequence = request.sequence;  // 0 unless decode got that far
      error.replica = kNoReplica;
      error.code = frame_ok.code();
      error.message = frame_ok.message();
      c->close_after_flush = true;
      c->inbuf.clear();
      pos = 0;
      QueueResponse(shard, c.get(), error);
      if (!c->closed) UpdateInterest(shard, c.get());
      return;
    }

    pos += kFrameHeaderBytes + header.payload_size;

    if (stop_.load(std::memory_order_relaxed)) continue;  // draining: drop

    if (c->in_flight >= config_.max_in_flight_per_connection) {
      // Pipelining cap: the transport-level shed. The connection stays
      // open — this is backpressure to one greedy client, not corruption.
      shed_pipeline_.fetch_add(1, std::memory_order_relaxed);
      RpcResponse shed;
      shed.sequence = request.sequence;
      shed.replica = kNoReplica;
      shed.code = StatusCode::kUnavailable;
      shed.message = "connection pipeline full";
      QueueResponse(shard, c.get(), shed);
      continue;
    }

    ++c->in_flight;
    IncrementPending();
    std::weak_ptr<Connection> weak = c;
    core_.SubmitAsync(request, [this, shard, weak](RpcResponse response) {
      OnComplete(shard, weak, std::move(response));
    });
  }
  if (c->closed) return;
  if (pos > 0) {
    c->inbuf.erase(c->inbuf.begin(),
                   c->inbuf.begin() + static_cast<ptrdiff_t>(pos));
  }
}

void EpollRpcServer::OnComplete(LoopShard* shard,
                                std::weak_ptr<Connection> weak,
                                RpcResponse response) {
  // Runs on a scoring worker (or inline on the loop thread for shed /
  // unroutable): connection state is loop-owned, so hand the response over.
  shard->loop.PostTask(
      [this, shard, weak = std::move(weak),
       response = std::move(response)]() mutable {
        std::shared_ptr<Connection> c = weak.lock();
        if (!c || c->closed) return;  // connection died while scoring
        --c->in_flight;
        QueueResponse(shard, c.get(), response);
        if (!c->closed && c->peer_eof && c->in_flight == 0 &&
            c->outq.empty()) {
          CloseConnection(shard, c.get());
        }
      });
  DecrementPending();
}

void EpollRpcServer::QueueResponse(LoopShard* shard, Connection* c,
                                   const RpcResponse& response) {
  if (c->closed) return;
  std::vector<uint8_t> frame = EncodeResponseFrame(response);
  c->outbuf_bytes += frame.size();
  c->outq.push_back(std::move(frame));
  TryFlush(shard, c);
  if (c->closed) return;
  if (!c->reads_paused &&
      c->outbuf_bytes > config_.max_output_backlog_bytes) {
    // Slow reader: its socket stopped draining while responses pile up.
    // Pause its reads — the cost of its slowness lands on it alone, never
    // on the loop (which stays non-blocking) or its neighbors.
    c->reads_paused = true;
    backpressure_pauses_.fetch_add(1, std::memory_order_relaxed);
    UpdateInterest(shard, c);
  }
}

void EpollRpcServer::TryFlush(LoopShard* shard, Connection* c) {
  if (c->closed) return;
  while (!c->outq.empty()) {
    const std::vector<uint8_t>& front = c->outq.front();
    StatusOr<IoChunk> wrote = c->conn.WriteChunk(
        front.data() + c->out_offset, front.size() - c->out_offset);
    if (!wrote.ok()) {
      CloseConnection(shard, c);
      return;
    }
    const IoChunk chunk = wrote.value();
    c->out_offset += chunk.bytes;
    c->outbuf_bytes -= chunk.bytes;
    if (c->out_offset == front.size()) {
      c->outq.pop_front();
      c->out_offset = 0;
      // The whole frame is in the kernel's hands (TCP_NODELAY pushes it);
      // a client that has observed a response must find it counted.
      responses_sent_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (chunk.would_block) break;
  }

  const bool drained = c->outq.empty();
  if (drained &&
      (c->close_after_flush || (c->peer_eof && c->in_flight == 0))) {
    CloseConnection(shard, c);
    return;
  }
  bool interest_changed = (c->want_write != !drained);
  c->want_write = !drained;
  if (c->reads_paused &&
      c->outbuf_bytes <= config_.max_output_backlog_bytes / 2) {
    // Hysteresis: resume reads at half the pause threshold so a connection
    // hovering at the cap does not thrash its epoll registration.
    c->reads_paused = false;
    interest_changed = true;
  }
  if (interest_changed) UpdateInterest(shard, c);
}

void EpollRpcServer::UpdateInterest(LoopShard* shard, Connection* c) {
  if (c->closed) return;
  uint32_t events = 0;
  if (!c->reads_paused && !c->close_after_flush && !c->peer_eof) {
    events |= EPOLLIN;
  }
  if (c->want_write) events |= EPOLLOUT;
  Status updated = shard->loop.UpdateFd(c->fd, events);
  if (!updated.ok()) CloseConnection(shard, c);
}

void EpollRpcServer::CloseConnection(LoopShard* shard, Connection* c) {
  if (c->closed) return;
  c->closed = true;
  shard->loop.RemoveFd(c->fd);
  // Callers on every path hold a shared_ptr (the fd handler or the posted
  // completion), so erasing the map entry cannot free `c` mid-call.
  shard->connections.erase(c->fd);
  c->conn = TcpConnection();  // closes the socket
  c->outq.clear();
  c->outbuf_bytes = 0;
  c->inbuf.clear();
}

void EpollRpcServer::IncrementPending() {
  MutexLock lock(&pending_mu_);
  ++pending_;
}

void EpollRpcServer::DecrementPending() {
  MutexLock lock(&pending_mu_);
  if (--pending_ == 0) pending_zero_.SignalAll();
}

EpollServerStats EpollRpcServer::stats() const {
  EpollServerStats s;
  s.core.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.core.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.core.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  s.core.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  core_.FillStats(&s.core);
  s.shed_pipeline = shed_pipeline_.load(std::memory_order_relaxed);
  s.backpressure_pauses =
      backpressure_pauses_.load(std::memory_order_relaxed);
  return s;
}

std::string EpollServerStats::ToString() const {
  std::string out = core.ToString();
  char line[128];
  std::snprintf(line, sizeof(line),
                "pipeline shed %lld  backpressure pauses %lld\n",
                static_cast<long long>(shed_pipeline),
                static_cast<long long>(backpressure_pauses));
  out += line;
  return out;
}

}  // namespace basm::net
