// Microbenchmarks of the tensor kernels and autograd ops that dominate
// training time: GEMM variants, batched matmul (attention / instance-wise
// dynamic layers), embedding gather/scatter, softmax and the BN pipeline.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/batchnorm.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace basm;
namespace ag = basm::autograd;

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Normal({n, n}, 0, 1, rng);
  Tensor b = Tensor::Normal({n, n}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulRect(benchmark::State& state) {
  // The shape training actually uses: [batch, in] x [in, out].
  Rng rng(2);
  Tensor a = Tensor::Normal({256, 176}, 0, 1, rng);
  Tensor b = Tensor::Normal({176, 64}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 176 * 64);
}
BENCHMARK(BM_MatMulRect);

void BM_BatchedMatMul(benchmark::State& state) {
  // Instance-wise dynamic linear: [B, out, in] x [B, in, 1].
  Rng rng(3);
  Tensor w = Tensor::Normal({256, 64, 64}, 0, 1, rng);
  Tensor x = Tensor::Normal({256, 64, 1}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::BatchedMatMul(w, x));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 64 * 64);
}
BENCHMARK(BM_BatchedMatMul);

void BM_AttentionScores(benchmark::State& state) {
  // Q K^T over a behavior sequence: [B, 1, D] x [B, T, D]^T.
  Rng rng(4);
  Tensor q = Tensor::Normal({256, 1, 40}, 0, 1, rng);
  Tensor k = Tensor::Normal({256, 12, 40}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::BatchedMatMulTransB(q, k));
  }
}
BENCHMARK(BM_AttentionScores);

void BM_RowSoftmax(benchmark::State& state) {
  Rng rng(5);
  Tensor a = Tensor::Normal({256, 64}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::RowSoftmax(a));
  }
}
BENCHMARK(BM_RowSoftmax);

void BM_EmbeddingLookupBackward(benchmark::State& state) {
  // Gather + scatter-add of a sequence batch: 256 x 12 ids into [20k, 8].
  Rng table_rng(6);
  ag::Variable table =
      ag::Variable::Leaf(Tensor::Normal({20000, 8}, 0, 0.05f, table_rng), true);
  Rng rng(7);
  std::vector<int32_t> ids(256 * 12);
  for (auto& id : ids) id = static_cast<int32_t>(rng.NextUint64(20000));
  for (auto _ : state) {
    ag::Variable out = ag::EmbeddingLookup(table, ids);
    ag::Backward(ag::SumAll(out));
    table.ZeroGrad();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(ids.size()));
}
BENCHMARK(BM_EmbeddingLookupBackward);

void BM_MlpForwardBackward(benchmark::State& state) {
  // One tower step at training batch size.
  Rng rng(8);
  ag::Variable w1 =
      ag::Variable::Leaf(Tensor::Normal({176, 64}, 0, 0.1f, rng), true);
  ag::Variable w2 =
      ag::Variable::Leaf(Tensor::Normal({64, 32}, 0, 0.1f, rng), true);
  ag::Variable w3 =
      ag::Variable::Leaf(Tensor::Normal({32, 1}, 0, 0.1f, rng), true);
  Tensor x = Tensor::Normal({256, 176}, 0, 1, rng);
  Tensor y({256});
  for (auto _ : state) {
    ag::Variable h1 = ag::LeakyRelu(ag::MatMul(ag::Variable::Constant(x), w1));
    ag::Variable h2 = ag::LeakyRelu(ag::MatMul(h1, w2));
    ag::Variable logits = ag::Reshape(ag::MatMul(h2, w3), {256});
    ag::Variable loss = ag::BceWithLogits(logits, y);
    ag::Backward(loss);
    w1.ZeroGrad();
    w2.ZeroGrad();
    w3.ZeroGrad();
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_BatchNormTrainStep(benchmark::State& state) {
  Rng rng(9);
  nn::BatchNorm1d bn(64);
  bn.SetTraining(true);
  Tensor x = Tensor::Normal({256, 64}, 0, 1, rng);
  for (auto _ : state) {
    ag::Variable out = bn.Forward(ag::Variable::Constant(x));
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_BatchNormTrainStep);

}  // namespace

BENCHMARK_MAIN();
