// Microbenchmarks of the tensor kernels and autograd ops that dominate
// training time: GEMM variants, batched matmul (attention / instance-wise
// dynamic layers), embedding gather/scatter, softmax and the BN pipeline.
//
// After the google-benchmark suites, a custom GEMM sweep times every compiled
// kernel backend (reference / blocked / avx2) across the serving-relevant
// shapes and writes GFLOP/s per shape to the "kernels" section of
// BENCH_kernels.json (path override: BASM_BENCH_JSON). It also measures the
// zero-skip delta: the old reference kernel's `av == 0.0f` branch on dense
// vs ReLU-sparse activations, the motivation for dropping it.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "autograd/ops.h"
#include "bench_json.h"
#include "common/env.h"
#include "common/rng.h"
#include "nn/batchnorm.h"
#include "tensor/kernels.h"
#include "tensor/reference_ops.h"
#include "tensor/tensor_ops.h"

namespace {

using namespace basm;
namespace ag = basm::autograd;

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Normal({n, n}, 0, 1, rng);
  Tensor b = Tensor::Normal({n, n}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulRect(benchmark::State& state) {
  // The shape training actually uses: [batch, in] x [in, out].
  Rng rng(2);
  Tensor a = Tensor::Normal({256, 176}, 0, 1, rng);
  Tensor b = Tensor::Normal({176, 64}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 176 * 64);
}
BENCHMARK(BM_MatMulRect);

void BM_BatchedMatMul(benchmark::State& state) {
  // Instance-wise dynamic linear: [B, out, in] x [B, in, 1].
  Rng rng(3);
  Tensor w = Tensor::Normal({256, 64, 64}, 0, 1, rng);
  Tensor x = Tensor::Normal({256, 64, 1}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::BatchedMatMul(w, x));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 256 * 64 * 64);
}
BENCHMARK(BM_BatchedMatMul);

void BM_AttentionScores(benchmark::State& state) {
  // Q K^T over a behavior sequence: [B, 1, D] x [B, T, D]^T.
  Rng rng(4);
  Tensor q = Tensor::Normal({256, 1, 40}, 0, 1, rng);
  Tensor k = Tensor::Normal({256, 12, 40}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::BatchedMatMulTransB(q, k));
  }
}
BENCHMARK(BM_AttentionScores);

void BM_RowSoftmax(benchmark::State& state) {
  Rng rng(5);
  Tensor a = Tensor::Normal({256, 64}, 0, 1, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::RowSoftmax(a));
  }
}
BENCHMARK(BM_RowSoftmax);

void BM_EmbeddingLookupBackward(benchmark::State& state) {
  // Gather + scatter-add of a sequence batch: 256 x 12 ids into [20k, 8].
  Rng table_rng(6);
  ag::Variable table =
      ag::Variable::Leaf(Tensor::Normal({20000, 8}, 0, 0.05f, table_rng), true);
  Rng rng(7);
  std::vector<int32_t> ids(256 * 12);
  for (auto& id : ids) id = static_cast<int32_t>(rng.NextUint64(20000));
  for (auto _ : state) {
    ag::Variable out = ag::EmbeddingLookup(table, ids);
    ag::Backward(ag::SumAll(out));
    table.ZeroGrad();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(ids.size()));
}
BENCHMARK(BM_EmbeddingLookupBackward);

void BM_MlpForwardBackward(benchmark::State& state) {
  // One tower step at training batch size.
  Rng rng(8);
  ag::Variable w1 =
      ag::Variable::Leaf(Tensor::Normal({176, 64}, 0, 0.1f, rng), true);
  ag::Variable w2 =
      ag::Variable::Leaf(Tensor::Normal({64, 32}, 0, 0.1f, rng), true);
  ag::Variable w3 =
      ag::Variable::Leaf(Tensor::Normal({32, 1}, 0, 0.1f, rng), true);
  Tensor x = Tensor::Normal({256, 176}, 0, 1, rng);
  Tensor y({256});
  for (auto _ : state) {
    ag::Variable h1 = ag::LeakyRelu(ag::MatMul(ag::Variable::Constant(x), w1));
    ag::Variable h2 = ag::LeakyRelu(ag::MatMul(h1, w2));
    ag::Variable logits = ag::Reshape(ag::MatMul(h2, w3), {256});
    ag::Variable loss = ag::BceWithLogits(logits, y);
    ag::Backward(loss);
    w1.ZeroGrad();
    w2.ZeroGrad();
    w3.ZeroGrad();
  }
}
BENCHMARK(BM_MlpForwardBackward);

void BM_BatchNormTrainStep(benchmark::State& state) {
  Rng rng(9);
  nn::BatchNorm1d bn(64);
  bn.SetTraining(true);
  Tensor x = Tensor::Normal({256, 64}, 0, 1, rng);
  for (auto _ : state) {
    ag::Variable out = bn.Forward(ag::Variable::Constant(x));
    benchmark::DoNotOptimize(out.value().data());
  }
}
BENCHMARK(BM_BatchNormTrainStep);

// ------------------------------ kernel sweep -------------------------------

namespace kernels = basm::ops::kernels;

using GemmFn = void (*)(const float*, const float*, float*, int64_t, int64_t,
                        int64_t);

// Times `fn` on the given operands until `budget_seconds` elapses (at least
// one timed call) and returns achieved GFLOP/s.
double TimeGemm(GemmFn fn, const Tensor& a, const Tensor& b, Tensor& c,
                int64_t m, int64_t k, int64_t n, double budget_seconds) {
  using Clock = std::chrono::steady_clock;
  fn(a.data(), b.data(), c.data(), m, k, n);  // warmup
  int64_t iters = 0;
  double elapsed = 0.0;
  const Clock::time_point start = Clock::now();
  do {
    fn(a.data(), b.data(), c.data(), m, k, n);
    benchmark::DoNotOptimize(c.data());
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < budget_seconds);
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(k) *
                       static_cast<double>(n) * static_cast<double>(iters);
  return flops / elapsed / 1e9;
}

// Dispatched kernels::Gemm under a scoped backend, so the sweep times exactly
// what ops::MatMul would run with that backend active.
double TimeBackend(kernels::Backend backend, const Tensor& a, const Tensor& b,
                   Tensor& c, int64_t m, int64_t k, int64_t n,
                   double budget_seconds) {
  kernels::ScopedBackend scoped(backend);
  return TimeGemm(&kernels::Gemm, a, b, c, m, k, n, budget_seconds);
}

void AppendJsonNumber(std::ostringstream& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out << buf;
}

void RunKernelSweep() {
  const double budget = basm::FastMode() ? 0.01 : 0.12;
  std::vector<kernels::Backend> backends = {kernels::Backend::kReference,
                                            kernels::Backend::kBlocked};
  if (kernels::Avx2Available()) backends.push_back(kernels::Backend::kAvx2);

  struct Shape {
    int64_t k, n;
  };
  const int64_t ms[] = {1, 32, 256};
  const Shape kns[] = {{64, 64}, {176, 64}, {256, 256}, {512, 512}};

  std::printf("\nGEMM backend sweep (GFLOP/s, budget %.0f ms/cell)\n",
              budget * 1e3);
  std::printf("%-6s %-6s %-6s", "m", "k", "n");
  for (kernels::Backend backend : backends) {
    std::printf(" %-11s", kernels::BackendName(backend));
  }
  std::printf(" %s\n", "best/ref");

  Rng rng(1234);
  std::ostringstream gemm_json;
  gemm_json << "[";
  bool first_row = true;
  for (int64_t m : ms) {
    for (const Shape& s : kns) {
      Tensor a = Tensor::Uniform({m, s.k}, -1.0f, 1.0f, rng);
      Tensor b = Tensor::Uniform({s.k, s.n}, -1.0f, 1.0f, rng);
      Tensor c = Tensor::Uninitialized({m, s.n});
      std::printf("%-6lld %-6lld %-6lld", static_cast<long long>(m),
                  static_cast<long long>(s.k), static_cast<long long>(s.n));
      if (!first_row) gemm_json << ",";
      first_row = false;
      gemm_json << "\n    {\"m\": " << m << ", \"k\": " << s.k
                << ", \"n\": " << s.n << ", \"gflops\": {";
      double ref = 0.0, best = 0.0;
      bool first_backend = true;
      for (kernels::Backend backend : backends) {
        double gflops = TimeBackend(backend, a, b, c, m, s.k, s.n, budget);
        if (backend == kernels::Backend::kReference) ref = gflops;
        best = std::max(best, gflops);
        std::printf(" %-11.2f", gflops);
        if (!first_backend) gemm_json << ", ";
        first_backend = false;
        gemm_json << "\"" << kernels::BackendName(backend) << "\": ";
        AppendJsonNumber(gemm_json, gflops);
      }
      const double speedup = ref > 0.0 ? best / ref : 0.0;
      std::printf(" %.2fx\n", speedup);
      gemm_json << "}, \"best_over_reference\": ";
      AppendJsonNumber(gemm_json, speedup);
      gemm_json << "}";
    }
  }
  gemm_json << "\n  ]";

  // Zero-skip delta: the reference kernel's `av == 0.0f` continue helps only
  // when A is genuinely sparse, and costs branch misprediction + lost
  // vectorization when it is dense. Time both kernels on both inputs.
  const int64_t zm = 64, zk = 176, zn = 64;
  Tensor dense = Tensor::Uniform({zm, zk}, 0.1f, 1.0f, rng);
  Tensor sparse = Tensor::Uniform({zm, zk}, -1.0f, 1.0f, rng);
  for (int64_t i = 0; i < sparse.numel(); ++i) {
    if (sparse[i] < 0.0f) sparse[i] = 0.0f;  // ReLU-style ~50% zeros
  }
  Tensor zb = Tensor::Uniform({zk, zn}, -1.0f, 1.0f, rng);
  Tensor zc = Tensor::Uninitialized({zm, zn});
  auto reference_gemm = [](const float* a, const float* b, float* c,
                           int64_t m, int64_t k, int64_t n) {
    std::fill(c, c + m * n, 0.0f);
    basm::ops::reference::GemmAccumulate(a, b, c, m, k, n);
  };
  const double ref_dense =
      TimeGemm(reference_gemm, dense, zb, zc, zm, zk, zn, budget);
  const double ref_sparse =
      TimeGemm(reference_gemm, sparse, zb, zc, zm, zk, zn, budget);
  const double blk_dense =
      TimeGemm(&kernels::GemmBlocked, dense, zb, zc, zm, zk, zn, budget);
  const double blk_sparse =
      TimeGemm(&kernels::GemmBlocked, sparse, zb, zc, zm, zk, zn, budget);
  std::printf(
      "\nzero-skip delta (%lldx%lldx%lld GFLOP/s): reference dense %.2f "
      "sparse50 %.2f | blocked dense %.2f sparse50 %.2f\n",
      static_cast<long long>(zm), static_cast<long long>(zk),
      static_cast<long long>(zn), ref_dense, ref_sparse, blk_dense,
      blk_sparse);

  std::ostringstream section;
  section << "{\n  \"gemm\": " << gemm_json.str()
          << ",\n  \"zero_skip\": {\"m\": " << zm << ", \"k\": " << zk
          << ", \"n\": " << zn << ", \"reference_dense\": ";
  AppendJsonNumber(section, ref_dense);
  section << ", \"reference_sparse50\": ";
  AppendJsonNumber(section, ref_sparse);
  section << ", \"blocked_dense\": ";
  AppendJsonNumber(section, blk_dense);
  section << ", \"blocked_sparse50\": ";
  AppendJsonNumber(section, blk_sparse);
  section << "}\n  }";

  const std::string path =
      basm::EnvString("BASM_BENCH_JSON", "BENCH_kernels.json");
  if (basm::bench::UpdateBenchJsonSection(path, "kernels", section.str())) {
    std::printf("wrote \"kernels\" section of %s\n", path.c_str());
  } else {
    std::printf("FAILED to write %s\n", path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  RunKernelSweep();
  return 0;
}
