#include <memory>
#include <set>

#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "gtest/gtest.h"
#include "core/model_zoo.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"
#include "serving/simulator.h"

namespace basm::serving {
namespace {

data::SynthConfig TinyConfig() {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 200;
  c.num_items = 180;
  c.num_cities = 4;
  c.seq_len = 6;
  return c;
}

class ServingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { world_ = new data::World(TinyConfig()); }
  static void TearDownTestSuite() { delete world_; }
  static data::World* world_;
};

data::World* ServingTest::world_ = nullptr;

TEST_F(ServingTest, FeatureServerBootstrapsHistories) {
  feature_store::FeatureServer fs(*world_, 6, /*seed=*/1);
  auto uf = fs.GetUserFeatures(3);
  EXPECT_EQ(uf.user_id, 3);
  EXPECT_EQ(uf.behaviors.size(), 6u);
}

TEST_F(ServingTest, FeatureServerRecordsClicksMostRecentFirst) {
  feature_store::FeatureServer fs(*world_, 4, 2);
  data::BehaviorEvent ev;
  ev.item_id = 42;
  ev.category = 7;
  fs.RecordClick(0, ev);
  auto uf = fs.GetUserFeatures(0);
  EXPECT_EQ(uf.behaviors.size(), 4u);  // capped at history_len
  EXPECT_EQ(uf.behaviors.front().item_id, 42);
}

TEST_F(ServingTest, RecallByCityReturnsDistinctCityItems) {
  RecallIndex recall(*world_);
  Rng rng(3);
  auto items = recall.RecallByCity(1, 12, rng);
  EXPECT_GE(items.size(), 1u);
  std::set<int32_t> unique(items.begin(), items.end());
  EXPECT_EQ(unique.size(), items.size());
  for (int32_t item : items) {
    EXPECT_EQ(world_->item(item).city, 1);
  }
}

TEST_F(ServingTest, RecallByGeohashFallsBackGracefully) {
  RecallIndex recall(*world_);
  Rng rng(4);
  // A geohash that likely has no items: falls back to city recall.
  auto items = recall.RecallByGeohash(0, 12345, 8, rng);
  EXPECT_GE(items.size(), 1u);
  for (int32_t item : items) {
    EXPECT_EQ(world_->item(item).city, 0);
  }
  EXPECT_GT(recall.NumCells(), 0);
}

TEST_F(ServingTest, PipelineServesRankedSlate) {
  feature_store::FeatureServer fs(*world_, 6, 5);
  feature_store::FeatureStore store(&fs);
  RecallIndex recall(*world_);
  auto model =
      core::CreateModel(core::ModelKind::kDin, world_->schema(), 7);
  model->SetTraining(false);
  Pipeline pipeline(*world_, &store, &recall, model.get(), /*recall_size=*/16,
                    /*expose_k=*/6);

  Request req;
  req.user_id = 10;
  req.hour = 12;
  req.weekday = 2;
  req.city = world_->user(10).city;
  Rng rng(8);
  auto slate = pipeline.Serve(req, rng);
  ASSERT_LE(slate.size(), 6u);
  ASSERT_GE(slate.size(), 1u);
  // Scores are sorted descending and positions sequential.
  for (size_t i = 0; i < slate.size(); ++i) {
    EXPECT_EQ(slate[i].position, static_cast<int32_t>(i));
    if (i > 0) {
      EXPECT_LE(slate[i].score, slate[i - 1].score);
    }
  }
}

TEST_F(ServingTest, PipelineRankingIsModelDriven) {
  feature_store::FeatureServer fs(*world_, 6, 5);
  feature_store::FeatureStore store(&fs);
  RecallIndex recall(*world_);
  auto m1 = core::CreateModel(core::ModelKind::kDin, world_->schema(), 1);
  auto m2 = core::CreateModel(core::ModelKind::kDin, world_->schema(), 2);
  m1->SetTraining(false);
  m2->SetTraining(false);
  Pipeline p1(*world_, &store, &recall, m1.get(), 16, 8);
  Pipeline p2(*world_, &store, &recall, m2.get(), 16, 8);

  Request req;
  req.user_id = 4;
  req.hour = 19;
  req.city = world_->user(4).city;
  Rng rng(9);
  auto candidates = recall.RecallByCity(req.city, 16, rng);
  auto s1 = p1.RankCandidates(req, candidates);
  auto s2 = p2.RankCandidates(req, candidates);
  // Different random models order slates differently (with high prob.).
  bool differs = false;
  for (size_t i = 0; i < std::min(s1.size(), s2.size()); ++i) {
    if (s1[i].item_id != s2[i].item_id) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST_F(ServingTest, SimulatorProducesConsistentCounts) {
  AbTestConfig config;
  config.days = 2;
  config.requests_per_day = 40;
  config.recall_size = 12;
  config.expose_k = 6;
  auto base =
      core::CreateModel(core::ModelKind::kBaseDin, world_->schema(), 3);
  auto treat = core::CreateModel(core::ModelKind::kBasm, world_->schema(), 3);
  OnlineSimulator sim(*world_, config);
  AbTestResult result = sim.Run(*base, *treat);

  ASSERT_EQ(result.base.daily.size(), 2u);
  ASSERT_EQ(result.daily_improvement.size(), 2u);
  // Both arms expose the same traffic volume (identical requests).
  EXPECT_EQ(result.base.total.exposures, result.treatment.total.exposures);
  EXPECT_EQ(result.base.total.exposures,
            2 * config.requests_per_day * config.expose_k);
  // Per-group counts add up to the total.
  int64_t tp_sum = 0;
  for (auto& [tp, st] : result.base.by_time_period) tp_sum += st.exposures;
  EXPECT_EQ(tp_sum, result.base.total.exposures);
  int64_t city_sum = 0;
  for (auto& [c, st] : result.base.by_city) city_sum += st.exposures;
  EXPECT_EQ(city_sum, result.base.total.exposures);
  // CTRs are sane.
  EXPECT_GT(result.base.total.ctr(), 0.0);
  EXPECT_LT(result.base.total.ctr(), 1.0);
}

TEST_F(ServingTest, RecallByGeohashUsesPopulatedCell) {
  RecallIndex recall(*world_);
  Rng rng(21);
  // Use a cell that is guaranteed populated: an item's own cell.
  int32_t item0 = world_->CityItems(0)[0];
  int32_t cell = world_->item(item0).geohash;
  auto items = recall.RecallByGeohash(0, cell, 4, rng);
  EXPECT_GE(items.size(), 1u);
  for (int32_t item : items) EXPECT_EQ(world_->item(item).city, 0);
}

TEST_F(ServingTest, PipelineRejectsRecallSmallerThanExposure) {
  feature_store::FeatureServer fs(*world_, 4, 22);
  feature_store::FeatureStore store(&fs);
  RecallIndex recall(*world_);
  auto model =
      core::CreateModel(core::ModelKind::kDin, world_->schema(), 23);
  EXPECT_DEATH(Pipeline(*world_, &store, &recall, model.get(),
                        /*recall_size=*/4, /*expose_k=*/8),
               "Check failed");
}

TEST_F(ServingTest, ClickFeedbackChangesSubsequentFeatures) {
  // Closed loop: a recorded click must appear in the next feature fetch.
  feature_store::FeatureServer fs(*world_, 6, 24);
  auto before = fs.GetUserFeatures(1);
  data::BehaviorEvent ev;
  ev.item_id = 777 % static_cast<int32_t>(world_->config().num_items);
  ev.category = 3;
  ev.time_period = 1;
  fs.RecordClick(1, ev);
  auto after = fs.GetUserFeatures(1);
  EXPECT_EQ(after.behaviors.front().item_id, ev.item_id);
  EXPECT_NE(before.behaviors.front().item_id, ev.item_id);
}

TEST_F(ServingTest, SimulatorIdenticalModelsTie) {
  AbTestConfig config;
  config.days = 1;
  config.requests_per_day = 30;
  config.recall_size = 10;
  config.expose_k = 5;
  // The same model object in both arms must earn identical CTR because the
  // traffic, candidates and click thresholds are shared.
  auto model =
      core::CreateModel(core::ModelKind::kDin, world_->schema(), 4);
  OnlineSimulator sim(*world_, config);
  AbTestResult result = sim.Run(*model, *model);
  EXPECT_EQ(result.base.total.clicks, result.treatment.total.clicks);
  EXPECT_NEAR(result.average_improvement, 0.0, 1e-12);
}

}  // namespace
}  // namespace basm::serving
