// Fixture: direct click-journal IO that bypasses the FeatureStore's
// write-ahead ordering. Lines 6 and 8 violate journal-io-outside-store;
// line 10 is suppressed inline and line 12 is a qualified mention, not a
// member call.
void F(J& journal, J* wal) {
  auto a = journal.AppendRecord(1, event);
  (void)a;
  auto b = wal->ReplayInto(apply);
  (void)b;
  auto c = journal.AppendRecord(2, event);  // basm-lint: allow(journal-io-outside-store)
  (void)c;
  using Fn = decltype(&J::AppendRecord);
}
