#ifndef BASM_SERVING_PIPELINE_H_
#define BASM_SERVING_PIPELINE_H_

#include <memory>
#include <vector>

#include "data/batch.h"
#include "models/ctr_model.h"
#include "serving/feature_server.h"
#include "serving/recall.h"

namespace basm::serving {

/// One ranking request flowing through the TPP pipeline.
struct Request {
  int32_t user_id = 0;
  int32_t hour = 0;
  int32_t weekday = 0;
  int32_t city = 0;
  int32_t day = 0;
  int32_t request_id = 0;
};

/// One exposed slate entry.
struct RankedItem {
  int32_t item_id = 0;
  float score = 0.0f;
  int32_t position = 0;
};

/// Analogue of the Personalization Platform (TPP) orchestration in Fig 13:
/// fetch user features (ABFS), recall candidates by location (LBS), score
/// with the model (RTP), and return the top-k slate for exposure.
class Pipeline {
 public:
  /// All dependencies are borrowed; the model must outlive the pipeline.
  Pipeline(const data::World& world, FeatureServer* feature_server,
           const RecallIndex* recall, models::CtrModel* model,
           int32_t recall_size, int32_t expose_k);

  /// Runs the full serve path; `rng` drives the recall sampling.
  std::vector<RankedItem> Serve(const Request& request, Rng& rng);

  /// Scores a given candidate list without recall (used by the simulator to
  /// feed both A/B arms identical candidates).
  std::vector<RankedItem> RankCandidates(
      const Request& request, const std::vector<int32_t>& candidates);

  int32_t expose_k() const { return expose_k_; }

 private:
  const data::World& world_;
  FeatureServer* feature_server_;
  const RecallIndex* recall_;
  models::CtrModel* model_;
  int32_t recall_size_;
  int32_t expose_k_;
  Rng scratch_rng_{0xFEED};
};

}  // namespace basm::serving

#endif  // BASM_SERVING_PIPELINE_H_
