#include <cmath>
#include <memory>

#include "gtest/gtest.h"
#include "nn/attention.h"
#include "nn/batchnorm.h"
#include "nn/dynamic.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/module.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"
#include "tests/test_util.h"

namespace basm::nn {
namespace {

namespace ag = ::basm::autograd;

TEST(ModuleTest, ParameterRegistry) {
  Rng rng(1);
  Linear layer(4, 3, rng);
  auto params = layer.Parameters();
  ASSERT_EQ(params.size(), 2u);  // weight + bias
  EXPECT_EQ(layer.ParameterCount(), 4 * 3 + 3);
  EXPECT_EQ(layer.ParameterBytes(), (4 * 3 + 3) * 4);
}

TEST(ModuleTest, NamedParametersNested) {
  Rng rng(2);
  Mlp mlp({4, 8, 1}, Activation::kRelu, rng);
  auto named = mlp.NamedParameters();
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "fc0.weight");
  EXPECT_EQ(named[3].first, "fc1.bias");
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(3);
  Linear layer(2, 2, rng);
  ag::Variable x = ag::Variable::Constant(Tensor({3, 2}, {1, 2, 3, 4, 5, 6}));
  ag::Backward(ag::SumAll(layer.Forward(x)));
  bool any_nonzero = false;
  for (auto& p : layer.Parameters()) {
    for (int64_t i = 0; i < p.grad().numel(); ++i) {
      any_nonzero = any_nonzero || p.grad()[i] != 0.0f;
    }
  }
  EXPECT_TRUE(any_nonzero);
  layer.ZeroGrad();
  for (auto& p : layer.Parameters()) {
    for (int64_t i = 0; i < p.grad().numel(); ++i) {
      EXPECT_EQ(p.grad()[i], 0.0f);
    }
  }
}

TEST(LinearTest, ForwardShapeAndValue) {
  Rng rng(4);
  Linear layer(2, 3, rng);
  // Overwrite weights to known values.
  ag::Variable w = layer.weight();
  w.mutable_value() = Tensor({2, 3}, {1, 0, 2, 0, 1, 1});
  ag::Variable b = layer.bias();
  b.mutable_value() = Tensor({1, 3}, {0.5f, -0.5f, 0});
  ag::Variable x = ag::Variable::Constant(Tensor({1, 2}, {2, 3}));
  Tensor y = layer.Forward(x).value();
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 2.5f);
  EXPECT_FLOAT_EQ(y.at(0, 2), 7.0f);
}

TEST(MlpTest, OutputShape) {
  Rng rng(5);
  Mlp mlp({6, 8, 4, 1}, Activation::kLeakyRelu, rng);
  ag::Variable x = ag::Variable::Constant(Tensor::Normal({5, 6}, 0, 1, rng));
  Tensor y = mlp.Forward(x).value();
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 1);
}

TEST(MlpTest, TrainsOnXor) {
  // Small nonlinear task: XOR must be solvable with a hidden layer.
  Rng rng(6);
  Mlp mlp({2, 8, 1}, Activation::kTanh, rng);
  Tensor x({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor y({4}, {0, 1, 1, 0});
  optim::Adam opt(mlp.Parameters(), 0.05f);
  float last_loss = 0.0f;
  for (int step = 0; step < 400; ++step) {
    ag::Variable logits =
        ag::Reshape(mlp.Forward(ag::Variable::Constant(x)), {4});
    ag::Variable loss = ag::BceWithLogits(logits, y);
    last_loss = loss.value()[0];
    ag::Backward(loss);
    opt.Step();
  }
  EXPECT_LT(last_loss, 0.1f);
}

TEST(BatchNormTest, NormalizesTrainBatch) {
  BatchNorm1d bn(3);
  bn.SetTraining(true);
  Rng rng(7);
  ag::Variable x =
      ag::Variable::Constant(Tensor::Normal({64, 3}, 5.0f, 2.0f, rng));
  Tensor y = bn.Forward(x).value();
  Tensor mean = ops::ColMean(y);
  for (int64_t j = 0; j < 3; ++j) EXPECT_NEAR(mean[j], 0.0f, 1e-4f);
  // Per-column variance should be ~1.
  Tensor sq = ops::ColMean(ops::Mul(y, y));
  for (int64_t j = 0; j < 3; ++j) EXPECT_NEAR(sq[j], 1.0f, 1e-2f);
}

TEST(BatchNormTest, RunningStatsConvergeAndEvalUsesThem) {
  BatchNorm1d bn(2, /*momentum=*/0.5f);
  bn.SetTraining(true);
  Rng rng(8);
  for (int i = 0; i < 30; ++i) {
    ag::Variable x =
        ag::Variable::Constant(Tensor::Normal({256, 2}, 3.0f, 1.0f, rng));
    bn.Forward(x);
  }
  EXPECT_NEAR(bn.running_mean()[0], 3.0f, 0.2f);
  EXPECT_NEAR(bn.running_var()[0], 1.0f, 0.2f);

  bn.SetTraining(false);
  // A constant eval input equal to the running mean maps to ~0.
  Tensor x_eval({1, 2});
  x_eval[0] = bn.running_mean()[0];
  x_eval[1] = bn.running_mean()[1];
  Tensor y = bn.Forward(ag::Variable::Constant(x_eval)).value();
  EXPECT_NEAR(y[0], 0.0f, 1e-3f);
}

TEST(BatchNormTest, GradientsFlowThroughBatchStats) {
  Rng rng(9);
  auto bn = std::make_shared<BatchNorm1d>(3);
  bn->SetTraining(true);
  std::vector<ag::Variable> leaves = {ag::Variable::Leaf(
      Tensor::Normal({6, 3}, 0.0f, 1.0f, rng), true)};
  Tensor w = Tensor::Normal({6, 3}, 0.0f, 1.0f, rng);
  basm::testing::CheckGradients(leaves, [&] {
    return ag::SumAll(
        ag::Mul(bn->Forward(leaves[0]), ag::Variable::Constant(w)));
  });
}

TEST(EmbeddingTest, LookupShape) {
  Rng rng(10);
  Embedding emb(100, 8, rng);
  std::vector<int32_t> ids = {3, 7, 3};
  Tensor out = emb.Forward(ids).value();
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 8);
  // Same id -> same row.
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_EQ(out.at(0, j), out.at(2, j));
  }
}

TEST(EmbeddingTest, TrainableViaOptimizer) {
  Rng rng(11);
  Embedding emb(10, 4, rng);
  optim::Sgd opt(emb.Parameters(), 0.5f);
  std::vector<int32_t> ids = {2};
  Tensor before = emb.Forward(ids).value();
  ag::Backward(ag::SumAll(emb.Forward(ids)));
  opt.Step();
  Tensor after = emb.Forward(ids).value();
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(after[j], before[j] - 0.5f, 1e-5f);
  }
}

TEST(TargetAttentionTest, MaskedPositionsIgnored) {
  Rng rng(12);
  TargetAttention attn(4, 8, rng);
  int64_t batch = 2, t = 3;
  ag::Variable query =
      ag::Variable::Constant(Tensor::Normal({batch, 4}, 0, 1, rng));
  Tensor keys_t = Tensor::Normal({batch, t, 4}, 0, 1, rng);
  // Poison masked positions with huge values: they must not leak.
  for (int64_t j = 0; j < 4; ++j) keys_t.at(0, 2, j) = 1e6f;
  ag::Variable keys = ag::Variable::Constant(keys_t);
  Tensor mask({batch, t}, {1, 1, 0, 1, 1, 1});
  Tensor out = attn.Forward(query, keys, mask).value();
  EXPECT_FALSE(out.HasNonFinite());
  EXPECT_LT(std::abs(out.at(0, 0)), 100.0f);
  // Attention weights on masked slot are ~0.
  EXPECT_LT(attn.last_weights().at(0, 2), 1e-6f);
}

TEST(TargetAttentionTest, WeightsSumToOne) {
  Rng rng(13);
  TargetAttention attn(4, 8, rng);
  ag::Variable query = ag::Variable::Constant(Tensor::Normal({3, 4}, 0, 1, rng));
  ag::Variable keys =
      ag::Variable::Constant(Tensor::Normal({3, 5, 4}, 0, 1, rng));
  Tensor mask = Tensor::Ones({3, 5});
  attn.Forward(query, keys, mask);
  for (int64_t i = 0; i < 3; ++i) {
    double total = 0.0;
    for (int64_t j = 0; j < 5; ++j) total += attn.last_weights().at(i, j);
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(TargetAttentionTest, GradientsFlow) {
  Rng rng(14);
  auto attn = std::make_shared<TargetAttention>(3, 4, rng);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Leaf(Tensor::Normal({2, 3}, 0, 0.5f, rng), true),
      ag::Variable::Leaf(Tensor::Normal({2, 4, 3}, 0, 0.5f, rng), true),
  };
  Tensor mask = Tensor::Ones({2, 4});
  basm::testing::CheckGradients(leaves, [&] {
    ag::Variable out = attn->Forward(leaves[0], leaves[1], mask);
    return ag::SumAll(ag::Mul(out, out));
  });
}

TEST(MultiHeadSelfAttentionTest, ShapeAndFinite) {
  Rng rng(15);
  MultiHeadSelfAttention mhsa(8, 2, 4, rng);
  ag::Variable x =
      ag::Variable::Constant(Tensor::Normal({3, 5, 8}, 0, 1, rng));
  Tensor y = mhsa.Forward(x).value();
  EXPECT_EQ(y.dim(0), 3);
  EXPECT_EQ(y.dim(1), 5);
  EXPECT_EQ(y.dim(2), 8);  // 2 heads * 4
  EXPECT_FALSE(y.HasNonFinite());
}

TEST(MultiHeadSelfAttentionTest, GradientsFlowToParams) {
  Rng rng(16);
  MultiHeadSelfAttention mhsa(4, 2, 2, rng);
  ag::Variable x =
      ag::Variable::Constant(Tensor::Normal({2, 3, 4}, 0, 1, rng));
  ag::Backward(ag::SumAll(mhsa.Forward(x)));
  int64_t touched = 0;
  for (auto& p : mhsa.Parameters()) {
    for (int64_t i = 0; i < p.grad().numel(); ++i) {
      if (p.grad()[i] != 0.0f) ++touched;
    }
  }
  EXPECT_GT(touched, 0);
}

TEST(MetaLinearTest, ShapeAndConditionSensitivity) {
  Rng rng(17);
  MetaLinear meta(5, 6, 3, rng);
  ag::Variable x = ag::Variable::Constant(Tensor::Normal({4, 6}, 0, 1, rng));
  ag::Variable cond1 =
      ag::Variable::Constant(Tensor::Normal({4, 5}, 0, 1, rng));
  ag::Variable cond2 =
      ag::Variable::Constant(Tensor::Normal({4, 5}, 0, 1, rng));
  Tensor y1 = meta.Forward(x, cond1).value();
  Tensor y2 = meta.Forward(x, cond2).value();
  EXPECT_EQ(y1.rows(), 4);
  EXPECT_EQ(y1.cols(), 3);
  // Different conditions must produce different mappings of the same input.
  EXPECT_GT(ops::MaxAbsDiff(y1, y2), 1e-6f);
}

TEST(MetaLinearTest, GradCheckThroughGenerator) {
  Rng rng(18);
  auto meta = std::make_shared<MetaLinear>(3, 4, 2, rng);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Leaf(Tensor::Normal({3, 4}, 0, 0.5f, rng), true),
      ag::Variable::Leaf(Tensor::Normal({3, 3}, 0, 0.5f, rng), true),
  };
  basm::testing::CheckGradients(leaves, [&] {
    ag::Variable y = meta->Forward(leaves[0], leaves[1]);
    return ag::SumAll(ag::Mul(y, y));
  });
}

TEST(LowRankMetaLinearTest, ShapeAndParamCountSmallerThanFull) {
  Rng rng(19);
  const int64_t cond = 16, in = 64, out = 64;
  MetaLinear full(cond, in, out, rng);
  LowRankMetaLinear lowrank(cond, in, out, /*rank=*/8, rng);
  EXPECT_LT(lowrank.ParameterCount(), full.ParameterCount() / 4);

  ag::Variable x = ag::Variable::Constant(Tensor::Normal({2, in}, 0, 1, rng));
  ag::Variable c = ag::Variable::Constant(Tensor::Normal({2, cond}, 0, 1, rng));
  Tensor y = lowrank.Forward(x, c).value();
  EXPECT_EQ(y.rows(), 2);
  EXPECT_EQ(y.cols(), out);
}

TEST(OptimizerTest, SgdStepDirection) {
  ag::Variable p = ag::Variable::Leaf(Tensor({1}, {1.0f}), true);
  optim::Sgd opt({p}, 0.1f);
  // loss = p^2 => grad = 2p = 2; p' = 1 - 0.1*2 = 0.8.
  ag::Backward(ag::SumAll(ag::Mul(p, p)));
  opt.Step();
  EXPECT_NEAR(p.value()[0], 0.8f, 1e-6f);
  // Step zeroes the gradient.
  EXPECT_EQ(p.grad()[0], 0.0f);
}

TEST(OptimizerTest, AdagradConvergesOnQuadratic) {
  ag::Variable p = ag::Variable::Leaf(Tensor({2}, {3.0f, -2.0f}), true);
  optim::Adagrad opt({p}, 0.5f);
  for (int i = 0; i < 300; ++i) {
    ag::Backward(ag::SumAll(ag::Mul(p, p)));
    opt.Step();
  }
  EXPECT_NEAR(p.value()[0], 0.0f, 0.05f);
  EXPECT_NEAR(p.value()[1], 0.0f, 0.05f);
}

TEST(OptimizerTest, AdagradDecayKeepsAdapting) {
  // With decay < 1 the accumulator forgets, so late steps stay larger than
  // classic Adagrad's on the same schedule.
  ag::Variable p1 = ag::Variable::Leaf(Tensor({1}, {1.0f}), true);
  ag::Variable p2 = ag::Variable::Leaf(Tensor({1}, {1.0f}), true);
  optim::Adagrad classic({p1}, 0.1f, /*decay=*/1.0f);
  optim::Adagrad decayed({p2}, 0.1f, /*decay=*/0.9f);
  for (int i = 0; i < 200; ++i) {
    p1.grad()[0] = 1.0f;
    classic.Step();
    p2.grad()[0] = 1.0f;
    decayed.Step();
  }
  // Decayed variant travels farther under a constant gradient.
  EXPECT_LT(p2.value()[0], p1.value()[0]);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  ag::Variable p = ag::Variable::Leaf(Tensor({1}, {4.0f}), true);
  optim::Adam opt({p}, 0.2f);
  for (int i = 0; i < 200; ++i) {
    ag::Backward(ag::SumAll(ag::Mul(p, p)));
    opt.Step();
  }
  EXPECT_NEAR(p.value()[0], 0.0f, 0.05f);
}

TEST(OptimizerTest, GradClippingBoundsNorm) {
  ag::Variable p = ag::Variable::Leaf(Tensor({2}, {0.0f, 0.0f}), true);
  optim::Sgd opt({p}, 1.0f);
  opt.set_clip_norm(1.0f);
  p.grad()[0] = 30.0f;
  p.grad()[1] = 40.0f;  // norm 50 -> scaled to 1
  opt.Step();
  EXPECT_NEAR(p.value()[0], -0.6f, 1e-5f);
  EXPECT_NEAR(p.value()[1], -0.8f, 1e-5f);
}

TEST(OptimizerTest, LinearWarmupSchedule) {
  optim::LinearWarmup sched(0.001f, 0.012f, 100);
  EXPECT_NEAR(sched.LearningRate(0), 0.001f, 1e-7f);
  EXPECT_NEAR(sched.LearningRate(50), 0.0065f, 1e-6f);
  EXPECT_NEAR(sched.LearningRate(100), 0.012f, 1e-7f);
  EXPECT_NEAR(sched.LearningRate(1000), 0.012f, 1e-7f);
}

}  // namespace
}  // namespace basm::nn
