#ifndef BASM_COMMON_RNG_H_
#define BASM_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace basm {

/// Deterministic, seedable pseudo-random generator used everywhere in the
/// library (data synthesis, weight init, sampling). Core is SplitMix64:
/// fast, passes BigCrush-lite, and trivially reproducible across platforms,
/// which matters for the experiment harness (fixed seeds => fixed tables).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double Normal();

  /// Normal with mean/stddev.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with probability p of returning true.
  bool Bernoulli(double p);

  /// Zipf-distributed integer in [0, n) with exponent s (s >= 0). Uses an
  /// inverted-CDF table supplied by ZipfTable for O(log n) draws.
  /// Index 0 is the most probable element.

  /// Samples an index from unnormalized non-negative weights.
  int64_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of [0, n) indices.
  std::vector<int32_t> Permutation(int64_t n);

  /// Derives an independent child generator; children with distinct tags are
  /// statistically independent streams of the parent seed.
  Rng Fork(uint64_t tag) const;

 private:
  uint64_t state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Precomputed cumulative Zipf distribution over [0, n) with exponent s.
/// Draws are O(log n) via binary search; used for user/item/city popularity.
class ZipfTable {
 public:
  ZipfTable(int64_t n, double s);

  int64_t Sample(Rng& rng) const;
  int64_t size() const { return static_cast<int64_t>(cdf_.size()); }

  /// Probability of index i.
  double Probability(int64_t i) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace basm

#endif  // BASM_COMMON_RNG_H_
