#ifndef BASM_NN_MLP_H_
#define BASM_NN_MLP_H_

#include <memory>
#include <vector>

#include "nn/activation.h"
#include "nn/batchnorm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace basm::nn {

/// Stack of Linear (+ optional BatchNorm) + activation layers. The final
/// layer has no activation or BN, so an MLP ending in 1 unit yields logits.
class Mlp : public Module {
 public:
  /// `dims` includes input and output sizes, e.g. {80, 64, 32, 1}.
  Mlp(std::vector<int64_t> dims, Activation act, Rng& rng,
      bool batch_norm = false);

  autograd::Variable Forward(const autograd::Variable& x);

  int64_t num_layers() const { return static_cast<int64_t>(layers_.size()); }

 private:
  Activation act_;
  bool batch_norm_;
  std::vector<std::unique_ptr<Linear>> layers_;
  std::vector<std::unique_ptr<BatchNorm1d>> norms_;
};

}  // namespace basm::nn

#endif  // BASM_NN_MLP_H_
