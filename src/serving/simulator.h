#ifndef BASM_SERVING_SIMULATOR_H_
#define BASM_SERVING_SIMULATOR_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "serving/pipeline.h"

namespace basm::serving {

/// Configuration of the online A/B experiment (Section III-E / Table VII).
struct AbTestConfig {
  int32_t days = 7;
  int64_t requests_per_day = 800;
  int32_t recall_size = 24;
  int32_t expose_k = 8;
  uint64_t seed = 20220808;
};

/// Aggregated exposure/click counters.
struct TrafficStats {
  int64_t exposures = 0;
  int64_t clicks = 0;
  double ctr() const {
    return exposures == 0 ? 0.0
                          : static_cast<double>(clicks) / exposures;
  }
};

/// Full A/B log of one arm.
struct ArmResult {
  std::string model_name;
  std::vector<TrafficStats> daily;              // [days]
  std::map<int32_t, TrafficStats> by_time_period;
  std::map<int32_t, TrafficStats> by_city;
  TrafficStats total;
};

/// Outcome of the paired experiment.
struct AbTestResult {
  ArmResult base;
  ArmResult treatment;
  /// Per-day relative CTR improvement of treatment over base (Table VII).
  std::vector<double> daily_improvement;
  double average_improvement = 0.0;
};

/// Replays identical traffic (same users, times, candidate slates, and
/// click-threshold randomness) through two model arms and compares CTR —
/// the strict counterpart of the paper's "strictly online A/B experiments".
/// Each arm has its own FeatureServer so its click history feedback loop is
/// independent, like separate serving buckets in production.
class OnlineSimulator {
 public:
  OnlineSimulator(const data::World& world, const AbTestConfig& config);

  AbTestResult Run(models::CtrModel& base_model,
                   models::CtrModel& treatment_model);

 private:
  const data::World& world_;
  AbTestConfig config_;
};

}  // namespace basm::serving

#endif  // BASM_SERVING_SIMULATOR_H_
