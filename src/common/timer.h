#ifndef BASM_COMMON_TIMER_H_
#define BASM_COMMON_TIMER_H_

#include <chrono>

namespace basm {

/// Wall-clock stopwatch used by the efficiency profiler and benches.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace basm

#endif  // BASM_COMMON_TIMER_H_
