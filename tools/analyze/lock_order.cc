#include "tools/analyze/lock_order.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <utility>

namespace basm::analyze {
namespace {

/// The documented lock hierarchy (DESIGN §10, mirrored in §15): while
/// holding `first`, acquiring `second` is legal. Everything not listed —
/// including the reverse of any listed pair — is a finding. Leaf locks
/// (CircuitBreaker, FaultInjector, ModelSlot, ModelRegistry, BlockingQueue,
/// MicroBatcher, LatencyRecorder) appear only on the right-hand side.
const std::vector<std::pair<const char*, const char*>>& AllowedEdges() {
  static const std::vector<std::pair<const char*, const char*>> kAllowed = {
      // Engine shutdown drains the job queue and joins the worker pools.
      {"ServingEngine::shutdown_mu_", "BlockingQueue::mu_"},
      {"ServingEngine::shutdown_mu_", "ThreadPool::mu_"},
      // The pool's shutdown closes its own task queue.
      {"ThreadPool::mu_", "BlockingQueue::mu_"},
      // The trainer applies updates and publishes under its update lock;
      // the fault-injected train step consults the injector's site table.
      {"OnlineTrainer::update_mu_", "ModelRegistry::mu_"},
      {"OnlineTrainer::update_mu_", "ModelSlot::mu_"},
      {"OnlineTrainer::update_mu_", "BlockingQueue::mu_"},
      {"OnlineTrainer::update_mu_", "FaultInjector::mu_"},
      // Trainer lifecycle closes the feedback queue before joining.
      {"OnlineTrainer::lifecycle_mu_", "BlockingQueue::mu_"},
      // Registry publish updates the slot's servable pointer.
      {"ModelRegistry::mu_", "ModelSlot::mu_"},
      // Server lifecycle drains its handler pool (and the pool's queue).
      {"RpcServer::lifecycle_mu_", "ThreadPool::mu_"},
      {"RpcServer::lifecycle_mu_", "BlockingQueue::mu_"},
      // Epoll server lifecycle starts/stops its IO loops (each loop has its
      // own lifecycle and task locks) and waits out in-flight submissions.
      {"EpollRpcServer::lifecycle_mu_", "EventLoop::lifecycle_mu_"},
      {"EpollRpcServer::lifecycle_mu_", "EventLoop::task_mu_"},
      {"EpollRpcServer::lifecycle_mu_", "EpollRpcServer::pending_mu_"},
  };
  return kAllowed;
}

bool EdgeAllowed(const std::string& from, const std::string& to) {
  for (const auto& [a, b] : AllowedEdges()) {
    if (from == a && to == b) return true;
  }
  return false;
}

struct Edge {
  std::string file;
  int line = 0;
  std::string via;  // human description of the witness
};

}  // namespace

std::vector<lint::Finding> RunLockOrder(const std::vector<FileScan>& files,
                                        const ProgramModel& model) {
  std::vector<lint::Finding> findings;
  constexpr char kPass[] = "lock-order";

  // from-node -> to-node -> first witness
  std::map<std::string, std::map<std::string, Edge>> edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      Edge witness) {
    if (from == to) return;  // CondVar round-trips; not an ordering edge
    edges[from].emplace(to, std::move(witness));
  };

  for (const FileScan& file : files) {
    for (const FunctionScan& fn : file.functions) {
      const std::string where =
          (fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name);
      // Nested direct acquisitions.
      for (const LockAcq& acq : fn.locks) {
        if (acq.held.empty()) continue;
        std::string to = model.LockNode(fn.cls, acq.expr);
        for (const std::string& held : acq.held) {
          add_edge(model.LockNode(fn.cls, held), to,
                   Edge{file.path, acq.line,
                        where + " acquires " + acq.expr + " while holding " +
                            held});
        }
      }
      // Acquisitions through calls made under a lock.
      for (const Call& call : fn.calls) {
        if (call.locks_held.empty()) continue;
        std::string callee = model.ResolveCallee(fn.cls, call);
        if (callee.empty()) continue;
        auto acquired = model.acquires().find(callee);
        if (acquired == model.acquires().end()) continue;
        for (const std::string& to : acquired->second) {
          for (const std::string& held : call.locks_held) {
            add_edge(model.LockNode(fn.cls, held), to,
                     Edge{file.path, call.line,
                          where + " holds " + held + " and calls " + callee +
                              " which acquires " + to});
          }
        }
      }
    }
  }

  for (const auto& [from, outs] : edges) {
    for (const auto& [to, witness] : outs) {
      if (EdgeAllowed(from, to)) continue;
      findings.push_back(lint::Finding{
          witness.file, witness.line, kPass,
          "undocumented lock ordering " + from + " -> " + to + " (" +
              witness.via +
              "); add it to the DESIGN §10/§15 hierarchy and the "
              "lock-order table, or restructure to drop the outer lock"});
    }
  }

  // Cycle detection over the observed graph, independent of the table.
  std::map<std::string, int> state;
  std::vector<std::string> stack;
  std::vector<std::string> cycle;
  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    state[node] = 1;
    stack.push_back(node);
    auto it = edges.find(node);
    if (it != edges.end()) {
      for (const auto& [next, _] : it->second) {
        int s = state.count(next) ? state[next] : 0;
        if (s == 1) {
          auto at = std::find(stack.begin(), stack.end(), next);
          cycle.assign(at, stack.end());
          cycle.push_back(next);
          return true;
        }
        if (s == 0 && visit(next)) return true;
      }
    }
    stack.pop_back();
    state[node] = 2;
    return false;
  };
  for (const auto& [node, _] : edges) {
    if ((state.count(node) ? state[node] : 0) == 0 && visit(node)) break;
  }
  if (!cycle.empty()) {
    std::string path;
    for (const std::string& n : cycle) {
      if (!path.empty()) path += " -> ";
      path += n;
    }
    const Edge& witness = edges[cycle[0]].at(cycle[1]);
    findings.push_back(lint::Finding{
        witness.file, witness.line, kPass,
        "lock acquisition cycle: " + path + " (first edge: " + witness.via +
            "); a deadlock is reachable when threads interleave these "
            "acquisitions"});
  }
  return findings;
}

}  // namespace basm::analyze
