#include "tensor/tensor.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/tensor_ops.h"

namespace basm {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, FromValues) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, ThreeDimAccess) {
  Tensor t({2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(t.at(1, 0, 1), 5.0f);
  EXPECT_EQ(t.at(0, 1, 0), 2.0f);
}

TEST(TensorTest, DataIs64ByteAligned) {
  // The SIMD kernels and the serving arena both assume 64-byte storage; the
  // guarantee must hold for heap-fresh and arena-recycled buffers alike.
  for (const std::vector<int64_t>& shape :
       {std::vector<int64_t>{1}, {7}, {3, 5}, {2, 3, 4}, {64, 176}}) {
    Tensor t(shape);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % 64, 0u)
        << ShapeToString(shape);
  }
  ArenaScope scope;
  for (int round = 0; round < 2; ++round) {
    Tensor t({9, 11});
    EXPECT_EQ(reinterpret_cast<uintptr_t>(t.data()) % 64, 0u)
        << "arena round " << round;
  }
}

TEST(TensorTest, ReshapeInference) {
  Tensor t({2, 6});
  Tensor r = t.Reshape({3, -1});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_EQ(r.dim(1), 4);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  Tensor r = t.Reshape({4});
  for (int64_t i = 0; i < 4; ++i) EXPECT_EQ(r[i], static_cast<float>(i + 1));
}

TEST(TensorTest, FillAndStats) {
  Tensor t = Tensor::Full({4}, 2.5f);
  EXPECT_FLOAT_EQ(t.Sum(), 10.0f);
  EXPECT_FLOAT_EQ(t.Mean(), 2.5f);
  EXPECT_FLOAT_EQ(t.Min(), 2.5f);
  EXPECT_FLOAT_EQ(t.Max(), 2.5f);
}

TEST(TensorTest, UniformFactoryRange) {
  Rng rng(1);
  Tensor t = Tensor::Uniform({1000}, -0.5f, 0.5f, rng);
  EXPECT_GE(t.Min(), -0.5f);
  EXPECT_LT(t.Max(), 0.5f);
  EXPECT_NEAR(t.Mean(), 0.0f, 0.05f);
}

TEST(TensorTest, NormalFactoryMoments) {
  Rng rng(2);
  Tensor t = Tensor::Normal({10000}, 1.0f, 2.0f, rng);
  EXPECT_NEAR(t.Mean(), 1.0f, 0.1f);
}

TEST(TensorTest, HasNonFinite) {
  Tensor t({2}, {1.0f, 2.0f});
  EXPECT_FALSE(t.HasNonFinite());
  t[1] = std::nanf("");
  EXPECT_TRUE(t.HasNonFinite());
  t[1] = INFINITY;
  EXPECT_TRUE(t.HasNonFinite());
}

TEST(TensorTest, AddScaledInPlace) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  a.AddScaledInPlace(b, 0.1f);
  EXPECT_FLOAT_EQ(a[0], 2.0f);
  EXPECT_FLOAT_EQ(a[2], 6.0f);
}

TEST(TensorOpsTest, MatMulSmall) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::MatMul(a, b);
  // [1 2 3; 4 5 6] * [7 8; 9 10; 11 12] = [58 64; 139 154]
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(TensorOpsTest, MatMulIdentity) {
  Rng rng(3);
  Tensor a = Tensor::Normal({4, 4}, 0.0f, 1.0f, rng);
  Tensor eye({4, 4});
  for (int i = 0; i < 4; ++i) eye.at(i, i) = 1.0f;
  EXPECT_TRUE(ops::AllClose(ops::MatMul(a, eye), a));
  EXPECT_TRUE(ops::AllClose(ops::MatMul(eye, a), a));
}

TEST(TensorOpsTest, MatMulTransVariantsAgree) {
  Rng rng(4);
  Tensor a = Tensor::Normal({5, 3}, 0.0f, 1.0f, rng);
  Tensor b = Tensor::Normal({5, 4}, 0.0f, 1.0f, rng);
  // A^T B via explicit transpose should equal MatMulTransA.
  Tensor expected = ops::MatMul(ops::Transpose(a), b);
  EXPECT_TRUE(ops::AllClose(ops::MatMulTransA(a, b), expected, 1e-4f, 1e-5f));

  Tensor c = Tensor::Normal({4, 3}, 0.0f, 1.0f, rng);
  Tensor expected2 = ops::MatMul(a, ops::Transpose(c));
  EXPECT_TRUE(ops::AllClose(ops::MatMulTransB(a, c), expected2, 1e-4f, 1e-5f));
}

TEST(TensorOpsTest, BatchedMatMulMatchesPerSlice) {
  Rng rng(5);
  Tensor a = Tensor::Normal({3, 2, 4}, 0.0f, 1.0f, rng);
  Tensor b = Tensor::Normal({3, 4, 5}, 0.0f, 1.0f, rng);
  Tensor c = ops::BatchedMatMul(a, b);
  EXPECT_EQ(c.dim(0), 3);
  EXPECT_EQ(c.dim(1), 2);
  EXPECT_EQ(c.dim(2), 5);
  for (int64_t i = 0; i < 3; ++i) {
    Tensor ai({2, 4});
    Tensor bi({4, 5});
    std::copy(a.data() + i * 8, a.data() + (i + 1) * 8, ai.data());
    std::copy(b.data() + i * 20, b.data() + (i + 1) * 20, bi.data());
    Tensor ci = ops::MatMul(ai, bi);
    for (int64_t j = 0; j < 10; ++j) {
      EXPECT_NEAR(c[i * 10 + j], ci[j], 1e-5f);
    }
  }
}

TEST(TensorOpsTest, BatchedTransVariantsAgree) {
  Rng rng(6);
  Tensor a = Tensor::Normal({2, 3, 4}, 0.0f, 1.0f, rng);
  Tensor b = Tensor::Normal({2, 3, 5}, 0.0f, 1.0f, rng);
  Tensor c = ops::BatchedMatMulTransA(a, b);  // [2,4,5]
  EXPECT_EQ(c.dim(1), 4);
  EXPECT_EQ(c.dim(2), 5);

  Tensor d = Tensor::Normal({2, 6, 4}, 0.0f, 1.0f, rng);
  Tensor e = ops::BatchedMatMulTransB(a, d);  // [2,3,6]
  EXPECT_EQ(e.dim(1), 3);
  EXPECT_EQ(e.dim(2), 6);
}

TEST(TensorOpsTest, ElementwiseBasics) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {4, 5, 6});
  EXPECT_TRUE(ops::AllClose(ops::Add(a, b), Tensor({3}, {5, 7, 9})));
  EXPECT_TRUE(ops::AllClose(ops::Sub(a, b), Tensor({3}, {-3, -3, -3})));
  EXPECT_TRUE(ops::AllClose(ops::Mul(a, b), Tensor({3}, {4, 10, 18})));
  EXPECT_TRUE(
      ops::AllClose(ops::Div(a, b), Tensor({3}, {0.25f, 0.4f, 0.5f})));
  EXPECT_TRUE(ops::AllClose(ops::Scale(a, 2.0f), Tensor({3}, {2, 4, 6})));
}

TEST(TensorOpsTest, RowBroadcast) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({1, 3}, {10, 20, 30});
  Tensor c = ops::AddRowBroadcast(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 36.0f);
  Tensor d = ops::MulRowBroadcast(a, b);
  EXPECT_FLOAT_EQ(d.at(1, 0), 40.0f);
}

TEST(TensorOpsTest, ColBroadcast) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b({2, 1}, {10, 100});
  Tensor c = ops::AddColBroadcast(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 2), 13.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 104.0f);
  Tensor d = ops::MulColBroadcast(a, b);
  EXPECT_FLOAT_EQ(d.at(1, 1), 500.0f);
}

TEST(TensorOpsTest, Activations) {
  Tensor a({4}, {-2, -0.5f, 0, 3});
  Tensor s = ops::Sigmoid(a);
  EXPECT_NEAR(s[0], 0.1192f, 1e-4f);
  EXPECT_NEAR(s[2], 0.5f, 1e-6f);
  Tensor r = ops::Relu(a);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[3], 3.0f);
  Tensor lr = ops::LeakyRelu(a, 0.1f);
  EXPECT_FLOAT_EQ(lr[0], -0.2f);
  EXPECT_FLOAT_EQ(lr[3], 3.0f);
}

TEST(TensorOpsTest, Reductions) {
  Tensor a({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(ops::SumAll(a)[0], 21.0f);
  Tensor rs = ops::RowSum(a);
  EXPECT_FLOAT_EQ(rs[0], 6.0f);
  EXPECT_FLOAT_EQ(rs[1], 15.0f);
  Tensor cs = ops::ColSum(a);
  EXPECT_FLOAT_EQ(cs[0], 5.0f);
  EXPECT_FLOAT_EQ(cs[2], 9.0f);
  Tensor cm = ops::ColMean(a);
  EXPECT_FLOAT_EQ(cm[1], 3.5f);
}

TEST(TensorOpsTest, ConcatAndSlice) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 1}, {5, 6});
  Tensor c = ops::ConcatCols({a, b});
  EXPECT_EQ(c.cols(), 3);
  EXPECT_FLOAT_EQ(c.at(0, 2), 5.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 6.0f);
  Tensor s = ops::SliceCols(c, 1, 2);
  EXPECT_FLOAT_EQ(s.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(s.at(1, 1), 6.0f);
}

TEST(TensorOpsTest, SliceConcatRoundTrip) {
  Rng rng(8);
  Tensor a = Tensor::Normal({3, 7}, 0.0f, 1.0f, rng);
  Tensor left = ops::SliceCols(a, 0, 3);
  Tensor right = ops::SliceCols(a, 3, 4);
  EXPECT_TRUE(ops::AllClose(ops::ConcatCols({left, right}), a));
}

TEST(TensorOpsTest, RowSoftmaxSumsToOne) {
  Rng rng(9);
  Tensor a = Tensor::Normal({5, 8}, 0.0f, 3.0f, rng);
  Tensor s = ops::RowSoftmax(a);
  for (int64_t i = 0; i < 5; ++i) {
    double total = 0.0;
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_GT(s.at(i, j), 0.0f);
      total += s.at(i, j);
    }
    EXPECT_NEAR(total, 1.0, 1e-5);
  }
}

TEST(TensorOpsTest, RowSoftmaxLargeLogitsStable) {
  Tensor a({1, 3}, {1000.0f, 1001.0f, 999.0f});
  Tensor s = ops::RowSoftmax(a);
  EXPECT_FALSE(s.HasNonFinite());
  EXPECT_GT(s[1], s[0]);
  EXPECT_GT(s[0], s[2]);
}

TEST(TensorOpsTest, TransposeTwiceIsIdentity) {
  Rng rng(10);
  Tensor a = Tensor::Normal({3, 5}, 0.0f, 1.0f, rng);
  EXPECT_TRUE(ops::AllClose(ops::Transpose(ops::Transpose(a)), a));
}

}  // namespace
}  // namespace basm
