#ifndef BASM_CORE_STABT_H_
#define BASM_CORE_STABT_H_

#include <memory>
#include <vector>

#include "nn/batchnorm.h"
#include "nn/linear.h"
#include "nn/module.h"

namespace basm::core {

/// Spatiotemporal Adaptive Bias Tower (Section II-D): an MLP classification
/// tower whose fully-connected layers and batch-norm layers are modulated
/// per-sample by spatiotemporal signals.
///
/// Fusion FC (Eq. 10-13): with static weights W_t, b_t and modulation
/// vectors W_bias, b_bias = sigmoid(FCN(h_c)) in [0,1]^out,
///     h' = act( (W_bias ⊙ W_t) h + (b_bias + b_t) )
/// The Hadamard modulation of W_t by a per-sample vector is equivalent to
/// scaling the layer's output coordinates, so it is computed as
/// (h W_t) ⊙ W_bias without materializing per-sample matrices.
///
/// Fusion BN (Eq. 14-17): the affine-less normalization is shared; gamma and
/// beta are modulated per-sample:
///     x' = (gamma_bias ⊙ gamma) * norm(x) + beta + beta_bias.
///
/// With `adaptive = false` all modulation is skipped and the tower degrades
/// to a plain FC+BN stack (the "w/o StABT" ablation row of Table V).
class StABT : public nn::Module {
 public:
  StABT(int64_t in_dim, std::vector<int64_t> hidden, int64_t ctx_dim,
        Rng& rng, bool adaptive = true);

  /// x: [B, in_dim]; h_c: [B, ctx_dim]. Returns the last hidden layer
  /// [B, hidden.back()].
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& h_c);

  bool adaptive() const { return adaptive_; }
  int64_t out_dim() const { return dims_.back(); }

 private:
  struct Layer {
    std::unique_ptr<nn::Linear> fc;          // static W_t, b_t
    std::unique_ptr<nn::BatchNorm1d> bn;     // shared normalization core
    // FCN_bias generators (Eq. 10/11/15/16); null when not adaptive.
    std::unique_ptr<nn::Linear> w_bias_gen;
    std::unique_ptr<nn::Linear> b_bias_gen;
    std::unique_ptr<nn::Linear> gamma_bias_gen;
    std::unique_ptr<nn::Linear> beta_bias_gen;
  };

  bool adaptive_;
  std::vector<int64_t> dims_;
  std::vector<Layer> layers_;
};

}  // namespace basm::core

#endif  // BASM_CORE_STABT_H_
