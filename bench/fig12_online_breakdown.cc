// Reproduces Fig 12: online exposure ratios and CTRs of BASM vs the Base
// model broken down by time-period and by city, over one simulated week.
//
// Expected shape (paper): BASM improves CTR in every time-period and every
// city, and the relative improvement is larger where the exposure ratio is
// smaller (tail periods / tail cities) — the few-shot spatiotemporal
// scenarios adaptive parameters help most.

#include <cstdio>

#include "common/env.h"
#include "common/table_printer.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "serving/simulator.h"
#include "train/trainer.h"

int main() {
  using namespace basm;
  uint64_t seed = static_cast<uint64_t>(basm::EnvInt("BASM_SEED", 42));
  data::SynthConfig config = data::SynthConfig::Eleme();
  if (basm::FastMode()) config = config.Fast();
  data::World world(config);
  data::Dataset ds = data::GenerateDataset(config);
  std::printf("[fig12] online CTR breakdown by time-period and city\n");

  std::printf("  training Base (DIN variant)...\n");
  auto base =
      core::CreateModel(core::ModelKind::kBaseDin, ds.schema, seed);
  train::TrainConfig tc;
  tc.epochs = basm::FastMode() ? 1 : 2;
  train::Fit(*base, ds, tc);
  std::printf("  training BASM...\n");
  auto basm_model =
      core::CreateModel(core::ModelKind::kBasm, ds.schema, seed);
  train::Fit(*basm_model, ds, tc);

  serving::AbTestConfig ab;
  ab.days = 7;
  ab.requests_per_day = basm::FastMode() ? 80 : 600;
  serving::OnlineSimulator simulator(world, ab);
  serving::AbTestResult result = simulator.Run(*base, *basm_model);

  auto report = [&](const char* title,
                    const std::map<int32_t, serving::TrafficStats>& base_by,
                    const std::map<int32_t, serving::TrafficStats>& treat_by,
                    auto name_of) {
    std::printf("\n%s\n", title);
    TablePrinter table({"Group", "ExposureRatio(%)", "Base CTR(%)",
                        "BASM CTR(%)", "Rel.Improve"});
    double low_exp_improve = 0.0, high_exp_improve = 0.0;
    int64_t low_n = 0, high_n = 0;
    double median_share = 100.0 / (2.0 * static_cast<double>(base_by.size()));
    for (const auto& [group, base_stats] : base_by) {
      const auto& treat_stats = treat_by.at(group);
      double share = 100.0 * static_cast<double>(base_stats.exposures) /
                     static_cast<double>(result.base.total.exposures);
      double improve =
          base_stats.ctr() > 0
              ? (treat_stats.ctr() - base_stats.ctr()) / base_stats.ctr()
              : 0.0;
      table.AddRow({name_of(group), TablePrinter::Num(share, 1),
                    TablePrinter::Num(base_stats.ctr() * 100, 2),
                    TablePrinter::Num(treat_stats.ctr() * 100, 2),
                    TablePrinter::Num(improve * 100, 2) + "%"});
      if (share < median_share) {
        low_exp_improve += improve;
        ++low_n;
      } else {
        high_exp_improve += improve;
        ++high_n;
      }
    }
    table.Print();
    if (low_n > 0 && high_n > 0) {
      std::printf(
          "mean improvement: low-exposure groups %+.2f%% vs high-exposure "
          "groups %+.2f%% (expect low > high)\n",
          100.0 * low_exp_improve / low_n, 100.0 * high_exp_improve / high_n);
    }
  };

  report("(a) by time-period:", result.base.by_time_period,
         result.treatment.by_time_period, [](int32_t tp) {
           return std::string(
               data::TimePeriodName(static_cast<data::TimePeriod>(tp)));
         });
  report("(b) by city:", result.base.by_city, result.treatment.by_city,
         [](int32_t c) { return "city" + std::to_string(c); });
  return 0;
}
