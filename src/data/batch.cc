#include "data/batch.h"

#include <algorithm>

#include "common/logging.h"

namespace basm::data {

Batch MakeBatch(const std::vector<const Example*>& examples,
                const Schema& schema) {
  BASM_CHECK(!examples.empty());
  int64_t b = static_cast<int64_t>(examples.size());
  int64_t t = schema.seq_len;

  Batch batch;
  batch.size = b;
  batch.seq_len = t;
  batch.user_dense = Tensor({b, schema.user_dense_dim});
  batch.item_dense = Tensor({b, schema.item_dense_dim});
  batch.seq_mask = Tensor({b, t});
  batch.seq_filter_mask = Tensor({b, t});
  batch.labels = Tensor({b});

  auto reserve_all = [&](auto&... vecs) { (vecs.reserve(b), ...); };
  reserve_all(batch.user_id, batch.gender, batch.age_bucket,
              batch.spend_bucket, batch.item_id, batch.category, batch.brand,
              batch.price_bucket, batch.position, batch.hour,
              batch.time_period, batch.city, batch.geohash, batch.weekday,
              batch.cross_spend_price, batch.cross_age_category,
              batch.request_id);
  batch.seq_item.reserve(b * t);
  batch.seq_category.reserve(b * t);
  batch.seq_brand.reserve(b * t);
  batch.seq_time_period.reserve(b * t);
  batch.seq_city.reserve(b * t);
  batch.gt_prob.reserve(b);

  for (int64_t i = 0; i < b; ++i) {
    const Example& e = *examples[i];
    batch.user_id.push_back(e.user_id);
    batch.gender.push_back(e.gender);
    batch.age_bucket.push_back(e.age_bucket);
    batch.spend_bucket.push_back(e.spend_bucket);
    batch.user_dense.at(i, 0) = e.user_ctr;
    batch.user_dense.at(i, 1) = e.user_orders;
    batch.user_dense.at(i, 2) = e.user_clicks;

    batch.item_id.push_back(e.item_id);
    batch.category.push_back(e.category);
    batch.brand.push_back(e.brand);
    batch.price_bucket.push_back(e.price_bucket);
    batch.position.push_back(e.position);
    batch.item_dense.at(i, 0) = e.item_ctr;
    batch.item_dense.at(i, 1) = e.item_pop;
    batch.item_dense.at(i, 2) = e.shop_score;

    batch.hour.push_back(e.hour);
    batch.time_period.push_back(e.time_period);
    batch.city.push_back(e.city);
    batch.geohash.push_back(e.geohash);
    batch.weekday.push_back(e.weekday);

    batch.cross_spend_price.push_back(e.cross_spend_price);
    batch.cross_age_category.push_back(e.cross_age_category);

    int64_t valid = std::min<int64_t>(t, e.behaviors.size());
    for (int64_t j = 0; j < t; ++j) {
      if (j < valid) {
        const BehaviorEvent& ev = e.behaviors[j];
        batch.seq_item.push_back(ev.item_id);
        batch.seq_category.push_back(ev.category);
        batch.seq_brand.push_back(ev.brand);
        batch.seq_time_period.push_back(ev.time_period);
        batch.seq_city.push_back(ev.city);
        batch.seq_mask.at(i, j) = 1.0f;
        bool matches = (ev.time_period == e.time_period) &&
                       (ev.city == e.city);
        batch.seq_filter_mask.at(i, j) = matches ? 1.0f : 0.0f;
      } else {
        // Padding rows point at id 0; the mask removes their effect.
        batch.seq_item.push_back(0);
        batch.seq_category.push_back(0);
        batch.seq_brand.push_back(0);
        batch.seq_time_period.push_back(0);
        batch.seq_city.push_back(0);
      }
    }

    batch.labels[i] = e.label;
    batch.request_id.push_back(e.request_id);
    batch.gt_prob.push_back(e.gt_prob);
  }
  return batch;
}

Batcher::Batcher(std::vector<const Example*> examples, const Schema& schema,
                 int64_t batch_size, uint64_t shuffle_seed)
    : examples_(std::move(examples)),
      schema_(schema),
      batch_size_(batch_size),
      rng_(shuffle_seed) {
  BASM_CHECK_GT(batch_size_, 0);
  BASM_CHECK(!examples_.empty());
  Reset();
}

void Batcher::Reset() {
  order_ = rng_.Permutation(static_cast<int64_t>(examples_.size()));
  cursor_ = 0;
}

bool Batcher::Next(Batch* batch) {
  if (cursor_ >= static_cast<int64_t>(examples_.size())) return false;
  int64_t end = std::min<int64_t>(cursor_ + batch_size_,
                                  static_cast<int64_t>(examples_.size()));
  std::vector<const Example*> slice;
  slice.reserve(end - cursor_);
  for (int64_t i = cursor_; i < end; ++i) {
    slice.push_back(examples_[order_[i]]);
  }
  cursor_ = end;
  *batch = MakeBatch(slice, schema_);
  return true;
}

}  // namespace basm::data
