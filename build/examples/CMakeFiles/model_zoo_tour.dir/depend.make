# Empty dependencies file for model_zoo_tour.
# This may be replaced when dependencies are built.
