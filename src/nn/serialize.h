#ifndef BASM_NN_SERIALIZE_H_
#define BASM_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace basm::nn {

/// Writes every named parameter of `module` to a binary checkpoint. The
/// format is self-describing: a magic header, then per parameter its name,
/// shape and float32 payload. This is the hand-off artifact between offline
/// training and the serving stack (the paper's AOP -> RTP deployment step).
Status SaveParameters(const Module& module, const std::string& path);

/// Restores parameters by name into an identically-structured module.
/// Fails with InvalidArgument on name or shape mismatch, NotFound when the
/// file is missing, and Internal on a corrupt payload.
Status LoadParameters(Module& module, const std::string& path);

}  // namespace basm::nn

#endif  // BASM_NN_SERIALIZE_H_
