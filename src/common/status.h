#ifndef BASM_COMMON_STATUS_H_
#define BASM_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/logging.h"

namespace basm {

/// Error category for recoverable failures (I/O, parsing, configuration).
/// Programmer errors use BASM_CHECK instead and abort.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
  kCancelled,
};

/// Lightweight status object in the style of absl::Status / rocksdb::Status.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status Ok() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" form for logs and error reports.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error result, used on recoverable paths that produce a value.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    BASM_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    BASM_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T& value() & {
    BASM_CHECK(ok()) << status_.ToString();
    return value_;
  }
  T&& value() && {
    BASM_CHECK(ok()) << status_.ToString();
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace basm

#define BASM_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::basm::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (0)

#endif  // BASM_COMMON_STATUS_H_
