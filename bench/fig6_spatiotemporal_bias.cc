// Reproduces Fig 6: the spatiotemporal bias surface — CTR over (city, hour)
// cells. Shows both the planted ground-truth bias and the empirical CTR of
// generated traffic agreeing with it.
//
// Expected shape (paper): user click tendency varies jointly with time and
// location; no row or column is flat.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/ascii_chart.h"
#include "common/env.h"
#include "data/synth.h"

int main() {
  using namespace basm;
  data::SynthConfig config = data::SynthConfig::Eleme();
  if (basm::FastMode()) config = config.Fast();
  config.days = 7;
  config.test_day = 7;
  data::World world(config);
  data::Dataset ds = data::GenerateDataset(config);
  std::printf("[fig6] spatiotemporal bias over cities and hours\n\n");

  // Empirical CTR per (city, 3h-bucket) cell.
  const int kHourBuckets = 8;
  std::vector<std::vector<int64_t>> exposures(
      config.num_cities, std::vector<int64_t>(kHourBuckets, 0));
  std::vector<std::vector<int64_t>> clicks(
      config.num_cities, std::vector<int64_t>(kHourBuckets, 0));
  for (const auto& e : ds.examples) {
    int bucket = e.hour / 3;
    exposures[e.city][bucket]++;
    if (e.label > 0.5f) clicks[e.city][bucket]++;
  }
  std::vector<std::string> rows, cols;
  std::vector<std::vector<double>> ctr(config.num_cities,
                                       std::vector<double>(kHourBuckets));
  for (int64_t c = 0; c < config.num_cities; ++c) {
    rows.push_back("city" + std::to_string(c));
    for (int b = 0; b < kHourBuckets; ++b) {
      ctr[c][b] = exposures[c][b] > 20
                      ? static_cast<double>(clicks[c][b]) / exposures[c][b]
                      : 0.0;
    }
  }
  for (int b = 0; b < kHourBuckets; ++b) {
    cols.push_back("h" + std::to_string(3 * b) + "-" +
                   std::to_string(3 * b + 2));
  }
  std::printf("empirical CTR by (city, hour bucket):\n%s\n",
              analysis::Heatmap(rows, cols, ctr).c_str());

  // Planted bias surfaces for reference.
  std::vector<std::string> hour_labels;
  std::vector<double> hour_bias;
  for (int h = 0; h < 24; ++h) {
    hour_labels.push_back("h" + std::to_string(h));
    hour_bias.push_back(
        static_cast<double>(world.HourBias(h)) + 1.0);  // shift >= 0
  }
  std::printf("planted hour bias (log-odds, +1 shifted):\n%s\n",
              analysis::BarChart(hour_labels, hour_bias, 40).c_str());
  std::vector<std::string> city_labels;
  std::vector<double> city_bias;
  for (int64_t c = 0; c < config.num_cities; ++c) {
    city_labels.push_back("city" + std::to_string(c));
    city_bias.push_back(
        static_cast<double>(world.CityBias(static_cast<int32_t>(c))) + 1.5);
  }
  std::printf("planted city bias (log-odds, +1.5 shifted):\n%s\n",
              analysis::BarChart(city_labels, city_bias, 40).c_str());
  return 0;
}
