# Empty dependencies file for food_delivery_sim.
# This may be replaced when dependencies are built.
