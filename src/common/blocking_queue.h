#ifndef BASM_COMMON_BLOCKING_QUEUE_H_
#define BASM_COMMON_BLOCKING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/logging.h"

namespace basm {

/// Bounded multi-producer/multi-consumer queue with backpressure and
/// shutdown-drain semantics, the request buffer of the serving engine:
///
///  - TryPush rejects (returns false) when the queue is at capacity or has
///    been shut down, so overload turns into fast failures instead of
///    unbounded memory growth — the reject-on-full policy of a production
///    ranking frontend.
///  - Pop blocks until an item is available; after Shutdown() the remaining
///    items drain in FIFO order and further pops return nullopt, which lets
///    workers finish in-flight requests before exiting.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity) : capacity_(capacity) {
    BASM_CHECK_GT(capacity_, 0u);
  }

  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Non-blocking push; false when full or shut down. Takes an rvalue
  /// reference so a rejected item is NOT consumed — the caller keeps it and
  /// can fail the request it represents.
  bool TryPush(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking push; waits while full, returns false once shut down (the
  /// item is then left with the caller).
  bool Push(T&& item) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_full_.wait(lock,
                     [&] { return shutdown_ || items_.size() < capacity_; });
      if (shutdown_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; nullopt once shut down and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return shutdown_ || !items_.empty(); });
    return PopLocked();
  }

  /// Pop with a timeout; nullopt on timeout or shutdown-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> PopFor(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return shutdown_ || !items_.empty(); });
    return PopLocked();
  }

  /// Non-blocking pop; nullopt when empty.
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    return PopLocked();
  }

  /// Stops accepting pushes and wakes every waiter. Queued items remain
  /// poppable until the queue is empty (drain semantics).
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool shut_down() const {
    std::lock_guard<std::mutex> lock(mu_);
    return shutdown_;
  }

  size_t capacity() const { return capacity_; }

 private:
  /// Requires mu_ held. Pops the head if present; notifies a producer.
  std::optional<T> PopLocked() {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool shutdown_ = false;
};

}  // namespace basm

#endif  // BASM_COMMON_BLOCKING_QUEUE_H_
