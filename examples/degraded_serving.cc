// Graceful-degradation walk-through: the serving stack under a feature-
// store outage. A fault-tolerant pipeline (retry + backoff, circuit
// breaker, degrade-to-empty-window) serves three phases of closed-loop
// traffic: healthy, with the feature dependency killed mid-load (the
// breaker opens and slates keep rendering, degraded), and after the
// dependency recovers (the breaker closes and serving returns to normal).

#include <cstdio>

#include "common/circuit_breaker.h"
#include "common/fault.h"
#include "data/synth.h"
#include "models/model_zoo.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "serving/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

using namespace basm;

namespace {

void PrintPhase(const char* name, const runtime::LoadReport& report,
                const runtime::LatencySnapshot& window,
                const CircuitBreaker& breaker) {
  std::printf("\n== %s ==\n%s\n", name, report.ToString().c_str());
  std::printf("window: retries %lld, degraded %lld, breaker opens %lld\n",
              static_cast<long long>(window.retries),
              static_cast<long long>(window.degraded),
              static_cast<long long>(window.breaker_opens));
  CircuitBreaker::Stats stats = breaker.stats();
  std::printf("breaker: %s (opens %lld, short-circuits %lld, closes %lld)\n",
              CircuitBreaker::StateName(breaker.state()),
              static_cast<long long>(stats.opens),
              static_cast<long long>(stats.short_circuits),
              static_cast<long long>(stats.closes));
}

}  // namespace

int main() {
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 500;
  config.num_items = 400;
  config.num_cities = 4;
  data::World world(config);

  serving::FeatureServer features(world, world.config().seq_len, 7);
  serving::RecallIndex recall(world);
  auto model =
      models::CreateModel(models::ModelKind::kBasm, world.schema(), 21);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &features, &recall, model.get(),
                             /*recall_size=*/20, /*expose_k=*/5);

  // Arm the fault path: retries with backoff around the feature fetch, a
  // breaker that opens after 4 consecutive failures and probes every 10ms.
  FaultInjector injector(/*seed=*/42);
  features.SetFaultInjector(&injector);
  CircuitBreakerConfig breaker_config;
  breaker_config.failure_threshold = 4;
  breaker_config.open_micros = 10000;
  CircuitBreaker breaker(breaker_config);
  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 3;
  policy.retry.initial_backoff_micros = 100;
  policy.breaker = &breaker;
  pipeline.EnableFaultTolerance(policy);

  runtime::EngineConfig ec;
  ec.num_workers = 4;
  ec.max_batch_requests = 4;
  ec.max_wait_micros = 200;
  runtime::ServingEngine engine(&pipeline, ec);

  runtime::LoadConfig load;
  load.num_requests = 200;
  load.concurrency = 16;

  // Phase 1: the dependency is healthy — no retries, no degradation.
  {
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    PrintPhase("healthy", report, engine.IntervalStats(), breaker);
  }

  // Phase 2: kill the feature path entirely (every fetch fails). Slates
  // keep rendering from an empty behavior window; after a few failures
  // the breaker opens and sheds the doomed fetches outright.
  {
    FaultSiteConfig outage;
    outage.error_probability = 1.0;
    outage.error_message = "feature store unreachable";
    injector.Configure(serving::kFeatureFetchFaultSite, outage);
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    PrintPhase("feature store down", report, engine.IntervalStats(),
               breaker);
  }

  // Phase 3: the dependency comes back. Half-open probes succeed, the
  // breaker closes, and serving returns to the full-feature path.
  {
    injector.Configure(serving::kFeatureFetchFaultSite, FaultSiteConfig{});
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    PrintPhase("recovered", report, engine.IntervalStats(), breaker);
  }

  std::printf("\n== totals ==\n%s", engine.Stats().ToString().c_str());
  return 0;
}
