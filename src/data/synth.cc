#include "data/synth.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/logging.h"
#include "data/geohash.h"

namespace basm::data {

namespace {

float SigmoidF(float x) { return 1.0f / (1.0f + std::exp(-x)); }

/// Time-period multiplier in [-1, 1]: positive during the active meal
/// periods (lunch/dinner), negative during breakfast/night, neutral at tea.
float TpSign(TimePeriod tp) {
  switch (tp) {
    case TimePeriod::kLunch:
    case TimePeriod::kDinner:
      return 1.0f;
    case TimePeriod::kBreakfast:
      return -0.7f;
    case TimePeriod::kNight:
      return -1.0f;
    case TimePeriod::kAfternoonTea:
      return 0.1f;
  }
  return 0.0f;
}

}  // namespace

SynthConfig SynthConfig::Eleme() { return SynthConfig{}; }

SynthConfig SynthConfig::Public() {
  SynthConfig c;
  c.name = "public-synth";
  c.seed = 20221131;
  c.num_users = 5000;
  c.num_items = 4000;
  c.num_cities = 8;
  c.num_categories = 24;
  c.num_brands = 60;
  c.requests_per_day = 900;
  c.candidates_per_request = 8;
  c.seq_len = 10;
  // Sparse clicks and weaker planted structure: the public dataset regime
  // (CTR ~1.8%, lower attainable AUC).
  c.base_logit = -5.2f;
  c.affinity_scale = 0.8f;
  c.seq_scale = 0.5f;
  c.price_scale = 0.4f;
  c.pop_scale = 0.45f;
  c.noise_scale = 0.9f;
  c.tp_modulation = 0.5f;
  c.city_modulation = 0.4f;
  return c;
}

SynthConfig SynthConfig::Fast() const {
  SynthConfig c = *this;
  c.requests_per_day = std::max<int64_t>(60, c.requests_per_day / 10);
  c.num_users = std::max<int64_t>(400, c.num_users / 10);
  c.num_items = std::max<int64_t>(300, c.num_items / 5);
  return c;
}

World::World(const SynthConfig& config) : config_(config) {
  Rng root(config_.seed);

  schema_.num_users = config_.num_users;
  schema_.num_items = config_.num_items;
  schema_.num_cities = config_.num_cities;
  schema_.num_categories = config_.num_categories;
  schema_.num_brands = config_.num_brands;
  schema_.seq_len = config_.seq_len;
  schema_.num_cross_spend_price =
      schema_.num_spend_buckets * schema_.num_price_buckets;
  schema_.num_cross_age_category =
      schema_.num_age_buckets * config_.num_categories;

  // -- City layout: activity tiers, exposure shares and CTR biases -------
  Rng city_rng = root.Fork(1);
  city_exposure_.resize(config_.num_cities);
  city_bias_.resize(config_.num_cities);
  city_activity_.resize(config_.num_cities);
  ZipfTable city_zipf(config_.num_cities, 1.0);
  for (int64_t c = 0; c < config_.num_cities; ++c) {
    city_exposure_[c] = city_zipf.Probability(c);
    city_activity_[c] =
        1.0f - static_cast<float>(c) / static_cast<float>(config_.num_cities);
    // CTR bias alternates around 0 so cities genuinely differ (Fig 2b).
    city_bias_[c] = config_.city_bias_scale *
                    static_cast<float>(city_rng.Normal(0.0, 1.0)) * 0.8f;
  }

  // -- Hour curve: meal-time peaked exposure, CTR higher at peaks --------
  for (int h = 0; h < 24; ++h) {
    double w = 0.03;
    if (h >= 7 && h <= 9) w = 0.45;          // breakfast
    else if (h >= 10 && h <= 13) w = 1.0;    // lunch peak
    else if (h >= 14 && h <= 16) w = 0.3;    // afternoon tea
    else if (h >= 17 && h <= 20) w = 0.85;   // dinner peak
    else if (h >= 21 && h <= 23) w = 0.18;   // night
    hour_exposure_[h] = w;
  }
  hour_bias_.resize(24);
  Rng hour_rng = root.Fork(2);
  for (int h = 0; h < 24; ++h) {
    float tp_component = TpSign(TimePeriodOfHour(h));
    hour_bias_[h] = config_.hour_bias_scale *
                    (0.6f * tp_component +
                     0.4f * static_cast<float>(hour_rng.Normal(0.0, 1.0)));
  }

  // -- Position bias (monotone decreasing with rank slot) ----------------
  position_bias_.resize(schema_.num_positions);
  for (int64_t p = 0; p < schema_.num_positions; ++p) {
    position_bias_[p] =
        config_.position_scale * (1.0f - 2.0f * static_cast<float>(p) /
                                            static_cast<float>(
                                                schema_.num_positions - 1));
  }

  // -- Users ---------------------------------------------------------------
  Rng user_rng = root.Fork(3);
  users_.resize(config_.num_users);
  user_sample_weights_.resize(config_.num_users);
  for (int64_t u = 0; u < config_.num_users; ++u) {
    UserProfile& up = users_[u];
    up.city = static_cast<int32_t>(user_rng.Categorical(
        std::vector<double>(city_exposure_.begin(), city_exposure_.end())));
    up.gender = static_cast<int32_t>(user_rng.NextUint64(3));
    up.age_bucket = static_cast<int32_t>(user_rng.NextUint64(8));
    up.spend_bucket = static_cast<int32_t>(user_rng.NextUint64(5));
    up.taste =
        static_cast<int32_t>(user_rng.NextUint64(config_.num_taste_clusters));
    float city_act = city_activity_[up.city];
    up.activity = std::clamp(
        0.55f * city_act + 0.45f * static_cast<float>(user_rng.Uniform()),
        0.02f, 1.0f);
    // City c occupies a 1-degree square around (c, c); entities scatter
    // inside it so geohash cells within a city are coherent.
    up.lat = up.city + user_rng.Uniform(-0.4, 0.4);
    up.lon = up.city + user_rng.Uniform(-0.4, 0.4);
    uint64_t cell = Geohash::Encode(up.lat, up.lon, config_.geohash_bits);
    up.geohash = static_cast<int32_t>(cell % (1 << 14));
    up.ctr_stat =
        SigmoidF(-2.0f + 2.5f * up.activity +
                 0.3f * static_cast<float>(user_rng.Normal(0.0, 1.0)));
    up.orders_stat = std::clamp(
        up.activity + 0.15f * static_cast<float>(user_rng.Normal(0.0, 1.0)),
        0.0f, 1.5f);
    up.clicks_stat = std::clamp(
        0.8f * up.activity +
            0.2f * static_cast<float>(user_rng.Normal(0.0, 1.0)),
        0.0f, 1.5f);
    user_sample_weights_[u] = 0.2 + up.activity;
  }

  // -- Items ---------------------------------------------------------------
  Rng item_rng = root.Fork(4);
  items_.resize(config_.num_items);
  city_items_.assign(config_.num_cities, {});
  ZipfTable pop_zipf(config_.num_items, 0.8);
  for (int64_t i = 0; i < config_.num_items; ++i) {
    ItemProfile& ip = items_[i];
    ip.city = static_cast<int32_t>(item_rng.Categorical(
        std::vector<double>(city_exposure_.begin(), city_exposure_.end())));
    ip.category =
        static_cast<int32_t>(item_rng.NextUint64(config_.num_categories));
    ip.brand = static_cast<int32_t>(item_rng.NextUint64(config_.num_brands));
    ip.price_bucket =
        static_cast<int32_t>(item_rng.NextUint64(schema_.num_price_buckets));
    // Popularity follows a Zipf-like rank with noise.
    double base_pop = pop_zipf.Probability(i % config_.num_items) *
                      static_cast<double>(config_.num_items);
    ip.popularity = std::clamp(
        static_cast<float>(0.3 * base_pop + 0.5 * item_rng.Uniform()), 0.0f,
        1.0f);
    ip.lat = ip.city + item_rng.Uniform(-0.4, 0.4);
    ip.lon = ip.city + item_rng.Uniform(-0.4, 0.4);
    uint64_t cell = Geohash::Encode(ip.lat, ip.lon, config_.geohash_bits);
    ip.geohash = static_cast<int32_t>(cell % (1 << 14));
    ip.ctr_stat =
        SigmoidF(-2.2f + 1.8f * ip.popularity +
                 0.2f * static_cast<float>(item_rng.Normal(0.0, 1.0)));
    ip.shop_score = static_cast<float>(item_rng.Uniform(0.55, 1.0));
    city_items_[ip.city].push_back(static_cast<int32_t>(i));
  }
  // Every city needs a non-empty pool for recall.
  for (int64_t c = 0; c < config_.num_cities; ++c) {
    if (city_items_[c].empty()) {
      city_items_[c].push_back(
          static_cast<int32_t>(item_rng.NextUint64(config_.num_items)));
    }
  }

  schema_.num_geohash = 1 << 14;
}

bool World::IsPreferredCategory(int32_t taste, TimePeriod tp,
                                int32_t category) const {
  // Three preferred categories per (taste, time-period) cell; deterministic
  // so it is a stable learnable structure.
  int32_t tp_i = static_cast<int32_t>(tp);
  for (int32_t k = 0; k < 3; ++k) {
    int32_t pref = static_cast<int32_t>(
        (taste * 7 + tp_i * 3 + k * 11) %
        static_cast<int32_t>(config_.num_categories));
    if (pref == category) return true;
  }
  return false;
}

float World::UserSideWeight(TimePeriod tp, int32_t city) const {
  // User-side effects strengthen in active periods and active cities.
  float tp_term = 1.0f + config_.tp_modulation * TpSign(tp);
  float city_term =
      1.0f + config_.city_modulation * (city_activity_[city] - 0.5f) * 2.0f;
  return tp_term * city_term;
}

float World::ItemSideWeight(TimePeriod tp, int32_t city) const {
  // Item-side (popularity/context) effects move inversely.
  float tp_term = 1.0f - 0.8f * config_.tp_modulation * TpSign(tp);
  float city_term =
      1.0f - 0.8f * config_.city_modulation * (city_activity_[city] - 0.5f) *
                 2.0f;
  return tp_term * city_term;
}

float World::ClickLogit(int32_t user_id, int32_t item_id, int32_t hour,
                        int32_t position, int32_t context_city,
                        const std::vector<BehaviorEvent>& recent_behaviors,
                        float noise) const {
  const UserProfile& u = users_[user_id];
  const ItemProfile& it = items_[item_id];
  TimePeriod tp = TimePeriodOfHour(hour);

  float w_user = UserSideWeight(tp, context_city);
  float w_item = ItemSideWeight(tp, context_city);

  // User-taste affinity with the candidate's category.
  float affinity =
      IsPreferredCategory(u.taste, tp, it.category) ? 1.0f : -0.25f;

  // Sequence match: fraction of recent behaviors sharing the candidate's
  // category (time-period-matching behaviors count double — the structure
  // StSTL's filtered behaviors exploit).
  float seq_match = 0.0f;
  if (!recent_behaviors.empty()) {
    float num = 0.0f, den = 0.0f;
    for (const BehaviorEvent& b : recent_behaviors) {
      float w = (b.time_period == static_cast<int32_t>(tp)) ? 2.0f : 1.0f;
      den += w;
      if (b.category == it.category) num += w;
    }
    seq_match = num / std::max(den, 1.0f);
  }

  // Price fit: distance between the user's spend tier and the item's price
  // tier (both on a [0,1] scale).
  float spend = static_cast<float>(u.spend_bucket) /
                static_cast<float>(schema_.num_spend_buckets - 1);
  float price = static_cast<float>(it.price_bucket) /
                static_cast<float>(schema_.num_price_buckets - 1);
  float price_fit = 1.0f - 2.0f * std::abs(spend - price);

  // Sign-flipping taste drift: at active meal periods users lean toward
  // pricier food, at breakfast/night toward cheaper. The effect averages to
  // ~zero over a day, so a context-blind parameter set cannot exploit it —
  // the cleanest separator between static and adaptive models.
  float tp_price_dir = config_.tp_modulation * TpSign(tp);

  float logit =
      config_.base_logit + hour_bias_[hour] + city_bias_[context_city] +
      w_user * (config_.affinity_scale * affinity +
                config_.seq_scale * seq_match) +
      w_item * (config_.pop_scale * (2.0f * it.popularity - 1.0f) +
                config_.price_scale * price_fit) +
      config_.price_scale * tp_price_dir * (2.0f * price - 1.0f) +
      position_bias_[position] + config_.noise_scale * noise;
  return logit;
}

float World::ClickProbability(int32_t user_id, int32_t item_id, int32_t hour,
                              int32_t position, int32_t context_city,
                              const std::vector<BehaviorEvent>& behaviors,
                              float noise) const {
  return SigmoidF(ClickLogit(user_id, item_id, hour, position, context_city,
                             behaviors, noise));
}

std::vector<BehaviorEvent> World::SampleHistory(int32_t user_id, int64_t len,
                                                Rng& rng) const {
  const UserProfile& u = users_[user_id];
  std::vector<BehaviorEvent> history;
  history.reserve(len);
  const std::vector<int32_t>& pool = city_items_[u.city];
  for (int64_t k = 0; k < len; ++k) {
    int32_t hour = SampleHour(rng);
    TimePeriod tp = TimePeriodOfHour(hour);
    // Users mostly clicked items matching their planted preference.
    int32_t item_id = -1;
    for (int attempt = 0; attempt < 12; ++attempt) {
      int32_t cand = pool[rng.NextUint64(pool.size())];
      if (IsPreferredCategory(u.taste, tp, items_[cand].category) ||
          attempt == 11 || rng.Bernoulli(0.15)) {
        item_id = cand;
        break;
      }
    }
    const ItemProfile& it = items_[item_id];
    BehaviorEvent ev;
    ev.item_id = item_id;
    ev.category = it.category;
    ev.brand = it.brand;
    ev.hour = hour;
    ev.time_period = static_cast<int32_t>(tp);
    ev.city = it.city;
    ev.geohash = it.geohash;
    history.push_back(ev);
  }
  return history;
}

int32_t World::SampleHour(Rng& rng) const {
  return static_cast<int32_t>(rng.Categorical(
      std::vector<double>(hour_exposure_.begin(), hour_exposure_.end())));
}

int32_t World::SampleUser(Rng& rng) const {
  return static_cast<int32_t>(rng.Categorical(user_sample_weights_));
}

std::vector<int32_t> World::SampleCandidates(int32_t user_id, int32_t city,
                                             TimePeriod tp, int32_t k,
                                             Rng& rng) const {
  const UserProfile& u = users_[user_id];
  const std::vector<int32_t>& pool = city_items_[city];
  std::vector<int32_t> out;
  std::unordered_set<int32_t> seen;
  // Recall mimics production: ~half of the slate matches the user's
  // preferred categories when possible, the rest is popularity-random.
  int32_t preferred_quota = k / 2;
  int guard = 0;
  while (static_cast<int32_t>(out.size()) < k &&
         guard < 60 * k) {
    ++guard;
    int32_t cand = pool[rng.NextUint64(pool.size())];
    if (seen.count(cand) > 0) continue;
    bool pref = IsPreferredCategory(u.taste, tp, items_[cand].category);
    if (static_cast<int32_t>(out.size()) < preferred_quota && !pref &&
        guard < 40 * k) {
      continue;
    }
    seen.insert(cand);
    out.push_back(cand);
  }
  // Pad with repeats-allowed picks if the pool was too small.
  while (static_cast<int32_t>(out.size()) < k) {
    out.push_back(pool[rng.NextUint64(pool.size())]);
  }
  return out;
}

Example World::MakeExample(int32_t user_id, int32_t item_id, int32_t hour,
                           int32_t weekday, int32_t position,
                           int32_t context_city, int32_t day,
                           int32_t request_id,
                           const std::vector<BehaviorEvent>& behaviors,
                           Rng& rng) const {
  const UserProfile& u = users_[user_id];
  const ItemProfile& it = items_[item_id];
  TimePeriod tp = TimePeriodOfHour(hour);

  Example e;
  e.user_id = user_id;
  e.gender = u.gender;
  e.age_bucket = u.age_bucket;
  e.spend_bucket = u.spend_bucket;
  e.user_ctr = u.ctr_stat;
  e.user_orders = u.orders_stat;
  e.user_clicks = u.clicks_stat;

  e.item_id = item_id;
  e.category = it.category;
  e.brand = it.brand;
  e.price_bucket = it.price_bucket;
  e.position = position;
  e.item_ctr = it.ctr_stat;
  e.item_pop = it.popularity;
  e.shop_score = it.shop_score;

  e.hour = hour;
  e.time_period = static_cast<int32_t>(tp);
  e.city = context_city;
  e.geohash = u.geohash;
  e.weekday = weekday;

  e.cross_spend_price = static_cast<int32_t>(
      u.spend_bucket * schema_.num_price_buckets + it.price_bucket);
  e.cross_age_category = static_cast<int32_t>(
      u.age_bucket * config_.num_categories + it.category);

  e.behaviors = behaviors;
  if (static_cast<int64_t>(e.behaviors.size()) > config_.seq_len) {
    e.behaviors.resize(config_.seq_len);
  }

  e.day = day;
  e.request_id = request_id;

  float noise = static_cast<float>(rng.Normal(0.0, 1.0));
  e.gt_prob = ClickProbability(user_id, item_id, hour, position, context_city,
                               e.behaviors, noise);
  e.label = rng.Bernoulli(e.gt_prob) ? 1.0f : 0.0f;
  return e;
}

Dataset GenerateDataset(const SynthConfig& config) {
  World world(config);
  Rng rng(config.seed ^ 0xDA7A5E7ULL);

  Dataset ds;
  ds.schema = world.schema();
  ds.test_day = config.test_day;
  ds.name = config.name;
  ds.examples.reserve(config.days * config.requests_per_day *
                      config.candidates_per_request);

  int32_t request_id = 0;
  for (int32_t day = 0; day < config.days; ++day) {
    int32_t weekday = day % 7;
    for (int64_t r = 0; r < config.requests_per_day; ++r) {
      int32_t user_id = world.SampleUser(rng);
      const World::UserProfile& u = world.user(user_id);
      int32_t hour = world.SampleHour(rng);
      TimePeriod tp = TimePeriodOfHour(hour);
      int32_t city = u.city;
      if (rng.Bernoulli(config.travel_prob)) {
        city = static_cast<int32_t>(rng.NextUint64(config.num_cities));
      }
      std::vector<BehaviorEvent> history =
          world.SampleHistory(user_id, config.seq_len, rng);
      std::vector<int32_t> candidates = world.SampleCandidates(
          user_id, city, tp, config.candidates_per_request, rng);
      for (int32_t pos = 0; pos < static_cast<int32_t>(candidates.size());
           ++pos) {
        ds.examples.push_back(world.MakeExample(
            user_id, candidates[pos], hour, weekday, pos, city, day,
            request_id, history, rng));
      }
      ++request_id;
    }
  }
  return ds;
}

}  // namespace basm::data
