#ifndef BASM_NET_ROUTER_H_
#define BASM_NET_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/status.h"

namespace basm::net {

struct RouterConfig {
  /// Ring points per replica. More virtual nodes flatten the shard-size
  /// distribution (64 keeps the max/min user share within ~2x).
  int32_t virtual_nodes = 64;
  /// Salt of the ring and user hashes; changing it reshuffles every shard,
  /// so it is part of the deployment's identity, not a tuning knob.
  uint64_t hash_seed = 0xBA53ULL;
  /// Per-replica breaker: consecutive engine failures trip the replica out
  /// of the ring walk until its open window elapses and probes succeed.
  CircuitBreakerConfig breaker;
};

/// Counters of one router since construction (all monotonic).
struct RouterStats {
  int64_t routed = 0;      ///< successful Route() calls
  int64_t failovers = 0;   ///< routed away from the home replica
  int64_t unroutable = 0;  ///< every replica down or short-circuited
  std::vector<int64_t> per_replica;  ///< routed count per replica
};

/// Consistent-hash user sharding across N serving replicas, the routing
/// brain of the RPC frontend. Each replica owns `virtual_nodes` points on a
/// hash ring; a user maps to the first point at or after hash(user), so
/// every user is pinned to one home replica (cache locality, per-user
/// feature affinity) and adding or removing a replica only re-homes the
/// users of the affected arc — not the whole population.
///
/// Health is folded into the walk: a replica that is marked down (admin
/// kill) or whose circuit breaker refuses admission is skipped, and the
/// user's requests fail over to the next distinct replica on the ring.
/// Users of healthy replicas keep their pins during a failover — only the
/// dead replica's arc moves, which is the property the end-to-end test
/// asserts. Thread-safe: Route/Report are lock-free reads over the
/// immutable ring plus the breaker's own mutex.
class Router {
 public:
  Router(int32_t num_replicas, RouterConfig config);

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// The replica this user hashes to when every replica is healthy — the
  /// sharding contract, independent of current health.
  int32_t HomeReplica(int32_t user_id) const;

  /// Health-aware pick for one request. Walks the ring from the user's
  /// point, skipping down/short-circuited replicas; UNAVAILABLE when no
  /// replica is admissible.
  [[nodiscard]] StatusOr<int32_t> Route(int32_t user_id);

  /// Outcome report for a routed call: feeds the replica's breaker.
  void ReportSuccess(int32_t replica);
  /// Returns true when this failure tripped the replica's breaker open.
  bool ReportFailure(int32_t replica);

  /// Administrative kill switch, independent of the breaker (the example
  /// uses it; the chaos path trips breakers organically).
  void MarkDown(int32_t replica);
  void MarkUp(int32_t replica);
  bool IsDown(int32_t replica) const;

  CircuitBreaker::Stats BreakerStats(int32_t replica) const;
  RouterStats stats() const;

  int32_t num_replicas() const {
    return static_cast<int32_t>(replicas_.size());
  }

  /// The user hash (SplitMix64 finalizer over user_id and the seed);
  /// exposed so tests can reason about ring placement.
  static uint64_t HashKey(uint64_t key, uint64_t seed);

 private:
  struct Replica {
    explicit Replica(const CircuitBreakerConfig& config) : breaker(config) {}
    CircuitBreaker breaker;
    std::atomic<bool> down{false};
    std::atomic<int64_t> routed{0};
  };

  /// Ring point: hash position -> replica index, sorted by hash.
  struct Point {
    uint64_t hash;
    int32_t replica;
  };

  /// First distinct replicas on the ring at or after hash(user), in walk
  /// order (size == num_replicas).
  void WalkOrder(int32_t user_id, std::vector<int32_t>* order) const;

  const RouterConfig config_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::vector<Point> ring_;  ///< immutable after construction
  std::atomic<int64_t> routed_{0};
  std::atomic<int64_t> failovers_{0};
  std::atomic<int64_t> unroutable_{0};
};

}  // namespace basm::net

#endif  // BASM_NET_ROUTER_H_
