#ifndef BASM_COMMON_ENV_H_
#define BASM_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace basm {

/// Reads an integer environment variable, returning `fallback` when unset or
/// unparsable. Used by benches to scale workloads (BASM_FAST, BASM_SEED).
int64_t EnvInt(const char* name, int64_t fallback);

/// Reads a string environment variable with a fallback.
std::string EnvString(const char* name, const std::string& fallback);

/// True when BASM_FAST is set to a nonzero value: benches shrink their
/// workloads roughly 10x for smoke runs.
bool FastMode();

}  // namespace basm

#endif  // BASM_COMMON_ENV_H_
