#ifndef BASM_MODELS_DIN_H_
#define BASM_MODELS_DIN_H_

#include <memory>

#include "models/ctr_model.h"
#include "models/feature_encoder.h"
#include "nn/attention.h"
#include "nn/mlp.h"

namespace basm::models {

/// DIN (Zhou et al. 2018): target attention extracts the candidate-relevant
/// part of the behavior sequence; the pooled interest joins the other fields
/// in an MLP tower.
class Din : public CtrModel {
 public:
  Din(const data::Schema& schema, int64_t embed_dim,
      std::vector<int64_t> hidden, Rng& rng);

  autograd::Variable ForwardLogits(const data::Batch& batch) override;
  autograd::Variable FinalRepresentation(const data::Batch& batch) override;
  std::string name() const override { return "DIN"; }

 private:
  autograd::Variable Hidden(const data::Batch& batch);

  std::unique_ptr<FeatureEncoder> encoder_;
  std::unique_ptr<nn::TargetAttention> attention_;
  std::unique_ptr<nn::Mlp> tower_;     // concat -> last hidden
  std::unique_ptr<nn::Linear> out_;    // last hidden -> 1
};

}  // namespace basm::models

#endif  // BASM_MODELS_DIN_H_
