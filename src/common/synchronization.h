#ifndef BASM_COMMON_SYNCHRONIZATION_H_
#define BASM_COMMON_SYNCHRONIZATION_H_

#include <chrono>
#include <condition_variable>  // basm-lint: allow(raw-mutex)
#include <mutex>               // basm-lint: allow(raw-mutex)

namespace basm {

// ---------------------------------------------------------------------------
// Clang thread-safety annotations (-Wthread-safety). Under Clang these make
// the locking rules machine-checked at compile time: every shared field
// declares the mutex that guards it (BASM_GUARDED_BY), every *Locked()
// helper declares the mutex it expects held (BASM_REQUIRES), and the
// analysis rejects any access path that does not prove the lock. Under
// other compilers they expand to nothing. The project convention (enforced
// by tools/basm_lint) is that all locking goes through basm::Mutex /
// MutexLock / CondVar below, never raw std::mutex, so the annotations can
// never be bypassed by an unannotated lock type.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define BASM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BASM_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex" names it in diagnostics).
#define BASM_CAPABILITY(x) BASM_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose constructor acquires and destructor releases.
#define BASM_SCOPED_CAPABILITY BASM_THREAD_ANNOTATION(scoped_lockable)
/// Field may only be read/written with the given mutex held.
#define BASM_GUARDED_BY(x) BASM_THREAD_ANNOTATION(guarded_by(x))
/// Pointee may only be accessed with the given mutex held.
#define BASM_PT_GUARDED_BY(x) BASM_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function may only be called with the given mutex(es) held.
#define BASM_REQUIRES(...) \
  BASM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the given mutex(es) and does not release them.
#define BASM_ACQUIRE(...) \
  BASM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the given mutex(es).
#define BASM_RELEASE(...) \
  BASM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the mutex(es) when it returns `ret`.
#define BASM_TRY_ACQUIRE(ret, ...) \
  BASM_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))
/// Function may only be called with the given mutex(es) NOT held
/// (deadlock-prevention: public entry points that lock internally).
#define BASM_EXCLUDES(...) BASM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Runtime assertion to the analysis that the capability is held.
#define BASM_ASSERT_CAPABILITY(x) \
  BASM_THREAD_ANNOTATION(assert_capability(x))
/// Annotates a function returning a reference to the given capability.
#define BASM_RETURN_CAPABILITY(x) BASM_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: disables analysis inside one function (init/teardown
/// paths that are single-threaded by construction).
#define BASM_NO_THREAD_SAFETY_ANALYSIS \
  BASM_THREAD_ANNOTATION(no_thread_safety_analysis)

class CondVar;

/// Annotated exclusive mutex — the only lock type the project uses (see
/// tools/basm_lint rule `raw-mutex`). A thin wrapper over std::mutex whose
/// Lock/Unlock carry acquire/release attributes, so Clang's thread-safety
/// analysis can track it.
class BASM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() BASM_ACQUIRE() { mu_.lock(); }
  void Unlock() BASM_RELEASE() { mu_.unlock(); }
  bool TryLock() BASM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis (not the runtime) that this mutex is held — for
  /// callbacks invoked under a lock the analysis cannot see across.
  void AssertHeld() const BASM_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for basm::Mutex. Scoped-capability annotated: the analysis
/// treats construction as acquiring `mu` and scope exit as releasing it.
class BASM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) BASM_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() BASM_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with basm::Mutex. Wait/WaitFor/WaitUntil
/// require the mutex held (the annotation contract: the lock is held on
/// entry and again on return, even though the wait releases it inside).
/// There is no predicate overload on purpose — callers loop themselves,
/// which keeps the lost-wakeup reasoning local to the call site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (or spuriously woken); `mu` must be held.
  void Wait(Mutex& mu) BASM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Waits until `deadline`; false when the deadline passed without a
  /// notification (callers re-check their predicate either way).
  template <typename Clock, typename Duration>
  bool WaitUntil(Mutex& mu,
                 std::chrono::time_point<Clock, Duration> deadline)
      BASM_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status != std::cv_status::timeout;
  }

  /// Waits at most `timeout`; false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> timeout)
      BASM_REQUIRES(mu) {
    return WaitUntil(mu, std::chrono::steady_clock::now() + timeout);
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace basm

#endif  // BASM_COMMON_SYNCHRONIZATION_H_
