#include "net/event_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/logging.h"

namespace basm::net {

namespace {

/// Events per epoll_wait call; more ready descriptors simply surface on the
/// next iteration (level-triggered).
constexpr int kMaxEvents = 64;

/// Wait bound: even without a wakeup the loop re-checks quit_ at this
/// cadence, which bounds Stop() latency if the eventfd write were lost.
constexpr int kEpollTimeoutMs = 100;

}  // namespace

EventLoop::EventLoop() = default;

EventLoop::~EventLoop() { Stop(); }

Status EventLoop::Start() {
  MutexLock lock(&lifecycle_mu_);
  BASM_CHECK(!started_) << "EventLoop started twice";
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::Internal(std::string("epoll_create1: ") +
                            std::strerror(errno));
  }
  // Non-blocking: DrainWakeup never parks, and a full eventfd counter on
  // the post side simply means a wakeup is already pending.
  wakeup_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    return Status::Internal(std::string("eventfd: ") + std::strerror(errno));
  }
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    ::close(epoll_fd_);
    ::close(wakeup_fd_);
    epoll_fd_ = wakeup_fd_ = -1;
    return Status::Internal(std::string("epoll_ctl(wakeup): ") +
                            std::strerror(errno));
  }
  accepting_tasks_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  started_ = true;
  return Status::Ok();
}

void EventLoop::Stop() {
  MutexLock lock(&lifecycle_mu_);
  if (!started_ || stopped_) return;
  quit_.store(true, std::memory_order_release);
  // One last wakeup so the loop notices quit_ without waiting out the
  // epoll timeout. Posted directly (not via PostTask: accepting_tasks_ is
  // about to flip) — the eventfd write is async-signal-thin and never
  // blocks on EFD_NONBLOCK.
  uint64_t one = 1;
  ssize_t ignored = ::write(wakeup_fd_, &one, sizeof(one));  // basm-analyze: allow(blocking-under-lock)
  (void)ignored;
  if (thread_.joinable()) thread_.join();  // basm-analyze: allow(blocking-under-lock)
  accepting_tasks_.store(false, std::memory_order_release);
  ::close(epoll_fd_);
  ::close(wakeup_fd_);
  epoll_fd_ = wakeup_fd_ = -1;
  handlers_.clear();
  stopped_ = true;
}

Status EventLoop::AddFd(int fd, uint32_t events, FdHandler handler) {
  BASM_CHECK(InLoopThread()) << "AddFd off the loop thread";
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(add): ") +
                            std::strerror(errno));
  }
  handlers_[fd] = std::make_shared<FdHandler>(std::move(handler));
  return Status::Ok();
}

Status EventLoop::UpdateFd(int fd, uint32_t events) {
  BASM_CHECK(InLoopThread()) << "UpdateFd off the loop thread";
  struct epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = events;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Internal(std::string("epoll_ctl(mod): ") +
                            std::strerror(errno));
  }
  return Status::Ok();
}

void EventLoop::RemoveFd(int fd) {
  BASM_CHECK(InLoopThread()) << "RemoveFd off the loop thread";
  // The kernel drops the registration on close anyway; the explicit DEL
  // keeps the table exact while the descriptor is still open.
  (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  handlers_.erase(fd);
}

void EventLoop::PostTask(Task task) {
  if (!accepting_tasks_.load(std::memory_order_acquire)) return;
  {
    MutexLock lock(&task_mu_);
    tasks_.push_back(std::move(task));
  }
  // Wake after dropping the lock: the loop thread's DrainTasks takes the
  // same mutex, and the eventfd write itself must never run under it. The
  // eventfd is EFD_NONBLOCK, so this write cannot park even when called
  // from the loop's own thread (a full counter just means a wakeup is
  // already pending).
  uint64_t one = 1;
  ssize_t ignored = ::write(wakeup_fd_, &one, sizeof(one));  // basm-analyze: allow(blocking-in-event-loop)
  (void)ignored;
}

void EventLoop::DrainWakeup() {
  // EFD_NONBLOCK read: consumes the coalesced wakeup counter; EAGAIN means
  // another iteration already drained it.
  uint64_t count = 0;
  ssize_t ignored = ::read(wakeup_fd_, &count, sizeof(count));  // basm-analyze: allow(blocking-in-event-loop)
  (void)ignored;
}

void EventLoop::DrainTasks() {
  std::vector<Task> batch;
  {
    MutexLock lock(&task_mu_);
    batch.swap(tasks_);
  }
  for (Task& task : batch) task();
}

void EventLoop::Run() {
  loop_thread_id_.store(std::this_thread::get_id());
  struct epoll_event events[kMaxEvents];
  while (!quit_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, kEpollTimeoutMs);
    if (n < 0) {
      if (errno == EINTR) continue;
      BASM_LOG(Warning) << "epoll_wait: " << std::strerror(errno);
      return;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wakeup_fd_) {
        DrainWakeup();
        continue;
      }
      auto it = handlers_.find(fd);
      if (it == handlers_.end()) continue;  // removed earlier this iteration
      // The shared_ptr copy keeps the handler alive even if its own body
      // calls RemoveFd(fd).
      std::shared_ptr<FdHandler> handler = it->second;
      (*handler)(events[i].events);
    }
    DrainTasks();
  }
  // Quit: run what was posted before the flag flipped, so completions
  // queued by scoring workers are never silently dropped mid-drain.
  DrainTasks();
}

}  // namespace basm::net
