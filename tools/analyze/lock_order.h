#ifndef BASM_TOOLS_ANALYZE_LOCK_ORDER_H_
#define BASM_TOOLS_ANALYZE_LOCK_ORDER_H_

#include <vector>

#include "tools/analyze/model.h"
#include "tools/analyze/scanner.h"
#include "tools/lint.h"

namespace basm::analyze {

/// Pass `lock-order`: builds the cross-class lock acquisition graph (an
/// edge A -> B means B is acquired while A is held, either by a nested
/// MutexLock or by calling a method that acquires B) and reports
///  - edges missing from the documented hierarchy (DESIGN §10 / §15), and
///  - any cycle in the observed graph, with a witness path.
std::vector<lint::Finding> RunLockOrder(const std::vector<FileScan>& files,
                                        const ProgramModel& model);

}  // namespace basm::analyze

#endif  // BASM_TOOLS_ANALYZE_LOCK_ORDER_H_
