# Empty dependencies file for fig8_alpha_timeperiod.
# This may be replaced when dependencies are built.
