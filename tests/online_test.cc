#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/batch.h"
#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "gtest/gtest.h"
#include "core/model_zoo.h"
#include "nn/mlp.h"
#include "nn/serialize.h"
#include "online/model_registry.h"
#include "online/model_slot.h"
#include "online/online_trainer.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace basm::online {
namespace {

/// A valid checkpoint image with weights seeded by `seed`.
std::string TestImage(uint64_t seed) {
  Rng rng(seed);
  nn::Mlp mlp({4, 8, 2}, nn::Activation::kRelu, rng);
  return nn::SerializeParameters(mlp);
}

// ---------------------------------------------------------- registry ----

TEST(ModelRegistryTest, PublishAssignsMonotoneVersions) {
  ModelRegistry registry;
  EXPECT_EQ(registry.head_version(), 0u);
  EXPECT_EQ(registry.Head(), nullptr);

  for (uint64_t i = 1; i <= 3; ++i) {
    auto version = registry.Publish(TestImage(i), "v" + std::to_string(i));
    ASSERT_TRUE(version.ok());
    EXPECT_EQ(version.value(), i);
  }
  EXPECT_EQ(registry.head_version(), 3u);
  EXPECT_EQ(registry.size(), 3u);
  ASSERT_NE(registry.Head(), nullptr);
  EXPECT_EQ(registry.Head()->note, "v3");

  auto snap = registry.Get(2);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 2u);
  EXPECT_EQ(snap->checksum, nn::CheckpointImageChecksum(snap->bytes));
}

TEST(ModelRegistryTest, CorruptImageNeverBecomesHead) {
  ModelRegistry registry;
  std::string image = TestImage(7);
  image[image.size() - 3] ^= 0x40;  // payload bit flip
  auto version = registry.Publish(std::move(image), "corrupt");
  EXPECT_FALSE(version.ok());
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_EQ(registry.head_version(), 0u);

  auto garbage = registry.Publish("definitely not a checkpoint");
  EXPECT_FALSE(garbage.ok());
  EXPECT_EQ(registry.size(), 0u);
}

TEST(ModelRegistryTest, GarbageCollectionRespectsPinsAndKeepLast) {
  ModelRegistry registry(/*keep_last=*/2);
  ASSERT_TRUE(registry.Publish(TestImage(1), "v1").ok());
  ASSERT_TRUE(registry.Pin(1).ok());
  for (uint64_t i = 2; i <= 4; ++i) {
    ASSERT_TRUE(registry.Publish(TestImage(i)).ok());
  }
  // Auto-collection after each publish bounds total retention at
  // keep_last; the pinned rollback target survives while its unpinned
  // contemporaries are dropped oldest-first.
  EXPECT_EQ(registry.Versions(), (std::vector<uint64_t>{1, 4}));
  EXPECT_EQ(registry.Get(2), nullptr);
  EXPECT_EQ(registry.Get(3), nullptr);

  // Within the retention bound nothing is collected even once unpinned...
  ASSERT_TRUE(registry.Unpin(1).ok());
  EXPECT_EQ(registry.GarbageCollect(), 0u);
  EXPECT_EQ(registry.Versions(), (std::vector<uint64_t>{1, 4}));
  // ...but the next publish evicts the now-unpinned oldest version.
  ASSERT_TRUE(registry.Publish(TestImage(5)).ok());
  EXPECT_EQ(registry.Versions(), (std::vector<uint64_t>{4, 5}));

  EXPECT_EQ(registry.Pin(99).code(), StatusCode::kNotFound);
  EXPECT_EQ(registry.Unpin(2).code(), StatusCode::kNotFound);
}

TEST(ModelRegistryTest, CollectedSnapshotStaysReadableWhileHeld) {
  ModelRegistry registry(/*keep_last=*/1);
  ASSERT_TRUE(registry.Publish(TestImage(1)).ok());
  std::shared_ptr<const RegistrySnapshot> held = registry.Get(1);
  ASSERT_NE(held, nullptr);
  ASSERT_TRUE(registry.Publish(TestImage(2)).ok());  // auto-GC drops v1
  EXPECT_EQ(registry.Get(1), nullptr);
  // Snapshots are immutable shared state: the held pointer outlives the
  // registry index entry.
  EXPECT_EQ(held->version, 1u);
  EXPECT_FALSE(held->bytes.empty());
}

TEST(ModelRegistryTest, SaveHeadLoadHeadRoundTripsTheImage) {
  const std::string path = ::testing::TempDir() + "basm_registry_head.bin";
  std::remove(path.c_str());

  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(TestImage(1), "v1").ok());
  ASSERT_TRUE(registry.Publish(TestImage(2), "v2").ok());
  ASSERT_TRUE(registry.SaveHead(path).ok());
  // The atomic-rename protocol leaves no temp file behind.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  ModelRegistry restored;
  auto version = restored.LoadHead(path, "restored");
  ASSERT_TRUE(version.ok()) << version.status().ToString();
  EXPECT_EQ(version.value(), 1u);  // fresh process, fresh version counter
  ASSERT_NE(restored.Head(), nullptr);
  EXPECT_EQ(restored.Head()->note, "restored");
  // Byte-for-byte the head that was saved: same image, same checksum.
  EXPECT_EQ(restored.Head()->bytes, registry.Head()->bytes);
  EXPECT_EQ(restored.Head()->checksum, registry.Head()->checksum);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, LoadHeadRejectsCorruptFileAndLeavesRegistryAlone) {
  const std::string path = ::testing::TempDir() + "basm_registry_bad.bin";
  {
    std::string image = TestImage(3);
    image[image.size() / 2] ^= 0x01;  // payload bit flip
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Publish(TestImage(4), "good").ok());
  auto version = registry.LoadHead(path);
  ASSERT_FALSE(version.ok());
  // The Status names the offending file and carries the codec's reason.
  EXPECT_NE(version.status().message().find(path), std::string::npos);
  EXPECT_NE(version.status().message().find("rejected"), std::string::npos);
  // The good head is untouched.
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Head()->note, "good");
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, PersistenceEdgeCases) {
  const std::string missing =
      ::testing::TempDir() + "basm_registry_never_written.bin";
  std::remove(missing.c_str());
  ModelRegistry registry;
  // Empty registry: nothing to save.
  EXPECT_EQ(registry.SaveHead(missing).code(), StatusCode::kNotFound);
  // Missing file: clean NotFound, not a crash or a corrupt-image error.
  EXPECT_EQ(registry.LoadHead(missing).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.size(), 0u);
}

// -------------------------------------------------------------- slot ----

data::SynthConfig SmallWorldConfig() {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 200;
  c.num_items = 180;
  c.num_cities = 4;
  c.seq_len = 6;
  return c;
}

std::unique_ptr<models::CtrModel> SmallModel(const data::Schema& schema,
                                             uint64_t seed) {
  auto model = core::CreateModel(core::ModelKind::kDin, schema, seed);
  model->SetTraining(false);
  return model;
}

TEST(ModelSlotTest, InstallRedirectsAcquire) {
  data::World world(SmallWorldConfig());
  ModelSlot slot;
  EXPECT_EQ(slot.Acquire(), nullptr);
  EXPECT_EQ(slot.current_version(), 0u);

  slot.Install(MakeServable(1, SmallModel(world.schema(), 5)));
  auto first = slot.Acquire();
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->version, 1u);
  EXPECT_EQ(slot.current_version(), 1u);
  EXPECT_EQ(slot.swap_count(), 1);

  slot.Install(MakeServable(2, SmallModel(world.schema(), 6)));
  EXPECT_EQ(slot.current_version(), 2u);
  EXPECT_EQ(slot.Acquire()->version, 2u);
  EXPECT_EQ(slot.swap_count(), 2);
  // The pre-swap acquisition still pins the old servable: in-flight
  // micro-batches finish on the version they started with.
  EXPECT_EQ(first->version, 1u);
  ASSERT_NE(first->model, nullptr);
  EXPECT_FALSE(first->model->training());
}

// ----------------------------------------------------------- trainer ----

/// Shared fixture for trainer and hot-swap tests: a small world, its
/// feature/recall services, and helpers to mint click feedback.
class OnlineTrainerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new data::World(SmallWorldConfig());
    features_ = new feature_store::FeatureServer(*world_, 6, 11);
    store_ = new feature_store::FeatureStore(features_);
    recall_ = new serving::RecallIndex(*world_);
  }

  static void TearDownTestSuite() {
    delete recall_;
    delete store_;
    delete features_;
    delete world_;
  }

  static OnlineTrainerConfig TrainerConfig() {
    OnlineTrainerConfig config;
    config.model_kind = core::ModelKind::kDin;
    config.model_seed = 13;
    return config;
  }

  /// Deterministic click-feedback rows for user `user` in its home city.
  static std::vector<data::Example> Feedback(int32_t user, size_t n,
                                             uint64_t seed) {
    Rng rng(seed);
    auto behaviors = features_->GetUserFeatures(user).behaviors;
    int32_t city = world_->user(user).city;
    std::vector<data::Example> out;
    const std::vector<int32_t>& items = world_->CityItems(city);
    for (size_t i = 0; i < n; ++i) {
      int32_t item = items[i % items.size()];
      // Position cycles within the schema's exposure-slot cardinality.
      out.push_back(world_->MakeExample(user, item, /*hour=*/12,
                                        /*weekday=*/2,
                                        /*position=*/static_cast<int32_t>(i % 8),
                                        city, /*day=*/0,
                                        /*request_id=*/static_cast<int32_t>(i),
                                        behaviors, rng));
    }
    return out;
  }

  static data::World* world_;
  static feature_store::FeatureServer* features_;
  static feature_store::FeatureStore* store_;
  static serving::RecallIndex* recall_;
};

data::World* OnlineTrainerTest::world_ = nullptr;
feature_store::FeatureServer* OnlineTrainerTest::features_ = nullptr;
feature_store::FeatureStore* OnlineTrainerTest::store_ = nullptr;
serving::RecallIndex* OnlineTrainerTest::recall_ = nullptr;

TEST_F(OnlineTrainerTest, BootstrapPublishSeedsRegistryAndSlot) {
  ModelRegistry registry;
  ModelSlot slot;
  OnlineTrainer trainer(world_->schema(), &registry, &slot, TrainerConfig());

  auto model = SmallModel(world_->schema(), 13);
  ASSERT_TRUE(trainer.PublishModel(*model, "bootstrap").ok());
  EXPECT_EQ(registry.head_version(), 1u);
  EXPECT_EQ(registry.Head()->note, "bootstrap");
  EXPECT_EQ(slot.current_version(), 1u);
  ASSERT_NE(slot.Acquire(), nullptr);
  EXPECT_FALSE(slot.Acquire()->model->training());
}

TEST_F(OnlineTrainerTest, PublishNowWarmStartsAndServesBitIdentically) {
  ModelRegistry registry;
  ModelSlot slot;
  OnlineTrainer trainer(world_->schema(), &registry, &slot, TrainerConfig());
  ASSERT_TRUE(trainer.PublishModel(*SmallModel(world_->schema(), 13),
                                   "bootstrap")
                  .ok());

  std::vector<data::Example> clicks = Feedback(/*user=*/3, 8, /*seed=*/91);
  for (data::Example& e : clicks) {
    EXPECT_TRUE(trainer.SubmitFeedback(e));
  }
  ASSERT_TRUE(trainer.PublishNow("manual-1").ok());

  OnlineTrainerStats stats = trainer.stats();
  EXPECT_EQ(stats.consumed, 8);
  EXPECT_EQ(stats.dropped, 0);
  EXPECT_EQ(stats.buffered, 0);  // consumed by the update
  EXPECT_EQ(stats.published, 1);
  EXPECT_EQ(stats.last_version, 2u);
  EXPECT_EQ(registry.head_version(), 2u);
  EXPECT_EQ(slot.current_version(), 2u);

  // The slot's model and an offline rebuild of the published checkpoint
  // must score bit-identically (the swap changes provenance, not math).
  auto snap = registry.Get(2);
  ASSERT_NE(snap, nullptr);
  auto offline = core::CreateModel(core::ModelKind::kDin, world_->schema(),
                                     /*seed=*/999);  // init is overwritten
  ASSERT_TRUE(nn::DeserializeParameters(*offline, snap->bytes).ok());
  offline->SetTraining(false);

  std::vector<data::Example> probe = Feedback(/*user=*/5, 8, /*seed=*/17);
  std::vector<const data::Example*> ptrs;
  for (const data::Example& e : probe) ptrs.push_back(&e);
  data::Batch batch = data::MakeBatch(ptrs, world_->schema());
  std::vector<float> served = slot.Acquire()->model->PredictProbs(batch);
  std::vector<float> rebuilt = offline->PredictProbs(batch);
  ASSERT_EQ(served.size(), rebuilt.size());
  for (size_t i = 0; i < served.size(); ++i) {
    EXPECT_EQ(served[i], rebuilt[i]) << "prob " << i << " diverged";
  }
}

TEST_F(OnlineTrainerTest, InstallFaultLeavesOldVersionServing) {
  ModelRegistry registry;
  ModelSlot slot;
  OnlineTrainer trainer(world_->schema(), &registry, &slot, TrainerConfig());
  ASSERT_TRUE(trainer.PublishModel(*SmallModel(world_->schema(), 13),
                                   "bootstrap")
                  .ok());
  ASSERT_EQ(slot.current_version(), 1u);

  // Kill the model push to the serving node (kModelSlotInstallFaultSite):
  // the registry publish must stand while the slot keeps serving v1.
  FaultInjector injector(7);
  FaultSiteConfig kill;
  kill.error_probability = 1.0;
  injector.Configure(kModelSlotInstallFaultSite, kill);
  trainer.SetFaultInjector(&injector);

  for (data::Example& e : Feedback(/*user=*/3, 8, /*seed=*/91)) {
    ASSERT_TRUE(trainer.SubmitFeedback(e));
  }
  Status s = trainer.PublishNow("poisoned-push");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(registry.head_version(), 2u) << "registry publish must stand";
  EXPECT_EQ(slot.current_version(), 1u) << "old version must keep serving";
  OnlineTrainerStats stats = trainer.stats();
  EXPECT_EQ(stats.published, 1);
  EXPECT_EQ(stats.failed_installs, 1);
  EXPECT_EQ(stats.last_version, 2u);

  // The push path heals: the next successful publish re-converges the
  // slot with the registry head.
  trainer.SetFaultInjector(nullptr);
  for (data::Example& e : Feedback(/*user=*/5, 8, /*seed=*/17)) {
    ASSERT_TRUE(trainer.SubmitFeedback(e));
  }
  ASSERT_TRUE(trainer.PublishNow("healed").ok());
  EXPECT_EQ(registry.head_version(), 3u);
  EXPECT_EQ(slot.current_version(), 3u);
  EXPECT_EQ(trainer.stats().failed_installs, 1);
}

TEST_F(OnlineTrainerTest, PublishNowWithoutFeedbackIsInvalidArgument) {
  ModelRegistry registry;
  ModelSlot slot;
  OnlineTrainer trainer(world_->schema(), &registry, &slot, TrainerConfig());
  ASSERT_TRUE(trainer.PublishModel(*SmallModel(world_->schema(), 13),
                                   "bootstrap")
                  .ok());
  EXPECT_EQ(trainer.PublishNow().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.head_version(), 1u);
}

TEST_F(OnlineTrainerTest, BackgroundLoopPublishesAsFeedbackArrives) {
  ModelRegistry registry;
  ModelSlot slot;
  OnlineTrainerConfig config = TrainerConfig();
  config.publish_every = 16;
  OnlineTrainer trainer(world_->schema(), &registry, &slot, config);
  ASSERT_TRUE(trainer.PublishModel(*SmallModel(world_->schema(), 13),
                                   "bootstrap")
                  .ok());

  trainer.Start();
  std::vector<data::Example> clicks = Feedback(/*user=*/2, 40, /*seed=*/31);
  for (data::Example& e : clicks) {
    // The bounded stream may momentarily fill while the loop trains; retry
    // rather than drop so the publish count below is deterministic.
    while (!trainer.SubmitFeedback(e)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (trainer.stats().published < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  trainer.Stop();

  OnlineTrainerStats stats = trainer.stats();
  EXPECT_GE(stats.published, 2);
  EXPECT_GE(registry.head_version(), 3u);  // bootstrap + >=2 incremental
  EXPECT_EQ(slot.current_version(), registry.head_version());
  EXPECT_GT(stats.last_update_seconds, 0.0);
}

TEST_F(OnlineTrainerTest, FullStreamDropsFeedbackWithoutBlocking) {
  ModelRegistry registry;
  OnlineTrainerConfig config = TrainerConfig();
  config.feedback_capacity = 4;
  // No slot: registry-only publishing is allowed.
  OnlineTrainer trainer(world_->schema(), &registry, nullptr, config);

  std::vector<data::Example> clicks = Feedback(/*user=*/1, 6, /*seed=*/77);
  int accepted = 0;
  for (data::Example& e : clicks) {
    accepted += trainer.SubmitFeedback(e) ? 1 : 0;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(trainer.stats().dropped, 2);
}

/// Satellite acceptance: a poisoned update is rejected by the publish gate
/// — the pinned version keeps serving, the rejection is counted, and a
/// later healthy update still publishes.
TEST_F(OnlineTrainerTest, PublishGateRejectsPoisonedUpdate) {
  ModelRegistry registry;
  ModelSlot slot;
  OnlineTrainer trainer(world_->schema(), &registry, &slot, TrainerConfig());
  ASSERT_TRUE(trainer.PublishModel(*SmallModel(world_->schema(), 13),
                                   "bootstrap")
                  .ok());

  // The gate: a holdout-metric stand-in that fails while `poisoned` is up.
  std::atomic<bool> poisoned{true};
  trainer.SetPublishGate([&](const models::CtrModel& candidate) {
    EXPECT_FALSE(candidate.training());  // gate sees the eval-mode model
    if (poisoned.load()) {
      return Status::OutOfRange("holdout AUC below floor");
    }
    return Status::Ok();
  });

  std::vector<data::Example> clicks = Feedback(/*user=*/6, 8, /*seed=*/55);
  for (data::Example& e : clicks) ASSERT_TRUE(trainer.SubmitFeedback(e));
  Status rejected = trainer.PublishNow("poisoned");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kOutOfRange);
  EXPECT_NE(rejected.message().find("holdout AUC below floor"),
            std::string::npos);

  // Nothing moved: registry head and serving slot still the bootstrap.
  OnlineTrainerStats stats = trainer.stats();
  EXPECT_EQ(stats.rejected_publishes, 1);
  EXPECT_EQ(stats.published, 0);
  EXPECT_EQ(registry.head_version(), 1u);
  EXPECT_EQ(slot.current_version(), 1u);
  // The poisoned buffer was discarded, not kept for a doomed retrain.
  EXPECT_EQ(stats.buffered, 0);
  EXPECT_EQ(trainer.PublishNow().code(), StatusCode::kInvalidArgument);

  // Healthy data with the gate passing publishes normally again.
  poisoned.store(false);
  std::vector<data::Example> good = Feedback(/*user=*/7, 8, /*seed=*/56);
  for (data::Example& e : good) ASSERT_TRUE(trainer.SubmitFeedback(e));
  ASSERT_TRUE(trainer.PublishNow("healthy").ok());
  stats = trainer.stats();
  EXPECT_EQ(stats.published, 1);
  EXPECT_EQ(stats.rejected_publishes, 1);
  EXPECT_EQ(registry.head_version(), 2u);
  EXPECT_EQ(slot.current_version(), 2u);
}

// ---------------------------------------------------------- hot swap ----

using HotSwapTest = OnlineTrainerTest;

/// ISSUE acceptance: a closed-loop load runs while the trainer publishes 5
/// new versions; every request succeeds, none is rejected or blocked by a
/// swap, and the engine ends up serving the final version.
TEST_F(HotSwapTest, ServingContinuesAcrossPublishes) {
  ModelRegistry registry;
  ModelSlot slot;
  OnlineTrainer trainer(world_->schema(), &registry, &slot, TrainerConfig());
  ASSERT_TRUE(trainer.PublishModel(*SmallModel(world_->schema(), 13),
                                   "bootstrap")
                  .ok());

  serving::Pipeline pipeline(*world_, store_, recall_, &slot,
                             /*recall_size=*/16, /*expose_k=*/5);
  runtime::EngineConfig ec;
  ec.num_workers = 4;
  ec.max_batch_requests = 4;
  ec.max_wait_micros = 100;
  ec.queue_capacity = 256;
  runtime::ServingEngine engine(&pipeline, ec);

  runtime::LoadConfig load;
  load.num_requests = 240;
  load.concurrency = 8;
  load.deadline_micros = 30000000;  // sanitizer headroom: never shed load
  runtime::LoadGenerator generator(*world_, load);

  constexpr int kPublishes = 5;
  runtime::LoadReport report;
  std::thread driver([&] { report = generator.Run(engine); });
  std::thread publisher([&] {
    for (int p = 0; p < kPublishes; ++p) {
      std::vector<data::Example> clicks =
          Feedback(/*user=*/p + 1, 12, /*seed=*/100 + p);
      for (data::Example& e : clicks) trainer.SubmitFeedback(e);
      ASSERT_TRUE(trainer.PublishNow("swap-" + std::to_string(p)).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });
  driver.join();
  publisher.join();

  EXPECT_EQ(report.ok, load.num_requests);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.timed_out, 0);
  EXPECT_EQ(report.cancelled, 0);
  EXPECT_EQ(slot.current_version(), 1u + kPublishes);
  EXPECT_EQ(slot.swap_count(), 1 + kPublishes);
  EXPECT_EQ(trainer.stats().published, kPublishes);
}

/// ISSUE acceptance: after each swap the engine's scores are bit-identical
/// to loading the same registry checkpoint offline and scoring serially.
TEST_F(HotSwapTest, SwappedScoresBitIdenticalToOfflineLoad) {
  ModelRegistry registry;
  ModelSlot slot;
  OnlineTrainer trainer(world_->schema(), &registry, &slot, TrainerConfig());
  ASSERT_TRUE(trainer.PublishModel(*SmallModel(world_->schema(), 13),
                                   "bootstrap")
                  .ok());
  for (int p = 0; p < 2; ++p) {
    std::vector<data::Example> clicks =
        Feedback(/*user=*/p + 4, 10, /*seed=*/200 + p);
    for (data::Example& e : clicks) trainer.SubmitFeedback(e);
    ASSERT_TRUE(trainer.PublishNow().ok());
  }
  ASSERT_EQ(registry.Versions().size(), 3u);

  serving::Pipeline pipeline(*world_, store_, recall_, &slot,
                             /*recall_size=*/16, /*expose_k=*/5);
  runtime::EngineConfig ec;
  ec.num_workers = 2;
  ec.max_batch_requests = 1;
  runtime::ServingEngine engine(&pipeline, ec);

  serving::Request request{/*user_id=*/7, /*hour=*/18, /*weekday=*/4,
                           world_->user(7).city, /*day=*/0,
                           /*request_id=*/0};
  const std::vector<int32_t>& city_items = world_->CityItems(request.city);
  std::vector<int32_t> candidates(
      city_items.begin(),
      city_items.begin() + std::min<size_t>(city_items.size(), 12));

  for (uint64_t version : registry.Versions()) {
    auto snap = registry.Get(version);
    ASSERT_NE(snap, nullptr);
    auto offline = core::CreateModel(core::ModelKind::kDin,
                                       world_->schema(), /*seed=*/500);
    ASSERT_TRUE(nn::DeserializeParameters(*offline, snap->bytes).ok());
    offline->SetTraining(false);

    // Roll the slot to this version the same way the trainer does, then
    // score through the live engine.
    auto rebuilt = core::CreateModel(core::ModelKind::kDin,
                                       world_->schema(), /*seed=*/501);
    ASSERT_TRUE(nn::DeserializeParameters(*rebuilt, snap->bytes).ok());
    rebuilt->SetTraining(false);
    slot.Install(MakeServable(version, std::move(rebuilt)));

    runtime::SlateResult result =
        engine.Submit(request, candidates).get();
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.model_version, version);

    std::vector<data::Example> examples =
        pipeline.BuildExamples(request, candidates);
    std::vector<const data::Example*> ptrs;
    for (const data::Example& e : examples) ptrs.push_back(&e);
    data::Batch batch = data::MakeBatch(ptrs, world_->schema());
    std::vector<serving::RankedItem> expected = serving::Pipeline::MakeSlate(
        candidates, offline->PredictProbs(batch), pipeline.expose_k());

    ASSERT_EQ(result.slate.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.slate[i].item_id, expected[i].item_id);
      EXPECT_EQ(result.slate[i].score, expected[i].score)
          << "version " << version << " slot " << i;
      EXPECT_EQ(result.slate[i].position, expected[i].position);
    }
  }
  EXPECT_EQ(slot.current_version(), registry.head_version());
}

}  // namespace
}  // namespace basm::online
