#ifndef BASM_COMMON_LOGGING_H_
#define BASM_COMMON_LOGGING_H_

#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>

namespace basm {

/// Severity for log statements emitted through BASM_LOG.
enum class LogSeverity { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum severity; messages below it are dropped.
/// Controlled by the BASM_LOG_LEVEL environment variable (0..3, default 1).
LogSeverity MinLogSeverity();

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
/// If `fatal` is true, the destructor aborts the process after flushing,
/// which is how CHECK failures terminate.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line,
             bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  bool fatal_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when the log statement is disabled.
struct LogMessageVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace basm

#define BASM_LOG(severity)                                              \
  (::basm::LogSeverity::k##severity < ::basm::MinLogSeverity())         \
      ? (void)0                                                         \
      : ::basm::internal::LogMessageVoidify() &                         \
            ::basm::internal::LogMessage(::basm::LogSeverity::k##severity, \
                                         __FILE__, __LINE__)            \
                .stream()

/// Aborts with a message when `cond` is false. Used for programmer errors
/// (shape mismatches, out-of-range indices) throughout the library.
#define BASM_CHECK(cond)                                                     \
  (cond) ? (void)0                                                          \
         : ::basm::internal::LogMessageVoidify() &                          \
               ::basm::internal::LogMessage(::basm::LogSeverity::kError,    \
                                            __FILE__, __LINE__, true)       \
                       .stream()                                            \
                   << "Check failed: " #cond " "

#define BASM_CHECK_BINOP(a, b, op)                                \
  BASM_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define BASM_CHECK_EQ(a, b) BASM_CHECK_BINOP(a, b, ==)
#define BASM_CHECK_NE(a, b) BASM_CHECK_BINOP(a, b, !=)
#define BASM_CHECK_LT(a, b) BASM_CHECK_BINOP(a, b, <)
#define BASM_CHECK_LE(a, b) BASM_CHECK_BINOP(a, b, <=)
#define BASM_CHECK_GT(a, b) BASM_CHECK_BINOP(a, b, >)
#define BASM_CHECK_GE(a, b) BASM_CHECK_BINOP(a, b, >=)

#endif  // BASM_COMMON_LOGGING_H_
