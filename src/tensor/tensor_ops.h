#ifndef BASM_TENSOR_TENSOR_OPS_H_
#define BASM_TENSOR_TENSOR_OPS_H_

#include <functional>

#include "tensor/tensor.h"

namespace basm::ops {

/// -- Matrix products ----------------------------------------------------
///
/// All matmuls dispatch through ops::kernels (blocked SIMD-friendly loops,
/// or AVX2 intrinsics when compiled in and the CPU supports them). The old
/// naive loops live on in ops::reference as the equivalence-test oracle.

/// C = A(m,k) * B(k,n).
Tensor MatMul(const Tensor& a, const Tensor& b);
/// C = A^T(m,k) * B(m,n) -> (k,n). Used by autograd for weight gradients.
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// C = A(m,k) * B^T(n,k) -> (m,n). Used by autograd for input gradients.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// Batched C[b] = A[b](m,k) * B[b](k,n) over rank-3 tensors [B,m,k]x[B,k,n].
Tensor BatchedMatMul(const Tensor& a, const Tensor& b);
/// Batched C[b] = A[b]^T * B[b]; a is [B,m,k], b is [B,m,n] -> [B,k,n].
Tensor BatchedMatMulTransA(const Tensor& a, const Tensor& b);
/// Batched C[b] = A[b] * B[b]^T; a is [B,m,k], b is [B,n,k] -> [B,m,n].
Tensor BatchedMatMulTransB(const Tensor& a, const Tensor& b);

/// -- Fused inference ops ---------------------------------------------------
///
/// Single-pass forms of the op chains the eval-mode layers run. They are
/// arithmetic-order-identical to the chains they replace (same per-element
/// operation sequence, and tensor_ops.cc is built with -ffp-contract=off so
/// the compiler cannot re-fuse mul+add), which keeps guarded inference
/// forwards bit-identical to the unguarded ones — a property the runtime
/// tests assert.

/// Elementwise activations the fused ops can apply in the output pass.
enum class Act { kNone, kRelu, kLeakyRelu, kSigmoid, kTanh };

/// C = A * B (+ bias row, when bias != nullptr). bias is [n] or [1,n].
Tensor MatMulBias(const Tensor& a, const Tensor& b, const Tensor* bias);
/// C = act(A * B + bias); bias may be null.
Tensor MatMulBiasAct(const Tensor& a, const Tensor& b, const Tensor* bias,
                     Act act, float leaky_alpha = 0.01f);

/// a[i,:] += b / a[i,:] *= b, in place; b is [n] or [1,n].
void AddRowBroadcastInPlace(Tensor& a, const Tensor& b);
void MulRowBroadcastInPlace(Tensor& a, const Tensor& b);
/// t = act(t) elementwise, in place.
void ActivateInPlace(Tensor& t, Act act, float leaky_alpha = 0.01f);

/// (x + neg_mean) * inv, rows broadcast — the eval-mode BatchNorm normalize
/// chain in one pass. neg_mean/inv are [n] or [1,n].
Tensor CenterScaleRows(const Tensor& x, const Tensor& neg_mean,
                       const Tensor& inv);
/// ((x + neg_mean) * inv) * gamma + beta — the full eval-mode BatchNorm
/// forward in one pass.
Tensor BatchNormInference(const Tensor& x, const Tensor& neg_mean,
                          const Tensor& inv, const Tensor& gamma,
                          const Tensor& beta);

/// -- Elementwise (same shape) --------------------------------------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Scale(const Tensor& a, float s);
Tensor AddScalar(const Tensor& a, float s);
Tensor Map(const Tensor& a, const std::function<float(float)>& fn);

/// -- Broadcast over rows: a is [m,n], b is [1,n] or [n] -------------------

Tensor AddRowBroadcast(const Tensor& a, const Tensor& b);
Tensor MulRowBroadcast(const Tensor& a, const Tensor& b);
/// Broadcast over cols: a is [m,n], b is [m,1] or [m].
Tensor AddColBroadcast(const Tensor& a, const Tensor& b);
Tensor MulColBroadcast(const Tensor& a, const Tensor& b);

/// -- Nonlinearities --------------------------------------------------------

Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor LeakyRelu(const Tensor& a, float alpha);
Tensor Exp(const Tensor& a);
/// Natural log; inputs are clamped to >= `floor` to keep logs finite.
Tensor Log(const Tensor& a, float floor = 1e-12f);
Tensor Sqrt(const Tensor& a);

/// -- Reductions -------------------------------------------------------------

/// Sum over all elements -> [1].
Tensor SumAll(const Tensor& a);
/// Per-row sums of [m,n] -> [m,1].
Tensor RowSum(const Tensor& a);
/// Per-column sums of [m,n] -> [1,n].
Tensor ColSum(const Tensor& a);
/// Per-column means of [m,n] -> [1,n].
Tensor ColMean(const Tensor& a);

/// -- Structure ---------------------------------------------------------------

/// Concatenates rank-2 tensors along columns; all must share row count.
Tensor ConcatCols(const std::vector<Tensor>& parts);
/// Extracts columns [start, start+len) of a rank-2 tensor.
Tensor SliceCols(const Tensor& a, int64_t start, int64_t len);
/// Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& a);

/// Row-wise softmax of [m,n].
Tensor RowSoftmax(const Tensor& a);

/// -- Comparisons (testing helpers) --------------------------------------------

/// Max |a-b| over elements; shapes must match.
float MaxAbsDiff(const Tensor& a, const Tensor& b);
/// True when all elements differ by <= atol + rtol*|b|.
bool AllClose(const Tensor& a, const Tensor& b, float rtol = 1e-5f,
              float atol = 1e-6f);

}  // namespace basm::ops

#endif  // BASM_TENSOR_TENSOR_OPS_H_
