// Model-zoo tour: trains three representative CTR models (a static baseline,
// a multi-domain baseline and BASM) on the same synthetic dataset, compares
// the paper's metrics side by side, and demonstrates the checkpoint
// save/load path used to hand a trained model to the serving stack.

#include <cstdio>
#include <string>

#include "common/env.h"
#include "common/table_printer.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "nn/serialize.h"
#include "train/trainer.h"

int main() {
  using namespace basm;
  bool fast = basm::FastMode();

  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 1200;
  config.num_items = 700;
  config.requests_per_day = fast ? 60 : 350;
  config.days = 5;
  config.test_day = 4;
  data::Dataset dataset = data::GenerateDataset(config);
  std::printf("dataset: %zu impressions\n", dataset.examples.size());

  TablePrinter table({"Model", "AUC", "TAUC", "CAUC", "LogLoss", "Params"});
  train::TrainConfig tc;
  tc.epochs = fast ? 1 : 2;
  for (core::ModelKind kind :
       {core::ModelKind::kWideDeep, core::ModelKind::kStar,
        core::ModelKind::kBasm}) {
    auto model = core::CreateModel(kind, dataset.schema, 21);
    std::printf("training %s...\n", model->name().c_str());
    train::Fit(*model, dataset, tc);
    train::EvalResult eval = train::EvaluateOnTest(*model, dataset);
    table.AddRow({model->name(), TablePrinter::Num(eval.summary.auc),
                  TablePrinter::Num(eval.summary.tauc),
                  TablePrinter::Num(eval.summary.cauc),
                  TablePrinter::Num(eval.summary.logloss),
                  std::to_string(model->ParameterCount())});

    if (kind == core::ModelKind::kBasm) {
      // Checkpoint hand-off: save, reload into a fresh instance, verify the
      // reloaded model scores identically (the offline->RTP deployment).
      std::string path = "/tmp/basm_zoo_tour.ckpt";
      Status s = nn::SaveParameters(*model, path);
      std::printf("checkpoint save: %s\n", s.ToString().c_str());
      auto reloaded = core::CreateModel(kind, dataset.schema, 99);
      s = nn::LoadParameters(*reloaded, path);
      std::printf("checkpoint load: %s\n", s.ToString().c_str());
      train::EvalResult eval2 = train::EvaluateOnTest(*reloaded, dataset);
      std::printf("reloaded model AUC %.4f (original %.4f) -> %s\n",
                  eval2.summary.auc, eval.summary.auc,
                  std::abs(eval2.summary.auc - eval.summary.auc) < 1e-9
                      ? "identical"
                      : "MISMATCH");
    }
  }
  table.Print();
  return 0;
}
