#include "net/wire.h"

#include <algorithm>
#include <bit>

namespace basm::net {

namespace {

/// Wire image of StatusCode. The enum is part of the protocol, so decode
/// validates the range instead of trusting the peer's byte.
constexpr uint8_t kMaxWireStatusCode =
    static_cast<uint8_t>(StatusCode::kCancelled);

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void StoreU32(uint32_t v, uint8_t* p) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

}  // namespace

uint32_t WireChecksum(const uint8_t* data, size_t size) {
  uint32_t hash = 2166136261u;  // FNV-1a 32-bit offset basis
  for (size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 16777619u;  // FNV prime
  }
  return hash;
}

void EncodeFrameHeader(const FrameHeader& header, uint8_t* out) {
  StoreU32(kWireMagic, out);
  out[4] = header.version;
  out[5] = static_cast<uint8_t>(header.type);
  out[6] = 0;  // reserved flags
  out[7] = 0;
  StoreU32(header.payload_size, out + 8);
  StoreU32(header.checksum, out + 12);
}

Status DecodeFrameHeader(const uint8_t* data, size_t size, FrameHeader* out) {
  BASM_CHECK(out != nullptr);
  if (size < kFrameHeaderBytes) {
    return Status::OutOfRange("frame header truncated: " +
                              std::to_string(size) + " of " +
                              std::to_string(kFrameHeaderBytes) + " bytes");
  }
  uint32_t magic = LoadU32(data);
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (data[4] != kWireVersion) {
    return Status::InvalidArgument("unsupported wire version " +
                                   std::to_string(data[4]) + " (expected " +
                                   std::to_string(kWireVersion) + ")");
  }
  uint8_t type = data[5];
  if (type != static_cast<uint8_t>(FrameType::kRequest) &&
      type != static_cast<uint8_t>(FrameType::kResponse)) {
    return Status::InvalidArgument("unknown frame type " +
                                   std::to_string(type));
  }
  if (data[6] != 0 || data[7] != 0) {
    return Status::InvalidArgument("nonzero reserved frame flags");
  }
  uint32_t payload_size = LoadU32(data + 8);
  if (payload_size > kMaxPayloadBytes) {
    return Status::OutOfRange("payload size " + std::to_string(payload_size) +
                              " exceeds cap " +
                              std::to_string(kMaxPayloadBytes));
  }
  out->version = data[4];
  out->type = static_cast<FrameType>(type);
  out->payload_size = payload_size;
  out->checksum = LoadU32(data + 12);
  return Status::Ok();
}

Status VerifyPayload(const FrameHeader& header, const uint8_t* payload,
                     size_t size) {
  if (size != header.payload_size) {
    return Status::OutOfRange(
        "payload size mismatch: got " + std::to_string(size) + ", header " +
        std::to_string(header.payload_size));
  }
  uint32_t checksum = WireChecksum(payload, size);
  if (checksum != header.checksum) {
    return Status::InvalidArgument("payload checksum mismatch");
  }
  return Status::Ok();
}

// --- WireWriter -------------------------------------------------------------

void WireWriter::PutU16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::PutU32(uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void WireWriter::PutU64(uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void WireWriter::PutF32(float v) { PutU32(std::bit_cast<uint32_t>(v)); }

void WireWriter::PutBytes(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

// --- WireReader -------------------------------------------------------------

Status WireReader::Take(size_t n, const uint8_t** out) {
  if (n > size_ - pos_) {
    return Status::OutOfRange("payload truncated: need " + std::to_string(n) +
                              " bytes, have " + std::to_string(size_ - pos_));
  }
  *out = data_ + pos_;
  pos_ += n;
  return Status::Ok();
}

Status WireReader::ReadU8(uint8_t* out) {
  const uint8_t* p = nullptr;
  BASM_RETURN_IF_ERROR(Take(1, &p));
  *out = p[0];
  return Status::Ok();
}

Status WireReader::ReadU16(uint16_t* out) {
  const uint8_t* p = nullptr;
  BASM_RETURN_IF_ERROR(Take(2, &p));
  *out = static_cast<uint16_t>(p[0] | (p[1] << 8));
  return Status::Ok();
}

Status WireReader::ReadU32(uint32_t* out) {
  const uint8_t* p = nullptr;
  BASM_RETURN_IF_ERROR(Take(4, &p));
  *out = LoadU32(p);
  return Status::Ok();
}

Status WireReader::ReadU64(uint64_t* out) {
  const uint8_t* p = nullptr;
  BASM_RETURN_IF_ERROR(Take(8, &p));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  *out = v;
  return Status::Ok();
}

Status WireReader::ReadI32(int32_t* out) {
  uint32_t v = 0;
  BASM_RETURN_IF_ERROR(ReadU32(&v));
  *out = static_cast<int32_t>(v);
  return Status::Ok();
}

Status WireReader::ReadI64(int64_t* out) {
  uint64_t v = 0;
  BASM_RETURN_IF_ERROR(ReadU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::Ok();
}

Status WireReader::ReadF32(float* out) {
  uint32_t v = 0;
  BASM_RETURN_IF_ERROR(ReadU32(&v));
  *out = std::bit_cast<float>(v);
  return Status::Ok();
}

Status WireReader::ReadBytes(size_t n, std::string* out) {
  const uint8_t* p = nullptr;
  BASM_RETURN_IF_ERROR(Take(n, &p));
  out->assign(reinterpret_cast<const char*>(p), n);
  return Status::Ok();
}

// --- request / response payloads -------------------------------------------

namespace {

std::vector<uint8_t> FinishFrame(FrameType type, WireWriter payload) {
  std::vector<uint8_t> body = payload.Release();
  FrameHeader header;
  header.type = type;
  header.payload_size = static_cast<uint32_t>(body.size());
  header.checksum = WireChecksum(body.data(), body.size());

  std::vector<uint8_t> frame(kFrameHeaderBytes + body.size());
  EncodeFrameHeader(header, frame.data());
  std::memcpy(frame.data() + kFrameHeaderBytes, body.data(), body.size());
  return frame;
}

}  // namespace

std::vector<uint8_t> EncodeRequestFrame(const RpcRequest& request) {
  BASM_CHECK_LE(request.candidates.size(),
                static_cast<size_t>(kMaxWireCandidates));
  WireWriter w;
  w.PutU64(request.sequence);
  w.PutI32(request.request.user_id);
  w.PutI32(request.request.hour);
  w.PutI32(request.request.weekday);
  w.PutI32(request.request.city);
  w.PutI32(request.request.day);
  w.PutI32(request.request.request_id);
  w.PutI64(request.deadline_micros);
  w.PutU32(static_cast<uint32_t>(request.candidates.size()));
  for (int32_t candidate : request.candidates) w.PutI32(candidate);
  return FinishFrame(FrameType::kRequest, std::move(w));
}

std::vector<uint8_t> EncodeResponseFrame(const RpcResponse& response) {
  BASM_CHECK_LE(response.slate.size(), static_cast<size_t>(kMaxWireSlate));
  WireWriter w;
  w.PutU64(response.sequence);
  w.PutU8(static_cast<uint8_t>(response.code));
  w.PutU8(response.degraded ? 1 : 0);
  w.PutU32(response.replica);
  w.PutU64(response.model_version);
  // Status message, truncated to the wire cap (diagnostic, not data).
  size_t msg_len = std::min<size_t>(response.message.size(),
                                    kMaxWireMessageBytes);
  w.PutU16(static_cast<uint16_t>(msg_len));
  w.PutBytes(response.message.data(), msg_len);
  w.PutU32(static_cast<uint32_t>(response.slate.size()));
  for (const serving::RankedItem& item : response.slate) {
    w.PutI32(item.item_id);
    w.PutF32(item.score);
    w.PutI32(item.position);
  }
  return FinishFrame(FrameType::kResponse, std::move(w));
}

Status DecodeRequestPayload(const uint8_t* payload, size_t size,
                            RpcRequest* out) {
  BASM_CHECK(out != nullptr);
  WireReader r(payload, size);
  BASM_RETURN_IF_ERROR(r.ReadU64(&out->sequence));
  BASM_RETURN_IF_ERROR(r.ReadI32(&out->request.user_id));
  BASM_RETURN_IF_ERROR(r.ReadI32(&out->request.hour));
  BASM_RETURN_IF_ERROR(r.ReadI32(&out->request.weekday));
  BASM_RETURN_IF_ERROR(r.ReadI32(&out->request.city));
  BASM_RETURN_IF_ERROR(r.ReadI32(&out->request.day));
  BASM_RETURN_IF_ERROR(r.ReadI32(&out->request.request_id));
  BASM_RETURN_IF_ERROR(r.ReadI64(&out->deadline_micros));
  uint32_t num_candidates = 0;
  BASM_RETURN_IF_ERROR(r.ReadU32(&num_candidates));
  if (num_candidates > kMaxWireCandidates) {
    return Status::OutOfRange("candidate count " +
                              std::to_string(num_candidates) +
                              " exceeds cap " +
                              std::to_string(kMaxWireCandidates));
  }
  // The count is validated against the bytes actually present before any
  // allocation sized from it.
  if (r.remaining() < static_cast<size_t>(num_candidates) * 4) {
    return Status::OutOfRange("candidate list truncated");
  }
  out->candidates.clear();
  out->candidates.reserve(num_candidates);
  for (uint32_t i = 0; i < num_candidates; ++i) {
    int32_t candidate = 0;
    BASM_RETURN_IF_ERROR(r.ReadI32(&candidate));
    out->candidates.push_back(candidate);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "trailing bytes after request payload: " +
        std::to_string(r.remaining()));
  }
  return Status::Ok();
}

Status DecodeResponsePayload(const uint8_t* payload, size_t size,
                             RpcResponse* out) {
  BASM_CHECK(out != nullptr);
  WireReader r(payload, size);
  BASM_RETURN_IF_ERROR(r.ReadU64(&out->sequence));
  uint8_t code = 0;
  BASM_RETURN_IF_ERROR(r.ReadU8(&code));
  if (code > kMaxWireStatusCode) {
    return Status::InvalidArgument("unknown wire status code " +
                                   std::to_string(code));
  }
  out->code = static_cast<StatusCode>(code);
  uint8_t degraded = 0;
  BASM_RETURN_IF_ERROR(r.ReadU8(&degraded));
  if (degraded > 1) {
    return Status::InvalidArgument("degraded flag must be 0 or 1");
  }
  out->degraded = degraded == 1;
  BASM_RETURN_IF_ERROR(r.ReadU32(&out->replica));
  BASM_RETURN_IF_ERROR(r.ReadU64(&out->model_version));
  uint16_t msg_len = 0;
  BASM_RETURN_IF_ERROR(r.ReadU16(&msg_len));
  if (msg_len > kMaxWireMessageBytes) {
    return Status::OutOfRange("status message length " +
                              std::to_string(msg_len) + " exceeds cap " +
                              std::to_string(kMaxWireMessageBytes));
  }
  BASM_RETURN_IF_ERROR(r.ReadBytes(msg_len, &out->message));
  uint32_t num_items = 0;
  BASM_RETURN_IF_ERROR(r.ReadU32(&num_items));
  if (num_items > kMaxWireSlate) {
    return Status::OutOfRange("slate size " + std::to_string(num_items) +
                              " exceeds cap " + std::to_string(kMaxWireSlate));
  }
  if (r.remaining() < static_cast<size_t>(num_items) * 12) {
    return Status::OutOfRange("slate truncated");
  }
  out->slate.clear();
  out->slate.reserve(num_items);
  for (uint32_t i = 0; i < num_items; ++i) {
    serving::RankedItem item;
    BASM_RETURN_IF_ERROR(r.ReadI32(&item.item_id));
    BASM_RETURN_IF_ERROR(r.ReadF32(&item.score));
    BASM_RETURN_IF_ERROR(r.ReadI32(&item.position));
    out->slate.push_back(item);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument(
        "trailing bytes after response payload: " +
        std::to_string(r.remaining()));
  }
  return Status::Ok();
}

}  // namespace basm::net
