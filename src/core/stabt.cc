#include "core/stabt.h"

namespace basm::core {

namespace ag = ::basm::autograd;

StABT::StABT(int64_t in_dim, std::vector<int64_t> hidden, int64_t ctx_dim,
             Rng& rng, bool adaptive)
    : adaptive_(adaptive) {
  BASM_CHECK(!hidden.empty());
  dims_ = {in_dim};
  dims_.insert(dims_.end(), hidden.begin(), hidden.end());
  for (size_t l = 0; l + 1 < dims_.size(); ++l) {
    Layer layer;
    int64_t in = dims_[l], out = dims_[l + 1];
    layer.fc = std::make_unique<nn::Linear>(in, out, rng);
    RegisterModule("fc" + std::to_string(l), layer.fc.get());
    layer.bn = std::make_unique<nn::BatchNorm1d>(out);
    RegisterModule("bn" + std::to_string(l), layer.bn.get());
    if (adaptive_) {
      layer.w_bias_gen = std::make_unique<nn::Linear>(ctx_dim, out, rng);
      layer.b_bias_gen = std::make_unique<nn::Linear>(ctx_dim, out, rng);
      layer.gamma_bias_gen = std::make_unique<nn::Linear>(ctx_dim, out, rng);
      layer.beta_bias_gen = std::make_unique<nn::Linear>(ctx_dim, out, rng);
      RegisterModule("w_bias_gen" + std::to_string(l),
                     layer.w_bias_gen.get());
      RegisterModule("b_bias_gen" + std::to_string(l),
                     layer.b_bias_gen.get());
      RegisterModule("gamma_bias_gen" + std::to_string(l),
                     layer.gamma_bias_gen.get());
      RegisterModule("beta_bias_gen" + std::to_string(l),
                     layer.beta_bias_gen.get());
    }
    layers_.push_back(std::move(layer));
  }
}

ag::Variable StABT::Forward(const ag::Variable& x, const ag::Variable& h_c) {
  ag::Variable h = x;
  for (auto& layer : layers_) {
    // Fusion FC.
    ag::Variable pre = layer.fc->Forward(h);  // (W_t h + b_t): [B, out]
    if (adaptive_) {
      ag::Variable w_bias = ag::Sigmoid(layer.w_bias_gen->Forward(h_c));
      ag::Variable b_bias = ag::Sigmoid(layer.b_bias_gen->Forward(h_c));
      // (W_bias ⊙ W_t) h + (b_bias + b_t): the bias term b_t is inside
      // `pre`, so modulate the matmul part and add b_bias. Modulating after
      // the static bias would double-scale b_t, so recompute cleanly:
      //   pre_nobias = pre - b_t; h' = pre_nobias ⊙ W_bias + b_t + b_bias.
      ag::Variable pre_nobias =
          ag::AddRowBroadcast(pre, ag::Neg(layer.fc->bias()));
      pre = ag::Add(ag::AddRowBroadcast(ag::Mul(pre_nobias, w_bias),
                                        layer.fc->bias()),
                    b_bias);
    }
    // Fusion BN.
    ag::Variable normalized = layer.bn->Normalize(pre);
    ag::Variable scaled;
    if (adaptive_) {
      ag::Variable gamma_bias =
          ag::Sigmoid(layer.gamma_bias_gen->Forward(h_c));
      ag::Variable beta_bias = ag::Sigmoid(layer.beta_bias_gen->Forward(h_c));
      ag::Variable gamma_eff =
          ag::MulRowBroadcast(gamma_bias, layer.bn->gamma());  // [B,out]
      scaled = ag::Add(
          ag::AddRowBroadcast(ag::Mul(normalized, gamma_eff),
                              layer.bn->beta()),
          beta_bias);
    } else {
      scaled = ag::AddRowBroadcast(
          ag::MulRowBroadcast(normalized, layer.bn->gamma()),
          layer.bn->beta());
    }
    h = ag::LeakyRelu(scaled, 0.01f);
  }
  return h;
}

}  // namespace basm::core
