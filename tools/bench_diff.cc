// Perf-regression gate over BENCH_*.json artifacts: compares a baseline run
// (the previous CI artifact) against the current run and exits non-zero
// when any cell regresses by more than the threshold (default 20%,
// --max-regression=N). Two sections are understood:
//
//   "gemm" (BENCH_kernels.json)  — GFLOP/s per (m,k,n,backend) cell
//   "net"  (BENCH_serving.json)  — qps per cell, keyed by the composite
//          (frontend, replicas, connections, window); the replica sweep
//          carries only "replicas", the connection-scaling and pipelining
//          sweeps add "frontend"/"connections"/"window"
//
//   bench_diff <baseline.json> <current.json> [--max-regression=20]
//
// A missing baseline — or one carrying neither section — exits 0 ("nothing
// to compare") so the first run of a new branch passes; CI treats the
// download step the same way. Each section is gated independently, so the
// same binary serves both the kernels and the serving artifact. Cells
// present on only one side are reported but never fail the gate (sweeps
// may change across commits).
//
// Deliberately dependency-free like basm_lint: a hand-rolled scanner over
// the one JSON shape the benches emit, so the gate builds even when the
// library is broken.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Cell {
  long m = 0;
  long k = 0;
  long n = 0;
  /// backend name -> GFLOP/s
  std::map<std::string, double> gflops;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

void SkipSpace(const std::string& text, size_t* i) {
  while (*i < text.size() && std::isspace(static_cast<unsigned char>(text[*i])))
    ++*i;
}

/// Parses a quoted string at *i (which must point at '"'); false on EOF.
bool ParseString(const std::string& text, size_t* i, std::string* out) {
  if (*i >= text.size() || text[*i] != '"') return false;
  ++*i;
  out->clear();
  while (*i < text.size() && text[*i] != '"') {
    if (text[*i] == '\\' && *i + 1 < text.size()) ++*i;
    out->push_back(text[(*i)++]);
  }
  if (*i >= text.size()) return false;
  ++*i;  // closing quote
  return true;
}

bool ParseNumber(const std::string& text, size_t* i, double* out) {
  SkipSpace(text, i);
  char* end = nullptr;
  *out = std::strtod(text.c_str() + *i, &end);
  if (end == text.c_str() + *i) return false;
  *i = static_cast<size_t>(end - text.c_str());
  return true;
}

/// Skips one JSON value at *i that is not an object (callers track object
/// nesting themselves): a string, true/false/null, an array (recursively,
/// string-aware), or a number. Benches grow new non-numeric cells over
/// time; the gate must ignore what it doesn't gate, never error on it.
bool SkipValue(const std::string& text, size_t* i) {
  SkipSpace(text, i);
  if (*i >= text.size()) return false;
  char c = text[*i];
  if (c == '"') {
    std::string ignored;
    return ParseString(text, i, &ignored);
  }
  if (c == '[') {
    ++*i;
    while (*i < text.size()) {
      SkipSpace(text, i);
      if (*i >= text.size()) return false;
      if (text[*i] == ']') {
        ++*i;
        return true;
      }
      if (text[*i] == ',') {
        ++*i;
        continue;
      }
      if (text[*i] == '{') {
        // Balance a nested object without interpreting it; strings are
        // consumed whole so braces inside them don't count.
        int depth = 0;
        while (*i < text.size()) {
          if (text[*i] == '"') {
            std::string ignored;
            if (!ParseString(text, i, &ignored)) return false;
            continue;
          }
          if (text[*i] == '{') ++depth;
          if (text[*i] == '}' && --depth == 0) {
            ++*i;
            break;
          }
          ++*i;
        }
        continue;
      }
      if (!SkipValue(text, i)) return false;
    }
    return false;  // unterminated array
  }
  for (const char* literal : {"true", "false", "null"}) {
    size_t len = std::strlen(literal);
    if (text.compare(*i, len, literal) == 0) {
      *i += len;
      return true;
    }
  }
  double ignored = 0;
  return ParseNumber(text, i, &ignored);
}

/// Extracts every gemm cell from one BENCH_kernels.json text. Scans for the
/// "gemm" array and walks its objects; tolerates unknown keys by skipping
/// to the next comma at the object's depth.
std::vector<Cell> ParseGemmCells(const std::string& text) {
  std::vector<Cell> cells;
  size_t pos = text.find("\"gemm\"");
  if (pos == std::string::npos) return cells;
  pos = text.find('[', pos);
  if (pos == std::string::npos) return cells;
  ++pos;
  while (pos < text.size()) {
    SkipSpace(text, &pos);
    if (pos >= text.size() || text[pos] == ']') break;
    if (text[pos] == ',') {
      ++pos;
      continue;
    }
    if (text[pos] != '{') break;  // malformed: stop rather than loop
    ++pos;
    Cell cell;
    bool in_gflops = false;
    int depth = 1;
    while (pos < text.size() && depth > 0) {
      SkipSpace(text, &pos);
      if (pos >= text.size()) break;
      char c = text[pos];
      if (c == '}') {
        --depth;
        if (in_gflops) in_gflops = false;
        ++pos;
        continue;
      }
      if (c == ',' || c == ':') {
        ++pos;
        continue;
      }
      if (c == '{') {
        ++depth;
        ++pos;
        continue;
      }
      if (c == '"') {
        std::string key;
        if (!ParseString(text, &pos, &key)) break;
        SkipSpace(text, &pos);
        if (pos >= text.size() || text[pos] != ':') continue;
        ++pos;
        SkipSpace(text, &pos);
        if (pos < text.size() && text[pos] == '{') {
          if (key == "gflops") in_gflops = true;
          ++depth;
          ++pos;
          continue;
        }
        double value = 0;
        size_t value_start = pos;
        if (!ParseNumber(text, &pos, &value)) {
          // Non-numeric value (string, bool, null, array): not a gated
          // metric — skip it and keep walking the object.
          pos = value_start;
          if (!SkipValue(text, &pos)) break;
          continue;
        }
        if (in_gflops) {
          cell.gflops[key] = value;
        } else if (key == "m") {
          cell.m = static_cast<long>(value);
        } else if (key == "k") {
          cell.k = static_cast<long>(value);
        } else if (key == "n") {
          cell.n = static_cast<long>(value);
        }
        continue;
      }
      ++pos;  // any other token: advance
    }
    if (!cell.gflops.empty()) cells.push_back(cell);
  }
  return cells;
}

std::string CellKey(const Cell& cell) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "m=%ld k=%ld n=%ld", cell.m, cell.k,
                cell.n);
  return buf;
}

struct NetCell {
  /// Composite identity: the replica sweep keys on `replicas`, the
  /// connection-scaling and pipelining sweeps on frontend/connections/
  /// window. Absent keys stay at their defaults on both sides, so old
  /// baselines (replicas-only cells) keep matching.
  std::string frontend;
  long replicas = 0;
  long connections = 0;
  long window = 0;
  double qps = -1.0;
};

std::string NetCellKey(const NetCell& cell) {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "frontend=%s replicas=%ld connections=%ld window=%ld",
                cell.frontend.empty() ? "-" : cell.frontend.c_str(),
                cell.replicas, cell.connections, cell.window);
  return buf;
}

/// Extracts every cell of the "net" sweeps from one BENCH_serving.json
/// text. The cells are flat objects keyed by "replicas" (replica sweep) or
/// "frontend"/"connections"/"window" (scaling and pipelining sweeps) with
/// one gated metric, "qps"; other keys (latency percentiles, shed counts)
/// ride along ungated because they vary legitimately run to run.
std::vector<NetCell> ParseNetCells(const std::string& text) {
  std::vector<NetCell> cells;
  size_t pos = text.find("\"net\"");
  if (pos == std::string::npos) return cells;
  pos = text.find('[', pos);
  if (pos == std::string::npos) return cells;
  ++pos;
  while (pos < text.size()) {
    SkipSpace(text, &pos);
    if (pos >= text.size() || text[pos] == ']') break;
    if (text[pos] == ',') {
      ++pos;
      continue;
    }
    if (text[pos] != '{') break;  // malformed: stop rather than loop
    ++pos;
    NetCell cell;
    int depth = 1;
    while (pos < text.size() && depth > 0) {
      SkipSpace(text, &pos);
      if (pos >= text.size()) break;
      char c = text[pos];
      if (c == '}') {
        --depth;
        ++pos;
        continue;
      }
      if (c == ',' || c == ':') {
        ++pos;
        continue;
      }
      if (c == '{') {
        ++depth;
        ++pos;
        continue;
      }
      if (c == '"') {
        std::string key;
        if (!ParseString(text, &pos, &key)) break;
        SkipSpace(text, &pos);
        if (pos >= text.size() || text[pos] != ':') continue;
        ++pos;
        SkipSpace(text, &pos);
        if (pos < text.size() && text[pos] == '{') {
          ++depth;
          ++pos;
          continue;
        }
        if (pos < text.size() && text[pos] == '"') {
          // String value: the frontend tag is part of the cell identity;
          // any other string rides along ungated.
          std::string string_value;
          if (!ParseString(text, &pos, &string_value)) break;
          if (depth == 1 && key == "frontend") cell.frontend = string_value;
          continue;
        }
        double value = 0;
        size_t value_start = pos;
        if (!ParseNumber(text, &pos, &value)) {
          // Non-numeric value (bool, null, array): not a gated metric —
          // skip it and keep walking the object.
          pos = value_start;
          if (!SkipValue(text, &pos)) break;
          continue;
        }
        if (depth == 1) {
          if (key == "replicas") cell.replicas = static_cast<long>(value);
          else if (key == "connections") cell.connections = static_cast<long>(value);
          else if (key == "window") cell.window = static_cast<long>(value);
          else if (key == "qps") cell.qps = value;
        }
        continue;
      }
      ++pos;  // any other token: advance
    }
    if (cell.qps >= 0) cells.push_back(cell);
  }
  return cells;
}

/// Gates the qps of each baseline net cell against the current run's cell
/// with the same composite identity (frontend, replicas, connections,
/// window). Returns the number of regressions; bumps *compared per matched
/// cell.
int CompareNetCells(const std::vector<NetCell>& baseline,
                    const std::vector<NetCell>& current,
                    double max_regression_pct, int* compared) {
  std::map<std::string, double> current_by_key;
  for (const NetCell& cell : current) current_by_key[NetCellKey(cell)] = cell.qps;
  int regressions = 0;
  for (const NetCell& base : baseline) {
    auto it = current_by_key.find(NetCellKey(base));
    if (it == current_by_key.end()) {
      std::printf("  [skip] net %s: not in current run\n",
                  NetCellKey(base).c_str());
      continue;
    }
    ++*compared;
    if (base.qps <= 0) continue;
    double delta_pct = 100.0 * (it->second - base.qps) / base.qps;
    if (delta_pct < -max_regression_pct) {
      ++regressions;
      std::printf("  [FAIL] net %s: %.3f -> %.3f qps (%.1f%%)\n",
                  NetCellKey(base).c_str(), base.qps, it->second, delta_pct);
    }
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  double max_regression_pct = 20.0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-regression=", 17) == 0) {
      max_regression_pct = std::strtod(argv[i] + 17, nullptr);
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_diff <baseline.json> <current.json> "
                 "[--max-regression=PCT]\n");
    return 2;
  }

  std::string baseline_text;
  if (!ReadFile(paths[0], &baseline_text)) {
    std::printf("bench_diff: no baseline at %s — nothing to compare, OK\n",
                paths[0].c_str());
    return 0;
  }
  std::string current_text;
  if (!ReadFile(paths[1], &current_text)) {
    std::fprintf(stderr, "bench_diff: cannot read current run %s\n",
                 paths[1].c_str());
    return 2;
  }

  std::vector<Cell> gemm_baseline = ParseGemmCells(baseline_text);
  std::vector<Cell> gemm_current = ParseGemmCells(current_text);
  std::vector<NetCell> net_baseline = ParseNetCells(baseline_text);
  std::vector<NetCell> net_current = ParseNetCells(current_text);
  if (gemm_baseline.empty() && net_baseline.empty()) {
    std::printf("bench_diff: baseline has no gemm or net cells — OK\n");
    return 0;
  }
  if (!gemm_baseline.empty() && gemm_current.empty()) {
    std::fprintf(stderr, "bench_diff: current run has no gemm cells\n");
    return 1;
  }
  if (!net_baseline.empty() && net_current.empty()) {
    std::fprintf(stderr, "bench_diff: current run has no net cells\n");
    return 1;
  }

  std::map<std::string, const Cell*> current_by_key;
  for (const Cell& cell : gemm_current) current_by_key[CellKey(cell)] = &cell;

  int regressions = 0;
  int compared = 0;
  for (const Cell& base : gemm_baseline) {
    auto it = current_by_key.find(CellKey(base));
    if (it == current_by_key.end()) {
      std::printf("  [skip] %s: not in current run\n", CellKey(base).c_str());
      continue;
    }
    for (const auto& [backend, base_gflops] : base.gflops) {
      auto cur = it->second->gflops.find(backend);
      if (cur == it->second->gflops.end()) {
        std::printf("  [skip] %s %s: backend not in current run\n",
                    CellKey(base).c_str(), backend.c_str());
        continue;
      }
      ++compared;
      if (base_gflops <= 0) continue;
      double delta_pct = 100.0 * (cur->second - base_gflops) / base_gflops;
      if (delta_pct < -max_regression_pct) {
        ++regressions;
        std::printf("  [FAIL] %s %s: %.3f -> %.3f GFLOP/s (%.1f%%)\n",
                    CellKey(base).c_str(), backend.c_str(), base_gflops,
                    cur->second, delta_pct);
      }
    }
  }
  regressions += CompareNetCells(net_baseline, net_current,
                                 max_regression_pct, &compared);
  std::printf("bench_diff: %d cells compared, %d regressions beyond %.0f%%\n",
              compared, regressions, max_regression_pct);
  return regressions > 0 ? 1 : 0;
}
