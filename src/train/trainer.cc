#include "train/trainer.h"

#include <algorithm>

#include "common/logging.h"
#include "common/timer.h"
#include "data/batch.h"
#include "optim/optimizer.h"

namespace basm::train {

namespace ag = ::basm::autograd;

TrainResult Fit(models::CtrModel& model, const data::Dataset& dataset,
                const TrainConfig& config) {
  return FitExamples(model, dataset.TrainExamples(), dataset.schema, config);
}

TrainResult FitExamples(models::CtrModel& model,
                        const std::vector<const data::Example*>& examples,
                        const data::Schema& schema,
                        const TrainConfig& config) {
  const auto& train_examples = examples;
  BASM_CHECK(!train_examples.empty());
  data::Batcher batcher(train_examples, schema, config.batch_size,
                        config.shuffle_seed);

  optim::Adagrad opt(model.Parameters(), config.lr_base,
                     config.adagrad_decay);
  opt.set_clip_norm(config.clip_norm);
  optim::LinearWarmup warmup(config.lr_base, config.lr_peak,
                             config.warmup_steps);

  model.SetTraining(true);
  WallTimer timer;
  TrainResult result;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    batcher.Reset();
    data::Batch batch;
    double epoch_loss = 0.0;
    int64_t epoch_batches = 0;
    while (batcher.Next(&batch)) {
      opt.set_learning_rate(warmup.LearningRate(result.steps));
      ag::Variable logits = model.ForwardLogits(batch);
      ag::Variable loss = ag::BceWithLogits(logits, batch.labels);
      BASM_CHECK(!loss.value().HasNonFinite())
          << model.name() << " produced non-finite loss at step "
          << result.steps;
      ag::Backward(loss);
      opt.Step();
      result.final_loss = loss.value()[0];
      epoch_loss += result.final_loss;
      ++epoch_batches;
      ++result.steps;
      if (config.verbose && result.steps % 50 == 0) {
        BASM_LOG(Info) << model.name() << " step " << result.steps
                       << " loss " << result.final_loss;
      }
    }
    result.epoch_losses.push_back(
        static_cast<float>(epoch_loss / std::max<int64_t>(1, epoch_batches)));
  }
  result.seconds = timer.ElapsedSeconds();
  return result;
}

namespace {

/// AUC of `model` over an explicit example list (eval mode, then restores
/// training mode).
double AucOnExamples(models::CtrModel& model,
                     const std::vector<const data::Example*>& examples,
                     const data::Schema& schema) {
  model.SetTraining(false);
  std::vector<float> probs, labels;
  for (size_t start = 0; start < examples.size(); start += 512) {
    size_t end = std::min(examples.size(), start + 512);
    std::vector<const data::Example*> slice(examples.begin() + start,
                                            examples.begin() + end);
    data::Batch batch = data::MakeBatch(slice, schema);
    std::vector<float> p = model.PredictProbs(batch);
    probs.insert(probs.end(), p.begin(), p.end());
    for (const auto* e : slice) labels.push_back(e->label);
  }
  model.SetTraining(true);
  return metrics::Auc(probs, labels);
}

/// Snapshot / restore of all parameter values and buffers.
struct ModelSnapshot {
  std::vector<Tensor> params;
  std::vector<Tensor> buffers;

  static ModelSnapshot Take(models::CtrModel& model) {
    ModelSnapshot snap;
    for (auto& p : model.Parameters()) snap.params.push_back(p.value());
    for (auto& [name, b] : model.NamedBuffers()) snap.buffers.push_back(*b);
    return snap;
  }

  void Restore(models::CtrModel& model) const {
    auto params = model.Parameters();
    BASM_CHECK_EQ(params.size(), this->params.size());
    for (size_t i = 0; i < params.size(); ++i) {
      params[i].mutable_value() = this->params[i];
    }
    auto buffers = model.NamedBuffers();
    BASM_CHECK_EQ(buffers.size(), this->buffers.size());
    for (size_t i = 0; i < buffers.size(); ++i) {
      *buffers[i].second = this->buffers[i];
    }
  }
};

}  // namespace

ValidatedTrainResult FitWithValidation(models::CtrModel& model,
                                       const data::Dataset& dataset,
                                       const TrainConfig& config,
                                       int64_t patience,
                                       int64_t holdout_every) {
  BASM_CHECK_GT(patience, 0);
  BASM_CHECK_GT(holdout_every, 1);
  auto all_train = dataset.TrainExamples();
  BASM_CHECK(!all_train.empty());
  std::vector<const data::Example*> train_split, valid_split;
  for (const data::Example* e : all_train) {
    if (e->request_id % holdout_every == 0) {
      valid_split.push_back(e);
    } else {
      train_split.push_back(e);
    }
  }
  BASM_CHECK(!train_split.empty());
  BASM_CHECK(!valid_split.empty());

  data::Batcher batcher(train_split, dataset.schema, config.batch_size,
                        config.shuffle_seed);
  optim::Adagrad opt(model.Parameters(), config.lr_base,
                     config.adagrad_decay);
  opt.set_clip_norm(config.clip_norm);
  optim::LinearWarmup warmup(config.lr_base, config.lr_peak,
                             config.warmup_steps);

  model.SetTraining(true);
  WallTimer timer;
  ValidatedTrainResult result;
  ModelSnapshot best;
  int64_t epochs_without_improvement = 0;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    batcher.Reset();
    data::Batch batch;
    double epoch_loss = 0.0;
    int64_t epoch_batches = 0;
    while (batcher.Next(&batch)) {
      opt.set_learning_rate(warmup.LearningRate(result.train.steps));
      ag::Variable loss =
          ag::BceWithLogits(model.ForwardLogits(batch), batch.labels);
      ag::Backward(loss);
      opt.Step();
      result.train.final_loss = loss.value()[0];
      epoch_loss += result.train.final_loss;
      ++epoch_batches;
      ++result.train.steps;
    }
    result.train.epoch_losses.push_back(static_cast<float>(
        epoch_loss / std::max<int64_t>(1, epoch_batches)));

    double val_auc = AucOnExamples(model, valid_split, dataset.schema);
    result.epoch_val_aucs.push_back(val_auc);
    if (config.verbose) {
      BASM_LOG(Info) << model.name() << " epoch " << epoch << " val AUC "
                     << val_auc;
    }
    if (val_auc > result.best_val_auc) {
      result.best_val_auc = val_auc;
      result.best_epoch = epoch;
      best = ModelSnapshot::Take(model);
      epochs_without_improvement = 0;
    } else if (++epochs_without_improvement >= patience) {
      result.early_stopped = true;
      break;
    }
  }
  if (result.best_epoch >= 0 &&
      result.best_epoch + 1 !=
          static_cast<int64_t>(result.epoch_val_aucs.size())) {
    best.Restore(model);
  }
  result.train.seconds = timer.ElapsedSeconds();
  return result;
}

EvalResult EvaluateOnTest(models::CtrModel& model,
                          const data::Dataset& dataset, int64_t batch_size) {
  auto test_examples = dataset.TestExamples();
  BASM_CHECK(!test_examples.empty());
  model.SetTraining(false);

  EvalResult result;
  for (size_t start = 0; start < test_examples.size();
       start += static_cast<size_t>(batch_size)) {
    size_t end = std::min(test_examples.size(),
                          start + static_cast<size_t>(batch_size));
    std::vector<const data::Example*> slice(test_examples.begin() + start,
                                            test_examples.begin() + end);
    data::Batch batch = data::MakeBatch(slice, dataset.schema);
    std::vector<float> probs = model.PredictProbs(batch);
    for (size_t i = 0; i < slice.size(); ++i) {
      result.probs.push_back(probs[i]);
      result.labels.push_back(slice[i]->label);
      result.time_periods.push_back(slice[i]->time_period);
      result.cities.push_back(slice[i]->city);
      result.hours.push_back(slice[i]->hour);
      result.request_ids.push_back(slice[i]->request_id);
    }
  }
  result.summary =
      metrics::Evaluate(result.probs, result.labels, result.time_periods,
                        result.cities, result.request_ids);
  model.SetTraining(true);
  return result;
}

EfficiencyReport ProfileEfficiency(models::CtrModel& model,
                                   const data::Dataset& dataset,
                                   int64_t batch_size,
                                   int64_t probe_batches) {
  auto train_examples = dataset.TrainExamples();
  BASM_CHECK(!train_examples.empty());
  data::Batcher batcher(train_examples, dataset.schema, batch_size,
                        /*shuffle_seed=*/99);

  EfficiencyReport report;
  report.parameter_count = model.ParameterCount();
  report.parameter_bytes = model.ParameterBytes();

  optim::Adagrad opt(model.Parameters(), 0.01f);
  model.SetTraining(true);

  data::Batch batch;
  int64_t measured = 0;
  WallTimer timer;
  while (measured < probe_batches && batcher.Next(&batch)) {
    ag::Variable logits = model.ForwardLogits(batch);
    ag::Variable loss = ag::BceWithLogits(logits, batch.labels);
    ag::Backward(loss);
    if (measured == 0) {
      report.activation_bytes = ag::GraphTensorBytes(loss);
    }
    opt.Step();
    ++measured;
  }
  double seconds = timer.ElapsedSeconds();
  double per_batch = measured > 0 ? seconds / measured : 0.0;
  int64_t batches_per_epoch =
      (static_cast<int64_t>(train_examples.size()) + batch_size - 1) /
      batch_size;
  report.seconds_per_epoch = per_batch * static_cast<double>(batches_per_epoch);
  // Adagrad keeps one accumulator per parameter.
  report.total_bytes = report.parameter_bytes * 2 + report.activation_bytes;
  return report;
}

}  // namespace basm::train
