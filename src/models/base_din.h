#ifndef BASM_MODELS_BASE_DIN_H_
#define BASM_MODELS_BASE_DIN_H_

#include <memory>

#include "models/ctr_model.h"
#include "models/feature_encoder.h"
#include "nn/attention.h"
#include "nn/mlp.h"

namespace basm::models {

/// The paper's online base model: "a variation of DIN, mainly consisting of
/// three Multi-head Target Attention modules on the user's long / short /
/// realtime historical behavior sequences". Here the long view is the whole
/// history, the short view the most recent half, and the realtime view the
/// most recent two events; each gets its own target attention and the three
/// pooled interests join the tower.
class BaseDin : public CtrModel {
 public:
  BaseDin(const data::Schema& schema, int64_t embed_dim,
          std::vector<int64_t> hidden, Rng& rng);

  autograd::Variable ForwardLogits(const data::Batch& batch) override;
  autograd::Variable FinalRepresentation(const data::Batch& batch) override;
  std::string name() const override { return "Base(DIN-variant)"; }

 private:
  autograd::Variable Hidden(const data::Batch& batch);
  /// Masks positions >= `keep` (behaviors are most-recent-first).
  static Tensor TruncateMask(const Tensor& mask, int64_t keep);

  std::unique_ptr<FeatureEncoder> encoder_;
  std::unique_ptr<nn::TargetAttention> long_attn_;
  std::unique_ptr<nn::TargetAttention> short_attn_;
  std::unique_ptr<nn::TargetAttention> realtime_attn_;
  std::unique_ptr<nn::Mlp> tower_;
  std::unique_ptr<nn::Linear> out_;
};

}  // namespace basm::models

#endif  // BASM_MODELS_BASE_DIN_H_
