#include "nn/layernorm.h"

namespace basm::nn {

namespace ag = ::basm::autograd;

LayerNorm::LayerNorm(int64_t features, float eps)
    : features_(features), eps_(eps) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({1, features}));
  beta_ = RegisterParameter("beta", Tensor({1, features}));
}

ag::Variable LayerNorm::Forward(const ag::Variable& x) const {
  BASM_CHECK_EQ(x.value().rank(), 2);
  BASM_CHECK_EQ(x.value().cols(), features_);
  // Per-row statistics: mu, var are [B, 1] and broadcast over columns.
  ag::Variable mu =
      ag::Scale(ag::RowSum(x), 1.0f / static_cast<float>(features_));
  ag::Variable centered = ag::AddColBroadcast(x, ag::Neg(mu));
  ag::Variable var = ag::Scale(ag::RowSum(ag::Mul(centered, centered)),
                               1.0f / static_cast<float>(features_));
  ag::Variable inv = ag::Rsqrt(var, eps_);  // [B, 1]
  ag::Variable normalized = ag::MulColBroadcast(centered, inv);
  return ag::AddRowBroadcast(ag::MulRowBroadcast(normalized, gamma_), beta_);
}

}  // namespace basm::nn
