file(REMOVE_RECURSE
  "../bench/fig11_tsne_city"
  "../bench/fig11_tsne_city.pdb"
  "CMakeFiles/fig11_tsne_city.dir/fig11_tsne_city.cc.o"
  "CMakeFiles/fig11_tsne_city.dir/fig11_tsne_city.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_tsne_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
