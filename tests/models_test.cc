#include <memory>

#include "data/batch.h"
#include "data/synth.h"
#include "gtest/gtest.h"
#include "models/feature_encoder.h"
#include "core/model_zoo.h"
#include "tensor/tensor_ops.h"

namespace basm::models {
namespace {

namespace ag = ::basm::autograd;

class ModelsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthConfig c = data::SynthConfig::Eleme();
    c.num_users = 200;
    c.num_items = 150;
    c.num_cities = 4;
    c.requests_per_day = 30;
    c.days = 2;
    c.test_day = 1;
    c.seq_len = 6;
    dataset_ = new data::Dataset(data::GenerateDataset(c));
    auto train = dataset_->TrainExamples();
    std::vector<const data::Example*> slice(train.begin(),
                                            train.begin() + 16);
    batch_ = new data::Batch(data::MakeBatch(slice, dataset_->schema));
  }
  static void TearDownTestSuite() {
    delete batch_;
    delete dataset_;
    batch_ = nullptr;
    dataset_ = nullptr;
  }

  static data::Dataset* dataset_;
  static data::Batch* batch_;
};

data::Dataset* ModelsTest::dataset_ = nullptr;
data::Batch* ModelsTest::batch_ = nullptr;

TEST_F(ModelsTest, FeatureEncoderShapes) {
  Rng rng(1);
  FeatureEncoder enc(dataset_->schema, 8, rng);
  auto f = enc.Encode(*batch_);
  EXPECT_EQ(f.user.value().cols(), enc.user_dim());
  EXPECT_EQ(f.item.value().cols(), enc.item_dim());
  EXPECT_EQ(f.context.value().cols(), enc.context_dim());
  EXPECT_EQ(f.combine.value().cols(), enc.combine_dim());
  EXPECT_EQ(f.seq.value().dim(2), enc.seq_dim());
  EXPECT_EQ(f.seq_pooled.value().cols(), enc.seq_dim());
  EXPECT_EQ(f.query.value().cols(), enc.seq_dim());
  EXPECT_EQ(enc.concat_dim(), enc.user_dim() + enc.seq_dim() +
                                  enc.item_dim() + enc.context_dim() +
                                  enc.combine_dim());
}

TEST_F(ModelsTest, FeatureEncoderPooledRespectsMask) {
  Rng rng(2);
  FeatureEncoder enc(dataset_->schema, 4, rng);
  auto f = enc.Encode(*batch_);
  // filtered pooled is zero where the filter mask has no valid position.
  for (int64_t i = 0; i < batch_->size; ++i) {
    float filter_count = 0;
    for (int64_t j = 0; j < batch_->seq_len; ++j) {
      filter_count += batch_->seq_filter_mask.at(i, j);
    }
    if (filter_count == 0.0f) {
      for (int64_t j = 0; j < enc.seq_dim(); ++j) {
        EXPECT_EQ(f.seq_filtered_pooled.value().at(i, j), 0.0f);
      }
    }
  }
}

// Every zoo model: correct output shape, finite values, gradient reaches
// parameters, and deterministic under a fixed seed.
class ZooModelTest : public ModelsTest,
                     public ::testing::WithParamInterface<core::ModelKind> {};

TEST_P(ZooModelTest, ForwardShapeAndFinite) {
  auto model = core::CreateModel(GetParam(), dataset_->schema, 11);
  ag::Variable logits = model->ForwardLogits(*batch_);
  ASSERT_EQ(logits.value().rank(), 1);
  EXPECT_EQ(logits.value().dim(0), batch_->size);
  EXPECT_FALSE(logits.value().HasNonFinite());
}

TEST_P(ZooModelTest, GradientsReachSomeParameters) {
  auto model = core::CreateModel(GetParam(), dataset_->schema, 12);
  ag::Variable logits = model->ForwardLogits(*batch_);
  ag::Variable loss = ag::BceWithLogits(logits, batch_->labels);
  ag::Backward(loss);
  int64_t nonzero = 0;
  for (auto& p : model->Parameters()) {
    for (int64_t i = 0; i < p.grad().numel(); ++i) {
      if (p.grad()[i] != 0.0f) {
        ++nonzero;
        break;
      }
    }
  }
  // At least half of the parameter tensors get gradient from one batch.
  EXPECT_GT(nonzero, static_cast<int64_t>(model->Parameters().size()) / 2);
}

TEST_P(ZooModelTest, DeterministicUnderSeed) {
  auto m1 = core::CreateModel(GetParam(), dataset_->schema, 13);
  auto m2 = core::CreateModel(GetParam(), dataset_->schema, 13);
  m1->SetTraining(false);
  m2->SetTraining(false);
  ag::Variable l1 = m1->ForwardLogits(*batch_);
  ag::Variable l2 = m2->ForwardLogits(*batch_);
  EXPECT_TRUE(ops::AllClose(l1.value(), l2.value()));
}

TEST_P(ZooModelTest, DifferentSeedsDiffer) {
  auto m1 = core::CreateModel(GetParam(), dataset_->schema, 14);
  auto m2 = core::CreateModel(GetParam(), dataset_->schema, 15);
  m1->SetTraining(false);
  m2->SetTraining(false);
  ag::Variable l1 = m1->ForwardLogits(*batch_);
  ag::Variable l2 = m2->ForwardLogits(*batch_);
  EXPECT_GT(ops::MaxAbsDiff(l1.value(), l2.value()), 1e-6f);
}

TEST_P(ZooModelTest, PredictProbsInUnitInterval) {
  auto model = core::CreateModel(GetParam(), dataset_->schema, 16);
  model->SetTraining(false);
  std::vector<float> probs = model->PredictProbs(*batch_);
  ASSERT_EQ(static_cast<int64_t>(probs.size()), batch_->size);
  for (float p : probs) {
    EXPECT_GT(p, 0.0f);
    EXPECT_LT(p, 1.0f);
  }
}

TEST_P(ZooModelTest, FinalRepresentationMatchesBatch) {
  auto model = core::CreateModel(GetParam(), dataset_->schema, 17);
  model->SetTraining(false);
  ag::Variable rep = model->FinalRepresentation(*batch_);
  ASSERT_TRUE(rep.defined());
  EXPECT_EQ(rep.value().dim(0), batch_->size);
  EXPECT_GT(rep.value().cols(), 1);
  EXPECT_FALSE(rep.value().HasNonFinite());
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooModelTest,
    ::testing::Values(core::ModelKind::kWideDeep, core::ModelKind::kDin,
                      core::ModelKind::kAutoInt, core::ModelKind::kStar, core::ModelKind::kM2m,
                      core::ModelKind::kApg, core::ModelKind::kBasm, core::ModelKind::kBaseDin,
                      core::ModelKind::kDeepFm),
    [](const ::testing::TestParamInfo<core::ModelKind>& info) {
      std::string name = core::ModelKindName(info.param);
      std::string out;
      for (char c : name) {
        if (std::isalnum(static_cast<unsigned char>(c)) != 0) out += c;
      }
      return out;
    });

TEST_F(ModelsTest, TableFourOrder) {
  auto kinds = core::TableFourModels();
  ASSERT_EQ(kinds.size(), 7u);
  EXPECT_EQ(kinds.front(), core::ModelKind::kWideDeep);
  EXPECT_EQ(kinds.back(), core::ModelKind::kBasm);
}

TEST_F(ModelsTest, StarUsesMoreParametersThanDin) {
  auto din = core::CreateModel(core::ModelKind::kDin, dataset_->schema, 18);
  auto star = core::CreateModel(core::ModelKind::kStar, dataset_->schema, 18);
  // STAR keeps per-domain copies of tower weights.
  EXPECT_GT(star->ParameterCount(), din->ParameterCount());
}

}  // namespace
}  // namespace basm::models
