#include "tools/analyze/hot_path.h"

#include <regex>
#include <set>
#include <string>

namespace basm::analyze {
namespace {

/// The audited hot-path functions: the batch scoring spine and the wire
/// decoders that run once per request. Matched by unqualified name so the
/// rule follows the function through refactors.
const std::set<std::string>& HotFunctions() {
  static const std::set<std::string> kHot = {
      "ProcessBatch",        "ScoreExamples",
      "ScoreRange",          "DecodeFrameHeader",
      "DecodeRequestPayload", "DecodeResponsePayload",
  };
  return kHot;
}

const std::regex kNewRe(R"((^|[^\w])new($|[^\w]))");
const std::regex kMallocRe(R"((^|[^\w])(malloc|calloc|realloc|strdup)\s*\()");
const std::regex kMakeRe(R"((^|[^\w])(make_unique|make_shared)\s*[<(])");
const std::regex kGrowRe(R"(([A-Za-z_]\w*)\s*(?:\.|->)\s*(push_back|emplace_back)\s*\()");
const std::regex kBackInserterRe(R"(back_inserter\s*\(\s*([\w.>\-]*?([A-Za-z_]\w*))\s*\))");
const std::regex kReserveRe(R"(([A-Za-z_]\w*)\s*(?:\.|->)\s*(reserve|resize|assign)\s*\()");
const std::regex kSizedCtorRe(R"(>\s+([A-Za-z_]\w*)\s*\(\s*[^)\s])");

}  // namespace

std::vector<lint::Finding> RunHotPath(const std::vector<FileScan>& files) {
  std::vector<lint::Finding> findings;
  constexpr char kPass[] = "hot-path-alloc";

  for (const FileScan& file : files) {
    for (const FunctionScan& fn : file.functions) {
      if (!HotFunctions().count(fn.name)) continue;
      if (fn.start_line <= 0 ||
          fn.end_line > static_cast<int>(file.stripped_lines.size())) {
        continue;
      }
      // First sweep: every container with a capacity hint in this function.
      std::set<std::string> reserved;
      for (int i = fn.start_line; i <= fn.end_line; ++i) {
        const std::string& line = file.stripped_lines[i - 1];
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            kReserveRe);
             it != std::sregex_iterator(); ++it) {
          reserved.insert((*it)[1].str());
        }
        // `std::vector<T> xs(n)` / `std::vector<T> xs(n, v)` counts as
        // sized construction.
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            kSizedCtorRe);
             it != std::sregex_iterator(); ++it) {
          reserved.insert((*it)[1].str());
        }
      }
      const std::string where =
          (fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name);
      for (int i = fn.start_line; i <= fn.end_line; ++i) {
        const std::string& line = file.stripped_lines[i - 1];
        auto report = [&](const std::string& what) {
          findings.push_back(lint::Finding{
              file.path, i, kPass,
              where + ": " + what +
                  "; hot-path memory comes from the TensorArena or a "
                  "pre-reserved container"});
        };
        if (std::regex_search(line, kNewRe) &&
            line.find("arena") == std::string::npos) {
          report("raw `new` in a per-request path");
        }
        if (std::regex_search(line, kMallocRe)) {
          report("malloc-family allocation in a per-request path");
        }
        if (std::regex_search(line, kMakeRe)) {
          report("make_unique/make_shared allocation in a per-request path");
        }
        for (auto it =
                 std::sregex_iterator(line.begin(), line.end(), kGrowRe);
             it != std::sregex_iterator(); ++it) {
          std::string recv = (*it)[1].str();
          if (reserved.count(recv)) continue;
          report("`" + recv + "." + (*it)[2].str() +
                 "` without a prior reserve/resize/sized construction");
        }
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            kBackInserterRe);
             it != std::sregex_iterator(); ++it) {
          std::string recv = (*it)[2].str();
          if (reserved.count(recv)) continue;
          report("`back_inserter(" + recv +
                 ")` growth without a prior reserve/resize/sized "
                 "construction");
        }
      }
    }
  }
  return findings;
}

}  // namespace basm::analyze
