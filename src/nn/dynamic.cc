#include "nn/dynamic.h"

#include "nn/init.h"

namespace basm::nn {

namespace ag = ::basm::autograd;

MetaLinear::MetaLinear(int64_t cond_dim, int64_t in, int64_t out, Rng& rng)
    : in_(in), out_(out) {
  weight_gen_ = std::make_unique<Linear>(cond_dim, out * in, rng);
  bias_gen_ = std::make_unique<Linear>(cond_dim, out, rng);
  RegisterModule("weight_gen", weight_gen_.get());
  RegisterModule("bias_gen", bias_gen_.get());
  // Scale down the generator output so the initial dynamic mapping is
  // near-zero and training starts close to an identity-free residual path.
  autograd::Variable wg = weight_gen_->weight();
  wg.mutable_value().ScaleInPlace(0.1f);
  autograd::Variable bg = bias_gen_->weight();
  bg.mutable_value().ScaleInPlace(0.1f);
}

ag::Variable MetaLinear::Forward(const ag::Variable& x,
                                 const ag::Variable& cond) const {
  BASM_CHECK_EQ(x.value().rank(), 2);
  BASM_CHECK_EQ(x.value().cols(), in_);
  int64_t batch = x.value().rows();
  BASM_CHECK_EQ(cond.value().rows(), batch);

  ag::Variable w_flat = weight_gen_->Forward(cond);  // [B, out*in]
  ag::Variable b = bias_gen_->Forward(cond);         // [B, out]

  ag::Variable w3 = ag::Reshape(w_flat, {batch, out_, in_});
  ag::Variable x3 = ag::Reshape(x, {batch, in_, 1});
  ag::Variable y = ag::Reshape(ag::BatchedMatMul(w3, x3), {batch, out_});
  return ag::Add(y, b);
}

LowRankMetaLinear::LowRankMetaLinear(int64_t cond_dim, int64_t in, int64_t out,
                                     int64_t rank, Rng& rng)
    : in_(in), out_(out), rank_(rank) {
  u_ = RegisterParameter("u", XavierUniform(rank, out, rng));
  v_ = RegisterParameter("v", XavierUniform(in, rank, rng));
  core_gen_ = std::make_unique<Linear>(cond_dim, rank * rank, rng);
  bias_gen_ = std::make_unique<Linear>(cond_dim, out, rng);
  RegisterModule("core_gen", core_gen_.get());
  RegisterModule("bias_gen", bias_gen_.get());
}

ag::Variable LowRankMetaLinear::Forward(const ag::Variable& x,
                                        const ag::Variable& cond) const {
  BASM_CHECK_EQ(x.value().cols(), in_);
  int64_t batch = x.value().rows();
  BASM_CHECK_EQ(cond.value().rows(), batch);

  // h = x V: [B, r]
  ag::Variable h = ag::MatMul(x, v_);
  // core S[b]: [B, r, r] generated from the condition.
  ag::Variable s_flat = core_gen_->Forward(cond);  // [B, r*r]
  ag::Variable s3 = ag::Reshape(s_flat, {batch, rank_, rank_});
  ag::Variable h3 = ag::Reshape(h, {batch, rank_, 1});
  ag::Variable sh = ag::Reshape(ag::BatchedMatMul(s3, h3), {batch, rank_});
  // y = (S h) U + b
  ag::Variable y = ag::MatMul(sh, u_);
  return ag::Add(y, bias_gen_->Forward(cond));
}

}  // namespace basm::nn
