#include "online/model_registry.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <utility>

#include "common/logging.h"
#include "nn/serialize.h"

namespace basm::online {

ModelRegistry::ModelRegistry(size_t keep_last) : keep_last_(keep_last) {
  BASM_CHECK_GT(keep_last_, 0u);
}

StatusOr<uint64_t> ModelRegistry::Publish(std::string bytes,
                                          std::string note) {
  BASM_RETURN_IF_ERROR(nn::VerifyCheckpointImage(bytes));
  auto snapshot = std::make_shared<RegistrySnapshot>();
  snapshot->checksum = nn::CheckpointImageChecksum(bytes);
  snapshot->bytes = std::move(bytes);
  snapshot->note = std::move(note);

  MutexLock lock(&mu_);
  snapshot->version = next_version_++;
  uint64_t version = snapshot->version;
  entries_[version] = Entry{std::move(snapshot), /*pinned=*/false};
  GarbageCollectLocked();
  return version;
}

std::shared_ptr<const RegistrySnapshot> ModelRegistry::Head() const {
  MutexLock lock(&mu_);
  if (entries_.empty()) return nullptr;
  return entries_.rbegin()->second.snapshot;
}

std::shared_ptr<const RegistrySnapshot> ModelRegistry::Get(
    uint64_t version) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(version);
  return it == entries_.end() ? nullptr : it->second.snapshot;
}

Status ModelRegistry::Pin(uint64_t version) {
  MutexLock lock(&mu_);
  auto it = entries_.find(version);
  if (it == entries_.end()) {
    return Status::NotFound("version " + std::to_string(version) +
                            " not in registry");
  }
  it->second.pinned = true;
  return Status::Ok();
}

Status ModelRegistry::Unpin(uint64_t version) {
  MutexLock lock(&mu_);
  auto it = entries_.find(version);
  if (it == entries_.end()) {
    return Status::NotFound("version " + std::to_string(version) +
                            " not in registry");
  }
  it->second.pinned = false;
  return Status::Ok();
}

size_t ModelRegistry::GarbageCollect() {
  MutexLock lock(&mu_);
  return GarbageCollectLocked();
}

size_t ModelRegistry::GarbageCollectLocked() {
  if (entries_.size() <= keep_last_) return 0;
  // Walk oldest-first, dropping unpinned versions until only keep_last
  // remain. The newest entry (head) is always inside the keep window.
  size_t dropped = 0;
  size_t excess = entries_.size() - keep_last_;
  for (auto it = entries_.begin(); it != entries_.end() && excess > 0;) {
    if (it->second.pinned) {
      ++it;
      continue;
    }
    it = entries_.erase(it);
    --excess;
    ++dropped;
  }
  return dropped;
}

Status ModelRegistry::SaveHead(const std::string& path) const {
  std::shared_ptr<const RegistrySnapshot> head = Head();
  if (head == nullptr) {
    return Status::NotFound("registry is empty: nothing to save");
  }
  // Atomic publish: a reader of `path` sees either the previous complete
  // file or the new complete file, never a partial write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::Internal("cannot open " + tmp + " for writing");
    }
    out.write(head->bytes.data(),
              static_cast<std::streamsize>(head->bytes.size()));
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return Status::Internal("short write to " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("rename " + tmp + " -> " + path + " failed");
  }
  return Status::Ok();
}

StatusOr<uint64_t> ModelRegistry::LoadHead(const std::string& path,
                                           std::string note) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("registry file " + path + " not found");
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::Internal("read error on " + path);
  }
  // Publish runs the codec's magic/version/checksum verification, so a
  // corrupt file surfaces its own Status and never enters the registry.
  StatusOr<uint64_t> version = Publish(std::move(bytes), std::move(note));
  if (!version.ok()) {
    return Status(version.status().code(),
                  "registry file " + path +
                      " rejected: " + version.status().message());
  }
  return version;
}

std::vector<uint64_t> ModelRegistry::Versions() const {
  MutexLock lock(&mu_);
  std::vector<uint64_t> versions;
  versions.reserve(entries_.size());
  for (const auto& [version, entry] : entries_) versions.push_back(version);
  return versions;
}

uint64_t ModelRegistry::head_version() const {
  MutexLock lock(&mu_);
  return entries_.empty() ? 0 : entries_.rbegin()->first;
}

size_t ModelRegistry::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace basm::online
