#ifndef BASM_DATA_SYNTH_H_
#define BASM_DATA_SYNTH_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/schema.h"

namespace basm::data {

/// Configuration of the synthetic spatiotemporal world. Two presets mirror
/// the paper's datasets at laptop scale: Eleme() (dense clicks, strong
/// spatiotemporal structure, rich features) and Public() (sparse clicks,
/// weaker structure), preserving the qualitative contrasts of Table III.
struct SynthConfig {
  std::string name = "eleme-synth";
  uint64_t seed = 20220801;

  // -- entity counts --
  int64_t num_users = 4000;
  int64_t num_items = 1600;
  int64_t num_cities = 10;
  int64_t num_categories = 30;
  int64_t num_brands = 100;
  int64_t num_taste_clusters = 8;
  int geohash_bits = 16;  // cell precision for entity locations

  // -- traffic --
  int64_t days = 8;
  int32_t test_day = 7;  // last day held out, as in the paper
  int64_t requests_per_day = 1100;
  int32_t candidates_per_request = 8;
  int64_t seq_len = 12;

  // -- planted ground-truth effect sizes (log-odds units) --
  float base_logit = -4.2f;       // overall CTR level
  float hour_bias_scale = 0.55f;  // CTR drift across hours (Fig 2a)
  float city_bias_scale = 0.5f;   // CTR drift across cities (Fig 2b / 6)
  float affinity_scale = 1.0f;    // user-taste x item-category match
  float seq_scale = 0.7f;         // candidate matches recent behaviors
  float price_scale = 0.7f;       // spend-bucket x price-bucket fit
  float pop_scale = 0.6f;         // item popularity
  float position_scale = 0.45f;   // rank-slot bias within a request
  float noise_scale = 0.5f;       // irreducible per-impression noise

  /// Amplitude of time-period / city modulation of the effect weights —
  /// the "spatiotemporal data distribution" the paper is about. Zero makes
  /// every context identical (used in ablation benches).
  float tp_modulation = 0.9f;
  float city_modulation = 0.7f;

  /// Fraction of requests where the user is traveling (context city differs
  /// from home city).
  float travel_prob = 0.05f;

  static SynthConfig Eleme();
  static SynthConfig Public();

  /// Shrinks traffic ~10x for smoke runs.
  SynthConfig Fast() const;
};

/// The generative world: entity tables, planted preference structure, and
/// the ground-truth click model. The offline dataset generator and the
/// online A/B simulator both sample from one World so offline training and
/// online evaluation are mutually consistent (as in a real platform).
class World {
 public:
  explicit World(const SynthConfig& config);

  struct UserProfile {
    int32_t city = 0;
    int32_t gender = 0;
    int32_t age_bucket = 0;
    int32_t spend_bucket = 0;
    int32_t taste = 0;       // latent taste cluster
    float activity = 0.0f;   // [0,1] engagement level
    double lat = 0.0, lon = 0.0;
    int32_t geohash = 0;
    float ctr_stat = 0.0f;     // dense features exposed to models
    float orders_stat = 0.0f;
    float clicks_stat = 0.0f;
  };

  struct ItemProfile {
    int32_t city = 0;
    int32_t category = 0;
    int32_t brand = 0;
    int32_t price_bucket = 0;
    float popularity = 0.0f;  // [0,1]
    double lat = 0.0, lon = 0.0;
    int32_t geohash = 0;
    float ctr_stat = 0.0f;
    float shop_score = 0.0f;
  };

  const SynthConfig& config() const { return config_; }
  const Schema& schema() const { return schema_; }

  const UserProfile& user(int64_t id) const { return users_[id]; }
  const ItemProfile& item(int64_t id) const { return items_[id]; }
  const std::vector<int32_t>& CityItems(int32_t city) const {
    return city_items_[city];
  }

  /// Relative exposure weight of each hour (meal-time peaked; Fig 2a).
  const std::array<double, 24>& hour_exposure() const {
    return hour_exposure_;
  }
  /// Relative traffic weight per city (Zipf; Fig 2b).
  const std::vector<double>& city_exposure() const { return city_exposure_; }

  /// Planted CTR bias surfaces (Fig 6).
  float HourBias(int32_t hour) const { return hour_bias_[hour]; }
  float CityBias(int32_t city) const { return city_bias_[city]; }

  /// Whether `category` is in the preferred set of taste cluster `taste`
  /// during `tp` — the planted user-interest structure.
  bool IsPreferredCategory(int32_t taste, TimePeriod tp,
                           int32_t category) const;

  /// Ground-truth click log-odds for a fully-specified impression. `noise`
  /// should be a standard normal draw (0 for the expectation).
  float ClickLogit(int32_t user_id, int32_t item_id, int32_t hour,
                   int32_t position, int32_t context_city,
                   const std::vector<BehaviorEvent>& recent_behaviors,
                   float noise = 0.0f) const;

  /// sigmoid(ClickLogit).
  float ClickProbability(int32_t user_id, int32_t item_id, int32_t hour,
                         int32_t position, int32_t context_city,
                         const std::vector<BehaviorEvent>& recent_behaviors,
                         float noise = 0.0f) const;

  /// Samples a behavior history of `len` events consistent with the user's
  /// planted preferences.
  std::vector<BehaviorEvent> SampleHistory(int32_t user_id, int64_t len,
                                           Rng& rng) const;

  /// Samples an hour from the exposure curve.
  int32_t SampleHour(Rng& rng) const;
  /// Samples a user id (activity-weighted).
  int32_t SampleUser(Rng& rng) const;
  /// Samples `k` distinct candidate items from a city's pool, biased toward
  /// the user's preferred categories (mimicking a recall stage).
  std::vector<int32_t> SampleCandidates(int32_t user_id, int32_t city,
                                        TimePeriod tp, int32_t k,
                                        Rng& rng) const;

  /// Builds a complete Example row (features + ground-truth prob + sampled
  /// label) for one candidate impression.
  Example MakeExample(int32_t user_id, int32_t item_id, int32_t hour,
                      int32_t weekday, int32_t position, int32_t context_city,
                      int32_t day, int32_t request_id,
                      const std::vector<BehaviorEvent>& behaviors,
                      Rng& rng) const;

  /// Planted effect weights for introspection benches (Figs 8/9): the
  /// time-period multiplier applied to user-side vs item-side effects.
  float UserSideWeight(TimePeriod tp, int32_t city) const;
  float ItemSideWeight(TimePeriod tp, int32_t city) const;

 private:
  SynthConfig config_;
  Schema schema_;
  std::vector<UserProfile> users_;
  std::vector<ItemProfile> items_;
  std::vector<std::vector<int32_t>> city_items_;
  std::array<double, 24> hour_exposure_{};
  std::vector<double> city_exposure_;
  std::vector<float> hour_bias_;
  std::vector<float> city_bias_;
  std::vector<float> position_bias_;
  std::vector<double> user_sample_weights_;
  /// City activity tier in [0,1]; tier 0 cities are the largest.
  std::vector<float> city_activity_;
};

/// Generates a full offline dataset (train days + one test day) by replaying
/// `requests_per_day * days` requests through the world.
Dataset GenerateDataset(const SynthConfig& config);

}  // namespace basm::data

#endif  // BASM_DATA_SYNTH_H_
