#ifndef BASM_RUNTIME_LATENCY_RECORDER_H_
#define BASM_RUNTIME_LATENCY_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/synchronization.h"
#include "common/timer.h"

namespace basm::runtime {

/// Aggregated view of a LatencyRecorder at one instant.
struct LatencySnapshot {
  int64_t count = 0;     ///< completed requests
  int64_t rejects = 0;   ///< queue-full rejections
  int64_t timeouts = 0;  ///< deadline-exceeded drops
  /// Requests dropped without scoring — rejects + timeouts (derived).
  int64_t shed = 0;
  int64_t retries = 0;        ///< feature-fetch retry attempts
  int64_t degraded = 0;       ///< slates served degraded (any cause)
  /// Degraded split by feature-window mode: stale = last-known window from
  /// the feature store, empty = no window at all. Recall-only degradation
  /// is counted in `degraded` but in neither split.
  int64_t degraded_stale = 0;
  int64_t degraded_empty = 0;
  int64_t breaker_opens = 0;  ///< circuit-breaker trips observed
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  double mean_micros = 0.0;
  double p50_micros = 0.0;
  double p95_micros = 0.0;
  double p99_micros = 0.0;
  /// (batch size, occurrences) for every batch size seen, ascending.
  std::vector<std::pair<int64_t, int64_t>> batch_histogram;
  double mean_batch_size = 0.0;

  /// Circuit-breaker telemetry, attached by the owner of the breaker (the
  /// serving engine folds its pipeline's feature breaker in; the recorder
  /// itself never sees the breaker). Unlike the wait-free `breaker_opens`
  /// counter above — trips observed by workers within the window — these
  /// are the breaker's own lifetime state and transition counts.
  bool has_breaker = false;
  std::string breaker_state;          ///< "closed" / "open" / "half-open"
  int64_t breaker_open_count = 0;     ///< closed/half-open -> open total
  int64_t breaker_close_count = 0;    ///< half-open -> closed total
  int64_t breaker_short_circuits = 0; ///< calls rejected while open

  /// Feature-store telemetry, attached the same way by the engine when its
  /// pipeline fetches through a cache-enabled FeatureStore: the lifetime
  /// cache/prefetch counters behind the degraded_stale path.
  bool has_feature_store = false;
  int64_t fs_fresh_fetches = 0;      ///< successful server round-trips
  int64_t fs_fetch_failures = 0;     ///< failed server round-trips
  int64_t fs_cache_entries = 0;      ///< live last-known windows cached
  int64_t fs_stale_hits = 0;         ///< degraded fallbacks served stale
  int64_t fs_stale_misses = 0;       ///< fallbacks with nothing cached
  int64_t fs_insertions = 0;         ///< users entering the cache
  int64_t fs_evictions = 0;          ///< LRU displacements at capacity
  int64_t fs_prefetch_issued = 0;    ///< async prefetch fetches issued
  int64_t fs_prefetch_hits = 0;      ///< fetches served from a prefetch
  int64_t fs_prefetch_discarded = 0; ///< prefetches invalidated by clicks
  int64_t fs_prefetch_cancelled = 0; ///< prefetches skipped past deadline
  int64_t fs_stale_expired = 0;      ///< stale windows refused by the TTL
  /// Served-staleness quantiles over every stale window handed out (0
  /// until the first stale serve).
  int64_t fs_served_staleness_p50 = 0;
  int64_t fs_served_staleness_p99 = 0;
  /// Write-ahead click-journal counters (all zero when journaling is off;
  /// attached even when the LRU cache is disabled).
  bool fs_journal_enabled = false;
  int64_t fs_journal_appends = 0;
  int64_t fs_journal_fsyncs = 0;
  int64_t fs_journal_write_failures = 0;
  int64_t fs_journal_recovered = 0;
  int64_t fs_journal_truncated_tail_bytes = 0;

  /// Multi-line human-readable report for benches and examples.
  std::string ToString() const;

  /// One-line JSON object (counts, qps, percentiles, mean batch size) for
  /// machine-readable per-window logging — what the online trainer and the
  /// benches emit between hot-swaps.
  std::string ToJson() const;
};

/// Wait-free serving metrics: per-thread-sharded atomic counters plus a
/// log-scale latency histogram (quarter-octave buckets, ~12% resolution),
/// the qps/p50/p95/p99 surface a production RTP node exports. Recording is a
/// handful of relaxed atomic increments on a thread-private shard, so the
/// hot path never serializes workers; Snapshot() merges shards.
class LatencyRecorder {
 public:
  LatencyRecorder() = default;

  LatencyRecorder(const LatencyRecorder&) = delete;
  LatencyRecorder& operator=(const LatencyRecorder&) = delete;

  void RecordLatency(int64_t micros);
  void RecordBatchSize(int64_t size);
  void RecordReject();
  void RecordTimeout();
  /// Fault-tolerance counters: feature-fetch retries spent on one request,
  /// a slate served degraded, a breaker trip observed by a worker.
  void RecordRetries(int64_t n);
  void RecordDegraded();
  /// Degraded-mode split: the slate's feature window was the user's
  /// last-known (stale) window, or empty. Recorded alongside
  /// RecordDegraded, never instead of it.
  void RecordDegradedStale();
  void RecordDegradedEmpty();
  void RecordBreakerOpen();

  /// Merges every shard into one consistent-enough view (individual counters
  /// are exact; cross-counter skew is bounded by in-flight recordings).
  LatencySnapshot Snapshot() const;

  /// Per-window view: everything recorded since the previous
  /// IntervalSnapshot call (or construction), with qps over the window's
  /// wall time. Recording stays wait-free — the interval state is a
  /// subtraction baseline, shards are never reset. Concurrent callers get
  /// disjoint windows.
  LatencySnapshot IntervalSnapshot() BASM_EXCLUDES(interval_mu_);

  /// Restarts the qps clock without clearing counters (used after warmup).
  void ResetClock() { timer_.Reset(); }

  static constexpr int64_t kLatencyBuckets = 128;
  static constexpr int64_t kMaxTrackedBatch = 256;

  /// Quarter-octave bucket index for a latency in micros (public for tests).
  static int64_t BucketOf(int64_t micros);
  /// Representative (geometric-midpoint) latency of a bucket.
  static double BucketValue(int64_t bucket);

 private:
  static constexpr int64_t kShards = 16;

  /// One cache line per shard so workers never false-share counters.
  struct alignas(64) Shard {
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum_micros{0};
    std::atomic<int64_t> rejects{0};
    std::atomic<int64_t> timeouts{0};
    std::atomic<int64_t> retries{0};
    std::atomic<int64_t> degraded{0};
    std::atomic<int64_t> degraded_stale{0};
    std::atomic<int64_t> degraded_empty{0};
    std::atomic<int64_t> breaker_opens{0};
    std::array<std::atomic<int64_t>, kLatencyBuckets> latency_hist{};
    std::array<std::atomic<int64_t>, kMaxTrackedBatch + 1> batch_hist{};
  };

  /// Exact merged counters across shards at one instant.
  struct Totals {
    int64_t count = 0;
    int64_t rejects = 0;
    int64_t timeouts = 0;
    int64_t retries = 0;
    int64_t degraded = 0;
    int64_t degraded_stale = 0;
    int64_t degraded_empty = 0;
    int64_t breaker_opens = 0;
    int64_t sum_micros = 0;
    std::array<int64_t, kLatencyBuckets> latency_hist{};
    std::array<int64_t, kMaxTrackedBatch + 1> batch_hist{};
  };

  Shard& LocalShard();
  Totals MergeShards() const;
  static LatencySnapshot BuildSnapshot(const Totals& totals,
                                       double elapsed_seconds);

  std::array<Shard, kShards> shards_{};
  WallTimer timer_;

  /// Baseline of the current interval window.
  Mutex interval_mu_;
  Totals interval_base_ BASM_GUARDED_BY(interval_mu_);
  WallTimer interval_timer_ BASM_GUARDED_BY(interval_mu_);
};

}  // namespace basm::runtime

#endif  // BASM_RUNTIME_LATENCY_RECORDER_H_
