// Fixture: the same growth pattern as hot_path_bad.cc, one site reserved
// and the other silenced by an inline allow — zero surviving findings.
#include <vector>

namespace fixture {

void ProcessBatch(const std::vector<float>& in, std::vector<float>* sink) {
  std::vector<float> reserved_out;
  reserved_out.reserve(in.size());
  std::vector<float> scratch;
  for (float v : in) {
    reserved_out.push_back(v * 2.0f);
    scratch.push_back(v);  // basm-analyze: allow(hot-path-alloc)
  }
  sink->swap(reserved_out);
}

}  // namespace fixture
