// Reproduces Table III: basic statistics of both datasets (total size,
// feature columns, users, items, clicks, mean behavior-sequence length).
// The synthetic datasets are ratio-preserving scale-downs of the paper's:
// the Ele.me-like set is denser in clicks and features than the public-like
// set, which has more items relative to traffic.

#include <cstdio>
#include <set>

#include "common/env.h"
#include "common/table_printer.h"
#include "data/synth.h"

namespace {

using namespace basm;

struct Stats {
  int64_t total = 0;
  int64_t features = 0;
  int64_t users = 0;
  int64_t items = 0;
  int64_t clicks = 0;
  double mean_seq_len = 0.0;
};

Stats Collect(const data::Dataset& ds) {
  Stats s;
  s.total = static_cast<int64_t>(ds.examples.size());
  s.features = ds.schema.NumFeatureColumns();
  std::set<int32_t> users, items;
  double seq_total = 0.0;
  for (const auto& e : ds.examples) {
    users.insert(e.user_id);
    items.insert(e.item_id);
    if (e.label > 0.5f) ++s.clicks;
    seq_total += static_cast<double>(e.behaviors.size());
  }
  s.users = static_cast<int64_t>(users.size());
  s.items = static_cast<int64_t>(items.size());
  s.mean_seq_len = seq_total / static_cast<double>(s.total);
  return s;
}

}  // namespace

int main() {
  using namespace basm;
  std::printf("[table3] dataset statistics\n\n");
  TablePrinter table({"Dataset", "TotalSize", "#FeatureCols", "#Vocab",
                      "#Users", "#Items", "#Clicks", "CTR", "ML"});
  for (auto config : {data::SynthConfig::Eleme(), data::SynthConfig::Public()}) {
    if (basm::FastMode()) config = config.Fast();
    data::Dataset ds = data::GenerateDataset(config);
    Stats s = Collect(ds);
    table.AddRow({ds.name, std::to_string(s.total),
                  std::to_string(s.features),
                  std::to_string(ds.schema.TotalVocab()),
                  std::to_string(s.users), std::to_string(s.items),
                  std::to_string(s.clicks),
                  TablePrinter::Num(
                      static_cast<double>(s.clicks) / s.total, 4),
                  TablePrinter::Num(s.mean_seq_len, 2)});
  }
  table.Print();
  std::printf(
      "\n(paper: Ele.me 2.38B rows / 417 features / 81M users; public set\n"
      " 177M rows / 38 features / 14.4M users — same density contrasts at\n"
      " 1e-4 scale)\n");
  return 0;
}
