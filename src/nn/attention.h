#ifndef BASM_NN_ATTENTION_H_
#define BASM_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/mlp.h"
#include "nn/module.h"

namespace basm::nn {

/// DIN-style target attention (activation unit): scores each behavior
/// position against the candidate item with an MLP over
/// [query; key; query-key; query*key] and pools the sequence with the
/// masked-softmax weights.
class TargetAttention : public Module {
 public:
  /// `dim` is the per-position embedding width; `hidden` the activation-unit
  /// hidden width.
  TargetAttention(int64_t dim, int64_t hidden, Rng& rng);

  /// query: [B, dim]; keys: [B, T, dim]; mask: [B, T] with 1 = valid.
  /// Returns the attention-pooled sequence representation [B, dim].
  autograd::Variable Forward(const autograd::Variable& query,
                             const autograd::Variable& keys,
                             const Tensor& mask);

  /// Last computed attention weights [B, T] (value only, for inspection).
  const Tensor& last_weights() const { return last_weights_; }

 private:
  int64_t dim_;
  std::unique_ptr<Mlp> score_net_;
  Tensor last_weights_;
};

/// Multi-head self-attention over feature fields as used by AutoInt: input
/// is [B, F, D] with F field tokens; the interacting layer computes
/// per-head scaled dot-product attention, concatenates heads, adds a
/// residual projection and applies ReLU.
class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int64_t dim, int64_t num_heads, int64_t head_dim,
                         Rng& rng);

  /// x: [B, F, dim] -> [B, F, num_heads*head_dim].
  autograd::Variable Forward(const autograd::Variable& x);

  int64_t out_dim() const { return num_heads_ * head_dim_; }

 private:
  int64_t dim_;
  int64_t num_heads_;
  int64_t head_dim_;
  std::vector<std::unique_ptr<Linear>> q_proj_;
  std::vector<std::unique_ptr<Linear>> k_proj_;
  std::vector<std::unique_ptr<Linear>> v_proj_;
  std::unique_ptr<Linear> res_proj_;
};

}  // namespace basm::nn

#endif  // BASM_NN_ATTENTION_H_
