#include "data/io.h"

#include <cstdio>
#include <string>

#include "data/synth.h"
#include "gtest/gtest.h"

namespace basm::data {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Dataset TinyDataset() {
  SynthConfig c = SynthConfig::Eleme();
  c.num_users = 120;
  c.num_items = 90;
  c.num_cities = 3;
  c.requests_per_day = 15;
  c.days = 2;
  c.test_day = 1;
  c.seq_len = 4;
  return GenerateDataset(c);
}

TEST(DatasetIoTest, RoundTripPreservesEverything) {
  Dataset original = TinyDataset();
  std::string path = TempPath("dataset.bin");
  ASSERT_TRUE(SaveDataset(original, path).ok());
  StatusOr<Dataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Dataset& ds = loaded.value();

  EXPECT_EQ(ds.name, original.name);
  EXPECT_EQ(ds.test_day, original.test_day);
  EXPECT_EQ(ds.schema.num_users, original.schema.num_users);
  EXPECT_EQ(ds.schema.seq_len, original.schema.seq_len);
  ASSERT_EQ(ds.examples.size(), original.examples.size());
  for (size_t i = 0; i < ds.examples.size(); i += 7) {
    const Example& a = original.examples[i];
    const Example& b = ds.examples[i];
    EXPECT_EQ(a.user_id, b.user_id);
    EXPECT_EQ(a.item_id, b.item_id);
    EXPECT_EQ(a.hour, b.hour);
    EXPECT_EQ(a.city, b.city);
    EXPECT_EQ(a.cross_age_category, b.cross_age_category);
    EXPECT_FLOAT_EQ(a.label, b.label);
    EXPECT_FLOAT_EQ(a.gt_prob, b.gt_prob);
    EXPECT_FLOAT_EQ(a.user_ctr, b.user_ctr);
    ASSERT_EQ(a.behaviors.size(), b.behaviors.size());
    for (size_t j = 0; j < a.behaviors.size(); ++j) {
      EXPECT_EQ(a.behaviors[j].item_id, b.behaviors[j].item_id);
      EXPECT_EQ(a.behaviors[j].time_period, b.behaviors[j].time_period);
      EXPECT_EQ(a.behaviors[j].geohash, b.behaviors[j].geohash);
    }
  }
}

TEST(DatasetIoTest, MissingFileIsNotFound) {
  StatusOr<Dataset> loaded = LoadDataset(TempPath("nope.bin"));
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(DatasetIoTest, ForeignFileRejected) {
  std::string path = TempPath("foreign.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("definitely not a dataset file at all", f);
  std::fclose(f);
  StatusOr<Dataset> loaded = LoadDataset(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetIoTest, TruncatedFileRejected) {
  Dataset original = TinyDataset();
  std::string full = TempPath("full.bin");
  ASSERT_TRUE(SaveDataset(original, full).ok());
  // Copy the first 60%.
  std::FILE* in = std::fopen(full.c_str(), "rb");
  std::fseek(in, 0, SEEK_END);
  long size = std::ftell(in);
  std::fseek(in, 0, SEEK_SET);
  std::vector<char> buf(static_cast<size_t>(size * 6 / 10));
  ASSERT_EQ(std::fread(buf.data(), 1, buf.size(), in), buf.size());
  std::fclose(in);
  std::string trunc = TempPath("trunc.bin");
  std::FILE* out = std::fopen(trunc.c_str(), "wb");
  ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), out), buf.size());
  std::fclose(out);

  StatusOr<Dataset> loaded = LoadDataset(trunc);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInternal);
}

TEST(DatasetIoTest, CsvExportHasHeaderAndRows) {
  Dataset ds = TinyDataset();
  std::string path = TempPath("dataset.csv");
  ASSERT_TRUE(ExportCsv(ds, path, /*max_rows=*/10).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char line[4096];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  EXPECT_NE(std::string(line).find("user_id,gender"), std::string::npos);
  int rows = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) ++rows;
  std::fclose(f);
  EXPECT_EQ(rows, 10);
}

}  // namespace
}  // namespace basm::data
