#ifndef BASM_MODELS_FEATURE_ENCODER_H_
#define BASM_MODELS_FEATURE_ENCODER_H_

#include <memory>

#include "data/batch.h"
#include "data/schema.h"
#include "nn/embedding.h"
#include "nn/module.h"

namespace basm::models {

/// Embeds a Batch into the five field representations of Table I. Every
/// model in the zoo (baselines and BASM) owns one FeatureEncoder so that
/// offline comparisons differ only in architecture above the embeddings.
///
/// Field layout (D = embed_dim):
///   user:    user_id | gender | age | spend embeddings + 3 dense  (4D+3)
///   item:    item_id | category | brand | price | position + 3 dense (5D+3)
///   context: hour | time_period | city | geohash | weekday       (5D)
///   combine: spendxprice | agexcategory crosses                  (2D)
///   seq:     per position item|category|brand|time_period|city   (5D each)
class FeatureEncoder : public nn::Module {
 public:
  FeatureEncoder(const data::Schema& schema, int64_t embed_dim, Rng& rng);

  struct FieldEmbeddings {
    autograd::Variable user;     // [B, user_dim]
    autograd::Variable item;     // [B, item_dim]
    autograd::Variable context;  // [B, context_dim]
    autograd::Variable combine;  // [B, combine_dim]
    autograd::Variable seq;      // [B, T, seq_dim]
    /// Mask-weighted mean over valid positions: [B, seq_dim].
    autograd::Variable seq_pooled;
    /// Same pooling restricted to the spatiotemporally-filtered positions
    /// (the u_i of StSTL); rows with no matching behavior are zero.
    autograd::Variable seq_filtered_pooled;
    /// The candidate projected into sequence space (the DIN query):
    /// [B, seq_dim], sharing the sequence-side embedding tables.
    autograd::Variable query;
  };

  FieldEmbeddings Encode(const data::Batch& batch) const;

  int64_t embed_dim() const { return embed_dim_; }
  int64_t user_dim() const { return 4 * embed_dim_ + 3; }
  int64_t item_dim() const { return 5 * embed_dim_ + 3; }
  int64_t context_dim() const { return 5 * embed_dim_; }
  int64_t combine_dim() const { return 2 * embed_dim_; }
  int64_t seq_dim() const { return 5 * embed_dim_; }
  /// Width of [user; seq_pooled; item; context; combine].
  int64_t concat_dim() const {
    return user_dim() + seq_dim() + item_dim() + context_dim() + combine_dim();
  }
  /// Number of feature fields n (Eq. 5's j ranges over these).
  static constexpr int64_t kNumFields = 5;

 private:
  int64_t embed_dim_;
  // user side
  std::unique_ptr<nn::Embedding> user_id_, gender_, age_, spend_;
  // item side
  std::unique_ptr<nn::Embedding> item_id_, category_, brand_, price_,
      position_;
  // context
  std::unique_ptr<nn::Embedding> hour_, time_period_, city_, geohash_,
      weekday_;
  // combine
  std::unique_ptr<nn::Embedding> cross_sp_, cross_ac_;
};

}  // namespace basm::models

#endif  // BASM_MODELS_FEATURE_ENCODER_H_
