file(REMOVE_RECURSE
  "../bench/micro_models"
  "../bench/micro_models.pdb"
  "CMakeFiles/micro_models.dir/micro_models.cc.o"
  "CMakeFiles/micro_models.dir/micro_models.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
