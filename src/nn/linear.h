#ifndef BASM_NN_LINEAR_H_
#define BASM_NN_LINEAR_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace basm::nn {

/// Fully-connected layer y = x W + b with Xavier-initialized weights.
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, Rng& rng,
         bool use_bias = true);

  /// x: [batch, in_features] -> [batch, out_features].
  autograd::Variable Forward(const autograd::Variable& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

  const autograd::Variable& weight() const { return weight_; }
  const autograd::Variable& bias() const { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool use_bias_;
  autograd::Variable weight_;  // [in, out]
  autograd::Variable bias_;    // [1, out]
};

}  // namespace basm::nn

#endif  // BASM_NN_LINEAR_H_
