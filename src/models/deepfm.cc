#include "models/deepfm.h"

namespace basm::models {

namespace ag = ::basm::autograd;

DeepFm::DeepFm(const data::Schema& schema, int64_t embed_dim,
               std::vector<int64_t> hidden, Rng& rng)
    : embed_dim_(embed_dim) {
  encoder_ = std::make_unique<FeatureEncoder>(schema, embed_dim, rng);
  RegisterModule("encoder", encoder_.get());
  first_order_ = std::make_unique<nn::Linear>(encoder_->concat_dim(), 1, rng);
  RegisterModule("first_order", first_order_.get());
  std::vector<int64_t> dims = {encoder_->concat_dim()};
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  deep_ = std::make_unique<nn::Mlp>(dims, nn::Activation::kLeakyRelu, rng);
  RegisterModule("deep", deep_.get());
  deep_out_ = std::make_unique<nn::Linear>(dims.back(), 1, rng);
  RegisterModule("deep_out", deep_out_.get());
}

std::vector<ag::Variable> DeepFm::FeatureVectors(
    const FeatureEncoder::FieldEmbeddings& f) const {
  const int64_t d = embed_dim_;
  std::vector<ag::Variable> out;
  // user field layout: 4 embeddings then 3 dense columns.
  for (int64_t k = 0; k < 4; ++k) {
    out.push_back(ag::SliceCols(f.user, k * d, d));
  }
  // item field: 5 embeddings then 3 dense columns.
  for (int64_t k = 0; k < 5; ++k) {
    out.push_back(ag::SliceCols(f.item, k * d, d));
  }
  // context field: 5 embeddings.
  for (int64_t k = 0; k < 5; ++k) {
    out.push_back(ag::SliceCols(f.context, k * d, d));
  }
  // combine field: 2 embeddings.
  for (int64_t k = 0; k < 2; ++k) {
    out.push_back(ag::SliceCols(f.combine, k * d, d));
  }
  // behavior summary: the mask-pooled sequence is 5 stacked embeddings.
  for (int64_t k = 0; k < 5; ++k) {
    out.push_back(ag::SliceCols(f.seq_pooled, k * d, d));
  }
  return out;
}

ag::Variable DeepFm::ForwardLogits(const data::Batch& batch) {
  FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  ag::Variable x =
      ag::ConcatCols({f.user, f.seq_pooled, f.item, f.context, f.combine});

  // First-order term.
  ag::Variable first = first_order_->Forward(x);  // [B,1]

  // Second-order FM: 0.5 * sum_d ((sum_i v_id)^2 - sum_i v_id^2).
  std::vector<ag::Variable> features = FeatureVectors(f);
  ag::Variable sum_v = features[0];
  ag::Variable sum_sq = ag::Mul(features[0], features[0]);
  for (size_t i = 1; i < features.size(); ++i) {
    sum_v = ag::Add(sum_v, features[i]);
    sum_sq = ag::Add(sum_sq, ag::Mul(features[i], features[i]));
  }
  ag::Variable fm =
      ag::Scale(ag::RowSum(ag::Sub(ag::Mul(sum_v, sum_v), sum_sq)), 0.5f);

  // Deep term.
  ag::Variable hidden =
      nn::Apply(nn::Activation::kLeakyRelu, deep_->Forward(x));
  ag::Variable deep = deep_out_->Forward(hidden);

  return ag::Reshape(ag::Add(ag::Add(first, fm), deep), {batch.size});
}

ag::Variable DeepFm::FinalRepresentation(const data::Batch& batch) {
  FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  ag::Variable x =
      ag::ConcatCols({f.user, f.seq_pooled, f.item, f.context, f.combine});
  return nn::Apply(nn::Activation::kLeakyRelu, deep_->Forward(x));
}

}  // namespace basm::models
