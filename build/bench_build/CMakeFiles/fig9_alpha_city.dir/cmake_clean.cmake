file(REMOVE_RECURSE
  "../bench/fig9_alpha_city"
  "../bench/fig9_alpha_city.pdb"
  "CMakeFiles/fig9_alpha_city.dir/fig9_alpha_city.cc.o"
  "CMakeFiles/fig9_alpha_city.dir/fig9_alpha_city.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_alpha_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
