#ifndef BASM_ONLINE_MODEL_SLOT_H_
#define BASM_ONLINE_MODEL_SLOT_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/synchronization.h"
#include "models/ctr_model.h"

namespace basm::online {

/// One servable model instance plus its registry version. Immutable once
/// installed: scoring threads only ever read through it, and the slot's
/// shared_ptr keeps it alive until the last in-flight micro-batch releases
/// it — the mechanism that makes a swap zero-downtime.
struct ServableModel {
  uint64_t version = 0;
  /// Always valid; points at `owned` when the servable owns its model, or
  /// at a caller-owned model for the static (no-online-learning) case.
  models::CtrModel* model = nullptr;
  std::unique_ptr<models::CtrModel> owned;
};

/// Wraps a freshly-built model (must be in eval mode) as version `version`.
std::shared_ptr<const ServableModel> MakeServable(
    uint64_t version, std::unique_ptr<models::CtrModel> model);

/// Non-owning servable around a long-lived eval-mode model; version 0
/// means "static model, never swapped".
std::shared_ptr<const ServableModel> BorrowServable(models::CtrModel* model);

/// The hot-swap handle between the online trainer and the serving engine.
/// Workers Acquire() a snapshot of the current model once per micro-batch;
/// Install() atomically redirects future acquisitions to a new version.
/// In-flight batches finish on the model they acquired (their shared_ptr
/// pins it), new batches pick up the new version, and no request is ever
/// dropped or blocked by a swap.
class ModelSlot {
 public:
  ModelSlot() = default;
  /// Convenience: a slot born holding `initial`.
  explicit ModelSlot(std::shared_ptr<const ServableModel> initial);

  ModelSlot(const ModelSlot&) = delete;
  ModelSlot& operator=(const ModelSlot&) = delete;

  /// Snapshot of the current servable; null until the first Install. A
  /// mutex-protected shared_ptr copy — a handful of nanoseconds, paid once
  /// per micro-batch rather than per request.
  std::shared_ptr<const ServableModel> Acquire() const BASM_EXCLUDES(mu_);

  /// Publishes `next` to all future Acquire() calls. The previous servable
  /// is released here but destroyed only when its last acquirer finishes.
  void Install(std::shared_ptr<const ServableModel> next) BASM_EXCLUDES(mu_);

  /// Version of the currently-installed servable (0 when empty).
  uint64_t current_version() const BASM_EXCLUDES(mu_);

  /// Number of Install() calls so far.
  int64_t swap_count() const {
    return swaps_.load(std::memory_order_relaxed);
  }

 private:
  mutable Mutex mu_;
  std::shared_ptr<const ServableModel> current_ BASM_GUARDED_BY(mu_);
  std::atomic<int64_t> swaps_{0};
};

}  // namespace basm::online

#endif  // BASM_ONLINE_MODEL_SLOT_H_
