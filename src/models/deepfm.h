#ifndef BASM_MODELS_DEEPFM_H_
#define BASM_MODELS_DEEPFM_H_

#include <memory>

#include "models/ctr_model.h"
#include "models/feature_encoder.h"
#include "nn/linear.h"
#include "nn/mlp.h"

namespace basm::models {

/// DeepFM (Guo et al. 2017), discussed in the paper's related work: replaces
/// Wide&Deep's manual cross features with a factorization machine over the
/// per-feature embeddings (second-order interactions via the
/// 0.5 * ((sum v)^2 - sum v^2) identity), sharing embeddings with a deep MLP.
/// Included as an extension baseline beyond the paper's Table IV set.
class DeepFm : public CtrModel {
 public:
  DeepFm(const data::Schema& schema, int64_t embed_dim,
         std::vector<int64_t> hidden, Rng& rng);

  autograd::Variable ForwardLogits(const data::Batch& batch) override;
  autograd::Variable FinalRepresentation(const data::Batch& batch) override;
  std::string name() const override { return "DeepFM"; }

 private:
  /// Splits the field embeddings into the individual D-wide feature vectors
  /// the FM term interacts (categorical features only; dense stats feed the
  /// deep part and first-order term).
  std::vector<autograd::Variable> FeatureVectors(
      const FeatureEncoder::FieldEmbeddings& f) const;

  int64_t embed_dim_;
  std::unique_ptr<FeatureEncoder> encoder_;
  std::unique_ptr<nn::Linear> first_order_;
  std::unique_ptr<nn::Mlp> deep_;
  std::unique_ptr<nn::Linear> deep_out_;
};

}  // namespace basm::models

#endif  // BASM_MODELS_DEEPFM_H_
