// Spatiotemporal analysis walkthrough: trains BASM, then uses the analysis
// toolkit to inspect *why* it works — the learned StAEL field gates across
// time-periods, the per-group AUC metrics (TAUC/CAUC), and a t-SNE view of
// the final representations.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/ascii_chart.h"
#include "analysis/tsne.h"
#include "common/env.h"
#include "core/basm_model.h"
#include "data/batch.h"
#include "data/synth.h"
#include "metrics/metrics.h"
#include "train/trainer.h"

int main() {
  using namespace basm;
  bool fast = basm::FastMode();

  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 1200;
  config.num_items = 700;
  config.requests_per_day = fast ? 60 : 350;
  config.days = 5;
  config.test_day = 4;
  data::Dataset dataset = data::GenerateDataset(config);

  Rng rng(5);
  core::Basm model(dataset.schema, core::BasmConfig::Full(), rng);
  train::TrainConfig tc;
  tc.epochs = fast ? 1 : 2;
  std::printf("training BASM on %zu impressions...\n",
              dataset.examples.size());
  train::Fit(model, dataset, tc);

  // 1. Grouped ranking quality: the paper's TAUC / CAUC metrics.
  train::EvalResult eval = train::EvaluateOnTest(model, dataset);
  std::printf("\nAUC %.4f | TAUC %.4f | CAUC %.4f | LogLoss %.4f\n",
              eval.summary.auc, eval.summary.tauc, eval.summary.cauc,
              eval.summary.logloss);

  // 2. StAEL gate inspection: mean alpha per field for each time-period.
  model.SetTraining(false);
  auto test = dataset.TestExamples();
  std::vector<std::vector<double>> alpha_sum(
      data::kNumTimePeriods, std::vector<double>(5, 0.0));
  std::vector<int64_t> counts(data::kNumTimePeriods, 0);
  for (size_t start = 0; start < test.size(); start += 512) {
    size_t end = std::min(test.size(), start + 512);
    std::vector<const data::Example*> slice(test.begin() + start,
                                            test.begin() + end);
    data::Batch batch = data::MakeBatch(slice, dataset.schema);
    model.ForwardLogits(batch);
    for (size_t i = 0; i < slice.size(); ++i) {
      int32_t tp = slice[i]->time_period;
      for (int64_t j = 0; j < 5; ++j) {
        alpha_sum[tp][j] += model.last_alphas().at(static_cast<int64_t>(i), j);
      }
      counts[tp]++;
    }
  }
  std::vector<std::string> tp_names;
  for (int32_t tp = 0; tp < data::kNumTimePeriods; ++tp) {
    tp_names.push_back(data::TimePeriodName(static_cast<data::TimePeriod>(tp)));
    for (double& v : alpha_sum[tp]) {
      v /= std::max<int64_t>(1, counts[tp]);
    }
  }
  std::printf("\nlearned StAEL gate (alpha) per field x time-period:\n%s",
              analysis::Heatmap(tp_names, core::Basm::FieldNames(), alpha_sum)
                  .c_str());

  // 3. t-SNE of final representations colored by time-period.
  int64_t n = std::min<size_t>(fast ? 200 : 500, test.size());
  std::vector<const data::Example*> sample(test.begin(), test.begin() + n);
  data::Batch batch = data::MakeBatch(sample, dataset.schema);
  Tensor reps = model.FinalRepresentation(batch).value();
  analysis::TsneConfig tsne_config;
  tsne_config.iterations = fast ? 120 : 300;
  Tensor embedded = analysis::Tsne(tsne_config).Embed(reps);
  std::vector<double> xs, ys;
  std::vector<int> groups;
  std::vector<int32_t> groups32;
  for (int64_t i = 0; i < n; ++i) {
    xs.push_back(embedded.at(i, 0));
    ys.push_back(embedded.at(i, 1));
    groups.push_back(sample[i]->time_period);
    groups32.push_back(sample[i]->time_period);
  }
  std::printf("\nt-SNE of final representations (0=breakfast..4=night):\n%s",
              analysis::ScatterPlot(xs, ys, groups).c_str());
  std::printf("time-period separation ratio: %.3f\n",
              analysis::SeparationRatio(embedded, groups32));
  return 0;
}
