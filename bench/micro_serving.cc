// Serving-latency microbenchmarks: one full pipeline request (feature fetch
// -> recall -> batch scoring -> top-k) per model arm, plus the recall stage
// alone — the RTP/TPP-side numbers behind the deployment section.

#include <benchmark/benchmark.h>

#include <memory>

#include "data/synth.h"
#include "core/model_zoo.h"
#include "feature_store/feature_store.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace {

using namespace basm;

const data::World& SharedWorld() {
  static const data::World* world = [] {
    data::SynthConfig c = data::SynthConfig::Eleme();
    c.num_users = 1000;
    c.num_items = 800;
    c.num_cities = 8;
    return new data::World(c);
  }();
  return *world;
}

void BM_RecallByCity(benchmark::State& state) {
  serving::RecallIndex recall(SharedWorld());
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(recall.RecallByCity(0, 24, rng));
  }
}
BENCHMARK(BM_RecallByCity);

void BM_RecallByGeohash(benchmark::State& state) {
  const data::World& world = SharedWorld();
  serving::RecallIndex recall(world);
  Rng rng(2);
  int32_t cell = world.item(0).geohash;
  for (auto _ : state) {
    benchmark::DoNotOptimize(recall.RecallByGeohash(0, cell, 24, rng));
  }
}
BENCHMARK(BM_RecallByGeohash);

void BM_ServeRequest(benchmark::State& state) {
  auto kind = static_cast<core::ModelKind>(state.range(0));
  const data::World& world = SharedWorld();
  feature_store::FeatureServer features(world, world.config().seq_len, 3);
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);
  auto model = core::CreateModel(kind, world.schema(), 42);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/24, /*expose_k=*/8);
  serving::Request req;
  req.user_id = 5;
  req.hour = 12;
  req.city = world.user(5).city;
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pipeline.Serve(req, rng));
  }
  state.SetLabel(core::ModelKindName(kind));
}
BENCHMARK(BM_ServeRequest)
    ->Arg(static_cast<int64_t>(core::ModelKind::kBaseDin))
    ->Arg(static_cast<int64_t>(core::ModelKind::kBasm));

}  // namespace

BENCHMARK_MAIN();
