// Fixture: raw-mutex violation on line 6 (std::mutex member) and line 9
// (std::lock_guard). Never compiled; scanned by tests/lint_test.cc.
#include <string>

struct Fixture {
  std::mutex mu_;

  void Touch() {
    std::lock_guard<std::mutex> lock(mu_);
  }
};
