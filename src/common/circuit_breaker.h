#ifndef BASM_COMMON_CIRCUIT_BREAKER_H_
#define BASM_COMMON_CIRCUIT_BREAKER_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/synchronization.h"

namespace basm {

struct CircuitBreakerConfig {
  /// Consecutive failures that trip the breaker closed -> open.
  int32_t failure_threshold = 5;
  /// How long the breaker stays open before admitting half-open probes.
  int64_t open_micros = 20000;
  /// Probe calls admitted per half-open round; further calls short-circuit
  /// until the probes report back.
  int32_t half_open_probes = 1;
  /// Consecutive half-open successes that close the breaker.
  int32_t close_after_successes = 2;
};

/// Classic three-state circuit breaker guarding a fallible dependency
/// (here: the feature-fetch path). Closed passes every call through and
/// counts consecutive failures; after `failure_threshold` of them it opens
/// and fails fast — a dead dependency stops burning retry budget and
/// request deadline. After `open_micros` it admits a bounded number of
/// half-open probe calls: enough consecutive successes close it, any
/// failure reopens it. Thread-safe; Allow/Record are a mutex acquisition
/// plus integer math, far below the cost of the calls they guard.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Admission check before calling the dependency. False means
  /// short-circuit: skip the call and take the degraded path. May perform
  /// the open -> half-open transition when the open window has elapsed.
  bool Allow() BASM_EXCLUDES(mu_);

  /// Reports an admitted call's outcome. RecordFailure returns true when
  /// this failure tripped the breaker (closed/half-open -> open) — the
  /// caller's hook for a "breaker opened" metric.
  void RecordSuccess() BASM_EXCLUDES(mu_);
  bool RecordFailure() BASM_EXCLUDES(mu_);

  /// Counters and current state (state is sampled without forcing the
  /// open -> half-open transition; Allow does that).
  struct Stats {
    State state = State::kClosed;
    int32_t consecutive_failures = 0;
    int64_t opens = 0;           ///< closed/half-open -> open transitions
    int64_t half_opens = 0;      ///< open -> half-open transitions
    int64_t closes = 0;          ///< half-open -> closed transitions
    int64_t short_circuits = 0;  ///< calls rejected by Allow
  };
  Stats stats() const BASM_EXCLUDES(mu_);
  State state() const BASM_EXCLUDES(mu_);

  const CircuitBreakerConfig& config() const { return config_; }

  static const char* StateName(State state);

 private:
  using Clock = std::chrono::steady_clock;

  const CircuitBreakerConfig config_;
  mutable Mutex mu_;
  State state_ BASM_GUARDED_BY(mu_) = State::kClosed;
  int32_t consecutive_failures_ BASM_GUARDED_BY(mu_) = 0;
  int32_t half_open_inflight_ BASM_GUARDED_BY(mu_) = 0;
  int32_t half_open_successes_ BASM_GUARDED_BY(mu_) = 0;
  Clock::time_point open_until_ BASM_GUARDED_BY(mu_){};
  Stats counters_ BASM_GUARDED_BY(mu_);
};

}  // namespace basm

#endif  // BASM_COMMON_CIRCUIT_BREAKER_H_
