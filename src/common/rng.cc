#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace basm {

uint64_t Rng::NextUint64() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  state_ += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rng::NextUint64(uint64_t n) {
  BASM_CHECK_GT(n, 0u);
  // Rejection sampling to remove modulo bias.
  uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  BASM_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::Uniform() {
  // 53-bit mantissa for a uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  double u2 = Uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int64_t Rng::Categorical(const std::vector<double>& weights) {
  BASM_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    BASM_CHECK_GE(w, 0.0);
    total += w;
  }
  BASM_CHECK_GT(total, 0.0);
  double target = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return static_cast<int64_t>(i);
  }
  return static_cast<int64_t>(weights.size()) - 1;
}

std::vector<int32_t> Rng::Permutation(int64_t n) {
  std::vector<int32_t> perm(n);
  for (int64_t i = 0; i < n; ++i) perm[i] = static_cast<int32_t>(i);
  for (int64_t i = n - 1; i > 0; --i) {
    int64_t j = static_cast<int64_t>(NextUint64(static_cast<uint64_t>(i + 1)));
    std::swap(perm[i], perm[j]);
  }
  return perm;
}

Rng Rng::Fork(uint64_t tag) const {
  // Hash (state, tag) into a fresh seed so child streams do not overlap.
  uint64_t z = state_ ^ (tag * 0xD6E8FEB86659FD93ULL + 0xA5A5A5A5A5A5A5A5ULL);
  z = (z ^ (z >> 32)) * 0xD6E8FEB86659FD93ULL;
  z = (z ^ (z >> 32)) * 0xD6E8FEB86659FD93ULL;
  return Rng(z ^ (z >> 32));
}

ZipfTable::ZipfTable(int64_t n, double s) {
  BASM_CHECK_GT(n, 0);
  BASM_CHECK_GE(s, 0.0);
  cdf_.resize(n);
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (int64_t i = 0; i < n; ++i) cdf_[i] /= acc;
}

int64_t ZipfTable::Sample(Rng& rng) const {
  double u = rng.Uniform();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return static_cast<int64_t>(cdf_.size()) - 1;
  return static_cast<int64_t>(it - cdf_.begin());
}

double ZipfTable::Probability(int64_t i) const {
  BASM_CHECK_GE(i, 0);
  BASM_CHECK_LT(i, size());
  double lo = (i == 0) ? 0.0 : cdf_[i - 1];
  return cdf_[i] - lo;
}

}  // namespace basm
