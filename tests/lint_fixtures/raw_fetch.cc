// Fixture: direct feature-server fetches that bypass the FeatureStore
// facade. Lines 6 and 8 violate feature-fetch-outside-store; line 10 is
// suppressed inline and line 12 is a qualified mention, not a member call.
void F(S& server, S* remote) {
  auto a = server.FetchUserFeatures(1);
  (void)a;
  auto b = remote->FetchUserFeatures(2);
  (void)b;
  auto c = server.FetchUserFeatures(3);  // basm-lint: allow(feature-fetch-outside-store)
  (void)c;
  using Fn = decltype(&S::FetchUserFeatures);
}
