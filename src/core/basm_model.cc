#include "core/basm_model.h"

namespace basm::core {

namespace ag = ::basm::autograd;

Basm::Basm(const data::Schema& schema, const BasmConfig& config, Rng& rng)
    : config_(config) {
  encoder_ =
      std::make_unique<models::FeatureEncoder>(schema, config.embed_dim, rng);
  RegisterModule("encoder", encoder_.get());
  attention_ = std::make_unique<nn::TargetAttention>(encoder_->seq_dim(),
                                                     /*hidden=*/32, rng);
  RegisterModule("attention", attention_.get());

  if (config_.use_stael) {
    std::vector<int64_t> field_dims = {
        encoder_->user_dim(), encoder_->seq_dim(), encoder_->item_dim(),
        encoder_->context_dim(), encoder_->combine_dim()};
    stael_ = std::make_unique<StAEL>(field_dims, encoder_->context_dim(), rng,
                                     config_.gate_scale);
    RegisterModule("stael", stael_.get());
  }

  if (config_.use_ststl) {
    ststl_ = std::make_unique<StSTL>(
        encoder_->concat_dim(), encoder_->context_dim(), encoder_->seq_dim(),
        config_.ststl_out, config_.ststl_rank, rng);
    RegisterModule("ststl", ststl_.get());
  } else {
    static_semantic_ = std::make_unique<nn::Linear>(encoder_->concat_dim(),
                                                    config_.ststl_out, rng);
    RegisterModule("static_semantic", static_semantic_.get());
  }

  tower_ = std::make_unique<StABT>(config_.ststl_out, config_.tower_hidden,
                                   encoder_->context_dim(), rng,
                                   config_.use_stabt);
  RegisterModule("tower", tower_.get());
  out_ = std::make_unique<nn::Linear>(tower_->out_dim(), 1, rng);
  RegisterModule("out", out_.get());
}

std::string Basm::name() const {
  if (config_.use_stael && config_.use_ststl && config_.use_stabt) {
    return "BASM";
  }
  std::string n = "BASM";
  if (!config_.use_stael) n += " w/o StAEL";
  if (!config_.use_ststl) n += " w/o StSTL";
  if (!config_.use_stabt) n += " w/o StABT";
  return n;
}

const std::vector<std::string>& Basm::FieldNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "user", "behavior_seq", "item", "context", "combine"};
  return *names;
}

const Tensor& Basm::last_alphas() const {
  return stael_ != nullptr ? stael_->last_alphas() : empty_alphas_;
}

ag::Variable Basm::Hidden(const data::Batch& batch) {
  models::FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  ag::Variable interest = attention_->Forward(f.query, f.seq, batch.seq_mask);

  std::vector<ag::Variable> fields = {f.user, interest, f.item, f.context,
                                      f.combine};
  if (config_.use_stael) {
    fields = stael_->Forward(fields, f.context);
  }
  ag::Variable h_hat = ag::ConcatCols(fields);

  ag::Variable semantic;
  if (config_.use_ststl) {
    semantic = ststl_->Forward(h_hat, f.context, f.seq_filtered_pooled);
  } else {
    semantic = static_semantic_->Forward(h_hat);
  }
  semantic = ag::LeakyRelu(semantic, 0.01f);

  return tower_->Forward(semantic, f.context);
}

ag::Variable Basm::ForwardLogits(const data::Batch& batch) {
  return ag::Reshape(out_->Forward(Hidden(batch)), {batch.size});
}

ag::Variable Basm::FinalRepresentation(const data::Batch& batch) {
  return Hidden(batch);
}

}  // namespace basm::core
