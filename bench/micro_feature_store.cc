// Feature-store bench: the stale-cache and prefetch-overlap cells behind
// src/feature_store/. Two experiments feed the "feature_store" section of
// BENCH_serving.json:
//
//   "stale"    — capacity sweep of the last-known-features hit rate under a
//                total ABFS outage, Zipf-skewed users: how much of the
//                degraded traffic serves a real (stale) behavior window
//                instead of an empty one, per LRU budget.
//   "prefetch" — engine-level qps with async prefetch off vs on, under an
//                injected per-fetch RPC latency standing in for a remote
//                ABFS round-trip, plus the overlap counters (issued / hits /
//                discarded) that say how much fetch cost scoring hid.
//
// Intentionally a plain main() (not google-benchmark): each cell is one
// closed-loop run whose counters are the result.

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>

#include "bench_json.h"
#include "common/env.h"
#include "common/fault.h"
#include "common/rng.h"
#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "models/model_zoo.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "serving/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace {

using namespace basm;

void AppendJsonNumber(std::ostringstream& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out << buf;
}

}  // namespace

int main() {
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 2000;
  config.num_items = 1500;
  config.num_cities = 8;
  data::World world(config);

  const int64_t warm_requests =
      basm::EnvInt("BASM_FS_WARM_REQUESTS", basm::FastMode() ? 600 : 4000);
  const int64_t outage_requests = warm_requests / 2;

  std::printf("feature store bench: %lld warm + %lld outage requests, "
              "%lld users, hardware threads %u\n\n",
              static_cast<long long>(warm_requests),
              static_cast<long long>(outage_requests),
              static_cast<long long>(config.num_users),
              std::thread::hardware_concurrency());

  // --- stale hit-rate vs LRU budget under a total outage ------------------
  // Zipf-skewed traffic (head users dominate, like the fleet client): warm
  // the cache through the facade, then kill the dependency outright and
  // count how many degraded requests still find a last-known window.
  ZipfTable zipf(config.num_users, 1.1);
  std::ostringstream stale_json;
  stale_json << "[";
  std::printf("%-18s %-12s %-12s %-12s %-10s %s\n", "capacity/shard",
              "stale_hits", "stale_miss", "hit_rate", "evictions",
              "cache_entries");
  bool first = true;
  for (int64_t capacity : {16, 64, 256}) {
    serving::FeatureServer server(world, world.config().seq_len, 3);
    FaultInjector storm(7);
    server.SetFaultInjector(&storm);
    feature_store::FeatureStore store(
        &server, feature_store::FeatureStoreConfig{8, capacity});

    Rng rng(0xFEED);  // same user sequence for every capacity
    for (int64_t i = 0; i < warm_requests; ++i) {
      const int32_t user = static_cast<int32_t>(zipf.Sample(rng));
      StatusOr<serving::FeatureServer::UserFeatures> fetched =
          store.FetchFeatures(user);
      if (!fetched.ok()) std::printf("unexpected warm failure\n");
    }

    FaultSiteConfig outage;
    outage.error_probability = 1.0;
    outage.error_message = "abfs down";
    storm.Configure(serving::kFeatureFetchFaultSite, outage);
    for (int64_t i = 0; i < outage_requests; ++i) {
      const int32_t user = static_cast<int32_t>(zipf.Sample(rng));
      StatusOr<serving::FeatureServer::UserFeatures> fetched =
          store.FetchFeatures(user);
      if (!fetched.ok()) (void)store.LastKnownFeatures(user);
    }

    const feature_store::FeatureStoreStats stats = store.stats();
    const double hit_rate =
        static_cast<double>(stats.stale_hits) /
        static_cast<double>(stats.stale_hits + stats.stale_misses);
    std::printf("%-18lld %-12lld %-12lld %-12.3f %-10lld %lld\n",
                static_cast<long long>(capacity),
                static_cast<long long>(stats.stale_hits),
                static_cast<long long>(stats.stale_misses), hit_rate,
                static_cast<long long>(stats.evictions),
                static_cast<long long>(stats.cache_entries));

    if (!first) stale_json << ",";
    first = false;
    stale_json << "\n      {\"capacity_per_shard\": " << capacity
               << ", \"warm_requests\": " << warm_requests
               << ", \"outage_requests\": " << outage_requests
               << ", \"stale_hits\": " << stats.stale_hits
               << ", \"stale_misses\": " << stats.stale_misses
               << ", \"evictions\": " << stats.evictions
               << ", \"stale_hit_rate\": ";
    AppendJsonNumber(stale_json, hit_rate);
    stale_json << "}";
  }
  stale_json << "\n    ]";

  // --- prefetch overlap: engine qps with prefetch off vs on ---------------
  // Every fetch pays an injected latency spike (a remote ABFS round-trip);
  // the fault-tolerant pipeline routes the foreground fetch through the
  // same fallible path, so the off-cell pays the RPC inline while the
  // on-cells overlap it with the previous batch's scoring.
  serving::FeatureServer rpc_server(world, world.config().seq_len, 3);
  FaultInjector rpc(11);
  FaultSiteConfig latency;
  latency.spike_probability = 1.0;
  latency.spike_micros = 150;
  rpc.Configure(serving::kFeatureFetchFaultSite, latency);
  rpc_server.SetFaultInjector(&rpc);
  feature_store::FeatureStore store(&rpc_server);
  serving::RecallIndex recall(world);
  auto model =
      models::CreateModel(models::ModelKind::kBasm, world.schema(), 42);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/24, /*expose_k=*/8);
  pipeline.EnableFaultTolerance(serving::FeatureFaultPolicy{});

  runtime::LoadConfig load;
  load.num_requests =
      basm::EnvInt("BASM_FS_REQUESTS", basm::FastMode() ? 200 : 1200);
  load.concurrency = 32;

  std::printf("\nprefetch sweep: %lld requests/cell, injected fetch "
              "latency %lldus\n",
              static_cast<long long>(load.num_requests),
              static_cast<long long>(latency.spike_micros));
  std::printf("%-10s %-8s %-9s %-10s %-8s %-8s %-10s %s\n", "threads",
              "window", "qps", "delta_pct", "issued", "hits", "discarded",
              "hit_rate");

  struct PrefetchCell {
    int32_t threads;
    int64_t window;
  };
  std::ostringstream prefetch_json;
  prefetch_json << "[";
  first = true;
  double baseline_qps = 0.0;
  for (const PrefetchCell& cell :
       {PrefetchCell{0, 8}, PrefetchCell{1, 4}, PrefetchCell{2, 8}}) {
    runtime::EngineConfig ec;
    ec.num_workers = 2;
    ec.max_batch_requests = 4;
    ec.max_wait_micros = 200;
    ec.prefetch_threads = cell.threads;
    ec.prefetch_window = cell.window;
    runtime::ServingEngine engine(&pipeline, ec);

    const feature_store::FeatureStoreStats before = store.stats();
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    const feature_store::FeatureStoreStats after = store.stats();

    if (cell.threads == 0) baseline_qps = report.qps;
    const double delta_pct =
        baseline_qps > 0 ? 100.0 * (report.qps - baseline_qps) / baseline_qps
                         : 0.0;
    const int64_t issued = after.prefetch_issued - before.prefetch_issued;
    const int64_t hits = after.prefetch_hits - before.prefetch_hits;
    const int64_t discarded =
        after.prefetch_discarded - before.prefetch_discarded;
    const double hit_rate =
        static_cast<double>(hits) / static_cast<double>(load.num_requests);
    std::printf("%-10d %-8lld %-9.1f %-10.1f %-8lld %-8lld %-10lld %.3f\n",
                cell.threads, static_cast<long long>(cell.window), report.qps,
                delta_pct, static_cast<long long>(issued),
                static_cast<long long>(hits),
                static_cast<long long>(discarded), hit_rate);

    if (!first) prefetch_json << ",";
    first = false;
    prefetch_json << "\n      {\"prefetch_threads\": " << cell.threads
                  << ", \"prefetch_window\": " << cell.window
                  << ", \"requests\": " << load.num_requests
                  << ", \"fetch_latency_micros\": " << latency.spike_micros
                  << ", \"qps\": ";
    AppendJsonNumber(prefetch_json, report.qps);
    prefetch_json << ", \"qps_delta_pct\": ";
    AppendJsonNumber(prefetch_json, delta_pct);
    prefetch_json << ", \"prefetch_issued\": " << issued
                  << ", \"prefetch_hits\": " << hits
                  << ", \"prefetch_discarded\": " << discarded
                  << ", \"prefetch_hit_rate\": ";
    AppendJsonNumber(prefetch_json, hit_rate);
    prefetch_json << "}";
  }
  prefetch_json << "\n    ]";

  std::ostringstream section;
  section << "{\n    \"stale\": " << stale_json.str()
          << ",\n    \"prefetch\": " << prefetch_json.str() << "\n  }";
  const std::string json_path =
      basm::EnvString("BASM_BENCH_JSON", "BENCH_serving.json");
  if (basm::bench::UpdateBenchJsonSection(json_path, "feature_store",
                                          section.str())) {
    std::printf("\nwrote \"feature_store\" section of %s\n",
                json_path.c_str());
  } else {
    std::printf("\nFAILED to write %s\n", json_path.c_str());
  }
  return 0;
}
