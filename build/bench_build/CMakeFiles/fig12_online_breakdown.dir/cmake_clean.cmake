file(REMOVE_RECURSE
  "../bench/fig12_online_breakdown"
  "../bench/fig12_online_breakdown.pdb"
  "CMakeFiles/fig12_online_breakdown.dir/fig12_online_breakdown.cc.o"
  "CMakeFiles/fig12_online_breakdown.dir/fig12_online_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_online_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
