#ifndef BASM_MODELS_APG_H_
#define BASM_MODELS_APG_H_

#include <memory>
#include <vector>

#include "models/ctr_model.h"
#include "models/feature_encoder.h"
#include "nn/attention.h"
#include "nn/dynamic.h"
#include "nn/linear.h"

namespace basm::models {

/// APG (Yan et al. 2022): adaptive parameter generation. The first tower
/// layer's weight matrix is generated per-instance in full (the costly
/// configuration the BASM paper profiles in Table VI, where APG is the most
/// expensive comparison model); deeper layers use the low-rank decomposition
/// W = U S(z) V. Self-wise conditioning: z is a compressed view of the
/// instance's own input embedding.
class Apg : public CtrModel {
 public:
  Apg(const data::Schema& schema, int64_t embed_dim,
      std::vector<int64_t> hidden, int64_t rank, Rng& rng);

  autograd::Variable ForwardLogits(const data::Batch& batch) override;
  autograd::Variable FinalRepresentation(const data::Batch& batch) override;
  std::string name() const override { return "APG"; }

 private:
  autograd::Variable Hidden(const data::Batch& batch);

  std::unique_ptr<FeatureEncoder> encoder_;
  std::unique_ptr<nn::TargetAttention> attention_;
  std::unique_ptr<nn::Linear> condition_;  // input -> condition z
  std::unique_ptr<nn::MetaLinear> first_layer_;  // full generation
  std::vector<std::unique_ptr<nn::LowRankMetaLinear>> layers_;
  std::unique_ptr<nn::Linear> out_;
};

}  // namespace basm::models

#endif  // BASM_MODELS_APG_H_
