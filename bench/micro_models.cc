// Microbenchmarks of full-model forward and forward+backward steps for every
// model in the zoo at serving (64) and training (256) batch sizes — the
// per-step view behind Table VI.

#include <benchmark/benchmark.h>

#include "autograd/ops.h"
#include "data/batch.h"
#include "data/synth.h"
#include "core/model_zoo.h"

namespace {

using namespace basm;
namespace ag = basm::autograd;

const data::Dataset& SharedDataset() {
  static const data::Dataset* dataset = [] {
    data::SynthConfig c = data::SynthConfig::Eleme();
    c.num_users = 500;
    c.num_items = 300;
    c.num_cities = 6;
    c.requests_per_day = 60;
    c.days = 2;
    c.test_day = 1;
    return new data::Dataset(data::GenerateDataset(c));
  }();
  return *dataset;
}

data::Batch MakeSharedBatch(int64_t batch_size) {
  const data::Dataset& ds = SharedDataset();
  auto train = ds.TrainExamples();
  std::vector<const data::Example*> slice(
      train.begin(), train.begin() + std::min<size_t>(batch_size,
                                                      train.size()));
  return data::MakeBatch(slice, ds.schema);
}

void BM_ModelForward(benchmark::State& state) {
  auto kind = static_cast<core::ModelKind>(state.range(0));
  int64_t batch_size = state.range(1);
  auto model = core::CreateModel(kind, SharedDataset().schema, 42);
  model->SetTraining(false);
  data::Batch batch = MakeSharedBatch(batch_size);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->ForwardLogits(batch).value().data());
  }
  state.SetLabel(core::ModelKindName(kind));
  state.SetItemsProcessed(state.iterations() * batch.size);
}

void BM_ModelTrainStep(benchmark::State& state) {
  auto kind = static_cast<core::ModelKind>(state.range(0));
  auto model = core::CreateModel(kind, SharedDataset().schema, 42);
  model->SetTraining(true);
  data::Batch batch = MakeSharedBatch(256);
  for (auto _ : state) {
    ag::Variable loss =
        ag::BceWithLogits(model->ForwardLogits(batch), batch.labels);
    ag::Backward(loss);
    model->ZeroGrad();
  }
  state.SetLabel(core::ModelKindName(kind));
  state.SetItemsProcessed(state.iterations() * batch.size);
}

void RegisterAll() {
  for (auto kind :
       {core::ModelKind::kWideDeep, core::ModelKind::kDin,
        core::ModelKind::kAutoInt, core::ModelKind::kStar,
        core::ModelKind::kM2m, core::ModelKind::kApg,
        core::ModelKind::kBasm, core::ModelKind::kBaseDin}) {
    std::string name = core::ModelKindName(kind);
    benchmark::RegisterBenchmark(("BM_Forward64/" + name).c_str(),
                                 BM_ModelForward)
        ->Args({static_cast<int64_t>(kind), 64});
    benchmark::RegisterBenchmark(("BM_TrainStep256/" + name).c_str(),
                                 BM_ModelTrainStep)
        ->Args({static_cast<int64_t>(kind)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
