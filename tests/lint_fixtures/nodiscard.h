// Fixture: nodiscard-status violations on lines 8 (Status) and 10
// (StatusOr with nested template args). Never compiled.
#ifndef FIXTURE_NODISCARD_H_
#define FIXTURE_NODISCARD_H_

#include "common/status.h"

basm::Status Flush(const std::string& path);

basm::StatusOr<std::unique_ptr<int>> Load(const std::string& path);

#endif  // FIXTURE_NODISCARD_H_
