// Concurrent serving walk-through: stand up the Fig 13 serving stack (ABFS
// feature server, LBS recall, RTP scoring) behind the runtime::ServingEngine
// front door, then show the three behaviours a production ranking service
// needs — futures with ranked slates, per-request deadlines, and
// reject-on-full backpressure — plus the engine's latency report.

#include <cstdio>
#include <future>
#include <vector>

#include "data/synth.h"
#include "core/model_zoo.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_store.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

using namespace basm;

int main() {
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 500;
  config.num_items = 400;
  config.num_cities = 4;
  data::World world(config);

  feature_store::FeatureServer features(world, world.config().seq_len, 7);
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 21);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/20, /*expose_k=*/5);

  runtime::EngineConfig ec;
  ec.num_workers = 4;
  ec.max_batch_requests = 4;
  ec.max_wait_micros = 200;
  runtime::ServingEngine engine(&pipeline, ec);

  // 1) Concurrent submissions resolve to ranked slates via futures.
  std::printf("== slates ==\n");
  std::vector<std::future<runtime::SlateResult>> futures;
  for (int32_t user = 0; user < 4; ++user) {
    serving::Request req;
    req.user_id = user;
    req.hour = 12;
    req.city = world.user(user).city;
    req.request_id = user;
    futures.push_back(engine.Submit(req));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    runtime::SlateResult result = futures[i].get();
    std::printf("user %zu (%s): ", i, result.status.ToString().c_str());
    for (const auto& item : result.slate) {
      std::printf("#%d:%.3f ", item.item_id, item.score);
    }
    std::printf("\n");
  }

  // 2) A deadline that has already passed is shed, not scored.
  serving::Request late;
  late.user_id = 9;
  late.city = world.user(9).city;
  runtime::SlateResult shed = engine.Submit(late, {}, /*deadline_micros=*/0)
                                  .get();
  std::printf("\n== deadline ==\nexpired request -> %s\n",
              shed.status.ToString().c_str());

  // 3) Closed-loop traffic, then the engine's own telemetry.
  runtime::LoadConfig load;
  load.num_requests = 200;
  load.concurrency = 16;
  runtime::LoadGenerator generator(world, load);
  runtime::LoadReport report = generator.Run(engine);
  std::printf("\n== load ==\n%s\n\n== engine stats ==\n%s",
              report.ToString().c_str(), engine.Stats().ToString().c_str());

  engine.Shutdown();
  runtime::SlateResult after =
      engine.Submit(late).get();
  std::printf("\nafter shutdown -> %s\n", after.status.ToString().c_str());
  return 0;
}
