#ifndef BASM_NN_MODULE_H_
#define BASM_NN_MODULE_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.h"

namespace basm::nn {

/// Base class for trainable components. Owns a registry of named parameter
/// Variables and (non-owning) pointers to submodules, so optimizers can reach
/// every trainable tensor via Parameters() on the root model.
class Module {
 public:
  Module() = default;
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its registered submodules.
  std::vector<autograd::Variable> Parameters() const;

  /// (name, parameter) pairs, prefixed with submodule paths.
  std::vector<std::pair<std::string, autograd::Variable>> NamedParameters()
      const;

  /// (name, buffer) pairs for non-trainable state that must survive
  /// checkpointing (batch-norm running statistics).
  std::vector<std::pair<std::string, Tensor*>> NamedBuffers() const;

  /// Total number of scalar parameters.
  int64_t ParameterCount() const;

  /// Approximate parameter memory in bytes (float32).
  int64_t ParameterBytes() const { return ParameterCount() * 4; }

  /// Switches train/eval behaviour (batch-norm statistics) recursively.
  void SetTraining(bool training);
  bool training() const { return training_; }

  /// Zeroes every parameter gradient.
  void ZeroGrad();

 protected:
  /// Creates a trainable leaf from an initial value and registers it.
  autograd::Variable RegisterParameter(std::string name, Tensor init);

  /// Registers non-trainable persistent state; `buffer` must point at a
  /// member tensor of this module (it is not owned).
  void RegisterBuffer(std::string name, Tensor* buffer);

  /// Registers a child; the caller keeps ownership (usually a member).
  void RegisterModule(std::string name, Module* submodule);

 private:
  std::vector<std::pair<std::string, autograd::Variable>> params_;
  std::vector<std::pair<std::string, Tensor*>> buffers_;
  std::vector<std::pair<std::string, Module*>> submodules_;
  bool training_ = true;
};

}  // namespace basm::nn

#endif  // BASM_NN_MODULE_H_
