#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "gtest/gtest.h"
#include "core/model_zoo.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace basm::feature_store {
namespace {

data::SynthConfig StoreWorldConfig() {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 64;
  c.num_items = 60;
  c.num_cities = 2;
  c.seq_len = 5;
  return c;
}

std::vector<int32_t> ItemIds(const std::vector<data::BehaviorEvent>& events) {
  std::vector<int32_t> ids;
  ids.reserve(events.size());
  for (const data::BehaviorEvent& e : events) ids.push_back(e.item_id);
  return ids;
}

TEST(FeatureStoreTest, ShardingIsStableAndInRange) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStoreConfig config;
  config.num_shards = 5;
  FeatureStore store(&server, config);
  for (int32_t u = 0; u < 64; ++u) {
    int32_t shard = store.ShardOf(u);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 5);
    EXPECT_EQ(shard, store.ShardOf(u));  // stable across calls
  }
}

TEST(FeatureStoreTest, FetchesBitIdenticalToRawServer) {
  data::World world(StoreWorldConfig());
  // Twin servers with the same seed bootstrap identical behavior windows;
  // one serves through the store, the other is the raw reference.
  feature_store::FeatureServer stored(world, world.config().seq_len, 3);
  feature_store::FeatureServer raw(world, world.config().seq_len, 3);
  FeatureStore store(&stored);

  for (int32_t u = 0; u < 20; ++u) {
    EXPECT_EQ(ItemIds(store.GetFeatures(u).behaviors),
              ItemIds(raw.GetUserFeatures(u).behaviors));
    auto fetched = store.FetchFeatures(u);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(ItemIds(fetched.value().behaviors),
              ItemIds(raw.GetUserFeatures(u).behaviors));
  }

  // Clicks through the store keep the raw server's window authoritative:
  // the next fetch reflects them immediately (no cache staleness on the
  // healthy path).
  data::BehaviorEvent ev;
  ev.item_id = 7;
  ev.category = 2;
  ev.time_period = 1;
  store.RecordClick(4, ev);
  raw.RecordClick(4, ev);
  EXPECT_EQ(ItemIds(store.GetFeatures(4).behaviors),
            ItemIds(raw.GetUserFeatures(4).behaviors));
  EXPECT_EQ(store.GetFeatures(4).behaviors.front().item_id, 7);
}

TEST(FeatureStoreTest, LruEvictsLeastRecentlyFetchedFirst) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStoreConfig config;
  config.num_shards = 1;  // one shard makes the LRU order observable
  config.capacity_per_shard = 2;
  FeatureStore store(&server, config);

  (void)store.GetFeatures(1);
  (void)store.GetFeatures(2);
  (void)store.GetFeatures(3);  // capacity 2: user 1 is evicted

  EXPECT_FALSE(store.LastKnownFeatures(1).has_value());
  EXPECT_TRUE(store.LastKnownFeatures(2).has_value());
  EXPECT_TRUE(store.LastKnownFeatures(3).has_value());

  FeatureStoreStats stats = store.stats();
  EXPECT_EQ(stats.cache_entries, 2);
  EXPECT_EQ(stats.insertions, 3);
  EXPECT_EQ(stats.evictions, 1);

  // Re-fetching user 2 refreshes its recency, so the next displacement
  // falls on user 3.
  (void)store.GetFeatures(2);
  (void)store.GetFeatures(4);
  EXPECT_FALSE(store.LastKnownFeatures(3).has_value());
  EXPECT_TRUE(store.LastKnownFeatures(2).has_value());
  EXPECT_TRUE(store.LastKnownFeatures(4).has_value());

  // LastKnownFeatures is a read of the fallback path, not a fetch: it must
  // not disturb the LRU order. User 2 was fetched before 4, so reading 2
  // repeatedly still leaves 2 as the eviction victim.
  for (int i = 0; i < 4; ++i) (void)store.LastKnownFeatures(2);
  (void)store.GetFeatures(5);
  EXPECT_FALSE(store.LastKnownFeatures(2).has_value());
  EXPECT_TRUE(store.LastKnownFeatures(4).has_value());
}

TEST(FeatureStoreTest, CapacityBoundHoldsUnderChurn) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStoreConfig config;
  config.num_shards = 4;
  config.capacity_per_shard = 3;
  FeatureStore store(&server, config);

  for (int round = 0; round < 3; ++round) {
    for (int32_t u = 0; u < 64; ++u) (void)store.GetFeatures(u);
  }
  FeatureStoreStats stats = store.stats();
  EXPECT_LE(stats.cache_entries, 4 * 3);
  EXPECT_GT(stats.evictions, 0);
  // Every fetch either inserted or refreshed; the books balance.
  EXPECT_EQ(stats.fresh_fetches, 3 * 64);
  EXPECT_EQ(stats.insertions - stats.evictions, stats.cache_entries);
}

TEST(FeatureStoreTest, StalenessAgeGrowsUntilRefreshed) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStore store(&server);

  (void)store.GetFeatures(9);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  auto stale = store.LastKnownFeatures(9);
  ASSERT_TRUE(stale.has_value());
  EXPECT_GE(stale->age_micros, 3000);  // slept 5ms; allow scheduler slop
  EXPECT_EQ(ItemIds(stale->behaviors),
            ItemIds(store.GetFeatures(9).behaviors));

  // The fetch above refreshed the entry: its age restarts near zero.
  auto refreshed = store.LastKnownFeatures(9);
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_LT(refreshed->age_micros, stale->age_micros);
}

TEST(FeatureStoreTest, ZeroCapacityDisablesCacheAndPrefetch) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStoreConfig config;
  config.capacity_per_shard = 0;
  FeatureStore store(&server, config);
  EXPECT_FALSE(store.cache_enabled());

  (void)store.GetFeatures(1);
  EXPECT_FALSE(store.LastKnownFeatures(1).has_value());
  EXPECT_FALSE(store.Prefetch(
      1, std::chrono::steady_clock::now() + std::chrono::seconds(1)));

  FeatureStoreStats stats = store.stats();
  EXPECT_EQ(stats.cache_entries, 0);
  EXPECT_EQ(stats.insertions, 0);
  EXPECT_GT(stats.stale_misses, 0);
  EXPECT_EQ(stats.prefetch_issued, 0);
}

TEST(FeatureStoreTest, PrefetchIsConsumedOnceAndBitIdentical) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer stored(world, world.config().seq_len, 3);
  feature_store::FeatureServer raw(world, world.config().seq_len, 3);
  FeatureStore store(&stored);

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  ASSERT_TRUE(store.Prefetch(11, deadline));
  EXPECT_EQ(store.stats().prefetch_issued, 1);

  // First fetch consumes the parked window — identical to the raw server's.
  EXPECT_EQ(ItemIds(store.GetFeatures(11).behaviors),
            ItemIds(raw.GetUserFeatures(11).behaviors));
  FeatureStoreStats after_hit = store.stats();
  EXPECT_EQ(after_hit.prefetch_hits, 1);
  EXPECT_EQ(after_hit.fresh_fetches, 1);  // the prefetch's own round-trip

  // The parked window is one-shot: the second fetch goes to the server.
  (void)store.GetFeatures(11);
  FeatureStoreStats after_second = store.stats();
  EXPECT_EQ(after_second.prefetch_hits, 1);
  EXPECT_EQ(after_second.fresh_fetches, 2);
}

TEST(FeatureStoreTest, ClickInvalidatesParkedPrefetch) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStore store(&server);

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  ASSERT_TRUE(store.Prefetch(13, deadline));

  // The click lands after the prefetch parked its window: serving that
  // window would hide the click, so consumption must discard it and fetch
  // fresh instead.
  data::BehaviorEvent ev;
  ev.item_id = 21;
  ev.category = 1;
  ev.time_period = 2;
  store.RecordClick(13, ev);

  feature_store::FeatureServer::UserFeatures uf = store.GetFeatures(13);
  EXPECT_EQ(uf.behaviors.front().item_id, 21);
  FeatureStoreStats stats = store.stats();
  EXPECT_EQ(stats.prefetch_discarded, 1);
  EXPECT_EQ(stats.prefetch_hits, 0);
}

TEST(FeatureStoreTest, PrefetchPastDeadlineIsCancelled) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStore store(&server);

  auto passed = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  EXPECT_FALSE(store.Prefetch(2, passed));
  FeatureStoreStats stats = store.stats();
  EXPECT_EQ(stats.prefetch_cancelled, 1);
  EXPECT_EQ(stats.prefetch_issued, 0);
  EXPECT_EQ(stats.fresh_fetches, 0);
}

TEST(FeatureStoreTest, FetchFailureCountsAndPropagatesStatus) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FaultInjector injector(5);
  FaultSiteConfig kill;
  kill.error_probability = 1.0;
  kill.error_code = StatusCode::kUnavailable;
  kill.error_message = "abfs down";
  injector.Configure(feature_store::kFeatureFetchFaultSite, kill);
  server.SetFaultInjector(&injector);
  FeatureStore store(&server);

  auto fetched = store.FetchFeatures(3);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(fetched.status().message(), "abfs down");
  FeatureStoreStats stats = store.stats();
  EXPECT_EQ(stats.fetch_failures, 1);
  EXPECT_EQ(stats.fresh_fetches, 0);
  EXPECT_EQ(stats.cache_entries, 0);  // failures never pollute the cache
}

/// Concurrency hammer for the TSan job: every public operation runs from
/// several threads over an overlapping user population. Assertions are
/// sanity-level — the point is data-race coverage of the per-shard locks.
TEST(FeatureStoreTest, ConcurrentMixedOperationsAreSafe) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStoreConfig config;
  config.num_shards = 4;
  config.capacity_per_shard = 8;  // small: eviction churn under contention
  FeatureStore store(&server, config);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::atomic<int64_t> stale_seen{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      for (int i = 0; i < kOpsPerThread; ++i) {
        int32_t user = (t * 7 + i) % 64;
        switch (i % 5) {
          case 0:
            (void)store.GetFeatures(user);
            break;
          case 1:
            (void)store.FetchFeatures(user);
            break;
          case 2: {
            data::BehaviorEvent ev;
            ev.item_id = user;
            ev.category = i % 4;
            ev.time_period = i % 3;
            store.RecordClick(user, ev);
            break;
          }
          case 3:
            (void)store.Prefetch(user, deadline);
            break;
          default:
            if (store.LastKnownFeatures(user).has_value()) {
              stale_seen.fetch_add(1, std::memory_order_relaxed);
            }
            break;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  FeatureStoreStats stats = store.stats();
  EXPECT_GT(stats.fresh_fetches, 0);
  EXPECT_GT(stale_seen.load(), 0);
  EXPECT_LE(stats.cache_entries, 4 * 8);
  EXPECT_EQ(stats.insertions - stats.evictions, stats.cache_entries);
}

/// Engine-level acceptance: with async prefetch armed, slates must stay
/// bit-identical to the serial pipeline on the same candidates — the
/// prefetch stage may only move fetches earlier in time, never change
/// what they return.
TEST(FeatureStoreTest, EnginePrefetchSlatesBitIdenticalToSerial) {
  data::SynthConfig wc = StoreWorldConfig();
  wc.num_users = 128;
  wc.num_items = 120;
  data::World world(wc);
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStore store(&server);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 13);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/12, /*expose_k=*/5);

  runtime::EngineConfig ec;
  ec.num_workers = 4;
  ec.max_batch_requests = 4;
  ec.max_wait_micros = 200;
  ec.prefetch_threads = 2;
  ec.prefetch_window = 6;
  runtime::ServingEngine engine(&pipeline, ec);

  std::vector<serving::Request> requests;
  std::vector<std::vector<int32_t>> candidates;
  Rng rng(17);
  for (int32_t r = 0; r < 160; ++r) {
    serving::Request req;
    req.user_id = r % 128;
    req.hour = world.SampleHour(rng);
    req.weekday = r % 7;
    req.city = world.user(req.user_id).city;
    req.request_id = r;
    requests.push_back(req);
    candidates.push_back(recall.RecallByCity(req.city, 12, rng));
  }

  std::vector<std::future<runtime::SlateResult>> futures;
  futures.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    futures.push_back(engine.Submit(requests[i], candidates[i],
                                    /*deadline_micros=*/30000000));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    runtime::SlateResult result = futures[i].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_FALSE(result.degraded);
    std::vector<serving::RankedItem> serial =
        pipeline.RankCandidates(requests[i], candidates[i]);
    ASSERT_EQ(result.slate.size(), serial.size());
    for (size_t j = 0; j < serial.size(); ++j) {
      EXPECT_EQ(result.slate[j].item_id, serial[j].item_id);
      EXPECT_EQ(result.slate[j].position, serial[j].position);
      EXPECT_EQ(result.slate[j].score, serial[j].score);  // bit-identical
    }
  }

  engine.Shutdown();
  runtime::LatencySnapshot snap = engine.Stats();
  ASSERT_TRUE(snap.has_feature_store);
  // Whether any prefetch won the race against its own worker is timing-
  // dependent; what must hold is the accounting and the export surface.
  EXPECT_GE(snap.fs_prefetch_issued, 0);
  EXPECT_NE(snap.ToJson().find("\"feature_store\":{"), std::string::npos)
      << snap.ToJson();
}

/// The TTL ladder's bottom rung: a cached window older than the staleness
/// budget is refused (degrading to empty) and counted, never served.
TEST(FeatureStoreTest, TtlBudgetExpiresOldWindows) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStoreConfig config;
  config.max_stale_age_micros = 2000;  // 2ms budget
  FeatureStore store(&server, config);

  (void)store.GetFeatures(9);
  // Inside the budget: the window serves, and its age lands in the
  // served-staleness histogram.
  bool expired = false;
  ASSERT_TRUE(store.LastKnownFeatures(9, &expired).has_value());
  EXPECT_FALSE(expired);

  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(store.LastKnownFeatures(9, &expired).has_value());
  EXPECT_TRUE(expired);  // had a window, refused it — not a plain miss
  // A user never fetched is a plain miss, not an expiry.
  expired = true;
  EXPECT_FALSE(store.LastKnownFeatures(10, &expired).has_value());
  EXPECT_FALSE(expired);

  FeatureStoreStats stats = store.stats();
  EXPECT_EQ(stats.stale_expired, 1);
  EXPECT_EQ(stats.stale_hits, 1);
  EXPECT_GT(stats.served_staleness_p50_micros, 0);
  EXPECT_LE(stats.served_staleness_p50_micros,
            stats.served_staleness_p99_micros);
  // The refused fetch never entered the served histogram: the recorded
  // percentiles stay inside the budget (bucket midpoints can exceed the
  // raw age by at most 50%).
  EXPECT_LE(stats.served_staleness_p99_micros,
            config.max_stale_age_micros + config.max_stale_age_micros / 2);

  // A refresh restarts the clock: the window serves again.
  (void)store.GetFeatures(9);
  EXPECT_TRUE(store.LastKnownFeatures(9).has_value());
}

/// Store-level write-ahead round trip: clicks recorded through a journaled
/// store land in a second store over the same directory, with the
/// republish callback seeing every click in append order.
TEST(FeatureStoreTest, JournaledClicksSurviveRestartViaRecover) {
  namespace fs = std::filesystem;
  fs::path dir = fs::path(::testing::TempDir()) / "basm_store_journal";
  fs::remove_all(dir);
  data::World world(StoreWorldConfig());
  FeatureStoreConfig config;
  config.journal.dir = (dir / "journal").string();

  Rng rng(7);
  std::vector<std::pair<int32_t, int32_t>> written;  // (user, item)
  {
    feature_store::FeatureServer server(world, world.config().seq_len, 3);
    FeatureStore store(&server, config);
    ASSERT_TRUE(store.journal_enabled());
    store.journal()->SetFaultInjector(nullptr);
    for (int32_t u = 0; u < 16; ++u) {
      data::BehaviorEvent ev = world.SampleHistory(u, 1, rng)[0];
      store.RecordClick(u, ev);
      written.emplace_back(u, ev.item_id);
    }
    FeatureStoreStats stats = store.stats();
    EXPECT_TRUE(stats.journal_enabled);
    EXPECT_EQ(stats.journal_appends, 16);
    EXPECT_EQ(stats.journal_write_failures, 0);
  }

  feature_store::FeatureServer recovered_server(world, world.config().seq_len, 3);
  FeatureStore recovered(&recovered_server, config);
  recovered.journal()->SetFaultInjector(nullptr);
  std::vector<std::pair<int32_t, int32_t>> replayed;
  ReplayReport report;
  Status status = recovered.RecoverFromJournal(
      [&](int32_t user, const data::BehaviorEvent& event) {
        replayed.emplace_back(user, event.item_id);
      },
      &report);
  ASSERT_TRUE(status.ok()) << status.message();
  EXPECT_EQ(report.recovered, 16);
  EXPECT_EQ(report.truncated_tail_bytes, 0);
  EXPECT_EQ(replayed, written);  // every click, in append order
  // The replayed clicks are applied to the backing server: each user's
  // live window now leads with the recovered click.
  for (const auto& [user, item] : written) {
    EXPECT_EQ(recovered_server.GetUserFeatures(user).behaviors[0].item_id,
              item);
  }
  FeatureStoreStats stats = recovered.stats();
  EXPECT_EQ(stats.journal_recovered, 16);
  EXPECT_EQ(stats.journal_truncated_tail_bytes, 0);
}

/// A store without a journal directory keeps the old semantics: clicks
/// apply directly, recovery is a no-op, and no journal stats are exported.
TEST(FeatureStoreTest, JournalOffIsZeroCostAndRecoverIsNoOp) {
  data::World world(StoreWorldConfig());
  feature_store::FeatureServer server(world, world.config().seq_len, 3);
  FeatureStore store(&server);
  EXPECT_FALSE(store.journal_enabled());
  EXPECT_EQ(store.journal(), nullptr);

  Rng rng(3);
  store.RecordClick(4, world.SampleHistory(4, 1, rng)[0]);
  ReplayReport report;
  report.recovered = 99;  // must be reset by the no-op
  EXPECT_TRUE(store.RecoverFromJournal(nullptr, &report).ok());
  EXPECT_EQ(report.recovered, 0);
  FeatureStoreStats stats = store.stats();
  EXPECT_FALSE(stats.journal_enabled);
  EXPECT_EQ(stats.journal_appends, 0);
}

}  // namespace
}  // namespace basm::feature_store
