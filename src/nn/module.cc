#include "nn/module.h"

#include "common/logging.h"

namespace basm::nn {

std::vector<autograd::Variable> Module::Parameters() const {
  std::vector<autograd::Variable> out;
  for (const auto& [name, p] : NamedParameters()) out.push_back(p);
  return out;
}

std::vector<std::pair<std::string, autograd::Variable>>
Module::NamedParameters() const {
  std::vector<std::pair<std::string, autograd::Variable>> out;
  for (const auto& [name, p] : params_) out.emplace_back(name, p);
  for (const auto& [name, sub] : submodules_) {
    for (const auto& [child_name, p] : sub->NamedParameters()) {
      out.emplace_back(name + "." + child_name, p);
    }
  }
  return out;
}

std::vector<std::pair<std::string, Tensor*>> Module::NamedBuffers() const {
  std::vector<std::pair<std::string, Tensor*>> out;
  for (const auto& [name, b] : buffers_) out.emplace_back(name, b);
  for (const auto& [name, sub] : submodules_) {
    for (const auto& [child_name, b] : sub->NamedBuffers()) {
      out.emplace_back(name + "." + child_name, b);
    }
  }
  return out;
}

int64_t Module::ParameterCount() const {
  int64_t total = 0;
  for (const auto& p : Parameters()) total += p.numel();
  return total;
}

void Module::SetTraining(bool training) {
  training_ = training;
  for (auto& [name, sub] : submodules_) sub->SetTraining(training);
}

void Module::ZeroGrad() {
  for (auto& p : Parameters()) p.ZeroGrad();
}

autograd::Variable Module::RegisterParameter(std::string name, Tensor init) {
  autograd::Variable p =
      autograd::Variable::Leaf(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), p);
  return p;
}

void Module::RegisterBuffer(std::string name, Tensor* buffer) {
  BASM_CHECK(buffer != nullptr);
  buffers_.emplace_back(std::move(name), buffer);
}

void Module::RegisterModule(std::string name, Module* submodule) {
  BASM_CHECK(submodule != nullptr);
  submodules_.emplace_back(std::move(name), submodule);
}

}  // namespace basm::nn
