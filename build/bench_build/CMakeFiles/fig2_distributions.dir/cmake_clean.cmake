file(REMOVE_RECURSE
  "../bench/fig2_distributions"
  "../bench/fig2_distributions.pdb"
  "CMakeFiles/fig2_distributions.dir/fig2_distributions.cc.o"
  "CMakeFiles/fig2_distributions.dir/fig2_distributions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
