// Fixture: iostream-in-header violation on line 3. Never compiled.
#ifndef FIXTURE_IOSTREAM_HEADER_H_
#include <iostream>
#define FIXTURE_IOSTREAM_HEADER_H_
#endif
