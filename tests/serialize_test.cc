#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <string>

#include "core/basm_model.h"
#include "data/batch.h"
#include "data/synth.h"
#include "gtest/gtest.h"
#include "nn/mlp.h"
#include "tensor/tensor_ops.h"

namespace basm::nn {
namespace {

namespace ag = ::basm::autograd;

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripMlp) {
  Rng rng(1);
  Mlp a({4, 8, 2}, Activation::kRelu, rng);
  Mlp b({4, 8, 2}, Activation::kRelu, rng);  // different init
  std::string path = TempPath("mlp.ckpt");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  ASSERT_TRUE(LoadParameters(b, path).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(ops::AllClose(pa[i].value(), pb[i].value(), 0.0f, 0.0f));
  }
}

TEST(SerializeTest, LoadedModelPredictsIdentically) {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 100;
  c.num_items = 80;
  c.num_cities = 3;
  c.requests_per_day = 10;
  c.days = 2;
  c.test_day = 1;
  c.seq_len = 4;
  data::Dataset ds = data::GenerateDataset(c);
  auto test = ds.TestExamples();
  std::vector<const data::Example*> slice(test.begin(), test.begin() + 8);
  data::Batch batch = data::MakeBatch(slice, ds.schema);

  Rng r1(7), r2(8);
  core::Basm m1(ds.schema, core::BasmConfig::Full(), r1);
  core::Basm m2(ds.schema, core::BasmConfig::Full(), r2);
  m1.SetTraining(false);
  m2.SetTraining(false);

  std::string path = TempPath("basm.ckpt");
  ASSERT_TRUE(SaveParameters(m1, path).ok());
  ASSERT_TRUE(LoadParameters(m2, path).ok());
  EXPECT_TRUE(ops::AllClose(m1.ForwardLogits(batch).value(),
                            m2.ForwardLogits(batch).value()));
}

TEST(SerializeTest, BatchNormRunningStatsRoundTrip) {
  // Regression test: running statistics are buffers, not parameters, and a
  // checkpoint that drops them makes eval-mode predictions diverge.
  Rng rng(11);
  Mlp a({4, 8, 2}, Activation::kRelu, rng, /*batch_norm=*/true);
  a.SetTraining(true);
  for (int i = 0; i < 10; ++i) {
    Tensor x = Tensor::Normal({32, 4}, 3.0f, 2.0f, rng);
    a.Forward(ag::Variable::Constant(x));
  }
  std::string path = TempPath("bn.ckpt");
  ASSERT_TRUE(SaveParameters(a, path).ok());

  Mlp b({4, 8, 2}, Activation::kRelu, rng, /*batch_norm=*/true);
  ASSERT_TRUE(LoadParameters(b, path).ok());
  a.SetTraining(false);
  b.SetTraining(false);
  Tensor x = Tensor::Normal({8, 4}, 3.0f, 2.0f, rng);
  EXPECT_TRUE(ops::AllClose(a.Forward(ag::Variable::Constant(x)).value(),
                            b.Forward(ag::Variable::Constant(x)).value(),
                            0.0f, 0.0f));
}

TEST(ModuleBufferTest, NamedBuffersNested) {
  Rng rng(12);
  Mlp mlp({4, 8, 6, 2}, Activation::kRelu, rng, /*batch_norm=*/true);
  auto buffers = mlp.NamedBuffers();
  ASSERT_EQ(buffers.size(), 4u);  // 2 BN layers x (mean, var)
  EXPECT_EQ(buffers[0].first, "bn0.running_mean");
  EXPECT_EQ(buffers[3].first, "bn1.running_var");
}

// ------------------------------------------------- byte codec & format --

// Image layout constants mirrored from serialize.cc for surgery below:
// magic [0,8), format version [8,12), payload checksum [12,20), body [20..).
constexpr size_t kVersionOffset = 8;
constexpr size_t kChecksumOffset = 12;
constexpr size_t kBodyOffset = 20;

TEST(SerializeBytesTest, InMemoryRoundTrip) {
  Rng rng(21);
  Mlp a({4, 8, 2}, Activation::kRelu, rng);
  Mlp b({4, 8, 2}, Activation::kRelu, rng);  // different init
  std::string image = SerializeParameters(a);
  ASSERT_TRUE(VerifyCheckpointImage(image).ok());
  ASSERT_TRUE(DeserializeParameters(b, image).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(ops::AllClose(pa[i].value(), pb[i].value(), 0.0f, 0.0f));
  }
}

TEST(SerializeBytesTest, ChecksumExposedAndStable) {
  Rng rng(22);
  Mlp a({4, 8, 2}, Activation::kRelu, rng);
  std::string image = SerializeParameters(a);
  uint64_t checksum = CheckpointImageChecksum(image);
  EXPECT_NE(checksum, 0u);
  // Same weights serialize to the same image, hence the same checksum.
  EXPECT_EQ(CheckpointImageChecksum(SerializeParameters(a)), checksum);
}

TEST(SerializeBytesTest, SingleFlippedPayloadByteIsCaught) {
  Rng rng(23);
  Mlp a({8, 8}, Activation::kNone, rng);
  std::string image = SerializeParameters(a);
  // Flip one bit deep inside a tensor payload; the structure still parses,
  // only the checksum can catch it.
  image[image.size() - 5] ^= 0x01;
  Status s = VerifyCheckpointImage(image);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  Mlp b({8, 8}, Activation::kNone, rng);
  EXPECT_EQ(DeserializeParameters(b, image).code(), StatusCode::kInternal);
}

TEST(SerializeBytesTest, WrongVersionRejected) {
  Rng rng(24);
  Mlp a({4, 4}, Activation::kNone, rng);
  std::string image = SerializeParameters(a);
  uint32_t bogus = 99;
  std::memcpy(image.data() + kVersionOffset, &bogus, sizeof(bogus));
  Status s = VerifyCheckpointImage(image);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeBytesTest, TruncatedImageRejected) {
  Rng rng(25);
  Mlp a({16, 16}, Activation::kNone, rng);
  std::string image = SerializeParameters(a);
  Mlp b({16, 16}, Activation::kNone, rng);
  // Any truncation point must fail cleanly: header-only, mid-body, or one
  // byte short.
  for (size_t keep : {size_t{4}, kBodyOffset, image.size() / 2,
                      image.size() - 1}) {
    Status s = DeserializeParameters(b, image.substr(0, keep));
    EXPECT_FALSE(s.ok()) << "truncation at " << keep << " slipped through";
  }
}

TEST(SerializeBytesTest, LegacyV2ImageStillLoads) {
  Rng rng(26);
  Mlp a({4, 8, 2}, Activation::kRelu, rng);
  std::string v3 = SerializeParameters(a);
  // Rewrite the image as format v2: same body, version field 2, and no
  // checksum word — the on-disk layout this repo shipped before v3.
  std::string v2 = v3.substr(0, kChecksumOffset) + v3.substr(kBodyOffset);
  uint32_t two = 2;
  std::memcpy(v2.data() + kVersionOffset, &two, sizeof(two));

  ASSERT_TRUE(VerifyCheckpointImage(v2).ok());
  EXPECT_EQ(CheckpointImageChecksum(v2), 0u);  // v2 records no checksum
  Mlp b({4, 8, 2}, Activation::kRelu, rng);
  ASSERT_TRUE(DeserializeParameters(b, v2).ok());
  auto pa = a.Parameters();
  auto pb = b.Parameters();
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(ops::AllClose(pa[i].value(), pb[i].value(), 0.0f, 0.0f));
  }
}

TEST(SerializeBytesTest, SavedFileIsExactlyTheImage) {
  Rng rng(27);
  Mlp a({4, 4}, Activation::kNone, rng);
  std::string path = TempPath("image.ckpt");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string from_disk;
  char chunk[4096];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    from_disk.append(chunk, n);
  }
  std::fclose(f);
  EXPECT_EQ(from_disk, SerializeParameters(a));
}

TEST(SerializeTest, MissingFileIsNotFound) {
  Rng rng(2);
  Mlp m({2, 2}, Activation::kNone, rng);
  Status s = LoadParameters(m, TempPath("does_not_exist.ckpt"));
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(SerializeTest, GarbageFileRejected) {
  std::string path = TempPath("garbage.ckpt");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("this is not a checkpoint", f);
  std::fclose(f);
  Rng rng(3);
  Mlp m({2, 2}, Activation::kNone, rng);
  Status s = LoadParameters(m, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, StructureMismatchRejected) {
  Rng rng(4);
  Mlp small({4, 2}, Activation::kNone, rng);
  Mlp large({4, 8, 2}, Activation::kNone, rng);
  std::string path = TempPath("small.ckpt");
  ASSERT_TRUE(SaveParameters(small, path).ok());
  Status s = LoadParameters(large, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Rng rng(5);
  Mlp a({4, 8}, Activation::kNone, rng);
  Mlp b({4, 9}, Activation::kNone, rng);  // same names, different shapes
  std::string path = TempPath("shape.ckpt");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  Status s = LoadParameters(b, path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, TruncatedFileRejected) {
  Rng rng(6);
  Mlp a({16, 16}, Activation::kNone, rng);
  std::string path = TempPath("trunc.ckpt");
  ASSERT_TRUE(SaveParameters(a, path).ok());
  // Truncate the payload.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  std::string truncated = TempPath("trunc2.ckpt");
  std::FILE* in = std::fopen(path.c_str(), "rb");
  std::FILE* out = std::fopen(truncated.c_str(), "wb");
  std::vector<char> buf(static_cast<size_t>(size) / 2);
  ASSERT_EQ(std::fread(buf.data(), 1, buf.size(), in), buf.size());
  ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), out), buf.size());
  std::fclose(in);
  std::fclose(out);
  Mlp b({16, 16}, Activation::kNone, rng);
  Status s = LoadParameters(b, truncated);
  EXPECT_FALSE(s.ok());
}

}  // namespace
}  // namespace basm::nn
