#include "models/base_din.h"

#include <algorithm>

namespace basm::models {

namespace ag = ::basm::autograd;

BaseDin::BaseDin(const data::Schema& schema, int64_t embed_dim,
                 std::vector<int64_t> hidden, Rng& rng) {
  encoder_ = std::make_unique<FeatureEncoder>(schema, embed_dim, rng);
  RegisterModule("encoder", encoder_.get());
  long_attn_ = std::make_unique<nn::TargetAttention>(encoder_->seq_dim(),
                                                     /*hidden=*/32, rng);
  short_attn_ = std::make_unique<nn::TargetAttention>(encoder_->seq_dim(),
                                                      /*hidden=*/32, rng);
  realtime_attn_ = std::make_unique<nn::TargetAttention>(encoder_->seq_dim(),
                                                         /*hidden=*/32, rng);
  RegisterModule("long_attn", long_attn_.get());
  RegisterModule("short_attn", short_attn_.get());
  RegisterModule("realtime_attn", realtime_attn_.get());

  // Three pooled interests replace the single one.
  int64_t concat = encoder_->user_dim() + 3 * encoder_->seq_dim() +
                   encoder_->item_dim() + encoder_->context_dim() +
                   encoder_->combine_dim();
  std::vector<int64_t> dims = {concat};
  dims.insert(dims.end(), hidden.begin(), hidden.end());
  tower_ = std::make_unique<nn::Mlp>(dims, nn::Activation::kLeakyRelu, rng);
  RegisterModule("tower", tower_.get());
  out_ = std::make_unique<nn::Linear>(dims.back(), 1, rng);
  RegisterModule("out", out_.get());
}

Tensor BaseDin::TruncateMask(const Tensor& mask, int64_t keep) {
  Tensor out = mask;
  int64_t b = mask.dim(0), t = mask.dim(1);
  for (int64_t i = 0; i < b; ++i) {
    for (int64_t j = keep; j < t; ++j) out[i * t + j] = 0.0f;
  }
  return out;
}

ag::Variable BaseDin::Hidden(const data::Batch& batch) {
  FeatureEncoder::FieldEmbeddings f = encoder_->Encode(batch);
  int64_t t = batch.seq_len;
  Tensor short_mask = TruncateMask(batch.seq_mask, std::max<int64_t>(1, t / 2));
  Tensor realtime_mask = TruncateMask(batch.seq_mask, 2);

  ag::Variable long_i = long_attn_->Forward(f.query, f.seq, batch.seq_mask);
  ag::Variable short_i = short_attn_->Forward(f.query, f.seq, short_mask);
  ag::Variable rt_i = realtime_attn_->Forward(f.query, f.seq, realtime_mask);

  ag::Variable x = ag::ConcatCols(
      {f.user, long_i, short_i, rt_i, f.item, f.context, f.combine});
  return nn::Apply(nn::Activation::kLeakyRelu, tower_->Forward(x));
}

ag::Variable BaseDin::ForwardLogits(const data::Batch& batch) {
  return ag::Reshape(out_->Forward(Hidden(batch)), {batch.size});
}

ag::Variable BaseDin::FinalRepresentation(const data::Batch& batch) {
  return Hidden(batch);
}

}  // namespace basm::models
