// Serving-engine throughput bench: the threads x batch-policy sweep behind
// the runtime/ subsystem. A closed-loop load generator drives the
// ServingEngine over the Ele.me-like world and reports qps, speedup over the
// single-threaded serial pipeline, tail latency, and the realized
// micro-batch distribution, then demonstrates reject-on-full backpressure
// with an undersized queue.
//
// Intentionally a plain main() (not google-benchmark): each cell of the
// sweep is one long closed-loop run with its own latency recorder, which
// benchmark's stat framework would only obscure.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "common/env.h"
#include "tensor/arena.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_store.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace {

using namespace basm;

struct Cell {
  int32_t workers;
  int64_t max_batch;
  int64_t wait_micros;
  /// Extra threads sharding each slate's scoring; 0 = serial per request.
  int32_t scoring_threads;
};

void AppendJsonNumber(std::ostringstream& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out << buf;
}

}  // namespace

int main() {
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 2000;
  config.num_items = 1500;
  config.num_cities = 8;
  data::World world(config);

  feature_store::FeatureServer features(world, world.config().seq_len, 3);
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 42);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/24, /*expose_k=*/8);

  runtime::LoadConfig load;
  load.num_requests = basm::EnvInt("BASM_ENGINE_REQUESTS",
                                   basm::FastMode() ? 200 : 1500);
  load.concurrency = 32;

  std::printf("serving engine sweep: %lld requests/run, recall 24, "
              "model %s, hardware threads %u\n",
              static_cast<long long>(load.num_requests),
              model->name().c_str(), std::thread::hardware_concurrency());

  runtime::LoadGenerator serial_gen(world, load);
  runtime::LoadReport serial = serial_gen.RunSerial(pipeline);
  std::printf("\nserial pipeline baseline: %.1f qps (%.2fs)\n", serial.qps,
              serial.wall_seconds);

  // The last rows turn on intra-batch parallel scoring (scoring_threads > 0,
  // min shard 8 rows) at the large batch sizes where a worker otherwise
  // serializes many 24-row forwards back to back.
  const std::vector<Cell> cells = {
      {1, 1, 0, 0},    {1, 4, 200, 0},  {1, 8, 300, 0},
      {2, 1, 0, 0},    {2, 4, 200, 0},  {2, 8, 300, 0},
      {4, 1, 0, 0},    {4, 4, 200, 0},  {4, 8, 300, 0},
      {2, 8, 300, 2},  {2, 16, 300, 2}, {4, 8, 300, 2},
      {4, 16, 300, 0}, {4, 16, 300, 2},
  };

  std::printf("\n%-8s %-10s %-8s %-8s %-9s %-8s %-9s %-9s %-9s %-9s %-10s "
              "%s\n",
              "workers", "max_batch", "wait_us", "scoring", "qps", "speedup",
              "p50_us", "p95_us", "p99_us", "avg_batch", "allocs/req",
              "rej/to");
  std::ostringstream engine_json;
  engine_json << "[";
  bool first_cell = true;
  for (const Cell& cell : cells) {
    runtime::EngineConfig ec;
    ec.num_workers = cell.workers;
    ec.max_batch_requests = cell.max_batch;
    ec.max_wait_micros = cell.wait_micros;
    ec.queue_capacity = 256;
    ec.scoring_threads = cell.scoring_threads;
    ec.min_rows_per_shard = 8;
    runtime::ServingEngine engine(&pipeline, ec);

    const int64_t fresh_before = TensorArena::TotalFreshAllocs();
    const int64_t reuse_before = TensorArena::TotalReuses();
    runtime::LoadGenerator generator(world, load);
    runtime::LoadReport report = generator.Run(engine);
    runtime::LatencySnapshot snap = engine.Stats();
    // Steady-state allocation cost of one request's forward: the arena keeps
    // this O(1) (a handful of one-off shapes) instead of O(layers).
    const double allocs_per_request =
        static_cast<double>(TensorArena::TotalFreshAllocs() - fresh_before) /
        static_cast<double>(load.num_requests);
    const double reuses_per_request =
        static_cast<double>(TensorArena::TotalReuses() - reuse_before) /
        static_cast<double>(load.num_requests);
    std::printf("%-8d %-10lld %-8lld %-8d %-9.1f %-8.2f %-9.0f %-9.0f "
                "%-9.0f %-9.2f %-10.2f %lld/%lld\n",
                cell.workers, static_cast<long long>(cell.max_batch),
                static_cast<long long>(cell.wait_micros),
                cell.scoring_threads, report.qps, report.qps / serial.qps,
                snap.p50_micros, snap.p95_micros, snap.p99_micros,
                snap.mean_batch_size, allocs_per_request,
                static_cast<long long>(snap.rejects),
                static_cast<long long>(snap.timeouts));

    if (!first_cell) engine_json << ",";
    first_cell = false;
    engine_json << "\n    {\"workers\": " << cell.workers
                << ", \"max_batch\": " << cell.max_batch
                << ", \"wait_micros\": " << cell.wait_micros
                << ", \"scoring_threads\": " << cell.scoring_threads
                << ", \"requests\": " << load.num_requests << ", \"qps\": ";
    AppendJsonNumber(engine_json, report.qps);
    engine_json << ", \"p50_micros\": ";
    AppendJsonNumber(engine_json, snap.p50_micros);
    engine_json << ", \"p95_micros\": ";
    AppendJsonNumber(engine_json, snap.p95_micros);
    engine_json << ", \"p99_micros\": ";
    AppendJsonNumber(engine_json, snap.p99_micros);
    engine_json << ", \"allocs_per_request\": ";
    AppendJsonNumber(engine_json, allocs_per_request);
    engine_json << ", \"reuses_per_request\": ";
    AppendJsonNumber(engine_json, reuses_per_request);
    engine_json << "}";
  }
  engine_json << "\n  ]";
  const std::string json_path =
      basm::EnvString("BASM_BENCH_JSON", "BENCH_kernels.json");
  if (basm::bench::UpdateBenchJsonSection(json_path, "engine",
                                          engine_json.str())) {
    std::printf("\nwrote \"engine\" section of %s\n", json_path.c_str());
  } else {
    std::printf("\nFAILED to write %s\n", json_path.c_str());
  }

  // Full detail for the headline configuration, with per-window JSON
  // stats sampled from the interval recorder while the load runs — the
  // shape of a production node's periodic metrics export.
  {
    runtime::EngineConfig ec;
    ec.num_workers = 4;
    ec.max_batch_requests = 4;
    ec.max_wait_micros = 200;
    runtime::ServingEngine engine(&pipeline, ec);
    runtime::LoadGenerator generator(world, load);
    std::printf("\nheadline config (4 workers, batch<=4, wait 200us)\n");
    runtime::LoadReport report;
    std::thread driver([&] { report = generator.Run(engine); });
    std::atomic<bool> done{false};
    std::thread sampler([&] {
      while (!done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
        runtime::LatencySnapshot window = engine.IntervalStats();
        if (window.count > 0) {
          std::printf("window %s\n", window.ToJson().c_str());
        }
      }
    });
    driver.join();
    done.store(true, std::memory_order_relaxed);
    sampler.join();
    std::printf("%s\n%s", report.ToString().c_str(),
                engine.Stats().ToString().c_str());
  }

  // Backpressure demo: a queue sized far below the offered burst sheds load
  // as immediate UNAVAILABLE rejects instead of queueing without bound.
  {
    runtime::EngineConfig ec;
    ec.num_workers = 2;
    ec.queue_capacity = 8;
    ec.max_batch_requests = 4;
    ec.max_wait_micros = 100;
    runtime::ServingEngine engine(&pipeline, ec);
    runtime::LoadConfig burst = load;
    burst.num_requests = std::min<int64_t>(load.num_requests, 400);
    burst.concurrency = 128;  // >> queue capacity: overload by construction
    runtime::LoadGenerator generator(world, burst);
    runtime::LoadReport report = generator.Run(engine);
    std::printf("\noverload demo (queue 8, concurrency 128)\n%s\n",
                report.ToString().c_str());
  }
  return 0;
}
