#ifndef BASM_ANALYSIS_TSNE_H_
#define BASM_ANALYSIS_TSNE_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace basm::analysis {

/// Exact t-SNE (van der Maaten & Hinton 2008) for the paper's Figs 10/11:
/// embeds final-layer model representations into 2-D to inspect whether
/// instances cluster by time-period / city. O(n^2) per iteration — intended
/// for the ~1k-point samples the figures use.
struct TsneConfig {
  double perplexity = 30.0;
  int iterations = 400;
  double learning_rate = 100.0;
  double momentum = 0.8;
  /// Early exaggeration factor applied for the first quarter of iterations.
  double exaggeration = 4.0;
  uint64_t seed = 1;
};

class Tsne {
 public:
  explicit Tsne(TsneConfig config = {});

  /// points: [n, d] -> [n, 2] embedding.
  Tensor Embed(const Tensor& points) const;

 private:
  TsneConfig config_;
};

/// Quality score for a labeled 2-D embedding: ratio of mean between-class
/// centroid distance to mean within-class spread. Higher = classes more
/// separated (the paper's qualitative claim for BASM vs Base in Figs 10/11).
double SeparationRatio(const Tensor& points,
                       const std::vector<int32_t>& labels);

/// Silhouette coefficient (mean over points, O(n^2)); in [-1, 1].
double Silhouette(const Tensor& points, const std::vector<int32_t>& labels);

}  // namespace basm::analysis

#endif  // BASM_ANALYSIS_TSNE_H_
