#include "analysis/ascii_chart.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace basm::analysis {

std::string BarChart(const std::vector<std::string>& labels,
                     const std::vector<double>& values, int width,
                     const std::string& unit) {
  BASM_CHECK_EQ(labels.size(), values.size());
  BASM_CHECK_GT(width, 0);
  double mx = 0.0;
  size_t label_width = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    BASM_CHECK_GE(values[i], 0.0);
    mx = std::max(mx, values[i]);
    label_width = std::max(label_width, labels[i].size());
  }
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    int bar = mx > 0 ? static_cast<int>(std::lround(values[i] / mx * width))
                     : 0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%10.4g%s", values[i], unit.c_str());
    out += labels[i] + std::string(label_width - labels[i].size(), ' ') +
           " |" + std::string(bar, '#') + std::string(width - bar, ' ') +
           "|" + buf + "\n";
  }
  return out;
}

std::string Heatmap(const std::vector<std::string>& row_labels,
                    const std::vector<std::string>& col_labels,
                    const std::vector<std::vector<double>>& values,
                    int cell_width) {
  BASM_CHECK_EQ(row_labels.size(), values.size());
  BASM_CHECK(!values.empty());
  static const char kRamp[] = " .:-=+*#%@";
  constexpr int kRampLen = 9;  // max index into kRamp

  double mn = 1e300, mx = -1e300;
  for (const auto& row : values) {
    BASM_CHECK_EQ(row.size(), col_labels.size());
    for (double v : row) {
      mn = std::min(mn, v);
      mx = std::max(mx, v);
    }
  }
  double span = mx - mn;

  size_t label_width = 0;
  for (const auto& l : row_labels) label_width = std::max(label_width, l.size());

  auto pad = [&](const std::string& s, size_t w) {
    return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
  };

  std::string out = std::string(label_width + 1, ' ');
  for (const auto& c : col_labels) out += pad(c, cell_width);
  out += "\n";
  for (size_t r = 0; r < values.size(); ++r) {
    out += pad(row_labels[r], label_width + 1);
    for (size_t c = 0; c < values[r].size(); ++c) {
      double norm = span > 0 ? (values[r][c] - mn) / span : 0.5;
      char ch = kRamp[static_cast<int>(std::lround(norm * kRampLen))];
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%c%.3f", ch, values[r][c]);
      out += pad(buf, cell_width);
    }
    out += "\n";
  }
  out += "(ramp: low '" + std::string(1, kRamp[0]) + "' ... high '" +
         std::string(1, kRamp[kRampLen]) + "'; min=" +
         std::to_string(mn) + " max=" + std::to_string(mx) + ")\n";
  return out;
}

std::string ScatterPlot(const std::vector<double>& xs,
                        const std::vector<double>& ys,
                        const std::vector<int>& labels, int width,
                        int height) {
  BASM_CHECK_EQ(xs.size(), ys.size());
  BASM_CHECK_EQ(xs.size(), labels.size());
  BASM_CHECK(!xs.empty());
  static const char kTags[] = "01234abcdefghij";

  double xmin = xs[0], xmax = xs[0], ymin = ys[0], ymax = ys[0];
  for (size_t i = 0; i < xs.size(); ++i) {
    xmin = std::min(xmin, xs[i]);
    xmax = std::max(xmax, xs[i]);
    ymin = std::min(ymin, ys[i]);
    ymax = std::max(ymax, ys[i]);
  }
  double xs_span = std::max(xmax - xmin, 1e-12);
  double ys_span = std::max(ymax - ymin, 1e-12);

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (size_t i = 0; i < xs.size(); ++i) {
    int cx = static_cast<int>((xs[i] - xmin) / xs_span * (width - 1));
    int cy = static_cast<int>((ys[i] - ymin) / ys_span * (height - 1));
    int tag = labels[i] % static_cast<int>(sizeof(kTags) - 1);
    grid[height - 1 - cy][cx] = kTags[tag];
  }
  std::string out = "+" + std::string(width, '-') + "+\n";
  for (const auto& row : grid) out += "|" + row + "|\n";
  out += "+" + std::string(width, '-') + "+\n";
  return out;
}

}  // namespace basm::analysis
