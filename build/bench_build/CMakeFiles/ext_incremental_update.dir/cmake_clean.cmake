file(REMOVE_RECURSE
  "../bench/ext_incremental_update"
  "../bench/ext_incremental_update.pdb"
  "CMakeFiles/ext_incremental_update.dir/ext_incremental_update.cc.o"
  "CMakeFiles/ext_incremental_update.dir/ext_incremental_update.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_incremental_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
