#ifndef BASM_MODELS_M2M_H_
#define BASM_MODELS_M2M_H_

#include <memory>

#include "models/ctr_model.h"
#include "models/feature_encoder.h"
#include "nn/attention.h"
#include "nn/dynamic.h"
#include "nn/mlp.h"

namespace basm::models {

/// M2M (Zhang et al. 2022): meta units generate the tower parameters from a
/// scenario representation. Following the paper's comparison setup, the
/// scenario input of the meta unit is the spatiotemporal context embedding;
/// a backbone MLP produces the expert representation and two meta-generated
/// layers (meta tower + meta output) adapt it per scenario with a residual
/// connection.
class M2m : public CtrModel {
 public:
  M2m(const data::Schema& schema, int64_t embed_dim,
      std::vector<int64_t> hidden, Rng& rng);

  autograd::Variable ForwardLogits(const data::Batch& batch) override;
  autograd::Variable FinalRepresentation(const data::Batch& batch) override;
  std::string name() const override { return "M2M"; }

 private:
  autograd::Variable Hidden(const data::Batch& batch);

  std::unique_ptr<FeatureEncoder> encoder_;
  std::unique_ptr<nn::TargetAttention> attention_;
  std::unique_ptr<nn::Mlp> backbone_;
  std::unique_ptr<nn::MetaLinear> meta_tower_;
  std::unique_ptr<nn::MetaLinear> meta_out_;
  int64_t hidden_dim_;
};

}  // namespace basm::models

#endif  // BASM_MODELS_M2M_H_
