#ifndef BASM_MODELS_STAR_H_
#define BASM_MODELS_STAR_H_

#include <memory>
#include <vector>

#include "models/ctr_model.h"
#include "models/feature_encoder.h"
#include "nn/attention.h"
#include "nn/linear.h"

namespace basm::models {

/// STAR (Sheng et al. 2021): star-topology tower for multi-domain CTR. Each
/// fully-connected layer holds one shared weight matrix and one per-domain
/// matrix; the effective weight of domain d is the Hadamard product
/// W_shared ⊙ W_d (biases add). Following the paper's experimental setup,
/// domains are the five time-periods. An auxiliary network conditioned on
/// the domain indicator adds a per-domain logit offset.
class Star : public CtrModel {
 public:
  Star(const data::Schema& schema, int64_t embed_dim,
       std::vector<int64_t> hidden, Rng& rng);

  autograd::Variable ForwardLogits(const data::Batch& batch) override;
  autograd::Variable FinalRepresentation(const data::Batch& batch) override;
  std::string name() const override { return "STAR"; }

 private:
  /// One star-topology FC layer.
  struct StarLayer {
    autograd::Variable shared_w;              // [in, out]
    autograd::Variable shared_b;              // [1, out]
    std::vector<autograd::Variable> domain_w; // per domain [in, out]
    std::vector<autograd::Variable> domain_b; // per domain [1, out]
  };

  autograd::Variable Hidden(const data::Batch& batch);

  int64_t num_domains_;
  std::unique_ptr<FeatureEncoder> encoder_;
  std::unique_ptr<nn::TargetAttention> attention_;
  std::vector<StarLayer> layers_;
  std::vector<int64_t> dims_;
  std::unique_ptr<nn::Linear> out_;
  std::unique_ptr<nn::Linear> aux_;  // domain indicator -> logit offset
};

}  // namespace basm::models

#endif  // BASM_MODELS_STAR_H_
