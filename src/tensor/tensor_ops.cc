#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"

namespace basm::ops {

namespace {

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  BASM_CHECK(a.SameShape(b)) << op << ": " << ShapeToString(a.shape())
                             << " vs " << ShapeToString(b.shape());
}

/// Broadcast vector length check: b may be [n] or [1,n].
int64_t BroadcastLen(const Tensor& b) {
  if (b.rank() == 1) return b.dim(0);
  BASM_CHECK_EQ(b.rank(), 2);
  BASM_CHECK_EQ(b.dim(0), 1);
  return b.dim(1);
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  BASM_CHECK_EQ(b.rank(), 2);
  BASM_CHECK_EQ(a.cols(), b.rows())
      << ShapeToString(a.shape()) << " x " << ShapeToString(b.shape());
  Tensor c = Tensor::Uninitialized({a.rows(), b.cols()});
  kernels::Gemm(a.data(), b.data(), c.data(), a.rows(), a.cols(), b.cols());
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  BASM_CHECK_EQ(b.rank(), 2);
  BASM_CHECK_EQ(a.rows(), b.rows());
  Tensor c = Tensor::Uninitialized({a.cols(), b.cols()});
  kernels::GemmTransA(a.data(), b.data(), c.data(), a.rows(), a.cols(),
                      b.cols());
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  BASM_CHECK_EQ(b.rank(), 2);
  BASM_CHECK_EQ(a.cols(), b.cols());
  Tensor c = Tensor::Uninitialized({a.rows(), b.rows()});
  kernels::GemmTransB(a.data(), b.data(), c.data(), a.rows(), a.cols(),
                      b.rows());
  return c;
}

Tensor BatchedMatMul(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 3);
  BASM_CHECK_EQ(b.rank(), 3);
  BASM_CHECK_EQ(a.dim(0), b.dim(0));
  BASM_CHECK_EQ(a.dim(2), b.dim(1));
  int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  Tensor c = Tensor::Uninitialized({bs, m, n});
  for (int64_t i = 0; i < bs; ++i) {
    kernels::Gemm(a.data() + i * m * k, b.data() + i * k * n,
                  c.data() + i * m * n, m, k, n);
  }
  return c;
}

Tensor BatchedMatMulTransA(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 3);
  BASM_CHECK_EQ(b.rank(), 3);
  BASM_CHECK_EQ(a.dim(0), b.dim(0));
  BASM_CHECK_EQ(a.dim(1), b.dim(1));
  int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(2);
  Tensor c = Tensor::Uninitialized({bs, k, n});
  for (int64_t bi = 0; bi < bs; ++bi) {
    kernels::GemmTransA(a.data() + bi * m * k, b.data() + bi * m * n,
                        c.data() + bi * k * n, m, k, n);
  }
  return c;
}

Tensor BatchedMatMulTransB(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 3);
  BASM_CHECK_EQ(b.rank(), 3);
  BASM_CHECK_EQ(a.dim(0), b.dim(0));
  BASM_CHECK_EQ(a.dim(2), b.dim(2));
  int64_t bs = a.dim(0), m = a.dim(1), k = a.dim(2), n = b.dim(1);
  Tensor c = Tensor::Uninitialized({bs, m, n});
  for (int64_t bi = 0; bi < bs; ++bi) {
    kernels::GemmTransB(a.data() + bi * m * k, b.data() + bi * n * k,
                        c.data() + bi * m * n, m, k, n);
  }
  return c;
}

Tensor MatMulBias(const Tensor& a, const Tensor& b, const Tensor* bias) {
  Tensor c = MatMul(a, b);
  if (bias != nullptr) AddRowBroadcastInPlace(c, *bias);
  return c;
}

Tensor MatMulBiasAct(const Tensor& a, const Tensor& b, const Tensor* bias,
                     Act act, float leaky_alpha) {
  Tensor c = MatMulBias(a, b, bias);
  ActivateInPlace(c, act, leaky_alpha);
  return c;
}

void AddRowBroadcastInPlace(Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  const int64_t n = BroadcastLen(b);
  BASM_CHECK_EQ(a.cols(), n);
  const float* bv = b.data();
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* row = a.data() + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] += bv[j];
  }
}

void MulRowBroadcastInPlace(Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  const int64_t n = BroadcastLen(b);
  BASM_CHECK_EQ(a.cols(), n);
  const float* bv = b.data();
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* row = a.data() + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] *= bv[j];
  }
}

void ActivateInPlace(Tensor& t, Act act, float leaky_alpha) {
  float* d = t.data();
  const int64_t n = t.numel();
  switch (act) {
    case Act::kNone:
      return;
    case Act::kRelu:
      for (int64_t i = 0; i < n; ++i) d[i] = d[i] > 0.0f ? d[i] : 0.0f;
      return;
    case Act::kLeakyRelu:
      for (int64_t i = 0; i < n; ++i) {
        d[i] = d[i] > 0.0f ? d[i] : leaky_alpha * d[i];
      }
      return;
    case Act::kSigmoid:
      for (int64_t i = 0; i < n; ++i) d[i] = 1.0f / (1.0f + std::exp(-d[i]));
      return;
    case Act::kTanh:
      for (int64_t i = 0; i < n; ++i) d[i] = std::tanh(d[i]);
      return;
  }
}

Tensor CenterScaleRows(const Tensor& x, const Tensor& neg_mean,
                       const Tensor& inv) {
  BASM_CHECK_EQ(x.rank(), 2);
  const int64_t n = BroadcastLen(neg_mean);
  BASM_CHECK_EQ(x.cols(), n);
  BASM_CHECK_EQ(BroadcastLen(inv), n);
  Tensor out = Tensor::Uninitialized(x.shape());
  const float* nm = neg_mean.data();
  const float* iv = inv.data();
  for (int64_t i = 0; i < x.rows(); ++i) {
    const float* xr = x.data() + i * n;
    float* o = out.data() + i * n;
    // Exactly the AddRowBroadcast-then-MulRowBroadcast chain, one pass.
    for (int64_t j = 0; j < n; ++j) o[j] = (xr[j] + nm[j]) * iv[j];
  }
  return out;
}

Tensor BatchNormInference(const Tensor& x, const Tensor& neg_mean,
                          const Tensor& inv, const Tensor& gamma,
                          const Tensor& beta) {
  BASM_CHECK_EQ(x.rank(), 2);
  const int64_t n = BroadcastLen(neg_mean);
  BASM_CHECK_EQ(x.cols(), n);
  BASM_CHECK_EQ(BroadcastLen(inv), n);
  BASM_CHECK_EQ(BroadcastLen(gamma), n);
  BASM_CHECK_EQ(BroadcastLen(beta), n);
  Tensor out = Tensor::Uninitialized(x.shape());
  const float* nm = neg_mean.data();
  const float* iv = inv.data();
  const float* g = gamma.data();
  const float* bt = beta.data();
  for (int64_t i = 0; i < x.rows(); ++i) {
    const float* xr = x.data() + i * n;
    float* o = out.data() + i * n;
    // center, scale, gamma, beta — the exact eval-mode op-chain order.
    for (int64_t j = 0; j < n; ++j) {
      o[j] = ((xr[j] + nm[j]) * iv[j]) * g[j] + bt[j];
    }
  }
  return out;
}

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add");
  Tensor c = a;
  c.AddInPlace(b);
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub");
  Tensor c = a;
  c.AddScaledInPlace(b, -1.0f);
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul");
  Tensor c = a;
  for (int64_t i = 0; i < c.numel(); ++i) c[i] *= b[i];
  return c;
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Div");
  Tensor c = a;
  for (int64_t i = 0; i < c.numel(); ++i) c[i] /= b[i];
  return c;
}

Tensor Scale(const Tensor& a, float s) {
  Tensor c = a;
  c.ScaleInPlace(s);
  return c;
}

Tensor AddScalar(const Tensor& a, float s) {
  Tensor c = a;
  for (int64_t i = 0; i < c.numel(); ++i) c[i] += s;
  return c;
}

Tensor Map(const Tensor& a, const std::function<float(float)>& fn) {
  Tensor c = a;
  for (int64_t i = 0; i < c.numel(); ++i) c[i] = fn(c[i]);
  return c;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  int64_t n = BroadcastLen(b);
  BASM_CHECK_EQ(a.cols(), n);
  Tensor c = a;
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* row = c.data() + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] += b[j];
  }
  return c;
}

Tensor MulRowBroadcast(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  int64_t n = BroadcastLen(b);
  BASM_CHECK_EQ(a.cols(), n);
  Tensor c = a;
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* row = c.data() + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] *= b[j];
  }
  return c;
}

Tensor AddColBroadcast(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  int64_t m = (b.rank() == 1) ? b.dim(0) : b.dim(0) * b.dim(1);
  BASM_CHECK_EQ(a.rows(), m);
  Tensor c = a;
  int64_t n = a.cols();
  for (int64_t i = 0; i < m; ++i) {
    float* row = c.data() + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] += b[i];
  }
  return c;
}

Tensor MulColBroadcast(const Tensor& a, const Tensor& b) {
  BASM_CHECK_EQ(a.rank(), 2);
  int64_t m = (b.rank() == 1) ? b.dim(0) : b.dim(0) * b.dim(1);
  BASM_CHECK_EQ(a.rows(), m);
  Tensor c = a;
  int64_t n = a.cols();
  for (int64_t i = 0; i < m; ++i) {
    float* row = c.data() + i * n;
    for (int64_t j = 0; j < n; ++j) row[j] *= b[i];
  }
  return c;
}

// The nonlinearities run direct loops rather than Map: a std::function call
// per element costs more than the arithmetic at serving shapes.

Tensor Sigmoid(const Tensor& a) {
  Tensor c = a;
  ActivateInPlace(c, Act::kSigmoid);
  return c;
}

Tensor Tanh(const Tensor& a) {
  Tensor c = a;
  ActivateInPlace(c, Act::kTanh);
  return c;
}

Tensor Relu(const Tensor& a) {
  Tensor c = a;
  ActivateInPlace(c, Act::kRelu);
  return c;
}

Tensor LeakyRelu(const Tensor& a, float alpha) {
  Tensor c = a;
  ActivateInPlace(c, Act::kLeakyRelu, alpha);
  return c;
}

Tensor Exp(const Tensor& a) {
  Tensor c = a;
  float* d = c.data();
  for (int64_t i = 0; i < c.numel(); ++i) d[i] = std::exp(d[i]);
  return c;
}

Tensor Log(const Tensor& a, float floor) {
  Tensor c = a;
  float* d = c.data();
  for (int64_t i = 0; i < c.numel(); ++i) {
    d[i] = std::log(std::max(d[i], floor));
  }
  return c;
}

Tensor Sqrt(const Tensor& a) {
  Tensor c = a;
  float* d = c.data();
  for (int64_t i = 0; i < c.numel(); ++i) d[i] = std::sqrt(d[i]);
  return c;
}

Tensor SumAll(const Tensor& a) { return Tensor({1}, {a.Sum()}); }

Tensor RowSum(const Tensor& a) {
  BASM_CHECK_EQ(a.rank(), 2);
  Tensor c({a.rows(), 1});
  for (int64_t i = 0; i < a.rows(); ++i) {
    double acc = 0.0;
    const float* row = a.data() + i * a.cols();
    for (int64_t j = 0; j < a.cols(); ++j) acc += row[j];
    c[i] = static_cast<float>(acc);
  }
  return c;
}

Tensor ColSum(const Tensor& a) {
  BASM_CHECK_EQ(a.rank(), 2);
  Tensor c({1, a.cols()});
  for (int64_t i = 0; i < a.rows(); ++i) {
    const float* row = a.data() + i * a.cols();
    for (int64_t j = 0; j < a.cols(); ++j) c[j] += row[j];
  }
  return c;
}

Tensor ColMean(const Tensor& a) {
  BASM_CHECK_GT(a.rows(), 0);
  Tensor c = ColSum(a);
  c.ScaleInPlace(1.0f / static_cast<float>(a.rows()));
  return c;
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  BASM_CHECK(!parts.empty());
  int64_t rows = parts[0].rows();
  int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    BASM_CHECK_EQ(p.rank(), 2);
    BASM_CHECK_EQ(p.rows(), rows);
    total_cols += p.cols();
  }
  Tensor c({rows, total_cols});
  int64_t offset = 0;
  for (const Tensor& p : parts) {
    for (int64_t i = 0; i < rows; ++i) {
      std::copy(p.data() + i * p.cols(), p.data() + (i + 1) * p.cols(),
                c.data() + i * total_cols + offset);
    }
    offset += p.cols();
  }
  return c;
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  BASM_CHECK_EQ(a.rank(), 2);
  BASM_CHECK_GE(start, 0);
  BASM_CHECK_GE(len, 0);
  BASM_CHECK_LE(start + len, a.cols());
  Tensor c({a.rows(), len});
  for (int64_t i = 0; i < a.rows(); ++i) {
    std::copy(a.data() + i * a.cols() + start,
              a.data() + i * a.cols() + start + len, c.data() + i * len);
  }
  return c;
}

Tensor Transpose(const Tensor& a) {
  BASM_CHECK_EQ(a.rank(), 2);
  Tensor c({a.cols(), a.rows()});
  for (int64_t i = 0; i < a.rows(); ++i) {
    for (int64_t j = 0; j < a.cols(); ++j) {
      c.at(j, i) = a.at(i, j);
    }
  }
  return c;
}

Tensor RowSoftmax(const Tensor& a) {
  BASM_CHECK_EQ(a.rank(), 2);
  Tensor c = a;
  for (int64_t i = 0; i < a.rows(); ++i) {
    float* row = c.data() + i * a.cols();
    float mx = row[0];
    for (int64_t j = 1; j < a.cols(); ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < a.cols(); ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < a.cols(); ++j) row[j] *= inv;
  }
  return c;
}

float MaxAbsDiff(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "MaxAbsDiff");
  float mx = 0.0f;
  for (int64_t i = 0; i < a.numel(); ++i) {
    mx = std::max(mx, std::abs(a[i] - b[i]));
  }
  return mx;
}

bool AllClose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (!a.SameShape(b)) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    if (std::abs(a[i] - b[i]) > atol + rtol * std::abs(b[i])) return false;
  }
  return true;
}

}  // namespace basm::ops
