#ifndef BASM_TOOLS_ANALYZE_IO_LOOP_H_
#define BASM_TOOLS_ANALYZE_IO_LOOP_H_

#include <vector>

#include "tools/analyze/scanner.h"
#include "tools/lint.h"

namespace basm::analyze {

/// Pass `blocking-in-event-loop`: the IO loop threads of the epoll frontend
/// serve every connection of their shard, so ONE blocking call inside loop
/// scope stalls them all — a stricter rule than blocking-under-lock (which
/// only cares about held mutexes). Flags blocking syscall tokens, CondVar
/// waits, and the repo's own blocking wrappers (ReadAll/WriteAll/Accept/
/// WaitReadable/...) inside methods of the event-loop classes. Lifecycle
/// methods (constructor/destructor/Start/Stop) are exempt: they run on the
/// owner's thread, where joining and waiting is the whole point.
std::vector<lint::Finding> RunIoLoop(const std::vector<FileScan>& files);

}  // namespace basm::analyze

#endif  // BASM_TOOLS_ANALYZE_IO_LOOP_H_
