#ifndef BASM_TENSOR_ARENA_H_
#define BASM_TENSOR_ARENA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace basm {

/// Allocation counters of one thread's scratch arena. "fresh_allocs" are
/// requests the freelist could not serve (they hit the heap); "reuses" are
/// blocks handed back out of the freelist; "recycles" are blocks parked in
/// the freelist on tensor destruction. At steady state a serving worker's
/// fresh_allocs stops growing: every per-op scratch tensor of the forward
/// pass is a reuse, so the allocator cost per request is O(1).
struct ArenaStats {
  int64_t fresh_allocs = 0;
  int64_t reuses = 0;
  int64_t recycles = 0;
  int64_t held_blocks = 0;
  int64_t held_bytes = 0;
};

/// 64-byte-aligned uninitialized float block; size is rounded up to a whole
/// number of cache lines so SIMD loads never split one. Pair with
/// AlignedFreeFloats. Every call is counted in TensorArena::TotalFreshAllocs
/// (the process-wide tensor-allocation pressure gauge used by the benches).
float* AlignedAllocFloats(int64_t numel);
void AlignedFreeFloats(float* ptr);

/// Per-thread scratch allocator behind Tensor storage. While an ArenaScope
/// is open on a thread, tensor allocations on that thread are served from
/// size-keyed freelists of previously released blocks, and tensors destroyed
/// on that thread park their blocks back in the freelist instead of freeing
/// them. Blocks are ordinary aligned heap memory, so a tensor may safely
/// outlive the scope (its destructor then simply frees) or move to another
/// thread (it recycles into — or frees on — whatever thread destroys it).
///
/// Arenas are inference-path machinery: training keeps graph tensors alive
/// across the backward pass, so its allocation pattern gains little from
/// recycling, and scopes are only opened on serving forwards (ProcessBatch,
/// RankCandidates, parallel scoring shards). Nothing breaks if one is opened
/// elsewhere — blocks only ever free or recycle on destruction — it is just
/// not wired there.
class TensorArena {
 public:
  /// The calling thread's arena (created on first use, lives until thread
  /// exit). Freelists persist across scopes, which is what makes the second
  /// and every later request on a serving worker allocation-free.
  static TensorArena& ThreadLocal();

  /// The calling thread's arena while an ArenaScope is open, else null.
  static TensorArena* Active();

  /// Pops a block of exactly `numel` floats off the freelist, or heap-
  /// allocates one. Contents are unspecified.
  float* Allocate(int64_t numel);

  /// Takes `ptr` (a block of `numel` floats from AlignedAllocFloats or
  /// Allocate) back into the freelist. Returns false when the arena declines
  /// (held-bytes cap reached); the caller then owns the free.
  bool Recycle(float* ptr, int64_t numel);

  const ArenaStats& stats() const { return stats_; }

  /// Frees every parked block (freelists empty afterwards).
  void Trim();

  /// Process-wide totals across all threads: heap allocations of tensor
  /// storage, and freelist reuses. The benches report the delta per request.
  static int64_t TotalFreshAllocs();
  static int64_t TotalReuses();

  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;
  ~TensorArena();

 private:
  friend class ArenaScope;
  TensorArena() = default;

  /// Freelists keyed by exact block size in floats: forward passes allocate
  /// recurring shapes, so exact matching hits ~100% with zero rounding waste.
  std::unordered_map<int64_t, std::vector<float*>> free_lists_;
  ArenaStats stats_;
};

/// Activates the calling thread's TensorArena for the scope's lifetime.
/// Nestable; allocation behavior reverts when the outermost scope closes.
class ArenaScope {
 public:
  ArenaScope();
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;
};

/// Value-semantic float storage backing Tensor: always 64-byte aligned, and
/// routed through the thread's TensorArena while an ArenaScope is open.
class AlignedBuffer {
 public:
  struct Uninit {};

  AlignedBuffer() = default;
  /// Zero-filled buffer of n floats.
  explicit AlignedBuffer(int64_t n);
  /// Uninitialized buffer — for kernel outputs that overwrite every element.
  AlignedBuffer(int64_t n, Uninit);
  AlignedBuffer(const AlignedBuffer& other);
  AlignedBuffer& operator=(const AlignedBuffer& other);
  AlignedBuffer(AlignedBuffer&& other) noexcept;
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept;
  ~AlignedBuffer();

  float* data() { return data_; }
  const float* data() const { return data_; }
  int64_t size() const { return size_; }

 private:
  void Acquire(int64_t n);
  void ReleaseStorage();

  float* data_ = nullptr;
  int64_t size_ = 0;
};

}  // namespace basm

#endif  // BASM_TENSOR_ARENA_H_
