# Empty dependencies file for fig9_alpha_city.
# This may be replaced when dependencies are built.
