# Empty dependencies file for table4_offline_comparison.
# This may be replaced when dependencies are built.
