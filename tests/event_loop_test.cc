#include "net/event_loop.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace basm::net {
namespace {

TEST(EventLoopTest, StartStopIsIdempotentAndJoins) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  loop.Stop();
  loop.Stop();  // idempotent
}

TEST(EventLoopTest, DestructorStops) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  // Falling out of scope must join without a hang (death by timeout if
  // this contract breaks).
}

TEST(EventLoopTest, PostTaskRunsOnTheLoopThread) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  EXPECT_FALSE(loop.InLoopThread());

  std::promise<bool> on_loop;
  loop.PostTask([&] { on_loop.set_value(loop.InLoopThread()); });
  EXPECT_TRUE(on_loop.get_future().get());
  loop.Stop();
}

TEST(EventLoopTest, PostTaskFromTheLoopThreadRunsToo) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());

  std::promise<int> second;
  loop.PostTask([&] {
    // Re-posting from the loop's own thread must not deadlock: the nested
    // task runs later in the same or the next iteration.
    loop.PostTask([&] { second.set_value(42); });
  });
  EXPECT_EQ(second.get_future().get(), 42);
  loop.Stop();
}

TEST(EventLoopTest, StopDrainsTasksPostedBeforeIt) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    loop.PostTask([&ran] { ran.fetch_add(1); });
  }
  loop.Stop();
  EXPECT_EQ(ran.load(), 100);
  // After Stop, posts are dropped (documented), never crash.
  loop.PostTask([&ran] { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 100);
}

TEST(EventLoopTest, DispatchesFdReadinessAndRemovalMidDispatchIsSafe) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());

  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK), 0);

  std::promise<uint32_t> dispatched;
  loop.PostTask([&] {
    Status added = loop.AddFd(fds[0], EPOLLIN, [&](uint32_t events) {
      char buf[8];
      while (::read(fds[0], buf, sizeof(buf)) > 0) {
      }
      // The handler removes its own registration while the loop is still
      // dispatching it — the documented mid-dispatch contract.
      loop.RemoveFd(fds[0]);
      dispatched.set_value(events);
    });
    ASSERT_TRUE(added.ok());
  });

  char byte = 'x';
  ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  EXPECT_TRUE(dispatched.get_future().get() & EPOLLIN);

  // The registration is gone: the table is empty again.
  std::promise<size_t> registered;
  loop.PostTask([&] { registered.set_value(loop.num_fds()); });
  EXPECT_EQ(registered.get_future().get(), 0u);

  loop.Stop();
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoopTest, UpdateFdChangesTheInterestMask) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());

  int fds[2];
  ASSERT_EQ(::pipe2(fds, O_NONBLOCK), 0);

  std::atomic<int> read_events{0};
  std::promise<void> armed;
  loop.PostTask([&] {
    // Register with an empty mask: readiness must NOT dispatch.
    ASSERT_TRUE(loop.AddFd(fds[0], 0, [&](uint32_t events) {
      if (events & EPOLLIN) {
        char buf[8];
        while (::read(fds[0], buf, sizeof(buf)) > 0) {
        }
        read_events.fetch_add(1);
      }
    }).ok());
    armed.set_value();
  });
  armed.get_future().get();

  char byte = 'y';
  ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(read_events.load(), 0) << "masked-out readiness dispatched";

  // Arm EPOLLIN: the already-pending byte dispatches (level-triggered).
  std::promise<void> updated;
  loop.PostTask([&] {
    ASSERT_TRUE(loop.UpdateFd(fds[0], EPOLLIN).ok());
    updated.set_value();
  });
  updated.get_future().get();
  for (int i = 0; i < 200 && read_events.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(read_events.load(), 1);

  loop.Stop();
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoopTest, ManyProducersManyTasks) {
  EventLoop loop;
  ASSERT_TRUE(loop.Start().ok());
  std::atomic<int> ran{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 8; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        loop.PostTask([&ran] { ran.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  loop.Stop();
  EXPECT_EQ(ran.load(), 8 * 500);
}

}  // namespace
}  // namespace basm::net
