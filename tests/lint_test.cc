#include "tools/lint.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace basm::lint {
namespace {

#ifndef BASM_SOURCE_DIR
#error "BASM_SOURCE_DIR must point at the repository root"
#endif

std::string Fixture(const std::string& name) {
  return std::string(BASM_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

// --- fixture-backed positive cases: one file per rule, exact lines --------

TEST(LintFixtureTest, RawMutexFlagsMemberAndLockGuard) {
  std::vector<Finding> findings = LintFile(Fixture("raw_mutex.cc"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "raw-mutex");
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_EQ(findings[1].rule, "raw-mutex");
  EXPECT_EQ(findings[1].line, 9);
}

TEST(LintFixtureTest, ThreadDetachFlagsDetachNotJoin) {
  std::vector<Finding> findings = LintFile(Fixture("thread_detach.cc"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "thread-detach");
  EXPECT_EQ(findings[0].line, 7);
}

TEST(LintFixtureTest, NondeterminismFlagsRandAndRandomDevice) {
  std::vector<Finding> findings = LintFile(Fixture("nondeterminism.cc"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "nondeterminism");
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_EQ(findings[1].rule, "nondeterminism");
  EXPECT_EQ(findings[1].line, 7);
}

TEST(LintFixtureTest, IostreamInHeaderFlagsInclude) {
  std::vector<Finding> findings = LintFile(Fixture("iostream_header.h"));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "iostream-in-header");
  EXPECT_EQ(findings[0].line, 3);
}

TEST(LintFixtureTest, NodiscardStatusFlagsBareDeclarations) {
  std::vector<Finding> findings = LintFile(Fixture("nodiscard.h"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "nodiscard-status");
  EXPECT_EQ(findings[0].line, 8);
  EXPECT_EQ(findings[1].rule, "nodiscard-status");
  EXPECT_EQ(findings[1].line, 10);
}

TEST(LintFixtureTest, RawFeatureFetchFlagsMemberCallsOnly) {
  std::vector<Finding> findings = LintFile(Fixture("raw_fetch.cc"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "feature-fetch-outside-store");
  EXPECT_EQ(findings[0].line, 5);
  EXPECT_EQ(findings[1].rule, "feature-fetch-outside-store");
  EXPECT_EQ(findings[1].line, 7);
}

TEST(LintFixtureTest, RawJournalIoFlagsMemberCallsOnly) {
  std::vector<Finding> findings = LintFile(Fixture("raw_journal.cc"));
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].rule, "journal-io-outside-store");
  EXPECT_EQ(findings[0].line, 6);
  EXPECT_EQ(findings[1].rule, "journal-io-outside-store");
  EXPECT_EQ(findings[1].line, 8);
}

// --- the negative case: a file full of near-misses produces nothing ------

TEST(LintFixtureTest, CleanFixtureHasZeroFindings) {
  std::vector<Finding> findings = LintFile(Fixture("clean.h"));
  for (const Finding& f : findings) {
    ADD_FAILURE() << "unexpected finding: " << FormatFinding(f);
  }
}

// --- content-level unit cases for the trickier matcher rules --------------

TEST(LintContentTest, StatusRuleOnlyAppliesToHeaders) {
  const std::string decl = "Status Flush(const std::string& path);\n";
  EXPECT_EQ(LintContent("src/x.h", decl).size(), 1u);
  EXPECT_TRUE(LintContent("src/x.cc", decl).empty());
}

TEST(LintContentTest, StatusRuleSkipsQualifiedCallsAndConstructors) {
  const std::string content =
      "inline void F() {\n"
      "  Status s = Status::Ok();\n"
      "  return Status(StatusCode::kInternal, \"x\");\n"
      "}\n";
  EXPECT_TRUE(LintContent("src/x.h", content).empty());
}

TEST(LintContentTest, StatusRuleHonorsPreviousLineNodiscard) {
  const std::string content =
      "[[nodiscard]]\n"
      "StatusOr<int> Parse(const std::string& text);\n";
  EXPECT_TRUE(LintContent("src/x.h", content).empty());
}

TEST(LintContentTest, RawMutexAllowedInSynchronizationHeader) {
  const std::string content = "#include <mutex>\nstd::mutex mu;\n";
  EXPECT_TRUE(LintContent("src/common/synchronization.h", content).empty());
  EXPECT_EQ(LintContent("src/common/other.h", content).size(), 2u);
}

TEST(LintContentTest, NondeterminismAllowedInRng) {
  const std::string content = "std::random_device entropy;\n";
  EXPECT_TRUE(LintContent("src/common/rng.cc", content).empty());
  EXPECT_EQ(LintContent("src/data/synth.cc", content).size(), 1u);
}

TEST(LintContentTest, RawFeatureFetchAllowedInsideTheStore) {
  const std::string content = "auto f = server_->FetchUserFeatures(id);\n";
  EXPECT_TRUE(
      LintContent("src/feature_store/feature_store.cc", content).empty());
  EXPECT_EQ(LintContent("src/serving/pipeline.cc", content).size(), 1u);
}

TEST(LintContentTest, RawJournalIoAllowedInsideTheStoreAndItsTests) {
  const std::string content = "auto s = journal_->AppendRecord(id, event);\n";
  EXPECT_TRUE(
      LintContent("src/feature_store/feature_store.cc", content).empty());
  EXPECT_TRUE(LintContent("tests/journal_test.cc", content).empty());
  EXPECT_EQ(LintContent("src/serving/pipeline.cc", content).size(), 1u);
}

TEST(LintContentTest, InlineAllowSuppressesNamedRuleOnly) {
  const std::string suppressed =
      "std::mutex mu;  // basm-lint: allow(raw-mutex)\n";
  EXPECT_TRUE(LintContent("src/x.cc", suppressed).empty());
  const std::string wrong_rule =
      "std::mutex mu;  // basm-lint: allow(nondeterminism)\n";
  EXPECT_EQ(LintContent("src/x.cc", wrong_rule).size(), 1u);
}

TEST(LintContentTest, BlockCommentsAndStringsAreStripped) {
  const std::string content =
      "/* std::mutex mu;\n"
      "   rand(); still commented */\n"
      "const char* s = \"time(nullptr)\";\n";
  EXPECT_TRUE(LintContent("src/x.cc", content).empty());
}

TEST(LintContentTest, TimeVariantsAllFlagged) {
  EXPECT_EQ(LintContent("src/x.cc", "auto t = time(nullptr);\n").size(), 1u);
  EXPECT_EQ(LintContent("src/x.cc", "auto t = time(NULL);\n").size(), 1u);
  EXPECT_EQ(LintContent("src/x.cc", "auto t = time(0);\n").size(), 1u);
  // A named argument is some other function, not the wall clock.
  EXPECT_TRUE(LintContent("src/x.cc", "auto t = time(step);\n").empty());
}

// --- walker behavior ------------------------------------------------------

TEST(LintPathsTest, WalkerSkipsFixtureDirsButLintsExplicitFiles) {
  // Scanning the tests/ tree must not surface the intentional violations
  // in lint_fixtures/ (the final-tree gate depends on this)...
  std::vector<Finding> scan =
      LintPaths({std::string(BASM_SOURCE_DIR) + "/tests"});
  for (const Finding& f : scan) {
    EXPECT_EQ(f.file.find("lint_fixtures"), std::string::npos)
        << FormatFinding(f);
  }
  // ...while naming a fixture file explicitly always lints it.
  std::vector<Finding> direct = LintPaths({Fixture("raw_mutex.cc")});
  EXPECT_EQ(direct.size(), 2u);
}

TEST(LintPathsTest, FinalTreeIsCleanUnderTheScanGate) {
  // The acceptance gate CI runs: src, tests, and bench lint clean.
  const std::string root(BASM_SOURCE_DIR);
  std::vector<Finding> findings =
      LintPaths({root + "/src", root + "/tests", root + "/bench"});
  for (const Finding& f : findings) {
    ADD_FAILURE() << FormatFinding(f);
  }
}

TEST(LintRulesTest, CatalogNamesEveryEmittedRule) {
  std::vector<RuleInfo> rules = Rules();
  auto has = [&](const std::string& id) {
    return std::any_of(rules.begin(), rules.end(),
                       [&](const RuleInfo& r) { return r.id == id; });
  };
  EXPECT_TRUE(has("nodiscard-status"));
  EXPECT_TRUE(has("raw-mutex"));
  EXPECT_TRUE(has("thread-detach"));
  EXPECT_TRUE(has("nondeterminism"));
  EXPECT_TRUE(has("iostream-in-header"));
  EXPECT_TRUE(has("feature-fetch-outside-store"));
  EXPECT_TRUE(has("journal-io-outside-store"));
}

}  // namespace
}  // namespace basm::lint
