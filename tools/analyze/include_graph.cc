#include "tools/analyze/include_graph.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

namespace basm::analyze {
namespace {

/// The authoritative module DAG (mirror of DESIGN §15). `first` may include
/// headers of every module in `second`. Order within an entry is
/// lowest-layer first, purely for readability.
struct ModuleDeps {
  const char* module;
  std::vector<const char*> allowed;
};

const std::vector<ModuleDeps>& ModuleDag() {
  static const std::vector<ModuleDeps> kDag = {
      {"common", {}},
      {"tensor", {"common"}},
      {"metrics", {"common"}},
      {"autograd", {"common", "tensor"}},
      {"data", {"common", "tensor"}},
      {"analysis", {"common", "tensor", "data"}},
      {"nn", {"common", "tensor", "autograd"}},
      {"optim", {"common", "tensor", "autograd"}},
      {"models", {"common", "tensor", "autograd", "data", "nn"}},
      {"train",
       {"common", "tensor", "data", "metrics", "nn", "models", "optim"}},
      {"core", {"common", "tensor", "data", "nn", "models"}},
      {"online", {"common", "tensor", "data", "nn", "models", "core", "train"}},
      {"feature_store", {"common", "data"}},
      {"serving",
       {"common", "tensor", "autograd", "data", "models", "online",
        "feature_store"}},
      {"runtime",
       {"common", "tensor", "autograd", "data", "models", "online",
        "feature_store", "serving"}},
      {"net",
       {"common", "data", "online", "feature_store", "serving", "runtime"}},
  };
  return kDag;
}

bool DagAllows(const std::string& from, const std::string& to) {
  for (const ModuleDeps& entry : ModuleDag()) {
    if (entry.module != from) continue;
    for (const char* dep : entry.allowed) {
      if (to == dep) return true;
    }
    return false;
  }
  return false;
}

bool KnownModule(const std::string& module) {
  for (const ModuleDeps& entry : ModuleDag()) {
    if (entry.module == module) return true;
  }
  return false;
}

/// DFS cycle search over observed module edges; fills `witness` with the
/// cycle path `a -> b -> ... -> a` when one exists.
bool FindCycle(const std::map<std::string, std::set<std::string>>& edges,
               std::vector<std::string>* witness) {
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::function<bool(const std::string&)> visit =
      [&](const std::string& node) -> bool {
    state[node] = 1;
    stack.push_back(node);
    auto it = edges.find(node);
    if (it != edges.end()) {
      for (const std::string& next : it->second) {
        int s = state.count(next) ? state[next] : 0;
        if (s == 1) {
          auto at = std::find(stack.begin(), stack.end(), next);
          witness->assign(at, stack.end());
          witness->push_back(next);
          return true;
        }
        if (s == 0 && visit(next)) return true;
      }
    }
    stack.pop_back();
    state[node] = 2;
    return false;
  };
  for (const auto& [node, _] : edges) {
    if ((state.count(node) ? state[node] : 0) == 0 && visit(node)) return true;
  }
  return false;
}

std::string JoinPath(const std::vector<std::string>& path) {
  std::string out;
  for (const std::string& p : path) {
    if (!out.empty()) out += " -> ";
    out += p;
  }
  return out;
}

}  // namespace

std::vector<std::string> ModuleTopoOrder() {
  std::map<std::string, std::set<std::string>> edges;
  for (const ModuleDeps& entry : ModuleDag()) {
    auto& deps = edges[entry.module];
    for (const char* dep : entry.allowed) deps.insert(dep);
  }
  std::vector<std::string> order;
  std::set<std::string> done;
  while (done.size() < edges.size()) {
    bool progress = false;
    for (const auto& [module, deps] : edges) {
      if (done.count(module)) continue;
      bool ready = true;
      for (const std::string& d : deps) {
        if (!done.count(d)) ready = false;
      }
      if (ready) {
        order.push_back(module);
        done.insert(module);
        progress = true;
      }
    }
    if (!progress) return {};  // the table itself has a cycle
  }
  return order;
}

std::vector<lint::Finding> RunIncludeGraph(const std::vector<FileScan>& files) {
  std::vector<lint::Finding> findings;
  constexpr char kPass[] = "include-layering";

  if (ModuleTopoOrder().empty()) {
    findings.push_back(lint::Finding{
        "tools/analyze/include_graph.cc", 0, kPass,
        "the authoritative module DAG table contains a cycle; fix the table"});
    return findings;
  }

  // module -> module -> first witness (file, line) for the edge
  std::map<std::string, std::set<std::string>> observed;
  for (const FileScan& file : files) {
    if (file.module.empty()) continue;  // not under src/
    for (const Include& inc : file.includes) {
      size_t slash = inc.target.find('/');
      if (slash == std::string::npos) continue;  // same-dir / root include
      std::string target = inc.target.substr(0, slash);
      if (target == file.module) continue;
      if (!KnownModule(target)) {
        if (KnownModule(file.module)) {
          findings.push_back(lint::Finding{
              file.path, inc.line, kPass,
              "src/" + file.module + " includes \"" + inc.target +
                  "\" which is outside the src module set; src code must "
                  "not depend on tools/ or tests/"});
        }
        continue;
      }
      if (!KnownModule(file.module)) continue;
      observed[file.module].insert(target);
      if (!DagAllows(file.module, target)) {
        findings.push_back(lint::Finding{
            file.path, inc.line, kPass,
            "module dependency " + file.module + " -> " + target +
                " is not in the authoritative DAG (DESIGN §15); this is an "
                "upward or sideways layer edge"});
      }
    }
  }

  std::vector<std::string> cycle;
  if (FindCycle(observed, &cycle)) {
    findings.push_back(lint::Finding{
        "src", 0, kPass,
        "observed include graph has a module cycle: " + JoinPath(cycle)});
  }
  return findings;
}

}  // namespace basm::analyze
