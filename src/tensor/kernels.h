#ifndef BASM_TENSOR_KERNELS_H_
#define BASM_TENSOR_KERNELS_H_

#include <cstdint>
#include <string>

/// Optimized GEMM kernels behind ops::MatMul* — raw row-major float32
/// pointer routines plus a process-wide backend selector.
///
/// Backends:
///   kReference  the frozen naive loops (ops::reference::*), for A/B testing
///   kBlocked    cache-blocked, 4-row-unrolled loops the compiler can
///               auto-vectorize on any target (the portable default)
///   kAvx2       hand-written AVX2+FMA microkernels, compiled into a
///               separate translation unit with -mavx2 -mfma when the
///               BASM_SIMD CMake option is ON, and selected at runtime only
///               if the CPU reports AVX2 support
///
/// All backends compute C with identical shape semantics; results agree with
/// the reference within float reassociation error (~1e-5 relative; the
/// equivalence suites in tests/kernel_test.cc pin this down per shape).
namespace basm::ops::kernels {

enum class Backend {
  kReference = 0,
  kBlocked = 1,
  kAvx2 = 2,
};

const char* BackendName(Backend backend);

/// True when the AVX2 TU was compiled with real intrinsics AND the CPU
/// supports AVX2 — i.e. kAvx2 may actually be dispatched to.
bool Avx2Available();

/// True when kernels_avx2.cc was built with -mavx2 -mfma (BASM_SIMD=ON on an
/// x86-64 target); false means the kAvx2 entry points are traps.
bool Avx2Compiled();

/// The backend ops::MatMul* currently dispatches to. Resolved once on first
/// use: BASM_KERNEL=reference|blocked|avx2 if set (an unavailable avx2
/// request falls back to blocked), else kAvx2 when available, else kBlocked.
Backend ActiveBackend();

/// Overrides the active backend (kAvx2 requires Avx2Available()). Benches
/// and tests use this; serving code should leave the default alone.
void SetBackend(Backend backend);

/// RAII backend override for equivalence tests and per-backend bench runs.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend previous_;
};

/// -- Raw kernels (row-major, fully overwrite C) ---------------------------
///
/// These dispatch on ActiveBackend(). Degenerate sizes (m, n or k of 0) are
/// legal: k==0 zero-fills C, m*n==0 is a no-op.

/// C(m,n) = A(m,k) * B(k,n).
void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n);
/// C(k,n) = A^T(k,m) * B(m,n); a is (m,k) row-major.
void GemmTransA(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n);
/// C(m,n) = A(m,k) * B^T(n,k).
void GemmTransB(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n);

/// -- Per-backend entry points (for the dispatcher and benches) ------------

void GemmBlocked(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n);
void GemmTransABlocked(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n);
void GemmTransBBlocked(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n);

/// Defined in kernels_avx2.cc; traps via BASM_CHECK when !Avx2Compiled().
void GemmAvx2(const float* a, const float* b, float* c, int64_t m, int64_t k,
              int64_t n);
void GemmTransAAvx2(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n);
void GemmTransBAvx2(const float* a, const float* b, float* c, int64_t m,
                    int64_t k, int64_t n);

}  // namespace basm::ops::kernels

#endif  // BASM_TENSOR_KERNELS_H_
