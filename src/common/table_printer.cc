#include "common/table_printer.h"

#include <cstdio>
#include <iostream>

#include "common/logging.h"

namespace basm {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  BASM_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  BASM_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (size_t c = 0; c < row.size(); ++c) {
      out += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    out += "\n";
    return out;
  };
  std::string out = render_row(header_);
  std::string sep = "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    sep += std::string(widths[c] + 2, '-') + "|";
  }
  out += sep + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace basm
