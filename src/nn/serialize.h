#ifndef BASM_NN_SERIALIZE_H_
#define BASM_NN_SERIALIZE_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "nn/module.h"

namespace basm::nn {

/// Current checkpoint format version. v3 adds a payload checksum to the
/// header; v2 (no checksum) checkpoints still load.
inline constexpr uint32_t kCheckpointVersion = 3;

/// Encodes every named parameter and buffer of `module` into an in-memory
/// checkpoint image: magic, format version, payload checksum, then per
/// tensor its name, shape and float32 payload. The image is the hand-off
/// artifact between the training side and the serving stack (the paper's
/// AOP -> RTP deployment step); online::ModelRegistry stores these images
/// as immutable versioned snapshots, and SaveParameters writes the same
/// bytes to disk.
std::string SerializeParameters(const Module& module);

/// Restores parameters and buffers by name from a checkpoint image into an
/// identically-structured module. Fails with InvalidArgument on magic /
/// version / name / shape mismatch and Internal on a truncated or
/// checksum-corrupted payload.
[[nodiscard]] Status DeserializeParameters(Module& module, const std::string& bytes);

/// Validates an image's magic, version and payload checksum without
/// touching a module — the registry's publish-time integrity gate.
[[nodiscard]] Status VerifyCheckpointImage(const std::string& bytes);

/// Payload checksum recorded in a (valid v3) image's header; 0 for v2.
uint64_t CheckpointImageChecksum(const std::string& bytes);

/// Writes the checkpoint image of `module` to a binary file.
[[nodiscard]] Status SaveParameters(const Module& module, const std::string& path);

/// Reads a checkpoint file and restores it via DeserializeParameters.
/// Fails with NotFound when the file is missing.
[[nodiscard]] Status LoadParameters(Module& module, const std::string& path);

}  // namespace basm::nn

#endif  // BASM_NN_SERIALIZE_H_
