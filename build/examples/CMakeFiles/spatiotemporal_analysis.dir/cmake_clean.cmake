file(REMOVE_RECURSE
  "CMakeFiles/spatiotemporal_analysis.dir/spatiotemporal_analysis.cc.o"
  "CMakeFiles/spatiotemporal_analysis.dir/spatiotemporal_analysis.cc.o.d"
  "spatiotemporal_analysis"
  "spatiotemporal_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatiotemporal_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
