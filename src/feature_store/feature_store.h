#ifndef BASM_FEATURE_STORE_FEATURE_STORE_H_
#define BASM_FEATURE_STORE_FEATURE_STORE_H_

#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"
#include "data/schema.h"
#include "serving/feature_server.h"

namespace basm::feature_store {

struct FeatureStoreConfig {
  /// User-hash shards; concurrent requests for different users contend only
  /// when they land on the same shard.
  int32_t num_shards = 8;
  /// Per-shard LRU capacity of the last-known-features cache. 0 disables
  /// the cache entirely (and with it prefetch and stale serving) — the
  /// store then degrades to a thin locking facade over the server.
  int64_t capacity_per_shard = 128;
};

/// Lifetime counters, merged across shards by stats(). The serving engine
/// folds these into every LatencySnapshot export.
struct FeatureStoreStats {
  int64_t fresh_fetches = 0;      ///< successful server round-trips
  int64_t fetch_failures = 0;     ///< failed server round-trips
  int64_t cache_entries = 0;      ///< live LRU entries right now
  int64_t stale_hits = 0;         ///< LastKnownFeatures found a window
  int64_t stale_misses = 0;       ///< LastKnownFeatures found nothing
  int64_t insertions = 0;         ///< new users cached
  int64_t evictions = 0;          ///< LRU entries displaced at capacity
  int64_t prefetch_issued = 0;    ///< Prefetch calls that fetched
  int64_t prefetch_hits = 0;      ///< fetches served from a prefetch
  int64_t prefetch_discarded = 0; ///< prefetches invalidated by a click
  int64_t prefetch_cancelled = 0; ///< prefetches skipped past deadline
};

/// A last-known behavior window plus how old it is — what a degraded
/// request serves instead of an empty window.
struct StaleFeatures {
  std::vector<data::BehaviorEvent> behaviors;
  int64_t age_micros = 0;
};

/// Sharded concurrent facade over the ABFS FeatureServer — the hot-path
/// feature tier. Each user hashes to one shard guarded by its own
/// basm::Mutex; a per-shard LRU keeps the *last known* behavior window of
/// recently served users so the fault-tolerant path can degrade to stale
/// features (real but old behavior) instead of an empty window, and an
/// async prefetch path lets the serving engine overlap the next
/// micro-batch's lookups with scoring of the current one.
///
/// Consistency contract: all click writes must flow through RecordClick on
/// the store (not the raw server), which bumps the user's version and so
/// invalidates any in-flight prefetch of a pre-click window. A consumed
/// prefetch is therefore always bit-identical to a synchronous fetch at
/// consume time — the happy path never serves a window the server would
/// not have returned.
///
/// The raw fallible fetch (FeatureServer::FetchUserFeatures, where the
/// FaultInjector site lives) is reachable only through this facade on the
/// serving path; basm_lint's feature-fetch-outside-store rule enforces it.
class FeatureStore {
 public:
  /// The server is borrowed and must outlive the store.
  explicit FeatureStore(serving::FeatureServer* server,
                        FeatureStoreConfig config = {});

  FeatureStore(const FeatureStore&) = delete;
  FeatureStore& operator=(const FeatureStore&) = delete;

  /// Infallible in-process lookup (CHECKs on bad ids, like the server's
  /// GetUserFeatures). Consumes a version-valid prefetched window when one
  /// is parked, else round-trips to the server; either way the result is
  /// bit-identical to the server's current window, and the LRU cache is
  /// refreshed with it.
  serving::FeatureServer::UserFeatures GetFeatures(int32_t user_id);

  /// The fallible "RPC" fetch the retry/breaker loop calls. Consumes a
  /// version-valid prefetched window without touching the server;
  /// otherwise performs exactly one server fetch (evaluating the
  /// feature_server.fetch fault site). Success refreshes the cache;
  /// failure surfaces the Status verbatim and leaves the last-known
  /// window untouched for LastKnownFeatures.
  [[nodiscard]] StatusOr<serving::FeatureServer::UserFeatures> FetchFeatures(
      int32_t user_id);

  /// The degraded fallback: the user's last successfully fetched window
  /// with its staleness age, or nullopt if the user was never cached (or
  /// was evicted). Read-only — does not touch LRU recency, so probing a
  /// dead dependency's fallback never perturbs eviction order.
  std::optional<StaleFeatures> LastKnownFeatures(int32_t user_id);

  /// Forwards a click to the server under the user's shard lock and bumps
  /// the user's version, invalidating any prefetched pre-click window.
  /// Deliberately does NOT update the cached window: the cache holds what
  /// was last *fetched*, so staleness is honest.
  void RecordClick(int32_t user_id, const data::BehaviorEvent& event);

  /// Async-prefetch body (run on the engine's prefetch pool): fetches the
  /// user's window and parks it in the cache entry, tagged with the
  /// user's current version, for the next GetFeatures/FetchFeatures to
  /// consume without a server round-trip. A deadline already in the past
  /// cancels without fetching. Returns true when a window was parked.
  bool Prefetch(int32_t user_id,
                std::chrono::steady_clock::time_point deadline);

  /// Counters merged across shards (cache_entries is the live total).
  FeatureStoreStats stats() const;

  const FeatureStoreConfig& config() const { return config_; }
  serving::FeatureServer* server() const { return server_; }
  /// True when the LRU (and so stale serving + prefetch) is enabled.
  bool cache_enabled() const { return config_.capacity_per_shard > 0; }

  /// Shard index of a user (public for the shard-spread test).
  int32_t ShardOf(int32_t user_id) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    int32_t user_id = 0;
    std::vector<data::BehaviorEvent> behaviors;
    Clock::time_point fetched_at;
    /// A prefetched window is parked here until consumed or invalidated.
    bool prefetch_fresh = false;
    uint64_t prefetch_version = 0;
  };

  /// One shard: LRU list (front = most recently fetched) plus a user
  /// index into it, and the per-user version counters that guard
  /// prefetch consumption. Buffers in evicted Entry slots are reused via
  /// assign(), so a warm shard stops hitting the allocator.
  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru BASM_GUARDED_BY(mu);
    std::unordered_map<int32_t, std::list<Entry>::iterator> index
        BASM_GUARDED_BY(mu);
    std::unordered_map<int32_t, uint64_t> versions BASM_GUARDED_BY(mu);
    int64_t fresh_fetches BASM_GUARDED_BY(mu) = 0;
    int64_t fetch_failures BASM_GUARDED_BY(mu) = 0;
    int64_t stale_hits BASM_GUARDED_BY(mu) = 0;
    int64_t stale_misses BASM_GUARDED_BY(mu) = 0;
    int64_t insertions BASM_GUARDED_BY(mu) = 0;
    int64_t evictions BASM_GUARDED_BY(mu) = 0;
    int64_t prefetch_issued BASM_GUARDED_BY(mu) = 0;
    int64_t prefetch_hits BASM_GUARDED_BY(mu) = 0;
    int64_t prefetch_discarded BASM_GUARDED_BY(mu) = 0;
    int64_t prefetch_cancelled BASM_GUARDED_BY(mu) = 0;
  };

  /// Moves the user's entry to the LRU front with `behaviors` as the new
  /// window (inserting/evicting as needed). Caller holds the shard lock.
  void RefreshLocked(Shard& shard, int32_t user_id,
                     const std::vector<data::BehaviorEvent>& behaviors)
      BASM_REQUIRES(shard.mu);

  /// Consumes a version-valid parked prefetch into *out; false when there
  /// is none (or a click invalidated it, which counts a discard).
  bool ConsumePrefetchLocked(Shard& shard, int32_t user_id,
                             serving::FeatureServer::UserFeatures* out)
      BASM_REQUIRES(shard.mu);

  serving::FeatureServer* server_;
  FeatureStoreConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace basm::feature_store

#endif  // BASM_FEATURE_STORE_FEATURE_STORE_H_
