#include "autograd/variable.h"

#include <unordered_set>

namespace basm::autograd {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

bool GradEnabled() { return g_grad_enabled; }

Variable Variable::Leaf(Tensor value, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  return Variable(std::move(node));
}

const Tensor& Variable::value() const {
  BASM_CHECK(defined());
  return node_->value;
}

Tensor& Variable::mutable_value() {
  BASM_CHECK(defined());
  return node_->value;
}

Tensor& Variable::grad() {
  BASM_CHECK(defined());
  node_->EnsureGrad();
  return node_->grad;
}

const Tensor& Variable::grad() const {
  BASM_CHECK(defined());
  node_->EnsureGrad();
  return node_->grad;
}

bool Variable::requires_grad() const {
  BASM_CHECK(defined());
  return node_->requires_grad;
}

void Variable::ZeroGrad() {
  BASM_CHECK(defined());
  node_->EnsureGrad();
  node_->grad.SetZero();
}

namespace {

/// Depth-first post-order over the parent DAG; result has parents before
/// children, so reverse iteration visits each node only after all of its
/// consumers have contributed gradient.
void TopoSort(const std::shared_ptr<Node>& node,
              std::unordered_set<Node*>& visited,
              std::vector<std::shared_ptr<Node>>& order) {
  if (node == nullptr || visited.count(node.get()) > 0) return;
  visited.insert(node.get());
  for (const auto& parent : node->parents) {
    TopoSort(parent, visited, order);
  }
  order.push_back(node);
}

}  // namespace

int64_t GraphTensorBytes(const Variable& root) {
  BASM_CHECK(root.defined());
  std::unordered_set<Node*> visited;
  std::vector<std::shared_ptr<Node>> order;
  TopoSort(root.node(), visited, order);
  int64_t bytes = 0;
  for (const auto& node : order) {
    bytes += node->value.numel() * 4;
    bytes += node->grad.numel() * 4;
  }
  return bytes;
}

int64_t GraphNodeCount(const Variable& root) {
  BASM_CHECK(root.defined());
  std::unordered_set<Node*> visited;
  std::vector<std::shared_ptr<Node>> order;
  TopoSort(root.node(), visited, order);
  return static_cast<int64_t>(order.size());
}

void Backward(const Variable& root, const Tensor& seed) {
  BASM_CHECK(root.defined());
  BASM_CHECK(root.node()->value.SameShape(seed))
      << "seed shape mismatch: " << ShapeToString(seed.shape());
  std::unordered_set<Node*> visited;
  std::vector<std::shared_ptr<Node>> order;
  TopoSort(root.node(), visited, order);

  root.node()->EnsureGrad();
  root.node()->grad.AddInPlace(seed);

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node& node = **it;
    if (!node.requires_grad || !node.backward_fn) continue;
    node.EnsureGrad();
    node.backward_fn(node);
  }
}

void Backward(const Variable& root) {
  BASM_CHECK(root.defined());
  BASM_CHECK_EQ(root.numel(), 1)
      << "Backward() without a seed requires a scalar root";
  Backward(root, Tensor::Ones(root.shape()));
}

}  // namespace basm::autograd
