# Empty dependencies file for table3_dataset_stats.
# This may be replaced when dependencies are built.
