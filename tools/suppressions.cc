#include "tools/suppressions.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace basm::lint {

std::vector<SuppressEntry> ParseSuppressions(const std::string& content) {
  std::vector<SuppressEntry> entries;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    // Trim leading whitespace; skip blanks and comment lines.
    size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    std::istringstream fields(line.substr(start));
    SuppressEntry entry;
    if (!(fields >> entry.rule >> entry.path_substring)) continue;
    std::getline(fields, entry.reason);
    size_t at = entry.reason.find_first_not_of(" \t");
    entry.reason = at == std::string::npos ? "" : entry.reason.substr(at);
    entries.push_back(std::move(entry));
  }
  return entries;
}

bool LoadSuppressionsFile(const std::string& path,
                          std::vector<SuppressEntry>* out) {
  out->clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = ParseSuppressions(buffer.str());
  return true;
}

bool SuppressionsMatch(const std::vector<SuppressEntry>& entries,
                       const std::string& rule, const std::string& path) {
  for (const SuppressEntry& entry : entries) {
    if (rule == entry.rule &&
        path.find(entry.path_substring) != std::string::npos) {
      return true;
    }
  }
  return false;
}

const std::vector<SuppressEntry>& LintPathAllowlist() {
  static const std::vector<SuppressEntry>* table = [] {
    auto* entries = new std::vector<SuppressEntry>();
    if (const char* env = std::getenv("BASM_ALLOWLIST")) {
      if (LoadSuppressionsFile(env, entries)) return entries;
    }
#ifdef BASM_SOURCE_DIR
    if (LoadSuppressionsFile(std::string(BASM_SOURCE_DIR) +
                                 "/tools/allowlist.conf",
                             entries)) {
      return entries;
    }
#endif
    (void)LoadSuppressionsFile("tools/allowlist.conf", entries);
    return entries;
  }();
  return *table;
}

}  // namespace basm::lint
