#include "nn/dropout.h"

namespace basm::nn {

namespace ag = ::basm::autograd;

Dropout::Dropout(float rate, uint64_t seed) : rate_(rate), rng_(seed) {
  BASM_CHECK_GE(rate_, 0.0f);
  BASM_CHECK_LT(rate_, 1.0f);
}

ag::Variable Dropout::Forward(const ag::Variable& x) {
  if (!training() || rate_ == 0.0f) return x;
  Tensor mask(x.value().shape());
  float keep_scale = 1.0f / (1.0f - rate_);
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask[i] = rng_.Bernoulli(rate_) ? 0.0f : keep_scale;
  }
  return ag::Mul(x, ag::Variable::Constant(std::move(mask)));
}

}  // namespace basm::nn
