#include "nn/embedding.h"

#include "nn/init.h"

namespace basm::nn {

Embedding::Embedding(int64_t vocab_size, int64_t dim, Rng& rng)
    : vocab_size_(vocab_size), dim_(dim) {
  table_ = RegisterParameter("table", EmbeddingInit(vocab_size, dim, rng));
}

autograd::Variable Embedding::Forward(const std::vector<int32_t>& ids) const {
  return autograd::EmbeddingLookup(table_, ids);
}

}  // namespace basm::nn
