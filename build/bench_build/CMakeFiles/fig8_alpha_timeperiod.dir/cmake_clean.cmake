file(REMOVE_RECURSE
  "../bench/fig8_alpha_timeperiod"
  "../bench/fig8_alpha_timeperiod.pdb"
  "CMakeFiles/fig8_alpha_timeperiod.dir/fig8_alpha_timeperiod.cc.o"
  "CMakeFiles/fig8_alpha_timeperiod.dir/fig8_alpha_timeperiod.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_alpha_timeperiod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
