#include "tools/analyze/io_loop.h"

#include <set>
#include <string>

namespace basm::analyze {
namespace {

/// Classes whose non-lifecycle methods run on IO loop threads. A nested
/// class (e.g. `EpollRpcServer::LoopShard`) is in scope through its
/// outermost component.
const std::set<std::string>& IoLoopClasses() {
  static const std::set<std::string> kClasses = {
      "EventLoop",
      "EpollRpcServer",
  };
  return kClasses;
}

/// Same blocking-syscall vocabulary as the blocking-under-lock pass.
const std::set<std::string>& BlockingTokens() {
  static const std::set<std::string> kTokens = {
      "fsync",    "fdatasync", "write",       "pwrite",      "read",
      "pread",    "send",      "recv",        "sendto",      "recvfrom",
      "connect",  "accept",    "poll",        "ppoll",       "select",
      "usleep",   "nanosleep", "sleep_for",   "sleep_until", "sleep",
      "join",     "flock",     "system",      "wait",        "waitpid",
  };
  return kTokens;
}

/// The repo's own blocking wrappers: each parks the calling thread by
/// contract (poll-and-continue loops inside), which is exactly what an IO
/// loop thread must never do. The loop uses the Chunk/Try variants instead.
const std::set<std::string>& BlockingWrappers() {
  static const std::set<std::string> kWrappers = {
      "ReadAll",        "WriteAll", "Accept",
      "WaitAcceptable", "WaitReadable",
      // Blocking submit/round-trip APIs: the loop must use the
      // callback-based SubmitAsync path.
      "Submit",         "HandleRequestBlocking", "Call",
  };
  return kWrappers;
}

bool IsWaitFamily(const std::string& name) {
  return name == "Wait" || name == "WaitUntil" || name == "WaitFor";
}

/// Outermost class component: `EpollRpcServer::LoopShard` -> the server.
std::string OuterClass(const std::string& cls) {
  size_t at = cls.find("::");
  return at == std::string::npos ? cls : cls.substr(0, at);
}

std::string SimpleName(const std::string& cls) {
  size_t at = cls.rfind("::");
  return at == std::string::npos ? cls : cls.substr(at + 2);
}

/// Lifecycle methods run on the owner's thread, before the loop exists or
/// after it has quit — joining and waiting there is correct.
bool LifecycleExempt(const FunctionScan& fn) {
  const std::string simple = SimpleName(fn.cls);
  return fn.name == "Start" || fn.name == "Stop" || fn.name == simple ||
         fn.name == "~" + simple;
}

}  // namespace

std::vector<lint::Finding> RunIoLoop(const std::vector<FileScan>& files) {
  std::vector<lint::Finding> findings;
  constexpr char kPass[] = "blocking-in-event-loop";

  for (const FileScan& file : files) {
    for (const FunctionScan& fn : file.functions) {
      if (fn.cls.empty() || !IoLoopClasses().count(OuterClass(fn.cls))) {
        continue;
      }
      if (LifecycleExempt(fn)) continue;
      const std::string where = fn.cls + "::" + fn.name;
      for (const Call& call : fn.calls) {
        std::string why;
        if (BlockingTokens().count(call.name) || IsWaitFamily(call.name)) {
          why = "'" + call.name + "' can park the IO loop thread";
        } else if (BlockingWrappers().count(call.name)) {
          why = "'" + call.name +
                "' blocks by contract (poll-and-continue wrapper)";
        }
        if (why.empty()) continue;
        findings.push_back(lint::Finding{
            file.path, call.line, kPass,
            where + " calls " + call.name + " in event-loop scope: " + why +
                "; one blocked loop thread stalls every connection of its "
                "shard — use the non-blocking Chunk/Try/Async variant or "
                "justify with an inline allow"});
      }
    }
  }
  return findings;
}

}  // namespace basm::analyze
