#ifndef BASM_MODELS_CTR_MODEL_H_
#define BASM_MODELS_CTR_MODEL_H_

#include <string>
#include <vector>

#include "autograd/ops.h"
#include "data/batch.h"
#include "nn/module.h"

namespace basm::models {

/// Interface shared by every CTR model in the zoo (the six baselines of
/// Table IV, the online base model, and BASM itself). Trainers consume this
/// interface only, so offline comparisons and the A/B simulator are
/// model-agnostic.
class CtrModel : public nn::Module {
 public:
  ~CtrModel() override = default;

  /// Click log-odds for each impression in the batch: [B].
  virtual autograd::Variable ForwardLogits(const data::Batch& batch) = 0;

  /// Human-readable model name as it appears in the paper's tables.
  virtual std::string name() const = 0;

  /// Convenience for evaluation/serving: sigmoid(logits) as raw floats.
  /// Leaves training mode untouched; callers set eval mode beforehand.
  std::vector<float> PredictProbs(const data::Batch& batch);

  /// Final hidden representation used for the t-SNE visualizations
  /// (Figs 10/11). Models override to expose their last hidden layer; the
  /// default returns an empty Variable.
  virtual autograd::Variable FinalRepresentation(const data::Batch& batch) {
    (void)batch;
    return autograd::Variable();
  }
};

}  // namespace basm::models

#endif  // BASM_MODELS_CTR_MODEL_H_
