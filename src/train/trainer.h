#ifndef BASM_TRAIN_TRAINER_H_
#define BASM_TRAIN_TRAINER_H_

#include <cstdint>
#include <vector>

#include "data/schema.h"
#include "metrics/metrics.h"
#include "models/ctr_model.h"

namespace basm::train {

/// Training hyperparameters; defaults mirror the paper's recipe scaled to
/// the synthetic workload (AdagradDecay + linear LR warmup, batch 256).
struct TrainConfig {
  int64_t epochs = 2;
  int64_t batch_size = 256;
  float lr_base = 0.01f;
  float lr_peak = 0.05f;
  int64_t warmup_steps = 100;
  float adagrad_decay = 0.9999f;
  float clip_norm = 10.0f;
  uint64_t shuffle_seed = 777;
  bool verbose = false;

  TrainConfig WithEpochs(int64_t e) const {
    TrainConfig c = *this;
    c.epochs = e;
    return c;
  }
};

/// Outcome of a training run.
struct TrainResult {
  double seconds = 0.0;
  int64_t steps = 0;
  float final_loss = 0.0f;
  std::vector<float> epoch_losses;  // mean loss per epoch
};

/// Trains a model on the dataset's train split (days before test_day).
TrainResult Fit(models::CtrModel& model, const data::Dataset& dataset,
                const TrainConfig& config);

/// Trains on an explicit example list (used for incremental / online
/// updates in the style of the paper's AOP deployment: warm-start from the
/// current weights and fit only the newly-logged day).
TrainResult FitExamples(models::CtrModel& model,
                        const std::vector<const data::Example*>& examples,
                        const data::Schema& schema, const TrainConfig& config);

/// Result of validation-driven training.
struct ValidatedTrainResult {
  TrainResult train;
  std::vector<double> epoch_val_aucs;
  double best_val_auc = 0.0;
  int64_t best_epoch = -1;
  bool early_stopped = false;
};

/// Trains with a held-out validation slice (one request in `holdout_every`
/// from the train split, grouped by request to avoid leakage), evaluates
/// validation AUC after each epoch, stops after `patience` epochs without
/// improvement, and restores the best epoch's weights. This is the guarded
/// training loop a production refresh pipeline runs before promoting a
/// model to serving.
ValidatedTrainResult FitWithValidation(models::CtrModel& model,
                                       const data::Dataset& dataset,
                                       const TrainConfig& config,
                                       int64_t patience = 2,
                                       int64_t holdout_every = 10);

/// Full evaluation output: the Table IV metric bundle plus the raw
/// per-impression vectors the figure benches aggregate.
struct EvalResult {
  metrics::EvalSummary summary;
  std::vector<float> probs;
  std::vector<float> labels;
  std::vector<int32_t> time_periods;
  std::vector<int32_t> cities;
  std::vector<int32_t> hours;
  std::vector<int32_t> request_ids;
};

/// Scores the dataset's test split (eval mode: BN running statistics).
EvalResult EvaluateOnTest(models::CtrModel& model,
                          const data::Dataset& dataset,
                          int64_t batch_size = 512);

/// Table VI profile of one model on one dataset.
struct EfficiencyReport {
  double seconds_per_epoch = 0.0;
  int64_t parameter_count = 0;
  int64_t parameter_bytes = 0;
  /// Bytes of the forward/backward graph of one batch (activations+grads).
  int64_t activation_bytes = 0;
  /// parameters + optimizer state (Adagrad accumulator) + activations.
  int64_t total_bytes = 0;
};

/// Measures wall-time per epoch (extrapolated from `probe_batches` training
/// steps) and memory footprint.
EfficiencyReport ProfileEfficiency(models::CtrModel& model,
                                   const data::Dataset& dataset,
                                   int64_t batch_size = 256,
                                   int64_t probe_batches = 20);

}  // namespace basm::train

#endif  // BASM_TRAIN_TRAINER_H_
