file(REMOVE_RECURSE
  "../bench/table5_ablation"
  "../bench/table5_ablation.pdb"
  "CMakeFiles/table5_ablation.dir/table5_ablation.cc.o"
  "CMakeFiles/table5_ablation.dir/table5_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
