#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <numeric>

namespace basm {

int64_t ShapeNumel(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    BASM_CHECK_GE(d, 0);
    n *= d;
  }
  return n;
}

std::string ShapeToString(const std::vector<int64_t>& shape) {
  if (shape.empty()) return "<scalar>";
  std::string out;
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out += "x";
    out += std::to_string(shape[i]);
  }
  return out;
}

Tensor::Tensor(std::vector<int64_t> shape)
    : shape_(std::move(shape)), data_(ShapeNumel(shape_)) {}

Tensor::Tensor(std::vector<int64_t> shape, const std::vector<float>& values)
    : shape_(std::move(shape)),
      data_(static_cast<int64_t>(values.size()), AlignedBuffer::Uninit{}) {
  BASM_CHECK_EQ(ShapeNumel(shape_), static_cast<int64_t>(values.size()))
      << "shape " << ShapeToString(shape_) << " vs values";
  if (!values.empty()) {
    std::memcpy(data_.data(), values.data(), values.size() * sizeof(float));
  }
}

Tensor::Tensor(std::vector<int64_t> shape, UninitTag)
    : shape_(std::move(shape)),
      data_(ShapeNumel(shape_), AlignedBuffer::Uninit{}) {}

Tensor Tensor::Zeros(std::vector<int64_t> shape) {
  return Tensor(std::move(shape));
}

Tensor Tensor::Uninitialized(std::vector<int64_t> shape) {
  return Tensor(std::move(shape), UninitTag{});
}

Tensor Tensor::Ones(std::vector<int64_t> shape) {
  return Full(std::move(shape), 1.0f);
}

Tensor Tensor::Full(std::vector<int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Uniform(std::vector<int64_t> shape, float lo, float hi,
                       Rng& rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

Tensor Tensor::Normal(std::vector<int64_t> shape, float mean, float stddev,
                      Rng& rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) {
    t[i] = static_cast<float>(rng.Normal(mean, stddev));
  }
  return t;
}

Tensor Tensor::FromVector(const std::vector<float>& values) {
  return Tensor({static_cast<int64_t>(values.size())}, values);
}

int64_t Tensor::dim(int i) const {
  BASM_CHECK_GE(i, 0);
  BASM_CHECK_LT(i, rank());
  return shape_[static_cast<size_t>(i)];
}

int64_t Tensor::rows() const {
  BASM_CHECK_EQ(rank(), 2) << ShapeToString(shape_);
  return shape_[0];
}

int64_t Tensor::cols() const {
  BASM_CHECK_EQ(rank(), 2) << ShapeToString(shape_);
  return shape_[1];
}

Tensor Tensor::Reshape(std::vector<int64_t> new_shape) const {
  int64_t known = 1;
  int infer_at = -1;
  for (size_t i = 0; i < new_shape.size(); ++i) {
    if (new_shape[i] == -1) {
      BASM_CHECK_EQ(infer_at, -1) << "multiple -1 dims";
      infer_at = static_cast<int>(i);
    } else {
      known *= new_shape[i];
    }
  }
  if (infer_at >= 0) {
    BASM_CHECK_GT(known, 0);
    BASM_CHECK_EQ(numel() % known, 0);
    new_shape[static_cast<size_t>(infer_at)] = numel() / known;
  }
  BASM_CHECK_EQ(ShapeNumel(new_shape), numel())
      << ShapeToString(shape_) << " -> " << ShapeToString(new_shape);
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

float& Tensor::at(int64_t r, int64_t c) {
  BASM_CHECK_EQ(rank(), 2);
  BASM_CHECK_GE(r, 0);
  BASM_CHECK_LT(r, shape_[0]);
  BASM_CHECK_GE(c, 0);
  BASM_CHECK_LT(c, shape_[1]);
  return data_.data()[r * shape_[1] + c];
}

float Tensor::at(int64_t r, int64_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

float& Tensor::at(int64_t i, int64_t j, int64_t k) {
  BASM_CHECK_EQ(rank(), 3);
  BASM_CHECK_GE(i, 0);
  BASM_CHECK_LT(i, shape_[0]);
  BASM_CHECK_GE(j, 0);
  BASM_CHECK_LT(j, shape_[1]);
  BASM_CHECK_GE(k, 0);
  BASM_CHECK_LT(k, shape_[2]);
  return data_.data()[(i * shape_[1] + j) * shape_[2] + k];
}

float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

void Tensor::Fill(float value) {
  std::fill(data_.data(), data_.data() + numel(), value);
}

void Tensor::AddInPlace(const Tensor& other) {
  BASM_CHECK(SameShape(other))
      << ShapeToString(shape_) << " vs " << ShapeToString(other.shape_);
  float* d = data_.data();
  const float* o = other.data_.data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) d[i] += o[i];
}

void Tensor::AddScaledInPlace(const Tensor& other, float scale) {
  BASM_CHECK(SameShape(other))
      << ShapeToString(shape_) << " vs " << ShapeToString(other.shape_);
  float* d = data_.data();
  const float* o = other.data_.data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) d[i] += scale * o[i];
}

void Tensor::ScaleInPlace(float scale) {
  float* d = data_.data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) d[i] *= scale;
}

float Tensor::Sum() const {
  double acc = 0.0;
  const float* d = data_.data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) acc += d[i];
  return static_cast<float>(acc);
}

float Tensor::Mean() const {
  BASM_CHECK_GT(numel(), 0);
  return Sum() / static_cast<float>(numel());
}

float Tensor::Min() const {
  BASM_CHECK_GT(numel(), 0);
  return *std::min_element(data_.data(), data_.data() + numel());
}

float Tensor::Max() const {
  BASM_CHECK_GT(numel(), 0);
  return *std::max_element(data_.data(), data_.data() + numel());
}

bool Tensor::HasNonFinite() const {
  const float* d = data_.data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) {
    if (!std::isfinite(d[i])) return true;
  }
  return false;
}

std::string Tensor::DebugString() const {
  char buf[128];
  if (numel() == 0) {
    std::snprintf(buf, sizeof(buf), "Tensor[%s] <empty>",
                  ShapeToString(shape_).c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "Tensor[%s] mean=%.4g min=%.4g max=%.4g",
                  ShapeToString(shape_).c_str(), Mean(), Min(), Max());
  }
  return buf;
}

}  // namespace basm
