#include "autograd/ops.h"

#include <cmath>
#include <utility>

#include "tensor/tensor_ops.h"

namespace basm::autograd {

namespace {

/// Builds an interior node from parents + forward value; requires_grad is
/// inherited from the parents. The backward_fn may assume `EnsureGrad` has
/// been called on the node before invocation.
Variable MakeNode(std::vector<Variable> parents, Tensor value,
                  std::function<void(Node&)> backward_fn) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  if (!GradEnabled()) {
    // Inference mode: detached node. Dropping the parent edges lets each
    // intermediate tensor free as soon as its last consumer runs, so large
    // serving batches stay cache-resident.
    return Variable(std::move(node));
  }
  for (const Variable& p : parents) {
    BASM_CHECK(p.defined());
    node->parents.push_back(p.node());
    node->requires_grad = node->requires_grad || p.requires_grad();
  }
  if (node->requires_grad) {
    node->backward_fn = std::move(backward_fn);
  }
  return Variable(std::move(node));
}

/// Accumulates `delta` into `target`'s gradient if it participates in
/// training; no-op otherwise.
void Accumulate(const std::shared_ptr<Node>& target, const Tensor& delta) {
  if (!target->requires_grad) return;
  target->EnsureGrad();
  target->grad.AddInPlace(delta);
}

}  // namespace

Variable MatMul(const Variable& a, const Variable& b) {
  Tensor value = ops::MatMul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeNode({a, b}, std::move(value), [an, bn](Node& node) {
    if (an->requires_grad) {
      Accumulate(an, ops::MatMulTransB(node.grad, bn->value));
    }
    if (bn->requires_grad) {
      Accumulate(bn, ops::MatMulTransA(an->value, node.grad));
    }
  });
}

Variable BatchedMatMul(const Variable& a, const Variable& b) {
  Tensor value = ops::BatchedMatMul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeNode({a, b}, std::move(value), [an, bn](Node& node) {
    if (an->requires_grad) {
      Accumulate(an, ops::BatchedMatMulTransB(node.grad, bn->value));
    }
    if (bn->requires_grad) {
      Accumulate(bn, ops::BatchedMatMulTransA(an->value, node.grad));
    }
  });
}

Variable BatchedMatMulTransB(const Variable& a, const Variable& b) {
  Tensor value = ops::BatchedMatMulTransB(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeNode({a, b}, std::move(value), [an, bn](Node& node) {
    // C = A B^T  =>  dA = dC B, dB = dC^T A.
    if (an->requires_grad) {
      Accumulate(an, ops::BatchedMatMul(node.grad, bn->value));
    }
    if (bn->requires_grad) {
      Accumulate(bn, ops::BatchedMatMulTransA(node.grad, an->value));
    }
  });
}

Variable Add(const Variable& a, const Variable& b) {
  Tensor value = ops::Add(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeNode({a, b}, std::move(value), [an, bn](Node& node) {
    Accumulate(an, node.grad);
    Accumulate(bn, node.grad);
  });
}

Variable Sub(const Variable& a, const Variable& b) {
  Tensor value = ops::Sub(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeNode({a, b}, std::move(value), [an, bn](Node& node) {
    Accumulate(an, node.grad);
    if (bn->requires_grad) Accumulate(bn, ops::Scale(node.grad, -1.0f));
  });
}

Variable Mul(const Variable& a, const Variable& b) {
  Tensor value = ops::Mul(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeNode({a, b}, std::move(value), [an, bn](Node& node) {
    if (an->requires_grad) Accumulate(an, ops::Mul(node.grad, bn->value));
    if (bn->requires_grad) Accumulate(bn, ops::Mul(node.grad, an->value));
  });
}

Variable Div(const Variable& a, const Variable& b) {
  Tensor value = ops::Div(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeNode({a, b}, std::move(value), [an, bn](Node& node) {
    if (an->requires_grad) Accumulate(an, ops::Div(node.grad, bn->value));
    if (bn->requires_grad) {
      // d/db (a/b) = -a / b^2
      Tensor d = ops::Div(ops::Mul(node.grad, an->value),
                          ops::Mul(bn->value, bn->value));
      Accumulate(bn, ops::Scale(d, -1.0f));
    }
  });
}

Variable Scale(const Variable& a, float s) {
  Tensor value = ops::Scale(a.value(), s);
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an, s](Node& node) {
    Accumulate(an, ops::Scale(node.grad, s));
  });
}

Variable AddScalar(const Variable& a, float s) {
  Tensor value = ops::AddScalar(a.value(), s);
  auto an = a.node();
  return MakeNode({a}, std::move(value),
                  [an](Node& node) { Accumulate(an, node.grad); });
}

Variable Neg(const Variable& a) { return Scale(a, -1.0f); }

Variable AddRowBroadcast(const Variable& a, const Variable& b) {
  Tensor value = ops::AddRowBroadcast(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeNode({a, b}, std::move(value), [an, bn](Node& node) {
    Accumulate(an, node.grad);
    if (bn->requires_grad) {
      Accumulate(bn, ops::ColSum(node.grad).Reshape(bn->value.shape()));
    }
  });
}

Variable MulRowBroadcast(const Variable& a, const Variable& b) {
  Tensor value = ops::MulRowBroadcast(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeNode({a, b}, std::move(value), [an, bn](Node& node) {
    if (an->requires_grad) {
      Accumulate(an, ops::MulRowBroadcast(node.grad, bn->value));
    }
    if (bn->requires_grad) {
      Tensor d = ops::ColSum(ops::Mul(node.grad, an->value));
      Accumulate(bn, d.Reshape(bn->value.shape()));
    }
  });
}

Variable AddColBroadcast(const Variable& a, const Variable& b) {
  Tensor value = ops::AddColBroadcast(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeNode({a, b}, std::move(value), [an, bn](Node& node) {
    Accumulate(an, node.grad);
    if (bn->requires_grad) {
      Accumulate(bn, ops::RowSum(node.grad).Reshape(bn->value.shape()));
    }
  });
}

Variable MulColBroadcast(const Variable& a, const Variable& b) {
  Tensor value = ops::MulColBroadcast(a.value(), b.value());
  auto an = a.node();
  auto bn = b.node();
  return MakeNode({a, b}, std::move(value), [an, bn](Node& node) {
    if (an->requires_grad) {
      Accumulate(an, ops::MulColBroadcast(node.grad, bn->value));
    }
    if (bn->requires_grad) {
      Tensor d = ops::RowSum(ops::Mul(node.grad, an->value));
      Accumulate(bn, d.Reshape(bn->value.shape()));
    }
  });
}

Variable Sigmoid(const Variable& a) {
  Tensor value = ops::Sigmoid(a.value());
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an](Node& node) {
    Tensor d = node.grad;
    const Tensor& y = node.value;
    for (int64_t i = 0; i < d.numel(); ++i) d[i] *= y[i] * (1.0f - y[i]);
    Accumulate(an, d);
  });
}

Variable Tanh(const Variable& a) {
  Tensor value = ops::Tanh(a.value());
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an](Node& node) {
    Tensor d = node.grad;
    const Tensor& y = node.value;
    for (int64_t i = 0; i < d.numel(); ++i) d[i] *= 1.0f - y[i] * y[i];
    Accumulate(an, d);
  });
}

Variable Relu(const Variable& a) {
  Tensor value = ops::Relu(a.value());
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an](Node& node) {
    Tensor d = node.grad;
    for (int64_t i = 0; i < d.numel(); ++i) {
      if (an->value[i] <= 0.0f) d[i] = 0.0f;
    }
    Accumulate(an, d);
  });
}

Variable LeakyRelu(const Variable& a, float alpha) {
  Tensor value = ops::LeakyRelu(a.value(), alpha);
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an, alpha](Node& node) {
    Tensor d = node.grad;
    for (int64_t i = 0; i < d.numel(); ++i) {
      if (an->value[i] <= 0.0f) d[i] *= alpha;
    }
    Accumulate(an, d);
  });
}

Variable Exp(const Variable& a) {
  Tensor value = ops::Exp(a.value());
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an](Node& node) {
    Accumulate(an, ops::Mul(node.grad, node.value));
  });
}

Variable Log(const Variable& a, float floor) {
  Tensor value = ops::Log(a.value(), floor);
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an, floor](Node& node) {
    Tensor d = node.grad;
    for (int64_t i = 0; i < d.numel(); ++i) {
      d[i] /= std::max(an->value[i], floor);
    }
    Accumulate(an, d);
  });
}

Variable Rsqrt(const Variable& a, float eps) {
  Tensor value = ops::Map(a.value(), [eps](float v) {
    return 1.0f / std::sqrt(v + eps);
  });
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an](Node& node) {
    // y = (x+eps)^-1/2, dy/dx = -0.5 y^3.
    Tensor d = node.grad;
    const Tensor& y = node.value;
    for (int64_t i = 0; i < d.numel(); ++i) {
      d[i] *= -0.5f * y[i] * y[i] * y[i];
    }
    Accumulate(an, d);
  });
}

Variable SumAll(const Variable& a) {
  Tensor value = ops::SumAll(a.value());
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an](Node& node) {
    if (!an->requires_grad) return;
    Tensor d = Tensor::Full(an->value.shape(), node.grad[0]);
    Accumulate(an, d);
  });
}

Variable MeanAll(const Variable& a) {
  return Scale(SumAll(a), 1.0f / static_cast<float>(a.numel()));
}

Variable RowSum(const Variable& a) {
  Tensor value = ops::RowSum(a.value());
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an](Node& node) {
    if (!an->requires_grad) return;
    Accumulate(an,
               ops::AddColBroadcast(Tensor(an->value.shape()), node.grad));
  });
}

Variable ColMean(const Variable& a) {
  Tensor value = ops::ColMean(a.value());
  auto an = a.node();
  int64_t rows = a.value().rows();
  return MakeNode({a}, std::move(value), [an, rows](Node& node) {
    if (!an->requires_grad) return;
    Tensor scaled = ops::Scale(node.grad, 1.0f / static_cast<float>(rows));
    Accumulate(an, ops::AddRowBroadcast(Tensor(an->value.shape()), scaled));
  });
}

Variable ConcatCols(const std::vector<Variable>& parts) {
  BASM_CHECK(!parts.empty());
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor value = ops::ConcatCols(values);

  std::vector<std::shared_ptr<Node>> nodes;
  std::vector<int64_t> widths;
  for (const Variable& p : parts) {
    nodes.push_back(p.node());
    widths.push_back(p.value().cols());
  }
  return MakeNode(parts, std::move(value), [nodes, widths](Node& node) {
    int64_t offset = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i]->requires_grad) {
        Accumulate(nodes[i], ops::SliceCols(node.grad, offset, widths[i]));
      }
      offset += widths[i];
    }
  });
}

Variable SliceCols(const Variable& a, int64_t start, int64_t len) {
  Tensor value = ops::SliceCols(a.value(), start, len);
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an, start, len](Node& node) {
    if (!an->requires_grad) return;
    Tensor d(an->value.shape());
    int64_t cols = an->value.cols();
    for (int64_t i = 0; i < d.rows(); ++i) {
      for (int64_t j = 0; j < len; ++j) {
        d[i * cols + start + j] = node.grad[i * len + j];
      }
    }
    Accumulate(an, d);
  });
}

Variable Reshape(const Variable& a, std::vector<int64_t> new_shape) {
  Tensor value = a.value().Reshape(std::move(new_shape));
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an](Node& node) {
    if (!an->requires_grad) return;
    Accumulate(an, node.grad.Reshape(an->value.shape()));
  });
}

Variable RowSoftmax(const Variable& a) {
  Tensor value = ops::RowSoftmax(a.value());
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an](Node& node) {
    if (!an->requires_grad) return;
    // da = y * (dy - rowsum(dy * y))
    const Tensor& y = node.value;
    Tensor prod = ops::Mul(node.grad, y);
    Tensor row_dots = ops::RowSum(prod);  // [m,1]
    Tensor d = node.grad;
    int64_t cols = y.cols();
    for (int64_t i = 0; i < y.rows(); ++i) {
      for (int64_t j = 0; j < cols; ++j) {
        int64_t idx = i * cols + j;
        d[idx] = y[idx] * (d[idx] - row_dots[i]);
      }
    }
    Accumulate(an, d);
  });
}

Variable RepeatInterleaveRows(const Variable& a, int64_t times) {
  BASM_CHECK_EQ(a.value().rank(), 2);
  BASM_CHECK_GT(times, 0);
  int64_t m = a.value().rows(), n = a.value().cols();
  Tensor value({m * times, n});
  for (int64_t i = 0; i < m; ++i) {
    const float* src = a.value().data() + i * n;
    for (int64_t t = 0; t < times; ++t) {
      std::copy(src, src + n, value.data() + (i * times + t) * n);
    }
  }
  auto an = a.node();
  return MakeNode({a}, std::move(value), [an, m, n, times](Node& node) {
    if (!an->requires_grad) return;
    Tensor d({m, n});
    for (int64_t i = 0; i < m; ++i) {
      float* dst = d.data() + i * n;
      for (int64_t t = 0; t < times; ++t) {
        const float* src = node.grad.data() + (i * times + t) * n;
        for (int64_t j = 0; j < n; ++j) dst[j] += src[j];
      }
    }
    Accumulate(an, d);
  });
}

Variable EmbeddingLookup(const Variable& table,
                         const std::vector<int32_t>& indices) {
  const Tensor& t = table.value();
  BASM_CHECK_EQ(t.rank(), 2);
  int64_t n = t.rows(), d = t.cols();
  Tensor value({static_cast<int64_t>(indices.size()), d});
  for (size_t i = 0; i < indices.size(); ++i) {
    int32_t idx = indices[i];
    BASM_CHECK_GE(idx, 0);
    BASM_CHECK_LT(idx, n);
    std::copy(t.data() + idx * d, t.data() + (idx + 1) * d,
              value.data() + static_cast<int64_t>(i) * d);
  }
  auto tn = table.node();
  return MakeNode({table}, std::move(value), [tn, indices, d](Node& node) {
    if (!tn->requires_grad) return;
    tn->EnsureGrad();
    for (size_t i = 0; i < indices.size(); ++i) {
      float* dst = tn->grad.data() + static_cast<int64_t>(indices[i]) * d;
      const float* src = node.grad.data() + static_cast<int64_t>(i) * d;
      for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
    }
  });
}

Variable BceWithLogits(const Variable& logits, const Tensor& labels) {
  const Tensor& z = logits.value();
  BASM_CHECK_EQ(z.numel(), labels.numel());
  BASM_CHECK_GT(z.numel(), 0);
  int64_t n = z.numel();
  // loss = mean( max(z,0) - z*y + log(1 + exp(-|z|)) )
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    float zi = z[i], yi = labels[i];
    acc += std::max(zi, 0.0f) - zi * yi +
           std::log1p(std::exp(-std::abs(zi)));
  }
  Tensor value({1}, {static_cast<float>(acc / static_cast<double>(n))});
  auto ln = logits.node();
  return MakeNode({logits}, std::move(value), [ln, labels, n](Node& node) {
    if (!ln->requires_grad) return;
    float scale = node.grad[0] / static_cast<float>(n);
    Tensor d(ln->value.shape());
    for (int64_t i = 0; i < n; ++i) {
      float p = 1.0f / (1.0f + std::exp(-ln->value[i]));
      d[i] = scale * (p - labels[i]);
    }
    Accumulate(ln, d);
  });
}

Variable MseLoss(const Variable& pred, const Tensor& target) {
  BASM_CHECK(pred.value().SameShape(target));
  int64_t n = pred.numel();
  double acc = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    double diff = pred.value()[i] - target[i];
    acc += diff * diff;
  }
  Tensor value({1}, {static_cast<float>(acc / static_cast<double>(n))});
  auto pn = pred.node();
  return MakeNode({pred}, std::move(value), [pn, target, n](Node& node) {
    if (!pn->requires_grad) return;
    float scale = 2.0f * node.grad[0] / static_cast<float>(n);
    Tensor d(pn->value.shape());
    for (int64_t i = 0; i < n; ++i) {
      d[i] = scale * (pn->value[i] - target[i]);
    }
    Accumulate(pn, d);
  });
}

}  // namespace basm::autograd
