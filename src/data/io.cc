#include "data/io.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>

namespace basm::data {

namespace {

constexpr char kMagic[8] = {'B', 'A', 'S', 'M', 'D', 'A', 'T', 'A'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

template <typename T>
bool Write(std::FILE* f, const T& v) {
  return std::fwrite(&v, sizeof(T), 1, f) == 1;
}

template <typename T>
bool Read(std::FILE* f, T* v) {
  return std::fread(v, sizeof(T), 1, f) == 1;
}

bool WriteString(std::FILE* f, const std::string& s) {
  uint32_t len = static_cast<uint32_t>(s.size());
  return Write(f, len) && std::fwrite(s.data(), 1, len, f) == len;
}

bool ReadString(std::FILE* f, std::string* s) {
  uint32_t len = 0;
  if (!Read(f, &len) || len > (1u << 20)) return false;
  s->resize(len);
  return std::fread(s->data(), 1, len, f) == len;
}

}  // namespace

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  if (std::fwrite(kMagic, 1, sizeof(kMagic), f.get()) != sizeof(kMagic) ||
      !Write(f.get(), kVersion) || !WriteString(f.get(), dataset.name) ||
      !Write(f.get(), dataset.test_day) ||
      !Write(f.get(), dataset.schema)) {
    return Status::Internal("write failed on dataset header");
  }
  uint64_t count = dataset.examples.size();
  if (!Write(f.get(), count)) return Status::Internal("write failed");
  for (const Example& e : dataset.examples) {
    // Fixed-size portion of the example, serialized field by field (the
    // struct holds a vector member, so a raw struct dump is not portable).
    const int32_t ints[] = {e.user_id,       e.gender,
                            e.age_bucket,    e.spend_bucket,
                            e.item_id,       e.category,
                            e.brand,         e.price_bucket,
                            e.position,      e.hour,
                            e.time_period,   e.city,
                            e.geohash,       e.weekday,
                            e.cross_spend_price, e.cross_age_category,
                            e.day,           e.request_id};
    const float floats[] = {e.user_ctr, e.user_orders, e.user_clicks,
                            e.item_ctr, e.item_pop,    e.shop_score,
                            e.label,    e.gt_prob};
    if (std::fwrite(ints, sizeof(int32_t), std::size(ints), f.get()) !=
            std::size(ints) ||
        std::fwrite(floats, sizeof(float), std::size(floats), f.get()) !=
            std::size(floats)) {
      return Status::Internal("write failed on example");
    }
    uint32_t seq_len = static_cast<uint32_t>(e.behaviors.size());
    if (!Write(f.get(), seq_len)) return Status::Internal("write failed");
    for (const BehaviorEvent& ev : e.behaviors) {
      if (std::fwrite(&ev, sizeof(BehaviorEvent), 1, f.get()) != 1) {
        return Status::Internal("write failed on behavior");
      }
    }
  }
  return Status::Ok();
}

StatusOr<Dataset> LoadDataset(const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) return Status::NotFound("dataset not found: " + path);
  char magic[8];
  uint32_t version = 0;
  if (std::fread(magic, 1, sizeof(magic), f.get()) != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a BASM dataset: " + path);
  }
  if (!Read(f.get(), &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported dataset version");
  }
  Dataset ds;
  if (!ReadString(f.get(), &ds.name) || !Read(f.get(), &ds.test_day) ||
      !Read(f.get(), &ds.schema)) {
    return Status::Internal("truncated dataset header");
  }
  uint64_t count = 0;
  if (!Read(f.get(), &count)) return Status::Internal("truncated dataset");
  ds.examples.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int32_t ints[18];
    float floats[8];
    if (std::fread(ints, sizeof(int32_t), std::size(ints), f.get()) !=
            std::size(ints) ||
        std::fread(floats, sizeof(float), std::size(floats), f.get()) !=
            std::size(floats)) {
      return Status::Internal("truncated example " + std::to_string(i));
    }
    Example e;
    int k = 0;
    e.user_id = ints[k++];
    e.gender = ints[k++];
    e.age_bucket = ints[k++];
    e.spend_bucket = ints[k++];
    e.item_id = ints[k++];
    e.category = ints[k++];
    e.brand = ints[k++];
    e.price_bucket = ints[k++];
    e.position = ints[k++];
    e.hour = ints[k++];
    e.time_period = ints[k++];
    e.city = ints[k++];
    e.geohash = ints[k++];
    e.weekday = ints[k++];
    e.cross_spend_price = ints[k++];
    e.cross_age_category = ints[k++];
    e.day = ints[k++];
    e.request_id = ints[k++];
    e.user_ctr = floats[0];
    e.user_orders = floats[1];
    e.user_clicks = floats[2];
    e.item_ctr = floats[3];
    e.item_pop = floats[4];
    e.shop_score = floats[5];
    e.label = floats[6];
    e.gt_prob = floats[7];
    uint32_t seq_len = 0;
    if (!Read(f.get(), &seq_len) || seq_len > (1u << 16)) {
      return Status::Internal("corrupt sequence length");
    }
    e.behaviors.resize(seq_len);
    for (uint32_t j = 0; j < seq_len; ++j) {
      if (std::fread(&e.behaviors[j], sizeof(BehaviorEvent), 1, f.get()) !=
          1) {
        return Status::Internal("truncated behavior sequence");
      }
    }
    ds.examples.push_back(std::move(e));
  }
  return ds;
}

Status ExportCsv(const Dataset& dataset, const std::string& path,
                 int64_t max_rows) {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  std::fputs(
      "user_id,gender,age_bucket,spend_bucket,user_ctr,user_orders,"
      "user_clicks,item_id,category,brand,price_bucket,position,item_ctr,"
      "item_pop,shop_score,hour,time_period,city,geohash,weekday,"
      "cross_spend_price,cross_age_category,seq_categories,label,day,"
      "request_id,gt_prob\n",
      f.get());
  int64_t rows = 0;
  for (const Example& e : dataset.examples) {
    if (max_rows >= 0 && rows >= max_rows) break;
    std::string seq;
    for (size_t j = 0; j < e.behaviors.size(); ++j) {
      if (j > 0) seq += ' ';
      seq += std::to_string(e.behaviors[j].category);
    }
    std::fprintf(
        f.get(),
        "%d,%d,%d,%d,%.4f,%.4f,%.4f,%d,%d,%d,%d,%d,%.4f,%.4f,%.4f,%d,%d,%d,"
        "%d,%d,%d,%d,%s,%.0f,%d,%d,%.4f\n",
        e.user_id, e.gender, e.age_bucket, e.spend_bucket, e.user_ctr,
        e.user_orders, e.user_clicks, e.item_id, e.category, e.brand,
        e.price_bucket, e.position, e.item_ctr, e.item_pop, e.shop_score,
        e.hour, e.time_period, e.city, e.geohash, e.weekday,
        e.cross_spend_price, e.cross_age_category, seq.c_str(), e.label,
        e.day, e.request_id, e.gt_prob);
    ++rows;
  }
  return Status::Ok();
}

}  // namespace basm::data
