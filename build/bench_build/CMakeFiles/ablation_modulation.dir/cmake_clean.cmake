file(REMOVE_RECURSE
  "../bench/ablation_modulation"
  "../bench/ablation_modulation.pdb"
  "CMakeFiles/ablation_modulation.dir/ablation_modulation.cc.o"
  "CMakeFiles/ablation_modulation.dir/ablation_modulation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_modulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
