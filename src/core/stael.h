#ifndef BASM_CORE_STAEL_H_
#define BASM_CORE_STAEL_H_

#include <memory>
#include <vector>

#include "nn/linear.h"
#include "nn/module.h"

namespace basm::core {

/// Spatiotemporal-Aware Embedding Layer (Section II-B). For each feature
/// field j, a gate attention computes
///     alpha_j = gate_scale * sigmoid(W_p [x_j ; x_c] + b_p)      (Eq. 6)
/// and the field embedding is rescaled h_j = alpha_j * x_j (Eq. 5). The
/// default gate_scale of 2 lets the gate strengthen (>1) or weaken (<1)
/// fields per spatiotemporal context; the last computed alphas are exposed
/// for the Fig 8/9 heatmaps.
class StAEL : public nn::Module {
 public:
  /// `field_dims[j]` is the width of field j; `ctx_dim` the width of the
  /// spatiotemporal context embedding x_c.
  StAEL(std::vector<int64_t> field_dims, int64_t ctx_dim, Rng& rng,
        float gate_scale = 2.0f);

  /// Rescales each field by its context-dependent gate. `fields.size()` must
  /// match the configured field count; `ctx` is [B, ctx_dim].
  std::vector<autograd::Variable> Forward(
      const std::vector<autograd::Variable>& fields,
      const autograd::Variable& ctx);

  /// Gate values of the most recent Forward: [B, num_fields].
  const Tensor& last_alphas() const { return last_alphas_; }

  int64_t num_fields() const {
    return static_cast<int64_t>(gates_.size());
  }
  float gate_scale() const { return gate_scale_; }

 private:
  float gate_scale_;
  std::vector<std::unique_ptr<nn::Linear>> gates_;
  Tensor last_alphas_;
};

}  // namespace basm::core

#endif  // BASM_CORE_STAEL_H_
