#include "tools/analyze/analyze.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "tools/analyze/include_graph.h"
#include "tools/analyze/scanner.h"

namespace basm::analyze {
namespace {

#ifndef BASM_SOURCE_DIR
#error "BASM_SOURCE_DIR must point at the repository root"
#endif

std::string Fixture(const std::string& name) {
  return std::string(BASM_SOURCE_DIR) + "/tests/lint_fixtures/analyze/" + name;
}

AnalyzeReport RunFixture(const std::string& fixture) {
  return Analyze({Fixture(fixture)}, AnalyzeOptions{});
}

std::string Dump(const AnalyzeReport& report) {
  std::string out;
  for (const lint::Finding& f : report.findings) {
    out += f.file + ":" + std::to_string(f.line) + " [" + f.rule + "] " +
           f.message + "\n";
  }
  return out;
}

// --- scanner ---------------------------------------------------------------

TEST(AnalyzeScannerTest, ModuleOfTakesComponentAfterLastSrc) {
  EXPECT_EQ(ModuleOf("src/data/loader.cc"), "data");
  EXPECT_EQ(ModuleOf("/root/repo/src/net/wire.h"), "net");
  EXPECT_EQ(ModuleOf("tests/lint_fixtures/analyze/src/data/x.h"), "data");
  EXPECT_EQ(ModuleOf("tools/lint.cc"), "");
}

TEST(AnalyzeScannerTest, TracksLocksHeldAcrossCalls) {
  FileScan scan = ScanContent("src/common/x.cc",
                              "class C {\n"
                              " public:\n"
                              "  void F() {\n"
                              "    Before();\n"
                              "    basm::MutexLock lock(&mu_);\n"
                              "    Under(1);\n"
                              "  }\n"
                              " private:\n"
                              "  basm::Mutex mu_;\n"
                              "};\n");
  ASSERT_EQ(scan.functions.size(), 1u);
  const FunctionScan& fn = scan.functions[0];
  EXPECT_EQ(fn.cls, "C");
  ASSERT_EQ(fn.calls.size(), 2u);
  EXPECT_EQ(fn.calls[0].name, "Before");
  EXPECT_TRUE(fn.calls[0].locks_held.empty());
  EXPECT_EQ(fn.calls[1].name, "Under");
  ASSERT_EQ(fn.calls[1].locks_held.size(), 1u);
  EXPECT_EQ(fn.calls[1].locks_held[0], "mu_");
}

TEST(AnalyzeScannerTest, LambdaBodiesDoNotInheritEnclosingLocks) {
  FileScan scan = ScanContent("src/common/x.cc",
                              "class C {\n"
                              " public:\n"
                              "  void F() {\n"
                              "    basm::MutexLock lock(&mu_);\n"
                              "    pool_.Submit([this] {\n"
                              "      Deferred();\n"
                              "    });\n"
                              "  }\n"
                              " private:\n"
                              "  basm::Mutex mu_;\n"
                              "};\n");
  ASSERT_EQ(scan.functions.size(), 1u);
  bool saw_deferred = false;
  for (const Call& call : scan.functions[0].calls) {
    if (call.name != "Deferred") continue;
    saw_deferred = true;
    EXPECT_TRUE(call.locks_held.empty())
        << "lambda body call must not run under the enclosing lock scope";
  }
  EXPECT_TRUE(saw_deferred);
}

// --- include-layering ------------------------------------------------------

TEST(AnalyzeIncludeTest, AuthoritativeDagIsAcyclic) {
  EXPECT_FALSE(ModuleTopoOrder().empty());
}

TEST(AnalyzeIncludeTest, UpwardEdgeIsFlagged) {
  AnalyzeReport report = RunFixture("src/data/upward_include.h");
  ASSERT_EQ(report.findings.size(), 1u) << Dump(report);
  EXPECT_EQ(report.findings[0].rule, "include-layering");
  EXPECT_EQ(report.findings[0].line, 4);
  EXPECT_NE(report.findings[0].message.find("data -> runtime"),
            std::string::npos);
}

TEST(AnalyzeIncludeTest, InlineAllowSuppresses) {
  AnalyzeReport report = RunFixture("src/data/upward_include_allowed.h");
  EXPECT_TRUE(report.findings.empty()) << Dump(report);
  EXPECT_EQ(report.suppressed_inline, 1);
}

// --- lock-order ------------------------------------------------------------

TEST(AnalyzeLockOrderTest, OpposedNestingYieldsEdgesAndCycle) {
  AnalyzeReport report = RunFixture("lock_order_cycle.cc");
  ASSERT_EQ(report.findings.size(), 3u) << Dump(report);
  for (const lint::Finding& f : report.findings) {
    EXPECT_EQ(f.rule, "lock-order");
  }
  int cycles = 0;
  for (const lint::Finding& f : report.findings) {
    if (f.message.find("cycle") != std::string::npos) ++cycles;
  }
  EXPECT_EQ(cycles, 1) << Dump(report);
  // The witness lines are the inner acquisitions.
  EXPECT_EQ(report.findings[0].line, 12);
  EXPECT_EQ(report.findings[2].line, 16);
}

TEST(AnalyzeLockOrderTest, InlineAllowSuppressesUndocumentedEdge) {
  AnalyzeReport report = RunFixture("lock_order_allowed.cc");
  EXPECT_TRUE(report.findings.empty()) << Dump(report);
  EXPECT_EQ(report.suppressed_inline, 1);
}

// --- blocking-under-lock ---------------------------------------------------

TEST(AnalyzeBlockingTest, FsyncUnderMutexIsFlagged) {
  AnalyzeReport report = RunFixture("blocking_bad.cc");
  ASSERT_EQ(report.findings.size(), 1u) << Dump(report);
  EXPECT_EQ(report.findings[0].rule, "blocking-under-lock");
  EXPECT_EQ(report.findings[0].line, 10);
  EXPECT_NE(report.findings[0].message.find("fsync"), std::string::npos);
}

TEST(AnalyzeBlockingTest, InlineAllowSuppresses) {
  AnalyzeReport report = RunFixture("blocking_allowed.cc");
  EXPECT_TRUE(report.findings.empty()) << Dump(report);
  EXPECT_EQ(report.suppressed_inline, 1);
}

// --- blocking-in-event-loop ------------------------------------------------

TEST(AnalyzeIoLoopTest, BlockingWrapperAndSleepInLoopScopeAreFlagged) {
  AnalyzeReport report = RunFixture("io_loop_bad.cc");
  ASSERT_EQ(report.findings.size(), 2u) << Dump(report);
  EXPECT_EQ(report.findings[0].rule, "blocking-in-event-loop");
  EXPECT_EQ(report.findings[0].line, 11);
  EXPECT_NE(report.findings[0].message.find("ReadAll"), std::string::npos);
  EXPECT_EQ(report.findings[1].rule, "blocking-in-event-loop");
  EXPECT_EQ(report.findings[1].line, 15);
  EXPECT_NE(report.findings[1].message.find("usleep"), std::string::npos);
  // Stop()'s join is lifecycle-exempt: no third finding.
  EXPECT_EQ(Dump(report).find("join"), std::string::npos) << Dump(report);
}

TEST(AnalyzeIoLoopTest, InlineAllowSuppresses) {
  AnalyzeReport report = RunFixture("io_loop_allowed.cc");
  EXPECT_TRUE(report.findings.empty()) << Dump(report);
  EXPECT_EQ(report.suppressed_inline, 1);
}

// --- hot-path-alloc --------------------------------------------------------

TEST(AnalyzeHotPathTest, UnreservedGrowthIsFlagged) {
  AnalyzeReport report = RunFixture("hot_path_bad.cc");
  ASSERT_EQ(report.findings.size(), 1u) << Dump(report);
  EXPECT_EQ(report.findings[0].rule, "hot-path-alloc");
  EXPECT_EQ(report.findings[0].line, 11);
  EXPECT_NE(report.findings[0].message.find("push_back"), std::string::npos);
}

TEST(AnalyzeHotPathTest, ReserveAndInlineAllowSuppress) {
  AnalyzeReport report = RunFixture("hot_path_allowed.cc");
  EXPECT_TRUE(report.findings.empty()) << Dump(report);
  EXPECT_EQ(report.suppressed_inline, 1);
}

// --- report plumbing -------------------------------------------------------

TEST(AnalyzeReportTest, PassCatalogHasFivePasses) {
  std::vector<PassInfo> passes = Passes();
  ASSERT_EQ(passes.size(), 5u);
  EXPECT_EQ(passes[0].id, "include-layering");
  EXPECT_EQ(passes[1].id, "lock-order");
  EXPECT_EQ(passes[2].id, "blocking-under-lock");
  EXPECT_EQ(passes[3].id, "blocking-in-event-loop");
  EXPECT_EQ(passes[4].id, "hot-path-alloc");
}

TEST(AnalyzeReportTest, PassSelectionRestrictsRuns) {
  AnalyzeOptions options;
  options.passes = {"hot-path-alloc"};
  AnalyzeReport report = Analyze({Fixture("blocking_bad.cc")}, options);
  EXPECT_TRUE(report.findings.empty()) << Dump(report);
}

TEST(AnalyzeReportTest, JsonCarriesCountsAndFindings) {
  AnalyzeReport report = RunFixture("blocking_bad.cc");
  std::string json = ReportJson(report);
  EXPECT_NE(json.find("\"files_scanned\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"blocking-under-lock\": 1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"line\": 10"), std::string::npos) << json;
}

TEST(AnalyzeReportTest, BaselineEntriesSuppress) {
  AnalyzeOptions options;
  options.baseline.push_back(
      lint::SuppressEntry{"blocking-under-lock", "blocking_bad.cc",
                          "fixture-only baseline entry"});
  AnalyzeReport report = Analyze({Fixture("blocking_bad.cc")}, options);
  EXPECT_TRUE(report.findings.empty()) << Dump(report);
  EXPECT_EQ(report.suppressed_baseline, 1);
}

// --- the gate: the real tree must be clean ---------------------------------

TEST(AnalyzeTreeGateTest, SrcTreeIsCleanUnderAllPasses) {
  AnalyzeOptions options;
  options.baseline = DefaultBaseline();
  AnalyzeReport report =
      Analyze({std::string(BASM_SOURCE_DIR) + "/src"}, options);
  EXPECT_GT(report.files_scanned, 100);
  EXPECT_TRUE(report.findings.empty())
      << "basm_analyze must stay clean over src/:\n"
      << Dump(report);
}

}  // namespace
}  // namespace basm::analyze
