// Fixture: the same wrapper call as io_loop_bad.cc, justified by an inline
// allow (e.g. a descriptor known to be an EFD_NONBLOCK eventfd) — zero
// surviving findings.
#include "net/event_loop.h"

namespace fixture {

class EventLoop {
 public:
  void HandleReadable() {
    conn_.ReadAll(buf_, sizeof(buf_));  // basm-analyze: allow(blocking-in-event-loop)
  }

 private:
  Conn conn_;
  char buf_[16];
};

}  // namespace fixture
