#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "autograd/variable.h"
#include "common/blocking_queue.h"
#include "common/thread_pool.h"
#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "gtest/gtest.h"
#include "core/model_zoo.h"
#include "runtime/latency_recorder.h"
#include "runtime/load_generator.h"
#include "runtime/micro_batcher.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_server.h"
#include "serving/parallel_score.h"
#include "serving/pipeline.h"
#include "serving/recall.h"
#include "tensor/arena.h"

namespace basm::runtime {
namespace {

// ---------------------------------------------------------------- queue --

TEST(BlockingQueueTest, FifoPushPop) {
  BlockingQueue<int> q(8);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueueTest, RejectsOnFull) {
  BlockingQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: backpressure
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));  // capacity freed
}

TEST(BlockingQueueTest, RejectedMoveOnlyItemSurvives) {
  BlockingQueue<std::unique_ptr<int>> q(1);
  EXPECT_TRUE(q.TryPush(std::make_unique<int>(1)));
  auto item = std::make_unique<int>(2);
  EXPECT_FALSE(q.TryPush(std::move(item)));
  // A rejected push must not consume the item.
  ASSERT_NE(item, nullptr);
  EXPECT_EQ(*item, 2);
}

TEST(BlockingQueueTest, BlockingPopWakesOnPush) {
  BlockingQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.TryPush(42);
  });
  auto item = q.Pop();  // blocks until the producer delivers
  producer.join();
  EXPECT_EQ(item.value(), 42);
}

TEST(BlockingQueueTest, ShutdownDrainsThenEnds) {
  BlockingQueue<int> q(8);
  q.TryPush(1);
  q.TryPush(2);
  q.Shutdown();
  EXPECT_FALSE(q.TryPush(3));  // no pushes after shutdown
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_FALSE(q.Pop().has_value());  // drained: pop no longer blocks
}

TEST(BlockingQueueTest, ShutdownWakesBlockedPop) {
  BlockingQueue<int> q(4);
  std::thread waiter([&] { EXPECT_FALSE(q.Pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Shutdown();
  waiter.join();
}

TEST(BlockingQueueTest, PopForTimesOut) {
  BlockingQueue<int> q(4);
  auto item = q.PopFor(std::chrono::milliseconds(5));
  EXPECT_FALSE(item.has_value());
}

// ----------------------------------------------------------------- pool --

TEST(ThreadPoolTest, RunsAllTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(pool.Submit([&done] { done.fetch_add(1); }));
    }
  }  // destructor drains and joins
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, SurvivesThrowingTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([] { throw std::runtime_error("task boom"); });
      pool.Submit([&done] { done.fetch_add(1); });
    }
  }
  // Every non-throwing task still ran: workers outlive task exceptions.
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPoolTest, RejectsAfterShutdown) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

// -------------------------------------------------------------- batcher --

TEST(MicroBatcherTest, FlushesOnSize) {
  BlockingQueue<int> q(32);
  for (int i = 0; i < 10; ++i) q.TryPush(std::move(i));
  // Generous wait: the size bound must close the batch, not the clock.
  MicroBatcher<int> batcher(&q, BatchPolicy{4, 1000000});
  EXPECT_EQ(batcher.NextBatch().size(), 4u);
  EXPECT_EQ(batcher.NextBatch().size(), 4u);
}

TEST(MicroBatcherTest, FlushesOnDeadline) {
  BlockingQueue<int> q(32);
  q.TryPush(1);
  q.TryPush(2);
  MicroBatcher<int> batcher(&q, BatchPolicy{8, 2000});
  auto start = std::chrono::steady_clock::now();
  auto batch = batcher.NextBatch();
  auto waited = std::chrono::steady_clock::now() - start;
  // Partial batch released at the deadline instead of waiting for 8 items.
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_GE(waited, std::chrono::microseconds(1000));
}

TEST(MicroBatcherTest, ZeroWaitStillSweepsReadyItems) {
  BlockingQueue<int> q(32);
  for (int i = 0; i < 3; ++i) q.TryPush(std::move(i));
  MicroBatcher<int> batcher(&q, BatchPolicy{8, 0});
  EXPECT_EQ(batcher.NextBatch().size(), 3u);
}

TEST(MicroBatcherTest, EffectiveWaitRampsWithQueueDepth) {
  BatchPolicy fixed{4, 200, 0, 0};
  EXPECT_EQ(fixed.EffectiveWaitMicros(0), 200);
  EXPECT_EQ(fixed.EffectiveWaitMicros(100), 200);  // disabled: never widens

  BatchPolicy adaptive{4, 200, 8, 1000};
  EXPECT_EQ(adaptive.EffectiveWaitMicros(0), 200);   // idle: tight window
  EXPECT_EQ(adaptive.EffectiveWaitMicros(1), 300);   // first step of the ramp
  EXPECT_EQ(adaptive.EffectiveWaitMicros(4), 600);   // halfway up the ramp
  EXPECT_EQ(adaptive.EffectiveWaitMicros(7), 900);   // just below saturation
  EXPECT_EQ(adaptive.EffectiveWaitMicros(8), 1000);  // exactly at pressure depth
  EXPECT_EQ(adaptive.EffectiveWaitMicros(64), 1000);  // clamped
}

TEST(MicroBatcherTest, AdaptiveWidensBatchesUnderPressure) {
  // Nine queued items: the first pop opens the batch with a backlog of 8,
  // which meets pressure_depth, so the zero idle-wait widens enough to
  // also collect the stragglers a producer delivers shortly after.
  BlockingQueue<int> q(64);
  for (int i = 0; i < 9; ++i) q.TryPush(std::move(i));
  MicroBatcher<int> batcher(&q, BatchPolicy{16, 0, 8, 5000000});
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    for (int i = 9; i < 16; ++i) q.TryPush(std::move(i));
  });
  std::vector<int> batch = batcher.NextBatch();
  producer.join();
  EXPECT_EQ(batch.size(), 16u);  // closed by size, not by the widened wait
}

TEST(MicroBatcherTest, AdaptiveKeepsIdleLatencyUnchanged) {
  // Same adaptive policy, but an idle queue: depth 0 keeps the base
  // zero-wait window, so the single request is served immediately instead
  // of stalling for the pressured 5s window.
  BlockingQueue<int> q(64);
  q.TryPush(1);
  MicroBatcher<int> batcher(&q, BatchPolicy{16, 0, 8, 5000000});
  auto start = std::chrono::steady_clock::now();
  std::vector<int> batch = batcher.NextBatch();
  auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(batch.size(), 1u);
  EXPECT_LT(waited, std::chrono::seconds(1));
}

TEST(MicroBatcherTest, EmptyAfterShutdownDrain) {
  BlockingQueue<int> q(32);
  q.TryPush(7);
  q.Shutdown();
  MicroBatcher<int> batcher(&q, BatchPolicy{4, 1000});
  EXPECT_EQ(batcher.NextBatch().size(), 1u);  // drains the backlog
  EXPECT_TRUE(batcher.NextBatch().empty());   // then signals exit
}

// ------------------------------------------------------------- recorder --

TEST(LatencyRecorderTest, BucketsRoundTripSmallValues) {
  // Values below 8 land on exact buckets, so percentiles are exact there.
  for (int64_t v = 0; v < 8; ++v) {
    EXPECT_EQ(LatencyRecorder::BucketValue(LatencyRecorder::BucketOf(v)), v);
  }
  // Larger values stay within the quarter-octave resolution.
  for (int64_t v : {100, 1000, 50000, 2000000}) {
    double mid = LatencyRecorder::BucketValue(LatencyRecorder::BucketOf(v));
    EXPECT_NEAR(mid, static_cast<double>(v), 0.15 * static_cast<double>(v));
  }
}

TEST(LatencyRecorderTest, CountsAndPercentiles) {
  LatencyRecorder rec;
  for (int i = 0; i < 95; ++i) rec.RecordLatency(100);
  for (int i = 0; i < 5; ++i) rec.RecordLatency(10000);
  rec.RecordReject();
  rec.RecordTimeout();
  rec.RecordTimeout();
  rec.RecordBatchSize(4);
  rec.RecordBatchSize(4);
  rec.RecordBatchSize(2);

  LatencySnapshot snap = rec.Snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_EQ(snap.rejects, 1);
  EXPECT_EQ(snap.timeouts, 2);
  EXPECT_NEAR(snap.mean_micros, 595.0, 1.0);
  EXPECT_NEAR(snap.p50_micros, 100.0, 15.0);
  EXPECT_NEAR(snap.p95_micros, 100.0, 15.0);
  EXPECT_NEAR(snap.p99_micros, 10000.0, 1500.0);
  EXPECT_NEAR(snap.mean_batch_size, (4 + 4 + 2) / 3.0, 1e-9);
  ASSERT_EQ(snap.batch_histogram.size(), 2u);
  EXPECT_EQ(snap.batch_histogram[0], (std::pair<int64_t, int64_t>{2, 1}));
  EXPECT_EQ(snap.batch_histogram[1], (std::pair<int64_t, int64_t>{4, 2}));
}

TEST(LatencyRecorderTest, IntervalSnapshotsAreDisjointWindows) {
  LatencyRecorder rec;
  for (int i = 0; i < 10; ++i) rec.RecordLatency(100);
  LatencySnapshot w1 = rec.IntervalSnapshot();
  EXPECT_EQ(w1.count, 10);
  EXPECT_NEAR(w1.mean_micros, 100.0, 1e-9);

  for (int i = 0; i < 5; ++i) rec.RecordLatency(400);
  rec.RecordReject();
  LatencySnapshot w2 = rec.IntervalSnapshot();
  EXPECT_EQ(w2.count, 5);  // only this window's requests
  EXPECT_EQ(w2.rejects, 1);
  EXPECT_NEAR(w2.mean_micros, 400.0, 1e-9);
  EXPECT_NEAR(w2.p50_micros, 400.0, 60.0);

  // The cumulative view is untouched by interval reads.
  LatencySnapshot total = rec.Snapshot();
  EXPECT_EQ(total.count, 15);
  EXPECT_EQ(total.rejects, 1);

  LatencySnapshot w3 = rec.IntervalSnapshot();
  EXPECT_EQ(w3.count, 0);  // nothing recorded since w2
}

TEST(LatencyRecorderTest, JsonExportCarriesTheWindow) {
  LatencyRecorder rec;
  rec.RecordLatency(100);
  rec.RecordLatency(100);
  rec.RecordLatency(100);
  rec.RecordBatchSize(3);
  std::string json = rec.Snapshot().ToJson();
  EXPECT_NE(json.find("\"count\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"qps\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p99_micros\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean_batch_size\":3.00"), std::string::npos) << json;
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(LatencyRecorderTest, ConcurrentRecordingLosesNothing) {
  LatencyRecorder rec;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&rec] {
      for (int i = 0; i < 1000; ++i) rec.RecordLatency(50);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rec.Snapshot().count, 8000);
}

// ------------------------------------------------------------ inference --

TEST(InferenceModeTest, ScoresBitIdenticalAndGraphFree) {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 60;
  c.num_items = 50;
  c.num_cities = 2;
  c.seq_len = 4;
  data::World world(c);
  auto model = core::CreateModel(core::ModelKind::kBasm, world.schema(), 5);
  model->SetTraining(false);

  feature_store::FeatureServer fs(world, 4, 1);
  auto uf = fs.GetUserFeatures(0);
  Rng rng(3);
  std::vector<data::Example> examples;
  for (int32_t item : world.CityItems(world.user(0).city)) {
    examples.push_back(world.MakeExample(0, item, 12, 2, 4,
                                         world.user(0).city, 0, 0,
                                         uf.behaviors, rng));
    if (examples.size() == 8) break;
  }
  std::vector<const data::Example*> ptrs;
  for (const auto& e : examples) ptrs.push_back(&e);
  data::Batch batch = data::MakeBatch(ptrs, world.schema());

  autograd::Variable with_graph = model->ForwardLogits(batch);
  EXPECT_GT(autograd::GraphNodeCount(with_graph), 1);

  autograd::NoGradGuard guard;
  EXPECT_FALSE(autograd::GradEnabled());
  autograd::Variable detached = model->ForwardLogits(batch);
  // Inference mode must not change a single bit of the forward values...
  ASSERT_EQ(detached.numel(), with_graph.numel());
  for (int64_t i = 0; i < detached.numel(); ++i) {
    EXPECT_EQ(detached.value()[i], with_graph.value()[i]);
  }
  // ...while building no graph behind the root node.
  EXPECT_EQ(autograd::GraphNodeCount(detached), 1);
  EXPECT_FALSE(detached.requires_grad());
}

// --------------------------------------------------------------- engine --

data::SynthConfig EngineWorldConfig() {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 200;
  c.num_items = 180;
  c.num_cities = 4;
  c.seq_len = 6;
  return c;
}

class ServingEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    world_ = new data::World(EngineWorldConfig());
    features_ = new feature_store::FeatureServer(*world_, 6, 11);
    store_ = new feature_store::FeatureStore(features_);
    recall_ = new serving::RecallIndex(*world_);
    model_ = core::CreateModel(core::ModelKind::kDin, world_->schema(), 13)
                 .release();
    model_->SetTraining(false);
    pipeline_ = new serving::Pipeline(*world_, store_, recall_, model_,
                                      /*recall_size=*/16, /*expose_k=*/6);
  }
  static void TearDownTestSuite() {
    delete pipeline_;
    delete model_;
    delete recall_;
    delete store_;
    delete features_;
    delete world_;
  }

  static data::World* world_;
  static feature_store::FeatureServer* features_;
  static feature_store::FeatureStore* store_;
  static serving::RecallIndex* recall_;
  static models::CtrModel* model_;
  static serving::Pipeline* pipeline_;
};

data::World* ServingEngineTest::world_ = nullptr;
feature_store::FeatureServer* ServingEngineTest::features_ = nullptr;
feature_store::FeatureStore* ServingEngineTest::store_ = nullptr;
serving::RecallIndex* ServingEngineTest::recall_ = nullptr;
models::CtrModel* ServingEngineTest::model_ = nullptr;
serving::Pipeline* ServingEngineTest::pipeline_ = nullptr;

TEST_F(ServingEngineTest, SlatesBitIdenticalToSerialPipeline) {
  // The concurrency + micro-batching acceptance gate: many requests, scored
  // through 4 workers with request coalescing, must reproduce the serial
  // pipeline's slates exactly — item ids, positions, and float-equal scores.
  EngineConfig config;
  config.num_workers = 4;
  config.max_batch_requests = 4;
  config.max_wait_micros = 500;
  ServingEngine engine(pipeline_, config);

  const int kRequests = 32;
  Rng rng(77);
  std::vector<serving::Request> requests(kRequests);
  std::vector<std::vector<int32_t>> candidates(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    requests[i].user_id = static_cast<int32_t>(rng.UniformInt(0, 199));
    requests[i].hour = static_cast<int32_t>(rng.UniformInt(0, 23));
    requests[i].weekday = i % 7;
    requests[i].city = world_->user(requests[i].user_id).city;
    requests[i].request_id = i;
    candidates[i] = recall_->RecallByCity(requests[i].city, 16, rng);
  }

  std::vector<std::future<SlateResult>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    // Generous deadline: under TSan the backlog drains ~10x slower, and this
    // test is about score identity, not deadline shedding.
    futures.push_back(
        engine.Submit(requests[i], candidates[i], /*deadline_micros=*/
                      60 * 1000 * 1000));
  }
  for (int i = 0; i < kRequests; ++i) {
    SlateResult result = futures[i].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    auto serial = pipeline_->RankCandidates(requests[i], candidates[i]);
    ASSERT_EQ(result.slate.size(), serial.size());
    for (size_t p = 0; p < serial.size(); ++p) {
      EXPECT_EQ(result.slate[p].item_id, serial[p].item_id);
      EXPECT_EQ(result.slate[p].score, serial[p].score);  // bit-identical
      EXPECT_EQ(result.slate[p].position, serial[p].position);
    }
  }
  LatencySnapshot snap = engine.Stats();
  EXPECT_EQ(snap.count, kRequests);
  EXPECT_EQ(snap.timeouts, 0);
}

TEST_F(ServingEngineTest, EngineRecallMatchesForkedStream) {
  // Submitting without candidates runs recall inside the engine from a
  // deterministic per-request stream: resubmitting yields the same slate.
  EngineConfig config;
  config.num_workers = 2;
  ServingEngine engine(pipeline_, config);

  serving::Request req;
  req.user_id = 7;
  req.hour = 12;
  req.city = world_->user(7).city;
  req.request_id = 123;

  SlateResult first = engine.Submit(req).get();
  SlateResult second = engine.Submit(req).get();
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  ASSERT_EQ(first.slate.size(), second.slate.size());
  for (size_t p = 0; p < first.slate.size(); ++p) {
    EXPECT_EQ(first.slate[p].item_id, second.slate[p].item_id);
    EXPECT_EQ(first.slate[p].score, second.slate[p].score);
  }
}

TEST_F(ServingEngineTest, ExpiredDeadlineIsShedNotScored) {
  EngineConfig config;
  config.num_workers = 1;
  ServingEngine engine(pipeline_, config);

  serving::Request req;
  req.user_id = 3;
  req.city = world_->user(3).city;
  // Deadline of zero has always passed by the time a worker looks at it.
  SlateResult result = engine.Submit(req, {}, /*deadline_micros=*/0).get();
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(result.slate.empty());
  EXPECT_EQ(engine.Stats().timeouts, 1);
}

TEST_F(ServingEngineTest, SubmitAfterShutdownIsCancelled) {
  EngineConfig config;
  config.num_workers = 1;
  ServingEngine engine(pipeline_, config);
  engine.Shutdown();

  serving::Request req;
  req.user_id = 1;
  req.city = world_->user(1).city;
  SlateResult result = engine.Submit(req).get();
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);
}

TEST_F(ServingEngineTest, TinyQueueRejectsBurstOverload) {
  // A 1-slot queue with one worker cannot absorb a 64-request burst fired
  // with no think time; the surplus must resolve as UNAVAILABLE rejects
  // rather than queueing without bound. Every future resolves either way.
  EngineConfig config;
  config.num_workers = 1;
  config.queue_capacity = 1;
  config.max_batch_requests = 2;
  config.max_wait_micros = 0;
  ServingEngine engine(pipeline_, config);

  serving::Request req;
  req.user_id = 2;
  req.city = world_->user(2).city;
  std::vector<std::future<SlateResult>> futures;
  for (int i = 0; i < 64; ++i) futures.push_back(engine.Submit(req));

  int64_t ok = 0, rejected = 0;
  for (auto& f : futures) {
    SlateResult result = f.get();
    if (result.status.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(result.status.code(), StatusCode::kUnavailable);
      ++rejected;
    }
  }
  EXPECT_EQ(ok + rejected, 64);
  EXPECT_GT(ok, 0);
  EXPECT_GT(rejected, 0);  // scoring is far slower than submission
  EXPECT_EQ(engine.Stats().rejects, rejected);
}

TEST_F(ServingEngineTest, LoadGeneratorClosedLoopCompletes) {
  EngineConfig config;
  config.num_workers = 2;
  config.max_batch_requests = 4;
  ServingEngine engine(pipeline_, config);

  LoadConfig load;
  load.num_requests = 60;
  load.concurrency = 8;
  LoadGenerator generator(*world_, load);
  LoadReport report = generator.Run(engine);
  // Closed loop with concurrency below queue capacity: nothing rejected.
  EXPECT_EQ(report.ok, 60);
  EXPECT_EQ(report.rejected, 0);
  EXPECT_EQ(report.timed_out, 0);

  LatencySnapshot snap = engine.Stats();
  EXPECT_EQ(snap.count, 60);
  EXPECT_GE(snap.mean_batch_size, 1.0);
  EXPECT_GT(snap.p99_micros, 0.0);
}

// ---------------------------------------------- intra-batch parallelism --

/// Reuses the ServingEngineTest world/model/pipeline (gtest re-runs the
/// static SetUpTestSuite for the derived suite). These are the TSan-covered
/// determinism gates for intra-batch parallel scoring.
class ParallelScoringTest : public ServingEngineTest {
 protected:
  /// A slate of every item in user 0's city, large enough to shard.
  static std::vector<int32_t> BigSlate() {
    return world_->CityItems(world_->user(0).city);
  }
  static serving::Request MakeRequest() {
    serving::Request req;
    req.user_id = 0;
    req.hour = 12;
    req.weekday = 2;
    req.city = world_->user(0).city;
    req.request_id = 900;
    return req;
  }
};

TEST_F(ParallelScoringTest, ShardedScoresBitIdenticalToSerial) {
  const std::vector<int32_t> candidates = BigSlate();
  ASSERT_GE(candidates.size(), 16u);
  std::vector<data::Example> examples =
      pipeline_->BuildExamples(MakeRequest(), candidates);

  autograd::NoGradGuard guard;
  const std::vector<float> serial = serving::ScoreExamples(
      model_, world_->schema(), examples, /*pool=*/nullptr,
      /*min_rows_per_shard=*/8);
  ASSERT_EQ(serial.size(), examples.size());

  ThreadPool pool(3);
  // Several shard granularities, including one per pool thread and shards
  // far smaller than the batch: all must reproduce the serial bits.
  for (int64_t min_shard : {1, 4, 8, 16}) {
    std::vector<float> sharded = serving::ScoreExamples(
        model_, world_->schema(), examples, &pool, min_shard);
    ASSERT_EQ(sharded.size(), serial.size()) << "min_shard=" << min_shard;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(sharded[i], serial[i])
          << "row " << i << " min_shard=" << min_shard;
    }
  }
  pool.Shutdown();
}

TEST_F(ParallelScoringTest, EngineParallelSlatesBitIdenticalToSerial) {
  // Same acceptance gate as SlatesBitIdenticalToSerialPipeline, but with
  // intra-batch sharding on: 4-request micro-batches of 16 candidates each
  // cross the 2*min_rows_per_shard=16 threshold and split across the
  // scoring pool.
  EngineConfig config;
  config.num_workers = 2;
  config.max_batch_requests = 4;
  config.max_wait_micros = 500;
  config.scoring_threads = 2;
  config.min_rows_per_shard = 8;
  ServingEngine engine(pipeline_, config);

  const int kRequests = 24;
  Rng rng(78);
  std::vector<serving::Request> requests(kRequests);
  std::vector<std::vector<int32_t>> candidates(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    requests[i].user_id = static_cast<int32_t>(rng.UniformInt(0, 199));
    requests[i].hour = static_cast<int32_t>(rng.UniformInt(0, 23));
    requests[i].weekday = i % 7;
    requests[i].city = world_->user(requests[i].user_id).city;
    requests[i].request_id = i;
    candidates[i] = recall_->RecallByCity(requests[i].city, 16, rng);
  }

  std::vector<std::future<SlateResult>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    futures.push_back(engine.Submit(requests[i], candidates[i],
                                    /*deadline_micros=*/60 * 1000 * 1000));
  }
  for (int i = 0; i < kRequests; ++i) {
    SlateResult result = futures[i].get();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    auto serial = pipeline_->RankCandidates(requests[i], candidates[i]);
    ASSERT_EQ(result.slate.size(), serial.size());
    for (size_t p = 0; p < serial.size(); ++p) {
      EXPECT_EQ(result.slate[p].item_id, serial[p].item_id);
      EXPECT_EQ(result.slate[p].score, serial[p].score);  // bit-identical
      EXPECT_EQ(result.slate[p].position, serial[p].position);
    }
  }
}

TEST_F(ParallelScoringTest, PipelineParallelRankMatchesSerial) {
  // A parallel-armed pipeline must rank exactly like the serial one.
  ThreadPool pool(2);
  serving::Pipeline parallel_pipeline(*world_, store_, recall_, model_,
                                      /*recall_size=*/16, /*expose_k=*/6);
  parallel_pipeline.EnableParallelScoring(&pool, /*min_rows_per_shard=*/8);

  const std::vector<int32_t> candidates = BigSlate();
  const serving::Request req = MakeRequest();
  auto serial = pipeline_->RankCandidates(req, candidates);
  auto parallel = parallel_pipeline.RankCandidates(req, candidates);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t p = 0; p < serial.size(); ++p) {
    EXPECT_EQ(parallel[p].item_id, serial[p].item_id);
    EXPECT_EQ(parallel[p].score, serial[p].score);
    EXPECT_EQ(parallel[p].position, serial[p].position);
  }
  pool.Shutdown();
}

TEST_F(ParallelScoringTest, EngineScoringReusesArenaBlocks) {
  // Steady-state serving must stop allocating: after a warmup batch seeds
  // each worker's freelist, later identical batches should be served almost
  // entirely from recycled blocks.
  EngineConfig config;
  config.num_workers = 1;
  config.max_batch_requests = 1;
  ServingEngine engine(pipeline_, config);

  serving::Request req = MakeRequest();
  std::vector<int32_t> candidates = BigSlate();
  (void)engine.Submit(req, candidates, /*deadline_micros=*/60 * 1000 * 1000)
      .get();  // warmup seeds the worker's freelists

  const int64_t fresh_before = TensorArena::TotalFreshAllocs();
  const int64_t reuse_before = TensorArena::TotalReuses();
  for (int i = 0; i < 4; ++i) {
    SlateResult result =
        engine.Submit(req, candidates, /*deadline_micros=*/60 * 1000 * 1000)
            .get();
    ASSERT_TRUE(result.status.ok());
  }
  const int64_t fresh = TensorArena::TotalFreshAllocs() - fresh_before;
  const int64_t reuses = TensorArena::TotalReuses() - reuse_before;
  // The forward pass allocates dozens of tensors per batch; with the arena
  // warm, reuse must dominate fresh allocation by a wide margin.
  EXPECT_GT(reuses, 4 * fresh) << "fresh=" << fresh << " reuses=" << reuses;
}

}  // namespace
}  // namespace basm::runtime
