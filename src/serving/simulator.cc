#include "serving/simulator.h"

#include "common/logging.h"
#include "data/schema.h"

namespace basm::serving {

OnlineSimulator::OnlineSimulator(const data::World& world,
                                 const AbTestConfig& config)
    : world_(world), config_(config) {}

AbTestResult OnlineSimulator::Run(models::CtrModel& base_model,
                                  models::CtrModel& treatment_model) {
  base_model.SetTraining(false);
  treatment_model.SetTraining(false);

  RecallIndex recall(world_);
  feature_store::FeatureServer base_features(world_, world_.config().seq_len,
                              config_.seed ^ 0xA);
  feature_store::FeatureServer treat_features(world_, world_.config().seq_len,
                               config_.seed ^ 0xA);  // identical bootstrap
  // Each arm owns its feature store: click feedback must stay arm-local
  // (versions and caches included) or the arms would contaminate each
  // other's behavior windows.
  feature_store::FeatureStore base_store(&base_features);
  feature_store::FeatureStore treat_store(&treat_features);
  Pipeline base_pipeline(world_, &base_store, &recall, &base_model,
                         config_.recall_size, config_.expose_k);
  Pipeline treat_pipeline(world_, &treat_store, &recall, &treatment_model,
                          config_.recall_size, config_.expose_k);

  AbTestResult result;
  result.base.model_name = base_model.name();
  result.treatment.model_name = treatment_model.name();
  result.base.daily.resize(config_.days);
  result.treatment.daily.resize(config_.days);

  Rng traffic_rng(config_.seed);
  Rng noise_rng(config_.seed ^ 0x5EED);

  int32_t request_id = 0;
  for (int32_t day = 0; day < config_.days; ++day) {
    for (int64_t r = 0; r < config_.requests_per_day; ++r) {
      Request req;
      req.user_id = world_.SampleUser(traffic_rng);
      req.hour = world_.SampleHour(traffic_rng);
      req.weekday = day % 7;
      req.city = world_.user(req.user_id).city;
      req.day = day;
      req.request_id = request_id++;
      int32_t tp =
          static_cast<int32_t>(data::TimePeriodOfHour(req.hour));

      // Both arms see the same recalled slate.
      std::vector<int32_t> candidates =
          recall.RecallByCity(req.city, config_.recall_size, traffic_rng);

      // Common random numbers for click decisions: one uniform threshold
      // per candidate slot, shared across arms to reduce variance.
      std::vector<double> thresholds(config_.expose_k);
      for (auto& t : thresholds) t = traffic_rng.Uniform();
      // Shared ground-truth noise per candidate item.
      std::map<int32_t, float> item_noise;
      for (int32_t item : candidates) {
        item_noise[item] = static_cast<float>(noise_rng.Normal(0.0, 1.0));
      }

      auto run_arm = [&](Pipeline& pipeline,
                         feature_store::FeatureStore& features,
                         ArmResult& arm) {
        std::vector<RankedItem> slate =
            pipeline.RankCandidates(req, candidates);
        feature_store::FeatureServer::UserFeatures uf = features.GetFeatures(req.user_id);
        for (const RankedItem& ri : slate) {
          float p = world_.ClickProbability(req.user_id, ri.item_id, req.hour,
                                            ri.position, req.city,
                                            uf.behaviors,
                                            item_noise[ri.item_id]);
          bool click = thresholds[ri.position] < p;
          arm.daily[day].exposures++;
          arm.by_time_period[tp].exposures++;
          arm.by_city[req.city].exposures++;
          arm.total.exposures++;
          if (click) {
            arm.daily[day].clicks++;
            arm.by_time_period[tp].clicks++;
            arm.by_city[req.city].clicks++;
            arm.total.clicks++;
            const auto& item = world_.item(ri.item_id);
            data::BehaviorEvent ev;
            ev.item_id = ri.item_id;
            ev.category = item.category;
            ev.brand = item.brand;
            ev.hour = req.hour;
            ev.time_period = tp;
            ev.city = item.city;
            ev.geohash = item.geohash;
            features.RecordClick(req.user_id, ev);
          }
        }
      };
      run_arm(base_pipeline, base_store, result.base);
      run_arm(treat_pipeline, treat_store, result.treatment);
    }
  }

  for (int32_t day = 0; day < config_.days; ++day) {
    double base_ctr = result.base.daily[day].ctr();
    double treat_ctr = result.treatment.daily[day].ctr();
    result.daily_improvement.push_back(
        base_ctr > 0 ? (treat_ctr - base_ctr) / base_ctr : 0.0);
  }
  double base_total = result.base.total.ctr();
  result.average_improvement =
      base_total > 0 ? (result.treatment.total.ctr() - base_total) / base_total
                     : 0.0;
  return result;
}

}  // namespace basm::serving
