file(REMOVE_RECURSE
  "../bench/micro_serving"
  "../bench/micro_serving.pdb"
  "CMakeFiles/micro_serving.dir/micro_serving.cc.o"
  "CMakeFiles/micro_serving.dir/micro_serving.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
