#ifndef BASM_COMMON_RETRY_H_
#define BASM_COMMON_RETRY_H_

#include <cstdint>

#include "common/rng.h"

namespace basm {

/// Bounded-retry policy with exponential backoff and jitter — the knob set
/// of every RPC client in the paper's Fig 13 deployment. A policy only
/// *computes* waits; the caller owns the loop, so it can interleave
/// deadline checks and circuit-breaker probes between attempts.
struct RetryPolicy {
  /// Total tries including the first; 1 disables retrying.
  int32_t max_attempts = 3;
  /// Backoff before retry k (k >= 1) grows as
  /// initial_backoff_micros * multiplier^(k-1), capped at
  /// max_backoff_micros, then jittered.
  int64_t initial_backoff_micros = 200;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_micros = 5000;
  /// Uniform multiplicative jitter in [1 - jitter, 1 + jitter]; spreads
  /// synchronized retry storms. 0 disables.
  double jitter = 0.2;

  /// Backoff before retry `attempt` (1-based: the wait between try k and
  /// try k+1). `rng` supplies the jitter draw, so a forked per-request
  /// stream makes retry timing deterministic too.
  int64_t BackoffMicros(int32_t attempt, Rng& rng) const;
};

}  // namespace basm

#endif  // BASM_COMMON_RETRY_H_
