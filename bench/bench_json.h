#ifndef BASM_BENCH_BENCH_JSON_H_
#define BASM_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

// Tiny helper the benches share to maintain BENCH_kernels.json: a flat JSON
// object whose top-level keys are sections ("kernels", "engine"), each owned
// by one bench binary. Rewriting only your own section lets micro_ops and
// micro_engine update the same artifact without clobbering each other.

namespace basm::bench {

// Returns the end offset (one past) of the JSON value starting at `start`,
// honoring nested braces/brackets and quoted strings. Values here are always
// objects or arrays; anything else scans to the next top-level ',' or '}'.
inline size_t JsonValueEnd(const std::string& text, size_t start) {
  size_t i = start;
  int depth = 0;
  bool in_string = false;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (depth == 0) return i;  // closing brace of the enclosing object
      if (--depth == 0) return i + 1;
    } else if (c == ',' && depth == 0) {
      return i;
    }
  }
  return i;
}

// Reads `path` (treating a missing/invalid file as "{}"), replaces or
// inserts `"section": value`, and rewrites the file atomically via a temp
// file + rename. `value` must already be serialized JSON.
inline bool UpdateBenchJsonSection(const std::string& path,
                                   const std::string& section,
                                   const std::string& value) {
  std::string text = "{}";
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      std::string existing = buf.str();
      if (existing.find('{') != std::string::npos) text = existing;
    }
  }

  const std::string key = "\"" + section + "\"";
  size_t key_pos = text.find(key);
  if (key_pos != std::string::npos) {
    size_t colon = text.find(':', key_pos + key.size());
    if (colon == std::string::npos) return false;
    size_t value_start = colon + 1;
    while (value_start < text.size() &&
           (text[value_start] == ' ' || text[value_start] == '\n')) {
      ++value_start;
    }
    size_t value_end = JsonValueEnd(text, value_start);
    text.replace(value_start, value_end - value_start, value);
  } else {
    size_t close = text.rfind('}');
    if (close == std::string::npos) return false;
    // Non-empty object needs a separating comma before the new entry.
    size_t open = text.find('{');
    bool empty = text.find_first_not_of(" \n\t", open + 1) == close;
    std::string entry = (empty ? "" : ",") + ("\n  " + key + ": " + value);
    text.insert(close, entry + "\n");
  }

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

}  // namespace basm::bench

#endif  // BASM_BENCH_BENCH_JSON_H_
