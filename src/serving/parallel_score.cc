#include "serving/parallel_score.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <future>

#include "autograd/variable.h"
#include "common/logging.h"
#include "tensor/arena.h"

namespace basm::serving {

namespace {

/// Scores examples [begin, end) as one batch and writes the probabilities
/// into out[begin..end). Runs under inference mode with an arena scope so
/// every shard — pool thread or caller — reuses its scratch buffers.
void ScoreRange(models::CtrModel* model, const data::Schema& schema,
                const std::vector<data::Example>& examples, int64_t begin,
                int64_t end, float* out) {
  autograd::NoGradGuard no_grad;
  ArenaScope arena_scope;
  std::vector<const data::Example*> ptrs;
  ptrs.reserve(static_cast<size_t>(end - begin));
  for (int64_t i = begin; i < end; ++i) ptrs.push_back(&examples[i]);
  data::Batch batch = data::MakeBatch(ptrs, schema);
  std::vector<float> scores = model->PredictProbs(batch);
  BASM_CHECK_EQ(static_cast<int64_t>(scores.size()), end - begin);
  std::memcpy(out + begin, scores.data(), scores.size() * sizeof(float));
}

}  // namespace

std::vector<float> ScoreExamples(models::CtrModel* model,
                                 const data::Schema& schema,
                                 const std::vector<data::Example>& examples,
                                 ThreadPool* pool,
                                 int64_t min_rows_per_shard) {
  BASM_CHECK(model != nullptr);
  const int64_t n = static_cast<int64_t>(examples.size());
  if (n == 0) return {};
  BASM_CHECK_GE(min_rows_per_shard, 1);

  int64_t shards = 1;
  if (pool != nullptr && n >= 2 * min_rows_per_shard) {
    shards = std::min<int64_t>(pool->num_threads() + 1, n / min_rows_per_shard);
  }
  std::vector<float> out(static_cast<size_t>(n));
  if (shards < 2) {
    ScoreRange(model, schema, examples, 0, n, out.data());
    return out;
  }

  // Contiguous even split; each shard owns a disjoint slice of `out`, so the
  // only synchronization needed is the per-shard completion promise. Result
  // order is fixed by the slice offsets, never by completion order.
  const int64_t base = n / shards;
  const int64_t rem = n % shards;
  std::vector<int64_t> bounds;
  bounds.reserve(static_cast<size_t>(shards) + 1);
  bounds.push_back(0);
  for (int64_t s = 0; s < shards; ++s) {
    bounds.push_back(bounds.back() + base + (s < rem ? 1 : 0));
  }

  // Shards 1..N-1 go to the pool; shard 0 runs on this thread, so the
  // caller always contributes a core instead of blocking idle. A promise
  // per task (set on every path) keeps a throwing or rejected shard from
  // deadlocking the wait; the first shard exception is rethrown here.
  std::vector<std::promise<void>> done(static_cast<size_t>(shards) - 1);
  std::vector<std::exception_ptr> errors(static_cast<size_t>(shards) - 1);
  for (int64_t s = 1; s < shards; ++s) {
    const int64_t begin = bounds[static_cast<size_t>(s)];
    const int64_t end = bounds[static_cast<size_t>(s) + 1];
    std::promise<void>* promise = &done[static_cast<size_t>(s) - 1];
    std::exception_ptr* error = &errors[static_cast<size_t>(s) - 1];
    float* out_ptr = out.data();
    const bool submitted =
        pool->Submit([model, &schema, &examples, begin, end, out_ptr, promise,
                      error] {
          try {
            ScoreRange(model, schema, examples, begin, end, out_ptr);
          } catch (...) {
            *error = std::current_exception();
          }
          promise->set_value();
        });
    if (!submitted) {
      // Pool shutting down: score the shard here rather than dropping it.
      ScoreRange(model, schema, examples, begin, end, out.data());
      promise->set_value();
    }
  }
  ScoreRange(model, schema, examples, bounds[0], bounds[1], out.data());
  for (auto& promise : done) promise.get_future().wait();
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return out;
}

}  // namespace basm::serving
