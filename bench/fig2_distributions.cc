// Reproduces Fig 2: the distribution of exposures and CTRs across
// spatiotemporal scenarios (hours and cities) for one week of traffic.
//
// Expected shape (paper): exposures peak at meal hours (lunch/dinner) and
// concentrate in head cities; CTR varies substantially across both hours
// and cities — the "spatiotemporal data distribution" problem motivating
// BASM.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/ascii_chart.h"
#include "common/env.h"
#include "data/synth.h"
#include "metrics/metrics.h"

int main() {
  using namespace basm;
  data::SynthConfig config = data::SynthConfig::Eleme();
  if (basm::FastMode()) config = config.Fast();
  config.days = 7;  // one week, as in the figure
  config.test_day = 7;
  data::Dataset ds = data::GenerateDataset(config);
  std::printf("[fig2] %zu impressions over 7 days (%s)\n\n",
              ds.examples.size(), ds.name.c_str());

  std::vector<float> labels;
  std::vector<int32_t> hours, cities;
  for (const auto& e : ds.examples) {
    labels.push_back(e.label);
    hours.push_back(e.hour);
    cities.push_back(e.city);
  }

  auto by_hour = metrics::GroupCtr(labels, hours);
  std::vector<std::string> hour_labels;
  std::vector<double> hour_exposures, hour_ctrs;
  for (int h = 0; h < 24; ++h) {
    hour_labels.push_back("h" + std::to_string(h));
    hour_exposures.push_back(static_cast<double>(by_hour[h].impressions));
    hour_ctrs.push_back(by_hour[h].ctr());
  }
  std::printf("(a) exposures by hour:\n%s\n",
              analysis::BarChart(hour_labels, hour_exposures, 46).c_str());
  std::printf("(a) CTR by hour:\n%s\n",
              analysis::BarChart(hour_labels, hour_ctrs, 46).c_str());

  auto by_city = metrics::GroupCtr(labels, cities);
  std::vector<std::string> city_labels;
  std::vector<double> city_exposures, city_ctrs;
  for (int64_t c = 0; c < config.num_cities; ++c) {
    city_labels.push_back("city" + std::to_string(c));
    city_exposures.push_back(
        static_cast<double>(by_city[static_cast<int32_t>(c)].impressions));
    city_ctrs.push_back(by_city[static_cast<int32_t>(c)].ctr());
  }
  std::printf("(b) exposures by city:\n%s\n",
              analysis::BarChart(city_labels, city_exposures, 46).c_str());
  std::printf("(b) CTR by city:\n%s\n",
              analysis::BarChart(city_labels, city_ctrs, 46).c_str());

  // Quantified spread, the figure's takeaway.
  double hmin = 1.0, hmax = 0.0;
  for (int h = 0; h < 24; ++h) {
    if (by_hour[h].impressions < 50) continue;
    hmin = std::min(hmin, by_hour[h].ctr());
    hmax = std::max(hmax, by_hour[h].ctr());
  }
  double cmin = 1.0, cmax = 0.0;
  for (auto& [c, st] : by_city) {
    if (st.impressions < 50) continue;
    cmin = std::min(cmin, st.ctr());
    cmax = std::max(cmax, st.ctr());
  }
  std::printf("CTR spread across hours : %.3f .. %.3f (x%.2f)\n", hmin, hmax,
              hmin > 0 ? hmax / hmin : 0.0);
  std::printf("CTR spread across cities: %.3f .. %.3f (x%.2f)\n", cmin, cmax,
              cmin > 0 ? cmax / cmin : 0.0);
  return 0;
}
