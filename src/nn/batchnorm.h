#ifndef BASM_NN_BATCHNORM_H_
#define BASM_NN_BATCHNORM_H_

#include "autograd/ops.h"
#include "nn/module.h"

namespace basm::nn {

/// 1-D batch normalization over the batch dimension of [B, H] activations.
///
/// Training mode normalizes with batch statistics and maintains exponential
/// running statistics; evaluation mode uses the running statistics (the
/// paper's serving path). The affine transform (gamma, beta) is separated
/// from normalization so BASM's Fusion BN (StABT) can modulate it with
/// per-sample spatiotemporal signals — see Eq. (17) of the paper.
class BatchNorm1d : public Module {
 public:
  BatchNorm1d(int64_t features, float momentum = 0.1f, float eps = 1e-5f);

  /// Full BN: gamma * normalize(x) + beta.
  autograd::Variable Forward(const autograd::Variable& x);

  /// Affine-less normalization (x - mu) / sqrt(var + eps). In training mode
  /// this also updates the running statistics, so call it once per step.
  autograd::Variable Normalize(const autograd::Variable& x);

  const autograd::Variable& gamma() const { return gamma_; }
  const autograd::Variable& beta() const { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

  int64_t features() const { return features_; }

 private:
  int64_t features_;
  float momentum_;
  float eps_;
  autograd::Variable gamma_;  // [1, H]
  autograd::Variable beta_;   // [1, H]
  Tensor running_mean_;       // [1, H]
  Tensor running_var_;        // [1, H]
};

}  // namespace basm::nn

#endif  // BASM_NN_BATCHNORM_H_
