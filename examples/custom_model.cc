// Building a custom CTR model on the library substrate: implement the
// CtrModel interface with your own architecture and it plugs into the
// trainer, the metrics, the efficiency profiler and the serving pipeline
// unchanged. The model below is a compact "context-gated MLP" that reuses
// the shared FeatureEncoder, LayerNorm and a sequence attention block.

#include <cstdio>
#include <memory>

#include "common/env.h"
#include "data/synth.h"
#include "models/ctr_model.h"
#include "models/feature_encoder.h"
#include "core/model_zoo.h"
#include "nn/attention.h"
#include "nn/layernorm.h"
#include "nn/linear.h"
#include "serving/simulator.h"
#include "train/trainer.h"

namespace {

using namespace basm;
namespace ag = basm::autograd;

/// A minimal custom architecture: attention-pooled behaviors + all fields,
/// LayerNorm instead of BatchNorm (serving-friendly), and one sigmoid gate
/// from the context field scaling the hidden layer — a poor man's StABT.
class ContextGatedMlp : public models::CtrModel {
 public:
  ContextGatedMlp(const data::Schema& schema, Rng& rng) {
    encoder_ = std::make_unique<models::FeatureEncoder>(schema, 8, rng);
    RegisterModule("encoder", encoder_.get());
    attention_ =
        std::make_unique<nn::TargetAttention>(encoder_->seq_dim(), 32, rng);
    RegisterModule("attention", attention_.get());
    hidden_ = std::make_unique<nn::Linear>(encoder_->concat_dim(), 64, rng);
    RegisterModule("hidden", hidden_.get());
    norm_ = std::make_unique<nn::LayerNorm>(64);
    RegisterModule("norm", norm_.get());
    gate_ = std::make_unique<nn::Linear>(encoder_->context_dim(), 64, rng);
    RegisterModule("gate", gate_.get());
    out_ = std::make_unique<nn::Linear>(64, 1, rng);
    RegisterModule("out", out_.get());
  }

  ag::Variable ForwardLogits(const data::Batch& batch) override {
    auto f = encoder_->Encode(batch);
    ag::Variable interest =
        attention_->Forward(f.query, f.seq, batch.seq_mask);
    ag::Variable x =
        ag::ConcatCols({f.user, interest, f.item, f.context, f.combine});
    ag::Variable h = norm_->Forward(hidden_->Forward(x));
    ag::Variable gate = ag::Sigmoid(gate_->Forward(f.context));
    h = ag::LeakyRelu(ag::Mul(h, gate), 0.01f);
    return ag::Reshape(out_->Forward(h), {batch.size});
  }

  std::string name() const override { return "ContextGatedMLP(custom)"; }

 private:
  std::unique_ptr<models::FeatureEncoder> encoder_;
  std::unique_ptr<nn::TargetAttention> attention_;
  std::unique_ptr<nn::Linear> hidden_;
  std::unique_ptr<nn::LayerNorm> norm_;
  std::unique_ptr<nn::Linear> gate_;
  std::unique_ptr<nn::Linear> out_;
};

}  // namespace

int main() {
  using namespace basm;
  bool fast = basm::FastMode();
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 1200;
  config.num_items = 700;
  config.requests_per_day = fast ? 60 : 350;
  config.days = 5;
  config.test_day = 4;
  data::Dataset dataset = data::GenerateDataset(config);

  Rng rng(31);
  ContextGatedMlp custom(dataset.schema, rng);
  std::printf("custom model '%s': %lld parameters\n", custom.name().c_str(),
              static_cast<long long>(custom.ParameterCount()));

  // The standard trainer and evaluator work out of the box...
  train::TrainConfig tc;
  tc.epochs = fast ? 1 : 2;
  train::Fit(custom, dataset, tc);
  train::EvalResult eval = train::EvaluateOnTest(custom, dataset);
  std::printf("AUC %.4f | TAUC %.4f | CAUC %.4f | LogLoss %.4f\n",
              eval.summary.auc, eval.summary.tauc, eval.summary.cauc,
              eval.summary.logloss);

  // ...and so does the serving A/B harness against a zoo baseline.
  auto din = core::CreateModel(core::ModelKind::kDin, dataset.schema, 31);
  train::Fit(*din, dataset, tc);
  data::World world(config);
  serving::AbTestConfig ab;
  ab.days = 3;
  ab.requests_per_day = fast ? 40 : 150;
  serving::OnlineSimulator sim(world, ab);
  serving::AbTestResult result = sim.Run(*din, custom);
  std::printf("A/B vs DIN: base CTR %.2f%%, custom CTR %.2f%% (%+.2f%%)\n",
              100 * result.base.total.ctr(),
              100 * result.treatment.total.ctr(),
              100 * result.average_improvement);
  return 0;
}
