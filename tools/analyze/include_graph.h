#ifndef BASM_TOOLS_ANALYZE_INCLUDE_GRAPH_H_
#define BASM_TOOLS_ANALYZE_INCLUDE_GRAPH_H_

#include <string>
#include <vector>

#include "tools/analyze/scanner.h"
#include "tools/lint.h"

namespace basm::analyze {

/// Pass `include-layering`: every `#include "mod/..."` edge between two
/// `src/` modules must appear in the authoritative module DAG (DESIGN §15).
/// Unknown target modules (tools/, tests/) and edges missing from the
/// table are findings, and the observed graph is additionally checked for
/// cycles (with a witness path) in case the table itself ever rots.
std::vector<lint::Finding> RunIncludeGraph(const std::vector<FileScan>& files);

/// The table's modules in dependency order (self-check helper; empty result
/// means the authoritative table contains a cycle — a tooling bug).
std::vector<std::string> ModuleTopoOrder();

}  // namespace basm::analyze

#endif  // BASM_TOOLS_ANALYZE_INCLUDE_GRAPH_H_
