// Reproduces Fig 9: (a) user activity (clicks/orders) per city and (b) the
// heatmap of learned StAEL alpha_j per feature field over cities.
//
// Expected shape (paper): as city-level user activity decreases (city 0 is
// the largest), the weight of user-side fields decreases while item-side
// field weight increases.

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/ascii_chart.h"
#include "bench/bench_util.h"
#include "metrics/metrics.h"

int main() {
  using namespace basm;
  std::printf("[fig9] StAEL alpha by city\n");
  bench::TrainedBasm tb = bench::TrainBasmOnEleme(
      static_cast<uint64_t>(basm::EnvInt("BASM_SEED", 42)));
  int32_t num_cities =
      static_cast<int32_t>(tb.dataset.schema.num_cities);
  int32_t shown = std::min<int32_t>(5, num_cities);  // five typical cities

  std::vector<float> labels;
  std::vector<int32_t> cities;
  for (const auto* e : tb.dataset.TestExamples()) {
    labels.push_back(e->label);
    cities.push_back(e->city);
  }
  auto activity = metrics::GroupCtr(labels, cities);
  std::vector<std::string> city_names;
  std::vector<double> clicks, exposures;
  for (int32_t c = 0; c < shown; ++c) {
    city_names.push_back("city" + std::to_string(c));
    exposures.push_back(static_cast<double>(activity[c].impressions));
    clicks.push_back(static_cast<double>(activity[c].clicks));
  }
  std::printf("\n(a) exposures by city (0 = largest):\n%s",
              analysis::BarChart(city_names, exposures, 40).c_str());
  std::printf("\n(a) clicks by city:\n%s",
              analysis::BarChart(city_names, clicks, 40).c_str());

  auto alpha = bench::CollectAlphaByGroup(
      *tb.model, tb.dataset, [](const data::Example& e) { return e.city; });
  std::vector<std::vector<double>> grid;
  for (int32_t c = 0; c < shown; ++c) {
    grid.push_back(alpha.count(c) > 0 ? alpha[c]
                                      : std::vector<double>(5, 0.0));
  }
  std::printf("\n(b) mean StAEL alpha per field x city:\n%s",
              analysis::Heatmap(city_names, core::Basm::FieldNames(), grid)
                  .c_str());

  // Quantified takeaway: user-side weight in the biggest vs smallest shown
  // city (expect decreasing with activity).
  auto user_side = [&](int32_t c) {
    return (grid[c][0] + grid[c][1] + grid[c][4]) / 3.0;
  };
  auto item_side = [&](int32_t c) { return (grid[c][2] + grid[c][3]) / 2.0; };
  std::printf(
      "\nuser-side minus item-side alpha: city0 %.4f vs city%d %.4f "
      "(expect city0 higher)\n",
      user_side(0) - item_side(0), shown - 1,
      user_side(shown - 1) - item_side(shown - 1));
  return 0;
}
