# Empty dependencies file for ext_incremental_update.
# This may be replaced when dependencies are built.
