#ifndef BASM_CORE_BASM_MODEL_H_
#define BASM_CORE_BASM_MODEL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/stabt.h"
#include "core/stael.h"
#include "core/ststl.h"
#include "models/ctr_model.h"
#include "models/feature_encoder.h"
#include "nn/attention.h"
#include "nn/linear.h"

namespace basm::core {

/// Configuration of the full BASM model; the use_* switches produce the
/// ablation rows of Table V, and gate_scale the 2*sigmoid ablation of the
/// extension benches.
struct BasmConfig {
  int64_t embed_dim = 8;
  std::vector<int64_t> tower_hidden = {64, 32};
  int64_t ststl_out = 64;
  int64_t ststl_rank = 8;
  float gate_scale = 2.0f;
  bool use_stael = true;
  bool use_ststl = true;
  bool use_stabt = true;

  static BasmConfig Full() { return BasmConfig{}; }
  static BasmConfig WithoutStAEL() {
    BasmConfig c;
    c.use_stael = false;
    return c;
  }
  static BasmConfig WithoutStSTL() {
    BasmConfig c;
    c.use_ststl = false;
    return c;
  }
  static BasmConfig WithoutStABT() {
    BasmConfig c;
    c.use_stabt = false;
    return c;
  }
};

/// Bottom-up Adaptive Spatiotemporal Model (Fig 3): DIN-style target
/// attention pools the behavior sequence, StAEL gates the five field
/// embeddings by spatiotemporal context, StSTL transforms the concatenated
/// raw semantic into spatiotemporal semantic via meta-generated parameters,
/// and StABT classifies through spatiotemporally modulated FC+BN layers.
class Basm : public models::CtrModel {
 public:
  Basm(const data::Schema& schema, const BasmConfig& config, Rng& rng);

  autograd::Variable ForwardLogits(const data::Batch& batch) override;
  autograd::Variable FinalRepresentation(const data::Batch& batch) override;
  std::string name() const override;

  const BasmConfig& config() const { return config_; }

  /// StAEL gate values of the last forward pass: [B, 5] ordered as
  /// user | behavior-seq | item | context | combine. Empty when StAEL is
  /// ablated away.
  const Tensor& last_alphas() const;

  /// Field names matching last_alphas columns (Fig 8/9 axes).
  static const std::vector<std::string>& FieldNames();

 private:
  autograd::Variable Hidden(const data::Batch& batch);

  BasmConfig config_;
  std::unique_ptr<models::FeatureEncoder> encoder_;
  std::unique_ptr<nn::TargetAttention> attention_;
  std::unique_ptr<StAEL> stael_;
  std::unique_ptr<StSTL> ststl_;
  std::unique_ptr<nn::Linear> static_semantic_;  // replaces StSTL if ablated
  std::unique_ptr<StABT> tower_;
  std::unique_ptr<nn::Linear> out_;
  Tensor empty_alphas_;
};

}  // namespace basm::core

#endif  // BASM_CORE_BASM_MODEL_H_
