#include "online/online_trainer.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "nn/serialize.h"

namespace basm::online {

train::TrainConfig DefaultIncrementalRecipe() {
  train::TrainConfig recipe;
  recipe.epochs = 1;
  recipe.lr_peak = 0.02f;  // gentler fine-tuning steps than cold training
  recipe.warmup_steps = 1;
  return recipe;
}

OnlineTrainer::OnlineTrainer(const data::Schema& schema,
                             ModelRegistry* registry, ModelSlot* slot,
                             OnlineTrainerConfig config)
    : schema_(schema),
      registry_(registry),
      slot_(slot),
      config_(std::move(config)),
      feedback_(config_.feedback_capacity),
      gate_(config_.publish_gate) {
  BASM_CHECK(registry_ != nullptr);
  BASM_CHECK_GT(config_.publish_every, 0);
}

OnlineTrainer::~OnlineTrainer() { Stop(); }

Status OnlineTrainer::PublishModel(const models::CtrModel& model,
                                   std::string note) {
  BASM_CHECK(!model.training())
      << "publish models in eval mode (running statistics finalized)";
  std::string bytes = nn::SerializeParameters(model);
  StatusOr<uint64_t> version = registry_->Publish(bytes, std::move(note));
  if (!version.ok()) return version.status();
  last_version_.store(version.value(), std::memory_order_relaxed);
  if (slot_ != nullptr) {
    StatusOr<std::unique_ptr<models::CtrModel>> servable = BuildModel(bytes);
    if (!servable.ok()) return servable.status();
    BASM_RETURN_IF_ERROR(
        InstallServable(version.value(), std::move(servable).value()));
  }
  return Status::Ok();
}

Status OnlineTrainer::InstallServable(
    uint64_t version, std::unique_ptr<models::CtrModel> model) {
  if (fault_injector_ != nullptr) {
    FaultDecision decision =
        fault_injector_->Evaluate(kModelSlotInstallFaultSite);
    if (decision.delay_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(decision.delay_micros));
    }
    if (!decision.status.ok()) {
      // The model push to the serving node failed: the registry publish
      // stands, the previously-installed version keeps serving, and a
      // later successful publish heals the skew.
      failed_installs_.fetch_add(1, std::memory_order_relaxed);
      return Status(decision.status.code(),
                    "published v" + std::to_string(version) +
                        " but slot install failed: " +
                        decision.status.message());
    }
  }
  slot_->Install(MakeServable(version, std::move(model)));
  return Status::Ok();
}

void OnlineTrainer::Start() {
  MutexLock lock(&lifecycle_mu_);
  BASM_CHECK(!started_) << "OnlineTrainer started twice";
  started_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void OnlineTrainer::Stop() {
  MutexLock lock(&lifecycle_mu_);
  if (stopped_) return;
  stopped_ = true;
  feedback_.Shutdown();
  // The queue is already shut down, so Loop exits after draining the
  // backlog; joining under lifecycle_mu_ keeps Stop idempotent (§10).
  if (thread_.joinable()) thread_.join();  // basm-analyze: allow(blocking-under-lock)
}

bool OnlineTrainer::SubmitFeedback(data::Example example) {
  if (!feedback_.TryPush(std::move(example))) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  return true;
}

int64_t OnlineTrainer::SubmitRecoveredFeedback(
    std::vector<data::Example> examples) {
  int64_t accepted = 0;
  for (data::Example& example : examples) {
    if (SubmitFeedback(std::move(example))) ++accepted;
  }
  recovered_feedback_.fetch_add(accepted, std::memory_order_relaxed);
  return accepted;
}

void OnlineTrainer::Loop() {
  while (true) {
    std::optional<data::Example> item = feedback_.Pop();
    if (!item.has_value()) return;  // stream shut down and drained
    MutexLock lock(&update_mu_);
    buffer_.push_back(std::move(*item));
    consumed_.fetch_add(1, std::memory_order_relaxed);
    buffered_.store(static_cast<int64_t>(buffer_.size()),
                    std::memory_order_relaxed);
    if (static_cast<int64_t>(buffer_.size()) >= config_.publish_every) {
      // Applying + publishing under update_mu_ IS the §10 design; the
      // "blocking" writes are in-memory stream formatting, not IO.
      Status s = UpdateLocked(config_.note_prefix + "-" +  // basm-analyze: allow(blocking-under-lock)
                              std::to_string(published_.load() + 1));
      if (!s.ok()) {
        BASM_LOG(Warning) << "online update failed: " << s.ToString();
      }
    }
  }
}

Status OnlineTrainer::PublishNow(std::string note) {
  MutexLock lock(&update_mu_);
  while (std::optional<data::Example> item = feedback_.TryPop()) {
    buffer_.push_back(std::move(*item));
    consumed_.fetch_add(1, std::memory_order_relaxed);
  }
  buffered_.store(static_cast<int64_t>(buffer_.size()),
                  std::memory_order_relaxed);
  if (buffer_.empty()) {
    return Status::InvalidArgument("no click feedback buffered");
  }
  if (note.empty()) {
    note = config_.note_prefix + "-" + std::to_string(published_.load() + 1);
  }
  // Same contract as Loop: the update/publish path runs under update_mu_.
  return UpdateLocked(note);  // basm-analyze: allow(blocking-under-lock)
}

Status OnlineTrainer::UpdateLocked(const std::string& note) {
  std::shared_ptr<const RegistrySnapshot> head = registry_->Head();
  if (head == nullptr) {
    return Status::InvalidArgument(
        "registry is empty: PublishModel a bootstrap version first");
  }
  WallTimer timer;

  // Warm start: materialize the head snapshot, then fine-tune on the
  // buffered feedback with the incremental recipe.
  StatusOr<std::unique_ptr<models::CtrModel>> model_or =
      BuildModel(head->bytes);
  if (!model_or.ok()) return model_or.status();
  std::unique_ptr<models::CtrModel> model = std::move(model_or).value();

  std::vector<const data::Example*> examples;
  examples.reserve(buffer_.size());
  for (const data::Example& e : buffer_) examples.push_back(&e);
  train::FitExamples(*model, examples, schema_, config_.recipe);
  model->SetTraining(false);

  // Publish gate: a candidate that fails validation never reaches the
  // registry or the slot — the pinned head keeps serving, and the buffer
  // that produced the bad update is discarded rather than retrained (a
  // poisoned batch would fail the gate forever).
  if (gate_) {
    Status gate = gate_(*model);
    if (!gate.ok()) {
      buffer_.clear();
      buffered_.store(0, std::memory_order_relaxed);
      rejected_publishes_.fetch_add(1, std::memory_order_relaxed);
      return Status(gate.code(),
                    "publish rejected by gate: " + gate.message());
    }
  }

  std::string bytes = nn::SerializeParameters(*model);
  StatusOr<uint64_t> version = registry_->Publish(std::move(bytes), note);
  if (!version.ok()) return version.status();

  buffer_.clear();
  buffered_.store(0, std::memory_order_relaxed);
  published_.fetch_add(1, std::memory_order_relaxed);
  last_version_.store(version.value(), std::memory_order_relaxed);
  last_update_seconds_.store(timer.ElapsedSeconds(),
                             std::memory_order_relaxed);

  // Install the very instance that was serialized, so the serving scores
  // are bit-identical to an offline load of the published snapshot. The
  // publish above is already final: an injected install fault surfaces as
  // an error without unwinding it (the old version keeps serving).
  if (slot_ != nullptr) {
    BASM_RETURN_IF_ERROR(InstallServable(version.value(), std::move(model)));
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<models::CtrModel>> OnlineTrainer::BuildModel(
    const std::string& bytes) const {
  std::unique_ptr<models::CtrModel> model =
      core::CreateModel(config_.model_kind, schema_, config_.model_seed);
  BASM_RETURN_IF_ERROR(nn::DeserializeParameters(*model, bytes));
  model->SetTraining(false);
  return model;
}

void OnlineTrainer::SetPublishGate(
    std::function<Status(const models::CtrModel&)> gate) {
  // update_mu_ serializes against UpdateLocked's read of the gate.
  MutexLock lock(&update_mu_);
  gate_ = std::move(gate);
}

OnlineTrainerStats OnlineTrainer::stats() const {
  OnlineTrainerStats s;
  s.consumed = consumed_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.buffered = buffered_.load(std::memory_order_relaxed);
  s.published = published_.load(std::memory_order_relaxed);
  s.rejected_publishes =
      rejected_publishes_.load(std::memory_order_relaxed);
  s.failed_installs = failed_installs_.load(std::memory_order_relaxed);
  s.recovered_feedback =
      recovered_feedback_.load(std::memory_order_relaxed);
  s.last_version = last_version_.load(std::memory_order_relaxed);
  s.last_update_seconds =
      last_update_seconds_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace basm::online
