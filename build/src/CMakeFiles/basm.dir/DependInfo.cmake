
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/ascii_chart.cc" "src/CMakeFiles/basm.dir/analysis/ascii_chart.cc.o" "gcc" "src/CMakeFiles/basm.dir/analysis/ascii_chart.cc.o.d"
  "/root/repo/src/analysis/tsne.cc" "src/CMakeFiles/basm.dir/analysis/tsne.cc.o" "gcc" "src/CMakeFiles/basm.dir/analysis/tsne.cc.o.d"
  "/root/repo/src/autograd/ops.cc" "src/CMakeFiles/basm.dir/autograd/ops.cc.o" "gcc" "src/CMakeFiles/basm.dir/autograd/ops.cc.o.d"
  "/root/repo/src/autograd/variable.cc" "src/CMakeFiles/basm.dir/autograd/variable.cc.o" "gcc" "src/CMakeFiles/basm.dir/autograd/variable.cc.o.d"
  "/root/repo/src/common/env.cc" "src/CMakeFiles/basm.dir/common/env.cc.o" "gcc" "src/CMakeFiles/basm.dir/common/env.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/basm.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/basm.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/basm.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/basm.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/basm.dir/common/status.cc.o" "gcc" "src/CMakeFiles/basm.dir/common/status.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/basm.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/basm.dir/common/table_printer.cc.o.d"
  "/root/repo/src/core/basm_model.cc" "src/CMakeFiles/basm.dir/core/basm_model.cc.o" "gcc" "src/CMakeFiles/basm.dir/core/basm_model.cc.o.d"
  "/root/repo/src/core/stabt.cc" "src/CMakeFiles/basm.dir/core/stabt.cc.o" "gcc" "src/CMakeFiles/basm.dir/core/stabt.cc.o.d"
  "/root/repo/src/core/stael.cc" "src/CMakeFiles/basm.dir/core/stael.cc.o" "gcc" "src/CMakeFiles/basm.dir/core/stael.cc.o.d"
  "/root/repo/src/core/ststl.cc" "src/CMakeFiles/basm.dir/core/ststl.cc.o" "gcc" "src/CMakeFiles/basm.dir/core/ststl.cc.o.d"
  "/root/repo/src/data/batch.cc" "src/CMakeFiles/basm.dir/data/batch.cc.o" "gcc" "src/CMakeFiles/basm.dir/data/batch.cc.o.d"
  "/root/repo/src/data/geohash.cc" "src/CMakeFiles/basm.dir/data/geohash.cc.o" "gcc" "src/CMakeFiles/basm.dir/data/geohash.cc.o.d"
  "/root/repo/src/data/io.cc" "src/CMakeFiles/basm.dir/data/io.cc.o" "gcc" "src/CMakeFiles/basm.dir/data/io.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/basm.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/basm.dir/data/schema.cc.o.d"
  "/root/repo/src/data/synth.cc" "src/CMakeFiles/basm.dir/data/synth.cc.o" "gcc" "src/CMakeFiles/basm.dir/data/synth.cc.o.d"
  "/root/repo/src/metrics/metrics.cc" "src/CMakeFiles/basm.dir/metrics/metrics.cc.o" "gcc" "src/CMakeFiles/basm.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/models/apg.cc" "src/CMakeFiles/basm.dir/models/apg.cc.o" "gcc" "src/CMakeFiles/basm.dir/models/apg.cc.o.d"
  "/root/repo/src/models/autoint.cc" "src/CMakeFiles/basm.dir/models/autoint.cc.o" "gcc" "src/CMakeFiles/basm.dir/models/autoint.cc.o.d"
  "/root/repo/src/models/base_din.cc" "src/CMakeFiles/basm.dir/models/base_din.cc.o" "gcc" "src/CMakeFiles/basm.dir/models/base_din.cc.o.d"
  "/root/repo/src/models/ctr_model.cc" "src/CMakeFiles/basm.dir/models/ctr_model.cc.o" "gcc" "src/CMakeFiles/basm.dir/models/ctr_model.cc.o.d"
  "/root/repo/src/models/deepfm.cc" "src/CMakeFiles/basm.dir/models/deepfm.cc.o" "gcc" "src/CMakeFiles/basm.dir/models/deepfm.cc.o.d"
  "/root/repo/src/models/din.cc" "src/CMakeFiles/basm.dir/models/din.cc.o" "gcc" "src/CMakeFiles/basm.dir/models/din.cc.o.d"
  "/root/repo/src/models/feature_encoder.cc" "src/CMakeFiles/basm.dir/models/feature_encoder.cc.o" "gcc" "src/CMakeFiles/basm.dir/models/feature_encoder.cc.o.d"
  "/root/repo/src/models/m2m.cc" "src/CMakeFiles/basm.dir/models/m2m.cc.o" "gcc" "src/CMakeFiles/basm.dir/models/m2m.cc.o.d"
  "/root/repo/src/models/model_zoo.cc" "src/CMakeFiles/basm.dir/models/model_zoo.cc.o" "gcc" "src/CMakeFiles/basm.dir/models/model_zoo.cc.o.d"
  "/root/repo/src/models/star.cc" "src/CMakeFiles/basm.dir/models/star.cc.o" "gcc" "src/CMakeFiles/basm.dir/models/star.cc.o.d"
  "/root/repo/src/models/wide_deep.cc" "src/CMakeFiles/basm.dir/models/wide_deep.cc.o" "gcc" "src/CMakeFiles/basm.dir/models/wide_deep.cc.o.d"
  "/root/repo/src/nn/attention.cc" "src/CMakeFiles/basm.dir/nn/attention.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/attention.cc.o.d"
  "/root/repo/src/nn/batchnorm.cc" "src/CMakeFiles/basm.dir/nn/batchnorm.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/batchnorm.cc.o.d"
  "/root/repo/src/nn/dropout.cc" "src/CMakeFiles/basm.dir/nn/dropout.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/dropout.cc.o.d"
  "/root/repo/src/nn/dynamic.cc" "src/CMakeFiles/basm.dir/nn/dynamic.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/dynamic.cc.o.d"
  "/root/repo/src/nn/embedding.cc" "src/CMakeFiles/basm.dir/nn/embedding.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/embedding.cc.o.d"
  "/root/repo/src/nn/hashed_embedding.cc" "src/CMakeFiles/basm.dir/nn/hashed_embedding.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/hashed_embedding.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/CMakeFiles/basm.dir/nn/init.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/init.cc.o.d"
  "/root/repo/src/nn/layernorm.cc" "src/CMakeFiles/basm.dir/nn/layernorm.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/layernorm.cc.o.d"
  "/root/repo/src/nn/linear.cc" "src/CMakeFiles/basm.dir/nn/linear.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/linear.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/basm.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/module.cc" "src/CMakeFiles/basm.dir/nn/module.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/module.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/basm.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/basm.dir/nn/serialize.cc.o.d"
  "/root/repo/src/optim/optimizer.cc" "src/CMakeFiles/basm.dir/optim/optimizer.cc.o" "gcc" "src/CMakeFiles/basm.dir/optim/optimizer.cc.o.d"
  "/root/repo/src/serving/ab_stats.cc" "src/CMakeFiles/basm.dir/serving/ab_stats.cc.o" "gcc" "src/CMakeFiles/basm.dir/serving/ab_stats.cc.o.d"
  "/root/repo/src/serving/feature_server.cc" "src/CMakeFiles/basm.dir/serving/feature_server.cc.o" "gcc" "src/CMakeFiles/basm.dir/serving/feature_server.cc.o.d"
  "/root/repo/src/serving/pipeline.cc" "src/CMakeFiles/basm.dir/serving/pipeline.cc.o" "gcc" "src/CMakeFiles/basm.dir/serving/pipeline.cc.o.d"
  "/root/repo/src/serving/recall.cc" "src/CMakeFiles/basm.dir/serving/recall.cc.o" "gcc" "src/CMakeFiles/basm.dir/serving/recall.cc.o.d"
  "/root/repo/src/serving/simulator.cc" "src/CMakeFiles/basm.dir/serving/simulator.cc.o" "gcc" "src/CMakeFiles/basm.dir/serving/simulator.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/basm.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/basm.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/tensor/tensor_ops.cc" "src/CMakeFiles/basm.dir/tensor/tensor_ops.cc.o" "gcc" "src/CMakeFiles/basm.dir/tensor/tensor_ops.cc.o.d"
  "/root/repo/src/train/trainer.cc" "src/CMakeFiles/basm.dir/train/trainer.cc.o" "gcc" "src/CMakeFiles/basm.dir/train/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
