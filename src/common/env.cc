#include "common/env.h"

#include <cstdlib>

namespace basm {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return static_cast<int64_t>(parsed);
}

std::string EnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

bool FastMode() { return EnvInt("BASM_FAST", 0) != 0; }

}  // namespace basm
