#ifndef BASM_SERVING_RECALL_H_
#define BASM_SERVING_RECALL_H_

#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "data/synth.h"

namespace basm::serving {

/// Location-based candidate recall (the "recalled based on Location-based
/// Service" stage of Fig 13). Items are indexed by city and by coarse
/// geohash cell; a request recalls a popularity-weighted sample of items
/// near the user.
class RecallIndex {
 public:
  explicit RecallIndex(const data::World& world);

  /// Recalls up to `k` distinct items in `city`, favoring popular items
  /// (a production recall stage is itself popularity-biased).
  std::vector<int32_t> RecallByCity(int32_t city, int32_t k, Rng& rng) const;

  /// Recalls items whose geohash cell matches the request's cell, falling
  /// back to the whole city when the cell has too few items.
  std::vector<int32_t> RecallByGeohash(int32_t city, int32_t geohash,
                                       int32_t k, Rng& rng) const;

  /// Number of indexed geohash cells (introspection).
  int64_t NumCells() const { return static_cast<int64_t>(by_cell_.size()); }

 private:
  const data::World& world_;
  std::vector<std::vector<int32_t>> by_city_;
  std::vector<std::vector<double>> city_weights_;  // popularity weights
  std::unordered_map<int64_t, std::vector<int32_t>> by_cell_;
};

}  // namespace basm::serving

#endif  // BASM_SERVING_RECALL_H_
