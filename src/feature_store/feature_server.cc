#include "feature_store/feature_server.h"

#include <chrono>
#include <thread>

#include "common/logging.h"

namespace basm::feature_store {

FeatureServer::FeatureServer(const data::World& world, int64_t history_len,
                             uint64_t seed)
    : world_(world),
      history_len_(history_len),
      fault_injector_(FaultInjector::FromEnv()) {
  Rng rng(seed);
  int64_t num_users = world.config().num_users;
  histories_.resize(num_users);
  for (int64_t u = 0; u < num_users; ++u) {
    auto events =
        world_.SampleHistory(static_cast<int32_t>(u), history_len_, rng);
    histories_[u].assign(events.begin(), events.end());
  }
}

FeatureServer::UserFeatures FeatureServer::GetUserFeatures(
    int32_t user_id) const {
  BASM_CHECK_GE(user_id, 0);
  BASM_CHECK_LT(user_id, static_cast<int64_t>(histories_.size()));
  UserFeatures out;
  out.user_id = user_id;
  out.behaviors.assign(histories_[user_id].begin(),
                       histories_[user_id].end());
  return out;
}

StatusOr<FeatureServer::UserFeatures> FeatureServer::FetchUserFeatures(
    int32_t user_id) const {
  if (fault_injector_ != nullptr) {
    FaultDecision decision =
        fault_injector_->Evaluate(kFeatureFetchFaultSite);
    if (decision.delay_micros > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(decision.delay_micros));
    }
    if (!decision.status.ok()) return decision.status;
  }
  if (user_id < 0 || user_id >= static_cast<int64_t>(histories_.size())) {
    return Status::InvalidArgument("unknown user id " +
                                   std::to_string(user_id));
  }
  return GetUserFeatures(user_id);
}

void FeatureServer::RecordClick(int32_t user_id,
                                const data::BehaviorEvent& event) {
  BASM_CHECK_GE(user_id, 0);
  BASM_CHECK_LT(user_id, static_cast<int64_t>(histories_.size()));
  auto& h = histories_[user_id];
  h.push_front(event);
  while (static_cast<int64_t>(h.size()) > history_len_) h.pop_back();
}

}  // namespace basm::feature_store
