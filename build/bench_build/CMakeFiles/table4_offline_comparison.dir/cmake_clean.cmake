file(REMOVE_RECURSE
  "../bench/table4_offline_comparison"
  "../bench/table4_offline_comparison.pdb"
  "CMakeFiles/table4_offline_comparison.dir/table4_offline_comparison.cc.o"
  "CMakeFiles/table4_offline_comparison.dir/table4_offline_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_offline_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
