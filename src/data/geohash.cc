#include "data/geohash.h"

#include <cmath>

#include "common/logging.h"

namespace basm::data {

namespace {
constexpr char kBase32[] = "0123456789bcdefghjkmnpqrstuvwxyz";
}  // namespace

uint64_t Geohash::Encode(double lat, double lon, int bits) {
  BASM_CHECK_EQ(bits % 2, 0);
  BASM_CHECK_LE(bits, 60);
  BASM_CHECK_GT(bits, 0);
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  uint64_t cell = 0;
  for (int i = 0; i < bits; ++i) {
    if (i % 2 == 0) {  // even bit: longitude
      double mid = (lon_lo + lon_hi) / 2.0;
      if (lon >= mid) {
        cell = (cell << 1) | 1;
        lon_lo = mid;
      } else {
        cell <<= 1;
        lon_hi = mid;
      }
    } else {  // odd bit: latitude
      double mid = (lat_lo + lat_hi) / 2.0;
      if (lat >= mid) {
        cell = (cell << 1) | 1;
        lat_lo = mid;
      } else {
        cell <<= 1;
        lat_hi = mid;
      }
    }
  }
  return cell;
}

void Geohash::DecodeCenter(uint64_t cell, int bits, double* lat, double* lon) {
  BASM_CHECK_EQ(bits % 2, 0);
  double lat_lo = -90.0, lat_hi = 90.0;
  double lon_lo = -180.0, lon_hi = 180.0;
  for (int i = 0; i < bits; ++i) {
    uint64_t bit = (cell >> (bits - 1 - i)) & 1;
    if (i % 2 == 0) {
      double mid = (lon_lo + lon_hi) / 2.0;
      if (bit != 0u) {
        lon_lo = mid;
      } else {
        lon_hi = mid;
      }
    } else {
      double mid = (lat_lo + lat_hi) / 2.0;
      if (bit != 0u) {
        lat_lo = mid;
      } else {
        lat_hi = mid;
      }
    }
  }
  *lat = (lat_lo + lat_hi) / 2.0;
  *lon = (lon_lo + lon_hi) / 2.0;
}

uint64_t Geohash::Parent(uint64_t cell, int bits, int parent_bits) {
  BASM_CHECK_LE(parent_bits, bits);
  return cell >> (bits - parent_bits);
}

std::string Geohash::ToString(uint64_t cell, int bits) {
  // Pad to a multiple of 5 bits for base32 rendering.
  int padded = ((bits + 4) / 5) * 5;
  cell <<= (padded - bits);
  std::string out;
  for (int i = padded - 5; i >= 0; i -= 5) {
    out += kBase32[(cell >> i) & 31];
  }
  return out;
}

double Geohash::CenterDistance(uint64_t a, uint64_t b, int bits) {
  double la, lo, lb, lob;
  DecodeCenter(a, bits, &la, &lo);
  DecodeCenter(b, bits, &lb, &lob);
  double dlat = la - lb, dlon = lo - lob;
  return std::sqrt(dlat * dlat + dlon * dlon);
}

}  // namespace basm::data
