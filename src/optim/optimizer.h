#ifndef BASM_OPTIM_OPTIMIZER_H_
#define BASM_OPTIM_OPTIMIZER_H_

#include <vector>

#include "autograd/variable.h"

namespace basm::optim {

/// Base class for first-order optimizers over a fixed parameter list.
/// Workflow per step: model forward/backward accumulates into param grads,
/// then Step() applies the update and the caller (or Step) zeroes grads.
class Optimizer {
 public:
  explicit Optimizer(std::vector<autograd::Variable> params, float lr);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the currently accumulated gradients, then
  /// clears them. Applies global-norm clipping first when configured.
  void Step();

  void ZeroGrad();

  float learning_rate() const { return lr_; }
  void set_learning_rate(float lr) { lr_ = lr; }

  /// Global-norm gradient clipping threshold; <= 0 disables (default).
  void set_clip_norm(float clip_norm) { clip_norm_ = clip_norm; }

  int64_t step_count() const { return step_count_; }

 protected:
  /// Applies the rule to a single parameter (index i is stable across steps
  /// so implementations can keep per-parameter state slots).
  virtual void Update(size_t i, Tensor& value, const Tensor& grad) = 0;

  std::vector<autograd::Variable> params_;
  float lr_;

 private:
  float clip_norm_ = 0.0f;
  int64_t step_count_ = 0;
};

/// Plain stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autograd::Variable> params, float lr, float momentum = 0.0f);

 protected:
  void Update(size_t i, Tensor& value, const Tensor& grad) override;

 private:
  float momentum_;
  std::vector<Tensor> velocity_;
};

/// Adagrad with an optional accumulator decay; decay = 1 is classic Adagrad
/// (Duchi et al.), decay slightly below 1 reproduces the "AdagradDecay"
/// optimizer the paper trains with, which forgets stale curvature and keeps
/// long runs from stalling.
class Adagrad : public Optimizer {
 public:
  Adagrad(std::vector<autograd::Variable> params, float lr,
          float decay = 1.0f, float eps = 1e-8f);

 protected:
  void Update(size_t i, Tensor& value, const Tensor& grad) override;

 private:
  float decay_;
  float eps_;
  std::vector<Tensor> accum_;
};

/// Adam (Kingma & Ba) for baseline comparisons and tests.
class Adam : public Optimizer {
 public:
  Adam(std::vector<autograd::Variable> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);

 protected:
  void Update(size_t i, Tensor& value, const Tensor& grad) override;

 private:
  float beta1_, beta2_, eps_;
  std::vector<Tensor> m_, v_;
  std::vector<int64_t> t_;
};

/// Linear warmup schedule as in the paper: the learning rate starts at
/// `base` and rises linearly to `peak` over `warmup_steps`, then stays flat.
class LinearWarmup {
 public:
  LinearWarmup(float base, float peak, int64_t warmup_steps);

  float LearningRate(int64_t step) const;

 private:
  float base_;
  float peak_;
  int64_t warmup_steps_;
};

}  // namespace basm::optim

#endif  // BASM_OPTIM_OPTIMIZER_H_
