#include "common/retry.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace basm {

int64_t RetryPolicy::BackoffMicros(int32_t attempt, Rng& rng) const {
  BASM_CHECK_GE(attempt, 1);
  double base = static_cast<double>(initial_backoff_micros) *
                std::pow(backoff_multiplier, attempt - 1);
  base = std::min(base, static_cast<double>(max_backoff_micros));
  if (jitter > 0.0) {
    base *= rng.Uniform(1.0 - jitter, 1.0 + jitter);
  }
  return std::max<int64_t>(0, static_cast<int64_t>(base));
}

}  // namespace basm
