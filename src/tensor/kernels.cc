#include "tensor/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/env.h"
#include "common/logging.h"
#include "tensor/reference_ops.h"

namespace basm::ops::kernels {
namespace {

/// K-panel depth: a 256-float panel of 4 A-rows plus the streamed B/C rows
/// stays comfortably inside L1/L2, and panels bound the accumulation chain
/// length so blocked and AVX2 backends see similar rounding behavior.
constexpr int64_t kPanelK = 256;

Backend ResolveDefaultBackend() {
  const std::string env = EnvString("BASM_KERNEL", "");
  if (env == "reference") return Backend::kReference;
  if (env == "blocked") return Backend::kBlocked;
  if (env == "avx2" && Avx2Available()) return Backend::kAvx2;
  if (!env.empty() && env != "avx2") {
    BASM_LOG(Warning) << "unknown BASM_KERNEL='" << env
                      << "', using auto-detection";
  }
  return Avx2Available() ? Backend::kAvx2 : Backend::kBlocked;
}

std::atomic<Backend>& BackendVar() {
  // Thread-safe lazy init; SetBackend stores over it afterwards.
  static std::atomic<Backend> backend{ResolveDefaultBackend()};
  return backend;
}

}  // namespace

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kReference:
      return "reference";
    case Backend::kBlocked:
      return "blocked";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool Avx2Available() {
#if defined(__x86_64__) || defined(__i386__)
  static const bool available =
      Avx2Compiled() && __builtin_cpu_supports("avx2") &&
      __builtin_cpu_supports("fma");
  return available;
#else
  return false;
#endif
}

Backend ActiveBackend() {
  return BackendVar().load(std::memory_order_relaxed);
}

void SetBackend(Backend backend) {
  if (backend == Backend::kAvx2) {
    BASM_CHECK(Avx2Available()) << "AVX2 backend requested but unavailable";
  }
  BackendVar().store(backend, std::memory_order_relaxed);
}

ScopedBackend::ScopedBackend(Backend backend) : previous_(ActiveBackend()) {
  SetBackend(backend);
}

ScopedBackend::~ScopedBackend() { SetBackend(previous_); }

/// -- Blocked portable kernels ---------------------------------------------
///
/// i-k-j order, four C rows per pass, k in panels. The inner j loop is a
/// straight-line multiply-add over contiguous rows with no branches, which
/// GCC/Clang vectorize for whatever SIMD width the target has.

void GemmBlocked(const float* a, const float* b, float* c, int64_t m,
                 int64_t k, int64_t n) {
  if (m * n == 0) return;
  std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
  if (k == 0) return;
  for (int64_t p0 = 0; p0 < k; p0 += kPanelK) {
    const int64_t p1 = std::min(k, p0 + kPanelK);
    int64_t i = 0;
    for (; i + 4 <= m; i += 4) {
      const float* a0 = a + (i + 0) * k;
      const float* a1 = a + (i + 1) * k;
      const float* a2 = a + (i + 2) * k;
      const float* a3 = a + (i + 3) * k;
      float* c0 = c + (i + 0) * n;
      float* c1 = c + (i + 1) * n;
      float* c2 = c + (i + 2) * n;
      float* c3 = c + (i + 3) * n;
      for (int64_t p = p0; p < p1; ++p) {
        const float av0 = a0[p];
        const float av1 = a1[p];
        const float av2 = a2[p];
        const float av3 = a3[p];
        const float* b_row = b + p * n;
        for (int64_t j = 0; j < n; ++j) {
          const float bv = b_row[j];
          c0[j] += av0 * bv;
          c1[j] += av1 * bv;
          c2[j] += av2 * bv;
          c3[j] += av3 * bv;
        }
      }
    }
    for (; i < m; ++i) {
      const float* a_row = a + i * k;
      float* c_row = c + i * n;
      for (int64_t p = p0; p < p1; ++p) {
        const float av = a_row[p];
        const float* b_row = b + p * n;
        for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
      }
    }
  }
}

void GemmTransABlocked(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n) {
  if (k * n == 0) return;
  std::memset(c, 0, static_cast<size_t>(k * n) * sizeof(float));
  if (m == 0) return;
  int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    const float* b0 = b + (i + 0) * n;
    const float* b1 = b + (i + 1) * n;
    const float* b2 = b + (i + 2) * n;
    const float* b3 = b + (i + 3) * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av0 = a0[p];
      const float av1 = a1[p];
      const float av2 = a2[p];
      const float av3 = a3[p];
      float* c_row = c + p * n;
      for (int64_t j = 0; j < n; ++j) {
        c_row[j] += av0 * b0[j] + av1 * b1[j] + av2 * b2[j] + av3 * b3[j];
      }
    }
  }
  for (; i < m; ++i) {
    const float* a_row = a + i * k;
    const float* b_row = b + i * n;
    for (int64_t p = 0; p < k; ++p) {
      const float av = a_row[p];
      float* c_row = c + p * n;
      for (int64_t j = 0; j < n; ++j) c_row[j] += av * b_row[j];
    }
  }
}

void GemmTransBBlocked(const float* a, const float* b, float* c, int64_t m,
                       int64_t k, int64_t n) {
  if (m * n == 0) return;
  if (k == 0) {
    std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
    return;
  }
  for (int64_t i = 0; i < m; ++i) {
    const float* a_row = a + i * k;
    float* c_row = c + i * n;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + (j + 0) * k;
      const float* b1 = b + (j + 1) * k;
      const float* b2 = b + (j + 2) * k;
      const float* b3 = b + (j + 3) * k;
      float s0 = 0.0f, s1 = 0.0f, s2 = 0.0f, s3 = 0.0f;
      for (int64_t p = 0; p < k; ++p) {
        const float av = a_row[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      c_row[j + 0] = s0;
      c_row[j + 1] = s1;
      c_row[j + 2] = s2;
      c_row[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const float* b_row = b + j * k;
      float acc = 0.0f;
      for (int64_t p = 0; p < k; ++p) acc += a_row[p] * b_row[p];
      c_row[j] = acc;
    }
  }
}

/// -- Dispatch --------------------------------------------------------------

void Gemm(const float* a, const float* b, float* c, int64_t m, int64_t k,
          int64_t n) {
  switch (ActiveBackend()) {
    case Backend::kReference:
      if (m * n == 0) return;
      std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
      reference::GemmAccumulate(a, b, c, m, k, n);
      return;
    case Backend::kAvx2:
      GemmAvx2(a, b, c, m, k, n);
      return;
    case Backend::kBlocked:
      break;
  }
  GemmBlocked(a, b, c, m, k, n);
}

void GemmTransA(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  switch (ActiveBackend()) {
    case Backend::kReference:
      if (k * n == 0) return;
      std::memset(c, 0, static_cast<size_t>(k * n) * sizeof(float));
      reference::GemmTransAAccumulate(a, b, c, m, k, n);
      return;
    case Backend::kAvx2:
      GemmTransAAvx2(a, b, c, m, k, n);
      return;
    case Backend::kBlocked:
      break;
  }
  GemmTransABlocked(a, b, c, m, k, n);
}

void GemmTransB(const float* a, const float* b, float* c, int64_t m, int64_t k,
                int64_t n) {
  switch (ActiveBackend()) {
    case Backend::kReference:
      reference::GemmTransB(a, b, c, m, k, n);
      return;
    case Backend::kAvx2:
      GemmTransBAvx2(a, b, c, m, k, n);
      return;
    case Backend::kBlocked:
      break;
  }
  GemmTransBBlocked(a, b, c, m, k, n);
}

}  // namespace basm::ops::kernels
