// Design-choice ablation (DESIGN.md §5): the rank of StSTL's low-rank
// dynamic weight W_stl = W_base + U S(cond) V. Sweeps the rank and reports
// quality vs training cost — the matrix-decomposition trade the paper
// credits for BASM's efficiency edge over other dynamic-parameter models.
//
// Expected shape: quality saturates at a modest rank while cost keeps
// growing, justifying the small default (8).

#include <cstdio>

#include "common/env.h"
#include "common/table_printer.h"
#include "common/timer.h"
#include "core/basm_model.h"
#include "data/synth.h"
#include "train/trainer.h"

int main() {
  using namespace basm;
  uint64_t seed = static_cast<uint64_t>(basm::EnvInt("BASM_SEED", 42));
  data::SynthConfig config = data::SynthConfig::Eleme();
  if (basm::FastMode()) config = config.Fast();
  data::Dataset ds = data::GenerateDataset(config);
  std::printf("[ablation] StSTL rank sweep on %s\n\n", ds.name.c_str());

  TablePrinter table({"Rank", "AUC", "TAUC", "CAUC", "LogLoss", "Params",
                      "TrainSec"});
  for (int64_t rank : {2, 8, 32}) {
    core::BasmConfig mc = core::BasmConfig::Full();
    mc.ststl_rank = rank;
    Rng rng(seed);
    core::Basm model(ds.schema, mc, rng);
    train::TrainConfig tc;
    tc.epochs = basm::FastMode() ? 1 : 2;
    WallTimer timer;
    train::Fit(model, ds, tc);
    double seconds = timer.ElapsedSeconds();
    train::EvalResult eval = train::EvaluateOnTest(model, ds);
    table.AddRow({std::to_string(rank), TablePrinter::Num(eval.summary.auc),
                  TablePrinter::Num(eval.summary.tauc),
                  TablePrinter::Num(eval.summary.cauc),
                  TablePrinter::Num(eval.summary.logloss),
                  std::to_string(model.ParameterCount()),
                  TablePrinter::Num(seconds, 1)});
    std::printf("  finished rank %lld\n", static_cast<long long>(rank));
  }
  table.Print();
  return 0;
}
