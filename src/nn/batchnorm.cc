#include "nn/batchnorm.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace basm::nn {

namespace ag = ::basm::autograd;

BatchNorm1d::BatchNorm1d(int64_t features, float momentum, float eps)
    : features_(features),
      momentum_(momentum),
      eps_(eps),
      running_mean_({1, features}),
      running_var_(Tensor::Ones({1, features})) {
  gamma_ = RegisterParameter("gamma", Tensor::Ones({1, features}));
  beta_ = RegisterParameter("beta", Tensor({1, features}));
  RegisterBuffer("running_mean", &running_mean_);
  RegisterBuffer("running_var", &running_var_);
}

ag::Variable BatchNorm1d::Normalize(const ag::Variable& x) {
  BASM_CHECK_EQ(x.value().rank(), 2);
  BASM_CHECK_EQ(x.value().cols(), features_);
  if (training()) {
    // Batch statistics with gradients flowing through them.
    ag::Variable mu = ag::ColMean(x);                       // [1,H]
    ag::Variable centered = ag::AddRowBroadcast(x, ag::Neg(mu));
    ag::Variable var = ag::ColMean(ag::Mul(centered, centered));
    ag::Variable inv = ag::Rsqrt(var, eps_);                // [1,H]
    // Update running stats from the current batch (no gradient).
    running_mean_.ScaleInPlace(1.0f - momentum_);
    running_mean_.AddScaledInPlace(mu.value(), momentum_);
    running_var_.ScaleInPlace(1.0f - momentum_);
    running_var_.AddScaledInPlace(var.value(), momentum_);
    return ag::MulRowBroadcast(centered, inv);
  }
  // Eval mode: constants from running statistics.
  const float eps = eps_;
  Tensor inv = ops::Map(running_var_, std::function<float(float)>(
      [eps](float v) { return 1.0f / std::sqrt(v + eps); }));
  if (!ag::GradEnabled()) {
    // Fused center+scale pass; same per-element op order as the chain below.
    return ag::Variable::Constant(ops::CenterScaleRows(
        x.value(), ops::Scale(running_mean_, -1.0f), inv));
  }
  ag::Variable centered = ag::AddRowBroadcast(
      x, ag::Variable::Constant(ops::Scale(running_mean_, -1.0f)));
  return ag::MulRowBroadcast(centered, ag::Variable::Constant(inv));
}

ag::Variable BatchNorm1d::Forward(const ag::Variable& x) {
  if (!training() && !ag::GradEnabled()) {
    // Inference: the whole normalize+affine chain in one pass over x,
    // arithmetic-order-identical to the unfused path (so guarded forwards
    // stay bit-identical to unguarded eval forwards).
    const float eps = eps_;
    Tensor inv = ops::Map(running_var_, std::function<float(float)>(
        [eps](float v) { return 1.0f / std::sqrt(v + eps); }));
    return ag::Variable::Constant(ops::BatchNormInference(
        x.value(), ops::Scale(running_mean_, -1.0f), inv, gamma_.value(),
        beta_.value()));
  }
  ag::Variable normalized = Normalize(x);
  return ag::AddRowBroadcast(ag::MulRowBroadcast(normalized, gamma_), beta_);
}

}  // namespace basm::nn
