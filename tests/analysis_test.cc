#include <cmath>

#include "analysis/ascii_chart.h"
#include "analysis/tsne.h"
#include "common/rng.h"
#include "gtest/gtest.h"

namespace basm::analysis {
namespace {

/// Two well-separated Gaussian blobs in 10-D.
Tensor TwoBlobs(int64_t per_class, Rng& rng, float separation = 6.0f) {
  Tensor x({2 * per_class, 10});
  for (int64_t i = 0; i < 2 * per_class; ++i) {
    float center = i < per_class ? 0.0f : separation;
    for (int64_t k = 0; k < 10; ++k) {
      x.at(i, k) = center + static_cast<float>(rng.Normal(0.0, 1.0));
    }
  }
  return x;
}

std::vector<int32_t> BlobLabels(int64_t per_class) {
  std::vector<int32_t> labels(2 * per_class);
  for (int64_t i = per_class; i < 2 * per_class; ++i) labels[i] = 1;
  return labels;
}

TEST(TsneTest, OutputShapeAndFinite) {
  Rng rng(1);
  Tensor x = TwoBlobs(20, rng);
  TsneConfig config;
  config.iterations = 120;
  config.perplexity = 10.0;
  Tensor y = Tsne(config).Embed(x);
  EXPECT_EQ(y.dim(0), 40);
  EXPECT_EQ(y.dim(1), 2);
  EXPECT_FALSE(y.HasNonFinite());
}

TEST(TsneTest, SeparatedBlobsStaySeparated) {
  Rng rng(2);
  const int64_t per_class = 30;
  Tensor x = TwoBlobs(per_class, rng, 8.0f);
  TsneConfig config;
  config.iterations = 250;
  config.perplexity = 12.0;
  Tensor y = Tsne(config).Embed(x);
  double sep = SeparationRatio(y, BlobLabels(per_class));
  // Well-separated input classes must remain clearly separated in 2-D.
  EXPECT_GT(sep, 1.5);
}

TEST(TsneTest, DeterministicUnderSeed) {
  Rng rng(3);
  Tensor x = TwoBlobs(10, rng);
  TsneConfig config;
  config.iterations = 60;
  config.perplexity = 5.0;
  Tensor y1 = Tsne(config).Embed(x);
  Tensor y2 = Tsne(config).Embed(x);
  for (int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_FLOAT_EQ(y1[i], y2[i]);
  }
}

TEST(SeparationRatioTest, HigherForMoreSeparatedClasses) {
  Rng rng(4);
  const int64_t per_class = 40;
  Tensor near = TwoBlobs(per_class, rng, 1.0f);
  Tensor far = TwoBlobs(per_class, rng, 10.0f);
  auto labels = BlobLabels(per_class);
  EXPECT_GT(SeparationRatio(far, labels), SeparationRatio(near, labels));
}

TEST(SilhouetteTest, RangeAndOrdering) {
  Rng rng(5);
  const int64_t per_class = 30;
  auto labels = BlobLabels(per_class);
  double s_far = Silhouette(TwoBlobs(per_class, rng, 10.0f), labels);
  double s_near = Silhouette(TwoBlobs(per_class, rng, 0.5f), labels);
  EXPECT_GE(s_far, -1.0);
  EXPECT_LE(s_far, 1.0);
  EXPECT_GT(s_far, 0.5);   // clearly separated
  EXPECT_GT(s_far, s_near);
}

TEST(BarChartTest, RendersBarsProportionally) {
  std::string chart = BarChart({"a", "bb"}, {1.0, 2.0}, 10);
  // The larger value fills the width; the smaller about half.
  EXPECT_NE(chart.find("bb |##########|"), std::string::npos);
  EXPECT_NE(chart.find("a  |#####     |"), std::string::npos);
}

TEST(BarChartTest, ZeroValuesHandled) {
  std::string chart = BarChart({"x"}, {0.0}, 5);
  EXPECT_NE(chart.find("|     |"), std::string::npos);
}

TEST(HeatmapTest, ContainsLabelsAndValues) {
  std::string hm = Heatmap({"row1"}, {"c1", "c2"}, {{0.1, 0.9}});
  EXPECT_NE(hm.find("row1"), std::string::npos);
  EXPECT_NE(hm.find("c1"), std::string::npos);
  EXPECT_NE(hm.find("0.100"), std::string::npos);
  EXPECT_NE(hm.find("0.900"), std::string::npos);
}

TEST(ScatterPlotTest, PlacesPointsInGrid) {
  std::string plot =
      ScatterPlot({0.0, 1.0}, {0.0, 1.0}, {0, 1}, /*width=*/20, /*height=*/10);
  EXPECT_NE(plot.find('0'), std::string::npos);
  EXPECT_NE(plot.find('1'), std::string::npos);
  // Frame present.
  EXPECT_EQ(plot.find("+--"), 0u);
}

}  // namespace
}  // namespace basm::analysis
