#include "nn/serialize.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace basm::nn {

namespace {

constexpr char kMagic[8] = {'B', 'A', 'S', 'M', 'C', 'K', 'P', 'T'};
// v2: parameters + non-trainable buffers (batch-norm running statistics).
// v3: same body, header gains a 64-bit payload checksum. v2 files load
// without integrity verification for backward compatibility.
constexpr uint32_t kOldestSupportedVersion = 2;
// Header layout: magic, version, then (v3 only) the body checksum.
constexpr size_t kVersionOffset = sizeof(kMagic);
constexpr size_t kChecksumOffset = kVersionOffset + sizeof(uint32_t);
constexpr size_t kV3BodyOffset = kChecksumOffset + sizeof(uint64_t);
constexpr size_t kV2BodyOffset = kChecksumOffset;

/// FNV-1a 64-bit over the body bytes; cheap, endian-stable, and sensitive
/// to single-bit flips anywhere in the payload.
uint64_t Fnv1a64(const char* data, size_t n) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void AppendBytes(std::string* out, const void* data, size_t n) {
  out->append(static_cast<const char*>(data), n);
}

void AppendNamedTensor(std::string* out, const std::string& name,
                       const Tensor& t) {
  uint32_t name_len = static_cast<uint32_t>(name.size());
  uint32_t rank = static_cast<uint32_t>(t.rank());
  AppendBytes(out, &name_len, sizeof(name_len));
  AppendBytes(out, name.data(), name_len);
  AppendBytes(out, &rank, sizeof(rank));
  for (int i = 0; i < t.rank(); ++i) {
    int64_t d = t.dim(i);
    AppendBytes(out, &d, sizeof(d));
  }
  AppendBytes(out, t.data(), static_cast<size_t>(t.numel()) * sizeof(float));
}

/// Sequential reader over an image's body with truncation checking.
class ByteReader {
 public:
  ByteReader(const std::string& bytes, size_t offset)
      : bytes_(bytes), pos_(offset) {}

  bool Read(void* data, size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(data, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_;
};

Status ReadNamedTensor(ByteReader* r, const std::string& expected_name,
                       Tensor* t) {
  uint32_t name_len = 0;
  if (!r->Read(&name_len, sizeof(name_len)) || name_len > 4096) {
    return Status::Internal("corrupt tensor name length");
  }
  std::string name(name_len, '\0');
  uint32_t rank = 0;
  if (!r->Read(name.data(), name_len) || !r->Read(&rank, sizeof(rank)) ||
      rank > 8) {
    return Status::Internal("corrupt tensor header");
  }
  if (name != expected_name) {
    return Status::InvalidArgument("tensor order mismatch: expected " +
                                   expected_name + ", found " + name);
  }
  std::vector<int64_t> shape(rank);
  for (uint32_t i = 0; i < rank; ++i) {
    if (!r->Read(&shape[i], sizeof(int64_t)) || shape[i] < 0) {
      return Status::Internal("corrupt shape for " + name);
    }
  }
  if (shape != t->shape()) {
    return Status::InvalidArgument("shape mismatch for " + name + ": " +
                                   ShapeToString(shape) + " vs " +
                                   ShapeToString(t->shape()));
  }
  if (!r->Read(t->data(), static_cast<size_t>(t->numel()) * sizeof(float))) {
    return Status::Internal("truncated payload for " + name);
  }
  return Status::Ok();
}

/// Parses the header; on success sets `body_offset` to where the tensor
/// sections start and verifies the v3 checksum.
Status CheckHeader(const std::string& bytes, size_t* body_offset) {
  uint32_t version = 0;
  if (bytes.size() < kChecksumOffset ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a BASM checkpoint image");
  }
  std::memcpy(&version, bytes.data() + kVersionOffset, sizeof(version));
  if (version < kOldestSupportedVersion || version > kCheckpointVersion) {
    return Status::InvalidArgument("unsupported checkpoint version " +
                                   std::to_string(version));
  }
  if (version == 2) {
    *body_offset = kV2BodyOffset;
    return Status::Ok();
  }
  uint64_t recorded = 0;
  if (bytes.size() < kV3BodyOffset) {
    return Status::Internal("truncated checkpoint header");
  }
  std::memcpy(&recorded, bytes.data() + kChecksumOffset, sizeof(recorded));
  uint64_t actual =
      Fnv1a64(bytes.data() + kV3BodyOffset, bytes.size() - kV3BodyOffset);
  if (recorded != actual) {
    return Status::Internal("checkpoint checksum mismatch: payload corrupt");
  }
  *body_offset = kV3BodyOffset;
  return Status::Ok();
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

}  // namespace

std::string SerializeParameters(const Module& module) {
  std::string body;
  auto named = module.NamedParameters();
  uint64_t count = named.size();
  AppendBytes(&body, &count, sizeof(count));
  for (const auto& [name, param] : named) {
    AppendNamedTensor(&body, name, param.value());
  }
  auto buffers = module.NamedBuffers();
  uint64_t buffer_count = buffers.size();
  AppendBytes(&body, &buffer_count, sizeof(buffer_count));
  for (const auto& [name, buffer] : buffers) {
    AppendNamedTensor(&body, name, *buffer);
  }

  std::string image;
  image.reserve(kV3BodyOffset + body.size());
  AppendBytes(&image, kMagic, sizeof(kMagic));
  AppendBytes(&image, &kCheckpointVersion, sizeof(kCheckpointVersion));
  uint64_t checksum = Fnv1a64(body.data(), body.size());
  AppendBytes(&image, &checksum, sizeof(checksum));
  image += body;
  return image;
}

Status DeserializeParameters(Module& module, const std::string& bytes) {
  size_t body_offset = 0;
  BASM_RETURN_IF_ERROR(CheckHeader(bytes, &body_offset));
  ByteReader reader(bytes, body_offset);

  uint64_t count = 0;
  if (!reader.Read(&count, sizeof(count))) {
    return Status::Internal("truncated checkpoint header");
  }
  auto named = module.NamedParameters();
  if (count != named.size()) {
    return Status::InvalidArgument(
        "parameter count mismatch: checkpoint has " + std::to_string(count) +
        ", module has " + std::to_string(named.size()));
  }
  for (auto& [expected_name, param] : named) {
    autograd::Variable var = param;
    BASM_RETURN_IF_ERROR(
        ReadNamedTensor(&reader, expected_name, &var.mutable_value()));
  }

  auto buffers = module.NamedBuffers();
  uint64_t buffer_count = 0;
  if (!reader.Read(&buffer_count, sizeof(buffer_count))) {
    return Status::Internal("truncated buffer section");
  }
  if (buffer_count != buffers.size()) {
    return Status::InvalidArgument(
        "buffer count mismatch: checkpoint has " +
        std::to_string(buffer_count) + ", module has " +
        std::to_string(buffers.size()));
  }
  for (auto& [expected_name, buffer] : buffers) {
    BASM_RETURN_IF_ERROR(ReadNamedTensor(&reader, expected_name, buffer));
  }
  if (!reader.AtEnd()) {
    return Status::Internal("trailing bytes after checkpoint body");
  }
  return Status::Ok();
}

Status VerifyCheckpointImage(const std::string& bytes) {
  size_t body_offset = 0;
  return CheckHeader(bytes, &body_offset);
}

uint64_t CheckpointImageChecksum(const std::string& bytes) {
  if (bytes.size() < kV3BodyOffset) return 0;
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + kVersionOffset, sizeof(version));
  if (version != kCheckpointVersion) return 0;
  uint64_t checksum = 0;
  std::memcpy(&checksum, bytes.data() + kChecksumOffset, sizeof(checksum));
  return checksum;
}

Status SaveParameters(const Module& module, const std::string& path) {
  std::string image = SerializeParameters(module);
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::Unavailable("cannot open " + path + " for writing");
  }
  if (std::fwrite(image.data(), 1, image.size(), f.get()) != image.size()) {
    return Status::Internal("write failed: " + path);
  }
  return Status::Ok();
}

Status LoadParameters(Module& module, const std::string& path) {
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("checkpoint not found: " + path);
  }
  std::string bytes;
  char chunk[1 << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f.get())) > 0) {
    bytes.append(chunk, n);
  }
  if (std::ferror(f.get())) {
    return Status::Internal("read failed: " + path);
  }
  Status s = DeserializeParameters(module, bytes);
  if (!s.ok() && s.code() == StatusCode::kInvalidArgument &&
      s.message() == "not a BASM checkpoint image") {
    return Status::InvalidArgument("not a BASM checkpoint: " + path);
  }
  return s;
}

}  // namespace basm::nn
