#ifndef BASM_FEATURE_STORE_FEATURE_SERVER_H_
#define BASM_FEATURE_STORE_FEATURE_SERVER_H_

#include <deque>
#include <string>
#include <vector>

#include "common/fault.h"
#include "common/rng.h"
#include "common/status.h"
#include "data/synth.h"

namespace basm::feature_store {

/// Fault site name the feature fetch path evaluates on every fallible
/// fetch (see FaultInjector).
inline constexpr char kFeatureFetchFaultSite[] = "feature_server.fetch";

/// Analogue of the Alibaba Basic Feature Server (ABFS, Fig 13): when a user
/// opens the app, returns their profile features and recent behavior
/// sequence. Maintains per-user rolling histories that grow as the online
/// loop records new clicks, so the serving stack is closed-loop like the
/// production system.
///
/// Two read paths: GetUserFeatures models the in-process lookup and CHECKs
/// on bad ids (programmer error), while FetchUserFeatures models the *RPC*
/// to ABFS — it returns Status for recoverable failures and routes through
/// an optional FaultInjector, which is where chaos tests make the
/// dependency fail, spike, or go down entirely.
class FeatureServer {
 public:
  /// Histories are bootstrapped from the world's generative process.
  FeatureServer(const data::World& world, int64_t history_len, uint64_t seed);

  struct UserFeatures {
    int32_t user_id = 0;
    /// Most-recent-first behavior window of at most history_len events.
    std::vector<data::BehaviorEvent> behaviors;
  };

  UserFeatures GetUserFeatures(int32_t user_id) const;

  /// The fallible fetch: applies the injector's decision for
  /// kFeatureFetchFaultSite (sleeping injected latency, surfacing injected
  /// errors verbatim), then validates the user id (InvalidArgument instead
  /// of CHECK) and performs the lookup. With no injector configured this
  /// is GetUserFeatures plus one pointer test.
  [[nodiscard]] StatusOr<UserFeatures> FetchUserFeatures(int32_t user_id) const;

  /// Appends a clicked item to the user's history (most recent first).
  void RecordClick(int32_t user_id, const data::BehaviorEvent& event);

  /// Routes FetchUserFeatures through `injector` (borrowed; nullptr
  /// restores the clean path). Defaults to FaultInjector::FromEnv(), so
  /// setting BASM_FAULT_RATE injects faults with no code changes.
  void SetFaultInjector(FaultInjector* injector) {
    fault_injector_ = injector;
  }
  FaultInjector* fault_injector() const { return fault_injector_; }

  int64_t history_len() const { return history_len_; }

 private:
  const data::World& world_;
  int64_t history_len_;
  std::vector<std::deque<data::BehaviorEvent>> histories_;
  FaultInjector* fault_injector_;
};

}  // namespace basm::feature_store

#endif  // BASM_FEATURE_STORE_FEATURE_SERVER_H_
