#include "runtime/latency_recorder.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace basm::runtime {

namespace {
/// Round-robin shard assignment; each thread keeps its first pick so its
/// counters stay cache-resident.
std::atomic<uint32_t> g_next_shard{0};
}  // namespace

LatencyRecorder::Shard& LatencyRecorder::LocalShard() {
  thread_local uint32_t idx =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(kShards);
  return shards_[idx];
}

int64_t LatencyRecorder::BucketOf(int64_t micros) {
  if (micros < 4) return std::max<int64_t>(micros, 0);
  // Quarter-octave log scale: 4 sub-buckets per power of two, indexed by the
  // exponent and the two bits after the leading one. Values 0..7 land on
  // exact buckets 0..7, then resolution degrades geometrically (~12%).
  uint64_t v = static_cast<uint64_t>(micros);
  int64_t exp = std::bit_width(v) - 1;            // >= 2
  int64_t sub = static_cast<int64_t>((v >> (exp - 2)) & 3);
  return std::min<int64_t>(exp * 4 + sub - 4, kLatencyBuckets - 1);
}

double LatencyRecorder::BucketValue(int64_t bucket) {
  // Buckets 0..7 each hold exactly one integer latency.
  if (bucket < 8) return static_cast<double>(bucket);
  int64_t exp = (bucket + 4) / 4;
  int64_t sub = (bucket + 4) % 4;
  double lo = std::ldexp(1.0 + 0.25 * static_cast<double>(sub), exp);
  // Arithmetic bucket midpoint: bucket width is 2^(exp-2).
  return lo + std::ldexp(1.0, static_cast<int>(exp) - 3);
}

void LatencyRecorder::RecordLatency(int64_t micros) {
  Shard& s = LocalShard();
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum_micros.fetch_add(std::max<int64_t>(micros, 0),
                         std::memory_order_relaxed);
  s.latency_hist[BucketOf(micros)].fetch_add(1, std::memory_order_relaxed);
}

void LatencyRecorder::RecordBatchSize(int64_t size) {
  int64_t idx = std::clamp<int64_t>(size, 0, kMaxTrackedBatch);
  LocalShard().batch_hist[idx].fetch_add(1, std::memory_order_relaxed);
}

void LatencyRecorder::RecordReject() {
  LocalShard().rejects.fetch_add(1, std::memory_order_relaxed);
}

void LatencyRecorder::RecordTimeout() {
  LocalShard().timeouts.fetch_add(1, std::memory_order_relaxed);
}

void LatencyRecorder::RecordRetries(int64_t n) {
  if (n <= 0) return;
  LocalShard().retries.fetch_add(n, std::memory_order_relaxed);
}

void LatencyRecorder::RecordDegraded() {
  LocalShard().degraded.fetch_add(1, std::memory_order_relaxed);
}

void LatencyRecorder::RecordDegradedStale() {
  LocalShard().degraded_stale.fetch_add(1, std::memory_order_relaxed);
}

void LatencyRecorder::RecordDegradedEmpty() {
  LocalShard().degraded_empty.fetch_add(1, std::memory_order_relaxed);
}

void LatencyRecorder::RecordBreakerOpen() {
  LocalShard().breaker_opens.fetch_add(1, std::memory_order_relaxed);
}

namespace {
/// Latency at quantile `q` from a merged histogram via bucket interpolation.
double Percentile(const std::array<int64_t, LatencyRecorder::kLatencyBuckets>&
                      hist,
                  int64_t total, double q) {
  if (total <= 0) return 0.0;
  double target = q * static_cast<double>(total);
  int64_t seen = 0;
  for (int64_t b = 0; b < LatencyRecorder::kLatencyBuckets; ++b) {
    seen += hist[b];
    if (static_cast<double>(seen) >= target) {
      return LatencyRecorder::BucketValue(b);
    }
  }
  return LatencyRecorder::BucketValue(LatencyRecorder::kLatencyBuckets - 1);
}
}  // namespace

LatencyRecorder::Totals LatencyRecorder::MergeShards() const {
  Totals totals;
  for (const Shard& s : shards_) {
    totals.count += s.count.load(std::memory_order_relaxed);
    totals.rejects += s.rejects.load(std::memory_order_relaxed);
    totals.timeouts += s.timeouts.load(std::memory_order_relaxed);
    totals.retries += s.retries.load(std::memory_order_relaxed);
    totals.degraded += s.degraded.load(std::memory_order_relaxed);
    totals.degraded_stale +=
        s.degraded_stale.load(std::memory_order_relaxed);
    totals.degraded_empty +=
        s.degraded_empty.load(std::memory_order_relaxed);
    totals.breaker_opens += s.breaker_opens.load(std::memory_order_relaxed);
    totals.sum_micros += s.sum_micros.load(std::memory_order_relaxed);
    for (int64_t b = 0; b < kLatencyBuckets; ++b) {
      totals.latency_hist[b] += s.latency_hist[b].load(std::memory_order_relaxed);
    }
    for (int64_t b = 0; b <= kMaxTrackedBatch; ++b) {
      totals.batch_hist[b] += s.batch_hist[b].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

LatencySnapshot LatencyRecorder::BuildSnapshot(const Totals& totals,
                                               double elapsed_seconds) {
  LatencySnapshot snap;
  snap.elapsed_seconds = elapsed_seconds;
  snap.count = totals.count;
  snap.rejects = totals.rejects;
  snap.timeouts = totals.timeouts;
  snap.shed = totals.rejects + totals.timeouts;
  snap.retries = totals.retries;
  snap.degraded = totals.degraded;
  snap.degraded_stale = totals.degraded_stale;
  snap.degraded_empty = totals.degraded_empty;
  snap.breaker_opens = totals.breaker_opens;
  if (snap.count > 0) {
    snap.mean_micros = static_cast<double>(totals.sum_micros) /
                       static_cast<double>(snap.count);
  }
  if (snap.elapsed_seconds > 0.0) {
    snap.qps = static_cast<double>(snap.count) / snap.elapsed_seconds;
  }
  snap.p50_micros = Percentile(totals.latency_hist, snap.count, 0.50);
  snap.p95_micros = Percentile(totals.latency_hist, snap.count, 0.95);
  snap.p99_micros = Percentile(totals.latency_hist, snap.count, 0.99);

  int64_t batches = 0, batch_sum = 0;
  for (int64_t b = 0; b <= kMaxTrackedBatch; ++b) {
    if (totals.batch_hist[b] > 0) {
      snap.batch_histogram.emplace_back(b, totals.batch_hist[b]);
      batches += totals.batch_hist[b];
      batch_sum += b * totals.batch_hist[b];
    }
  }
  if (batches > 0) {
    snap.mean_batch_size =
        static_cast<double>(batch_sum) / static_cast<double>(batches);
  }
  return snap;
}

LatencySnapshot LatencyRecorder::Snapshot() const {
  return BuildSnapshot(MergeShards(), timer_.ElapsedSeconds());
}

LatencySnapshot LatencyRecorder::IntervalSnapshot() {
  MutexLock lock(&interval_mu_);
  Totals now = MergeShards();
  Totals delta;
  delta.count = now.count - interval_base_.count;
  delta.rejects = now.rejects - interval_base_.rejects;
  delta.timeouts = now.timeouts - interval_base_.timeouts;
  delta.retries = now.retries - interval_base_.retries;
  delta.degraded = now.degraded - interval_base_.degraded;
  delta.degraded_stale = now.degraded_stale - interval_base_.degraded_stale;
  delta.degraded_empty = now.degraded_empty - interval_base_.degraded_empty;
  delta.breaker_opens = now.breaker_opens - interval_base_.breaker_opens;
  delta.sum_micros = now.sum_micros - interval_base_.sum_micros;
  for (int64_t b = 0; b < kLatencyBuckets; ++b) {
    delta.latency_hist[b] =
        now.latency_hist[b] - interval_base_.latency_hist[b];
  }
  for (int64_t b = 0; b <= kMaxTrackedBatch; ++b) {
    delta.batch_hist[b] = now.batch_hist[b] - interval_base_.batch_hist[b];
  }
  double window_seconds = interval_timer_.ElapsedSeconds();
  interval_base_ = now;
  interval_timer_.Reset();
  return BuildSnapshot(delta, window_seconds);
}

std::string LatencySnapshot::ToString() const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "requests %lld  qps %.1f  rejects %lld  timeouts %lld\n",
                static_cast<long long>(count), qps,
                static_cast<long long>(rejects),
                static_cast<long long>(timeouts));
  out += line;
  if (retries > 0 || degraded > 0 || breaker_opens > 0) {
    std::snprintf(line, sizeof(line),
                  "faults: retries %lld  degraded %lld (stale %lld, empty "
                  "%lld)  breaker opens %lld  shed %lld\n",
                  static_cast<long long>(retries),
                  static_cast<long long>(degraded),
                  static_cast<long long>(degraded_stale),
                  static_cast<long long>(degraded_empty),
                  static_cast<long long>(breaker_opens),
                  static_cast<long long>(shed));
    out += line;
  }
  if (has_feature_store) {
    std::snprintf(line, sizeof(line),
                  "feature store: entries %lld  stale hits %lld  misses "
                  "%lld  evictions %lld  prefetch issued %lld  hits %lld  "
                  "discarded %lld  cancelled %lld\n",
                  static_cast<long long>(fs_cache_entries),
                  static_cast<long long>(fs_stale_hits),
                  static_cast<long long>(fs_stale_misses),
                  static_cast<long long>(fs_evictions),
                  static_cast<long long>(fs_prefetch_issued),
                  static_cast<long long>(fs_prefetch_hits),
                  static_cast<long long>(fs_prefetch_discarded),
                  static_cast<long long>(fs_prefetch_cancelled));
    out += line;
    if (fs_stale_expired > 0 || fs_served_staleness_p99 > 0) {
      std::snprintf(line, sizeof(line),
                    "staleness: expired %lld  served p50 %lld us  p99 %lld "
                    "us\n",
                    static_cast<long long>(fs_stale_expired),
                    static_cast<long long>(fs_served_staleness_p50),
                    static_cast<long long>(fs_served_staleness_p99));
      out += line;
    }
  }
  if (fs_journal_enabled) {
    std::snprintf(line, sizeof(line),
                  "journal: appends %lld  fsyncs %lld  write failures %lld  "
                  "recovered %lld  truncated tail %lld B\n",
                  static_cast<long long>(fs_journal_appends),
                  static_cast<long long>(fs_journal_fsyncs),
                  static_cast<long long>(fs_journal_write_failures),
                  static_cast<long long>(fs_journal_recovered),
                  static_cast<long long>(fs_journal_truncated_tail_bytes));
    out += line;
  }
  if (has_breaker) {
    std::snprintf(line, sizeof(line),
                  "breaker: state %s  opens %lld  closes %lld  "
                  "short-circuits %lld\n",
                  breaker_state.c_str(),
                  static_cast<long long>(breaker_open_count),
                  static_cast<long long>(breaker_close_count),
                  static_cast<long long>(breaker_short_circuits));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "latency micros: mean %.0f  p50 %.0f  p95 %.0f  p99 %.0f\n",
                mean_micros, p50_micros, p95_micros, p99_micros);
  out += line;
  if (!batch_histogram.empty()) {
    std::snprintf(line, sizeof(line), "batch size: mean %.2f  dist ",
                  mean_batch_size);
    out += line;
    for (const auto& [size, n] : batch_histogram) {
      std::snprintf(line, sizeof(line), "%lldx%lld ",
                    static_cast<long long>(size), static_cast<long long>(n));
      out += line;
    }
    out += '\n';
  }
  return out;
}

std::string LatencySnapshot::ToJson() const {
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\"count\":%lld,\"rejects\":%lld,\"timeouts\":%lld,"
      "\"shed\":%lld,\"retries\":%lld,\"degraded\":%lld,"
      "\"degraded_stale\":%lld,\"degraded_empty\":%lld,"
      "\"breaker_opens\":%lld,"
      "\"elapsed_seconds\":%.3f,\"qps\":%.1f,\"mean_micros\":%.1f,"
      "\"p50_micros\":%.1f,\"p95_micros\":%.1f,\"p99_micros\":%.1f,"
      "\"mean_batch_size\":%.2f",
      static_cast<long long>(count), static_cast<long long>(rejects),
      static_cast<long long>(timeouts), static_cast<long long>(shed),
      static_cast<long long>(retries), static_cast<long long>(degraded),
      static_cast<long long>(degraded_stale),
      static_cast<long long>(degraded_empty),
      static_cast<long long>(breaker_opens), elapsed_seconds, qps,
      mean_micros, p50_micros, p95_micros, p99_micros, mean_batch_size);
  std::string out = buf;
  if (has_breaker) {
    std::snprintf(buf, sizeof(buf),
                  ",\"breaker_state\":\"%s\",\"breaker_open_count\":%lld,"
                  "\"breaker_close_count\":%lld,"
                  "\"breaker_short_circuits\":%lld",
                  breaker_state.c_str(),
                  static_cast<long long>(breaker_open_count),
                  static_cast<long long>(breaker_close_count),
                  static_cast<long long>(breaker_short_circuits));
    out += buf;
  }
  if (has_feature_store || fs_journal_enabled) {
    // The nested block is emitted whenever any store telemetry exists —
    // the journal counters ride along even when the LRU cache (and so
    // has_feature_store) is off.
    std::snprintf(
        buf, sizeof(buf),
        ",\"feature_store\":{\"fresh_fetches\":%lld,"
        "\"fetch_failures\":%lld,\"cache_entries\":%lld,"
        "\"stale_hits\":%lld,\"stale_misses\":%lld,"
        "\"insertions\":%lld,\"evictions\":%lld,"
        "\"prefetch_issued\":%lld,\"prefetch_hits\":%lld,"
        "\"prefetch_discarded\":%lld,\"prefetch_cancelled\":%lld,"
        "\"stale_expired\":%lld,"
        "\"served_staleness_p50\":%lld,\"served_staleness_p99\":%lld,"
        "\"journal_enabled\":%s,\"journal_appends\":%lld,"
        "\"journal_fsyncs\":%lld,\"journal_write_failures\":%lld,"
        "\"journal_recovered\":%lld,"
        "\"journal_truncated_tail_bytes\":%lld}",
        static_cast<long long>(fs_fresh_fetches),
        static_cast<long long>(fs_fetch_failures),
        static_cast<long long>(fs_cache_entries),
        static_cast<long long>(fs_stale_hits),
        static_cast<long long>(fs_stale_misses),
        static_cast<long long>(fs_insertions),
        static_cast<long long>(fs_evictions),
        static_cast<long long>(fs_prefetch_issued),
        static_cast<long long>(fs_prefetch_hits),
        static_cast<long long>(fs_prefetch_discarded),
        static_cast<long long>(fs_prefetch_cancelled),
        static_cast<long long>(fs_stale_expired),
        static_cast<long long>(fs_served_staleness_p50),
        static_cast<long long>(fs_served_staleness_p99),
        fs_journal_enabled ? "true" : "false",
        static_cast<long long>(fs_journal_appends),
        static_cast<long long>(fs_journal_fsyncs),
        static_cast<long long>(fs_journal_write_failures),
        static_cast<long long>(fs_journal_recovered),
        static_cast<long long>(fs_journal_truncated_tail_bytes));
    out += buf;
  }
  out += '}';
  return out;
}

}  // namespace basm::runtime
