file(REMOVE_RECURSE
  "../bench/fig10_tsne_timeperiod"
  "../bench/fig10_tsne_timeperiod.pdb"
  "CMakeFiles/fig10_tsne_timeperiod.dir/fig10_tsne_timeperiod.cc.o"
  "CMakeFiles/fig10_tsne_timeperiod.dir/fig10_tsne_timeperiod.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_tsne_timeperiod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
