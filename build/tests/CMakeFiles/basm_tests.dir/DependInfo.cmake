
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ab_stats_test.cc" "tests/CMakeFiles/basm_tests.dir/ab_stats_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/ab_stats_test.cc.o.d"
  "/root/repo/tests/analysis_test.cc" "tests/CMakeFiles/basm_tests.dir/analysis_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/analysis_test.cc.o.d"
  "/root/repo/tests/autograd_test.cc" "tests/CMakeFiles/basm_tests.dir/autograd_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/autograd_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/basm_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/contract_death_test.cc" "tests/CMakeFiles/basm_tests.dir/contract_death_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/contract_death_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/basm_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/data_test.cc" "tests/CMakeFiles/basm_tests.dir/data_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/data_test.cc.o.d"
  "/root/repo/tests/io_test.cc" "tests/CMakeFiles/basm_tests.dir/io_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/io_test.cc.o.d"
  "/root/repo/tests/metrics_test.cc" "tests/CMakeFiles/basm_tests.dir/metrics_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/metrics_test.cc.o.d"
  "/root/repo/tests/models_test.cc" "tests/CMakeFiles/basm_tests.dir/models_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/models_test.cc.o.d"
  "/root/repo/tests/nn_extras_test.cc" "tests/CMakeFiles/basm_tests.dir/nn_extras_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/nn_extras_test.cc.o.d"
  "/root/repo/tests/nn_test.cc" "tests/CMakeFiles/basm_tests.dir/nn_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/nn_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/basm_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/serialize_test.cc" "tests/CMakeFiles/basm_tests.dir/serialize_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/serialize_test.cc.o.d"
  "/root/repo/tests/serving_test.cc" "tests/CMakeFiles/basm_tests.dir/serving_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/serving_test.cc.o.d"
  "/root/repo/tests/tensor_test.cc" "tests/CMakeFiles/basm_tests.dir/tensor_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/tensor_test.cc.o.d"
  "/root/repo/tests/train_test.cc" "tests/CMakeFiles/basm_tests.dir/train_test.cc.o" "gcc" "tests/CMakeFiles/basm_tests.dir/train_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/basm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
