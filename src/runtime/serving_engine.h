#ifndef BASM_RUNTIME_SERVING_ENGINE_H_
#define BASM_RUNTIME_SERVING_ENGINE_H_

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <memory>
#include <vector>

#include "common/blocking_queue.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "common/thread_pool.h"
#include "runtime/latency_recorder.h"
#include "runtime/micro_batcher.h"
#include "serving/pipeline.h"

namespace basm::runtime {

struct EngineConfig {
  /// Scoring worker threads pulling micro-batches off the request queue.
  int32_t num_workers = 4;
  /// Bounded request backlog; submissions beyond it are rejected.
  size_t queue_capacity = 256;
  /// Requests coalesced into one model forward (see BatchPolicy).
  int64_t max_batch_requests = 4;
  int64_t max_wait_micros = 200;
  /// Adaptive batching (see BatchPolicy): queue backlog at which the
  /// batching window widens to `adaptive_wait_micros`. 0 keeps the fixed
  /// `max_wait_micros` window regardless of pressure.
  int64_t adaptive_pressure_depth = 0;
  int64_t adaptive_wait_micros = 0;
  /// Deadline applied when Submit is called without one. A request whose
  /// deadline passes before a worker picks it up is dropped with
  /// DEADLINE_EXCEEDED (doomed work is shed, not scored).
  int64_t default_deadline_micros = 100000;
  /// Base seed for per-request recall sampling streams.
  uint64_t seed = 0xE57E;
  /// Extra threads for intra-batch parallel scoring: a micro-batch's
  /// concatenated candidate rows are split into contiguous shards scored on
  /// these threads plus the owning worker. 0 (default) scores each batch on
  /// its worker alone. Shard results land at fixed offsets, so slates stay
  /// bit-identical to serial scoring either way.
  int32_t scoring_threads = 0;
  /// Minimum rows per shard; batches under twice this never split.
  int64_t min_rows_per_shard = 64;
  /// Async feature-prefetch threads: while a worker scores its current
  /// micro-batch, up to `prefetch_window` queued requests get their ABFS
  /// windows fetched into the feature store's cache, so the next batch's
  /// feature stage is a cache hit instead of a round-trip. 0 (default)
  /// disables prefetch. Prefetched windows are version-guarded against
  /// concurrent clicks, so slates stay bit-identical either way.
  int32_t prefetch_threads = 0;
  /// Bound on prefetches in flight at once (per engine).
  int64_t prefetch_window = 8;
};

/// Outcome of one engine request: an OK status with the ranked slate, or a
/// reject/timeout/shutdown status with an empty slate.
struct SlateResult {
  Status status;
  std::vector<serving::RankedItem> slate;
  /// Registry version of the model that scored this slate (0 when the
  /// pipeline serves a static model, or on non-OK results). Under online
  /// learning this is the staleness audit trail of every impression.
  uint64_t model_version = 0;
  /// True when the slate was served degraded (feature fetch failed or was
  /// short-circuited, or recall fell back to the city-head pool) — status
  /// is still OK, the slate still renders.
  bool degraded = false;
  /// How the *feature window* degraded: kStale means the slate was scored
  /// with the user's last-known behavior window from the feature store,
  /// kEmpty with no window at all. kNone covers both the healthy path and
  /// recall-only degradation (candidates fell back, features were fine).
  enum class DegradedMode { kNone, kEmpty, kStale };
  DegradedMode degraded_mode = DegradedMode::kNone;
  /// Age of the stale window served (0 unless degraded_mode == kStale).
  int64_t stale_age_micros = 0;
};

/// Concurrent front door for serving::Pipeline — the RTP tier of the
/// paper's Fig 13 deployment: a bounded request queue with reject-on-full
/// backpressure, N scoring workers, dynamic micro-batching that coalesces
/// concurrent requests into one model forward (PredictProbs is already
/// batch-oriented), and wait-free latency/qps accounting.
///
/// Workers score under autograd inference mode (NoGradGuard), which is both
/// faster and what makes a shared model safe: eval-mode forwards are pure
/// reads, and introspection caches are skipped. Slates are bit-identical to
/// serial Pipeline::RankCandidates on the same candidates.
///
/// Hot-swap: each micro-batch acquires the pipeline's current servable
/// (Pipeline::AcquireServable) once and scores the whole batch on it.
/// When the pipeline is backed by an online::ModelSlot, an OnlineTrainer
/// can therefore publish new versions mid-load: in-flight batches finish
/// on the version they acquired, later batches pick up the new one, and no
/// request is dropped or blocked by the swap.
class ServingEngine {
 public:
  /// The pipeline is borrowed and must outlive the engine; its model must
  /// already be in eval mode (for a slot-backed pipeline, a model must
  /// already be installed).
  ServingEngine(const serving::Pipeline* pipeline, EngineConfig config);

  /// Drains and stops (equivalent to Shutdown()).
  ~ServingEngine();

  ServingEngine(const ServingEngine&) = delete;
  ServingEngine& operator=(const ServingEngine&) = delete;

  /// Submits a request; the engine runs recall itself from a per-request
  /// deterministic RNG stream. Never blocks: a full queue resolves the
  /// future immediately with UNAVAILABLE.
  std::future<SlateResult> Submit(const serving::Request& request);

  /// Submits with an explicit candidate list (no recall) — the path the
  /// simulator and the bit-identity tests use.
  std::future<SlateResult> Submit(const serving::Request& request,
                                  std::vector<int32_t> candidates);

  /// Full form: explicit candidates (empty = recall inside) and deadline.
  std::future<SlateResult> Submit(const serving::Request& request,
                                  std::vector<int32_t> candidates,
                                  int64_t deadline_micros);

  /// Completion-callback delivery of one SlateResult. Fires exactly once
  /// per submit, from whichever thread resolves the request.
  using SlateCallback = std::function<void(SlateResult)>;

  /// Callback form of Submit — the completion path of the event-loop RPC
  /// frontend: instead of parking a thread on a future, `done` is invoked
  /// exactly once with the SlateResult. It runs on the scoring worker that
  /// finished the micro-batch, or inline on the submitting thread when the
  /// request is rejected up front (queue full / engine shut down / deadline
  /// already passed). `done` must be non-blocking and must not call back
  /// into Shutdown(); the IO tier posts the result to its completion queue
  /// and returns.
  void SubmitWithCallback(const serving::Request& request,
                          std::vector<int32_t> candidates,
                          int64_t deadline_micros, SlateCallback done);

  /// Stops accepting requests, lets workers drain the backlog, joins them.
  /// Idempotent and safe under concurrent callers; the destructor calls it.
  void Shutdown() BASM_EXCLUDES(shutdown_mu_);

  /// Live metrics since construction (or the last ResetStatsClock()).
  /// When the pipeline has a feature breaker armed, the snapshot carries
  /// its current state and transition counters (see LatencySnapshot).
  LatencySnapshot Stats() const {
    LatencySnapshot snap = recorder_.Snapshot();
    AttachBreakerStats(&snap);
    AttachFeatureStoreStats(&snap);
    return snap;
  }
  /// Metrics since the previous IntervalStats() call — the per-window
  /// qps/percentile feed for periodic logging alongside hot-swaps.
  LatencySnapshot IntervalStats() {
    LatencySnapshot snap = recorder_.IntervalSnapshot();
    AttachBreakerStats(&snap);
    AttachFeatureStoreStats(&snap);
    return snap;
  }

  /// Pending request backlog right now — the admission-control signal the
  /// networked tier's router reads to shed load before a submit can even
  /// reach the bounded queue's reject path.
  size_t QueueDepth() const { return queue_.size(); }
  size_t queue_capacity() const { return queue_.capacity(); }
  /// Restarts the qps clock after warmup without losing histograms.
  void ResetStatsClock() { recorder_.ResetClock(); }

  const EngineConfig& config() const { return config_; }

 private:
  struct Job {
    serving::Request request;
    std::vector<int32_t> candidates;  // empty = recall inside the worker
    std::chrono::steady_clock::time_point enqueue_time;
    std::chrono::steady_clock::time_point deadline;
    std::promise<SlateResult> promise;
    /// Non-null on the callback submit path; the promise is unused then.
    SlateCallback callback;
  };

  /// Delivers `result` to the job's caller: its callback when one was
  /// attached (SubmitWithCallback), its promise otherwise.
  static void Resolve(Job* job, SlateResult result);
  /// Shared tail of both submit paths: enqueue or reject-resolve.
  void Enqueue(std::unique_ptr<Job> job);

  void WorkerLoop();
  void ProcessBatch(std::vector<std::unique_ptr<Job>> jobs);
  /// Overlap stage: peeks at the next `prefetch_window` queued requests and
  /// schedules their feature fetches on the prefetch pool, bounded by the
  /// in-flight window. Called by workers right before scoring, so the
  /// fetches run concurrently with the forward pass.
  void IssuePrefetches();
  /// Folds the pipeline's feature-breaker state/counters into `snap` (a
  /// no-op when no breaker is armed).
  void AttachBreakerStats(LatencySnapshot* snap) const;
  /// Folds the pipeline's feature-store cache/prefetch counters into
  /// `snap` (hit/miss/stale/eviction/prefetch-overlap telemetry).
  void AttachFeatureStoreStats(LatencySnapshot* snap) const;

  const serving::Pipeline* pipeline_;
  EngineConfig config_;
  BlockingQueue<std::unique_ptr<Job>> queue_;
  MicroBatcher<std::unique_ptr<Job>> batcher_;
  LatencyRecorder recorder_;
  /// Const: workers only Fork() per-request child streams from it, so
  /// concurrent reads are safe without a lock.
  const Rng recall_rng_root_;
  /// Serializes Shutdown so concurrent callers cannot double-join workers.
  Mutex shutdown_mu_;
  bool shut_down_ BASM_GUARDED_BY(shutdown_mu_) = false;
  /// Intra-batch scoring shard pool (null when scoring_threads == 0).
  /// Declared before workers_ so shard threads outlive no worker that
  /// submits to them during destruction.
  std::unique_ptr<ThreadPool> scoring_pool_;
  /// Async feature-prefetch pool (null when prefetch_threads == 0);
  /// declared before workers_ for the same shutdown-ordering reason.
  std::unique_ptr<ThreadPool> prefetch_pool_;
  /// Prefetches currently scheduled or running (bounds the window).
  std::atomic<int64_t> prefetch_in_flight_{0};
  /// Declared last: workers start in the constructor after every other
  /// member is live, and ThreadPool's destructor joins them first.
  ThreadPool workers_;
};

}  // namespace basm::runtime

#endif  // BASM_RUNTIME_SERVING_ENGINE_H_
