# Empty dependencies file for fig11_tsne_city.
# This may be replaced when dependencies are built.
