#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/circuit_breaker.h"
#include "common/fault.h"
#include "data/synth.h"
#include "feature_store/feature_store.h"
#include "gtest/gtest.h"
#include "metrics/metrics.h"
#include "core/model_zoo.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

namespace basm::runtime {
namespace {

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  return value == nullptr ? fallback : std::strtoll(value, nullptr, 10);
}

data::SynthConfig ChaosWorldConfig() {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 120;
  c.num_items = 100;
  c.num_cities = 3;
  c.seq_len = 6;
  return c;
}

/// The headline robustness acceptance test: a closed-loop load with 5%
/// injected feature errors + latency spikes, plus one sustained feature
/// outage mid-run. The engine must keep serving — every completed request
/// is OK (some degraded), the breaker is observed opening — and after the
/// fault clears, the breaker closes again and serving fully recovers.
/// The chaos CI job re-runs this under BASM_FAULT_SEED / BASM_FAULT_RATE
/// for different fault processes; the assertions hold for any seed.
TEST(ChaosTest, ServingSurvivesFaultsAndRecovers) {
  const uint64_t seed =
      static_cast<uint64_t>(EnvInt("BASM_FAULT_SEED", 42));
  const double rate = EnvInt("BASM_FAULT_RATE", 5) / 100.0;

  data::World world(ChaosWorldConfig());
  feature_store::FeatureServer features(world, world.config().seq_len, 3);
  // The storm store journals its clicks so the journal fault site is
  // exercised under the same chaos process as the fetch site.
  std::filesystem::path journal_dir =
      std::filesystem::path(::testing::TempDir()) / "basm_chaos_journal";
  std::filesystem::remove_all(journal_dir);
  feature_store::FeatureStoreConfig store_config;
  store_config.journal.dir = journal_dir.string();
  feature_store::FeatureStore store(&features, store_config);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 13);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/12, /*expose_k=*/5);

  // Fault process: `rate` random errors + spikes, and a sustained outage
  // starting at fetch call 150 that only a config change (the "dependency
  // came back" event below) clears.
  FaultInjector injector(seed);
  FaultSiteConfig faults;
  faults.error_probability = rate;
  faults.spike_probability = rate;
  faults.spike_micros = 500;
  faults.outage_start_call = 150;
  faults.outage_calls = 1 << 20;
  injector.Configure(feature_store::kFeatureFetchFaultSite, faults);
  // The journal rides the same injector with a heavy failure rate: an
  // injected append failure must drop the click (counted), never fail the
  // request that carried it.
  FaultSiteConfig journal_faults;
  journal_faults.error_probability = 0.3;
  injector.Configure(feature_store::kJournalFaultSite, journal_faults);
  features.SetFaultInjector(&injector);
  store.journal()->SetFaultInjector(&injector);
  // The pipeline's recall site rides the same injector (unconfigured →
  // clean), not the env default — this test owns its fault process.
  pipeline.SetFaultInjector(&injector);

  CircuitBreakerConfig breaker_config;
  breaker_config.failure_threshold = 5;
  breaker_config.open_micros = 5000;
  breaker_config.close_after_successes = 2;
  CircuitBreaker breaker(breaker_config);

  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 3;
  policy.retry.initial_backoff_micros = 100;
  policy.retry.max_backoff_micros = 1000;
  policy.breaker = &breaker;
  pipeline.EnableFaultTolerance(policy);

  EngineConfig engine_config;
  engine_config.num_workers = 4;
  engine_config.queue_capacity = 256;
  ServingEngine engine(&pipeline, engine_config);

  LoadConfig load;
  load.num_requests = 600;
  load.concurrency = 8;
  load.deadline_micros = 1000000;
  load.seed = seed;
  LoadGenerator generator(world, load);
  LoadReport report = generator.Run(engine);

  // Click traffic lands during the same storm: with a 30% injected journal
  // failure rate, some appends drop (counted below) and every surviving one
  // is journaled — but RecordClick itself never surfaces a failure.
  Rng storm_clicks(seed);
  const int32_t num_users = static_cast<int32_t>(world.config().num_users);
  for (int32_t u = 0; u < num_users; ++u) {
    for (const data::BehaviorEvent& ev :
         world.SampleHistory(u, 3, storm_clicks)) {
      store.RecordClick(u, ev);
    }
  }

  // >= 99% of traffic must complete OK-or-degraded under the fault storm.
  EXPECT_GE(report.ok, (99 * load.num_requests) / 100)
      << report.ToString();
  EXPECT_EQ(report.ok + report.rejected + report.timed_out +
                report.cancelled,
            load.num_requests);
  EXPECT_GT(report.degraded, 0) << "outage produced no degraded slates";
  // The outage hits after ~150 successful fetches populated the cache, so
  // some degraded slates must be served from last-known (stale) windows.
  EXPECT_GT(report.degraded_stale, 0)
      << "no degraded slate fell back to a cached window: "
      << report.ToString();

  LatencySnapshot storm = engine.IntervalStats();
  EXPECT_GT(storm.degraded, 0);
  EXPECT_GT(storm.retries, 0) << "random errors produced no retries";
  ASSERT_TRUE(storm.has_feature_store);
  EXPECT_GT(storm.fs_stale_hits, 0);
  EXPECT_GT(storm.fs_cache_entries, 0);
  EXPECT_NE(storm.ToJson().find("\"feature_store\":{"), std::string::npos)
      << storm.ToJson();
  // 360 clicks at a 30% injected failure rate: both outcomes must be
  // represented, they must account for every click, and the failures must
  // never have escalated beyond the counter.
  feature_store::FeatureStoreStats click_stats = store.stats();
  EXPECT_TRUE(click_stats.journal_enabled);
  EXPECT_GT(click_stats.journal_appends, 0);
  EXPECT_GT(click_stats.journal_write_failures, 0)
      << "30% injected journal faults produced zero drops";
  EXPECT_EQ(click_stats.journal_appends + click_stats.journal_write_failures,
            3 * static_cast<int64_t>(num_users));
  EXPECT_TRUE(storm.fs_journal_enabled);
  EXPECT_NE(storm.ToJson().find("\"journal_enabled\":true"),
            std::string::npos)
      << storm.ToJson();
  EXPECT_GE(storm.breaker_opens, 1)
      << "sustained outage never tripped the breaker";
  CircuitBreaker::Stats tripped = breaker.stats();
  EXPECT_GE(tripped.opens, 1);
  EXPECT_GT(tripped.short_circuits, 0)
      << "open breaker never shed a fetch";

  // The dependency comes back: clear every fault and drive fresh traffic.
  // Half-open probes now succeed, the breaker closes, and serving returns
  // to the healthy path (no new degraded slates).
  injector.Configure(feature_store::kFeatureFetchFaultSite, FaultSiteConfig{});
  LoadConfig recovery_load = load;
  recovery_load.num_requests = 150;
  recovery_load.seed = seed + 1;
  LoadGenerator recovery(world, recovery_load);
  LoadReport recovered = recovery.Run(engine);

  EXPECT_EQ(recovered.ok, recovery_load.num_requests)
      << recovered.ToString();
  CircuitBreaker::Stats healed = breaker.stats();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed)
      << CircuitBreaker::StateName(breaker.state());
  EXPECT_GE(healed.half_opens, 1);
  EXPECT_GE(healed.closes, 1);

  LatencySnapshot after = engine.IntervalStats();
  // The tail of the recovery window is fault-free; at most the first few
  // requests (breaker probes racing the config change) may degrade.
  EXPECT_LT(after.degraded, recovery_load.num_requests / 2);

  engine.Shutdown();
  LatencySnapshot total = engine.Stats();
  EXPECT_EQ(total.count + total.shed,
            load.num_requests + recovery_load.num_requests);
}

/// With fault tolerance armed but a zero-fault process, the engine must
/// behave exactly like the plain engine: no degraded slates, no retries,
/// no breaker activity — the happy path stays the happy path.
TEST(ChaosTest, ArmedButFaultFreeServesClean) {
  data::World world(ChaosWorldConfig());
  feature_store::FeatureServer features(world, world.config().seq_len, 3);
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kDin, world.schema(), 17);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(), 12, 5);

  FaultInjector injector(1);  // configured with no faults anywhere
  features.SetFaultInjector(&injector);
  pipeline.SetFaultInjector(&injector);
  CircuitBreaker breaker;
  serving::FeatureFaultPolicy policy;
  policy.breaker = &breaker;
  pipeline.EnableFaultTolerance(policy);

  ServingEngine engine(&pipeline, EngineConfig{});
  LoadConfig load;
  load.num_requests = 200;
  load.concurrency = 8;
  LoadGenerator generator(world, load);
  LoadReport report = generator.Run(engine);

  EXPECT_EQ(report.ok, load.num_requests);
  EXPECT_EQ(report.degraded, 0);
  EXPECT_EQ(report.degraded_stale, 0);
  EXPECT_EQ(report.degraded_empty, 0);
  LatencySnapshot snapshot = engine.Stats();
  EXPECT_EQ(snapshot.degraded, 0);
  EXPECT_EQ(snapshot.retries, 0);
  EXPECT_EQ(snapshot.breaker_opens, 0);
  // Fault-free traffic still reports feature-store telemetry: every fetch
  // was fresh, nothing fell back to a stale window.
  ASSERT_TRUE(snapshot.has_feature_store);
  EXPECT_GT(snapshot.fs_fresh_fetches, 0);
  EXPECT_EQ(snapshot.fs_stale_hits, 0);
  EXPECT_EQ(snapshot.fs_fetch_failures, 0);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().opens, 0);

  // With a breaker armed, its live state rides along in every snapshot —
  // the periodic metrics export shows breaker health without a side call.
  EXPECT_TRUE(snapshot.has_breaker);
  EXPECT_EQ(snapshot.breaker_state, "closed");
  EXPECT_EQ(snapshot.breaker_open_count, 0);
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"breaker_state\":\"closed\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"breaker_open_count\":0"), std::string::npos) << json;
}

TEST(ChaosTest, BreakerTransitionsAppearInSnapshotExport) {
  data::World world(ChaosWorldConfig());
  feature_store::FeatureServer features(world, world.config().seq_len, 3);
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kDin, world.schema(), 17);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(), 12, 5);

  FaultInjector injector(9);
  FaultSiteConfig kill;
  kill.error_probability = 1.0;
  injector.Configure(feature_store::kFeatureFetchFaultSite, kill);
  features.SetFaultInjector(&injector);
  pipeline.SetFaultInjector(&injector);

  CircuitBreakerConfig breaker_config;
  breaker_config.failure_threshold = 2;
  breaker_config.open_micros = 60 * 1000 * 1000;  // stays open for the test
  CircuitBreaker breaker(breaker_config);
  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 2;
  policy.retry.initial_backoff_micros = 10;
  policy.breaker = &breaker;
  pipeline.EnableFaultTolerance(policy);

  ServingEngine engine(&pipeline, EngineConfig{});
  LoadConfig load;
  load.num_requests = 50;
  load.concurrency = 4;
  LoadGenerator generator(world, load);
  LoadReport report = generator.Run(engine);
  EXPECT_EQ(report.ok, load.num_requests);  // degraded, never failed

  LatencySnapshot snapshot = engine.Stats();
  ASSERT_TRUE(snapshot.has_breaker);
  EXPECT_EQ(snapshot.breaker_state, "open");
  EXPECT_GE(snapshot.breaker_open_count, 1);
  EXPECT_GT(snapshot.breaker_short_circuits, 0);
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"breaker_state\":\"open\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"breaker_short_circuits\":"), std::string::npos)
      << json;
  // The human-readable view carries the same line.
  EXPECT_NE(snapshot.ToString().find("breaker: state open"),
            std::string::npos);
}

/// The stale-vs-empty acceptance drill: when ABFS goes fully dark, slates
/// served from last-known (stale) windows must rank strictly better than
/// slates served from empty windows. Two arms share traffic, candidates,
/// click history, and labels; only the store's cache capacity differs.
/// Ranking quality is measured with the world's ground-truth click model as
/// the scorer — the TAUC gap then isolates the feature window's value,
/// independent of any trained model's quality.
TEST(ChaosTest, StaleWindowsOutrankEmptyWindowsUnderOutage) {
  data::SynthConfig world_config = ChaosWorldConfig();
  // Make the behavior window the dominant ranking signal: this drill
  // measures what the window is worth, so the terms both arms share
  // (taste affinity, popularity, price fit) are turned down and the
  // sequence-match term up. Without this the seq term is second-order
  // and the TAUC gap drowns in label-sampling noise.
  world_config.seq_scale = 3.0f;
  world_config.affinity_scale = 0.2f;
  world_config.pop_scale = 0.2f;
  world_config.price_scale = 0.2f;
  data::World world(world_config);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 13);
  model->SetTraining(false);

  feature_store::FeatureServer server_stale(world, world.config().seq_len, 3);
  feature_store::FeatureServer server_empty(world, world.config().seq_len, 3);
  feature_store::FeatureStoreConfig no_cache;
  no_cache.capacity_per_shard = 0;
  feature_store::FeatureStore store_stale(&server_stale);
  feature_store::FeatureStore store_empty(&server_empty, no_cache);
  serving::Pipeline pipe_stale(world, &store_stale, &recall, model.get(),
                               /*recall_size=*/12, /*expose_k=*/5);
  serving::Pipeline pipe_empty(world, &store_empty, &recall, model.get(),
                               /*recall_size=*/12, /*expose_k=*/5);

  // Each arm owns its injector so this test controls the fault process
  // even under the chaos job's BASM_FAULT_RATE environment.
  FaultInjector injector_stale(7);
  FaultInjector injector_empty(7);
  server_stale.SetFaultInjector(&injector_stale);
  server_empty.SetFaultInjector(&injector_empty);
  pipe_stale.SetFaultInjector(&injector_stale);
  pipe_empty.SetFaultInjector(&injector_empty);
  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 1;  // a dead dependency: retries are futile
  pipe_stale.EnableFaultTolerance(policy);
  pipe_empty.EnableFaultTolerance(policy);

  const int32_t users = static_cast<int32_t>(world.config().num_users);
  // Warm phase: one healthy fetch per user seeds the cached arm's
  // last-known windows (the uncached arm fetches too, for symmetry).
  for (int32_t u = 0; u < users; ++u) {
    (void)store_stale.GetFeatures(u);
    (void)store_empty.GetFeatures(u);
  }
  // New clicks shift every live window away from the cached one, so the
  // cached arm's fallback is genuinely stale, not a disguised fresh fetch.
  Rng click_rng(21);
  for (int32_t u = 0; u < users; ++u) {
    for (const data::BehaviorEvent& ev : world.SampleHistory(u, 3, click_rng)) {
      store_stale.RecordClick(u, ev);
      store_empty.RecordClick(u, ev);
    }
  }

  FaultSiteConfig outage;
  outage.error_probability = 1.0;  // ABFS fully dark
  injector_stale.Configure(feature_store::kFeatureFetchFaultSite, outage);
  injector_empty.Configure(feature_store::kFeatureFetchFaultSite, outage);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::vector<float> scores_stale, scores_empty, labels;
  std::vector<int32_t> groups;
  Rng traffic(33);
  Rng label_rng(44);
  int64_t stale_served = 0, empty_arm_stale = 0;
  const int32_t kRequests = 240;
  for (int32_t r = 0; r < kRequests; ++r) {
    serving::Request req;
    req.user_id = r % users;
    req.hour = world.SampleHour(traffic);
    req.weekday = r % 7;
    req.city = world.user(req.user_id).city;
    req.request_id = r;
    std::vector<int32_t> candidates =
        recall.RecallByCity(req.city, 12, traffic);

    serving::FeatureFetchOutcome out_stale, out_empty;
    std::vector<data::Example> ex_stale =
        pipe_stale.BuildExamplesFallible(req, candidates, deadline, &out_stale);
    std::vector<data::Example> ex_empty =
        pipe_empty.BuildExamplesFallible(req, candidates, deadline, &out_empty);
    ASSERT_TRUE(out_stale.degraded);
    ASSERT_TRUE(out_empty.degraded);
    if (out_stale.stale) {
      ++stale_served;
      EXPECT_GT(out_stale.stale_age_micros, 0);
    }
    empty_arm_stale += out_empty.stale ? 1 : 0;

    // Ground truth: the user's live window (clicks included) — identical
    // in both arms because their click streams are identical.
    std::vector<data::BehaviorEvent> truth =
        server_stale.GetUserFeatures(req.user_id).behaviors;
    ASSERT_EQ(ex_stale.size(), ex_empty.size());
    int32_t tp = static_cast<int32_t>(data::TimePeriodOfHour(req.hour));
    for (size_t i = 0; i < ex_stale.size(); ++i) {
      const data::Example& e = ex_stale[i];
      float p_true = world.ClickProbability(e.user_id, e.item_id, e.hour,
                                            e.position, e.city, truth);
      float score_stale = world.ClickProbability(
          e.user_id, e.item_id, e.hour, e.position, e.city, e.behaviors);
      const data::Example& b = ex_empty[i];
      float score_empty = world.ClickProbability(
          b.user_id, b.item_id, b.hour, b.position, b.city, b.behaviors);
      // Several label draws per impression shrink the Bernoulli noise in
      // the AUC estimate without changing its expectation.
      for (int draw = 0; draw < 4; ++draw) {
        labels.push_back(label_rng.Uniform() < p_true ? 1.0f : 0.0f);
        scores_stale.push_back(score_stale);
        scores_empty.push_back(score_empty);
        groups.push_back(tp);
      }
    }
  }

  // Every user was warmed, so the cached arm degrades stale on every
  // request; the uncached arm can never serve stale.
  EXPECT_EQ(stale_served, kRequests);
  EXPECT_EQ(empty_arm_stale, 0);
  EXPECT_GT(store_stale.stats().stale_hits, 0);
  EXPECT_EQ(store_empty.stats().stale_hits, 0);
  EXPECT_GT(store_empty.stats().stale_misses, 0);

  double tauc_stale = metrics::GroupedAuc(scores_stale, labels, groups);
  double tauc_empty = metrics::GroupedAuc(scores_empty, labels, groups);
  EXPECT_GT(tauc_stale, tauc_empty)
      << "stale TAUC " << tauc_stale << " vs empty TAUC " << tauc_empty;
}

/// The TTL acceptance drill: with a staleness budget configured, an outage
/// first degrades to cached windows — every one provably younger than the
/// budget — and once the cache outlives the budget, degrades the rest of
/// the way to empty. The store must never serve a window older than its
/// budget, no matter how long the outage lasts.
TEST(ChaosTest, TtlBudgetBoundsServedStalenessThenDegradesToEmpty) {
  data::World world(ChaosWorldConfig());
  feature_store::FeatureServer features(world, world.config().seq_len, 3);
  feature_store::FeatureStoreConfig store_config;
  store_config.max_stale_age_micros = 1'000'000;  // 1s staleness budget
  feature_store::FeatureStore store(&features, store_config);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kDin, world.schema(), 17);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(), 12, 5);

  FaultInjector injector(11);  // this test owns its fault process
  features.SetFaultInjector(&injector);
  pipeline.SetFaultInjector(&injector);
  serving::FeatureFaultPolicy policy;
  policy.retry.max_attempts = 1;  // a dead dependency: retries are futile
  pipeline.EnableFaultTolerance(policy);

  // Warm every user's last-known window, then take ABFS fully dark.
  const int32_t users = static_cast<int32_t>(world.config().num_users);
  for (int32_t u = 0; u < users; ++u) {
    (void)store.GetFeatures(u);
  }
  FaultSiteConfig outage;
  outage.error_probability = 1.0;
  injector.Configure(feature_store::kFeatureFetchFaultSite, outage);

  ServingEngine engine(&pipeline, EngineConfig{});
  // Phase 1: the outage starts inside the budget. Some slates serve stale,
  // and — the acceptance property — zero served windows exceed the budget,
  // by construction of the TTL gate rather than by lucky timing.
  LoadConfig load;
  load.num_requests = 150;
  load.concurrency = 8;
  LoadGenerator within_budget(world, load);
  LoadReport phase1 = within_budget.Run(engine);
  EXPECT_EQ(phase1.ok, load.num_requests) << phase1.ToString();
  EXPECT_GT(phase1.degraded_stale, 0) << phase1.ToString();
  EXPECT_LE(phase1.stale_age_max_micros, store_config.max_stale_age_micros)
      << phase1.ToString();
  EXPECT_LE(phase1.stale_age_p99_micros, phase1.stale_age_max_micros);
  feature_store::FeatureStoreStats mid = store.stats();
  EXPECT_GT(mid.served_staleness_p50_micros, 0);
  EXPECT_GE(mid.served_staleness_p99_micros, mid.served_staleness_p50_micros);

  // Phase 2: outlive the budget. Every cached window is now older than 1s,
  // so the TTL gate refuses them all — stale fallbacks vanish and the same
  // traffic degrades to cold-start (empty) windows instead.
  std::this_thread::sleep_for(std::chrono::milliseconds(1200));
  LoadConfig late_load = load;
  late_load.seed = load.seed + 1;
  LoadGenerator beyond_budget(world, late_load);
  LoadReport phase2 = beyond_budget.Run(engine);
  EXPECT_EQ(phase2.ok, late_load.num_requests) << phase2.ToString();
  EXPECT_EQ(phase2.degraded_stale, 0) << phase2.ToString();
  EXPECT_GT(phase2.degraded_empty, 0) << phase2.ToString();

  feature_store::FeatureStoreStats after = store.stats();
  EXPECT_GT(after.stale_expired, 0);
  // The expired windows were refused, not served: the staleness histogram
  // still has no entry beyond the budget.
  EXPECT_LE(after.served_staleness_p99_micros,
            store_config.max_stale_age_micros);

  engine.Shutdown();
  LatencySnapshot snapshot = engine.Stats();
  ASSERT_TRUE(snapshot.has_feature_store);
  EXPECT_GT(snapshot.fs_stale_expired, 0);
  std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"stale_expired\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"served_staleness_p99\":"), std::string::npos)
      << json;
}

}  // namespace
}  // namespace basm::runtime
