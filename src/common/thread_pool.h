#ifndef BASM_COMMON_THREAD_POOL_H_
#define BASM_COMMON_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/synchronization.h"

namespace basm {

/// Fixed-size worker pool over a bounded BlockingQueue. Tasks are plain
/// closures; a task that throws is logged and swallowed so one bad request
/// can never take a serving worker down with it.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. `queue_capacity` bounds the backlog;
  /// Submit blocks when it is full (engine-level backpressure lives in the
  /// engine's own request queue, not here).
  explicit ThreadPool(int32_t num_threads, size_t queue_capacity = 1024);

  /// Joins all workers; queued tasks finish first (drain semantics).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; blocks while the backlog is full. Returns false once
  /// the pool is shut down.
  bool Submit(std::function<void()> task);

  /// Stops accepting tasks, drains the backlog, joins all workers.
  /// Idempotent, and safe to call from several threads at once (the
  /// lifecycle mutex makes exactly one caller perform each join).
  void Shutdown() BASM_EXCLUDES(mu_);

  int32_t num_threads() const { return num_threads_; }

 private:
  void WorkerLoop();

  const int32_t num_threads_;
  BlockingQueue<std::function<void()>> tasks_;
  /// Guards the joins: threads_ is written once in the constructor
  /// (single-threaded by construction) and consumed by Shutdown.
  Mutex mu_;
  std::vector<std::thread> threads_ BASM_GUARDED_BY(mu_);
};

}  // namespace basm

#endif  // BASM_COMMON_THREAD_POOL_H_
