#include <memory>

#include "core/basm_model.h"
#include "core/stabt.h"
#include "core/stael.h"
#include "core/ststl.h"
#include "data/batch.h"
#include "data/synth.h"
#include "gtest/gtest.h"
#include "optim/optimizer.h"
#include "tensor/tensor_ops.h"
#include "tests/test_util.h"

namespace basm::core {
namespace {

namespace ag = ::basm::autograd;

TEST(StAELTest, AlphaRangeAndShape) {
  Rng rng(1);
  StAEL stael({6, 4}, /*ctx_dim=*/5, rng);
  ag::Variable f0 = ag::Variable::Constant(Tensor::Normal({8, 6}, 0, 1, rng));
  ag::Variable f1 = ag::Variable::Constant(Tensor::Normal({8, 4}, 0, 1, rng));
  ag::Variable ctx = ag::Variable::Constant(Tensor::Normal({8, 5}, 0, 1, rng));
  auto out = stael.Forward({f0, f1}, ctx);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].value().cols(), 6);
  EXPECT_EQ(out[1].value().cols(), 4);
  const Tensor& alphas = stael.last_alphas();
  EXPECT_EQ(alphas.rows(), 8);
  EXPECT_EQ(alphas.cols(), 2);
  for (int64_t i = 0; i < alphas.numel(); ++i) {
    EXPECT_GT(alphas[i], 0.0f);
    EXPECT_LT(alphas[i], 2.0f);  // 2*sigmoid range (Eq. 6)
  }
}

TEST(StAELTest, OutputIsAlphaTimesInput) {
  Rng rng(2);
  StAEL stael({3}, 2, rng);
  Tensor field_t = Tensor::Normal({4, 3}, 0, 1, rng);
  ag::Variable field = ag::Variable::Constant(field_t);
  ag::Variable ctx = ag::Variable::Constant(Tensor::Normal({4, 2}, 0, 1, rng));
  auto out = stael.Forward({field}, ctx);
  const Tensor& alphas = stael.last_alphas();
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(out[0].value().at(i, j), alphas.at(i, 0) * field_t.at(i, j),
                  1e-5f);
    }
  }
}

TEST(StAELTest, AlphaDependsOnContext) {
  Rng rng(3);
  StAEL stael({4}, 3, rng);
  ag::Variable field = ag::Variable::Constant(Tensor::Normal({2, 4}, 0, 1, rng));
  ag::Variable ctx1 = ag::Variable::Constant(Tensor::Normal({2, 3}, 0, 2, rng));
  ag::Variable ctx2 = ag::Variable::Constant(Tensor::Normal({2, 3}, 0, 2, rng));
  stael.Forward({field}, ctx1);
  Tensor a1 = stael.last_alphas();
  stael.Forward({field}, ctx2);
  Tensor a2 = stael.last_alphas();
  EXPECT_GT(ops::MaxAbsDiff(a1, a2), 1e-6f);
}

TEST(StAELTest, CustomGateScaleBoundsRange) {
  Rng rng(4);
  StAEL stael({4}, 3, rng, /*gate_scale=*/1.0f);
  ag::Variable field =
      ag::Variable::Constant(Tensor::Normal({16, 4}, 0, 3, rng));
  ag::Variable ctx = ag::Variable::Constant(Tensor::Normal({16, 3}, 0, 3, rng));
  stael.Forward({field}, ctx);
  for (int64_t i = 0; i < stael.last_alphas().numel(); ++i) {
    EXPECT_LT(stael.last_alphas()[i], 1.0f);
  }
}

TEST(StAELTest, GradientsFlowThroughGates) {
  Rng rng(5);
  auto stael = std::make_shared<StAEL>(std::vector<int64_t>{3}, 2, rng);
  std::vector<ag::Variable> leaves = {
      ag::Variable::Leaf(Tensor::Normal({3, 3}, 0, 0.5f, rng), true),
      ag::Variable::Leaf(Tensor::Normal({3, 2}, 0, 0.5f, rng), true),
  };
  basm::testing::CheckGradients(leaves, [&] {
    auto out = stael->Forward({leaves[0]}, leaves[1]);
    return ag::SumAll(ag::Mul(out[0], out[0]));
  });
}

TEST(StSTLTest, OutputShapeAndConditionSensitivity) {
  Rng rng(6);
  StSTL ststl(/*input=*/10, /*ctx=*/4, /*behavior=*/6, /*out=*/8, /*rank=*/3,
              rng);
  ag::Variable h = ag::Variable::Constant(Tensor::Normal({5, 10}, 0, 1, rng));
  ag::Variable ctx1 = ag::Variable::Constant(Tensor::Normal({5, 4}, 0, 1, rng));
  ag::Variable ctx2 = ag::Variable::Constant(Tensor::Normal({5, 4}, 0, 1, rng));
  ag::Variable ui = ag::Variable::Constant(Tensor::Normal({5, 6}, 0, 1, rng));
  Tensor y1 = ststl.Forward(h, ctx1, ui).value();
  Tensor y2 = ststl.Forward(h, ctx2, ui).value();
  EXPECT_EQ(y1.rows(), 5);
  EXPECT_EQ(y1.cols(), 8);
  // The dynamic parameters must change with the spatiotemporal condition.
  EXPECT_GT(ops::MaxAbsDiff(y1, y2), 1e-6f);
}

TEST(StSTLTest, BehaviorInputMatters) {
  Rng rng(7);
  StSTL ststl(10, 4, 6, 8, 3, rng);
  ag::Variable h = ag::Variable::Constant(Tensor::Normal({5, 10}, 0, 1, rng));
  ag::Variable ctx = ag::Variable::Constant(Tensor::Normal({5, 4}, 0, 1, rng));
  ag::Variable ui1 = ag::Variable::Constant(Tensor::Normal({5, 6}, 0, 1, rng));
  ag::Variable ui2 = ag::Variable::Constant(Tensor::Normal({5, 6}, 0, 1, rng));
  EXPECT_GT(ops::MaxAbsDiff(ststl.Forward(h, ctx, ui1).value(),
                            ststl.Forward(h, ctx, ui2).value()),
            1e-6f);
}

TEST(StABTTest, OutputShape) {
  Rng rng(8);
  StABT tower(12, {16, 8}, /*ctx_dim=*/5, rng, /*adaptive=*/true);
  tower.SetTraining(true);
  ag::Variable x = ag::Variable::Constant(Tensor::Normal({6, 12}, 0, 1, rng));
  ag::Variable ctx = ag::Variable::Constant(Tensor::Normal({6, 5}, 0, 1, rng));
  Tensor y = tower.Forward(x, ctx).value();
  EXPECT_EQ(y.rows(), 6);
  EXPECT_EQ(y.cols(), 8);
  EXPECT_FALSE(y.HasNonFinite());
}

TEST(StABTTest, AdaptiveRespondsToContext) {
  Rng rng(9);
  StABT tower(12, {16, 8}, 5, rng, true);
  tower.SetTraining(false);  // eval: no batch-stat coupling between rows
  ag::Variable x = ag::Variable::Constant(Tensor::Normal({6, 12}, 0, 1, rng));
  ag::Variable ctx1 = ag::Variable::Constant(Tensor::Normal({6, 5}, 0, 1, rng));
  ag::Variable ctx2 = ag::Variable::Constant(Tensor::Normal({6, 5}, 0, 1, rng));
  EXPECT_GT(ops::MaxAbsDiff(tower.Forward(x, ctx1).value(),
                            tower.Forward(x, ctx2).value()),
            1e-6f);
}

TEST(StABTTest, NonAdaptiveIgnoresContext) {
  Rng rng(10);
  StABT tower(12, {16, 8}, 5, rng, /*adaptive=*/false);
  tower.SetTraining(false);
  ag::Variable x = ag::Variable::Constant(Tensor::Normal({6, 12}, 0, 1, rng));
  ag::Variable ctx1 = ag::Variable::Constant(Tensor::Normal({6, 5}, 0, 1, rng));
  ag::Variable ctx2 = ag::Variable::Constant(Tensor::Normal({6, 5}, 0, 1, rng));
  EXPECT_TRUE(ops::AllClose(tower.Forward(x, ctx1).value(),
                            tower.Forward(x, ctx2).value()));
}

TEST(StABTTest, NonAdaptiveHasFewerParameters) {
  Rng rng(11);
  StABT adaptive(12, {16, 8}, 5, rng, true);
  StABT plain(12, {16, 8}, 5, rng, false);
  EXPECT_GT(adaptive.ParameterCount(), plain.ParameterCount());
}

class BasmModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SynthConfig c = data::SynthConfig::Eleme();
    c.num_users = 150;
    c.num_items = 120;
    c.num_cities = 4;
    c.requests_per_day = 25;
    c.days = 2;
    c.test_day = 1;
    c.seq_len = 5;
    dataset_ = new data::Dataset(data::GenerateDataset(c));
    auto train = dataset_->TrainExamples();
    std::vector<const data::Example*> slice(train.begin(),
                                            train.begin() + 12);
    batch_ = new data::Batch(data::MakeBatch(slice, dataset_->schema));
  }
  static void TearDownTestSuite() {
    delete batch_;
    delete dataset_;
  }
  static data::Dataset* dataset_;
  static data::Batch* batch_;
};

data::Dataset* BasmModelTest::dataset_ = nullptr;
data::Batch* BasmModelTest::batch_ = nullptr;

TEST_F(BasmModelTest, FullModelForward) {
  Rng rng(12);
  Basm model(dataset_->schema, BasmConfig::Full(), rng);
  EXPECT_EQ(model.name(), "BASM");
  ag::Variable logits = model.ForwardLogits(*batch_);
  EXPECT_EQ(logits.value().dim(0), batch_->size);
  EXPECT_FALSE(logits.value().HasNonFinite());
  EXPECT_EQ(model.last_alphas().rows(), batch_->size);
  EXPECT_EQ(model.last_alphas().cols(), 5);
}

TEST_F(BasmModelTest, AblationNamesAndStructure) {
  Rng rng(13);
  Basm no_stael(dataset_->schema, BasmConfig::WithoutStAEL(), rng);
  Basm no_ststl(dataset_->schema, BasmConfig::WithoutStSTL(), rng);
  Basm no_stabt(dataset_->schema, BasmConfig::WithoutStABT(), rng);
  EXPECT_EQ(no_stael.name(), "BASM w/o StAEL");
  EXPECT_EQ(no_ststl.name(), "BASM w/o StSTL");
  EXPECT_EQ(no_stabt.name(), "BASM w/o StABT");
  // Removing a module removes its parameters.
  Basm full(dataset_->schema, BasmConfig::Full(), rng);
  EXPECT_LT(no_stael.ParameterCount(), full.ParameterCount());
  EXPECT_LT(no_stabt.ParameterCount(), full.ParameterCount());
}

TEST_F(BasmModelTest, AblationsForwardFinite) {
  for (auto config :
       {BasmConfig::WithoutStAEL(), BasmConfig::WithoutStSTL(),
        BasmConfig::WithoutStABT()}) {
    Rng rng(14);
    Basm model(dataset_->schema, config, rng);
    ag::Variable logits = model.ForwardLogits(*batch_);
    EXPECT_FALSE(logits.value().HasNonFinite()) << model.name();
  }
}

TEST_F(BasmModelTest, AlphasEmptyWhenStaelAblated) {
  Rng rng(15);
  Basm model(dataset_->schema, BasmConfig::WithoutStAEL(), rng);
  model.ForwardLogits(*batch_);
  EXPECT_EQ(model.last_alphas().numel(), 0);
}

TEST_F(BasmModelTest, TrainingStepReducesLossOnFixedBatch) {
  Rng rng(16);
  Basm model(dataset_->schema, BasmConfig::Full(), rng);
  optim::Adagrad opt(model.Parameters(), 0.05f);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 30; ++step) {
    ag::Variable loss =
        ag::BceWithLogits(model.ForwardLogits(*batch_), batch_->labels);
    if (step == 0) first_loss = loss.value()[0];
    last_loss = loss.value()[0];
    ag::Backward(loss);
    opt.Step();
  }
  EXPECT_LT(last_loss, first_loss);
}

}  // namespace
}  // namespace basm::core
