#include "feature_store/journal.h"

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/fault.h"
#include "data/schema.h"
#include "gtest/gtest.h"

namespace basm::feature_store {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the test temp root (wiped per call so
/// reruns and cross-test names never collide).
std::string JournalDir(const std::string& name) {
  fs::path dir = fs::path(::testing::TempDir()) / ("basm_journal_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

data::BehaviorEvent MakeEvent(int32_t i) {
  data::BehaviorEvent e;
  e.item_id = i;
  e.category = i % 7;
  e.brand = i % 11;
  e.hour = i % 24;
  e.time_period = i % 4;
  e.city = i % 3;
  e.geohash = i * 31;
  return e;
}

/// Journal with the ambient env fault process disarmed: the chaos CI job
/// arms BASM_FAULT_RATE suite-wide (the journal's ctor default is
/// FaultInjector::FromEnv()), and these tests own their fault processes.
std::unique_ptr<ClickJournal> OpenJournal(const JournalConfig& config) {
  auto journal = std::make_unique<ClickJournal>(config);
  journal->SetFaultInjector(nullptr);
  return journal;
}

std::vector<ClickRecord> Replay(const std::string& dir,
                                ReplayReport* report = nullptr) {
  std::unique_ptr<ClickJournal> journal =
      OpenJournal(JournalConfig{.dir = dir});
  std::vector<ClickRecord> out;
  Status status = journal->ReplayInto(
      [&out](const ClickRecord& r) { out.push_back(r); }, report);
  EXPECT_TRUE(status.ok()) << status.message();
  return out;
}

/// One encoded click, exposed as raw bytes for the corruption corpus.
std::vector<uint8_t> EncodedClick(int32_t user_id, int32_t i) {
  std::vector<uint8_t> bytes;
  ClickJournal::EncodeRecord(ClickRecord{user_id, MakeEvent(i)}, &bytes);
  return bytes;
}

/// Writes `bytes` as a single sealed segment so a fresh journal replays it.
void WriteSealedSegment(const std::string& dir,
                        const std::vector<uint8_t>& bytes) {
  std::ofstream out(fs::path(dir) / "seg-00000000.bjl", std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// --- happy path -----------------------------------------------------------

TEST(JournalTest, AppendThenReplayRoundTripsEveryField) {
  const std::string dir = JournalDir("roundtrip");
  {
    std::unique_ptr<ClickJournal> journal =
        OpenJournal(JournalConfig{.dir = dir});
    ASSERT_TRUE(journal->healthy());
    for (int32_t i = 0; i < 25; ++i) {
      ASSERT_TRUE(journal->AppendRecord(100 + i, MakeEvent(i)).ok());
    }
    EXPECT_EQ(journal->stats().appends, 25);
  }
  std::vector<ClickRecord> recovered = Replay(dir);
  ASSERT_EQ(recovered.size(), 25u);
  for (int32_t i = 0; i < 25; ++i) {
    const ClickRecord& r = recovered[i];
    const data::BehaviorEvent want = MakeEvent(i);
    EXPECT_EQ(r.user_id, 100 + i);
    EXPECT_EQ(r.event.item_id, want.item_id);
    EXPECT_EQ(r.event.category, want.category);
    EXPECT_EQ(r.event.brand, want.brand);
    EXPECT_EQ(r.event.hour, want.hour);
    EXPECT_EQ(r.event.time_period, want.time_period);
    EXPECT_EQ(r.event.city, want.city);
    EXPECT_EQ(r.event.geohash, want.geohash);
  }
}

TEST(JournalTest, GroupCommitBatchesFsyncs) {
  const std::string dir = JournalDir("group_commit");
  JournalConfig config{.dir = dir};
  config.group_commit_appends = 8;
  config.flush_interval_micros = int64_t{1} << 40;  // count-driven only
  std::unique_ptr<ClickJournal> journal = OpenJournal(config);
  for (int32_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(journal->AppendRecord(i, MakeEvent(i)).ok());
  }
  JournalStats stats = journal->stats();
  EXPECT_EQ(stats.appends, 32);
  EXPECT_EQ(stats.fsyncs, 4);  // one per full group of 8
}

TEST(JournalTest, ZeroFlushIntervalFsyncsEveryAppend) {
  const std::string dir = JournalDir("sync_every");
  JournalConfig config{.dir = dir};
  config.flush_interval_micros = 0;
  std::unique_ptr<ClickJournal> journal = OpenJournal(config);
  for (int32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(journal->AppendRecord(i, MakeEvent(i)).ok());
  }
  EXPECT_EQ(journal->stats().fsyncs, 5);
}

TEST(JournalTest, RotationSealsFullSegmentsAndReplayCrossesThem) {
  const std::string dir = JournalDir("rotation");
  JournalConfig config{.dir = dir};
  config.max_segment_bytes = 100;  // ~2 records per segment
  {
    std::unique_ptr<ClickJournal> journal = OpenJournal(config);
    for (int32_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(journal->AppendRecord(i, MakeEvent(i)).ok());
    }
    EXPECT_GE(journal->stats().rotations, 3);
  }
  ReplayReport report;
  std::vector<ClickRecord> recovered = Replay(dir, &report);
  ASSERT_EQ(recovered.size(), 10u);
  EXPECT_GE(report.segments, 4);
  EXPECT_EQ(report.truncated_tail_bytes, 0);
  // Order is preserved across segment boundaries.
  for (int32_t i = 0; i < 10; ++i) EXPECT_EQ(recovered[i].user_id, i);
}

TEST(JournalTest, SecondReplayAfterTruncationIsCleanAndIdentical) {
  const std::string dir = JournalDir("replay_twice");
  {
    std::unique_ptr<ClickJournal> journal =
        OpenJournal(JournalConfig{.dir = dir});
    for (int32_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(journal->AppendRecord(i, MakeEvent(i)).ok());
    }
  }
  // Simulate a crash torn tail: garbage appended to the crashed segment.
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ofstream out(entry.path(), std::ios::binary | std::ios::app);
    out << "torn-half-record";
  }
  ReplayReport first;
  EXPECT_EQ(Replay(dir, &first).size(), 5u);
  EXPECT_EQ(first.truncated_tail_bytes, 16);
  // The truncation was persisted in place: a second recovery sees a clean
  // journal with the same five records.
  ReplayReport second;
  EXPECT_EQ(Replay(dir, &second).size(), 5u);
  EXPECT_EQ(second.truncated_tail_bytes, 0);
}

// --- fault injection ------------------------------------------------------

TEST(JournalTest, InjectedFaultDropsAppendAndCountsWriteFailure) {
  const std::string dir = JournalDir("fault");
  std::unique_ptr<ClickJournal> owned =
      OpenJournal(JournalConfig{.dir = dir});
  ClickJournal& journal = *owned;
  FaultInjector injector(7);
  FaultSiteConfig fault;
  fault.error_probability = 1.0;
  injector.Configure(std::string(kJournalFaultSite), fault);
  journal.SetFaultInjector(&injector);
  EXPECT_FALSE(journal.AppendRecord(1, MakeEvent(1)).ok());
  journal.SetFaultInjector(nullptr);
  EXPECT_TRUE(journal.AppendRecord(2, MakeEvent(2)).ok());
  JournalStats stats = journal.stats();
  EXPECT_EQ(stats.write_failures, 1);
  EXPECT_EQ(stats.appends, 1);
}

TEST(JournalTest, UnusableDirectoryFailsSoftlyNeverThrows) {
  // A regular file where the directory should be: the journal must come up
  // broken (not throw) and drop appends into write_failures.
  const std::string blocker = JournalDir("blocked") + "/file";
  { std::ofstream out(blocker); out << "x"; }
  std::unique_ptr<ClickJournal> journal =
      OpenJournal(JournalConfig{.dir = blocker + "/sub"});
  EXPECT_FALSE(journal->healthy());
  EXPECT_FALSE(journal->AppendRecord(1, MakeEvent(1)).ok());
  EXPECT_EQ(journal->stats().write_failures, 1);
}

// --- corruption corpus (mirrors net_test's malformed-frame suite) ---------

TEST(JournalTest, ReplayTruncationAtEveryPrefixLength) {
  std::vector<uint8_t> bytes = EncodedClick(1, 1);
  const size_t record_size = bytes.size();
  std::vector<uint8_t> more = EncodedClick(2, 2);
  bytes.insert(bytes.end(), more.begin(), more.end());
  for (size_t len = 0; len <= bytes.size(); ++len) {
    const std::string dir = JournalDir("prefix");
    WriteSealedSegment(dir,
                       std::vector<uint8_t>(bytes.begin(), bytes.begin() + len));
    ReplayReport report;
    std::vector<ClickRecord> recovered = Replay(dir, &report);
    const size_t complete = len / record_size;  // records fully present
    ASSERT_EQ(recovered.size(), complete) << "prefix len " << len;
    EXPECT_EQ(report.truncated_tail_bytes,
              static_cast<int64_t>(len - complete * record_size))
        << "prefix len " << len;
  }
}

TEST(JournalTest, EverySingleBitFlipInARecordIsRejected) {
  std::vector<uint8_t> clean = EncodedClick(9, 9);
  std::vector<uint8_t> tail = EncodedClick(10, 10);
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bytes = clean;
      bytes[byte] = static_cast<uint8_t>(bytes[byte] ^ (1u << bit));
      ClickRecord record;
      size_t consumed = 0;
      Status decoded = ClickJournal::DecodeRecord(bytes.data(), bytes.size(),
                                                  &record, &consumed);
      ASSERT_FALSE(decoded.ok())
          << "bit " << bit << " of byte " << byte << " accepted";
      // And through replay: the flip truncates at record 1, so the intact
      // record behind it is (correctly, by the torn-tail rule) lost too.
      bytes.insert(bytes.end(), tail.begin(), tail.end());
      const std::string dir = JournalDir("bitflip");
      WriteSealedSegment(dir, bytes);
      ReplayReport report;
      EXPECT_EQ(Replay(dir, &report).size(), 0u);
      EXPECT_EQ(report.truncated_tail_bytes,
                static_cast<int64_t>(bytes.size()));
    }
  }
}

TEST(JournalTest, HostileLengthFieldsNeverReadPastTheBuffer) {
  ClickRecord record;
  size_t consumed = 0;
  // Hostile payload sizes patched into an otherwise-valid header. The
  // exact-size heap buffer makes any overread an ASan failure.
  for (uint32_t hostile : {uint32_t{33}, uint32_t{4096}, uint32_t{4097},
                           uint32_t{0x7FFFFFFF}, uint32_t{0xFFFFFFFF}}) {
    std::vector<uint8_t> bytes = EncodedClick(3, 3);
    bytes[8] = static_cast<uint8_t>(hostile & 0xFF);
    bytes[9] = static_cast<uint8_t>((hostile >> 8) & 0xFF);
    bytes[10] = static_cast<uint8_t>((hostile >> 16) & 0xFF);
    bytes[11] = static_cast<uint8_t>((hostile >> 24) & 0xFF);
    EXPECT_FALSE(ClickJournal::DecodeRecord(bytes.data(), bytes.size(),
                                            &record, &consumed)
                     .ok())
        << "payload_size " << hostile;
    EXPECT_EQ(consumed, 0u);
  }
  // A header alone claiming a payload it does not have.
  std::vector<uint8_t> header_only = EncodedClick(4, 4);
  header_only.resize(kJournalHeaderBytes);
  EXPECT_FALSE(ClickJournal::DecodeRecord(header_only.data(),
                                          header_only.size(), &record,
                                          &consumed)
                   .ok());
  // Empty and sub-header buffers.
  EXPECT_FALSE(
      ClickJournal::DecodeRecord(header_only.data(), 0, &record, &consumed)
          .ok());
  EXPECT_FALSE(
      ClickJournal::DecodeRecord(header_only.data(), 7, &record, &consumed)
          .ok());
}

TEST(JournalTest, WrongMagicVersionTypeAndFlagsAreRejected) {
  ClickRecord record;
  size_t consumed = 0;
  auto expect_reject = [&](std::vector<uint8_t> bytes, const char* what) {
    EXPECT_FALSE(ClickJournal::DecodeRecord(bytes.data(), bytes.size(),
                                            &record, &consumed)
                     .ok())
        << what;
  };
  std::vector<uint8_t> clean = EncodedClick(5, 5);
  std::vector<uint8_t> bad = clean;
  bad[0] = 0x00;  // magic
  expect_reject(bad, "magic");
  bad = clean;
  bad[4] = kJournalVersion + 1;
  expect_reject(bad, "version");
  bad = clean;
  bad[5] = 0x7F;  // unknown record type
  expect_reject(bad, "type");
  bad = clean;
  bad[6] = 0x01;  // nonzero flags
  expect_reject(bad, "flags");
  // The clean record still decodes (the corpus is testing the mutations,
  // not the baseline).
  EXPECT_TRUE(ClickJournal::DecodeRecord(clean.data(), clean.size(), &record,
                                         &consumed)
                  .ok());
  EXPECT_EQ(consumed, clean.size());
}

}  // namespace
}  // namespace basm::feature_store
