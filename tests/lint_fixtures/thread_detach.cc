// Fixture: thread-detach violation on line 7. Never compiled.
#include <thread>

void Fixture() {
  std::thread t([] {});
  t.join();
  std::thread([] {}).detach();
}
