#include "nn/attention.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace basm::nn {

namespace ag = ::basm::autograd;

TargetAttention::TargetAttention(int64_t dim, int64_t hidden, Rng& rng)
    : dim_(dim) {
  score_net_ = std::make_unique<Mlp>(
      std::vector<int64_t>{4 * dim, hidden, 1}, Activation::kLeakyRelu, rng);
  RegisterModule("score_net", score_net_.get());
}

ag::Variable TargetAttention::Forward(const ag::Variable& query,
                                      const ag::Variable& keys,
                                      const Tensor& mask) {
  BASM_CHECK_EQ(query.value().rank(), 2);
  BASM_CHECK_EQ(keys.value().rank(), 3);
  int64_t batch = query.value().rows();
  int64_t t = keys.value().dim(1);
  BASM_CHECK_EQ(keys.value().dim(0), batch);
  BASM_CHECK_EQ(keys.value().dim(2), dim_);
  BASM_CHECK_EQ(mask.rank(), 2);
  BASM_CHECK_EQ(mask.dim(0), batch);
  BASM_CHECK_EQ(mask.dim(1), t);

  // Flatten keys to [B*T, D] and repeat the query per position.
  ag::Variable keys_flat = ag::Reshape(keys, {batch * t, dim_});
  ag::Variable q_rep = ag::RepeatInterleaveRows(query, t);
  ag::Variable feats = ag::ConcatCols(
      {q_rep, keys_flat, ag::Sub(q_rep, keys_flat), ag::Mul(q_rep, keys_flat)});
  ag::Variable scores = score_net_->Forward(feats);     // [B*T, 1]
  ag::Variable logits = ag::Reshape(scores, {batch, t});  // [B, T]

  // Mask invalid positions with a large negative bias before softmax.
  Tensor mask_bias({batch, t});
  for (int64_t i = 0; i < batch * t; ++i) {
    mask_bias[i] = mask[i] > 0.5f ? 0.0f : -1e9f;
  }
  logits = ag::Add(logits, ag::Variable::Constant(mask_bias));
  ag::Variable weights = ag::RowSoftmax(logits);  // [B, T]
  // Introspection cache; skipped in inference mode so concurrent scoring
  // through a shared model stays write-free.
  if (ag::GradEnabled()) last_weights_ = weights.value();

  // Weighted pooling: [B,1,T] x [B,T,D] -> [B,1,D] -> [B,D].
  ag::Variable w3 = ag::Reshape(weights, {batch, 1, t});
  ag::Variable pooled = ag::BatchedMatMul(w3, keys);
  return ag::Reshape(pooled, {batch, dim_});
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t num_heads,
                                               int64_t head_dim, Rng& rng)
    : dim_(dim), num_heads_(num_heads), head_dim_(head_dim) {
  for (int64_t h = 0; h < num_heads_; ++h) {
    q_proj_.push_back(std::make_unique<Linear>(dim, head_dim, rng, false));
    k_proj_.push_back(std::make_unique<Linear>(dim, head_dim, rng, false));
    v_proj_.push_back(std::make_unique<Linear>(dim, head_dim, rng, false));
    RegisterModule("q" + std::to_string(h), q_proj_.back().get());
    RegisterModule("k" + std::to_string(h), k_proj_.back().get());
    RegisterModule("v" + std::to_string(h), v_proj_.back().get());
  }
  res_proj_ =
      std::make_unique<Linear>(dim, num_heads * head_dim, rng, false);
  RegisterModule("res", res_proj_.get());
}

ag::Variable MultiHeadSelfAttention::Forward(const ag::Variable& x) {
  BASM_CHECK_EQ(x.value().rank(), 3);
  int64_t batch = x.value().dim(0);
  int64_t f = x.value().dim(1);
  BASM_CHECK_EQ(x.value().dim(2), dim_);

  ag::Variable x_flat = ag::Reshape(x, {batch * f, dim_});
  float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  std::vector<ag::Variable> head_outputs;  // each [B*F, head_dim]
  for (int64_t h = 0; h < num_heads_; ++h) {
    ag::Variable q =
        ag::Reshape(q_proj_[h]->Forward(x_flat), {batch, f, head_dim_});
    ag::Variable k =
        ag::Reshape(k_proj_[h]->Forward(x_flat), {batch, f, head_dim_});
    ag::Variable v =
        ag::Reshape(v_proj_[h]->Forward(x_flat), {batch, f, head_dim_});

    // scores[b] = Q K^T / sqrt(d): [B,F,F].
    ag::Variable scores = ag::Scale(ag::BatchedMatMulTransB(q, k), scale);
    ag::Variable attn = ag::Reshape(
        ag::RowSoftmax(ag::Reshape(scores, {batch * f, f})), {batch, f, f});
    ag::Variable pooled = ag::BatchedMatMul(attn, v);  // [B,F,hd]
    head_outputs.push_back(ag::Reshape(pooled, {batch * f, head_dim_}));
  }

  ag::Variable heads = ag::ConcatCols(head_outputs);  // [B*F, H*hd]
  ag::Variable residual = res_proj_->Forward(x_flat);
  ag::Variable out = ag::Relu(ag::Add(heads, residual));
  return ag::Reshape(out, {batch, f, num_heads_ * head_dim_});
}

}  // namespace basm::nn
