file(REMOVE_RECURSE
  "libbasm.a"
)
