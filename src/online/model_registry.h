#ifndef BASM_ONLINE_MODEL_REGISTRY_H_
#define BASM_ONLINE_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"

namespace basm::online {

/// One immutable published model version: the serialized checkpoint image
/// (nn::SerializeParameters format: magic, format version, payload
/// checksum, tensors) plus registry metadata. Handed out as
/// shared_ptr<const>, so a snapshot stays readable even after it is
/// garbage-collected from the registry index.
struct RegistrySnapshot {
  uint64_t version = 0;
  std::string bytes;     ///< self-describing checkpoint image
  uint64_t checksum = 0; ///< payload checksum from the image header
  std::string note;      ///< provenance tag ("bootstrap", "online-7", ...)
};

/// Thread-safe store of versioned model snapshots — the repo's analogue of
/// the AOP model bank that feeds the RTP scoring tier. Publishing assigns
/// a monotonically increasing version and verifies the image's checksum,
/// so a corrupt artifact can never become the serving head. Pinning
/// exempts a version from garbage collection (e.g. a rollback target);
/// collection otherwise keeps the newest `keep_last` versions.
class ModelRegistry {
 public:
  /// `keep_last` bounds the unpinned history retained by GarbageCollect
  /// (and by the auto-collection run after each publish).
  explicit ModelRegistry(size_t keep_last = 8);

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Validates and stores a checkpoint image; returns the new version id.
  /// InvalidArgument/Internal when the image fails verification.
  [[nodiscard]] StatusOr<uint64_t> Publish(std::string bytes,
                                           std::string note = "");

  /// Newest published snapshot; null when the registry is empty.
  std::shared_ptr<const RegistrySnapshot> Head() const BASM_EXCLUDES(mu_);

  /// A specific version; null when unknown or already collected.
  std::shared_ptr<const RegistrySnapshot> Get(uint64_t version) const
      BASM_EXCLUDES(mu_);

  /// Pin/unpin a version against garbage collection. NotFound when the
  /// version is not (or no longer) in the registry.
  [[nodiscard]] Status Pin(uint64_t version);
  [[nodiscard]] Status Unpin(uint64_t version);

  /// Drops versions oldest-first until at most `keep_last` remain. Pinned
  /// versions count toward the bound but are never dropped (so retention
  /// can exceed it only when pins force it); the head is never collected.
  /// Returns how many versions were dropped.
  size_t GarbageCollect();

  /// Persists the head snapshot's checkpoint image to `path` atomically
  /// (write to `path`.tmp, fsync-free rename into place), so a crash
  /// mid-save can never leave a torn file where a good one was. The image
  /// is the self-describing v3 codec — its own header checksum is the
  /// on-disk integrity record. NotFound when the registry is empty,
  /// Internal on I/O failure.
  [[nodiscard]] Status SaveHead(const std::string& path) const;

  /// Restores a SaveHead file as a new published version (the process-
  /// restart path: the version counter restarts, provenance lives in
  /// `note`). The image is checksum-verified by Publish, so a corrupt or
  /// truncated file is rejected with a clear Status and the registry is
  /// left untouched. NotFound when the file is missing.
  [[nodiscard]] StatusOr<uint64_t> LoadHead(const std::string& path,
                                            std::string note = "restored");

  /// Versions currently retained, ascending.
  std::vector<uint64_t> Versions() const;

  uint64_t head_version() const;
  size_t size() const;
  size_t keep_last() const { return keep_last_; }

 private:
  struct Entry {
    std::shared_ptr<const RegistrySnapshot> snapshot;
    bool pinned = false;
  };

  size_t GarbageCollectLocked() BASM_REQUIRES(mu_);

  const size_t keep_last_;
  mutable Mutex mu_;
  std::map<uint64_t, Entry> entries_ BASM_GUARDED_BY(mu_);
  uint64_t next_version_ BASM_GUARDED_BY(mu_) = 1;
};

}  // namespace basm::online

#endif  // BASM_ONLINE_MODEL_REGISTRY_H_
