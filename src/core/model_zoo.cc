#include "core/model_zoo.h"

#include "core/basm_model.h"
#include "models/apg.h"
#include "models/autoint.h"
#include "models/base_din.h"
#include "models/deepfm.h"
#include "models/din.h"
#include "models/m2m.h"
#include "models/star.h"
#include "models/wide_deep.h"

namespace basm::core {

namespace {
const std::vector<int64_t> kHidden = {64, 32};
constexpr int64_t kEmbedDim = 8;
}  // namespace

std::vector<ModelKind> TableFourModels() {
  return {ModelKind::kWideDeep, ModelKind::kDin,  ModelKind::kAutoInt,
          ModelKind::kStar,     ModelKind::kM2m,  ModelKind::kApg,
          ModelKind::kBasm};
}

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kWideDeep:
      return "Wide&Deep";
    case ModelKind::kDin:
      return "DIN";
    case ModelKind::kAutoInt:
      return "AutoInt";
    case ModelKind::kStar:
      return "STAR";
    case ModelKind::kM2m:
      return "M2M";
    case ModelKind::kApg:
      return "APG";
    case ModelKind::kBasm:
      return "BASM";
    case ModelKind::kBaseDin:
      return "Base(DIN-variant)";
    case ModelKind::kDeepFm:
      return "DeepFM";
  }
  return "unknown";
}

std::unique_ptr<models::CtrModel> CreateModel(ModelKind kind,
                                      const data::Schema& schema,
                                      uint64_t seed) {
  Rng rng(seed);
  switch (kind) {
    case ModelKind::kWideDeep:
      return std::make_unique<models::WideDeep>(schema, kEmbedDim, kHidden, rng);
    case ModelKind::kDin:
      return std::make_unique<models::Din>(schema, kEmbedDim, kHidden, rng);
    case ModelKind::kAutoInt:
      return std::make_unique<models::AutoInt>(schema, kEmbedDim, /*token_dim=*/16,
                                       /*num_layers=*/2, /*num_heads=*/2,
                                       rng);
    case ModelKind::kStar:
      return std::make_unique<models::Star>(schema, kEmbedDim, kHidden, rng);
    case ModelKind::kM2m:
      return std::make_unique<models::M2m>(schema, kEmbedDim, kHidden, rng);
    case ModelKind::kApg:
      return std::make_unique<models::Apg>(schema, kEmbedDim, kHidden, /*rank=*/8,
                                   rng);
    case ModelKind::kBasm: {
      BasmConfig config;
      config.embed_dim = kEmbedDim;
      config.tower_hidden = kHidden;
      return std::make_unique<Basm>(schema, config, rng);
    }
    case ModelKind::kBaseDin:
      return std::make_unique<models::BaseDin>(schema, kEmbedDim, kHidden, rng);
    case ModelKind::kDeepFm:
      return std::make_unique<models::DeepFm>(schema, kEmbedDim, kHidden, rng);
  }
  BASM_CHECK(false) << "unknown model kind";
  return nullptr;
}

}  // namespace basm::core
