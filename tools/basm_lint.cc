// basm_lint: the project's invariant checker. A self-contained token scan
// (no libclang) that enforces the concurrency and determinism rules the
// serving stack depends on; see tools/lint.cc for the catalog and DESIGN.md
// §10 for the rationale. CI runs `basm_lint src tests bench` and fails the
// build on any finding.

#include <cstdio>
#include <string>
#include <vector>

#include "tools/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: basm_lint [--list-rules] <file-or-dir>...\n"
          "Lints C++ sources against the project invariant catalog.\n"
          "Exits nonzero when any finding is reported.\n"
          "Suppress one line with: // basm-lint: allow(rule-id)\n");
      return 0;
    } else {
      paths.push_back(std::move(arg));
    }
  }

  if (list_rules) {
    for (const basm::lint::RuleInfo& rule : basm::lint::Rules()) {
      std::printf("%-20s %s\n", rule.id.c_str(), rule.rationale.c_str());
    }
    return 0;
  }

  if (paths.empty()) {
    std::fprintf(stderr, "basm_lint: no paths given (try --help)\n");
    return 2;
  }

  std::vector<basm::lint::Finding> findings = basm::lint::LintPaths(paths);
  for (const basm::lint::Finding& finding : findings) {
    std::printf("%s\n", basm::lint::FormatFinding(finding).c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "basm_lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
