#ifndef BASM_NN_DYNAMIC_H_
#define BASM_NN_DYNAMIC_H_

#include <memory>

#include "nn/linear.h"
#include "nn/module.h"

namespace basm::nn {

/// Per-sample dynamic fully-connected layer driven by a meta network
/// (Eq. 7-9 of the paper, also the M2M meta-unit). For each sample b, a
/// weight matrix W[b] (out x in) and bias b[b] are generated from a
/// condition vector z[b], then y[b] = W[b] x[b] + b[b].
class MetaLinear : public Module {
 public:
  /// cond_dim: width of the condition z; in/out: the dynamic layer shape.
  MetaLinear(int64_t cond_dim, int64_t in, int64_t out, Rng& rng);

  /// x: [B, in], cond: [B, cond_dim] -> [B, out].
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& cond) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }

 private:
  int64_t in_;
  int64_t out_;
  std::unique_ptr<Linear> weight_gen_;  // cond -> out*in
  std::unique_ptr<Linear> bias_gen_;    // cond -> out
};

/// APG-style low-rank dynamic linear: W[b] = U S[b] V with static
/// U (out x r), V (r x in) and a generated core S[b] (r x r). This is the
/// matrix-decomposition trick APG uses to keep generated-parameter cost low;
/// BASM's Table VI efficiency claim contrasts against the full version.
class LowRankMetaLinear : public Module {
 public:
  LowRankMetaLinear(int64_t cond_dim, int64_t in, int64_t out, int64_t rank,
                    Rng& rng);

  /// x: [B, in], cond: [B, cond_dim] -> [B, out].
  autograd::Variable Forward(const autograd::Variable& x,
                             const autograd::Variable& cond) const;

  int64_t rank() const { return rank_; }

 private:
  int64_t in_;
  int64_t out_;
  int64_t rank_;
  autograd::Variable u_;  // [r, out]: applied as h V then S then U
  autograd::Variable v_;  // [in, r]
  std::unique_ptr<Linear> core_gen_;  // cond -> r*r
  std::unique_ptr<Linear> bias_gen_;  // cond -> out
};

}  // namespace basm::nn

#endif  // BASM_NN_DYNAMIC_H_
