#include "tools/analyze/blocking_calls.h"

#include <map>
#include <set>
#include <string>

namespace basm::analyze {
namespace {

/// Names that block the calling thread wherever they appear: syscalls that
/// can park on IO, sleeps, and joins. (`open`/`close` are deliberately
/// absent: they are near-instant on local filesystems and would drown the
/// report in noise.)
const std::set<std::string>& BlockingTokens() {
  static const std::set<std::string> kTokens = {
      "fsync",    "fdatasync", "write",       "pwrite",      "read",
      "pread",    "send",      "recv",        "sendto",      "recvfrom",
      "connect",  "accept",    "poll",        "ppoll",       "select",
      "usleep",   "nanosleep", "sleep_for",   "sleep_until", "sleep",
      "join",     "flock",     "system",      "wait",        "waitpid",
  };
  return kTokens;
}

/// Methods that block by contract even when their scanned body does not
/// show a blocking token (e.g. the simulated server round-trip, whose
/// latency model lives behind the fault injector).
const std::set<std::string>& ContractBlockingMethods() {
  static const std::set<std::string> kMethods = {"FetchUserFeatures"};
  return kMethods;
}

bool IsWaitFamily(const std::string& name) {
  return name == "Wait" || name == "WaitUntil" || name == "WaitFor";
}

/// `Wait(mu_)` on the single held lock is the CondVar contract (the mutex
/// is released while parked); waiting with any *other* lock held still
/// blocks that lock's waiters.
bool WaitExempt(const Call& call) {
  if (call.locks_held.size() != 1) return false;
  std::string arg = call.arg_head;
  if (!arg.empty() && arg[0] == '&') arg = arg.substr(1);
  return LockLeaf(arg) == LockLeaf(call.locks_held[0]);
}

std::string HeldList(const Call& call) {
  std::string out;
  for (const std::string& held : call.locks_held) {
    if (!out.empty()) out += ", ";
    out += held;
  }
  return out;
}

}  // namespace

std::vector<lint::Finding> RunBlockingCalls(const std::vector<FileScan>& files,
                                            const ProgramModel& model) {
  std::vector<lint::Finding> findings;
  constexpr char kPass[] = "blocking-under-lock";

  // Which scanned methods block, via fixed point over the call graph.
  // Direct: a blocking token or CondVar wait in the body. Indirect: a
  // resolvable call to a blocking method, or (receiver untyped) a call
  // whose name only blocking methods use.
  std::map<std::string, bool> blocking;
  for (const auto& [key, _] : model.methods()) blocking[key] = false;
  for (const auto& [key, fns] : model.methods()) {
    for (const FunctionScan* fn : fns) {
      for (const Call& call : fn->calls) {
        if (BlockingTokens().count(call.name) || IsWaitFamily(call.name) ||
            ContractBlockingMethods().count(call.name)) {
          blocking[key] = true;
        }
      }
    }
  }
  for (int round = 0; round < 12; ++round) {
    std::set<std::string> blocking_names;
    for (const auto& [key, is_blocking] : blocking) {
      if (!is_blocking) continue;
      size_t at = key.rfind("::");
      blocking_names.insert(key.substr(at + 2));
    }
    bool changed = false;
    for (const auto& [key, fns] : model.methods()) {
      if (blocking[key]) continue;
      for (const FunctionScan* fn : fns) {
        for (const Call& call : fn->calls) {
          std::string callee = model.ResolveCallee(fn->cls, call);
          bool callee_blocks =
              !callee.empty()
                  ? blocking.count(callee) && blocking[callee]
                  : (!call.receiver.empty() &&
                     blocking_names.count(call.name) > 0);
          if (callee_blocks) {
            blocking[key] = true;
            changed = true;
            break;
          }
        }
        if (blocking[key]) break;
      }
    }
    if (!changed) break;
  }
  std::set<std::string> blocking_names;
  for (const auto& [key, is_blocking] : blocking) {
    if (!is_blocking) continue;
    size_t at = key.rfind("::");
    blocking_names.insert(key.substr(at + 2));
  }

  for (const FileScan& file : files) {
    for (const FunctionScan& fn : file.functions) {
      const std::string where =
          (fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name);
      for (const Call& call : fn.calls) {
        if (call.locks_held.empty()) continue;
        std::string why;
        if (IsWaitFamily(call.name)) {
          if (!WaitExempt(call)) {
            why = "CondVar wait with an unrelated lock held";
          }
        } else if (BlockingTokens().count(call.name)) {
          why = "'" + call.name + "' can park the thread";
        } else if (ContractBlockingMethods().count(call.name)) {
          why = "'" + call.name + "' is a server round-trip by contract";
        } else {
          std::string callee = model.ResolveCallee(fn.cls, call);
          if (!callee.empty()) {
            auto it = blocking.find(callee);
            if (it != blocking.end() && it->second) {
              why = callee + " blocks (transitively)";
            }
          } else if (!call.receiver.empty() &&
                     blocking_names.count(call.name)) {
            why = "'" + call.name +
                  "' matches a blocking method (receiver not resolvable)";
          }
        }
        if (why.empty()) continue;
        findings.push_back(lint::Finding{
            file.path, call.line, kPass,
            where + " calls " + call.name + " while holding " +
                HeldList(call) + ": " + why +
                "; drop the lock across the blocking section (snapshot + "
                "revalidate) or justify with an inline allow"});
      }
    }
  }
  return findings;
}

}  // namespace basm::analyze
