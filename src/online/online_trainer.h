#ifndef BASM_ONLINE_ONLINE_TRAINER_H_
#define BASM_ONLINE_ONLINE_TRAINER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/fault.h"
#include "common/status.h"
#include "common/synchronization.h"
#include "data/schema.h"
#include "core/model_zoo.h"
#include "online/model_registry.h"
#include "online/model_slot.h"
#include "train/trainer.h"

namespace basm::online {

/// Fault site name evaluated before every ModelSlot install (see
/// FaultInjector): stands in for the model push to the serving nodes — in
/// production an RPC that can fail or stall independently of the registry
/// write. Explicit opt-in via SetFaultInjector (not FromEnv): an env-driven
/// install fault would silently break the publish/install bit-identity
/// contract every online suite relies on.
inline constexpr char kModelSlotInstallFaultSite[] = "model_slot.install";

/// The warm-start recipe of bench/ext_incremental_update's daily arm: one
/// gentle pass over the fresh feedback, no LR warmup ramp.
train::TrainConfig DefaultIncrementalRecipe();

struct OnlineTrainerConfig {
  /// Architecture skeleton used to materialize registry snapshots; must
  /// match the architecture of every published checkpoint.
  core::ModelKind model_kind = core::ModelKind::kBasm;
  uint64_t model_seed = 42;
  /// Bounded click-feedback stream; submissions beyond it are dropped and
  /// counted (feedback is sampled telemetry, losing some under overload is
  /// the correct production behavior).
  size_t feedback_capacity = 4096;
  /// Buffered feedback examples that trigger an incremental update.
  int64_t publish_every = 512;
  train::TrainConfig recipe = DefaultIncrementalRecipe();
  /// Provenance prefix for registry notes ("<prefix>-<n>").
  std::string note_prefix = "online";
  /// Publish gate: validates a freshly fine-tuned candidate (eval mode)
  /// before it can reach the registry/slot — typically a holdout-metric
  /// check. A non-OK return rejects the publish: the poisoned buffer is
  /// discarded, the pinned serving version keeps serving, and the
  /// rejection is counted. Null disables gating.
  std::function<Status(const models::CtrModel& candidate)> publish_gate;
};

/// Counters of one OnlineTrainer (all monotone since construction).
struct OnlineTrainerStats {
  int64_t consumed = 0;   ///< feedback examples accepted off the stream
  int64_t dropped = 0;    ///< feedback rejected by the full queue
  int64_t buffered = 0;   ///< accepted but not yet trained on
  int64_t published = 0;  ///< incremental versions published
  int64_t rejected_publishes = 0;  ///< candidates failed by the gate
  /// Publishes whose slot install failed (injected fault): the version is
  /// in the registry but the previously-installed model keeps serving.
  int64_t failed_installs = 0;
  /// Journal-replayed examples re-accepted into the stream at startup
  /// (subset of consumed once the loop drains them).
  int64_t recovered_feedback = 0;
  uint64_t last_version = 0;
  double last_update_seconds = 0.0;  ///< train+serialize+publish+install
};

/// The online-learning loop of the paper's AOP platform: consumes a
/// bounded stream of click feedback on a background thread, warm-starts
/// from the registry head, fine-tunes with the existing train::Trainer /
/// AdagradDecay recipe, publishes the result as a new immutable registry
/// version, and hot-swaps it into the serving slot. Serving never pauses:
/// the ModelSlot install is the only contact point with the engine.
class OnlineTrainer {
 public:
  /// `schema` and `registry` (and `slot`, when given) must outlive the
  /// trainer. `slot == nullptr` publishes to the registry only.
  OnlineTrainer(const data::Schema& schema, ModelRegistry* registry,
                ModelSlot* slot, OnlineTrainerConfig config);

  /// Stops the background thread (without a final publish).
  ~OnlineTrainer();

  OnlineTrainer(const OnlineTrainer&) = delete;
  OnlineTrainer& operator=(const OnlineTrainer&) = delete;

  /// Serializes a caller-trained eval-mode model, publishes it, and
  /// installs it into the slot — the bootstrap step that seeds the
  /// registry before incremental updates begin.
  [[nodiscard]] Status PublishModel(const models::CtrModel& model,
                                    std::string note);

  /// Starts the background consume/train/publish thread. Idempotent-safe
  /// to call once; CHECKs on a second start.
  void Start() BASM_EXCLUDES(lifecycle_mu_);

  /// Shuts the feedback stream, lets the thread finish any in-progress
  /// update, and joins it. Buffered-but-untrained feedback is kept (a
  /// later PublishNow can still train on it). Idempotent.
  void Stop() BASM_EXCLUDES(lifecycle_mu_);

  /// Enqueues one click-feedback example; false (and counted as dropped)
  /// when the stream is full or stopped. Never blocks the caller — this
  /// sits on the serving path.
  bool SubmitFeedback(data::Example example);

  /// Batch variant for journal replay at startup: feeds each recovered
  /// example through SubmitFeedback, counting successes (also into the
  /// recovered_feedback stat). Returns how many were accepted; the rest
  /// fell to the same bounded-queue drop rule as live feedback.
  int64_t SubmitRecoveredFeedback(std::vector<data::Example> examples);

  /// Synchronously drains the stream into the buffer and runs one
  /// incremental update now (tests and benches use this for deterministic
  /// publish points). InvalidArgument when there is nothing buffered.
  [[nodiscard]] Status PublishNow(std::string note = "")
      BASM_EXCLUDES(update_mu_);

  OnlineTrainerStats stats() const;

  /// Routes slot installs through `injector` (borrowed; nullptr restores
  /// the clean path): kModelSlotInstallFaultSite is evaluated before every
  /// install, an injected delay stalls the swap, and an injected error
  /// skips it — the registry publish stands, the old version keeps
  /// serving, and the failure is counted in stats().failed_installs. Call
  /// before Start(); not synchronized against a running update loop.
  void SetFaultInjector(FaultInjector* injector) {
    fault_injector_ = injector;
  }

  /// Replaces the publish gate (see OnlineTrainerConfig::publish_gate).
  /// Safe to call while the background loop runs: the live gate is kept
  /// outside config_ under update_mu_, so swapping it never races with a
  /// concurrent config() reader.
  void SetPublishGate(std::function<Status(const models::CtrModel&)> gate)
      BASM_EXCLUDES(update_mu_);

  /// Immutable after construction (the mutable publish gate lives in
  /// gate_, not here).
  const OnlineTrainerConfig& config() const { return config_; }

 private:
  void Loop() BASM_EXCLUDES(update_mu_);
  /// Warm-start from head, fit the buffer, publish, install.
  [[nodiscard]] Status UpdateLocked(const std::string& note)
      BASM_REQUIRES(update_mu_);
  /// Materializes an owned eval-mode model from a checkpoint image.
  [[nodiscard]] StatusOr<std::unique_ptr<models::CtrModel>> BuildModel(
      const std::string& bytes) const;

  /// Applies the injector's decision for kModelSlotInstallFaultSite and
  /// performs the install when it allows; OK with no injector configured.
  [[nodiscard]] Status InstallServable(uint64_t version,
                                       std::unique_ptr<models::CtrModel> model);

  const data::Schema& schema_;
  ModelRegistry* registry_;
  ModelSlot* slot_;
  FaultInjector* fault_injector_ = nullptr;
  const OnlineTrainerConfig config_;

  BlockingQueue<data::Example> feedback_;
  /// Serializes updates (background loop vs PublishNow) and guards the
  /// feedback buffer and the live publish gate.
  Mutex update_mu_;
  std::vector<data::Example> buffer_ BASM_GUARDED_BY(update_mu_);
  /// Live gate consulted by UpdateLocked; seeded from config_.publish_gate
  /// and replaceable at runtime via SetPublishGate.
  std::function<Status(const models::CtrModel&)> gate_
      BASM_GUARDED_BY(update_mu_);

  std::atomic<int64_t> consumed_{0};
  std::atomic<int64_t> dropped_{0};
  std::atomic<int64_t> buffered_{0};
  std::atomic<int64_t> published_{0};
  std::atomic<int64_t> rejected_publishes_{0};
  std::atomic<int64_t> failed_installs_{0};
  std::atomic<int64_t> recovered_feedback_{0};
  std::atomic<uint64_t> last_version_{0};
  std::atomic<double> last_update_seconds_{0.0};

  Mutex lifecycle_mu_;
  std::thread thread_ BASM_GUARDED_BY(lifecycle_mu_);
  bool started_ BASM_GUARDED_BY(lifecycle_mu_) = false;
  bool stopped_ BASM_GUARDED_BY(lifecycle_mu_) = false;
};

}  // namespace basm::online

#endif  // BASM_ONLINE_ONLINE_TRAINER_H_
