#ifndef BASM_ANALYSIS_ASCII_CHART_H_
#define BASM_ANALYSIS_ASCII_CHART_H_

#include <string>
#include <vector>

namespace basm::analysis {

/// Horizontal bar chart; one row per label, bars scaled to `width` chars.
/// Values must be non-negative.
std::string BarChart(const std::vector<std::string>& labels,
                     const std::vector<double>& values, int width = 50,
                     const std::string& unit = "");

/// Intensity heatmap rendered with the ' .:-=+*#%@' ramp, scaled to the
/// min/max of `values` (row-major rows x cols). Used for the Fig 8/9
/// alpha-weight heatmaps.
std::string Heatmap(const std::vector<std::string>& row_labels,
                    const std::vector<std::string>& col_labels,
                    const std::vector<std::vector<double>>& values,
                    int cell_width = 7);

/// Scatter plot of 2-D points into a character grid; each point is drawn as
/// the single-character class tag of its label. Used for the t-SNE figures.
std::string ScatterPlot(const std::vector<double>& xs,
                        const std::vector<double>& ys,
                        const std::vector<int>& labels, int width = 78,
                        int height = 24);

}  // namespace basm::analysis

#endif  // BASM_ANALYSIS_ASCII_CHART_H_
