#ifndef BASM_NET_EVENT_LOOP_H_
#define BASM_NET_EVENT_LOOP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/synchronization.h"

namespace basm::net {

/// Readiness-based IO loop over epoll: one thread, many non-blocking file
/// descriptors, one callback per descriptor. The building block of the
/// event-loop RPC frontend (DESIGN §16) — each loop owns a set of
/// connections outright, so connection state needs no locks: it is only
/// ever touched from the loop's thread.
///
/// Registration (AddFd/UpdateFd/RemoveFd) is loop-thread-only by contract
/// (checked); other threads hand work to the loop with PostTask, which is
/// the only thread-safe entry point. A PostTask from anywhere wakes the
/// loop through an eventfd, so completions queued by scoring workers are
/// picked up immediately instead of waiting out the epoll timeout.
///
/// Readiness is level-triggered: a handler that does not drain its socket
/// is simply called again on the next iteration, which keeps partial-read /
/// partial-write state machines honest without EPOLLET resubscription
/// subtleties.
class EventLoop {
 public:
  /// Handler for one descriptor's readiness: receives the EPOLL* event mask.
  using FdHandler = std::function<void(uint32_t events)>;
  using Task = std::function<void()>;

  EventLoop();
  /// Stops and joins (equivalent to Stop()).
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Creates the epoll/eventfd pair and starts the loop thread. Call once.
  [[nodiscard]] Status Start();

  /// Posts a quit task and joins the loop thread. Pending tasks are drained
  /// before the thread exits; registered handlers are dropped (closing the
  /// descriptors stays the owner's job). Idempotent.
  void Stop();

  /// True on the loop's own thread (registration contract).
  bool InLoopThread() const {
    return std::this_thread::get_id() == loop_thread_id_.load();
  }

  /// Registers `fd` for `events` (EPOLLIN/EPOLLOUT). Loop thread only.
  [[nodiscard]] Status AddFd(int fd, uint32_t events, FdHandler handler);

  /// Changes the event mask of a registered descriptor. Loop thread only.
  [[nodiscard]] Status UpdateFd(int fd, uint32_t events);

  /// Unregisters a descriptor (safe mid-dispatch: the handler entry is
  /// kept alive until the current iteration finishes). Loop thread only.
  void RemoveFd(int fd);

  /// Enqueues `task` to run on the loop thread and wakes the loop. Safe
  /// from any thread, including the loop's own (runs later the same
  /// iteration). After Stop() the task is dropped: the caller must not
  /// rely on post-Stop delivery.
  void PostTask(Task task);

  /// Number of descriptors currently registered (loop thread only; the
  /// tests use it through posted tasks).
  size_t num_fds() const { return handlers_.size(); }

 private:
  void Run();
  void DrainTasks();
  void DrainWakeup();

  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;
  std::atomic<bool> quit_{false};
  std::atomic<bool> accepting_tasks_{false};

  Mutex task_mu_;
  std::vector<Task> tasks_ BASM_GUARDED_BY(task_mu_);

  /// Loop-thread-only state. shared_ptr so RemoveFd during dispatch cannot
  /// free a handler the iteration still holds.
  std::map<int, std::shared_ptr<FdHandler>> handlers_;

  Mutex lifecycle_mu_;
  bool started_ BASM_GUARDED_BY(lifecycle_mu_) = false;
  bool stopped_ BASM_GUARDED_BY(lifecycle_mu_) = false;
  std::thread thread_ BASM_GUARDED_BY(lifecycle_mu_);
  std::atomic<std::thread::id> loop_thread_id_{};
};

}  // namespace basm::net

#endif  // BASM_NET_EVENT_LOOP_H_
