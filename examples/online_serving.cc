// Online learning walk-through: the full loop the paper's AOP platform
// closes around the serving tier — bootstrap a model into the versioned
// registry, serve through the hot-swap slot, feed click feedback to the
// background trainer, and watch new versions swap into the live engine
// without dropping a request. Run it to see every moving part of the
// src/online/ subsystem in ~a second of wall clock.

#include <cstdio>
#include <vector>

#include "data/synth.h"
#include "core/model_zoo.h"
#include "nn/serialize.h"
#include "online/model_registry.h"
#include "online/model_slot.h"
#include "online/online_trainer.h"
#include "runtime/load_generator.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_store.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

using namespace basm;

namespace {

/// A handful of click-feedback rows for one user, the shape a production
/// log-join would deliver minutes after the impressions.
std::vector<data::Example> ClickFeedback(const data::World& world,
                                         feature_store::FeatureServer& features,
                                         int32_t user, uint64_t seed) {
  Rng rng(seed);
  auto behaviors = features.GetUserFeatures(user).behaviors;
  int32_t city = world.user(user).city;
  const std::vector<int32_t>& items = world.CityItems(city);
  std::vector<data::Example> out;
  for (size_t i = 0; i < 24; ++i) {
    out.push_back(world.MakeExample(user, items[i % items.size()],
                                    /*hour=*/19, /*weekday=*/5,
                                    static_cast<int32_t>(i % 8), city,
                                    /*day=*/0, static_cast<int32_t>(i),
                                    behaviors, rng));
  }
  return out;
}

void PrintSlate(const char* tag, const runtime::SlateResult& result) {
  std::printf("%s (model v%llu):", tag,
              static_cast<unsigned long long>(result.model_version));
  for (const serving::RankedItem& item : result.slate) {
    std::printf("  #%d item %d (%.4f)", item.position, item.item_id,
                item.score);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // The serving world: users, items, cities, behavior histories.
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = 500;
  config.num_items = 400;
  config.num_cities = 4;
  data::World world(config);
  feature_store::FeatureServer features(world, world.config().seq_len, 3);
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);

  // 1. Bootstrap: an offline-trained model becomes registry v1 and the
  //    slot's first servable. (Here "offline-trained" is a fresh init; in
  //    production this is yesterday's full-batch checkpoint.)
  online::ModelRegistry registry(/*keep_last=*/4);
  online::ModelSlot slot;
  online::OnlineTrainerConfig trainer_config;
  trainer_config.model_kind = core::ModelKind::kBasm;
  trainer_config.model_seed = 42;
  online::OnlineTrainer trainer(world.schema(), &registry, &slot,
                                trainer_config);
  auto bootstrap =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 42);
  bootstrap->SetTraining(false);
  Status seeded = trainer.PublishModel(*bootstrap, "bootstrap");
  BASM_CHECK(seeded.ok()) << seeded.message();
  std::printf("bootstrap: registry v%llu installed into the slot\n",
              static_cast<unsigned long long>(slot.current_version()));

  // 2. Serve through the slot-backed pipeline. The engine acquires the
  //    slot's current servable once per micro-batch, so whatever we
  //    publish next is picked up without restarting anything.
  serving::Pipeline pipeline(world, &store, &recall, &slot,
                             /*recall_size=*/16, /*expose_k=*/4);
  runtime::EngineConfig engine_config;
  engine_config.num_workers = 2;
  runtime::ServingEngine engine(&pipeline, engine_config);

  serving::Request request;
  request.user_id = 7;
  request.hour = 19;
  request.weekday = 5;
  request.city = world.user(7).city;
  const std::vector<int32_t>& city_items = world.CityItems(request.city);
  std::vector<int32_t> candidates(city_items.begin(),
                                  city_items.begin() + 8);

  PrintSlate("before swap", engine.Submit(request, candidates).get());

  // 3. Click feedback arrives; one incremental update warm-starts from the
  //    registry head, publishes v2, and hot-swaps it into the slot while
  //    the engine keeps serving.
  for (data::Example& e : ClickFeedback(world, features, /*user=*/7,
                                        /*seed=*/99)) {
    trainer.SubmitFeedback(std::move(e));
  }
  Status updated = trainer.PublishNow("first-feedback");
  BASM_CHECK(updated.ok()) << updated.message();
  online::OnlineTrainerStats stats = trainer.stats();
  std::printf("published v%llu after %lld feedback examples (%.1f ms "
              "end-to-end)\n",
              static_cast<unsigned long long>(stats.last_version),
              static_cast<long long>(stats.consumed),
              stats.last_update_seconds * 1e3);

  // Same request, same candidates — new scores, new audit version.
  PrintSlate("after swap ", engine.Submit(request, candidates).get());

  // 4. The registry keeps the version history: pin the bootstrap as a
  //    rollback target, publish a few more updates, and let garbage
  //    collection bound what is retained.
  BASM_CHECK(registry.Pin(1).ok());
  for (int round = 0; round < 4; ++round) {
    for (data::Example& e : ClickFeedback(world, features,
                                          /*user=*/10 + round,
                                          /*seed=*/200 + round)) {
      trainer.SubmitFeedback(std::move(e));
    }
    Status more = trainer.PublishNow();
    BASM_CHECK(more.ok()) << more.message();
  }
  std::printf("registry after %lld swaps: head v%llu, retained versions:",
              static_cast<long long>(slot.swap_count()),
              static_cast<unsigned long long>(registry.head_version()));
  for (uint64_t version : registry.Versions()) {
    std::printf(" v%llu%s", static_cast<unsigned long long>(version),
                version == 1 ? "(pinned)" : "");
  }
  std::printf("\n");

  // 5. Rollback drill: the pinned snapshot rebuilds and reinstalls in one
  //    step — the same mechanism the trainer uses, driven by an operator.
  auto pinned = registry.Get(1);
  BASM_CHECK(pinned != nullptr);
  auto rollback = core::CreateModel(core::ModelKind::kBasm,
                                      world.schema(), /*seed=*/1);
  Status restored = nn::DeserializeParameters(*rollback, pinned->bytes);
  BASM_CHECK(restored.ok()) << restored.message();
  rollback->SetTraining(false);
  slot.Install(online::MakeServable(pinned->version, std::move(rollback)));
  PrintSlate("rolled back ", engine.Submit(request, candidates).get());

  std::printf("engine stats:\n%s", engine.Stats().ToString().c_str());
  return 0;
}
