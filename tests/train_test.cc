#include "train/trainer.h"

#include "core/basm_model.h"
#include "data/synth.h"
#include "gtest/gtest.h"
#include "core/model_zoo.h"

namespace basm::train {
namespace {

data::Dataset SmallDataset() {
  data::SynthConfig c = data::SynthConfig::Eleme();
  c.num_users = 400;
  c.num_items = 250;
  c.num_cities = 4;
  c.requests_per_day = 60;
  c.days = 4;
  c.test_day = 3;
  c.seq_len = 6;
  return data::GenerateDataset(c);
}

TEST(TrainerTest, FitRunsAndReportsSteps) {
  data::Dataset ds = SmallDataset();
  auto model = core::CreateModel(core::ModelKind::kWideDeep, ds.schema, 1);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 128;
  TrainResult result = Fit(*model, ds, tc);
  int64_t expected_steps =
      (static_cast<int64_t>(ds.TrainExamples().size()) + 127) / 128;
  EXPECT_EQ(result.steps, expected_steps);
  EXPECT_EQ(result.epoch_losses.size(), 1u);
  EXPECT_GT(result.seconds, 0.0);
}

TEST(TrainerTest, LossDecreasesAcrossEpochs) {
  data::Dataset ds = SmallDataset();
  auto model = core::CreateModel(core::ModelKind::kDin, ds.schema, 2);
  TrainConfig tc;
  tc.epochs = 3;
  TrainResult result = Fit(*model, ds, tc);
  ASSERT_EQ(result.epoch_losses.size(), 3u);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front());
}

TEST(TrainerTest, TrainedModelBeatsChanceOnHeldOutDay) {
  data::Dataset ds = SmallDataset();
  core::BasmConfig config;
  Rng rng(3);
  core::Basm model(ds.schema, config, rng);
  TrainConfig tc;
  tc.epochs = 2;
  Fit(model, ds, tc);
  EvalResult eval = EvaluateOnTest(model, ds);
  // The planted structure is learnable: well above chance on every metric.
  EXPECT_GT(eval.summary.auc, 0.62);
  EXPECT_GT(eval.summary.tauc, 0.58);
  EXPECT_GT(eval.summary.cauc, 0.58);
  EXPECT_EQ(eval.probs.size(), ds.TestExamples().size());
}

TEST(TrainerTest, EvaluateUsesEvalModeButRestoresTraining) {
  data::Dataset ds = SmallDataset();
  auto model = core::CreateModel(core::ModelKind::kBasm, ds.schema, 4);
  TrainConfig tc;
  tc.epochs = 1;
  Fit(*model, ds, tc);
  EXPECT_TRUE(model->training());
  EvaluateOnTest(*model, ds);
  EXPECT_TRUE(model->training());
}

TEST(TrainerTest, EvaluationIsDeterministic) {
  data::Dataset ds = SmallDataset();
  auto model = core::CreateModel(core::ModelKind::kDin, ds.schema, 5);
  TrainConfig tc;
  tc.epochs = 1;
  Fit(*model, ds, tc);
  EvalResult a = EvaluateOnTest(*model, ds);
  EvalResult b = EvaluateOnTest(*model, ds);
  EXPECT_DOUBLE_EQ(a.summary.auc, b.summary.auc);
  EXPECT_DOUBLE_EQ(a.summary.logloss, b.summary.logloss);
}

TEST(TrainerTest, FitExamplesWarmStartImproves) {
  // Incremental fine-tuning on fresh examples should not hurt (and usually
  // helps) performance on the same distribution.
  data::Dataset ds = SmallDataset();
  auto model = core::CreateModel(core::ModelKind::kDin, ds.schema, 8);
  TrainConfig tc;
  tc.epochs = 1;
  Fit(*model, ds, tc);
  EvalResult before = EvaluateOnTest(*model, ds);

  // One more pass over the train split via the example-list entry point.
  TrainConfig fine = tc;
  fine.lr_peak = 0.02f;
  fine.warmup_steps = 1;
  FitExamples(*model, ds.TrainExamples(), ds.schema, fine);
  EvalResult after = EvaluateOnTest(*model, ds);
  EXPECT_GT(after.summary.auc, before.summary.auc - 0.02);
}

TEST(TrainerTest, FitExamplesOnDaySubset) {
  data::Dataset ds = SmallDataset();
  std::vector<const data::Example*> day0;
  for (const auto& e : ds.examples) {
    if (e.day == 0) day0.push_back(&e);
  }
  ASSERT_FALSE(day0.empty());
  auto model = core::CreateModel(core::ModelKind::kWideDeep, ds.schema, 9);
  TrainConfig tc;
  tc.epochs = 1;
  tc.batch_size = 64;
  TrainResult r = FitExamples(*model, day0, ds.schema, tc);
  EXPECT_EQ(r.steps,
            (static_cast<int64_t>(day0.size()) + 63) / 64);
}

TEST(ValidatedTrainTest, TracksBestEpochAndAucs) {
  data::Dataset ds = SmallDataset();
  auto model = core::CreateModel(core::ModelKind::kDin, ds.schema, 10);
  TrainConfig tc;
  tc.epochs = 3;
  ValidatedTrainResult r = FitWithValidation(*model, ds, tc, /*patience=*/3);
  EXPECT_GE(r.best_epoch, 0);
  EXPECT_FALSE(r.epoch_val_aucs.empty());
  EXPECT_LE(r.epoch_val_aucs.size(), 3u);
  double max_auc = 0.0;
  for (double a : r.epoch_val_aucs) max_auc = std::max(max_auc, a);
  EXPECT_DOUBLE_EQ(r.best_val_auc, max_auc);
}

TEST(ValidatedTrainTest, PatienceOneStopsAfterFirstRegression) {
  data::Dataset ds = SmallDataset();
  auto model = core::CreateModel(core::ModelKind::kWideDeep, ds.schema, 11);
  TrainConfig tc;
  tc.epochs = 12;  // far more than needed on this tiny set
  tc.lr_peak = 0.15f;  // aggressive LR to force validation regressions
  ValidatedTrainResult r = FitWithValidation(*model, ds, tc, /*patience=*/1);
  if (r.early_stopped) {
    EXPECT_LT(r.epoch_val_aucs.size(), 12u);
  }
  // Either way the model carries the best epoch's weights: evaluating the
  // validation protocol again cannot beat the recorded best by much.
  EXPECT_GE(r.best_val_auc, r.epoch_val_aucs.back() - 1e-9);
}

TEST(ValidatedTrainTest, RestoredWeightsMatchBestEpochScore) {
  data::Dataset ds = SmallDataset();
  auto model = core::CreateModel(core::ModelKind::kDin, ds.schema, 12);
  TrainConfig tc;
  tc.epochs = 4;
  ValidatedTrainResult r = FitWithValidation(*model, ds, tc, /*patience=*/4);
  // Recompute validation AUC with the final (restored) weights; it must be
  // the best epoch's value, not the last epoch's.
  std::vector<const data::Example*> valid;
  for (const data::Example* e : ds.TrainExamples()) {
    if (e->request_id % 10 == 0) valid.push_back(e);
  }
  model->SetTraining(false);
  std::vector<float> probs, labels;
  for (size_t start = 0; start < valid.size(); start += 512) {
    size_t end = std::min(valid.size(), start + 512);
    std::vector<const data::Example*> slice(valid.begin() + start,
                                            valid.begin() + end);
    data::Batch b = data::MakeBatch(slice, ds.schema);
    auto p = model->PredictProbs(b);
    probs.insert(probs.end(), p.begin(), p.end());
    for (const auto* e : slice) labels.push_back(e->label);
  }
  EXPECT_NEAR(metrics::Auc(probs, labels), r.best_val_auc, 1e-9);
}

TEST(ProfilerTest, ReportsPlausibleNumbers) {
  data::Dataset ds = SmallDataset();
  auto model = core::CreateModel(core::ModelKind::kDin, ds.schema, 6);
  EfficiencyReport report = ProfileEfficiency(*model, ds, 128, 3);
  EXPECT_GT(report.seconds_per_epoch, 0.0);
  EXPECT_EQ(report.parameter_count, model->ParameterCount());
  EXPECT_EQ(report.parameter_bytes, report.parameter_count * 4);
  EXPECT_GT(report.activation_bytes, 0);
  EXPECT_GT(report.total_bytes, report.parameter_bytes);
}

TEST(ProfilerTest, DynamicModelsCostMoreThanStatic) {
  data::Dataset ds = SmallDataset();
  auto wd = core::CreateModel(core::ModelKind::kWideDeep, ds.schema, 7);
  auto star = core::CreateModel(core::ModelKind::kStar, ds.schema, 7);
  EfficiencyReport wd_report = ProfileEfficiency(*wd, ds, 128, 3);
  EfficiencyReport star_report = ProfileEfficiency(*star, ds, 128, 3);
  // Table VI shape: multi-domain dynamic model uses more memory.
  EXPECT_GT(star_report.parameter_bytes, wd_report.parameter_bytes);
}

}  // namespace
}  // namespace basm::train
