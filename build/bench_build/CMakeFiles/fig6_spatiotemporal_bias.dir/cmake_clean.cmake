file(REMOVE_RECURSE
  "../bench/fig6_spatiotemporal_bias"
  "../bench/fig6_spatiotemporal_bias.pdb"
  "CMakeFiles/fig6_spatiotemporal_bias.dir/fig6_spatiotemporal_bias.cc.o"
  "CMakeFiles/fig6_spatiotemporal_bias.dir/fig6_spatiotemporal_bias.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_spatiotemporal_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
