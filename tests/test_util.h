#ifndef BASM_TESTS_TEST_UTIL_H_
#define BASM_TESTS_TEST_UTIL_H_

#include <functional>
#include <vector>

#include "autograd/ops.h"
#include "autograd/variable.h"
#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace basm::testing {

/// Numerically verifies the analytic gradient of a scalar-valued graph.
///
/// `build` must construct a fresh graph from the current values of `leaves`
/// and return a scalar Variable. The check perturbs each leaf element with
/// central differences and compares against the backward-pass gradient.
inline void CheckGradients(
    std::vector<autograd::Variable>& leaves,
    const std::function<autograd::Variable()>& build, float eps = 1e-3f,
    float tol = 2e-2f) {
  autograd::Variable loss = build();
  ASSERT_EQ(loss.numel(), 1);
  for (auto& leaf : leaves) leaf.ZeroGrad();
  autograd::Backward(loss);

  for (size_t li = 0; li < leaves.size(); ++li) {
    autograd::Variable& leaf = leaves[li];
    Tensor analytic = leaf.grad();
    Tensor& v = leaf.mutable_value();
    for (int64_t i = 0; i < v.numel(); ++i) {
      float saved = v[i];
      v[i] = saved + eps;
      float up = build().value()[0];
      v[i] = saved - eps;
      float down = build().value()[0];
      v[i] = saved;
      float numeric = (up - down) / (2.0f * eps);
      float denom = std::max({1.0f, std::abs(numeric), std::abs(analytic[i])});
      EXPECT_NEAR(analytic[i] / denom, numeric / denom, tol)
          << "leaf " << li << " element " << i << " analytic=" << analytic[i]
          << " numeric=" << numeric;
    }
  }
}

}  // namespace basm::testing

#endif  // BASM_TESTS_TEST_UTIL_H_
