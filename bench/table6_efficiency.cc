// Reproduces Table VI: training time per epoch and memory cost per model on
// the Ele.me-like dataset. Time is measured over probe batches and
// extrapolated to a full epoch; memory is parameters + optimizer state +
// the forward/backward graph of one batch.
//
// Expected shape (paper): static models (Wide&Deep, DIN, AutoInt) are
// cheapest; dynamic models cost more, with BASM cheaper than the other
// dynamic-parameter models (STAR / M2M / APG) thanks to the low-rank
// decomposition in StSTL.

#include <cstdio>

#include "common/env.h"
#include "common/table_printer.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "train/trainer.h"

int main() {
  using namespace basm;
  data::SynthConfig config = data::SynthConfig::Eleme();
  if (basm::FastMode()) config = config.Fast();
  data::Dataset ds = data::GenerateDataset(config);
  int64_t probe = basm::FastMode() ? 4 : 16;
  std::printf("[table6] efficiency profile on %s (probe=%lld batches)\n\n",
              ds.name.c_str(), static_cast<long long>(probe));

  TablePrinter table({"Model", "Time/Epoch(s)", "Params", "ParamMB",
                      "ActivationMB", "TotalMB"});
  for (core::ModelKind kind : core::TableFourModels()) {
    auto model = core::CreateModel(kind, ds.schema, 42);
    train::EfficiencyReport r =
        train::ProfileEfficiency(*model, ds, /*batch_size=*/256, probe);
    auto mb = [](int64_t bytes) {
      return TablePrinter::Num(static_cast<double>(bytes) / (1 << 20), 2);
    };
    table.AddRow({model->name(), TablePrinter::Num(r.seconds_per_epoch, 1),
                  std::to_string(r.parameter_count), mb(r.parameter_bytes),
                  mb(r.activation_bytes), mb(r.total_bytes)});
    std::printf("  profiled %s\n", model->name().c_str());
  }
  table.Print();
  return 0;
}
