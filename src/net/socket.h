#ifndef BASM_NET_SOCKET_H_
#define BASM_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace basm::net {

/// Move-only RAII owner of a POSIX socket descriptor. All failures surface
/// as Status (never errno leaks past this layer); EINTR is retried inside.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Toggles O_NONBLOCK. The event-loop tier runs every socket
  /// non-blocking; the legacy thread-per-connection path leaves them
  /// blocking.
  [[nodiscard]] Status SetNonBlocking(bool nonblocking);

  /// Clamps the kernel send buffer (SO_SNDBUF). Serving uses the OS
  /// default; the backpressure tests shrink it so a slow reader fills the
  /// kernel's slack deterministically instead of after ~100KB.
  [[nodiscard]] Status SetSendBufferBytes(int32_t bytes);

  /// Closes the descriptor (idempotent).
  void Close();

  /// Half-closes both directions, waking any thread blocked on this socket
  /// in read/accept with an error — the shutdown hook of the server's
  /// connection handlers. The descriptor itself stays owned until Close().
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Outcome of one non-blocking transfer attempt: `bytes` moved (possibly
/// zero), or the reason nothing moved. Exactly one of the flags can be set.
struct IoChunk {
  size_t bytes = 0;
  /// The socket would have blocked (EAGAIN): re-arm readiness and retry.
  bool would_block = false;
  /// The peer closed its end (reads only).
  bool eof = false;
};

/// Full-buffer transfers over a connected TCP socket, the framing substrate
/// of the wire protocol (a frame is one WriteAll of header + payload, one
/// ReadAll of the header, one ReadAll of the payload). ReadChunk/WriteChunk
/// are the non-blocking single-attempt primitives the event-loop tier
/// builds its per-connection state machines on.
class TcpConnection {
 public:
  TcpConnection() = default;
  explicit TcpConnection(Socket socket) : socket_(std::move(socket)) {}

  /// Connects to host:port (dotted-quad host, e.g. loopback "127.0.0.1").
  /// TCP_NODELAY is set: frames are small and latency-bound.
  [[nodiscard]] static StatusOr<TcpConnection> Connect(
      const std::string& host, uint16_t port);

  bool valid() const { return socket_.valid(); }

  /// Writes exactly `size` bytes or fails. A peer reset surfaces as
  /// UNAVAILABLE. A short write (slow peer, full send buffer, or a
  /// non-blocking descriptor) is continued, polling for writability when
  /// the socket would block — the frame is delivered whole or the call
  /// fails, never left half-written to corrupt the stream framing.
  [[nodiscard]] Status WriteAll(const void* data, size_t size);

  /// Reads exactly `size` bytes or fails. A clean peer close before the
  /// first byte is CANCELLED ("connection closed"); mid-buffer EOF is
  /// UNAVAILABLE (truncated stream). Like WriteAll, a would-block from a
  /// non-blocking descriptor polls for readability and continues.
  [[nodiscard]] Status ReadAll(void* data, size_t size);

  /// One non-blocking write attempt: moves whatever the send buffer takes
  /// right now and reports `would_block` instead of parking. Never polls.
  [[nodiscard]] StatusOr<IoChunk> WriteChunk(const void* data, size_t size);

  /// One non-blocking read attempt; `eof` reports a closed peer, and a
  /// would-block returns zero bytes instead of parking. Never polls.
  [[nodiscard]] StatusOr<IoChunk> ReadChunk(void* data, size_t size);

  /// See Socket::SetNonBlocking.
  [[nodiscard]] Status SetNonBlocking(bool nonblocking) {
    return socket_.SetNonBlocking(nonblocking);
  }

  /// See Socket::SetSendBufferBytes.
  [[nodiscard]] Status SetSendBufferBytes(int32_t bytes) {
    return socket_.SetSendBufferBytes(bytes);
  }

  /// Raw descriptor for readiness registration (epoll). Owned here.
  int fd() const { return socket_.fd(); }

  /// Blocks up to `timeout_ms` for readability. Returns true when a read
  /// would not block (data or EOF pending), false on timeout. Lets handler
  /// loops poll a stop flag instead of parking forever in ReadAll.
  [[nodiscard]] StatusOr<bool> WaitReadable(int timeout_ms);

  /// Wakes any blocked reader/writer with an error (see Socket).
  void Shutdown() { socket_.ShutdownBoth(); }

 private:
  Socket socket_;
};

/// Listening socket bound to 127.0.0.1. Port 0 binds an ephemeral port;
/// `port()` reports the one actually bound (how the tests and the loopback
/// bench avoid port collisions).
class TcpListener {
 public:
  TcpListener() = default;

  [[nodiscard]] static StatusOr<TcpListener> Bind(uint16_t port,
                                                  int backlog = 128);

  bool valid() const { return socket_.valid(); }
  uint16_t port() const { return port_; }

  /// Blocks up to `timeout_ms` for a pending connection; nullopt-like
  /// false on timeout (the acceptor loop's stop-flag poll point).
  [[nodiscard]] StatusOr<bool> WaitAcceptable(int timeout_ms);

  /// Accepts one pending connection (blocking; pair with WaitAcceptable).
  /// TCP_NODELAY is set on the accepted socket (frames are small and
  /// latency-bound).
  [[nodiscard]] StatusOr<TcpConnection> Accept();

  /// Non-blocking accept for the event-loop tier: returns false when no
  /// connection is pending (the listener must be non-blocking), true with
  /// `*out` filled otherwise. The accepted socket comes back non-blocking
  /// with TCP_NODELAY set, ready for epoll registration.
  [[nodiscard]] StatusOr<bool> TryAccept(TcpConnection* out);

  /// See Socket::SetNonBlocking.
  [[nodiscard]] Status SetNonBlocking(bool nonblocking) {
    return socket_.SetNonBlocking(nonblocking);
  }

  /// Raw descriptor for readiness registration (epoll). Owned here.
  int fd() const { return socket_.fd(); }

 private:
  TcpListener(Socket socket, uint16_t port)
      : socket_(std::move(socket)), port_(port) {}

  Socket socket_;
  uint16_t port_ = 0;
};

}  // namespace basm::net

#endif  // BASM_NET_SOCKET_H_
