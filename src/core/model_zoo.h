#ifndef BASM_CORE_MODEL_ZOO_H_
#define BASM_CORE_MODEL_ZOO_H_

#include <memory>
#include <string>
#include <vector>

#include "data/schema.h"
#include "models/ctr_model.h"

namespace basm::core {

/// Model identifiers as they appear in Table IV, plus the online base model.
enum class ModelKind {
  kWideDeep,
  kDin,
  kAutoInt,
  kStar,
  kM2m,
  kApg,
  kBasm,
  kBaseDin,
  /// Extension baseline beyond the paper's Table IV (related-work model).
  kDeepFm,
};

/// The seven offline-comparison models in the paper's row order.
std::vector<ModelKind> TableFourModels();

const char* ModelKindName(ModelKind kind);

/// Builds a model with the zoo's shared hyperparameters (embed_dim 8,
/// hidden {64, 32}) so Table IV compares architectures, not budgets.
std::unique_ptr<models::CtrModel> CreateModel(ModelKind kind,
                                      const data::Schema& schema,
                                      uint64_t seed);

}  // namespace basm::core

#endif  // BASM_CORE_MODEL_ZOO_H_
