#ifndef BASM_NN_DROPOUT_H_
#define BASM_NN_DROPOUT_H_

#include "autograd/ops.h"
#include "common/rng.h"
#include "nn/module.h"

namespace basm::nn {

/// Inverted dropout: during training each activation is zeroed with
/// probability `rate` and survivors are scaled by 1/(1-rate), so evaluation
/// mode is the identity. The mask is sampled from the module's own RNG
/// stream so training runs stay reproducible under a fixed seed.
class Dropout : public Module {
 public:
  explicit Dropout(float rate, uint64_t seed = 0x0D0D0D);

  autograd::Variable Forward(const autograd::Variable& x);

  float rate() const { return rate_; }

 private:
  float rate_;
  Rng rng_;
};

}  // namespace basm::nn

#endif  // BASM_NN_DROPOUT_H_
