// Networked serving walk-through: the Fig 13 deployment stretched over a
// wire. Three ServingEngine replicas stand behind a TCP frontend speaking
// the length-prefixed binary protocol of net/wire.h, a consistent-hash
// router pins every user to a home replica, and a closed-loop client fleet
// (Zipf users, meal-time diurnal hours) drives it over loopback. Then the
// failure drill: kill one replica mid-traffic and watch its breaker trip,
// its users re-home to survivors, and everyone else keep their pins; bring
// it back and watch the ring heal. An overload phase shows admission
// control shedding instead of queueing without bound, and a final phase
// reruns the healthy tier behind the epoll event-loop frontend with the
// fleet pipelining 8 requests per connection.
//
// Honors BASM_FAST=1 (CI smoke): smaller world, fewer requests.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/env.h"
#include "data/synth.h"
#include "core/model_zoo.h"
#include "net/client.h"
#include "net/epoll_server.h"
#include "net/router.h"
#include "net/server.h"
#include "runtime/serving_engine.h"
#include "feature_store/feature_store.h"
#include "feature_store/feature_server.h"
#include "serving/pipeline.h"
#include "serving/recall.h"

using namespace basm;

int main() {
  const bool fast = basm::FastMode();
  data::SynthConfig config = data::SynthConfig::Eleme();
  config.num_users = fast ? 300 : 1000;
  config.num_items = fast ? 250 : 800;
  config.num_cities = 4;
  data::World world(config);

  feature_store::FeatureServer features(world, world.config().seq_len, 7);
  feature_store::FeatureStore store(&features);
  serving::RecallIndex recall(world);
  auto model =
      core::CreateModel(core::ModelKind::kBasm, world.schema(), 21);
  model->SetTraining(false);
  serving::Pipeline pipeline(world, &store, &recall, model.get(),
                             /*recall_size=*/20, /*expose_k=*/5);

  // Three independent replicas of the same pipeline, one bounded queue each.
  runtime::EngineConfig ec;
  ec.num_workers = 2;
  ec.max_batch_requests = 4;
  ec.max_wait_micros = 200;
  std::vector<std::unique_ptr<runtime::ServingEngine>> replicas;
  for (int i = 0; i < 3; ++i) {
    ec.seed = 0xD1A1 + static_cast<uint64_t>(i);
    replicas.push_back(std::make_unique<runtime::ServingEngine>(&pipeline, ec));
  }
  std::vector<runtime::ServingEngine*> borrowed;
  for (const auto& r : replicas) borrowed.push_back(r.get());

  // Breaker: three consecutive dead-replica submits trip it out of the ring.
  net::RouterConfig rc;
  rc.breaker.failure_threshold = 3;
  rc.breaker.open_micros = 60ll * 1000 * 1000;
  net::Router router(3, rc);

  net::RpcServer server(borrowed, &router, net::ServerConfig{});
  if (Status s = server.Start(); !s.ok()) {
    std::printf("server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("frontend up on 127.0.0.1:%u, 3 replicas\n\n", server.port());

  net::FleetConfig fc;
  fc.num_clients = 8;
  fc.num_requests = fast ? 200 : 1200;
  net::ClientFleet fleet(world, fc);

  // 1) Healthy baseline: every request OK, users pinned to home replicas.
  std::printf("== phase 1: healthy baseline ==\n");
  StatusOr<net::FleetReport> baseline = fleet.Run("127.0.0.1", server.port());
  if (!baseline.ok()) {
    std::printf("fleet failed: %s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", baseline.value().ToString().c_str());

  // 2) Kill replica 1. Its next requests fail as dead-replica submits, the
  //    breaker trips it out of the ring, and only its arc of users re-homes
  //    to the survivors — the consistent-hash failover contract.
  std::printf("== phase 2: replica 1 killed mid-traffic ==\n");
  replicas[1]->Shutdown();
  StatusOr<net::FleetReport> failover = fleet.Run("127.0.0.1", server.port());
  if (failover.ok()) {
    std::printf("%s", failover.value().ToString().c_str());
    std::printf("replica 1 breaker: opens %lld, short-circuits %lld\n\n",
                static_cast<long long>(router.BreakerStats(1).opens),
                static_cast<long long>(router.BreakerStats(1).short_circuits));
  }

  // 3) Administrative recovery: mark the replica down explicitly (it is
  //    gone for good in this process), and show the surviving pair carrying
  //    the full load with stable pins.
  std::printf("== phase 3: steady state on survivors ==\n");
  router.MarkDown(1);
  StatusOr<net::FleetReport> steady = fleet.Run("127.0.0.1", server.port());
  if (steady.ok()) std::printf("%s\n", steady.value().ToString().c_str());

  std::printf("server counters:\n%s\n", server.stats().ToString().c_str());
  server.Stop();

  // 4) Overload: fresh tier with tiny queues and proactive admission
  //    control; a 24-client closed loop over 2 replicas sheds the excess
  //    with UNAVAILABLE instead of letting the backlog grow without bound.
  std::printf("== phase 4: overload sheds, never collapses ==\n");
  runtime::EngineConfig tiny = ec;
  tiny.num_workers = 1;
  tiny.queue_capacity = 4;
  std::vector<std::unique_ptr<runtime::ServingEngine>> small;
  for (int i = 0; i < 2; ++i) {
    tiny.seed = 0xF00D + static_cast<uint64_t>(i);
    small.push_back(std::make_unique<runtime::ServingEngine>(&pipeline, tiny));
  }
  std::vector<runtime::ServingEngine*> small_borrowed;
  for (const auto& r : small) small_borrowed.push_back(r.get());
  net::Router small_router(2, net::RouterConfig{});
  net::ServerConfig overload_config;
  overload_config.shed_queue_fraction = 0.75;
  net::RpcServer overload(small_borrowed, &small_router, overload_config);
  if (Status s = overload.Start(); !s.ok()) {
    std::printf("server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  net::FleetConfig burst = fc;
  burst.num_clients = 24;
  burst.num_requests = fast ? 200 : 600;
  net::ClientFleet storm(world, burst);
  StatusOr<net::FleetReport> shed = storm.Run("127.0.0.1", overload.port());
  if (shed.ok()) std::printf("%s", shed.value().ToString().c_str());
  overload.Stop();

  // 5) Event-loop frontend: the same tier behind the epoll server, with the
  //    fleet in pipelined mode (window of 8 requests in flight per
  //    connection, responses completed out of order and demuxed by wire
  //    sequence number). Same routing, breaker, and shed semantics — only
  //    the transport changed.
  std::printf("\n== phase 5: epoll frontend, pipelined clients ==\n");
  runtime::EngineConfig healthy = ec;
  std::vector<std::unique_ptr<runtime::ServingEngine>> pair;
  for (int i = 0; i < 2; ++i) {
    healthy.seed = 0xE901 + static_cast<uint64_t>(i);
    pair.push_back(std::make_unique<runtime::ServingEngine>(&pipeline, healthy));
  }
  std::vector<runtime::ServingEngine*> pair_borrowed;
  for (const auto& r : pair) pair_borrowed.push_back(r.get());
  net::Router pair_router(2, net::RouterConfig{});
  net::EpollServerConfig epoll_config;
  epoll_config.num_loops = 2;
  net::EpollRpcServer epoll_server(pair_borrowed, &pair_router, epoll_config);
  if (Status s = epoll_server.Start(); !s.ok()) {
    std::printf("epoll server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  net::FleetConfig piped = fc;
  piped.num_clients = 8;
  piped.num_requests = fast ? 320 : 1600;
  piped.pipeline_window = 8;
  net::ClientFleet piped_fleet(world, piped);
  StatusOr<net::FleetReport> piped_report =
      piped_fleet.Run("127.0.0.1", epoll_server.port());
  if (!piped_report.ok()) {
    std::printf("pipelined fleet failed: %s\n",
                piped_report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", piped_report.value().ToString().c_str());
  std::printf("epoll counters:\n%s\n", epoll_server.stats().ToString().c_str());
  epoll_server.Stop();
  return 0;
}
